/**
 * @file
 * The §6.4 extension: applying M2XFP to the attention KV path.
 * K and V (right-hand GEMM operands, amenable to lazy quantization)
 * use Sg-EM; Q and the post-softmax probability rows use Elem-EM.
 * The example measures the incremental quality cost of quantizing
 * attention on top of W4A4 linear layers.
 *
 *   $ ./kv_cache_quantization
 */

#include <cstdio>
#include <memory>

#include "core/m2xfp.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    Evaluator ev(llama2_7b(), 256, 64);
    TextTable t({"Configuration", "mean KL", "proxy PPL"});

    auto report = [&](const char *label) {
        EvalRun run = ev.run();
        t.beginRow();
        t.cell(label);
        t.cell(run.meanKl, 4);
        t.cell(ev.perplexityFrom(run), 3);
        t.endRow();
    };

    report("FP16 everything");

    ev.model().rebuild(scheme("M2XFP").factory);
    report("M2XFP linear layers, FP32 attention");

    ev.model().setKvQuantizers(
        []() {
            return std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer());
        },
        []() {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        });
    report("M2XFP linear + M2XFP KV cache (Sg-EM K/V, Elem-EM Q/P)");

    ev.model().setKvQuantizers(nullptr, nullptr);
    ev.model().rebuild(scheme("MXFP4").factory);
    report("MXFP4 linear layers, FP32 attention (reference)");

    t.print("§6.4: extending M2XFP to attention operands");
    std::printf("K/V behave like static-side operands (lazy "
                "quantization permits the adaptive scale search);\n"
                "Q and P are dynamic and use the streaming Elem-EM "
                "path — the same asymmetry as weights/activations.\n");
    return 0;
}
