/**
 * @file
 * Quickstart: quantize one activation group with M2XFP, inspect the
 * bit-level encoding (FP4 codes, E8M0 scale, 2-bit metadata), decode
 * it back, and compare the error against plain MXFP4.
 *
 *   $ ./quickstart
 */

#include <cstdio>
#include <vector>

#include "core/m2xfp.hh"
#include "mx/mxfp.hh"
#include "util/stats.hh"

using namespace m2x;

int
main()
{
    // A group of 32 activations with one outlier per subgroup of 8.
    std::vector<float> x = {
        0.31f, -0.12f, 0.55f,  5.27f,  -0.40f, 0.08f,  0.91f, -0.22f,
        1.10f, -2.96f, 0.17f,  0.44f,  -0.63f, 0.29f,  -0.05f, 0.73f,
        -4.62f, 0.38f, -0.81f, 0.12f,  0.57f,  -0.26f, 0.94f, 0.33f,
        0.21f, 0.66f,  -0.49f, 3.78f,  -0.14f, 0.52f,  -0.37f, 0.85f,
    };

    // Encode with the paper-default Elem-EM-top1 codec.
    ElemEmQuantizer codec = makeM2xfpActivationQuantizer();
    ElemEmGroup g = codec.encodeGroup(x);

    std::printf("M2XFP quickstart\n================\n\n");
    std::printf("shared scale: 2^%d (E8M0 code %u)\n",
                g.scale.exponent(), g.scale.code());
    std::printf("FP4 codes   :");
    for (uint8_t c : g.fp4Codes)
        std::printf(" %x", c);
    std::printf("\nmetadata    :");
    for (uint8_t m : g.meta)
        std::printf(" %u", m);
    std::printf("  (2-bit extra mantissa per 8-wide subgroup)\n\n");

    // Decode and compare with plain MXFP4.
    std::vector<float> m2(32), mx(32);
    codec.decodeGroup(g, m2);
    MxfpQuantizer mxfp4 = MxfpQuantizer::mxfp4();
    mxfp4.quantizeGroup(x, mx);

    std::printf("%8s %10s %10s %10s\n", "x", "MXFP4", "M2XFP",
                "improved");
    for (size_t i = 0; i < x.size(); ++i) {
        bool changed = m2[i] != mx[i];
        std::printf("%8.3f %10.4f %10.4f %10s\n", x[i], mx[i], m2[i],
                    changed ? "<-- top-1" : "");
    }
    std::printf("\ngroup MSE: MXFP4 %.6f  vs  M2XFP %.6f\n",
                mse(x, mx), mse(x, m2));
    std::printf("effective bits/element: MXFP4 %.3f, M2XFP %.3f\n",
                mxfp4.ebw(), codec.ebw());
    return 0;
}
