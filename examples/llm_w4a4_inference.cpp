/**
 * @file
 * End-to-end W4A4 inference on the synthetic LLaMA-style substrate:
 * builds a transformer, runs the same token stream under several
 * quantization formats, and reports the measured logit divergence
 * and proxy perplexity for each (the paper's Tbl. 3 pipeline on one
 * model).
 *
 *   $ ./llm_w4a4_inference
 */

#include <cstdio>

#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    ModelConfig cfg = llama2_7b();
    std::printf("Building the %s stand-in (d=%u, L=%u, ff=%u)...\n",
                cfg.name.c_str(), cfg.dModel, cfg.nLayers, cfg.dFf);
    Evaluator ev(cfg, 256, 64);

    TextTable t({"Format", "W-EBW", "A-EBW", "mean KL", "proxy PPL"});
    for (const char *name :
         {"FP16", "MXFP4", "NVFP4", "SMX4", "M2XFP"}) {
        QuantScheme s = scheme(name);
        ev.model().rebuild(s.factory);
        EvalRun run = ev.run();
        t.beginRow();
        t.cell(name);
        t.cell(s.weightEbw, 2);
        t.cell(s.actEbw, 2);
        t.cell(run.meanKl, 4);
        t.cell(ev.perplexityFrom(run), 2);
        t.endRow();
    }
    t.print("\nW4A4 inference quality (lower KL/PPL is better)");

    std::printf("Swap any scheme name from model/zoo.hh into the "
                "list above to test it.\n");
    return 0;
}
