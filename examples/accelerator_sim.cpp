/**
 * @file
 * Drive the tile-level accelerator simulator on a custom GEMM
 * workload: compare the M2XFP accelerator against the baseline MX
 * accelerators on a user-defined layer, with the full cycle and
 * energy breakdown (the Fig. 13 machinery on one workload).
 *
 *   $ ./accelerator_sim [M] [K] [N]
 */

#include <cstdio>
#include <cstdlib>

#include "sim/accelerator.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::sim;

int
main(int argc, char **argv)
{
    uint64_t m = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
    uint64_t k = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4096;
    uint64_t n = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11008;

    GemmShape gemm{"custom", m, k, n, 1};
    std::printf("GEMM %llu x %llu x %llu (%.2f GMACs)\n\n",
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(k),
                static_cast<unsigned long long>(n),
                gemm.macs() * 1e-9);

    TextTable t({"Accelerator", "Cycles (M)", "Latency (ms)",
                 "Core (mJ)", "Buffer (mJ)", "DRAM (mJ)",
                 "Static (mJ)", "Total (mJ)"});
    auto run = [&](const AcceleratorConfig &cfg) {
        SimStats s = TileSimulator(cfg).simulateGemm(gemm);
        t.beginRow();
        t.cell(cfg.name);
        t.cell(s.cycles * 1e-6, 1);
        t.cell(s.seconds * 1e3, 2);
        t.cell(s.coreEnergyJ * 1e3, 2);
        t.cell(s.bufferEnergyJ * 1e3, 2);
        t.cell(s.dramEnergyJ * 1e3, 2);
        t.cell(s.staticEnergyJ * 1e3, 2);
        t.cell(s.totalEnergyJ() * 1e3, 2);
        t.endRow();
    };
    run(mxint8Reference());
    for (const auto &cfg : fig13Accelerators())
        run(cfg);
    t.print("32x32 systolic array @ 500 MHz, 128 GB/s DRAM");
    return 0;
}
