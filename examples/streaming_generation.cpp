/**
 * @file
 * Streaming autoregressive generation through the packed-domain
 * decode runtime: prefill a batch of prompts once, then generate
 * token by token against a persistent KV cache held in the packed
 * M2XFP byte streams (~4.5 bits/element). The same run is repeated
 * with the dense fp32 cache — the bit-exact oracle baseline — to
 * show the resident-memory and throughput trade.
 *
 *   $ ./streaming_generation [--trace PATH]
 *
 * With --trace (or M2X_TRACE=PATH), the run writes a Chrome
 * trace_event JSON of every decode step, attend, quantize, and GEMM
 * span — open it at https://ui.perfetto.dev to see where the tokens
 * go (see docs/OBSERVABILITY.md).
 *
 *   $ ./streaming_generation --mixed [--trace PATH]
 *
 * --mixed switches from the fixed batch to mixed traffic through the
 * continuous-batching ServingEngine: requests arrive staggered over
 * the run with ragged prompt and generation lengths, the scheduler
 * admits them against a fixed page arena, re-batches whatever is
 * active each step, and preempts under memory pressure (see
 * docs/SERVING.md).
 */

#include <cstdio>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "model/config.hh"
#include "runtime/decode_session.hh"
#include "runtime/serving.hh"
#include "runtime/telemetry.hh"
#include "util/logging.hh"
#include "util/rng.hh"

using namespace m2x;
using namespace m2x::runtime;

namespace {

/** Seconds since construction (on the shared telemetry clock). */
class Stopwatch
{
  public:
    Stopwatch() : start_(telemetry::nowNanos()) {}

    double
    seconds() const
    {
        return 1e-9 *
               static_cast<double>(telemetry::nowNanos() - start_);
    }

  private:
    uint64_t start_;
};

/** Greedy sampling: the arg-max logit of one row. */
int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

/**
 * Mixed traffic through the scheduler: requests arrive staggered
 * (one submitted every couple of scheduler steps) with ragged
 * prompt/generation lengths, against a deliberately small page
 * arena so admission stalls and preemption are visible in the
 * printed lifecycle.
 */
int
runMixed(const model::ModelConfig &cfg)
{
    struct Spec
    {
        size_t arriveStep, promptLen, maxNew;
    };
    const std::vector<Spec> traffic = {
        {0, 48, 24}, {1, 12, 40}, {3, 96, 16},  {4, 24, 8},
        {6, 64, 32}, {8, 8, 12},  {10, 160, 20}, {11, 40, 28},
    };

    // admitFreeFraction 0: admission packs the arena tight, so the
    // active set's growth forces visible preemption instead of being
    // absorbed by the default watermark headroom.
    ServingEngine engine(cfg, {.kvMode = KvCacheMode::Packed,
                               .pageRows = 16,
                               .arenaPages = 144,
                               .maxBatch = 6,
                               .admitFreeFraction = 0.0});
    std::printf("[mixed traffic] packed arena: %zu pages x %zu "
                "rows (%.1f KiB resident budget)\n",
                engine.arena().capacityPages(),
                engine.arena().pageRows(),
                static_cast<double>(engine.arena().capacityPages() *
                                    engine.arena().pageBytes()) /
                    1024.0);

    // Streamed delivery: every generated token arrives through the
    // onToken callback the moment the scheduler harvests it — the
    // client-visible stream, interleaved across requests exactly as
    // decode steps complete. Collected per request here; request 0's
    // finish line prints its stream to show the live path.
    std::vector<std::vector<int>> streams;
    size_t streamed = 0;
    engine.onToken([&](size_t req_id, int token, bool is_last) {
        if (req_id >= streams.size())
            streams.resize(req_id + 1);
        streams[req_id].push_back(token);
        ++streamed;
        if (is_last)
            std::printf("  * request %zu complete: %zu tokens "
                        "streamed\n",
                        req_id, streams[req_id].size());
    });

    Rng rng(7);
    size_t submitted = 0, step = 0;
    Stopwatch total;
    while (submitted < traffic.size() || !engine.idle()) {
        while (submitted < traffic.size() &&
               traffic[submitted].arriveStep <= step) {
            const Spec &s = traffic[submitted];
            std::vector<int> prompt(s.promptLen);
            for (auto &t : prompt)
                t = static_cast<int>(rng.uniformInt(cfg.vocab));
            size_t id = engine.submit(std::move(prompt), s.maxNew);
            std::printf("  step %3zu: + request %zu (prompt %zu, "
                        "gen %zu)\n",
                        step, id, s.promptLen, s.maxNew);
            ++submitted;
        }
        engine.step();
        ++step;
    }
    double wall = total.seconds();

    size_t tokens = 0;
    for (size_t id = 0; id < engine.requestCount(); ++id) {
        const RequestStats &st = engine.stats(id);
        tokens += st.generated;
        m2x_assert(id < streams.size() &&
                       streams[id].size() == st.generated,
                   "streamed token count diverges from stats for "
                   "request %zu",
                   id);
        std::printf("  request %zu: %-8s prompt %3zu  gen %2zu  "
                    "ttft %6.1f ms  preempted %zux\n",
                    id, requestStateName(st.state), st.promptTokens,
                    st.generated, st.ttftSeconds() * 1e3,
                    st.preemptions);
    }
    std::printf("\n  %zu tokens in %.3f s (%.0f tokens/s), "
                "%zu scheduler steps, %zu preemptions\n",
                tokens, wall,
                static_cast<double>(tokens) / wall,
                engine.stepCount(), engine.preemptionCount());
    std::printf("  arena: peak occupancy %.0f%%, high water %zu "
                "pages, %zu live at exit\n",
                engine.occupancyPeak() * 100.0,
                engine.arena().highWaterPages(),
                engine.arena().livePages());
    std::printf("  streamed %zu tokens via onToken; request 0:",
                streamed);
    for (int t : streams.empty() ? std::vector<int>{} : streams[0])
        std::printf(" %d", t);
    std::printf("\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    bool mixed = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--mixed") == 0) {
            mixed = true;
        } else {
            std::fprintf(stderr,
                         "usage: %s [--mixed] [--trace PATH]\n",
                         argv[0]);
            return 1;
        }
    }
    if (!trace_path.empty())
        telemetry::traceStart(trace_path);

    model::ModelConfig cfg = model::llama2_7b();
    const size_t batch = 4;
    const size_t prompt_len = 32;
    const size_t gen_tokens = 24;

    std::printf("model %s: %u layers, d_model %u, vocab %u\n\n",
                cfg.name.c_str(), cfg.nLayers, cfg.dModel,
                cfg.vocab);

    if (mixed) {
        int rc = runMixed(cfg);
        if (!trace_path.empty()) {
            size_t n = telemetry::traceStop();
            std::printf("wrote %zu trace events to %s "
                        "(load at https://ui.perfetto.dev)\n",
                        n, trace_path.c_str());
        }
        return rc;
    }

    for (KvCacheMode mode :
         {KvCacheMode::Packed, KvCacheMode::Fp32}) {
        DecodeSession session(cfg, {.kvMode = mode});

        // Prefill: each prompt runs through the model once, its K/V
        // rows landing in the sequence's cache; the last row's
        // logits seed generation.
        Rng rng(7);
        std::vector<int> next(batch);
        Stopwatch total;
        for (size_t b = 0; b < batch; ++b) {
            std::vector<int> prompt(prompt_len);
            for (auto &t : prompt)
                t = static_cast<int>(rng.uniformInt(cfg.vocab));
            size_t seq = session.addSequence();
            Matrix logits = session.prefill(seq, prompt);
            next[b] = argmaxRow(logits, logits.rows() - 1);
        }

        // Stream: one decode step advances every sequence by one
        // token — a single batched chunk through the linears, the
        // attention fan-out per sequence.
        std::vector<std::vector<int>> generated(batch);
        Stopwatch gen;
        for (size_t t = 0; t < gen_tokens; ++t) {
            Matrix logits = session.decode(next);
            for (size_t b = 0; b < batch; ++b) {
                generated[b].push_back(next[b]);
                next[b] = argmaxRow(logits, b);
            }
        }
        double gen_s = gen.seconds();

        std::printf("[%s cache] %zu seqs x (%zu prompt + %zu "
                    "generated) in %.3f s\n",
                    kvCacheModeName(mode), batch, prompt_len,
                    gen_tokens, total.seconds());
        std::printf("  decode: %.0f tokens/s, attention %.3f s\n",
                    static_cast<double>(batch * gen_tokens) / gen_s,
                    session.attendSeconds());
        std::printf("  KV cache: %zu bytes resident "
                    "(%.1f bytes/token, %.2f bits/element)\n",
                    session.kvBytes(), session.kvBytesPerToken(),
                    session.kvBytesPerToken() * 8.0 /
                        (2.0 * cfg.nLayers * cfg.dModel));
        std::printf("  seq 0 stream:");
        for (size_t t = 0; t < generated[0].size(); ++t)
            std::printf(" %d", generated[0][t]);
        std::printf("\n\n");
    }

    if (!trace_path.empty()) {
        size_t n = telemetry::traceStop();
        std::printf("wrote %zu trace events to %s "
                    "(load at https://ui.perfetto.dev)\n",
                    n, trace_path.c_str());
    }
    return 0;
}
