/**
 * @file
 * Streaming autoregressive generation through the packed-domain
 * decode runtime: prefill a batch of prompts once, then generate
 * token by token against a persistent KV cache held in the packed
 * M2XFP byte streams (~4.5 bits/element). The same run is repeated
 * with the dense fp32 cache — the bit-exact oracle baseline — to
 * show the resident-memory and throughput trade.
 *
 *   $ ./streaming_generation
 */

#include <chrono>
#include <cstdio>
#include <span>
#include <vector>

#include "model/config.hh"
#include "runtime/decode_session.hh"
#include "util/rng.hh"

using namespace m2x;
using namespace m2x::runtime;

namespace {

/** Seconds since construction. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** Greedy sampling: the arg-max logit of one row. */
int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

} // namespace

int
main()
{
    model::ModelConfig cfg = model::llama2_7b();
    const size_t batch = 4;
    const size_t prompt_len = 32;
    const size_t gen_tokens = 24;

    std::printf("model %s: %u layers, d_model %u, vocab %u\n\n",
                cfg.name.c_str(), cfg.nLayers, cfg.dModel,
                cfg.vocab);

    for (KvCacheMode mode :
         {KvCacheMode::Packed, KvCacheMode::Fp32}) {
        DecodeSession session(cfg, {.kvMode = mode});

        // Prefill: each prompt runs through the model once, its K/V
        // rows landing in the sequence's cache; the last row's
        // logits seed generation.
        Rng rng(7);
        std::vector<int> next(batch);
        Stopwatch total;
        for (size_t b = 0; b < batch; ++b) {
            std::vector<int> prompt(prompt_len);
            for (auto &t : prompt)
                t = static_cast<int>(rng.uniformInt(cfg.vocab));
            size_t seq = session.addSequence();
            Matrix logits = session.prefill(seq, prompt);
            next[b] = argmaxRow(logits, logits.rows() - 1);
        }

        // Stream: one decode step advances every sequence by one
        // token — a single batched chunk through the linears, the
        // attention fan-out per sequence.
        std::vector<std::vector<int>> generated(batch);
        Stopwatch gen;
        for (size_t t = 0; t < gen_tokens; ++t) {
            Matrix logits = session.decode(next);
            for (size_t b = 0; b < batch; ++b) {
                generated[b].push_back(next[b]);
                next[b] = argmaxRow(logits, b);
            }
        }
        double gen_s = gen.seconds();

        std::printf("[%s cache] %zu seqs x (%zu prompt + %zu "
                    "generated) in %.3f s\n",
                    kvCacheModeName(mode), batch, prompt_len,
                    gen_tokens, total.seconds());
        std::printf("  decode: %.0f tokens/s, attention %.3f s\n",
                    static_cast<double>(batch * gen_tokens) / gen_s,
                    session.attendSeconds());
        std::printf("  KV cache: %zu bytes resident "
                    "(%.1f bytes/token, %.2f bits/element)\n",
                    session.kvBytes(), session.kvBytesPerToken(),
                    session.kvBytesPerToken() * 8.0 /
                        (2.0 * cfg.nLayers * cfg.dModel));
        std::printf("  seq 0 stream:");
        for (size_t t = 0; t < generated[0].size(); ++t)
            std::printf(" %d", generated[0][t]);
        std::printf("\n\n");
    }
    return 0;
}
