/**
 * @file
 * Kernel-level throughput microbenchmarks (google-benchmark): the
 * M2XFP codecs, baseline format codecs, the bit-exact hardware unit
 * models, packing, and the quantized GEMM path.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "gemm/gemm.hh"
#include "hw/pe_tile.hh"
#include "hw/quant_engine.hh"
#include "hw/top1_decode.hh"
#include "mx/mxfp.hh"
#include "mx/nvfp4.hh"
#include "util/rng.hh"

using namespace m2x;

namespace {

std::vector<float>
randomData(size_t n, uint64_t seed = 1)
{
    Rng rng(seed);
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.studentT(4.0));
    return v;
}

void
BM_Mxfp4Quantize(benchmark::State &state)
{
    auto data = randomData(32 * 1024);
    std::vector<float> out(data.size());
    MxfpQuantizer q = MxfpQuantizer::mxfp4();
    for (auto _ : state) {
        quantizeSpanGrouped(data, out, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Mxfp4Quantize);

void
BM_Nvfp4Quantize(benchmark::State &state)
{
    auto data = randomData(32 * 1024);
    std::vector<float> out(data.size());
    Nvfp4Quantizer q;
    q.calibrate(data);
    for (auto _ : state) {
        quantizeSpanGrouped(data, out, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_Nvfp4Quantize);

void
BM_ElemEmEncode(benchmark::State &state)
{
    auto data = randomData(32 * 1024);
    std::vector<float> out(data.size());
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    for (auto _ : state) {
        quantizeSpanGrouped(data, out, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_ElemEmEncode);

void
BM_SgEmEncodeAdaptive(benchmark::State &state)
{
    auto data = randomData(32 * 512);
    std::vector<float> out(data.size());
    SgEmQuantizer q = makeM2xfpWeightQuantizer();
    for (auto _ : state) {
        quantizeSpanGrouped(data, out, q);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(data.size()));
}
BENCHMARK(BM_SgEmEncodeAdaptive);

void
BM_QuantEngineGroup(benchmark::State &state)
{
    auto data = randomData(32);
    hw::QuantizationEngine engine;
    for (auto _ : state) {
        auto res = engine.encodeGroup(data);
        benchmark::DoNotOptimize(res.group.meta.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_QuantEngineGroup);

void
BM_Top1DecodeUnit(benchmark::State &state)
{
    hw::Top1DecodeUnit unit;
    std::vector<uint8_t> codes{0x3, 0xf, 0x4, 0x1,
                               0x8, 0x2, 0x6, 0x5};
    for (auto _ : state) {
        auto t = unit.decode(codes, 2);
        benchmark::DoNotOptimize(t.idx);
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_Top1DecodeUnit);

void
BM_PeTileGroup(benchmark::State &state)
{
    hw::PeTile pe;
    std::vector<hw::PeSubgroupInput> subs(4);
    Rng rng(5);
    for (auto &sg : subs)
        for (int i = 0; i < 8; ++i) {
            sg.wCodes[i] = static_cast<uint8_t>(rng.uniformInt(16));
            sg.xCodes[i] = static_cast<uint8_t>(rng.uniformInt(16));
        }
    for (auto _ : state) {
        double r = pe.computeGroup(subs, 0, 0);
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_PeTileGroup);

void
BM_PackActivations(benchmark::State &state)
{
    Matrix m(64, 256);
    Rng rng(6);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.normal(0, 1));
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    for (auto _ : state) {
        auto packed = PackedM2xfpTensor::packActivations(m, q);
        benchmark::DoNotOptimize(packed.totalBytes());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<int64_t>(m.size()));
}
BENCHMARK(BM_PackActivations);

void
BM_QuantizedGemmM2xfp(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Matrix w(n, n), x(16, n);
    Rng rng(7);
    for (auto &v : w.flat())
        v = static_cast<float>(rng.normal(0, 0.05));
    for (auto &v : x.flat())
        v = static_cast<float>(rng.studentT(4.0));
    QuantizedLinear lin(
        w,
        std::make_shared<SgEmQuantizer>(makeM2xfpWeightQuantizer()),
        std::make_shared<ElemEmQuantizer>(
            makeM2xfpActivationQuantizer()));
    for (auto _ : state) {
        Matrix y = lin.forward(x);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 16 *
                            static_cast<int64_t>(n) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_QuantizedGemmM2xfp)->Arg(128)->Arg(256);

void
BM_ReferenceGemm(benchmark::State &state)
{
    size_t n = static_cast<size_t>(state.range(0));
    Matrix w(n, n), x(16, n);
    Rng rng(8);
    for (auto &v : w.flat())
        v = static_cast<float>(rng.normal(0, 0.05));
    for (auto &v : x.flat())
        v = static_cast<float>(rng.normal(0, 1));
    for (auto _ : state) {
        Matrix y = matmulNt(x, w);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 16 *
                            static_cast<int64_t>(n) *
                            static_cast<int64_t>(n));
}
BENCHMARK(BM_ReferenceGemm)->Arg(128)->Arg(256);

} // anonymous namespace

BENCHMARK_MAIN();
