/**
 * @file
 * Tbl. 4 — reasoning-task accuracy on DeepSeek-R1-Distill-Qwen
 * (1.5B/7B): MXFP4 cripples reasoning; M2XFP recovers most of it.
 * Reasoning items use 8-way candidate sets (finer distinctions, the
 * regime where logit perturbations flip decisions).
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

namespace {

struct Task
{
    const char *name;
    uint64_t seed;
};

const Task tasks[] = {{"AIME-90", 0xb1},
                      {"MATH-500", 0xb2},
                      {"GSM8K", 0xb3},
                      {"GPQA", 0xb4},
                      {"LiveCodeBench", 0xb5}};

struct ModelAnchors
{
    model::ModelConfig (*cfg)();
    double fp16[5];
};

const ModelAnchors anchors[] = {
    {r1_qwen_1_5b, {21.11, 85.40, 84.76, 36.36, 17.54}},
    {r1_qwen_7b, {45.56, 93.80, 90.83, 50.51, 35.82}},
};

} // anonymous namespace

int
main()
{
    bench::banner("Table 4",
                  "reasoning accuracy, DeepSeek-R1-Distill-Qwen");

    for (const ModelAnchors &ma : anchors) {
        ModelConfig cfg = ma.cfg();
        Evaluator ev(cfg, bench::evalTokens, bench::seqLen);
        std::vector<std::string> header{"Method"};
        for (const Task &t : tasks)
            header.push_back(t.name);
        header.push_back("Avg.");
        TextTable tab(header);

        for (const char *method : {"FP16", "MXFP4", "M2XFP"}) {
            ev.model().rebuild(scheme(method).factory);
            EvalRun run = ev.run();
            tab.beginRow();
            tab.cell(method);
            double sum = 0.0;
            for (size_t k = 0; k < 5; ++k) {
                double acc = ev.accuracyFrom(run, ma.fp16[k], 8,
                                             tasks[k].seed);
                sum += acc;
                tab.cell(acc, 2);
            }
            tab.cell(sum / 5.0, 2);
            tab.endRow();
        }
        tab.print("Reasoning accuracy, " + cfg.name);
    }
    return 0;
}
