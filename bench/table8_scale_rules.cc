/**
 * @file
 * Tbl. 8 — the five shared-scale computation rules (floor / ceil /
 * RTN1 / RTN2 / RTNE) under MXFP4 and M2XFP. For FP4, RTNE and ceil
 * coincide (M = 1.5 P); M2XFP improves over MXFP4 under every rule.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Table 8",
                  "shared-scale rules: MXFP4 vs M2XFP perplexity");

    TextTable t({"Rule", "LLaMA2 MXFP4", "LLaMA2 M2XFP",
                 "LLaMA3 MXFP4", "LLaMA3 M2XFP"});

    Evaluator ev2(llama2_7b(), bench::evalTokens, bench::seqLen);
    Evaluator ev3(llama3_8b(), bench::evalTokens, bench::seqLen);

    const struct
    {
        const char *label;
        const char *suffix;
    } rules[] = {{"floor", "floor"},
                 {"ceil/RTNE", "ceil"},
                 {"RTN1", "rtn1"},
                 {"RTN2", "rtn2"},
                 {"RTNE", "rtne"}};

    for (const auto &r : rules) {
        t.beginRow();
        t.cell(r.label);
        for (Evaluator *ev : {&ev2, &ev3}) {
            ev->model().rebuild(
                scheme(std::string("MXFP4-") + r.suffix).factory);
            t.cell(ev->proxyPerplexity(), 2);
            ev->model().rebuild(
                scheme(std::string("M2XFP-") + r.suffix).factory);
            t.cell(ev->proxyPerplexity(), 2);
        }
        t.endRow();
    }
    t.print("Perplexity under each scale rule (RTNE == ceil for "
            "FP4)");
    return 0;
}
