/**
 * @file
 * Shared Fig. 6 / Fig. 7 DSE driver.
 */

#ifndef M2X_BENCH_DSE_DRIVER_HH__
#define M2X_BENCH_DSE_DRIVER_HH__

/** Run the metadata DSE; @p adaptive selects the Fig. 7 variant. */
int runDseBench(bool adaptive);

#endif // M2X_BENCH_DSE_DRIVER_HH__
