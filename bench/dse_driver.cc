/**
 * @file
 * Shared driver for Fig. 6 (fixed shared scale) and Fig. 7
 * (adaptive): encoding design-space exploration over Elem-EM-top1/top2, Sg-EM-1/2bit, Sg-EE-1/2bit swept over
 * subgroup sizes 32..2, against the MXFP4 and NVFP4 reference
 * points. Metric: MSE between quantized-model and FP32 logits
 * (the paper's §4.2.1 metric); X axis: equivalent bit width (Eq. 2).
 */

#include <memory>

#include "bench_common.hh"
#include "core/elem_em.hh"
#include "core/sg_em.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

namespace {

std::function<std::shared_ptr<GroupQuantizer>()>
elemEm(unsigned sub, unsigned topk, bool adaptive)
{
    return [=]() {
        ElemEmConfig c;
        c.groupSize = 32;
        c.subgroupSize = sub;
        c.topK = topk;
        c.adaptiveScale = adaptive;
        return std::make_shared<ElemEmQuantizer>(c);
    };
}

std::function<std::shared_ptr<GroupQuantizer>()>
sgEmEe(unsigned sub, unsigned bits, bool ee, bool adaptive)
{
    return [=]() {
        SgEmConfig c;
        c.groupSize = 32;
        c.subgroupSize = sub;
        c.metaBits = bits;
        c.extraExponent = ee;
        c.adaptiveScale = adaptive;
        return std::make_shared<SgEmQuantizer>(c);
    };
}

} // anonymous namespace

#include "dse_driver.hh"

int
runDseBench(bool adaptive)
{
    bench::banner(adaptive ? "Figure 7" : "Figure 6",
                  adaptive
                      ? "DSE under ADAPTIVE shared scale"
                      : "DSE under FIXED shared scale (logit MSE vs "
                        "EBW)");

    const unsigned subs[] = {32, 16, 8, 4, 2};

    for (const ModelConfig &cfg :
         {llama2_7b(), llama3_8b(), falcon_7b(), mistral_7b()}) {
        Evaluator ev(cfg, 128, bench::seqLen);
        TextTable t({"Strategy", "Subgroup", "EBW", "LogitMSE"});

        auto eval_pair =
            [&](const std::string &name, unsigned sub, double ebw,
                std::function<std::shared_ptr<GroupQuantizer>()> q) {
                ev.model().rebuild(quantizedLinearFactory(q, q));
                EvalRun run = ev.run();
                t.beginRow();
                t.cell(name);
                t.cell(std::to_string(sub));
                t.cell(ebw, 4);
                t.cell(run.logitMse, 4);
                t.endRow();
            };

        for (unsigned sub : subs) {
            double n_sub = 32.0 / sub;
            eval_pair("Elem-EM-top1", sub,
                      4.25 + 2.0 * n_sub / 32.0,
                      elemEm(sub, 1, adaptive));
        }
        for (unsigned sub : subs) {
            if (sub < 2)
                continue;
            double n_sub = 32.0 / sub;
            eval_pair("Elem-EM-top2", sub,
                      4.25 + 4.0 * n_sub / 32.0,
                      elemEm(sub, 2, adaptive));
        }
        for (unsigned bits : {1u, 2u}) {
            for (unsigned sub : subs) {
                double n_sub = 32.0 / sub;
                eval_pair("Sg-EM-" + std::to_string(bits) + "bit",
                          sub, 4.25 + bits * n_sub / 32.0,
                          sgEmEe(sub, bits, false, adaptive));
            }
        }
        for (unsigned bits : {1u, 2u}) {
            for (unsigned sub : subs) {
                double n_sub = 32.0 / sub;
                eval_pair("Sg-EE-" + std::to_string(bits) + "bit",
                          sub, 4.25 + bits * n_sub / 32.0,
                          sgEmEe(sub, bits, true, adaptive));
            }
        }
        // Reference points.
        ev.model().rebuild(scheme("MXFP4").factory);
        EvalRun mx = ev.run();
        t.addRow({"MXFP4", "-", "4.2500", fmtNum(mx.logitMse, 4)});
        ev.model().rebuild(scheme("NVFP4").factory);
        EvalRun nv = ev.run();
        t.addRow({"NVFP4", "-", "4.5000", fmtNum(nv.logitMse, 4)});

        t.print("DSE on " + cfg.name +
                (adaptive ? " (adaptive shared scale)"
                          : " (fixed shared scale)"));
    }
    return 0;
}
