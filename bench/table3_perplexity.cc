/**
 * @file
 * Tbl. 3 — Wikitext proxy perplexity of M2XFP vs the baseline
 * accelerator quantizers, W4A4, group 32, E8M0 shared scale.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Table 3", "perplexity vs baseline accelerators "
                             "(lower is better)");

    auto models = table3Models();
    auto methods = table3Methods();

    std::vector<std::string> header{"Method"};
    for (const auto &m : models)
        header.push_back(m.name);
    TextTable t(header);

    std::vector<Evaluator> evals;
    evals.reserve(models.size());
    for (const auto &cfg : models)
        evals.emplace_back(cfg, bench::evalTokens, bench::seqLen);

    for (const auto &method : methods) {
        t.beginRow();
        t.cell(method);
        for (auto &ev : evals) {
            ev.model().rebuild(scheme(method).factory);
            t.cell(ev.proxyPerplexity(), 2);
        }
        t.endRow();
    }
    t.print("Proxy perplexity (FP16 rows anchored to the paper; "
            "degradation measured)");
    return 0;
}
