/**
 * @file
 * Fig. 4 — perplexity vs equivalent bit width as the group size of
 * conventional (FP16-scaled) FP4 group quantization shrinks from
 * per-channel to g-16, on LLaMA-7B. Gains plateau beyond g-32 while
 * EBW keeps climbing.
 */

#include <memory>

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/transformer.hh"
#include "mx/fp16_scale.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Figure 4",
                  "perplexity vs EBW across quantization granularity");

    Evaluator ev(llama1_7b(), bench::evalTokens, bench::seqLen);
    struct Point
    {
        const char *label;
        unsigned group; // 0 = whole channel
    };
    Point points[] = {{"channel", 0}, {"g-256", 256}, {"g-128", 128},
                      {"g-64", 64},   {"g-32", 32},   {"g-16", 16}};

    TextTable t({"Granularity", "EBW", "Perplexity"});
    for (const Point &p : points) {
        // A per-channel scale amortizes over the hidden width; the
        // synthetic substrate's rows are shorter than 4096, so
        // "channel" uses one group per row (EBW reported for the
        // paper's 4096-wide channels).
        unsigned g = p.group == 0 ? 4096 : p.group;
        auto make = [g]() {
            return std::make_shared<Fp16ScaleQuantizer>(
                Minifloat::fp4e2m1(), g);
        };
        ev.model().rebuild(quantizedLinearFactory(make, make));
        double ebw = 4.0 + 16.0 / g;
        t.beginRow();
        t.cell(p.label);
        t.cell(ebw, 4);
        t.cell(ev.proxyPerplexity(), 3);
        t.endRow();
    }
    t.print("FP4 + FP16 group scale on LLaMA-7B (paper Fig. 4)");
    return 0;
}
