/**
 * @file
 * Shared configuration for the paper-reproduction bench binaries.
 * All perplexity benches must use the same evaluation window as the
 * coupling calibration (see src/model/config.cc).
 */

#ifndef M2X_BENCH_COMMON_HH__
#define M2X_BENCH_COMMON_HH__

#include <cstdio>

#include "runtime/telemetry.hh"

namespace m2x {
namespace bench {

/** Evaluation stream length used by every perplexity bench. */
constexpr size_t evalTokens = 320;
/** Forward-pass window length. */
constexpr size_t seqLen = 64;

/** Print the standard bench banner. */
inline void
banner(const char *exp_id, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", exp_id, what);
    std::printf("(synthetic substrate; see DESIGN.md §3 for the "
                "substitutions)\n");
    std::printf("================================================="
                "=============\n\n");
    std::fflush(stdout);
}

/**
 * Wall-clock helper on the shared telemetry clock
 * (runtime::telemetry::nowNanos — monotonic steady_clock), so bench
 * timings and trace spans share one time base.
 */
class Stopwatch
{
  public:
    Stopwatch() : start_(runtime::telemetry::nowNanos()) {}
    double
    seconds() const
    {
        return 1e-9 * static_cast<double>(
                          runtime::telemetry::nowNanos() - start_);
    }

  private:
    uint64_t start_;
};

} // namespace bench
} // namespace m2x

#endif // M2X_BENCH_COMMON_HH__
