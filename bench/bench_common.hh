/**
 * @file
 * Shared configuration for the paper-reproduction bench binaries.
 * All perplexity benches must use the same evaluation window as the
 * coupling calibration (see src/model/config.cc).
 */

#ifndef M2X_BENCH_COMMON_HH__
#define M2X_BENCH_COMMON_HH__

#include <chrono>
#include <cstdio>

namespace m2x {
namespace bench {

/** Evaluation stream length used by every perplexity bench. */
constexpr size_t evalTokens = 320;
/** Forward-pass window length. */
constexpr size_t seqLen = 64;

/** Print the standard bench banner. */
inline void
banner(const char *exp_id, const char *what)
{
    std::printf("================================================="
                "=============\n");
    std::printf("%s — %s\n", exp_id, what);
    std::printf("(synthetic substrate; see DESIGN.md §3 for the "
                "substitutions)\n");
    std::printf("================================================="
                "=============\n\n");
    std::fflush(stdout);
}

/** Wall-clock helper. */
class Stopwatch
{
  public:
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace bench
} // namespace m2x

#endif // M2X_BENCH_COMMON_HH__
