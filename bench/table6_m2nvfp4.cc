/**
 * @file
 * Tbl. 6 — applying M2XFP's metadata augmentation on top of NVFP4:
 * M2-NVFP4 (Sg-EM weights / Elem-EM activations over the FP8 block
 * scale) vs plain NVFP4, all six models.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Table 6", "NVFP4 vs M2-NVFP4 proxy perplexity");

    auto models = table3Models();
    std::vector<std::string> header{"Method"};
    for (const auto &m : models)
        header.push_back(m.name);
    TextTable t(header);

    std::vector<Evaluator> evals;
    evals.reserve(models.size());
    for (const auto &cfg : models)
        evals.emplace_back(cfg, bench::evalTokens, bench::seqLen);

    for (const char *method : {"FP16", "NVFP4", "M2-NVFP4"}) {
        t.beginRow();
        t.cell(method);
        for (auto &ev : evals) {
            ev.model().rebuild(scheme(method).factory);
            t.cell(ev.proxyPerplexity(), 2);
        }
        t.endRow();
    }
    t.print("Metadata augmentation generalizes to NVFP4 "
            "(effective bits rise 4.5 -> 5.0)");
    return 0;
}
