/**
 * @file
 * Fig. 6 — metadata DSE under a fixed shared scale.
 */

#include "dse_driver.hh"

int
main()
{
    return runDseBench(false);
}
