/**
 * @file
 * Fig. 13 — normalized latency and energy of M2XFP vs the baseline
 * MX accelerators across six LLMs (seq 4096 linear layers), all
 * normalized to a W8A8 MXINT8 accelerator on the same 32x32 4-bit
 * PE array. Energy is broken into core / buffer / DRAM / static.
 */

#include "bench_common.hh"
#include "sim/accelerator.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::sim;

int
main()
{
    bench::banner("Figure 13",
                  "normalized latency and energy vs MX accelerators");

    auto accels = fig13Accelerators();
    auto models = fig13Models();

    TextTable lat_t({"Model", "MX-OliVe", "MX-ANT", "MX-M-ANT",
                     "MicroScopiQ", "M2XFP"});
    TextTable en_t({"Model", "MX-OliVe", "MX-ANT", "MX-M-ANT",
                    "MicroScopiQ", "M2XFP"});

    std::vector<double> lat_sum(accels.size(), 0.0);
    std::vector<double> en_sum(accels.size(), 0.0);

    for (const LlmDims &dims : models) {
        auto workload = linearLayerGemms(dims);
        SimStats ref =
            TileSimulator(mxint8Reference()).simulateWorkload(workload);
        lat_t.beginRow();
        en_t.beginRow();
        lat_t.cell(dims.name);
        en_t.cell(dims.name);
        for (size_t a = 0; a < accels.size(); ++a) {
            SimStats s =
                TileSimulator(accels[a]).simulateWorkload(workload);
            double nl = s.seconds / ref.seconds;
            double ne = s.totalEnergyJ() / ref.totalEnergyJ();
            lat_sum[a] += nl;
            en_sum[a] += ne;
            lat_t.cell(nl, 3);
            en_t.cell(ne, 3);
        }
        lat_t.endRow();
        en_t.endRow();
    }
    lat_t.beginRow();
    en_t.beginRow();
    lat_t.cell("Average");
    en_t.cell("Average");
    for (size_t a = 0; a < accels.size(); ++a) {
        lat_t.cell(lat_sum[a] / models.size(), 3);
        en_t.cell(en_sum[a] / models.size(), 3);
    }
    lat_t.endRow();
    en_t.endRow();

    lat_t.print("Normalized latency (vs MXINT8 W8A8; lower is "
                "better)");
    en_t.print("Normalized energy (vs MXINT8 W8A8; lower is better)");

    // Headline ratios vs the SOTA baseline (MicroScopiQ).
    size_t msq = 3, m2 = 4;
    std::printf("M2XFP speedup vs MicroScopiQ (avg): %.2fx\n",
                lat_sum[msq] / lat_sum[m2]);
    std::printf("M2XFP energy gain vs MicroScopiQ (avg): %.2fx\n",
                en_sum[msq] / en_sum[m2]);

    // Energy breakdown for the average workload.
    TextTable br({"Accelerator", "Core", "Buffer", "DRAM", "Static"});
    for (const auto &cfg : accels) {
        SimStats tot;
        for (const LlmDims &dims : models)
            tot += TileSimulator(cfg).simulateWorkload(
                linearLayerGemms(dims));
        double e = tot.totalEnergyJ();
        br.beginRow();
        br.cell(cfg.name);
        br.cell(100.0 * tot.coreEnergyJ / e, 1);
        br.cell(100.0 * tot.bufferEnergyJ / e, 1);
        br.cell(100.0 * tot.dramEnergyJ / e, 1);
        br.cell(100.0 * tot.staticEnergyJ / e, 1);
        br.endRow();
    }
    br.print("Energy breakdown (percent of each accelerator's "
             "total)");
    return 0;
}
