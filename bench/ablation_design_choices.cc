/**
 * @file
 * Ablations over the design choices DESIGN.md §6 calls out:
 *  1. bias clamp (2-bit, paper) vs unclamped 3-bit metadata,
 *  2. top-1 vs top-2 Elem-EM,
 *  3. subgroup size 4 / 8 / 16,
 *  4. adaptive vs fixed shared scale per tensor role,
 *  5. the §6.4 extension: quantizing attention (KV cache).
 */

#include <memory>

#include "bench_common.hh"
#include "core/elem_em.hh"
#include "core/m2xfp.hh"
#include "core/sg_em.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

namespace {

using QFn = std::function<std::shared_ptr<GroupQuantizer>()>;

QFn
actQ(unsigned sub, unsigned topk, bool clamp, bool adaptive)
{
    return [=]() {
        ElemEmConfig c;
        c.subgroupSize = sub;
        c.topK = topk;
        c.clampBias = clamp;
        c.adaptiveScale = adaptive;
        return std::make_shared<ElemEmQuantizer>(c);
    };
}

QFn
wtQ(unsigned sub, bool adaptive)
{
    return [=]() {
        SgEmConfig c;
        c.subgroupSize = sub;
        c.adaptiveScale = adaptive;
        return std::make_shared<SgEmQuantizer>(c);
    };
}

} // anonymous namespace

int
main()
{
    bench::banner("Ablations", "M2XFP design-choice sensitivity "
                               "(LLaMA2-7B substrate)");

    Evaluator ev(llama2_7b(), bench::evalTokens, bench::seqLen);
    TextTable t({"Variant", "Act EBW", "Wt EBW", "KL", "Proxy PPL"});

    auto run_row = [&](const std::string &name, QFn aq, QFn wq,
                       double a_ebw, double w_ebw) {
        ev.model().rebuild(quantizedLinearFactory(wq, aq));
        EvalRun r = ev.run();
        t.beginRow();
        t.cell(name);
        t.cell(a_ebw, 3);
        t.cell(w_ebw, 3);
        t.cell(r.meanKl, 4);
        t.cell(ev.perplexityFrom(r), 3);
        t.endRow();
    };

    // Paper configuration.
    run_row("paper (top1, clamp, sg8, adaptive-W)",
            actQ(8, 1, true, false), wtQ(8, true), 4.5, 4.5);
    // 1. Bias clamp.
    run_row("unclamped 3-bit metadata", actQ(8, 1, false, false),
            wtQ(8, true), 4.625, 4.5);
    // 2. Top-2.
    run_row("top-2 activations", actQ(8, 2, true, false), wtQ(8, true),
            4.75, 4.5);
    // 3. Subgroup size.
    run_row("subgroup 4", actQ(4, 1, true, false), wtQ(4, true), 4.75,
            4.75);
    run_row("subgroup 16", actQ(16, 1, true, false), wtQ(16, true),
            4.375, 4.375);
    // 4. Scale adaptation.
    run_row("fixed-scale weights", actQ(8, 1, true, false),
            wtQ(8, false), 4.5, 4.5);
    run_row("adaptive-scale activations", actQ(8, 1, true, true),
            wtQ(8, true), 4.5, 4.5);

    t.print("Each row perturbs one design choice from the paper "
            "config");

    // 5. KV-cache extension (§6.4).
    TextTable kv({"Attention operands", "KL", "Proxy PPL"});
    ev.model().rebuild(scheme("M2XFP").factory);
    EvalRun base = ev.run();
    kv.addRow({"FP32 (paper main config)", fmtNum(base.meanKl, 4),
               fmtNum(ev.perplexityFrom(base), 3)});
    ev.model().setKvQuantizers(
        []() {
            return std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer());
        },
        []() {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        });
    EvalRun kvr = ev.run();
    kv.addRow({"M2XFP K/V (Sg-EM) + Q/P (Elem-EM)",
               fmtNum(kvr.meanKl, 4),
               fmtNum(ev.perplexityFrom(kvr), 3)});
    ev.model().setKvQuantizers(nullptr, nullptr);
    kv.print("§6.4 extension: quantizing the attention KV path");
    return 0;
}
