/**
 * @file
 * Packed-domain runtime throughput: online activation packing
 * (functional codec vs the fast-path encoder, per ISA tier), packed
 * GEMM (per ISA kernel tier, the cache-blocked panel driver) and
 * PackedLinear forward vs the reference quantized path — with the
 * quantize/GEMM wall-time split — at several shapes and thread
 * counts (1/2/4/8 capped at the hardware width), plus the legacy
 * tile-at-a-time driver as a trajectory anchor (blocked_vs_pr3_1t),
 * a per-block-size MC/KC/NC sweep, a whole-model InferenceSession
 * run and an autoregressive decode run (tokens/s and resident KV
 * bytes per token, packed M2XFP cache vs the fp32-cache oracle
 * baseline). Writes the machine-readable BENCH_runtime.json — the
 * repo's perf trajectory point for the execution runtime, including
 * which SIMD tier ran — which tools/check_bench_regression.py
 * compares against the committed baseline in CI.
 *
 * Numerical verification precedes every timing loop: the scalar
 * GEMM tier must be bit-exact against matmulNt over the unpacked
 * operands, vector GEMM tiers within 1e-6 relative of it, and every
 * encoder tier byte-identical to the functional packer.
 *
 * Thread counts are limited to what the machine can actually run in
 * parallel: on a 1-hardware-thread box multi-thread rows measure
 * nothing but scheduler noise, so only the 1-thread rows are
 * emitted (hardware_threads in the JSON records the truth).
 *
 * The decode section runs with the telemetry metrics registry
 * enabled: per-step latency lands in the `decode.step_ns` histogram
 * and the JSON gains `step_latency_p50/p95/p99_s` plus thread-pool
 * busy-time/utilization per mode (see docs/OBSERVABILITY.md). The
 * earlier sections run with telemetry in its default (off) state so
 * their rows keep measuring the uninstrumented hot path.
 *
 * Usage: throughput_runtime [--quick] [--out PATH] [--trace PATH]
 *   --quick  one small shape, short timing windows (CI smoke)
 *   --out    output path (default BENCH_runtime.json)
 *   --trace  also collect a Chrome trace_event JSON of the run
 *            (equivalent to M2X_TRACE=PATH; load it in Perfetto)
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "model/config.hh"
#include "model/transformer.hh"
#include "runtime/decode_session.hh"
#include "runtime/inference_session.hh"
#include "runtime/kv_cache.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime/packed_linear.hh"
#include "runtime/simd.hh"
#include "runtime/telemetry.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace {

using namespace m2x;
using namespace m2x::runtime;
using bench::Stopwatch;

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double dof)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(dof));
    return m;
}

/** One timing window: seconds per call over @p reps calls. */
template <typename F>
double
windowSeconds(F &&fn, int reps)
{
    Stopwatch sw;
    for (int i = 0; i < reps; ++i)
        fn();
    return sw.seconds() / reps;
}

/**
 * Repetition count whose window just reaches @p min_s. Runs the
 * workload while calibrating, so it doubles as warm-up (decode
 * tables, allocator, pool); @p first_s gets the calibrating window's
 * per-call seconds.
 */
template <typename F>
int
calibrateReps(F &&fn, double min_s, double *first_s = nullptr)
{
    fn(); // warm up
    int reps = 1;
    for (;;) {
        double t = windowSeconds(fn, reps) * reps;
        if (t >= min_s) {
            if (first_s)
                *first_s = t / reps;
            return reps;
        }
        int grow = t <= 1e-9
                       ? reps * 16
                       : static_cast<int>(std::ceil(
                             static_cast<double>(reps) * 1.3 *
                             min_s / t));
        reps = std::max(reps + 1, grow);
    }
}

/**
 * Seconds per call, measured over an adaptive repetition count.
 * Returns the fastest of three >= min_s windows: scheduler and
 * frequency noise on a shared machine only ever slows a window down,
 * so the minimum is the estimator closest to the true cost — and the
 * one that keeps same-run ratios (flash_vs_old, packed-vs-fp32)
 * stable enough to gate on.
 */
template <typename F>
double
timeIt(F &&fn, double min_s)
{
    double best;
    int reps = calibrateReps(fn, min_s, &best);
    for (int w = 0; w < 2; ++w)
        best = std::min(best, windowSeconds(fn, reps));
    return best;
}

double
gflops(size_t m, size_t n, size_t k, double seconds)
{
    return 2.0 * static_cast<double>(m) * static_cast<double>(n) *
           static_cast<double>(k) / seconds * 1e-9;
}

struct Shape
{
    size_t m, n, k;
};

void
requireBitExact(const Matrix &got, const Matrix &want,
                const char *what)
{
    m2x_assert(got.sameShape(want), "%s shape mismatch", what);
    for (size_t i = 0; i < want.size(); ++i)
        m2x_assert(got.flat()[i] == want.flat()[i],
                   "%s not bit-exact at element %zu", what, i);
}

void
requireClose(const Matrix &got, const Matrix &want, double rel,
             const char *what)
{
    m2x_assert(got.sameShape(want), "%s shape mismatch", what);
    for (size_t i = 0; i < want.size(); ++i) {
        double g = got.flat()[i], w = want.flat()[i];
        double tol = rel * std::max(1.0, std::abs(w));
        m2x_assert(std::abs(g - w) <= tol,
                   "%s outside tolerance at element %zu "
                   "(got %g want %g)", what, i, g, w);
    }
}

/** Hold @p got to the contract of the tier that produced it. */
void
requireMatch(const Matrix &got, const Matrix &want, SimdIsa isa,
             double rel, const char *what)
{
    if (isa == SimdIsa::Scalar)
        requireBitExact(got, want, what);
    else
        requireClose(got, want, rel, what);
}

/** The machine's true parallel capacity (never the M2X_THREADS knob). */
unsigned
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

/**
 * Thread counts worth measuring: the 1/2/4/8 ladder plus the machine
 * width, but never more lanes than the hardware has — an
 * oversubscribed row reports contention, not scaling, so a
 * 1-hardware-thread box honestly emits only 1-thread rows.
 */
std::vector<unsigned>
threadCounts(bool quick)
{
    unsigned hw = hardwareThreads();
    std::vector<unsigned> candidates =
        quick ? std::vector<unsigned>{1, 4}
              : std::vector<unsigned>{1, 2, 4, 8};
    std::vector<unsigned> counts;
    for (unsigned c : candidates)
        if (c <= hw)
            counts.push_back(c);
    if (counts.empty())
        counts.push_back(1);
    if (hw > 1 &&
        std::find(counts.begin(), counts.end(), hw) == counts.end())
        counts.push_back(hw);
    return counts;
}

void
requireStreamsEqual(const PackedM2xfpTensor &got,
                    const PackedM2xfpTensor &want, const char *what)
{
    m2x_assert(got.elementStream() == want.elementStream() &&
               got.scaleStream() == want.scaleStream() &&
               got.metadataStream() == want.metadataStream(),
               "%s streams differ from the functional packer", what);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_runtime.json";
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            m2x_fatal("usage: %s [--quick] [--out PATH] "
                      "[--trace PATH]", argv[0]);
        }
    }
    if (!trace_path.empty())
        runtime::telemetry::traceStart(trace_path);

    bench::banner("RUNTIME", "packed-domain execution throughput");
    double min_s = quick ? 0.02 : 0.2;
    // The quick shape is one of the full-run shapes so the smoke
    // rows match the committed baseline's section/shape/isa/threads
    // keys and check_bench_regression.py can compare them.
    std::vector<Shape> shapes =
        quick ? std::vector<Shape>{{16, 192, 192}}
              : std::vector<Shape>{{16, 192, 192},
                                   {64, 512, 192},
                                   {64, 192, 512},
                                   {128, 512, 512},
                                   {512, 512, 512}};
    std::vector<unsigned> counts = threadCounts(quick);
    std::vector<SimdIsa> isas = supportedSimdIsas();

    std::printf("SIMD dispatch: active %s (supported:",
                activeSimdIsaName());
    for (SimdIsa isa : isas)
        std::printf(" %s", simdIsaName(isa));
    std::printf(")\n\n");

    FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        m2x_fatal("cannot open '%s' for writing", out_path.c_str());
    std::fprintf(out,
                 "{\n"
                 "  \"bench\": \"throughput_runtime\",\n"
                 "  \"quick\": %s,\n"
                 "  \"hardware_threads\": %u,\n"
                 "  \"default_threads\": %u,\n"
                 "  \"simd\": {\"active\": \"%s\", \"supported\": [",
                 quick ? "true" : "false", hardwareThreads(),
                 ThreadPool::defaultThreads(), activeSimdIsaName());
    for (size_t i = 0; i < isas.size(); ++i)
        std::fprintf(out, "%s\"%s\"", i ? ", " : "",
                     simdIsaName(isas[i]));
    std::fprintf(out, "]},\n  \"gemm\": [");

    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();

    for (size_t si = 0; si < shapes.size(); ++si) {
        const Shape &sh = shapes[si];
        Matrix a = randomMatrix(sh.m, sh.k, 10 + si, 4.0);
        Matrix w = randomMatrix(sh.n, sh.k, 20 + si, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        Matrix a_deq = pa.unpackActivations(aq);
        Matrix w_deq = pw.unpackWeights(wq);

        // Verify before timing: the scalar tier is the bit-exact
        // oracle, every vector tier is held to 1e-6 relative — the
        // legacy PR3 tiled driver included, since it anchors the
        // blocked_vs_pr3 ratio below.
        Matrix ref_out = matmulNt(a_deq, w_deq);
        for (SimdIsa isa : isas) {
            requireMatch(packedMatmulNt(pa, pw, nullptr, isa),
                         ref_out, isa, 1e-6, "packed GEMM");
            Matrix tiled;
            detail::packedMatmulNtTiled(pa, pw, tiled, nullptr,
                                        isa);
            requireMatch(tiled, ref_out, isa, 1e-6,
                         "PR3 tiled GEMM");
        }

        // Reference: dense GEMM on already-dequantized operands.
        double ref_s =
            timeIt([&] { matmulNt(a_deq, w_deq); }, min_s);
        // Storage-codec path the repo had before this runtime:
        // unpack both operands, then dense GEMM.
        double unpack_s = timeIt(
            [&] {
                matmulNt(pa.unpackActivations(aq),
                         pw.unpackWeights(wq));
            },
            min_s);
        // The PR3 tile-at-a-time driver on its best tier (AVX2 —
        // that is exactly what PR3 shipped), 1 thread: the committed
        // trajectory point the blocked rework is measured against.
        SimdIsa pr3_isa = simdIsaAvailable(SimdIsa::Avx2)
                              ? SimdIsa::Avx2
                              : SimdIsa::Scalar;
        ThreadPool pool1(1);
        Matrix tiled_out;
        double pr3_s = timeIt(
            [&] {
                detail::packedMatmulNtTiled(pa, pw, tiled_out,
                                            &pool1, pr3_isa);
            },
            min_s);

        std::printf("GEMM %zux%zux%zu  ref %.1f GF  unpack+ref "
                    "%.1f GF\n",
                    sh.m, sh.n, sh.k,
                    gflops(sh.m, sh.n, sh.k, ref_s),
                    gflops(sh.m, sh.n, sh.k, unpack_s));

        size_t dense_a = sh.m * sh.k * sizeof(float);
        size_t dense_w = sh.n * sh.k * sizeof(float);
        std::fprintf(
            out,
            "%s\n    {\"m\": %zu, \"n\": %zu, \"k\": %zu,\n"
            "     \"bytes_packed_a\": %zu, \"bytes_packed_w\": %zu,\n"
            "     \"bytes_dense_a\": %zu, \"bytes_dense_w\": %zu,\n"
            "     \"bits_per_element\": %.3f,\n"
            "     \"ref_gemm_s\": %.6e, \"ref_gemm_gflops\": %.3f,\n"
            "     \"unpack_gemm_s\": %.6e,\n"
            "     \"results\": [",
            si ? "," : "", sh.m, sh.n, sh.k, pa.totalBytes(),
            pw.totalBytes(), dense_a, dense_w, pw.bitsPerElement(),
            ref_s, gflops(sh.m, sh.n, sh.k, ref_s), unpack_s);

        // Indexed by SimdIsa: [scalar, avx2, avx512].
        double single_thread_s[3] = {0.0, 0.0, 0.0};
        bool first_entry = true;
        for (SimdIsa isa : isas) {
            for (unsigned tc : counts) {
                ThreadPool pool(tc);
                double s = timeIt(
                    [&] { packedMatmulNt(pa, pw, &pool, isa); },
                    min_s);
                if (tc == 1)
                    single_thread_s[static_cast<size_t>(isa)] = s;
                std::printf("  packed/%-6s @%2u threads: %6.1f GF  "
                            "(%.2fx ref, %.2fx unpack+ref)\n",
                            simdIsaName(isa), tc,
                            gflops(sh.m, sh.n, sh.k, s), ref_s / s,
                            unpack_s / s);
                std::fprintf(out,
                             "%s\n      {\"isa\": \"%s\", "
                             "\"threads\": %u, "
                             "\"packed_gemm_s\": %.6e, "
                             "\"gflops\": %.3f, "
                             "\"speedup_vs_ref_gemm\": %.3f, "
                             "\"speedup_vs_unpack_gemm\": %.3f}",
                             first_entry ? "" : ",",
                             simdIsaName(isa), tc, s,
                             gflops(sh.m, sh.n, sh.k, s), ref_s / s,
                             unpack_s / s);
                first_entry = false;
            }
        }
        std::fprintf(out, "\n    ]");
        std::fprintf(out,
                     ",\n     \"pr3_isa\": \"%s\", "
                     "\"pr3_tiled_1t_s\": %.6e",
                     simdIsaName(pr3_isa), pr3_s);
        // Blocked-vs-PR3 at 1 thread compares the blocked driver on
        // its best tier against the tile-at-a-time driver on its
        // best tier — the honest "did the rework pay off" number.
        double best_1t = 0.0;
        for (size_t t = 3; t-- > 0;)
            if (single_thread_s[t] > 0.0) {
                best_1t = single_thread_s[t];
                break;
            }
        if (best_1t > 0.0) {
            double r = pr3_s / best_1t;
            std::printf("  blocked vs PR3 tiled @1 thread: %.2fx\n",
                        r);
            std::fprintf(out,
                         ",\n     \"blocked_vs_pr3_1t\": %.3f", r);
        }
        if (single_thread_s[1] > 0.0) {
            double ratio =
                single_thread_s[0] / single_thread_s[1];
            std::printf("  avx2 vs scalar @1 thread: %.2fx\n",
                        ratio);
            std::fprintf(out,
                         ",\n     \"avx2_vs_scalar_1t\": %.3f",
                         ratio);
        }
        if (single_thread_s[2] > 0.0) {
            double ratio =
                single_thread_s[0] / single_thread_s[2];
            std::printf("  avx512 vs scalar @1 thread: %.2fx\n",
                        ratio);
            std::fprintf(out,
                         ",\n     \"avx512_vs_scalar_1t\": %.3f",
                         ratio);
        }
        std::fprintf(out, "}");
    }

    // Per-block-size sweep: the blocked driver's MC/KC/NC space on
    // the best available tier at 1 thread — the data behind the
    // default blocking choices (and the M2X_GEMM_MC/KC/NC knobs).
    std::fprintf(out, "\n  ],\n  \"gemm_block_sweep\": {");
    {
        Shape sw = quick ? Shape{16, 192, 192}
                         : Shape{512, 512, 512};
        SimdIsa sweep_isa = isas.back();
        Matrix a = randomMatrix(sw.m, sw.k, 70, 4.0);
        Matrix w = randomMatrix(sw.n, sw.k, 71, 6.0);
        PackedM2xfpTensor spa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor spw =
            PackedM2xfpTensor::packWeights(w, wq);
        struct Cfg
        {
            size_t mc, kc, nc;
        };
        std::vector<Cfg> cfgs =
            quick ? std::vector<Cfg>{{32, 128, 32}, {64, 256, 64}}
                  : std::vector<Cfg>{{32, 128, 32},
                                     {64, 256, 64},
                                     {128, 256, 128},
                                     {256, 256, 256},
                                     {128, 512, 256}};
        ThreadPool sweep_pool(1);
        std::fprintf(out,
                     "\n    \"m\": %zu, \"n\": %zu, \"k\": %zu, "
                     "\"isa\": \"%s\", \"threads\": 1,\n"
                     "    \"rows\": [",
                     sw.m, sw.n, sw.k, simdIsaName(sweep_isa));
        Matrix sweep_out;
        for (size_t ci = 0; ci < cfgs.size(); ++ci) {
            detail::GemmBlocking blk = detail::normalizeBlocking(
                sweep_isa, cfgs[ci].mc, cfgs[ci].kc, cfgs[ci].nc);
            double s = timeIt(
                [&] {
                    detail::packedMatmulNtBlocked(
                        spa, spw, sweep_out, &sweep_pool, sweep_isa,
                        blk);
                },
                min_s);
            std::printf("block sweep mc=%3zu kc=%3zu nc=%3zu: "
                        "%6.1f GF\n",
                        blk.mc, blk.kc, blk.nc,
                        gflops(sw.m, sw.n, sw.k, s));
            std::fprintf(out,
                         "%s\n      {\"mc\": %zu, \"kc\": %zu, "
                         "\"nc\": %zu, \"gemm_s\": %.6e, "
                         "\"gflops\": %.3f}",
                         ci ? "," : "", blk.mc, blk.kc, blk.nc, s,
                         gflops(sw.m, sw.n, sw.k, s));
        }
        std::fprintf(out, "\n    ]\n  },\n  \"pack_activations\": [");
    }

    // Online activation packing: the forward hot path's encode side.
    // The functional ElemEmQuantizer packer is the baseline the
    // fast-path rows are normalized against; every fast tier is
    // verified byte-identical before any timing.
    for (size_t si = 0; si < shapes.size(); ++si) {
        const Shape &sh = shapes[si];
        Matrix a = randomMatrix(sh.m, sh.k, 50 + si, 4.0);
        PackedM2xfpTensor want =
            PackedM2xfpTensor::packActivations(a, aq);
        for (SimdIsa isa : isas)
            requireStreamsEqual(
                PackedM2xfpTensor::packActivations(a, aq, nullptr,
                                                   isa),
                want, simdIsaName(isa));

        double func_s = timeIt(
            [&] { PackedM2xfpTensor::packActivations(a, aq); },
            min_s);
        double bytes =
            static_cast<double>(sh.m * sh.k) * sizeof(float);
        std::printf("pack %zux%zu  functional %.3f GB/s\n", sh.m,
                    sh.k, bytes / func_s * 1e-9);
        std::fprintf(out,
                     "%s\n    {\"rows\": %zu, \"cols\": %zu, "
                     "\"input_bytes\": %zu,\n"
                     "     \"functional_pack_s\": %.6e, "
                     "\"functional_gb_per_s\": %.3f,\n"
                     "     \"results\": [",
                     si ? "," : "", sh.m, sh.k,
                     sh.m * sh.k * sizeof(float), func_s,
                     bytes / func_s * 1e-9);

        // Indexed by SimdIsa: [scalar, avx2, avx512].
        double single_thread_s[3] = {0.0, 0.0, 0.0};
        bool first_entry = true;
        for (SimdIsa isa : isas) {
            for (unsigned tc : counts) {
                ThreadPool pool(tc);
                PackedM2xfpTensor buf;
                double s = timeIt(
                    [&] {
                        PackedM2xfpTensor::packActivations(
                            a, aq, &pool, isa, buf);
                    },
                    min_s);
                if (tc == 1)
                    single_thread_s[static_cast<size_t>(isa)] = s;
                std::printf("  fast/%-6s @%2u threads: %6.2f GB/s "
                            "(%.2fx functional)\n",
                            simdIsaName(isa), tc, bytes / s * 1e-9,
                            func_s / s);
                std::fprintf(out,
                             "%s\n      {\"isa\": \"%s\", "
                             "\"threads\": %u, "
                             "\"pack_s\": %.6e, "
                             "\"gb_per_s\": %.3f, "
                             "\"speedup_vs_functional\": %.3f}",
                             first_entry ? "" : ",",
                             simdIsaName(isa), tc, s,
                             bytes / s * 1e-9, func_s / s);
                first_entry = false;
            }
        }
        std::fprintf(out, "\n    ]");
        if (single_thread_s[0] > 0.0)
            std::fprintf(out,
                         ",\n     \"scalar_vs_functional_1t\": %.3f",
                         func_s / single_thread_s[0]);
        if (single_thread_s[1] > 0.0) {
            std::printf("  avx2 vs scalar @1 thread: %.2fx, "
                        "vs functional: %.2fx\n",
                        single_thread_s[0] / single_thread_s[1],
                        func_s / single_thread_s[1]);
            std::fprintf(out,
                         ",\n     \"avx2_vs_scalar_1t\": %.3f"
                         ",\n     \"avx2_vs_functional_1t\": %.3f",
                         single_thread_s[0] / single_thread_s[1],
                         func_s / single_thread_s[1]);
        }
        if (single_thread_s[2] > 0.0) {
            std::printf("  avx512 vs scalar @1 thread: %.2fx, "
                        "vs functional: %.2fx\n",
                        single_thread_s[0] / single_thread_s[2],
                        func_s / single_thread_s[2]);
            std::fprintf(out,
                         ",\n     \"avx512_vs_scalar_1t\": %.3f"
                         ",\n     \"avx512_vs_functional_1t\": %.3f",
                         single_thread_s[0] / single_thread_s[2],
                         func_s / single_thread_s[2]);
        }
        std::fprintf(out, "}");
    }
    std::fprintf(out, "\n  ],\n  \"forward\": [");

    // Layer-level forward: reference QuantizedLinear (online act
    // quantization + dense GEMM) vs PackedLinear (online packing +
    // packed GEMM on the active tier).
    for (size_t si = 0; si < shapes.size(); ++si) {
        const Shape &sh = shapes[si];
        Matrix w = randomMatrix(sh.n, sh.k, 30 + si, 6.0);
        Matrix x = randomMatrix(sh.m, sh.k, 40 + si, 4.0);
        QuantizedLinear ref_lin(
            w,
            std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer()),
            std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer()));
        double ref_s =
            timeIt([&] { ref_lin.forward(x); }, min_s);

        std::fprintf(out,
                     "%s\n    {\"m\": %zu, \"n\": %zu, \"k\": %zu,\n"
                     "     \"isa\": \"%s\",\n"
                     "     \"ref_quantized_forward_s\": %.6e,\n"
                     "     \"results\": [",
                     si ? "," : "", sh.m, sh.n, sh.k,
                     activeSimdIsaName(), ref_s);
        for (size_t ci = 0; ci < counts.size(); ++ci) {
            ThreadPool pool(counts[ci]);
            PackedLinear packed(w, {}, &pool);
            requireMatch(packed.forward(x), ref_lin.forward(x),
                         packed.simdIsa(), 1e-6, "packed forward");
            // Steady-state serving shape: reused workspace and
            // output buffer, with the quantize/GEMM split
            // accumulated across every timing rep.
            PackedLinear::Workspace ws;
            Matrix y;
            ForwardBreakdown bd;
            double s = timeIt(
                [&] { packed.forward(x, y, &ws, &bd); }, min_s);
            double split = static_cast<double>(bd.quantizeNanos) +
                           static_cast<double>(bd.gemmNanos);
            double qfrac =
                split > 0.0
                    ? static_cast<double>(bd.quantizeNanos) / split
                    : 0.0;
            std::printf("forward %zux%zux%zu @%2u threads: "
                        "%.2fx reference (%.0f%% quantize)\n",
                        sh.m, sh.n, sh.k, counts[ci], ref_s / s,
                        100.0 * qfrac);
            std::fprintf(out,
                         "%s\n      {\"threads\": %u, "
                         "\"packed_forward_s\": %.6e, "
                         "\"quantize_s\": %.6e, "
                         "\"gemm_s\": %.6e, "
                         "\"speedup_vs_ref\": %.3f}",
                         ci ? "," : "", counts[ci], s, s * qfrac,
                         s * (1.0 - qfrac), ref_s / s);
        }
        std::fprintf(out, "\n    ]}");
    }

    // Whole-model serving: an InferenceSession over a zoo model.
    model::ModelConfig mc = model::llama2_7b();
    if (quick) {
        mc.nLayers = 1;
        mc.vocab = 128;
    }
    size_t seq_len = quick ? 16 : 48;
    std::vector<std::vector<int>> batch(quick ? 1 : 2);
    {
        Rng rng(99);
        for (auto &seq : batch) {
            seq.resize(seq_len);
            for (auto &t : seq)
                t = static_cast<int>(rng.uniformInt(mc.vocab));
        }
    }

    model::TinyTransformer ref_model(mc);
    ref_model.rebuild(model::quantizedLinearFactory(
        [] {
            return std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer());
        },
        [] {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        }));
    double ref_model_s = timeIt(
        [&] {
            for (const auto &seq : batch)
                ref_model.forwardLogits(seq);
        },
        min_s);

    // Honors M2X_THREADS (and the machine) like every default pool.
    unsigned model_threads = ThreadPool::defaultThreads();
    InferenceSession session(mc, {.threads = model_threads});
    // Model-level check: vector-tier differences pass through
    // layernorm/softmax, so the tolerance is a little looser than
    // the raw GEMM contract.
    requireMatch(session.forward(batch[0]),
                 ref_model.forwardLogits(batch[0]),
                 session.simdIsa(), 1e-5, "model logits");
    double packed_model_s = timeIt(
        [&] { session.forwardBatch(batch); }, min_s);
    // Re-run exactly one batch on zeroed counters so the per-layer
    // stats below describe a known workload (not the verify pass and
    // timing reps above).
    session.resetStats();
    session.forwardBatch(batch);

    std::printf("model %s  batch %zu x %zu tokens  @%u threads "
                "(%s): %.2fx reference, weights %zu -> %zu bytes\n",
                mc.name.c_str(), batch.size(), seq_len,
                model_threads, simdIsaName(session.simdIsa()),
                ref_model_s / packed_model_s,
                session.denseWeightBytes(),
                session.packedWeightBytes());

    std::fprintf(
        out,
        "\n  ],\n"
        "  \"model\": {\n"
        "    \"name\": \"%s\", \"batch\": %zu, \"seq_len\": %zu,\n"
        "    \"threads\": %u, \"isa\": \"%s\",\n"
        "    \"ref_forward_s\": %.6e,\n"
        "    \"packed_forward_s\": %.6e,\n"
        "    \"speedup_vs_ref\": %.3f,\n"
        "    \"packed_weight_bytes\": %zu,\n"
        "    \"dense_weight_bytes\": %zu,\n"
        "    \"layers\": [",
        mc.name.c_str(), batch.size(), seq_len, model_threads,
        simdIsaName(session.simdIsa()), ref_model_s, packed_model_s,
        ref_model_s / packed_model_s, session.packedWeightBytes(),
        session.denseWeightBytes());
    const auto &stats = session.layerStats();
    for (size_t i = 0; i < stats.size(); ++i) {
        const auto &st = stats[i];
        std::fprintf(out,
                     "%s\n      {\"name\": \"%s\", \"isa\": \"%s\", "
                     "\"calls\": %llu, "
                     "\"seconds\": %.6e, "
                     "\"quantize_s\": %.6e, \"gemm_s\": %.6e, "
                     "\"gflops\": %.3f, "
                     "\"packed_bytes\": %zu}",
                     i ? "," : "", st->name.c_str(),
                     st->isa.c_str(),
                     static_cast<unsigned long long>(
                         st->calls.load()),
                     st->seconds(), st->quantizeSeconds(),
                     st->gemmSeconds(), st->gflops(),
                     st->packedBytes);
    }
    std::fprintf(out, "\n    ]\n  },\n  \"decode\": ");

    // Autoregressive decode: prefill a batch of sequences, then
    // generate token by token against a persistent KV cache. The
    // fp32 cache is the bit-exactness oracle (it replicates the
    // full forward's double-precision attention arithmetic); the
    // packed cache keeps K/V resident in the M2XFP streams at 4.5
    // bits/element and fuses LUT decode into the blocked attention
    // kernels. Parity of both modes against the one-shot forward is
    // verified on a small model before any timing.
    {
        model::ModelConfig vc = model::llama2_7b();
        vc.nLayers = 1;
        vc.vocab = 128;
        std::vector<int> vtoks(12);
        {
            Rng rng(123);
            for (auto &t : vtoks)
                t = static_cast<int>(rng.uniformInt(vc.vocab));
        }
        auto run_split = [&](DecodeSession &s,
                             std::span<const int> toks) {
            size_t seq = s.addSequence();
            Matrix first =
                s.prefill(seq, toks.subspan(0, toks.size() - 2));
            Matrix all(toks.size(), first.cols());
            size_t t0 = 0;
            auto put = [&](const Matrix &m) {
                for (size_t r = 0; r < m.rows(); ++r, ++t0)
                    for (size_t c = 0; c < m.cols(); ++c)
                        all(t0, c) = m(r, c);
            };
            put(first);
            for (size_t t = toks.size() - 2; t < toks.size(); ++t) {
                int tok = toks[t];
                put(s.decode({&tok, 1}));
            }
            return all;
        };
        {
            DecodeSession s(vc, {.kvMode = KvCacheMode::Fp32});
            requireBitExact(run_split(s, vtoks),
                            s.model().forwardLogits(vtoks),
                            "fp32-cache decode logits");
        }
        {
            DecodeSession s(vc, {.kvMode = KvCacheMode::Packed});
            model::TinyTransformer ref(vc);
            ref.rebuild(packedLinearFactory({}, nullptr, nullptr,
                                            s.simdIsa()));
            ref.setKvQuantizers(
                [] {
                    return std::make_shared<ElemEmQuantizer>(
                        makeM2xfpActivationQuantizer());
                },
                nullptr);
            requireClose(run_split(s, vtoks),
                         ref.forwardLogits(vtoks), 1e-5,
                         "packed-cache decode logits");
        }

        model::ModelConfig dc = model::llama2_7b();
        if (quick) {
            dc.nLayers = 1;
            dc.vocab = 128;
        }
        size_t batch = quick ? 4 : 8;
        size_t prefill_tokens = quick ? 8 : 256;
        size_t decode_steps = quick ? 4 : 32;
        unsigned dec_threads = ThreadPool::defaultThreads();

        std::fprintf(out,
                     "{\n"
                     "    \"model\": \"%s\", \"layers\": %u, "
                     "\"d_model\": %u,\n"
                     "    \"batch\": %zu, \"prefill_tokens\": %zu, "
                     "\"decode_steps\": %zu,\n"
                     "    \"threads\": %u, \"isa\": \"%s\",\n"
                     "    \"modes\": [",
                     dc.name.c_str(), dc.nLayers, dc.dModel, batch,
                     prefill_tokens, decode_steps, dec_threads,
                     activeSimdIsaName());

        double tokens_per_s[2] = {0.0, 0.0}; // [fp32, packed]
        KvCacheMode modes[2] = {KvCacheMode::Fp32,
                                KvCacheMode::Packed};
        // The decode loops run with the metrics registry on: the
        // per-step latency distribution comes straight from the
        // decode.step_ns histogram and lane utilization from the
        // pool.lane*.busy_ns counters. Restored to the prior state
        // afterwards (off unless M2X_METRICS was set).
        bool metrics_were_on = telemetry::metricsEnabled();
        telemetry::setMetricsEnabled(true);
        for (int mi = 0; mi < 2; ++mi) {
            KvCacheMode mode = modes[mi];
            DecodeSession s(dc, {.threads = dec_threads,
                                 .kvMode = mode});
            Rng rng(321);
            Stopwatch pre_sw;
            for (size_t b = 0; b < batch; ++b) {
                std::vector<int> prompt(prefill_tokens);
                for (auto &t : prompt)
                    t = static_cast<int>(rng.uniformInt(dc.vocab));
                s.prefill(s.addSequence(), prompt);
            }
            double prefill_s = pre_sw.seconds();

            // Zero the metric values (prefill included) so the
            // histogram and busy counters describe the decode loop
            // alone.
            telemetry::MetricRegistry::global().reset();
            std::vector<int> next(batch);
            Stopwatch dec_sw;
            for (size_t t = 0; t < decode_steps; ++t) {
                for (auto &n : next)
                    n = static_cast<int>(rng.uniformInt(dc.vocab));
                s.decode(next);
            }
            double decode_s = dec_sw.seconds();
            double tps = static_cast<double>(batch * decode_steps) /
                         decode_s;
            tokens_per_s[mi] = tps;
            double bpt = s.kvBytesPerToken();
            double bits_per_elem =
                bpt * 8.0 / (2.0 * dc.nLayers * dc.dModel);

            const telemetry::Histogram *sh =
                telemetry::MetricRegistry::global().findHistogram(
                    "decode.step_ns");
            m2x_assert(sh && sh->count() == decode_steps,
                       "decode.step_ns histogram missing or "
                       "miscounted");
            double p50 = 1e-9 * sh->quantile(0.50);
            double p95 = 1e-9 * sh->quantile(0.95);
            double p99 = 1e-9 * sh->quantile(0.99);
            double pool_busy_s =
                1e-9 * static_cast<double>(
                           telemetry::MetricRegistry::global()
                               .counterSumByPrefix("pool.lane"));
            double pool_util =
                decode_s > 0.0
                    ? pool_busy_s / (decode_s * dec_threads)
                    : 0.0;

            std::printf("decode/%-6s batch %zu, %zu+%zu tokens "
                        "@%u threads: %7.1f tok/s, "
                        "%.0f KV bytes/token (%.2f bits/elem)\n"
                        "    step latency p50/p95/p99: "
                        "%.3f/%.3f/%.3f ms, pool utilization "
                        "%.0f%%\n",
                        kvCacheModeName(mode), batch,
                        prefill_tokens, decode_steps, dec_threads,
                        tps, bpt, bits_per_elem, p50 * 1e3,
                        p95 * 1e3, p99 * 1e3, 100.0 * pool_util);
            std::fprintf(out,
                         "%s\n      {\"kv_cache\": \"%s\", "
                         "\"prefill_s\": %.6e, "
                         "\"decode_s\": %.6e, "
                         "\"tokens_per_s\": %.3f, "
                         "\"attend_s\": %.6e,\n"
                         "       \"step_latency_p50_s\": %.6e, "
                         "\"step_latency_p95_s\": %.6e, "
                         "\"step_latency_p99_s\": %.6e,\n"
                         "       \"pool_busy_s\": %.6e, "
                         "\"pool_utilization\": %.4f,\n"
                         "       \"kv_bytes\": %zu, "
                         "\"kv_bytes_per_token\": %.3f, "
                         "\"kv_bits_per_element\": %.4f}",
                         mi ? "," : "", kvCacheModeName(mode),
                         prefill_s, decode_s, tps,
                         s.attendSeconds(), p50, p95, p99,
                         pool_busy_s, pool_util, s.kvBytes(), bpt,
                         bits_per_elem);
        }
        telemetry::setMetricsEnabled(metrics_were_on);
        double ratio = tokens_per_s[1] / tokens_per_s[0];
        std::printf("decode packed vs fp32 cache: %.2fx tokens/s\n",
                    ratio);
        std::fprintf(out,
                     "\n    ],\n"
                     "    \"packed_vs_fp32_tokens_per_s\": %.3f\n"
                     "  },\n  \"long_context\": {",
                     ratio);
    }

    // Long-context attend trajectory: the flash-style blocked
    // online-softmax attend vs the pre-flash attendLegacy baseline
    // at growing context lengths, measured at the KvCache level (one
    // layer, single-query decode shape, 1 thread — the per-sequence
    // serving fan-out unit). Rows are keyed (context, mode, isa,
    // threads) for the regression gate; the quick contexts are a
    // subset of the full ladder so smoke rows match the committed
    // baseline. flash_vs_old is the trajectory ratio (both sides
    // measured on this run), attend scratch must stay constant as
    // context grows 256x — both asserted before the JSON is usable.
    {
        const size_t lc_d = 192;     // the llama2_7b width
        const unsigned lc_heads = 4; // headDim 48
        // Single-query attends are microseconds at the quick
        // contexts; the quick-mode 0.02 s window is too short for a
        // stable flash/legacy ratio on a noisy runner, and the rows
        // feed the regression gate. Floor the window instead of
        // skipping the section.
        double lc_min_s = std::max(min_s, 0.1);
        std::vector<size_t> contexts =
            quick ? std::vector<size_t>{256, 1024}
                  : std::vector<size_t>{256, 1024, 4096, 16384,
                                        65536};
        ThreadPool pool1(1);
        Matrix lq = randomMatrix(1, lc_d, 81, 4.0);
        std::fprintf(out,
                     "\n    \"d_model\": %zu, \"heads\": %u,\n"
                     "    \"rows\": [",
                     lc_d, lc_heads);
        KvCacheMode lc_modes[2] = {KvCacheMode::Packed,
                                   KvCacheMode::Fp32};
        // flash seconds per (mode, context) for the packed-vs-fp32
        // summary below.
        std::vector<double> flash_s_of[2];
        bool first_row = true;
        for (int mi = 0; mi < 2; ++mi) {
            KvCacheMode mode = lc_modes[mi];
            KvCache cache(1, lc_d, mode);
            const size_t chunk_rows = 256;
            Matrix kv_rows = randomMatrix(chunk_rows, lc_d, 82, 4.0);
            size_t scratch_first = 0;
            for (size_t ctx_len : contexts) {
                while (cache.length() < ctx_len)
                    cache.append(0, kv_rows.data(), kv_rows.data(),
                                 chunk_rows, &pool1);

                // Parity before timing: the legacy attend is the
                // oracle here (fp32 bitwise, packed within the model
                // tolerance — exp/accumulation association differ).
                Matrix flash_out(1, lc_d), old_out(1, lc_d);
                cache.attend(0, lq.data(), 1, ctx_len - 1, lc_heads,
                             flash_out.data(), &pool1);
                cache.attendLegacy(0, lq.data(), 1, ctx_len - 1,
                                   lc_heads, old_out.data(), &pool1);
                if (mode == KvCacheMode::Fp32)
                    requireBitExact(flash_out, old_out,
                                    "fp32 flash vs legacy attend");
                else
                    requireClose(flash_out, old_out, 1e-5,
                                 "packed flash vs legacy attend");

                // Paired windows: the flash and legacy sides of each
                // window run back to back, so runner noise that
                // varies on a seconds scale (a neighbor stealing the
                // core for one window) hits both sides of the ratio
                // instead of skewing one. The reported pair is the
                // window with the fastest combined time — the
                // cleanest regime — keeping flash_attend_s,
                // old_attend_s, and flash_vs_old mutually consistent.
                auto flash_fn = [&] {
                    cache.attend(0, lq.data(), 1, ctx_len - 1,
                                 lc_heads, flash_out.data(), &pool1);
                };
                auto old_fn = [&] {
                    cache.attendLegacy(0, lq.data(), 1, ctx_len - 1,
                                       lc_heads, old_out.data(),
                                       &pool1);
                };
                resetAttendScratchPeak();
                int f_reps = calibrateReps(flash_fn, lc_min_s);
                int o_reps = calibrateReps(old_fn, lc_min_s);
                size_t scratch = attendScratchPeakBytes();
                if (scratch_first == 0)
                    scratch_first = scratch;
                m2x_assert(scratch <= scratch_first,
                           "flash attend scratch grew with context "
                           "(%zu bytes at %zu vs %zu at %zu rows)",
                           scratch, ctx_len, scratch_first,
                           contexts.front());
                double flash_s = 0.0, old_s = 0.0;
                for (int w = 0; w < 3; ++w) {
                    double fs = windowSeconds(flash_fn, f_reps);
                    double os = windowSeconds(old_fn, o_reps);
                    if (w == 0 || fs + os < flash_s + old_s) {
                        flash_s = fs;
                        old_s = os;
                    }
                }
                flash_s_of[mi].push_back(flash_s);

                double bpt = cache.bytesPerToken();
                std::printf(
                    "long-context %-6s ctx %6zu: flash %8.1f "
                    "attends/s, %.2fx old, scratch %zu B, "
                    "%.0f KV B/token\n",
                    kvCacheModeName(mode), ctx_len, 1.0 / flash_s,
                    old_s / flash_s, scratch, bpt);
                std::fprintf(
                    out,
                    "%s\n      {\"context\": %zu, \"mode\": \"%s\", "
                    "\"isa\": \"%s\", \"threads\": 1, "
                    "\"window_s\": %.3f,\n"
                    "       \"flash_attend_s\": %.6e, "
                    "\"old_attend_s\": %.6e, "
                    "\"attends_per_s\": %.3f,\n"
                    "       \"flash_vs_old\": %.3f, "
                    "\"scratch_bytes\": %zu, "
                    "\"kv_bytes_per_token\": %.3f}",
                    first_row ? "" : ",", ctx_len,
                    kvCacheModeName(mode), activeSimdIsaName(),
                    lc_min_s, flash_s, old_s, 1.0 / flash_s,
                    old_s / flash_s, scratch, bpt);
                first_row = false;
            }
        }
        // Same-run packed-vs-fp32 attend ratio per context (resident
        // decode bandwidth is what separates them at long context).
        std::fprintf(out, "\n    ],\n    \"packed_vs_fp32\": [");
        for (size_t ci = 0; ci < contexts.size(); ++ci)
            std::fprintf(out,
                         "%s\n      {\"context\": %zu, "
                         "\"ratio\": %.3f}",
                         ci ? "," : "", contexts[ci],
                         flash_s_of[1][ci] / flash_s_of[0][ci]);
        std::fprintf(out, "\n    ]\n  },\n  \"cross_format\": [");
    }

    // Cross-format runtime: every registered codec through the
    // packed GEMM driver and the full decode loop. Two numbers per
    // format: the packed GEMM's accuracy against the exact fp32
    // product (the format's quantization error — kernel parity
    // against each format's own functional pipeline is verified
    // first, and exhaustively in cross_format_parity_test), and
    // decode tokens/s with the format's generic kernels resident in
    // the linear layers and KV pages. Rows are emitted in ascending
    // rel_rmse order, so the committed JSON records the accuracy
    // ranking of the formats — the bench-smoke gate asserts the
    // ordering and positive throughput for >= 3 formats.
    {
        Matrix ga = randomMatrix(24, 512, 71, 4.0);
        Matrix gw = randomMatrix(32, 512, 72, 6.0);
        Matrix exact = matmulNt(ga, gw);

        model::ModelConfig cc = model::llama2_7b();
        cc.nLayers = 1;
        cc.vocab = 128;
        size_t cf_batch = 2;
        size_t cf_prefill = quick ? 8 : 32;
        size_t cf_steps = quick ? 4 : 16;
        unsigned cf_threads = ThreadPool::defaultThreads();

        struct FormatRow
        {
            PackedCodec codec;
            double rmse, rel_rmse, tps, bits;
        };
        std::vector<FormatRow> rows;
        for (PackedCodec codec : allPackedCodecs()) {
            PackedM2xfpTensor pa =
                PackedM2xfpTensor::packActivationsCodec(ga, codec);
            PackedM2xfpTensor pw =
                PackedM2xfpTensor::packWeightsCodec(gw, codec);
            Matrix got = packedMatmulNt(pa, pw);
            requireMatch(got,
                         matmulNt(pa.unpackActivationsCodec(),
                                  pw.unpackWeightsCodec()),
                         activeSimdIsa(), 1e-6,
                         "cross-format gemm parity");
            double se = 0.0, ref2 = 0.0;
            for (size_t i = 0; i < exact.size(); ++i) {
                double d = got.flat()[i] - exact.flat()[i];
                se += d * d;
                ref2 += static_cast<double>(exact.flat()[i]) *
                        static_cast<double>(exact.flat()[i]);
            }
            double rmse =
                std::sqrt(se / static_cast<double>(exact.size()));
            double rel_rmse = std::sqrt(se / ref2);

            DecodeSession s(cc, {.threads = cf_threads,
                                 .kvMode = KvCacheMode::Packed,
                                 .codec = codec});
            Rng rng(777);
            for (size_t b = 0; b < cf_batch; ++b) {
                std::vector<int> prompt(cf_prefill);
                for (auto &t : prompt)
                    t = static_cast<int>(rng.uniformInt(cc.vocab));
                s.prefill(s.addSequence(), prompt);
            }
            std::vector<int> next(cf_batch);
            Stopwatch sw;
            for (size_t t = 0; t < cf_steps; ++t) {
                for (auto &n : next)
                    n = static_cast<int>(rng.uniformInt(cc.vocab));
                s.decode(next);
            }
            double tps =
                static_cast<double>(cf_batch * cf_steps) /
                sw.seconds();
            rows.push_back(
                {codec, rmse, rel_rmse, tps,
                 packedCodecInfo(codec).bitsPerElement});
            std::printf("cross-format %-9s: rel_rmse %.5f, "
                        "%7.1f tok/s (%.2f bits/elem)\n",
                        packedCodecName(codec), rel_rmse, tps,
                        packedCodecInfo(codec).bitsPerElement);
        }
        std::sort(rows.begin(), rows.end(),
                  [](const FormatRow &a, const FormatRow &b) {
                      return a.rel_rmse < b.rel_rmse;
                  });
        for (size_t i = 0; i < rows.size(); ++i)
            std::fprintf(out,
                         "%s\n    {\"format\": \"%s\", "
                         "\"bits_per_element\": %.4f, "
                         "\"gemm_rmse_vs_fp32\": %.6e, "
                         "\"gemm_rel_rmse_vs_fp32\": %.6e, "
                         "\"decode_tokens_per_s\": %.3f, "
                         "\"isa\": \"%s\", \"threads\": %u}",
                         i ? "," : "",
                         packedCodecName(rows[i].codec),
                         rows[i].bits, rows[i].rmse,
                         rows[i].rel_rmse, rows[i].tps,
                         activeSimdIsaName(), cf_threads);
        std::fprintf(out, "\n  ]\n}\n");
    }
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path.c_str());
    if (!trace_path.empty()) {
        size_t n = runtime::telemetry::traceStop();
        std::printf("wrote %zu trace events to %s\n", n,
                    trace_path.c_str());
    }
    return 0;
}
