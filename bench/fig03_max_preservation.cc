/**
 * @file
 * Fig. 3 — the motivation experiment: 4-bit perplexity with and
 * without preserving the group-wise maximum in FP16, on LLaMA3-8B
 * and LLaMA3-70B. Retaining the block max recovers most of MXFP4's
 * loss, confirming block-max mishandling as the dominant error.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Figure 3",
                  "4-bit quantization with/without max-value "
                  "preservation");

    const char *formats[] = {"FP16", "MXFP4", "NVFP4", "FP4", "SMX4"};

    for (const ModelConfig &cfg : {llama3_8b(), llama3_70b()}) {
        Evaluator ev(cfg, bench::evalTokens, bench::seqLen);
        TextTable t({"Format", "w/o max-preserve", "with max-preserve"});
        for (const char *f : formats) {
            t.beginRow();
            t.cell(f);
            ev.model().rebuild(scheme(f).factory);
            t.cell(ev.proxyPerplexity(), 2);
            if (std::string(f) == "FP16") {
                t.cell("-");
            } else {
                ev.model().rebuild(
                    scheme(std::string(f) + "-maxpreserve").factory);
                t.cell(ev.proxyPerplexity(), 2);
            }
            t.endRow();
        }
        t.print("Perplexity, " + cfg.name);
    }
    return 0;
}
