/**
 * @file
 * Continuous-batching serving throughput over the paged packed KV
 * arena: a seeded Poisson request stream (exponential inter-arrival
 * gaps, uniformly varied prompt and generation lengths) is driven
 * through the ServingEngine in both KV modes — packed M2XFP pages at
 * ~4.5 bits/element, and dense fp32 pages given the SAME arena byte
 * budget (so the fp32 run holds ~7.1x fewer pages, which is exactly
 * the paper's point: compressed KV is what buys concurrency). Writes
 * the machine-readable BENCH_serving.json with sustained tokens/s,
 * p50/p99 TTFT and inter-token latency, arena occupancy (mean/peak),
 * preemption counts and the two cross-mode ratios CI gates on:
 *
 *  - packed_vs_fp32_tokens_per_s — same-machine throughput ratio;
 *  - concurrent_vs_fp32_capacity — how many fully grown worst-case
 *    requests each arena can hold concurrently (deterministic: pure
 *    byte accounting, no scheduler noise), required to be >= 4x.
 *
 * Parity precedes timing: a small-model ServingEngine run must
 * reproduce a single-sequence DecodeSession token-for-token in both
 * KV modes before any throughput is measured.
 *
 * The runs execute with the telemetry metrics registry enabled, so
 * serving.step_ns / serving.token_ns / serving.ttft_ns histograms
 * and the serving.occupancy gauge are live; --trace additionally
 * captures serving.step / serving.prefill spans for Perfetto (and
 * for tools/check_trace.py --require serving.step in CI).
 *
 * Usage: serving_runtime [--quick] [--out PATH] [--trace PATH]
 *   --quick  small model + short stream (CI smoke); its rows carry
 *            their own workload keys so they never falsely match a
 *            full-run baseline in check_bench_regression.py
 *   --out    output path (default BENCH_serving.json)
 *   --trace  also collect a Chrome trace_event JSON of the run
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hh"
#include "model/config.hh"
#include "runtime/decode_session.hh"
#include "runtime/serving.hh"
#include "runtime/telemetry.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace {

using namespace m2x;
using namespace m2x::runtime;
using bench::Stopwatch;

unsigned
hardwareThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

/** Nearest-rank quantile of an unsorted sample (0 when empty). */
double
quantile(std::vector<double> v, double q)
{
    if (v.empty())
        return 0.0;
    std::sort(v.begin(), v.end());
    double rank = q * static_cast<double>(v.size() - 1);
    return v[static_cast<size_t>(rank + 0.5)];
}

/** One request of the generated stream. */
struct Arrival
{
    size_t step;  //!< scheduler step at which the request arrives
    std::vector<int> prompt;
    size_t maxNew;
};

/**
 * The seeded Poisson stream: exponential inter-arrival gaps (in
 * scheduler steps), uniform prompt and generation lengths. Fully
 * deterministic for a given seed.
 */
std::vector<Arrival>
makeWorkload(size_t requests, unsigned vocab, uint64_t seed,
             double mean_gap_steps, size_t prompt_lo,
             size_t prompt_hi, size_t gen_lo, size_t gen_hi)
{
    Rng rng(seed);
    std::vector<Arrival> work;
    double at = 0.0;
    for (size_t i = 0; i < requests; ++i) {
        at += -mean_gap_steps * std::log(1.0 - rng.uniform());
        Arrival a;
        a.step = static_cast<size_t>(at);
        size_t plen = prompt_lo +
                      rng.uniformInt(prompt_hi - prompt_lo + 1);
        a.prompt.resize(plen);
        for (auto &t : a.prompt)
            t = static_cast<int>(rng.uniformInt(vocab));
        a.maxNew = gen_lo + rng.uniformInt(gen_hi - gen_lo + 1);
        work.push_back(std::move(a));
    }
    return work;
}

/** Everything one timed serving run reports. */
struct RunResult
{
    double wallS = 0.0;
    size_t generated = 0;
    double tokensPerS = 0.0;
    double ttftP50 = 0.0, ttftP99 = 0.0;
    double tokenP50 = 0.0, tokenP99 = 0.0;
    double occMean = 0.0, occPeak = 0.0;
    size_t peakActive = 0;
    size_t preemptions = 0;
    size_t steps = 0;
    size_t highWaterPages = 0;
    size_t residentBytes = 0;
    size_t arenaPages = 0;
    size_t capacityRequests = 0; //!< worst-case requests that fit
};

/**
 * Drive @p work through one engine: submissions happen when the
 * scheduler step counter passes each arrival step (idle gaps fast
 * forward to the next arrival).
 */
RunResult
runStream(ServingEngine &eng, const std::vector<Arrival> &work)
{
    RunResult r;
    r.arenaPages = eng.arena().capacityPages();
    size_t submitted = 0, step = 0;
    Stopwatch sw;
    while (submitted < work.size() || !eng.idle()) {
        while (submitted < work.size() &&
               work[submitted].step <= step) {
            eng.submit(work[submitted].prompt,
                       work[submitted].maxNew);
            ++submitted;
        }
        if (!eng.step() && submitted < work.size()) {
            step = work[submitted].step;
            continue;
        }
        r.peakActive = std::max(r.peakActive, eng.activeCount());
        ++step;
    }
    r.wallS = sw.seconds();
    for (size_t i = 0; i < eng.requestCount(); ++i)
        r.generated += eng.stats(i).generated;
    r.tokensPerS = static_cast<double>(r.generated) / r.wallS;
    std::vector<double> ttfts = eng.ttfts();
    r.ttftP50 = quantile(ttfts, 0.50);
    r.ttftP99 = quantile(ttfts, 0.99);
    std::vector<double> lat = eng.tokenLatencies();
    r.tokenP50 = quantile(lat, 0.50);
    r.tokenP99 = quantile(lat, 0.99);
    r.occMean = eng.occupancyMean();
    r.occPeak = eng.occupancyPeak();
    r.preemptions = eng.preemptionCount();
    r.steps = eng.stepCount();
    r.highWaterPages = eng.arena().highWaterPages();
    r.residentBytes = eng.arena().residentBytes();
    return r;
}

/**
 * Token-for-token parity of the engine against a single-sequence
 * DecodeSession before anything is timed, in both KV modes.
 */
void
verifyParity()
{
    model::ModelConfig vc = model::llama2_7b();
    vc.nLayers = 1;
    vc.vocab = 128;
    std::vector<Arrival> work = makeWorkload(
        3, vc.vocab, 77, 1.0, 4, 10, 3, 6);
    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        ServingEngine eng(vc, {.kvMode = mode,
                               .pageRows = 4,
                               .arenaPages = 128});
        for (const Arrival &a : work)
            eng.submit(a.prompt, a.maxNew);
        eng.runToCompletion();
        for (size_t i = 0; i < work.size(); ++i) {
            DecodeSession s(vc, {.kvMode = mode});
            size_t seq = s.addSequence();
            Matrix logits = s.prefill(seq, work[i].prompt);
            std::vector<int> want;
            want.push_back(argmaxRow(logits, logits.rows() - 1));
            while (want.size() < work[i].maxNew) {
                int next = want.back();
                Matrix l = s.decode({&next, 1});
                want.push_back(argmaxRow(l, 0));
            }
            m2x_assert(eng.generated(i) == want,
                       "serving/%s request %zu diverged from the "
                       "single-sequence decode reference",
                       kvCacheModeName(mode), i);
        }
    }
    std::printf("parity: serving == single-sequence decode "
                "(fp32 + packed)\n\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    bool quick = false;
    std::string out_path = "BENCH_serving.json";
    std::string trace_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--out") == 0 &&
                   i + 1 < argc) {
            out_path = argv[++i];
        } else if (std::strcmp(argv[i], "--trace") == 0 &&
                   i + 1 < argc) {
            trace_path = argv[++i];
        } else {
            m2x_fatal("usage: %s [--quick] [--out PATH] "
                      "[--trace PATH]", argv[0]);
        }
    }
    if (!trace_path.empty())
        telemetry::traceStart(trace_path);

    bench::banner("SERVING",
                  "continuous batching over the paged packed KV "
                  "arena");
    verifyParity();

    model::ModelConfig mc = model::llama2_7b();
    if (quick) {
        mc.nLayers = 1;
        mc.vocab = 128;
    }
    const uint64_t seed = 9;
    const size_t requests = quick ? 6 : 24;
    const size_t page_rows = 16;
    const size_t arena_pages = quick ? 96 : 1024;
    const size_t max_batch = quick ? 8 : 16;
    const double mean_gap = quick ? 1.0 : 2.0;
    const size_t prompt_lo = quick ? 8 : 48;
    const size_t prompt_hi = quick ? 24 : 192;
    const size_t gen_lo = quick ? 4 : 16;
    const size_t gen_hi = quick ? 12 : 64;
    unsigned threads = ThreadPool::defaultThreads();

    std::vector<Arrival> work = makeWorkload(
        requests, mc.vocab, seed, mean_gap, prompt_lo, prompt_hi,
        gen_lo, gen_hi);

    // Worst-case pages one fully grown request needs, per mode page
    // budget: prompt_hi + gen_hi - 1 cached rows across 2 streams x
    // nLayers. The deterministic concurrency-capacity denominator.
    size_t worst_rows = prompt_hi + gen_hi - 1;
    size_t worst_pages =
        2 * mc.nLayers *
        KvPageArena::pagesForRows(worst_rows, page_rows);

    bool metrics_were_on = telemetry::metricsEnabled();
    telemetry::setMetricsEnabled(true);

    RunResult res[2]; // [packed, fp32]
    KvCacheMode modes[2] = {KvCacheMode::Packed, KvCacheMode::Fp32};
    size_t pages_per_mode[2] = {arena_pages, 0};
    size_t arena_bytes = 0;
    for (int mi = 0; mi < 2; ++mi) {
        KvCacheMode mode = modes[mi];
        if (mi == 0) {
            // The packed arena defines the byte budget...
            KvPageArena probe(mc.dModel, KvCacheMode::Packed, {},
                              activeSimdIsa(),
                              {page_rows, arena_pages});
            arena_bytes = arena_pages * probe.pageBytes();
            // ...and the fp32 run gets the same bytes, which buys
            // ~7.1x fewer pages.
            pages_per_mode[1] = std::max<size_t>(
                1, arena_bytes / probe.fp32PageBytes());
        }
        ServingEngine eng(mc, {.threads = threads,
                               .kvMode = mode,
                               .pageRows = page_rows,
                               .arenaPages = pages_per_mode[mi],
                               .maxBatch = max_batch});
        telemetry::MetricRegistry::global().reset();
        res[mi] = runStream(eng, work);
        res[mi].capacityRequests =
            std::max<size_t>(1, pages_per_mode[mi] / worst_pages);
        std::printf(
            "serving/%-6s %zu pages (%.1f MiB budget): "
            "%7.1f tok/s, ttft p50/p99 %.2f/%.2f ms, "
            "token p50/p99 %.2f/%.2f ms\n"
            "    occupancy mean/peak %.2f/%.2f, peak active %zu, "
            "preemptions %zu, %zu steps\n",
            kvCacheModeName(mode), pages_per_mode[mi],
            static_cast<double>(arena_bytes) / (1024.0 * 1024.0),
            res[mi].tokensPerS, res[mi].ttftP50 * 1e3,
            res[mi].ttftP99 * 1e3, res[mi].tokenP50 * 1e3,
            res[mi].tokenP99 * 1e3, res[mi].occMean,
            res[mi].occPeak, res[mi].peakActive,
            res[mi].preemptions, res[mi].steps);
    }
    telemetry::setMetricsEnabled(metrics_were_on);

    double tps_ratio = res[0].tokensPerS / res[1].tokensPerS;
    double cap_ratio =
        static_cast<double>(res[0].capacityRequests) /
        static_cast<double>(res[1].capacityRequests);
    std::printf(
        "\npacked vs fp32 (same %zu-byte arena): %.2fx tokens/s, "
        "%.1fx concurrent capacity (%zu vs %zu worst-case "
        "requests)\n",
        arena_bytes, tps_ratio, cap_ratio, res[0].capacityRequests,
        res[1].capacityRequests);
    m2x_assert(cap_ratio >= 4.0,
               "packed arena concurrency multiplier %.2f below the "
               "4x acceptance floor", cap_ratio);

    FILE *out = std::fopen(out_path.c_str(), "w");
    if (!out)
        m2x_fatal("cannot open '%s' for writing", out_path.c_str());
    std::fprintf(
        out,
        "{\n"
        "  \"bench\": \"serving_runtime\",\n"
        "  \"quick\": %s,\n"
        "  \"hardware_threads\": %u,\n"
        "  \"serving\": {\n"
        "    \"model\": \"%s\", \"layers\": %u, \"d_model\": %u,\n"
        "    \"workload\": \"poisson\", \"seed\": %llu, "
        "\"requests\": %zu,\n"
        "    \"mean_gap_steps\": %.2f, "
        "\"prompt_tokens\": [%zu, %zu], "
        "\"gen_tokens\": [%zu, %zu],\n"
        "    \"page_rows\": %zu, \"arena_pages\": %zu, "
        "\"arena_bytes\": %zu,\n"
        "    \"max_batch\": %zu, \"threads\": %u, "
        "\"isa\": \"%s\",\n"
        "    \"modes\": [",
        quick ? "true" : "false", hardwareThreads(), mc.name.c_str(),
        mc.nLayers, mc.dModel,
        static_cast<unsigned long long>(seed), requests, mean_gap,
        prompt_lo, prompt_hi, gen_lo, gen_hi, page_rows, arena_pages,
        arena_bytes, max_batch, threads, activeSimdIsaName());
    for (int mi = 0; mi < 2; ++mi) {
        const RunResult &r = res[mi];
        std::fprintf(
            out,
            "%s\n      {\"kv_cache\": \"%s\", "
            "\"arena_pages\": %zu,\n"
            "       \"wall_s\": %.6e, \"generated_tokens\": %zu, "
            "\"tokens_per_s\": %.3f,\n"
            "       \"ttft_p50_s\": %.6e, \"ttft_p99_s\": %.6e,\n"
            "       \"token_p50_s\": %.6e, \"token_p99_s\": %.6e,\n"
            "       \"occupancy_mean\": %.4f, "
            "\"occupancy_peak\": %.4f,\n"
            "       \"peak_active\": %zu, \"preemptions\": %zu, "
            "\"steps\": %zu,\n"
            "       \"high_water_pages\": %zu, "
            "\"resident_bytes\": %zu, "
            "\"capacity_requests\": %zu}",
            mi ? "," : "", kvCacheModeName(modes[mi]), r.arenaPages,
            r.wallS, r.generated, r.tokensPerS, r.ttftP50, r.ttftP99,
            r.tokenP50, r.tokenP99, r.occMean, r.occPeak,
            r.peakActive, r.preemptions, r.steps, r.highWaterPages,
            r.residentBytes, r.capacityRequests);
    }
    std::fprintf(out,
                 "\n    ],\n"
                 "    \"packed_vs_fp32_tokens_per_s\": %.3f,\n"
                 "    \"concurrent_vs_fp32_capacity\": %.3f\n"
                 "  }\n}\n",
                 tps_ratio, cap_ratio);
    std::fclose(out);
    std::printf("\nwrote %s\n", out_path.c_str());
    if (!trace_path.empty()) {
        size_t n = telemetry::traceStop();
        std::printf("wrote %zu trace events to %s\n", n,
                    trace_path.c_str());
    }
    return 0;
}
