/**
 * @file
 * Fig. 7 — metadata DSE with the adaptive shared scale (exponent
 * bias searched in {E0-1, E0, E0+1} jointly with the metadata).
 * Under adaptation Sg-EM overtakes Elem-EM at 4.5-4.75 EBW — the
 * asymmetry behind M2XFP's hybrid weight/activation design.
 */

#include "dse_driver.hh"

int
main()
{
    return runDseBench(true);
}
