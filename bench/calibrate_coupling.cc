/**
 * @file
 * Maintenance tool: recomputes the per-model KL -> log-perplexity
 * couplings (src/model/config.cc) by anchoring the MXFP4 row of
 * Tbl. 3 to the paper. Run after changing the tensor generators and
 * paste the printed constants into config.cc.
 */

#include <cmath>

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Coupling calibration",
                  "klToLogPpl constants from the MXFP4 anchor");

    struct Anchor
    {
        ModelConfig cfg;
        double mxfp4Ppl; //!< paper Tbl. 3 MXFP4 row
    };
    const Anchor anchors[] = {
        {llama2_7b(), 7.15}, {llama3_8b(), 8.30},
        {llama3_70b(), 4.84}, {opt_6_7b(), 19.21},
        {mistral_7b(), 6.56}, {falcon_7b(), 7.59},
    };

    TextTable t({"Model", "measured KL(MXFP4)", "current c",
                 "suggested c"});
    for (const Anchor &a : anchors) {
        Evaluator ev(a.cfg, bench::evalTokens, bench::seqLen);
        ev.model().rebuild(scheme("MXFP4").factory);
        double kl = ev.run().meanKl;
        double c = std::log(a.mxfp4Ppl / a.cfg.fp16Perplexity) / kl;
        t.beginRow();
        t.cell(a.cfg.name);
        t.cell(kl, 4);
        t.cell(a.cfg.klToLogPpl, 4);
        t.cell(c, 4);
        t.endRow();
    }
    t.print("If 'suggested' differs from 'current', update "
            "src/model/config.cc");
    return 0;
}
