/**
 * @file
 * Tbl. 5 — area and power of the M2XFP core components at 28 nm /
 * 500 MHz, plus the §6.3 per-format PE-tile comparison.
 */

#include "bench_common.hh"
#include "hw/area_power.hh"
#include "util/table.hh"

using namespace m2x;

int
main()
{
    bench::banner("Table 5", "area/power breakdown @ 28 nm, 500 MHz");

    TextTable t({"Component", "Unit area (um^2)", "Count",
                 "Area (mm^2)", "Power (mW)"});
    for (const auto &row : hw::table5Breakdown()) {
        t.beginRow();
        t.cell(row.name);
        if (row.unitAreaUm2 > 0)
            t.cell(row.unitAreaUm2, 2);
        else
            t.cell("-");
        t.cell(static_cast<double>(row.count), 0);
        t.cell(row.totalAreaMm2, 4);
        t.cell(row.totalPowerMw, 3);
        t.endRow();
    }
    t.print("Core components and buffers (paper Tbl. 5)");

    TextTable cmp({"PE tile variant", "Area (um^2)", "vs MXFP4"});
    double base = hw::makeMxfp4PeTile().areaUm2();
    std::vector<hw::UnitModel> variants;
    variants.push_back(hw::makeMxfp4PeTile());
    variants.push_back(hw::makeNvfp4PeTile());
    variants.push_back(hw::makeM2xfpPeTile());
    for (const auto &unit : variants) {
        cmp.beginRow();
        cmp.cell(unit.name());
        cmp.cell(unit.areaUm2(), 1);
        cmp.cell(fmtNum(100.0 * (unit.areaUm2() - base) / base, 1) +
                 "%");
        cmp.endRow();
    }
    cmp.print("PE tile synthesis comparison (§6.3)");

    TextTable det({"Block", "Gates", "Area (um^2)"});
    hw::UnitModel m2_tile = hw::makeM2xfpPeTile();
    for (const auto &b : m2_tile.blocks()) {
        det.beginRow();
        det.cell(b.name);
        det.cell(b.gates, 1);
        det.cell(b.areaUm2(), 1);
        det.endRow();
    }
    det.print("M2XFP PE tile sub-blocks");
    return 0;
}
