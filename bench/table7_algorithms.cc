/**
 * @file
 * Tbl. 7 — M2XFP vs algorithm-level schemes: QuaRot and DuQuant
 * (INT4, rotation-based), MR-GPTQ (FP4 with Hessian error feedback),
 * and the MR-GPTQ + M2XFP combination.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

int
main()
{
    bench::banner("Table 7",
                  "comparison with algorithm schemes (group 32)");

    TextTable t({"Method", "Data type", "LLaMA2-7B", "LLaMA3-8B"});
    const struct
    {
        const char *method;
        const char *dtype;
    } rows[] = {
        {"QuaRot", "INT4"},        {"DuQuant", "INT4"},
        {"MR-GPTQ", "FP4"},        {"M2XFP", "FP4"},
        {"MR-GPTQ-M2XFP", "FP4"},
    };

    Evaluator ev2(llama2_7b(), bench::evalTokens, bench::seqLen);
    Evaluator ev3(llama3_8b(), bench::evalTokens, bench::seqLen);

    for (const auto &row : rows) {
        t.beginRow();
        t.cell(row.method);
        t.cell(row.dtype);
        ev2.model().rebuild(scheme(row.method).factory);
        t.cell(ev2.proxyPerplexity(), 2);
        ev3.model().rebuild(scheme(row.method).factory);
        t.cell(ev3.proxyPerplexity(), 2);
        t.endRow();
    }
    t.print("Proxy perplexity on the Wikitext stand-in (lower is "
            "better)");
    return 0;
}
