/**
 * @file
 * Tbl. 2 — zero-shot accuracy on six benchmarks (Arc-e, Arc-c,
 * HellaSwag, PiQA, WinoGrande, BoolQ) for LLaMA2-7B, LLaMA3-8B and
 * Mistral-7B under FP16 / SMX4 / MXFP4 / NVFP4 / M2XFP.
 */

#include "bench_common.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/table.hh"

using namespace m2x;
using namespace m2x::model;

namespace {

struct Task
{
    const char *name;
    uint64_t seed;
};

const Task tasks[] = {{"Arc-e", 0xa1}, {"Arc-c", 0xa2},
                      {"Hella.", 0xa3}, {"PiQA", 0xa4},
                      {"Wino.", 0xa5}, {"BoolQ", 0xa6}};

/** Paper FP16 anchors per model, in task order. */
struct ModelAnchors
{
    model::ModelConfig (*cfg)();
    double fp16[6];
};

const ModelAnchors anchors[] = {
    {llama2_7b, {74.58, 46.25, 75.99, 79.11, 69.06, 77.71}},
    {llama3_8b, {77.49, 53.33, 79.15, 80.85, 72.53, 81.28}},
    {mistral_7b, {78.24, 52.13, 80.46, 82.26, 73.80, 82.14}},
};

} // anonymous namespace

int
main()
{
    bench::banner("Table 2", "zero-shot accuracy (percent, higher "
                             "is better)");

    for (const ModelAnchors &ma : anchors) {
        ModelConfig cfg = ma.cfg();
        Evaluator ev(cfg, bench::evalTokens, bench::seqLen);
        std::vector<std::string> header{"Method"};
        for (const Task &t : tasks)
            header.push_back(t.name);
        header.push_back("Avg.");
        TextTable tab(header);

        for (const std::string &method : table2Methods()) {
            ev.model().rebuild(scheme(method).factory);
            EvalRun run = ev.run();
            tab.beginRow();
            tab.cell(method);
            double sum = 0.0;
            for (size_t k = 0; k < 6; ++k) {
                double acc = ev.accuracyFrom(run, ma.fp16[k], 4,
                                             tasks[k].seed);
                sum += acc;
                tab.cell(acc, 2);
            }
            tab.cell(sum / 6.0, 2);
            tab.endRow();
        }
        tab.print("Zero-shot accuracy, " + cfg.name);
    }
    return 0;
}
