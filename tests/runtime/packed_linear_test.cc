/**
 * @file
 * PackedLinear must be a bit-exact drop-in for QuantizedLinear with
 * the paper's M2XFP quantizer pair, while keeping its weight
 * resident in packed form (~4.5 bits/element).
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_linear.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double dof)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(dof));
    return m;
}

QuantizedLinear
referenceLinear(const Matrix &w)
{
    return QuantizedLinear(
        w,
        std::make_shared<SgEmQuantizer>(makeM2xfpWeightQuantizer()),
        std::make_shared<ElemEmQuantizer>(
            makeM2xfpActivationQuantizer()));
}

TEST(PackedLinear, ForwardBitExactAgainstQuantizedLinear)
{
    Matrix w = randomMatrix(48, 96, 1, 6.0);
    Matrix x = randomMatrix(9, 96, 2, 4.0);
    PackedLinear packed(w);
    QuantizedLinear ref = referenceLinear(w);
    Matrix yp = packed.forward(x);
    Matrix yr = ref.forward(x);
    ASSERT_TRUE(yp.sameShape(yr));
    for (size_t i = 0; i < yr.size(); ++i)
        ASSERT_EQ(yp.flat()[i], yr.flat()[i]) << i;
}

TEST(PackedLinear, ForwardBitExactOnRaggedFeatures)
{
    // in_features 44: ragged K through the whole layer.
    Matrix w = randomMatrix(13, 44, 3, 6.0);
    Matrix x = randomMatrix(5, 44, 4, 4.0);
    PackedLinear packed(w);
    QuantizedLinear ref = referenceLinear(w);
    Matrix yp = packed.forward(x);
    Matrix yr = ref.forward(x);
    for (size_t i = 0; i < yr.size(); ++i)
        ASSERT_EQ(yp.flat()[i], yr.flat()[i]) << i;
}

TEST(PackedLinear, WeightResidencyIsPacked)
{
    Matrix w = randomMatrix(64, 128, 5, 6.0);
    PackedLinear packed(w);
    EXPECT_EQ(packed.inFeatures(), 128u);
    EXPECT_EQ(packed.outFeatures(), 64u);
    EXPECT_EQ(packed.denseBytes(), 64u * 128 * 4);
    // 4.5 bits/element = 18 bytes per 32-element group.
    EXPECT_EQ(packed.residentBytes(), 64u * 4 * 18);
    EXPECT_DOUBLE_EQ(packed.packedWeight().bitsPerElement(), 4.5);
    EXPECT_LT(8.0 * static_cast<double>(packed.residentBytes()),
              0.15 * 8.0 * static_cast<double>(packed.denseBytes()));
}

TEST(PackedLinear, ExplicitPoolProducesSameResult)
{
    Matrix w = randomMatrix(40, 64, 6, 6.0);
    Matrix x = randomMatrix(21, 64, 7, 4.0);
    ThreadPool pool(4);
    PackedLinear with_pool(w, {}, &pool);
    PackedLinear without_pool(w);
    Matrix ya = with_pool.forward(x);
    Matrix yb = without_pool.forward(x);
    for (size_t i = 0; i < ya.size(); ++i)
        ASSERT_EQ(ya.flat()[i], yb.flat()[i]) << i;
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
