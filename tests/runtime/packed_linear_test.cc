/**
 * @file
 * PackedLinear must be a drop-in for QuantizedLinear with the
 * paper's M2XFP quantizer pair, while keeping its weight resident in
 * packed form (~4.5 bits/element): bit-exact on the scalar kernel
 * tier, within the SIMD tolerance contract on vector tiers.
 */

#include <gtest/gtest.h>

#include <memory>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_linear.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesBitExact;
using test::expectMatricesMatch;
using test::randomMatrix;

QuantizedLinear
referenceLinear(const Matrix &w)
{
    return QuantizedLinear(
        w,
        std::make_shared<SgEmQuantizer>(makeM2xfpWeightQuantizer()),
        std::make_shared<ElemEmQuantizer>(
            makeM2xfpActivationQuantizer()));
}

/** Forward @p x on every available tier and hold each contract. */
void
expectForwardParity(const Matrix &w, const Matrix &x)
{
    QuantizedLinear ref = referenceLinear(w);
    Matrix yr = ref.forward(x);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        PackedLinear packed(w, {}, nullptr, isa);
        EXPECT_EQ(packed.simdIsa(), isa);
        expectMatricesMatch(packed.forward(x), yr, isa);
    }
}

TEST(PackedLinear, ForwardMatchesQuantizedLinearOnEveryTier)
{
    Matrix w = randomMatrix(48, 96, 1, 6.0);
    Matrix x = randomMatrix(9, 96, 2, 4.0);
    expectForwardParity(w, x);
}

TEST(PackedLinear, ForwardMatchesOnRaggedFeatures)
{
    // in_features 44: ragged K through the whole layer.
    Matrix w = randomMatrix(13, 44, 3, 6.0);
    Matrix x = randomMatrix(5, 44, 4, 4.0);
    expectForwardParity(w, x);
}

TEST(PackedLinear, DefaultTierIsTheDispatchDecision)
{
    Matrix w = randomMatrix(24, 64, 8, 6.0);
    Matrix x = randomMatrix(4, 64, 9, 4.0);
    PackedLinear packed(w);
    EXPECT_EQ(packed.simdIsa(), activeSimdIsa());
    PackedLinear pinned(w, {}, nullptr, activeSimdIsa());
    expectMatricesBitExact(packed.forward(x), pinned.forward(x));
}

TEST(PackedLinear, WeightResidencyIsPacked)
{
    Matrix w = randomMatrix(64, 128, 5, 6.0);
    PackedLinear packed(w);
    EXPECT_EQ(packed.inFeatures(), 128u);
    EXPECT_EQ(packed.outFeatures(), 64u);
    EXPECT_EQ(packed.denseBytes(), 64u * 128 * 4);
    // 4.5 bits/element = 18 bytes per 32-element group.
    EXPECT_EQ(packed.residentBytes(), 64u * 4 * 18);
    EXPECT_DOUBLE_EQ(packed.packedWeight().bitsPerElement(), 4.5);
    EXPECT_LT(8.0 * static_cast<double>(packed.residentBytes()),
              0.15 * 8.0 * static_cast<double>(packed.denseBytes()));
}

TEST(PackedLinear, ForwardIntoMatchesReturningOverload)
{
    Matrix w = randomMatrix(40, 100, 10, 6.0);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        PackedLinear packed(w, {}, nullptr, isa);
        PackedLinear::Workspace ws;
        ForwardBreakdown bd;
        Matrix y;
        // Varying row counts through one reused workspace/output:
        // stale state from a previous (larger) call must never leak.
        for (size_t rows : {7u, 16u, 3u, 16u}) {
            Matrix x = randomMatrix(rows, 100, 20 + rows, 4.0);
            packed.forward(x, y, &ws, &bd);
            expectMatricesBitExact(y, packed.forward(x));
        }
        // The breakdown integrates both phases of every call.
        EXPECT_GT(bd.quantizeNanos, 0u);
        EXPECT_GT(bd.gemmNanos, 0u);
    }
}

TEST(PackedLinear, ExplicitPoolProducesSameResult)
{
    // Threading never changes a tile's result, whatever the tier:
    // each output element is computed by exactly one tile task.
    Matrix w = randomMatrix(40, 64, 6, 6.0);
    Matrix x = randomMatrix(21, 64, 7, 4.0);
    ThreadPool pool(4);
    PackedLinear with_pool(w, {}, &pool);
    PackedLinear without_pool(w);
    expectMatricesBitExact(with_pool.forward(x),
                           without_pool.forward(x));
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
