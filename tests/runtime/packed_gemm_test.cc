/**
 * @file
 * Bit-exact parity of the packed-domain GEMM against the
 * unpack-then-matmulNt reference, over randomized shapes including
 * ragged K (not divisible by the group or subgroup size), several
 * thread counts, and tile-boundary shapes.
 */

#include <gtest/gtest.h>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_gemm.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double tail_dof)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(tail_dof));
    return m;
}

/**
 * Pack a and w in their paper roles, multiply both ways, and demand
 * exact float equality on every output element.
 */
void
expectParity(size_t m, size_t n, size_t k, uint64_t seed,
             ThreadPool *pool = nullptr)
{
    Matrix a = randomMatrix(m, k, seed, 4.0);
    Matrix w = randomMatrix(n, k, seed ^ 0xfeedu, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    Matrix got = packedMatmulNt(pa, pw, pool);
    ASSERT_TRUE(got.sameShape(ref))
        << m << "x" << n << "x" << k;
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_EQ(got.flat()[i], ref.flat()[i])
            << "(" << m << "," << n << "," << k << ") elem " << i;
}

TEST(PackedGemm, GroupAlignedShapes)
{
    expectParity(4, 8, 32, 1);
    expectParity(16, 16, 64, 2);
    expectParity(33, 20, 96, 3);
}

TEST(PackedGemm, RaggedKNotDivisibleBy32)
{
    // Tail groups of 8 and 16 elements (subgroup-aligned).
    expectParity(5, 9, 40, 4);
    expectParity(12, 17, 48, 5);
}

TEST(PackedGemm, RaggedKNotDivisibleBy8)
{
    // Tail groups that split a subgroup: padding must not leak into
    // any output.
    expectParity(5, 9, 35, 6);
    expectParity(7, 21, 67, 7);
    expectParity(3, 5, 7, 8); // K smaller than one subgroup-pair
}

TEST(PackedGemm, TileBoundaryShapes)
{
    // Exactly one tile, one-past, and one-short in each dimension.
    expectParity(16, 16, 32, 9);
    expectParity(17, 15, 32, 10);
    expectParity(15, 17, 32, 11);
    expectParity(1, 1, 32, 12);
    expectParity(1, 40, 33, 13);
    expectParity(40, 1, 33, 14);
}

TEST(PackedGemm, RandomizedShapeSweep)
{
    Rng rng(0xabcdef);
    for (int trial = 0; trial < 12; ++trial) {
        size_t m = 1 + rng.uniformInt(40);
        size_t n = 1 + rng.uniformInt(40);
        size_t k = 1 + rng.uniformInt(150);
        expectParity(m, n, k, 100 + trial);
    }
}

TEST(PackedGemm, ThreadCountsAgree)
{
    ThreadPool pool1(1), pool2(2), pool4(4);
    expectParity(37, 29, 90, 200, &pool1);
    expectParity(37, 29, 90, 200, &pool2);
    expectParity(37, 29, 90, 200, &pool4);
}

TEST(PackedGemm, OutputParameterOverwrites)
{
    Matrix a = randomMatrix(4, 32, 300, 4.0);
    Matrix w = randomMatrix(6, 32, 301, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    Matrix c(99, 99, 123.0f); // wrong shape, stale contents
    packedMatmulNt(pa, pw, c);
    EXPECT_EQ(c.rows(), 4u);
    EXPECT_EQ(c.cols(), 6u);
    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    for (size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(c.flat()[i], ref.flat()[i]) << i;
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
