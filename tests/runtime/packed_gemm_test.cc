/**
 * @file
 * Parity of the packed-domain GEMM against the unpack-then-matmulNt
 * reference over randomized shapes including ragged K (not divisible
 * by the group or subgroup size), several thread counts, tile
 * boundary and degenerate shapes — on every available ISA tier: the
 * scalar tier must be bit-exact, vector tiers within the SIMD
 * tolerance contract. Also property-tests the tile-grid grain
 * heuristic.
 */

#include <gtest/gtest.h>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime_test_util.hh"
#include "util/bits.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesBitExact;
using test::expectMatricesMatch;
using test::randomMatrix;

/**
 * Pack a and w in their paper roles, multiply both ways on every
 * available ISA tier, and hold each tier to its contract (scalar:
 * exact float equality on every output element).
 */
void
expectParity(size_t m, size_t n, size_t k, uint64_t seed,
             ThreadPool *pool = nullptr)
{
    Matrix a = randomMatrix(m, k, seed, 4.0);
    Matrix w = randomMatrix(n, k, seed ^ 0xfeedu, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        Matrix got = packedMatmulNt(pa, pw, pool, isa);
        expectMatricesMatch(got, ref, isa);
    }
    // The default entry point must behave like the active tier.
    Matrix via_default = packedMatmulNt(pa, pw, pool);
    expectMatricesBitExact(
        via_default, packedMatmulNt(pa, pw, pool, activeSimdIsa()));
}

TEST(PackedGemm, GroupAlignedShapes)
{
    expectParity(4, 8, 32, 1);
    expectParity(16, 16, 64, 2);
    expectParity(33, 20, 96, 3);
}

TEST(PackedGemm, RaggedKNotDivisibleBy32)
{
    // Tail groups of 8 and 16 elements (subgroup-aligned).
    expectParity(5, 9, 40, 4);
    expectParity(12, 17, 48, 5);
}

TEST(PackedGemm, RaggedKNotDivisibleBy8)
{
    // Tail groups that split a subgroup: padding must not leak into
    // any output.
    expectParity(5, 9, 35, 6);
    expectParity(7, 21, 67, 7);
    expectParity(3, 5, 7, 8); // K smaller than one subgroup-pair
}

TEST(PackedGemm, TileBoundaryShapes)
{
    // Exactly one tile, one-past, and one-short in each dimension.
    expectParity(16, 16, 32, 9);
    expectParity(17, 15, 32, 10);
    expectParity(15, 17, 32, 11);
    expectParity(1, 1, 32, 12);
    expectParity(1, 40, 33, 13);
    expectParity(40, 1, 33, 14);
}

TEST(PackedGemm, RandomizedShapeSweep)
{
    Rng rng(0xabcdef);
    for (int trial = 0; trial < 12; ++trial) {
        size_t m = 1 + rng.uniformInt(40);
        size_t n = 1 + rng.uniformInt(40);
        size_t k = 1 + rng.uniformInt(150);
        expectParity(m, n, k, 100 + trial);
    }
}

TEST(PackedGemm, ThreadCountsAgree)
{
    ThreadPool pool1(1), pool2(2), pool4(4);
    expectParity(37, 29, 90, 200, &pool1);
    expectParity(37, 29, 90, 200, &pool2);
    expectParity(37, 29, 90, 200, &pool4);
}

TEST(PackedGemm, DegenerateShapesOnManyLanePools)
{
    // Wide-but-short (one row stripe), tall-but-narrow (one column
    // stripe), and K below the group size, on pools with far more
    // lanes than the natural work split — the grain heuristic must
    // neither serialize nor break parity on any of them.
    ThreadPool pool8(8), pool16(16);
    for (ThreadPool *pool : {&pool8, &pool16}) {
        expectParity(1, 300, 64, 300, pool);  // 1xN, many jt
        expectParity(300, 1, 64, 301, pool);  // Mx1, many it
        expectParity(1, 300, 7, 302, pool);   // 1xN, K < groupSize
        expectParity(300, 1, 7, 303, pool);   // Mx1, K < groupSize
        expectParity(2, 40, 24, 304, pool);   // few tiles per lane
        expectParity(16, 16, 16, 305, pool);  // single tile
    }
}

TEST(PackedGemm, GrainHeuristicInvariants)
{
    // Exhaustive sweep of the tile-grid grain policy: a chunk is at
    // least one tile, never more than the grid, and for multi-lane
    // pools the chunk count never collapses below min(n_tiles,
    // 2*lanes) — i.e. no shape serializes while tiles remain.
    for (size_t n_it = 1; n_it <= 48; ++n_it) {
        for (size_t n_jt = 1; n_jt <= 48; ++n_jt) {
            size_t n_tiles = n_it * n_jt;
            for (size_t lanes : {1u, 2u, 3u, 4u, 8u, 16u, 32u}) {
                size_t grain =
                    detail::packedGemmGrain(n_it, n_jt, lanes);
                ASSERT_GE(grain, 1u)
                    << n_it << "x" << n_jt << " @" << lanes;
                ASSERT_LE(grain, n_tiles)
                    << n_it << "x" << n_jt << " @" << lanes;
                if (lanes < 2)
                    continue;
                size_t chunks = ceilDiv(n_tiles, grain);
                ASSERT_GE(chunks,
                          std::min<size_t>(n_tiles, 2 * lanes))
                    << n_it << "x" << n_jt << " @" << lanes
                    << " grain " << grain;
                // When whole stripes balance the lanes, chunks must
                // be stripe-aligned so each A tile is decoded once.
                if (n_it >= 2 * lanes) {
                    ASSERT_EQ(grain, n_jt)
                        << n_it << "x" << n_jt << " @" << lanes;
                }
            }
        }
    }
}

TEST(PackedGemm, OutputParameterOverwrites)
{
    Matrix a = randomMatrix(4, 32, 300, 4.0);
    Matrix w = randomMatrix(6, 32, 301, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    Matrix c(99, 99, 123.0f); // wrong shape, stale contents
    packedMatmulNt(pa, pw, c, nullptr, SimdIsa::Scalar);
    EXPECT_EQ(c.rows(), 4u);
    EXPECT_EQ(c.cols(), 6u);
    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    expectMatricesBitExact(c, ref);
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
