/**
 * @file
 * Parity of the packed-domain GEMM against the unpack-then-matmulNt
 * reference over randomized shapes including ragged K (not divisible
 * by the group or subgroup size), several thread counts, tile
 * boundary and degenerate shapes — on every available ISA tier: the
 * scalar tier must be bit-exact, vector tiers within the SIMD
 * tolerance contract. Also property-tests the tile-grid grain
 * heuristic.
 */

#include <gtest/gtest.h>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime_test_util.hh"
#include "util/bits.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesBitExact;
using test::expectMatricesMatch;
using test::randomMatrix;

/**
 * Pack a and w in their paper roles, multiply both ways on every
 * available ISA tier, and hold each tier to its contract (scalar:
 * exact float equality on every output element).
 */
void
expectParity(size_t m, size_t n, size_t k, uint64_t seed,
             ThreadPool *pool = nullptr)
{
    Matrix a = randomMatrix(m, k, seed, 4.0);
    Matrix w = randomMatrix(n, k, seed ^ 0xfeedu, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        Matrix got = packedMatmulNt(pa, pw, pool, isa);
        expectMatricesMatch(got, ref, isa);
    }
    // The default entry point must behave like the active tier.
    Matrix via_default = packedMatmulNt(pa, pw, pool);
    expectMatricesBitExact(
        via_default, packedMatmulNt(pa, pw, pool, activeSimdIsa()));
}

TEST(PackedGemm, GroupAlignedShapes)
{
    expectParity(4, 8, 32, 1);
    expectParity(16, 16, 64, 2);
    expectParity(33, 20, 96, 3);
}

TEST(PackedGemm, RaggedKNotDivisibleBy32)
{
    // Tail groups of 8 and 16 elements (subgroup-aligned).
    expectParity(5, 9, 40, 4);
    expectParity(12, 17, 48, 5);
}

TEST(PackedGemm, RaggedKNotDivisibleBy8)
{
    // Tail groups that split a subgroup: padding must not leak into
    // any output.
    expectParity(5, 9, 35, 6);
    expectParity(7, 21, 67, 7);
    expectParity(3, 5, 7, 8); // K smaller than one subgroup-pair
}

TEST(PackedGemm, TileBoundaryShapes)
{
    // Exactly one tile, one-past, and one-short in each dimension.
    expectParity(16, 16, 32, 9);
    expectParity(17, 15, 32, 10);
    expectParity(15, 17, 32, 11);
    expectParity(1, 1, 32, 12);
    expectParity(1, 40, 33, 13);
    expectParity(40, 1, 33, 14);
}

TEST(PackedGemm, RandomizedShapeSweep)
{
    Rng rng(0xabcdef);
    for (int trial = 0; trial < 12; ++trial) {
        size_t m = 1 + rng.uniformInt(40);
        size_t n = 1 + rng.uniformInt(40);
        size_t k = 1 + rng.uniformInt(150);
        expectParity(m, n, k, 100 + trial);
    }
}

TEST(PackedGemm, ThreadCountsAgree)
{
    ThreadPool pool1(1), pool2(2), pool4(4);
    expectParity(37, 29, 90, 200, &pool1);
    expectParity(37, 29, 90, 200, &pool2);
    expectParity(37, 29, 90, 200, &pool4);
}

TEST(PackedGemm, DegenerateShapesOnManyLanePools)
{
    // Wide-but-short (one row stripe), tall-but-narrow (one column
    // stripe), and K below the group size, on pools with far more
    // lanes than the natural work split — the grain heuristic must
    // neither serialize nor break parity on any of them.
    ThreadPool pool8(8), pool16(16);
    for (ThreadPool *pool : {&pool8, &pool16}) {
        expectParity(1, 300, 64, 300, pool);  // 1xN, many jt
        expectParity(300, 1, 64, 301, pool);  // Mx1, many it
        expectParity(1, 300, 7, 302, pool);   // 1xN, K < groupSize
        expectParity(300, 1, 7, 303, pool);   // Mx1, K < groupSize
        expectParity(2, 40, 24, 304, pool);   // few tiles per lane
        expectParity(16, 16, 16, 305, pool);  // single tile
    }
}

/**
 * Run the blocked driver with an explicitly pinned (normalized)
 * block hierarchy on every tier and hold each to its contract —
 * scalar stays bit-exact under any mc/kc/nc, vector tiers stay
 * within tolerance.
 */
void
expectBlockedParity(size_t m, size_t n, size_t k, size_t mc,
                    size_t kc, size_t nc, uint64_t seed)
{
    Matrix a = randomMatrix(m, k, seed, 4.0);
    Matrix w = randomMatrix(n, k, seed ^ 0xfeedu, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    ThreadPool pool(3);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) +
                     " blocks=" + std::to_string(mc) + "/" +
                     std::to_string(kc) + "/" + std::to_string(nc));
        detail::GemmBlocking b =
            detail::normalizeBlocking(isa, mc, kc, nc);
        Matrix got;
        detail::packedMatmulNtBlocked(pa, pw, got, &pool, isa, b);
        expectMatricesMatch(got, ref, isa);
    }
}

TEST(PackedGemm, BlockedExplicitHierarchySweep)
{
    // Block boundaries in every dimension: blocks far smaller than
    // the matrix (many panels and depth slices), exactly one block,
    // one-past and one-short. kc values are pre-normalization (they
    // round up to the 32-element group).
    expectBlockedParity(65, 65, 96, 16, 32, 16, 40);
    expectBlockedParity(64, 64, 64, 64, 64, 64, 41);
    expectBlockedParity(33, 17, 100, 32, 32, 16, 42);
    expectBlockedParity(16, 48, 256, 16, 64, 16, 43);
}

TEST(PackedGemm, BlockedKSmallerThanKc)
{
    // K < KC (single depth slice) including ragged K: the slice
    // clamp and the scalar pad exclusion must both hold.
    expectBlockedParity(20, 20, 33, 16, 256, 16, 44);
    expectBlockedParity(7, 9, 5, 16, 512, 16, 45);
}

TEST(PackedGemm, BlockedMSmallerThanRegisterTile)
{
    // M below every tier's MR: only the ragged-edge microkernel
    // paths run.
    expectBlockedParity(1, 64, 96, 64, 64, 32, 46);
    expectBlockedParity(3, 33, 40, 128, 256, 128, 47);
    expectBlockedParity(5, 100, 64, 128, 256, 32, 48);
}

TEST(PackedGemm, BlockedSinglePanelShapes)
{
    // The whole problem fits one W panel / one A block: the task
    // grid degenerates to 1x1 and the panel is decoded exactly once.
    expectBlockedParity(8, 8, 32, 128, 256, 128, 49);
    expectBlockedParity(100, 100, 128, 512, 512, 512, 50);
}

TEST(PackedGemm, BlockEnvKnobsAreNormalized)
{
    // gemmBlocking() must never hand the driver a hierarchy that
    // violates a kernel invariant, whatever the env said; the
    // normalizer is the single chokepoint.
    for (SimdIsa isa : supportedSimdIsas()) {
        detail::GemmBlocking d = detail::gemmBlocking(isa);
        EXPECT_EQ(d.mc % d.mr, 0u) << simdIsaName(isa);
        EXPECT_EQ(d.nc % d.nr, 0u) << simdIsaName(isa);
        EXPECT_EQ(d.kc % PackedM2xfpTensor::groupSize, 0u)
            << simdIsaName(isa);
        detail::GemmBlocking b = detail::normalizeBlocking(isa, 1,
                                                           1, 1);
        EXPECT_EQ(b.mc, b.mr) << simdIsaName(isa);
        EXPECT_EQ(b.nc, b.nr) << simdIsaName(isa);
        EXPECT_EQ(b.kc, PackedM2xfpTensor::groupSize)
            << simdIsaName(isa);
    }
}

TEST(PackedGemm, LegacyTiledDriverStaysOnContract)
{
    // The PR3 baseline driver (kept for the bench's blocked_vs_pr3
    // ratio) must hold the same per-tier contracts as the blocked
    // one.
    Matrix a = randomMatrix(37, 90, 60, 4.0);
    Matrix w = randomMatrix(29, 90, 61, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    ThreadPool pool(2);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        Matrix got;
        detail::packedMatmulNtTiled(pa, pw, got, &pool, isa);
        expectMatricesMatch(got, ref, isa);
    }
}

TEST(PackedGemm, GrainHeuristicInvariants)
{
    // Exhaustive sweep of the block-grid grain policy: a chunk is at
    // least one task, never more than the grid, and for multi-lane
    // pools the chunk count never collapses below min(n_tasks,
    // 2*lanes) — i.e. no shape serializes while tasks remain. Tasks
    // enumerate ic-fastest, so a stripe of n_ic tasks shares one
    // decoded W panel.
    for (size_t n_ic = 1; n_ic <= 48; ++n_ic) {
        for (size_t n_jc = 1; n_jc <= 48; ++n_jc) {
            size_t n_tasks = n_ic * n_jc;
            for (size_t lanes : {1u, 2u, 3u, 4u, 8u, 16u, 32u}) {
                size_t grain =
                    detail::packedGemmGrain(n_ic, n_jc, lanes);
                ASSERT_GE(grain, 1u)
                    << n_ic << "x" << n_jc << " @" << lanes;
                ASSERT_LE(grain, n_tasks)
                    << n_ic << "x" << n_jc << " @" << lanes;
                if (lanes < 2)
                    continue;
                size_t chunks = ceilDiv(n_tasks, grain);
                ASSERT_GE(chunks,
                          std::min<size_t>(n_tasks, 2 * lanes))
                    << n_ic << "x" << n_jc << " @" << lanes
                    << " grain " << grain;
                // When panel stripes balance the lanes, chunks must
                // be stripe-aligned so each W panel is decoded once
                // per stripe.
                if (n_jc >= 2 * lanes) {
                    ASSERT_EQ(grain, n_ic)
                        << n_ic << "x" << n_jc << " @" << lanes;
                }
            }
        }
    }
}

TEST(PackedGemm, NoBlockConfigurationSerializesAMultiLanePool)
{
    // The grain is derived from the MC/NC cache blocks, so sweep
    // actual block configurations (normalized per ISA) against a
    // spread of output shapes: the resulting block grid must always
    // chunk into at least min(n_tasks, 2*lanes) pieces.
    const size_t shapes[][2] = {{1, 1},     {1, 513},  {513, 1},
                                {64, 64},   {100, 700}, {700, 100},
                                {511, 513}, {2048, 96}, {96, 2048}};
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        for (size_t mc : {1u, 16u, 64u, 128u, 512u}) {
            for (size_t nc : {1u, 16u, 64u, 128u, 512u}) {
                detail::GemmBlocking b =
                    detail::normalizeBlocking(isa, mc, 256, nc);
                ASSERT_EQ(b.mc % b.mr, 0u);
                ASSERT_EQ(b.nc % b.nr, 0u);
                for (const auto &s : shapes) {
                    size_t n_ic = ceilDiv(s[0], b.mc);
                    size_t n_jc = ceilDiv(s[1], b.nc);
                    size_t n_tasks = n_ic * n_jc;
                    for (size_t lanes : {2u, 4u, 8u, 32u}) {
                        size_t grain = detail::packedGemmGrain(
                            n_ic, n_jc, lanes);
                        size_t chunks = ceilDiv(n_tasks, grain);
                        ASSERT_GE(chunks, std::min<size_t>(
                                              n_tasks, 2 * lanes))
                            << s[0] << "x" << s[1] << " mc=" << b.mc
                            << " nc=" << b.nc << " @" << lanes;
                    }
                }
            }
        }
    }
}

TEST(PackedGemm, OutputParameterOverwrites)
{
    Matrix a = randomMatrix(4, 32, 300, 4.0);
    Matrix w = randomMatrix(6, 32, 301, 6.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    Matrix c(99, 99, 123.0f); // wrong shape, stale contents
    packedMatmulNt(pa, pw, c, nullptr, SimdIsa::Scalar);
    EXPECT_EQ(c.rows(), 4u);
    EXPECT_EQ(c.cols(), 6u);
    Matrix ref = matmulNt(pa.unpackActivations(aq),
                          pw.unpackWeights(wq));
    expectMatricesBitExact(c, ref);
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
