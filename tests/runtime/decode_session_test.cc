/**
 * @file
 * DecodeSession: incremental prefill + stepwise decode must
 * reproduce the one-shot full forward — bit-exactly with the fp32
 * cache (the oracle mode replicates the causal attention arithmetic
 * operation for operation), and within the established model-level
 * tolerance with the packed cache against a reference that
 * quantizes K/V through the functional §6.4 path. Covers ragged
 * batches, cache growth across prefill-chunk boundaries, and
 * single-token prefill.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/m2xfp.hh"
#include "runtime/decode_session.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

model::ModelConfig
tinyConfig()
{
    model::ModelConfig cfg;
    cfg.name = "test-tiny";
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 2;
    cfg.dFf = 96;
    cfg.vocab = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomTokens(size_t n, unsigned vocab, uint64_t seed)
{
    std::vector<int> toks(n);
    Rng rng(seed);
    for (auto &t : toks)
        t = static_cast<int>(rng.uniformInt(vocab));
    return toks;
}

/**
 * Prefill the first @p prefill_len tokens, then decode the rest one
 * by one; returns the assembled [tokens, vocab] logits.
 */
Matrix
runPrefillDecode(DecodeSession &s, const std::vector<int> &toks,
                 size_t prefill_len)
{
    size_t seq = s.addSequence();
    std::span<const int> all(toks);
    Matrix chunk = s.prefill(seq, all.subspan(0, prefill_len));
    Matrix out(toks.size(), chunk.cols());
    for (size_t t = 0; t < prefill_len; ++t)
        for (size_t c = 0; c < chunk.cols(); ++c)
            out(t, c) = chunk(t, c);
    for (size_t t = prefill_len; t < toks.size(); ++t) {
        int tok = toks[t];
        Matrix step = s.decode({&tok, 1});
        EXPECT_EQ(step.rows(), 1u);
        for (size_t c = 0; c < step.cols(); ++c)
            out(t, c) = step(0, c);
    }
    EXPECT_EQ(s.length(seq), toks.size());
    return out;
}

/** A reference model with functionally §6.4-quantized K/V. */
model::TinyTransformer
kvQuantizedReference(const model::ModelConfig &cfg, SimdIsa isa)
{
    model::TinyTransformer ref(cfg);
    ref.rebuild(packedLinearFactory({}, nullptr, nullptr, isa));
    ref.setKvQuantizers(
        [] {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        },
        nullptr);
    return ref;
}

TEST(DecodeSession, Fp32CacheMatchesOneShotExactly)
{
    model::ModelConfig cfg = tinyConfig();
    std::vector<int> toks = randomTokens(13, cfg.vocab, 1);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        DecodeSession s(cfg,
                        {.isa = isa, .kvMode = KvCacheMode::Fp32});
        EXPECT_EQ(s.simdIsa(), isa);
        Matrix got = runPrefillDecode(s, toks, 6);
        // The fp32 cache replicates the full forward's arithmetic,
        // and per-row linear outputs are independent of the chunk's
        // row count on every tier — so incremental decode is
        // bit-exact against the one-shot forward, vector tiers
        // included.
        Matrix want = s.model().forwardLogits(toks);
        test::expectMatricesBitExact(got, want);
    }
}

TEST(DecodeSession, PackedCacheMatchesKvQuantizedOneShot)
{
    model::ModelConfig cfg = tinyConfig();
    std::vector<int> toks = randomTokens(13, cfg.vocab, 2);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        // Pinned to elem_em: the oracle below quantizes K/V through
        // the paper codec, whatever M2X_FORMAT says (cross-format
        // coverage lives in cross_format_parity_test).
        DecodeSession s(cfg, {.isa = isa,
                              .kvMode = KvCacheMode::Packed,
                              .codec = PackedCodec::ElemEm});
        Matrix got = runPrefillDecode(s, toks, 6);
        // The packed rows decode to exactly the values the
        // functional Elem-EM codec produces, so the only difference
        // vs the reference is attention-kernel reassociation —
        // held to the established model-level tolerance.
        model::TinyTransformer ref = kvQuantizedReference(cfg, isa);
        test::expectMatricesClose(got, ref.forwardLogits(toks),
                                  1e-5);
    }
}

TEST(DecodeSession, PackedCacheNonMultipleOf32Width)
{
    // d_model = 40: every cached row ends in a padded tail group —
    // the packed tail must decode to the same values the functional
    // codec produces for the shorter trailing group.
    model::ModelConfig cfg = tinyConfig();
    cfg.dModel = 40;
    cfg.nHeads = 2;
    std::vector<int> toks = randomTokens(9, cfg.vocab, 3);
    DecodeSession s(cfg, {.kvMode = KvCacheMode::Packed,
                          .codec = PackedCodec::ElemEm});
    Matrix got = runPrefillDecode(s, toks, 4);
    model::TinyTransformer ref =
        kvQuantizedReference(cfg, s.simdIsa());
    test::expectMatricesClose(got, ref.forwardLogits(toks), 1e-5);
}

TEST(DecodeSession, ChunkedPrefillCrossesGrowthBoundaries)
{
    model::ModelConfig cfg = tinyConfig();
    std::vector<int> toks = randomTokens(13, cfg.vocab, 4);
    std::span<const int> all(toks);
    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        DecodeSession whole(cfg, {.kvMode = mode});
        DecodeSession chunked(cfg, {.kvMode = mode});
        size_t ws = whole.addSequence();
        size_t cs = chunked.addSequence();
        Matrix want = whole.prefill(ws, all);

        // 1 + 5 + 7 tokens: growth across chunk boundaries must be
        // invisible — identical logits (the engine is deterministic
        // whatever the chunking) and identical resident bytes.
        Matrix got(toks.size(), want.cols());
        size_t chunks[] = {1, 5, 7};
        size_t t0 = 0;
        for (size_t n : chunks) {
            Matrix part = chunked.prefill(cs, all.subspan(t0, n));
            for (size_t t = 0; t < n; ++t)
                for (size_t c = 0; c < part.cols(); ++c)
                    got(t0 + t, c) = part(t, c);
            t0 += n;
        }
        test::expectMatricesBitExact(got, want);
        EXPECT_EQ(chunked.kvBytes(), whole.kvBytes());
    }
}

TEST(DecodeSession, RaggedBatchDecode)
{
    model::ModelConfig cfg = tinyConfig();
    // Prompt lengths 5, 9 and 1 (single-token prefill edge case),
    // then four joint decode steps — every sequence must match its
    // own one-shot forward.
    std::vector<std::vector<int>> prompts = {
        randomTokens(5, cfg.vocab, 10),
        randomTokens(9, cfg.vocab, 11),
        randomTokens(1, cfg.vocab, 12),
    };
    const size_t steps = 4;
    std::vector<std::vector<int>> next(steps);
    for (size_t t = 0; t < steps; ++t)
        next[t] = randomTokens(prompts.size(), cfg.vocab, 20 + t);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        DecodeSession s(cfg, {.threads = 2,
                              .kvMode = mode,
                              .codec = PackedCodec::ElemEm});
        std::vector<std::vector<int>> full = prompts;
        std::vector<std::vector<Matrix>> step_logits(prompts.size());
        for (size_t i = 0; i < prompts.size(); ++i) {
            size_t seq = s.addSequence();
            ASSERT_EQ(seq, i);
            s.prefill(seq, prompts[i]);
        }
        for (size_t t = 0; t < steps; ++t) {
            Matrix logits = s.decode(next[t]);
            ASSERT_EQ(logits.rows(), prompts.size());
            for (size_t i = 0; i < prompts.size(); ++i) {
                full[i].push_back(next[t][i]);
                Matrix row(1, logits.cols());
                for (size_t c = 0; c < logits.cols(); ++c)
                    row(0, c) = logits(i, c);
                step_logits[i].push_back(std::move(row));
            }
        }
        model::TinyTransformer ref =
            kvQuantizedReference(cfg, s.simdIsa());
        for (size_t i = 0; i < prompts.size(); ++i) {
            SCOPED_TRACE("seq " + std::to_string(i));
            EXPECT_EQ(s.length(i), full[i].size());
            Matrix want =
                mode == KvCacheMode::Fp32
                    ? s.model().forwardLogits(full[i])
                    : ref.forwardLogits(full[i]);
            // Check the decode-step rows (the last `steps` rows).
            for (size_t t = 0; t < steps; ++t) {
                size_t row = full[i].size() - steps + t;
                const Matrix &got = step_logits[i][t];
                for (size_t c = 0; c < want.cols(); ++c) {
                    double g = got(0, c), w = want(row, c);
                    if (mode == KvCacheMode::Fp32)
                        ASSERT_EQ(g, w) << "row " << row << " col "
                                        << c;
                    else
                        ASSERT_LE(std::abs(g - w),
                                  1e-5 * std::max(1.0, std::abs(w)))
                            << "row " << row << " col " << c;
                }
            }
        }
    }
}

TEST(DecodeSession, KvBytesAccounting)
{
    model::ModelConfig cfg = tinyConfig();
    std::vector<int> toks = randomTokens(12, cfg.vocab, 30);

    DecodeSession packed(cfg, {.kvMode = KvCacheMode::Packed});
    DecodeSession fp32(cfg, {.kvMode = KvCacheMode::Fp32});
    for (DecodeSession *s : {&packed, &fp32}) {
        size_t a = s->addSequence();
        size_t b = s->addSequence();
        s->prefill(a, toks);
        s->prefill(b, std::span<const int>(toks).subspan(0, 7));
    }
    size_t tokens = 12 + 7;
    // Per token per layer: K + V at groupsPerRow * 18 bytes each.
    size_t groups = cfg.dModel / 32;
    size_t packed_want = tokens * 2 * cfg.nLayers * groups * 18;
    size_t fp32_want =
        tokens * 2 * cfg.nLayers * cfg.dModel * sizeof(float);
    EXPECT_EQ(packed.kvBytes(), packed_want);
    EXPECT_EQ(fp32.kvBytes(), fp32_want);
    EXPECT_DOUBLE_EQ(fp32.kvBytesPerToken() /
                         packed.kvBytesPerToken(),
                     32.0 / 4.5);
    EXPECT_GT(packed.attendSeconds(), 0.0);
    EXPECT_EQ(packed.kvMode(), KvCacheMode::Packed);
    EXPECT_EQ(packed.batchSize(), 2u);
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
