/**
 * @file
 * Fast-path activation encoder verification. The contract under test
 * is byte-exactness: for the paper activation config, every kernel
 * tier of runtime/packed_quantize must produce element/scale/meta
 * streams identical to the functional ElemEmQuantizer path
 * (PackedM2xfpTensor::packActivations(m, q)) — same bytes, not just
 * same decoded values.
 *
 *  - The FP4/FP6 rounding ladders are swept against the Minifloat
 *    RNE oracle over every sign/exponent (all 2^16 high-half bit
 *    patterns), dense neighborhoods of every rounding boundary, and
 *    random full bit patterns (NaN/Inf/denormals included).
 *  - Group encoders (scalar and AVX2) are swept on random and
 *    adversarial groups: NaN/Inf/denormal inputs, all-zero groups,
 *    signed zeros, E8M0 clamp boundaries, exact rounding ties.
 *  - Matrix-level packing is compared across ISA tiers, thread
 *    counts, ragged tail shapes and all five scale rules, and the
 *    storage-reusing into-overload is cross-checked against fresh
 *    packs after shape changes.
 *
 * AVX2-specific cases skip (not fail) on machines without the tier;
 * CI additionally runs the whole runtime label under
 * M2X_SIMD=scalar.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "core/m2xfp.hh"
#include "runtime/packed_quantize.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::randomMatrix;

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t bytesPerGroup =
    PackedM2xfpTensor::bytesPerGroupElems;

/** All five shared-scale rules. */
const ScaleRule allRules[] = {ScaleRule::Floor, ScaleRule::Ceil,
                              ScaleRule::Rtn1, ScaleRule::Rtn2,
                              ScaleRule::Rtne};

ElemEmQuantizer
quantizerFor(ScaleRule rule)
{
    M2xfpConfig cfg;
    cfg.rule = rule;
    return makeM2xfpActivationQuantizer(cfg);
}

/** Expected group bytes from the functional codec. */
struct GroupBytes
{
    uint8_t elems[bytesPerGroup];
    uint8_t scale;
    uint8_t meta;
};

GroupBytes
functionalGroupBytes(const float *in, const ElemEmQuantizer &q)
{
    ElemEmGroup g =
        q.encodeGroup(std::span<const float>(in, groupSize));
    GroupBytes b{};
    b.scale = g.scale.code();
    for (size_t j = 0; j < groupSize / 2; ++j)
        b.elems[j] = static_cast<uint8_t>(
            (g.fp4Codes[2 * j] & 0xfu) |
            ((g.fp4Codes[2 * j + 1] & 0xfu) << 4));
    for (size_t s = 0; s < g.meta.size() && s < 4; ++s)
        b.meta = static_cast<uint8_t>(
            b.meta | ((g.meta[s] & 0x3u) << (2 * s)));
    return b;
}

void
expectGroupMatches(const float *in, ScaleRule rule, SimdIsa isa,
                   const char *what)
{
    const ElemEmQuantizer q = quantizerFor(rule);
    GroupBytes want = functionalGroupBytes(in, q);
    GroupBytes got{};
    if (isa == SimdIsa::Scalar) {
        detail::encodeActivationGroupScalar(in, rule, got.elems,
                                            &got.scale, &got.meta);
    } else {
#ifdef M2X_HAVE_AVX2
        detail::encodeActivationGroupAvx2(in, rule, got.elems,
                                          &got.scale, &got.meta);
#else
        GTEST_FAIL() << "AVX2 tier not compiled in";
#endif
    }
    ASSERT_EQ(got.scale, want.scale)
        << what << " scale (" << simdIsaName(isa) << ")";
    ASSERT_EQ(got.meta, want.meta)
        << what << " meta (" << simdIsaName(isa) << ")";
    for (size_t j = 0; j < bytesPerGroup; ++j)
        ASSERT_EQ(got.elems[j], want.elems[j])
            << what << " element byte " << j << " ("
            << simdIsaName(isa) << ")";
}

using test::expectPackedStreamsEqual;

/** Interesting values for adversarial groups. */
std::vector<float>
adversarialValues()
{
    const float inf = std::numeric_limits<float>::infinity();
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    std::vector<float> vals = {
        0.0f, -0.0f, inf, -inf, qnan, -qnan,
        std::numeric_limits<float>::max(),
        -std::numeric_limits<float>::max(),
        std::numeric_limits<float>::min(),       // min normal
        -std::numeric_limits<float>::min(),
        std::numeric_limits<float>::denorm_min(),
        -std::numeric_limits<float>::denorm_min(),
        1.0f, -1.0f, 6.0f, -6.0f, 7.5f, 1e38f, -1e38f,
    };
    // Every FP4 rounding boundary at several block scales, including
    // scales that clamp at both ends of the E8M0 range.
    const float ties[] = {0.25f, 0.75f, 1.25f, 1.75f,
                          2.5f,  3.5f,  5.0f,  6.0f};
    const int exps[] = {-149, -130, -127, -20, -1, 0,
                        1,    20,   126,  127};
    for (float t : ties) {
        for (int e : exps) {
            float v = std::ldexp(t, e);
            vals.push_back(v);
            vals.push_back(-v);
            vals.push_back(std::nextafter(v, 0.0f));
            vals.push_back(std::nextafter(v, inf));
        }
    }
    return vals;
}

std::vector<SimdIsa>
isasUnderTest()
{
    return supportedSimdIsas();
}

TEST(QuantizeLadders, Fp4MatchesMinifloatRne)
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    auto check = [&](float x) {
        uint32_t want = fp4.encode(x);
        uint32_t got = detail::fp4CodeRne(x);
        ASSERT_EQ(got, want)
            << "x = " << x << " bits = " << std::hex
            << std::bit_cast<uint32_t>(x);
    };
    // Every sign/exponent region: all 2^16 high-half bit patterns
    // (covers ±0, denormals, ±Inf and a NaN spread).
    for (uint32_t h = 0; h < 0x10000u; ++h)
        check(std::bit_cast<float>(h << 16));
    // Dense neighborhoods of every rounding boundary and FP4 value.
    const float pts[] = {0.0f, 0.25f, 0.5f, 0.75f, 1.0f, 1.25f,
                         1.5f, 1.75f, 2.0f, 2.5f,  3.0f, 3.5f,
                         4.0f, 5.0f,  6.0f};
    for (float p : pts) {
        float up = p, dn = p;
        for (int i = 0; i < 4; ++i) {
            check(up);
            check(-up);
            check(dn);
            check(-dn);
            up = std::nextafter(
                up, std::numeric_limits<float>::infinity());
            dn = std::nextafter(
                dn, -std::numeric_limits<float>::infinity());
        }
    }
    // Random full bit patterns: every NaN payload and denormal is a
    // legal input.
    Rng rng(7);
    for (int i = 0; i < 200000; ++i)
        check(std::bit_cast<float>(
            static_cast<uint32_t>(rng.next())));
}

TEST(QuantizeLadders, Fp6MatchesMinifloatRne)
{
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    auto check = [&](float a) {
        uint32_t want = fp6.encode(a) & 0x1fu;
        uint32_t got = detail::fp6MagRne(a);
        ASSERT_EQ(got, want)
            << "a = " << a << " bits = " << std::hex
            << std::bit_cast<uint32_t>(a);
    };
    // The encoder only ever feeds it |x| * inv, i.e. non-negative
    // magnitudes or NaN.
    for (uint32_t h = 0; h < 0x8000u; ++h)
        check(std::bit_cast<float>(h << 16));
    check(std::numeric_limits<float>::quiet_NaN());
    // Dense sweep of the whole FP6 range plus every half-step tie.
    for (int n = 0; n <= 8 * 16; ++n) {
        float v = static_cast<float>(n) / 16.0f; // 0 .. 8, step 1/16
        float up = v, dn = v;
        for (int i = 0; i < 3; ++i) {
            check(up);
            check(dn);
            up = std::nextafter(
                up, std::numeric_limits<float>::infinity());
            dn = std::nextafter(dn, 0.0f);
        }
    }
    Rng rng(11);
    for (int i = 0; i < 200000; ++i) {
        float f = std::bit_cast<float>(
            static_cast<uint32_t>(rng.next()));
        check(std::fabs(f));
    }
}

TEST(QuantizeGroup, RandomParityEveryIsa)
{
    Rng rng(21);
    for (SimdIsa isa : isasUnderTest()) {
        for (int it = 0; it < 2000; ++it) {
            float in[groupSize];
            double scale = std::ldexp(
                1.0, static_cast<int>(rng.uniformInt(60)) - 30);
            for (auto &v : in)
                v = static_cast<float>(rng.studentT(4.0) * scale);
            ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
                in, ScaleRule::Floor, isa, "random group"));
        }
    }
}

TEST(QuantizeGroup, AdversarialParityEveryIsa)
{
    std::vector<float> vals = adversarialValues();
    Rng rng(33);
    for (SimdIsa isa : isasUnderTest()) {
        // Groups drawn purely from the adversarial pool.
        for (int it = 0; it < 4000; ++it) {
            float in[groupSize];
            for (auto &v : in)
                v = vals[rng.uniformInt(vals.size())];
            ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
                in, ScaleRule::Floor, isa, "adversarial group"));
        }
        // Whole-group broadcasts of each adversarial value (hits
        // all-NaN, all-Inf, all-denormal and both E8M0 clamps).
        for (float v : vals) {
            float in[groupSize];
            std::fill(std::begin(in), std::end(in), v);
            ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
                in, ScaleRule::Floor, isa, "broadcast group"));
        }
        // Single non-zero element in every position (top-1 index
        // coverage), all-zero groups, signed-zero-only groups.
        float zeros[groupSize] = {};
        ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
            zeros, ScaleRule::Floor, isa, "all-zero group"));
        float negzeros[groupSize];
        std::fill(std::begin(negzeros), std::end(negzeros), -0.0f);
        ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
            negzeros, ScaleRule::Floor, isa, "neg-zero group"));
        for (size_t pos = 0; pos < groupSize; ++pos) {
            float in[groupSize] = {};
            in[pos] = -3.578f;
            ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
                in, ScaleRule::Floor, isa, "single element"));
        }
    }
}

TEST(QuantizeGroup, ScaleRuleParityEveryIsa)
{
    Rng rng(47);
    std::vector<float> vals = adversarialValues();
    for (SimdIsa isa : isasUnderTest()) {
        for (ScaleRule rule : allRules) {
            for (int it = 0; it < 300; ++it) {
                float in[groupSize];
                for (auto &v : in)
                    v = (it % 2 == 0)
                            ? static_cast<float>(rng.studentT(4.0))
                            : vals[rng.uniformInt(vals.size())];
                ASSERT_NO_FATAL_FAILURE(expectGroupMatches(
                    in, rule, isa, scaleRuleName(rule)));
            }
        }
    }
}

TEST(QuantizeMatrix, ParityAcrossShapesIsasAndThreads)
{
    const ElemEmQuantizer q = quantizerFor(ScaleRule::Floor);
    const struct
    {
        size_t rows, cols;
    } shapes[] = {{1, 1},  {1, 31},  {2, 32},  {3, 33},
                  {5, 64}, {7, 100}, {16, 192}, {33, 257}};
    for (const auto &sh : shapes) {
        Matrix m = randomMatrix(sh.rows, sh.cols,
                                1000 + sh.rows * 131 + sh.cols, 4.0);
        PackedM2xfpTensor want =
            PackedM2xfpTensor::packActivations(m, q);
        for (SimdIsa isa : isasUnderTest()) {
            for (unsigned threads : {1u, 4u}) {
                ThreadPool pool(threads);
                PackedM2xfpTensor got =
                    PackedM2xfpTensor::packActivations(m, q, &pool,
                                                       isa);
                ASSERT_NO_FATAL_FAILURE(expectPackedStreamsEqual(
                    got, want, simdIsaName(isa)));
            }
        }
    }
}

TEST(QuantizeMatrix, AdversarialMatrixParity)
{
    const ElemEmQuantizer q = quantizerFor(ScaleRule::Floor);
    std::vector<float> vals = adversarialValues();
    Rng rng(59);
    Matrix m(9, 135); // ragged tail: 5 groups minus 25 elements
    for (auto &v : m.flat())
        v = vals[rng.uniformInt(vals.size())];
    PackedM2xfpTensor want = PackedM2xfpTensor::packActivations(m, q);
    for (SimdIsa isa : isasUnderTest()) {
        ThreadPool pool(3);
        PackedM2xfpTensor got =
            PackedM2xfpTensor::packActivations(m, q, &pool, isa);
        ASSERT_NO_FATAL_FAILURE(
            expectPackedStreamsEqual(got, want, simdIsaName(isa)));
    }
}

TEST(QuantizeMatrix, IntoOverloadReusesStorageAcrossShapes)
{
    const ElemEmQuantizer q = quantizerFor(ScaleRule::Floor);
    PackedM2xfpTensor reused;
    const struct
    {
        size_t rows, cols;
    } shapes[] = {{12, 200}, {3, 33}, {1, 1}, {16, 192}, {5, 64}};
    for (SimdIsa isa : isasUnderTest()) {
        for (const auto &sh : shapes) {
            Matrix m = randomMatrix(
                sh.rows, sh.cols, 77 + sh.rows * 7 + sh.cols, 4.0);
            PackedM2xfpTensor::packActivations(m, q, nullptr, isa,
                                               reused);
            PackedM2xfpTensor want =
                PackedM2xfpTensor::packActivations(m, q);
            ASSERT_NO_FATAL_FAILURE(
                expectPackedStreamsEqual(reused, want, "reused buffer"));
        }
    }
}

TEST(QuantizeMatrix, EmptyShapes)
{
    const ElemEmQuantizer q = quantizerFor(ScaleRule::Floor);
    for (SimdIsa isa : isasUnderTest()) {
        Matrix empty_rows(0, 64);
        PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(
            empty_rows, q, nullptr, isa);
        EXPECT_EQ(t.rows(), 0u);
        EXPECT_EQ(t.totalBytes(), 0u);
        Matrix empty_cols(4, 0);
        t = PackedM2xfpTensor::packActivations(empty_cols, q,
                                               nullptr, isa);
        EXPECT_EQ(t.rows(), 4u);
        EXPECT_EQ(t.cols(), 0u);
        EXPECT_EQ(t.totalBytes(), 0u);
    }
}

TEST(QuantizeGrain, Invariants)
{
    const size_t rows_cases[] = {0,  1,  2,   3,   7,   8,  15,
                                 16, 33, 100, 255, 256, 1000};
    const size_t lanes_cases[] = {1, 2, 3, 4, 8, 16, 64};
    for (size_t rows : rows_cases) {
        for (size_t lanes : lanes_cases) {
            size_t grain =
                detail::packedQuantizeGrain(rows, lanes);
            ASSERT_GE(grain, 1u);
            ASSERT_LE(grain, std::max<size_t>(rows, 1));
            if (rows == 0)
                continue;
            size_t chunks = (rows + grain - 1) / grain;
            if (lanes >= 2) {
                ASSERT_GE(chunks,
                          std::min<size_t>(rows, 2 * lanes))
                    << "rows " << rows << " lanes " << lanes;
            } else {
                ASSERT_EQ(chunks, 1u);
            }
        }
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
