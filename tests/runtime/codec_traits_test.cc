/**
 * @file
 * Property tests for the codec-traits seam: for every registered
 * PackedCodec the stream-geometry invariants must hold, the decode
 * LUTs must reproduce the functional codecs' math entry-for-entry,
 * and the generic (traits-driven) group/row decoders must be
 * bit-identical to the functional unpackers over the full 256-value
 * element-byte space — the scalar-oracle property the GEMM and
 * attend drivers rely on when they dispatch non-Elem-EM tensors to
 * these kernels.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/elem_em.hh"
#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "core/packed_codec.hh"
#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "runtime/codec_traits.hh"
#include "runtime/decode_lut.hh"
#include "runtime_test_util.hh"

namespace m2x {
namespace runtime {
namespace {

using test::oneGroupTensor;
using test::randomMatrix;

std::string
codecTrace(PackedCodec c)
{
    return std::string("codec=") + packedCodecName(c);
}

TEST(CodecInfo, GeometryInvariantsHoldForEveryCodec)
{
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        const PackedCodecInfo &info = packedCodecInfo(c);
        // Element nibbles pack two per byte.
        EXPECT_EQ(info.bytesPerGroupElems, info.groupSize / 2);
        EXPECT_EQ(info.groupSize % 2, 0u);
        // The metadata byte holds exactly four 2-bit granules.
        EXPECT_EQ(info.groupSize % info.subgroupSize, 0u);
        EXPECT_EQ(info.groupSize / info.subgroupSize, 4u);
        // bits/element = 4 (FP4 nibble) + one scale byte + one
        // metadata byte amortized over the group.
        double bits = 4.0 + 16.0 / info.groupSize;
        EXPECT_DOUBLE_EQ(info.bitsPerElement, bits);
        // Group byte stride of all three streams together.
        EXPECT_EQ(info.bytesPerGroupElems + 2,
                  static_cast<unsigned>(info.groupSize *
                                        info.bitsPerElement / 8.0));
    }
}

TEST(CodecInfo, NamesRoundTripThroughTheParser)
{
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        PackedCodec parsed;
        ASSERT_TRUE(parsePackedCodec(packedCodecName(c), parsed));
        EXPECT_EQ(parsed, c);
    }
    PackedCodec out;
    EXPECT_FALSE(parsePackedCodec(nullptr, out));
    EXPECT_FALSE(parsePackedCodec("", out));
    EXPECT_FALSE(parsePackedCodec("fp8", out));
}

TEST(CodecInfo, EnvResolutionFallsBackLoudly)
{
    EXPECT_EQ(codec_detail::resolvePackedCodec(nullptr),
              PackedCodec::ElemEm);
    EXPECT_EQ(codec_detail::resolvePackedCodec(""),
              PackedCodec::ElemEm);
    EXPECT_EQ(codec_detail::resolvePackedCodec("sg_em"),
              PackedCodec::SgEm);
    EXPECT_EQ(codec_detail::resolvePackedCodec("m2_nvfp4"),
              PackedCodec::M2Nvfp4);
    testing::internal::CaptureStderr();
    EXPECT_EQ(codec_detail::resolvePackedCodec("bogus"),
              PackedCodec::ElemEm);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("M2X_FORMAT"), std::string::npos)
        << "unknown format must warn, got: " << err;
}

TEST(CodecTraits, TensorGeometryFollowsTheCodec)
{
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        const PackedCodecInfo &info = packedCodecInfo(c);
        // 3 groups for g32 at 65 cols, 5 for g16: the tensor's group
        // count and stream sizes must follow the codec, not the
        // legacy Elem-EM constants.
        Matrix m = randomMatrix(2, 65, 5, 4.0);
        PackedM2xfpTensor t =
            PackedM2xfpTensor::packActivationsCodec(m, c);
        EXPECT_EQ(&t.codecInfo(), &info);
        size_t gpr = (65 + info.groupSize - 1) / info.groupSize;
        EXPECT_EQ(t.groupsPerRow(), gpr);
        EXPECT_EQ(t.elementStream().size(),
                  2 * gpr * info.bytesPerGroupElems);
        EXPECT_EQ(t.scaleStream().size(), 2 * gpr);
        EXPECT_EQ(t.metadataStream().size(), 2 * gpr);
    }
}

TEST(CodecTraits, Fp4TablesMatchMinifloatOverFullByteSpace)
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        const CodecTraits &t = CodecTraits::get(c);
        EXPECT_EQ(t.codec, c);
        EXPECT_EQ(t.info, &packedCodecInfo(c));
        for (uint32_t code = 0; code < 16; ++code)
            EXPECT_EQ(t.fp4Value[code], fp4.decode(code))
                << "code " << code;
        for (uint32_t b = 0; b < 256; ++b) {
            EXPECT_EQ(t.fp4Pair[b].lo, t.fp4Value[b & 0xf])
                << "byte " << b;
            EXPECT_EQ(t.fp4Pair[b].hi, t.fp4Value[b >> 4])
                << "byte " << b;
        }
    }
}

TEST(CodecTraits, ScaleTableMatchesTheCodecsScaleRule)
{
    const Minifloat &fp8 = Minifloat::fp8e4m3();
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        const CodecTraits &t = CodecTraits::get(c);
        if (packedCodecInfo(c).scaleIsFp8) {
            for (uint32_t code = 0; code < 256; ++code) {
                float want = fp8.decode(code);
                if (std::isnan(want))
                    EXPECT_TRUE(std::isnan(t.scaleValue[code]))
                        << "code " << code;
                else
                    EXPECT_EQ(t.scaleValue[code], want)
                        << "code " << code;
            }
        } else {
            for (uint32_t code = 0; code < 255; ++code)
                EXPECT_EQ(
                    t.scaleValue[code],
                    ScaleE8m0::fromCode(static_cast<uint8_t>(code))
                        .value())
                    << "code " << code;
            EXPECT_TRUE(std::isnan(t.scaleValue[255]));
        }
    }
}

TEST(CodecTraits, MetadataTablesMatchTheFunctionalRules)
{
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        const CodecTraits &t = CodecTraits::get(c);
        // Weight role everywhere, Sg-EM activations: 1 + m/4.
        for (uint8_t m = 0; m < 4; ++m)
            EXPECT_EQ(t.subMult[m], 1.0f + m / 4.0f) << int(m);
        // Elem-EM-style top-1 FP6 replacement (Elem-EM, M2-NVFP4).
        for (uint32_t code = 0; code < 16; ++code) {
            for (uint8_t m = 0; m < 4; ++m) {
                uint32_t mag6 =
                    ElemEmQuantizer::decodeFp6Mag(code & 0x7u, m);
                float mag = fp6.decode(mag6 & 0x1fu);
                float want = (code >> 3) ? -mag : mag;
                EXPECT_EQ(t.top1Value[code][m], want)
                    << "code " << code << " meta " << int(m);
            }
        }
        // Elem-EE top-1 exponent offset: 2^(m - 2).
        for (uint8_t m = 0; m < 4; ++m)
            EXPECT_EQ(t.top1Mult[m], std::exp2f(m - 2.0f)) << int(m);
    }
}

TEST(CodecTraits, ActKindMatchesTheTaxonomy)
{
    EXPECT_EQ(CodecTraits::get(PackedCodec::ElemEm).actKind,
              GroupDecodeKind::Top1Replace);
    EXPECT_EQ(CodecTraits::get(PackedCodec::ElemEe).actKind,
              GroupDecodeKind::Top1Multiply);
    EXPECT_EQ(CodecTraits::get(PackedCodec::SgEm).actKind,
              GroupDecodeKind::SubgroupMult);
    EXPECT_EQ(CodecTraits::get(PackedCodec::M2Nvfp4).actKind,
              GroupDecodeKind::Top1Replace);
}

/**
 * Per-codec scale codes that are valid for its scale rule (finite,
 * both clamp ends, a mid value) — the packers never emit NaN scales.
 */
std::vector<uint8_t>
validScaleCodes(PackedCodec c)
{
    if (packedCodecInfo(c).scaleIsFp8)
        return {0x00, 0x08, 0x30, 0x3c, 0x45, 0x7e, 0xb8};
    return {0, 64, 100, 127, 130, 200, 254};
}

/**
 * The full-byte-space round trip: every 256 element-byte value,
 * crossed with representative scale and metadata bytes, must decode
 * bit-identically through the traits kernels and the functional
 * quantizer path in both roles.
 */
TEST(CodecTraits, GroupDecodeMatchesFunctionalOverFullByteSpace)
{
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        size_t gs = packedCodecInfo(c).groupSize;
        std::vector<float> buf(gs);
        for (unsigned b = 0; b < 256; ++b) {
            for (uint8_t scale : validScaleCodes(c)) {
                for (uint8_t meta : {0x00, 0x1b, 0xe4, 0xff}) {
                    PackedM2xfpTensor t = oneGroupTensor(
                        static_cast<uint8_t>(b), scale, meta, c);
                    Matrix wantA = t.unpackActivationsCodec();
                    codecDecodeActivationGroup(t, 0, 0, buf.data());
                    for (size_t i = 0; i < gs; ++i)
                        ASSERT_EQ(buf[i], wantA(0, i))
                            << "act byte=" << b
                            << " scale=" << int(scale)
                            << " meta=" << int(meta) << " i=" << i;
                    Matrix wantW = t.unpackWeightsCodec();
                    codecDecodeWeightGroup(t, 0, 0, buf.data());
                    for (size_t i = 0; i < gs; ++i)
                        ASSERT_EQ(buf[i], wantW(0, i))
                            << "wt byte=" << b
                            << " scale=" << int(scale)
                            << " meta=" << int(meta) << " i=" << i;
                }
            }
        }
    }
}

TEST(CodecTraits, RowDecodeMatchesFunctionalWithRaggedTail)
{
    for (PackedCodec c : allPackedCodecs()) {
        SCOPED_TRACE(codecTrace(c));
        size_t gs = packedCodecInfo(c).groupSize;
        // Tail groups that split a subgroup for both geometries.
        for (size_t cols : {size_t{3 * gs}, size_t{2 * gs + 5},
                            size_t{gs - 3}}) {
            SCOPED_TRACE("cols=" + std::to_string(cols));
            Matrix m = randomMatrix(4, cols, 0xC0DE + cols, 4.0);
            PackedM2xfpTensor ta =
                PackedM2xfpTensor::packActivationsCodec(m, c);
            PackedM2xfpTensor tw =
                PackedM2xfpTensor::packWeightsCodec(m, c);
            Matrix ra = ta.unpackActivationsCodec();
            Matrix rw = tw.unpackWeightsCodec();
            std::vector<float> buf(ta.groupsPerRow() * gs);
            for (size_t r = 0; r < m.rows(); ++r) {
                codecDecodeActivationRow(ta, r, buf.data());
                for (size_t i = 0; i < cols; ++i)
                    ASSERT_EQ(buf[i], ra(r, i)) << r << "," << i;
                // Padding must decode to exactly +0.0 so GEMM pads
                // never leak into a dot product.
                for (size_t i = cols; i < buf.size(); ++i)
                    ASSERT_EQ(buf[i], 0.0f) << r << "," << i;
                codecDecodeWeightRow(tw, r, buf.data());
                for (size_t i = 0; i < cols; ++i)
                    ASSERT_EQ(buf[i], rw(r, i)) << r << "," << i;
                for (size_t i = cols; i < buf.size(); ++i)
                    ASSERT_EQ(buf[i], 0.0f) << r << "," << i;
            }
            // The attend-shaped multi-row decoder: same values at an
            // arbitrary stride.
            size_t stride = ta.groupsPerRow() * gs + 7;
            std::vector<float> rows(m.rows() * stride, -1.0f);
            codecDecodeRows(ta, 0, m.rows(), stride, rows.data());
            for (size_t r = 0; r < m.rows(); ++r)
                for (size_t i = 0; i < cols; ++i)
                    ASSERT_EQ(rows[r * stride + i], ra(r, i))
                        << r << "," << i;
        }
    }
}

TEST(CodecTraits, ElemEmGenericKernelsMatchTheLegacyLut)
{
    // The seam's identity property: on Elem-EM tensors the generic
    // kernels are bit-identical to the legacy decode_lut path, so
    // driver-level dispatch can never change a result, only a code
    // path.
    Matrix m = randomMatrix(5, 77, 0xBEEF, 4.0);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor ta = PackedM2xfpTensor::packActivations(m, aq);
    PackedM2xfpTensor tw = PackedM2xfpTensor::packWeights(m, wq);
    size_t padded = ta.groupsPerRow() * 32;
    std::vector<float> legacy(padded), generic(padded);
    for (size_t r = 0; r < m.rows(); ++r) {
        decodeActivationRow(ta, r, legacy.data());
        codecDecodeActivationRow(ta, r, generic.data());
        for (size_t i = 0; i < padded; ++i)
            ASSERT_EQ(generic[i], legacy[i]) << "act " << r << "," << i;
        decodeWeightRow(tw, r, legacy.data());
        codecDecodeWeightRow(tw, r, generic.data());
        for (size_t i = 0; i < padded; ++i)
            ASSERT_EQ(generic[i], legacy[i]) << "wt " << r << "," << i;
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
