/**
 * @file
 * Flash-style blocked online-softmax attention: the paged attend
 * must reproduce the full-forward oracle at every page-boundary
 * context length on every tier (fp32 bit-exact, packed within the
 * model tolerance), grouped-query and sliding-window variants must
 * match the grouped/windowed oracle, the legacy O(context)-scratch
 * attend must agree with the flash rewrite, per-lane attend scratch
 * must stay constant from 1k to 64k context, and the per-ISA kernel
 * primitives must agree with the scalar tier under GQA grouping.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "core/m2xfp.hh"
#include "runtime/decode_session.hh"
#include "runtime/kv_attend_kernels.hh"
#include "runtime/kv_cache.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

model::ModelConfig
tinyConfig()
{
    model::ModelConfig cfg;
    cfg.name = "test-flash";
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 2;
    cfg.dFf = 96;
    cfg.vocab = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomTokens(size_t n, unsigned vocab, uint64_t seed)
{
    std::vector<int> toks(n);
    Rng rng(seed);
    for (auto &t : toks)
        t = static_cast<int>(rng.uniformInt(vocab));
    return toks;
}

/** A reference model with functionally §6.4-quantized K/V. */
model::TinyTransformer
kvQuantizedReference(const model::ModelConfig &cfg, SimdIsa isa)
{
    model::TinyTransformer ref(cfg);
    ref.rebuild(packedLinearFactory({}, nullptr, nullptr, isa));
    ref.setKvQuantizers(
        [] {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        },
        nullptr);
    return ref;
}

/** Prefill half, decode the rest; returns the full logits. */
Matrix
runPrefillDecode(DecodeSession &s, const std::vector<int> &toks)
{
    size_t seq = s.addSequence();
    size_t prefill_len = std::max<size_t>(1, toks.size() / 2);
    std::span<const int> all(toks);
    Matrix chunk = s.prefill(seq, all.subspan(0, prefill_len));
    Matrix out(toks.size(), chunk.cols());
    for (size_t t = 0; t < prefill_len; ++t)
        for (size_t c = 0; c < chunk.cols(); ++c)
            out(t, c) = chunk(t, c);
    for (size_t t = prefill_len; t < toks.size(); ++t) {
        int tok = toks[t];
        Matrix step = s.decode({&tok, 1});
        for (size_t c = 0; c < step.cols(); ++c)
            out(t, c) = step(0, c);
    }
    return out;
}

/**
 * End-to-end parity of prefill + decode against the one-shot oracle
 * for @p cfg: fp32 cache bit-exact on every tier, packed cache
 * within the model tolerance against the KV-quantized reference.
 */
void
expectOracleParity(const model::ModelConfig &cfg, size_t tokens,
                   uint64_t seed)
{
    std::vector<int> toks = randomTokens(tokens, cfg.vocab, seed);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) +
                     " tokens=" + std::to_string(tokens));
        {
            DecodeSession s(
                cfg, {.isa = isa, .kvMode = KvCacheMode::Fp32});
            Matrix got = runPrefillDecode(s, toks);
            test::expectMatricesBitExact(
                got, s.model().forwardLogits(toks));
        }
        {
            // Pinned to elem_em: the KV-quantized oracle below is
            // the paper codec, whatever M2X_FORMAT says (the other
            // codecs' attend parity lives in cross_format_parity_test).
            DecodeSession s(cfg, {.isa = isa,
                                  .kvMode = KvCacheMode::Packed,
                                  .codec = PackedCodec::ElemEm});
            Matrix got = runPrefillDecode(s, toks);
            model::TinyTransformer ref = kvQuantizedReference(cfg,
                                                              isa);
            test::expectMatricesClose(got, ref.forwardLogits(toks),
                                      1e-5);
        }
    }
}

TEST(FlashAttend, OracleParityAtPageBoundaryContexts)
{
    // The default page holds 16 rows: 1 / 15 / 16 / 17 tokens cover
    // a single partial page, an exactly-full page, and the first row
    // of a fresh page — the off-by-one surface of the page walk.
    model::ModelConfig cfg = tinyConfig();
    const size_t page_rows = DecodeConfig{}.pageRows;
    uint64_t seed = 40;
    for (size_t tokens :
         {size_t(1), page_rows - 1, page_rows, page_rows + 1})
        expectOracleParity(cfg, tokens, seed++);
}

TEST(FlashAttend, OracleParityNonMultipleOf32DModel)
{
    // d_model = 40 (headDim 20): padded packed tail groups plus a
    // head dim that is not a vector-width multiple on any tier.
    model::ModelConfig cfg = tinyConfig();
    cfg.dModel = 40;
    expectOracleParity(cfg, DecodeConfig{}.pageRows + 1, 50);
}

TEST(FlashAttend, GqaMatchesGroupedOracle)
{
    // n_kv_heads ∈ {1, nHeads/2, nHeads}: MQA, grouped, and classic
    // MHA — the oracle's causalAttend implements the same grouping.
    model::ModelConfig cfg = tinyConfig();
    cfg.nHeads = 4;
    uint64_t seed = 60;
    for (unsigned kv_heads : {1u, 2u, 4u}) {
        SCOPED_TRACE("kv_heads=" + std::to_string(kv_heads));
        cfg.nKvHeads = kv_heads;
        expectOracleParity(cfg, 21, seed++);
    }
}

TEST(FlashAttend, GqaWithEqualHeadsMatchesDefaultConfig)
{
    // nKvHeads == nHeads must be indistinguishable from the MHA
    // default (0): same weights drawn, same attention arithmetic.
    model::ModelConfig mha = tinyConfig();
    model::ModelConfig gqa = tinyConfig();
    gqa.nKvHeads = gqa.nHeads;
    std::vector<int> toks = randomTokens(9, mha.vocab, 70);
    model::TinyTransformer a(mha), b(gqa);
    test::expectMatricesBitExact(a.forwardLogits(toks),
                                 b.forwardLogits(toks));
}

TEST(FlashAttend, SlidingWindowMatchesTruncatedFullAttend)
{
    // A windowed attend over T cached rows must equal a full attend
    // over a cache holding only the last W rows — the window is pure
    // masking. W both page-aligned (16) and awkward (13).
    const size_t d = 64, tokens = 50;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 81, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 82, 4.0);
    Matrix q = test::randomMatrix(1, d, 83, 4.0);

    for (size_t window : {size_t(16), size_t(13)}) {
        for (SimdIsa isa : supportedSimdIsas()) {
            for (KvCacheMode mode :
                 {KvCacheMode::Fp32, KvCacheMode::Packed}) {
                SCOPED_TRACE(std::string(kvCacheModeName(mode)) +
                             " isa=" + simdIsaName(isa) +
                             " window=" + std::to_string(window));
                KvCache full(1, d, mode, {}, isa);
                full.append(0, k.data(), v.data(), tokens);
                Matrix got(1, d);
                full.attend(0, q.data(), 1, tokens - 1, heads,
                            got.data(), nullptr, heads, window);

                size_t first = tokens - window;
                KvCache trunc(1, d, mode, {}, isa);
                trunc.append(0, k.data() + first * d,
                             v.data() + first * d, window);
                Matrix want(1, d);
                trunc.attend(0, q.data(), 1, window - 1, heads,
                             want.data());
                if (mode == KvCacheMode::Fp32) {
                    // The 3-pass streams rows in order — page
                    // alignment is invisible, so masking == truncation
                    // bitwise.
                    test::expectMatricesBitExact(got, want);
                } else {
                    // Identical decoded rows, but the online-softmax
                    // page partition differs between the two caches.
                    test::expectMatricesClose(got, want, 1e-5);
                }
            }
        }
    }
}

TEST(FlashAttend, SlidingWindowModelMatchesOracle)
{
    // End-to-end: a model config with a sliding window, decoded
    // through the paged cache, against the windowed causal oracle.
    model::ModelConfig cfg = tinyConfig();
    cfg.slidingWindow = 8;
    expectOracleParity(cfg, 21, 90);
}

TEST(FlashAttend, ReleaseBeforeKeepsWindowedAttendExact)
{
    // Out-of-window pages can be returned to the arena without
    // touching the windowed attend: releaseBefore(row) tombstones
    // the freed slots, absolute row indexing survives.
    const size_t d = 64, tokens = 64, window = 16;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 91, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 92, 4.0);
    Matrix q = test::randomMatrix(1, d, 93, 4.0);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        KvCache cache(1, d, mode);
        cache.append(0, k.data(), v.data(), tokens);
        Matrix before(1, d);
        cache.attend(0, q.data(), 1, tokens - 1, heads,
                     before.data(), nullptr, heads, window);

        size_t held = cache.pagesHeld();
        cache.releaseBefore(tokens - window);
        // 64 rows = 4 pages of 16; the first 48 rows (3 pages per
        // stream) are wholly out of every future window.
        EXPECT_EQ(cache.pagesHeld(), held - 2 * 3);
        EXPECT_EQ(cache.length(), tokens);

        Matrix after(1, d);
        cache.attend(0, q.data(), 1, tokens - 1, heads, after.data(),
                     nullptr, heads, window);
        test::expectMatricesBitExact(after, before);

        // Appends keep working past the release: the tail page was
        // never freed.
        cache.append(0, k.data(), v.data(), 1);
        EXPECT_EQ(cache.length(), tokens + 1);
    }
}

TEST(FlashAttend, LegacyAttendMatchesFlash)
{
    // attendLegacy is the pre-flash O(context)-scratch baseline the
    // long-context bench measures against; on the same rows the two
    // must agree — bitwise in fp32 (the 3-pass replicates the
    // materialized-scores arithmetic), within the model tolerance in
    // packed (different exp and accumulation association).
    const size_t d = 64, tokens = 70;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 101, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 102, 4.0);
    Matrix q = test::randomMatrix(tokens, d, 103, 4.0);

    for (SimdIsa isa : supportedSimdIsas()) {
        for (KvCacheMode mode :
             {KvCacheMode::Fp32, KvCacheMode::Packed}) {
            SCOPED_TRACE(std::string(kvCacheModeName(mode)) +
                         " isa=" + simdIsaName(isa));
            KvCache cache(1, d, mode, {}, isa);
            cache.append(0, k.data(), v.data(), tokens);
            Matrix flash(tokens, d), legacy(tokens, d);
            cache.attend(0, q.data(), tokens, 0, heads,
                         flash.data());
            cache.attendLegacy(0, q.data(), tokens, 0, heads,
                               legacy.data());
            if (mode == KvCacheMode::Fp32)
                test::expectMatricesBitExact(flash, legacy);
            else
                test::expectMatricesClose(flash, legacy, 1e-5);
        }
    }
}

TEST(FlashAttend, ScratchStaysConstantFrom1kTo64kContext)
{
    // The defining flash property (and the ISSUE's regression gate):
    // per-lane attend scratch at 64k context is no larger than at 1k
    // — O(pageRows · nHeads), independent of context length.
    const size_t d = 64;
    const unsigned heads = 2;
    Matrix q = test::randomMatrix(1, d, 111, 4.0);
    const size_t chunk_rows = 1024;
    Matrix rows = test::randomMatrix(chunk_rows, d, 112, 4.0);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        KvCache cache(1, d, mode);
        Matrix ctx(1, d);
        auto scratch_at = [&](size_t target_len) {
            while (cache.length() < target_len)
                cache.append(0, rows.data(), rows.data(), chunk_rows);
            resetAttendScratchPeak();
            cache.attend(0, q.data(), 1, cache.length() - 1, heads,
                         ctx.data());
            return attendScratchPeakBytes();
        };
        size_t at_1k = scratch_at(1024);
        size_t at_64k = scratch_at(65536);
        EXPECT_GT(at_1k, 0u);
        EXPECT_LE(at_64k, at_1k);
    }
}

TEST(FlashAttendKernels, VectorTiersMatchScalarUnderGrouping)
{
    // Direct kernel parity: per-head dots, value accumulation and
    // exponential weights on every compiled tier vs the scalar
    // oracle, at group 1 and 2 and a non-vector-multiple head dim.
    using namespace detail;
    const unsigned n_heads = 4;
    for (size_t hd : {size_t(32), size_t(20)}) {
        for (unsigned group : {1u, 2u}) {
            SCOPED_TRACE("hd=" + std::to_string(hd) +
                         " group=" + std::to_string(group));
            size_t kv_d = (n_heads / group) * hd;
            Matrix q = test::randomMatrix(1, n_heads * hd, 121, 4.0);
            Matrix row = test::randomMatrix(1, kv_d, 122, 4.0);
            std::vector<double> p(n_heads);
            for (unsigned h = 0; h < n_heads; ++h)
                p[h] = 0.25 * (h + 1);

            std::vector<double> dot_want(n_heads);
            std::vector<double> acc_want(n_heads * hd, 0.0);
            dotHeadsScalar(q.data(), row.data(), hd, n_heads, group,
                           dot_want.data());
            accumHeadsScalar(p.data(), row.data(), hd, n_heads,
                             group, acc_want.data());
            std::vector<double> s(33);
            Rng rng(123);
            for (auto &x : s)
                x = -30.0 * rng.uniform();
            std::vector<double> exp_want(s.size());
            expWeightsScalar(s.data(), 0.0, s.size(),
                             exp_want.data());

            auto check = [&](const AttendKernels &kern,
                             const char *name) {
                SCOPED_TRACE(name);
                std::vector<double> dot_got(n_heads);
                std::vector<double> acc_got(n_heads * hd, 0.0);
                std::vector<double> exp_got(s.size());
                kern.dotHeads(q.data(), row.data(), hd, n_heads,
                              group, dot_got.data());
                kern.accumHeads(p.data(), row.data(), hd, n_heads,
                                group, acc_got.data());
                kern.expWeights(s.data(), 0.0, s.size(),
                                exp_got.data());
                for (unsigned h = 0; h < n_heads; ++h)
                    EXPECT_NEAR(dot_got[h], dot_want[h],
                                1e-9 * std::max(
                                           1.0,
                                           std::abs(dot_want[h])))
                        << "head " << h;
                for (size_t i = 0; i < acc_want.size(); ++i)
                    ASSERT_NEAR(acc_got[i], acc_want[i],
                                1e-9 * std::max(
                                           1.0,
                                           std::abs(acc_want[i])))
                        << "elem " << i;
                // The vector tiers run a float polynomial exp
                // against the scalar libm double; the error grows
                // with |s - m| (range-reduction rounding) but stays
                // an order under the 1e-5 packed model tolerance.
                for (size_t i = 0; i < s.size(); ++i)
                    ASSERT_NEAR(exp_got[i], exp_want[i],
                                5e-6 * std::max(1e-12, exp_want[i]))
                        << "elem " << i;
            };
            for (SimdIsa isa : supportedSimdIsas()) {
                if (isa == SimdIsa::Scalar)
                    continue;
                check(attendKernels(isa), simdIsaName(isa));
            }
        }
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
