/**
 * @file
 * SIMD dispatch and vector-kernel verification:
 *  - M2X_SIMD resolution logic (pure, no re-exec needed),
 *  - vector-vs-scalar decode exactness over all 256 values of every
 *    stream byte (element codes, metadata, scales) — the vector LUT
 *    decode must be bit-identical to runtime/decode_lut,
 *  - randomized differential GEMM between the scalar oracle and each
 *    vector tier (AVX2, AVX-512) across ragged M/N/K and tail-group
 *    shapes (≤ 1e-6 relative), plus explicit-tier pinning regardless
 *    of M2X_SIMD,
 *  - the forced-avx512 downgrade contract: both the native and the
 *    warn-and-fall-back outcome are asserted, never skipped.
 *
 * Vector-tier cases skip (not fail) on machines without the tier, so
 * the suite stays green on any host; CI additionally runs the whole
 * runtime label under M2X_SIMD=scalar and M2X_SIMD=avx512.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesBitExact;
using test::expectMatricesClose;
using test::randomMatrix;

TEST(SimdDispatch, NamesAreStable)
{
    EXPECT_STREQ(simdIsaName(SimdIsa::Scalar), "scalar");
    EXPECT_STREQ(simdIsaName(SimdIsa::Avx2), "avx2");
    EXPECT_STREQ(simdIsaName(SimdIsa::Avx512), "avx512");
}

TEST(SimdDispatch, ScalarTierIsAlwaysAvailable)
{
    EXPECT_TRUE(simdIsaAvailable(SimdIsa::Scalar));
    std::vector<SimdIsa> isas = supportedSimdIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), SimdIsa::Scalar);
}

TEST(SimdDispatch, ActiveIsaIsSupported)
{
    SimdIsa active = activeSimdIsa();
    EXPECT_TRUE(simdIsaAvailable(active));
    EXPECT_STREQ(activeSimdIsaName(), simdIsaName(active));
    std::vector<SimdIsa> isas = supportedSimdIsas();
    EXPECT_NE(std::find(isas.begin(), isas.end(), active),
              isas.end());
}

TEST(SimdDispatch, ResolvesEnvOverrides)
{
    SimdIsa best = detail::resolveSimdIsa(nullptr);
    EXPECT_TRUE(simdIsaAvailable(best));
    EXPECT_EQ(detail::resolveSimdIsa(""), best);
    EXPECT_EQ(detail::resolveSimdIsa("auto"), best);
    EXPECT_EQ(detail::resolveSimdIsa("scalar"), SimdIsa::Scalar);
    // Unknown values warn and fall back to the auto pick.
    EXPECT_EQ(detail::resolveSimdIsa("sse9"), best);
    // avx2 resolves to avx2 where available, scalar elsewhere.
    SimdIsa forced = detail::resolveSimdIsa("avx2");
    if (simdIsaAvailable(SimdIsa::Avx2))
        EXPECT_EQ(forced, SimdIsa::Avx2);
    else
        EXPECT_EQ(forced, SimdIsa::Scalar);
    // avx512 resolves to avx512 where available; elsewhere it falls
    // back to the best remaining tier (never silently to scalar when
    // avx2 would run).
    SimdIsa forced512 = detail::resolveSimdIsa("avx512");
    if (simdIsaAvailable(SimdIsa::Avx512))
        EXPECT_EQ(forced512, SimdIsa::Avx512);
    else if (simdIsaAvailable(SimdIsa::Avx2))
        EXPECT_EQ(forced512, SimdIsa::Avx2);
    else
        EXPECT_EQ(forced512, SimdIsa::Scalar);
}

TEST(SimdDispatch, ForcedAvx512DowngradesGracefullyOrRunsNative)
{
    // CI forces M2X_SIMD=avx512 on every runner; this pins the two
    // legal outcomes. Both branches assert — the fallback is never
    // silently skipped: on a capable host the request must be
    // honored without noise, elsewhere it must warn (visibly, on
    // stderr) and land on the best remaining tier.
    testing::internal::CaptureStderr();
    SimdIsa got = detail::resolveSimdIsa("avx512");
    std::string err = testing::internal::GetCapturedStderr();
    if (simdIsaAvailable(SimdIsa::Avx512)) {
        EXPECT_EQ(got, SimdIsa::Avx512);
        EXPECT_EQ(err.find("M2X_SIMD=avx512"), std::string::npos)
            << "native avx512 resolution must not warn: " << err;
    } else {
        EXPECT_TRUE(simdIsaAvailable(got));
        EXPECT_EQ(got, simdIsaAvailable(SimdIsa::Avx2)
                           ? SimdIsa::Avx2
                           : SimdIsa::Scalar);
        EXPECT_NE(err.find("M2X_SIMD=avx512"), std::string::npos)
            << "fallback must be logged, got: " << err;
    }
}

#ifdef M2X_HAVE_AVX2

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

using test::oneGroupTensor;

/** Demand bitwise-identical scalar and AVX2 decode of one group. */
void
expectDecodeExact(const PackedM2xfpTensor &t)
{
    float ref[groupSize], vec[groupSize];
    decodeWeightGroup(t, 0, 0, ref);
    detail::decodeWeightGroupAvx2(t, 0, 0, vec);
    ASSERT_EQ(std::memcmp(ref, vec, sizeof(ref)), 0)
        << "weight decode diverges";
    decodeActivationGroup(t, 0, 0, ref);
    detail::decodeActivationGroupAvx2(t, 0, 0, vec);
    ASSERT_EQ(std::memcmp(ref, vec, sizeof(ref)), 0)
        << "activation decode diverges";
}

TEST(SimdDecode, ExactForAllElementBytes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    for (unsigned b = 0; b < 256; ++b) {
        SCOPED_TRACE("element byte " + std::to_string(b));
        for (uint8_t meta : {0x00, 0x1b, 0xe4, 0xff})
            expectDecodeExact(oneGroupTensor(
                static_cast<uint8_t>(b), 127, meta));
    }
}

TEST(SimdDecode, ExactForAllMetadataBytes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    for (unsigned m = 0; m < 256; ++m) {
        SCOPED_TRACE("meta byte " + std::to_string(m));
        for (uint8_t elem : {0x00, 0x5a, 0xa5, 0x7f, 0xf7})
            expectDecodeExact(oneGroupTensor(
                elem, 130, static_cast<uint8_t>(m)));
    }
}

TEST(SimdDecode, ExactForAllScaleCodes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    // Code 255 is the E8M0 NaN, never produced by the packers, and
    // NaN bit patterns after the multiply are not pinned — skip it.
    for (unsigned s = 0; s < 255; ++s) {
        SCOPED_TRACE("scale code " + std::to_string(s));
        expectDecodeExact(oneGroupTensor(
            0x93, static_cast<uint8_t>(s), 0x6c));
    }
}

TEST(SimdDecode, ExactOnRandomPackedTensors)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    // Real packer output (instead of synthetic streams), row decode
    // against row decode, including a ragged tail group.
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    for (size_t k : {32u, 96u, 70u, 9u}) {
        Matrix a = randomMatrix(5, k, 0xd00d + k, 4.0);
        Matrix w = randomMatrix(5, k, 0xbeef + k, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        size_t padded_k = pa.groupsPerRow() * groupSize;
        std::vector<float> ref(padded_k), vec(padded_k);
        for (size_t r = 0; r < 5; ++r) {
            decodeActivationRow(pa, r, ref.data());
            detail::decodeActivationRowAvx2(pa, r, vec.data());
            ASSERT_EQ(std::memcmp(ref.data(), vec.data(),
                                  padded_k * sizeof(float)),
                      0)
                << "activation row " << r << " k " << k;
            for (size_t g = 0; g < pw.groupsPerRow(); ++g) {
                decodeWeightGroup(pw, r, g, ref.data());
                detail::decodeWeightGroupAvx2(pw, r, g, vec.data());
                ASSERT_EQ(std::memcmp(ref.data(), vec.data(),
                                      groupSize * sizeof(float)),
                          0)
                    << "weight row " << r << " group " << g;
            }
        }
    }
}

TEST(SimdGemm, DifferentialScalarVsAvx2Randomized)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Rng rng(0x51a2d);
    for (int trial = 0; trial < 16; ++trial) {
        size_t m = 1 + rng.uniformInt(50);
        size_t n = 1 + rng.uniformInt(50);
        size_t k = 1 + rng.uniformInt(200);
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(n) +
                     "x" + std::to_string(k));
        Matrix a = randomMatrix(m, k, 7000 + trial, 4.0);
        Matrix w = randomMatrix(n, k, 8000 + trial, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

        Matrix scalar =
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar);
        Matrix avx2 = packedMatmulNt(pa, pw, nullptr, SimdIsa::Avx2);
        expectMatricesClose(avx2, scalar);
        // And the oracle itself stays anchored to the reference.
        expectMatricesBitExact(scalar,
                               matmulNt(pa.unpackActivations(aq),
                                        pw.unpackWeights(wq)));
    }
}

TEST(SimdGemm, TailGroupShapesAgreeAcrossTiers)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    // K values that split groups and subgroups; N values that leave
    // ragged 4-column remainders in the AVX2 microkernel.
    size_t shapes[][3] = {{1, 1, 1},   {3, 6, 33},  {17, 18, 40},
                          {16, 3, 35}, {2, 19, 63}, {33, 34, 129}};
    for (auto &sh : shapes) {
        SCOPED_TRACE(std::to_string(sh[0]) + "x" +
                     std::to_string(sh[1]) + "x" +
                     std::to_string(sh[2]));
        Matrix a = randomMatrix(sh[0], sh[2], sh[0] * 131 + sh[2],
                                4.0);
        Matrix w = randomMatrix(sh[1], sh[2], sh[1] * 137 + sh[2],
                                6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        expectMatricesClose(
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Avx2),
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar));
    }
}

#ifdef M2X_HAVE_AVX512

/** Demand bitwise-identical scalar and AVX-512 weight decode. */
void
expectDecodeExactAvx512(const PackedM2xfpTensor &t)
{
    float ref[groupSize], vec[groupSize];
    decodeWeightGroup(t, 0, 0, ref);
    detail::decodeWeightGroupAvx512(t, 0, 0, vec);
    ASSERT_EQ(std::memcmp(ref, vec, sizeof(ref)), 0)
        << "avx512 weight decode diverges";
}

TEST(SimdDecodeAvx512, ExactForAllStreamBytes)
{
    if (!simdIsaAvailable(SimdIsa::Avx512))
        GTEST_SKIP() << "AVX-512 unavailable on this machine";
    for (unsigned b = 0; b < 256; ++b) {
        SCOPED_TRACE("element byte " + std::to_string(b));
        for (uint8_t meta : {0x00, 0x1b, 0xe4, 0xff})
            expectDecodeExactAvx512(oneGroupTensor(
                static_cast<uint8_t>(b), 127, meta));
    }
    for (unsigned m = 0; m < 256; ++m) {
        SCOPED_TRACE("meta byte " + std::to_string(m));
        expectDecodeExactAvx512(
            oneGroupTensor(0x5a, 130, static_cast<uint8_t>(m)));
    }
    // Code 255 is the E8M0 NaN, never produced by the packers, and
    // NaN bit patterns after the multiply are not pinned — skip it.
    for (unsigned s = 0; s < 255; ++s) {
        SCOPED_TRACE("scale code " + std::to_string(s));
        expectDecodeExactAvx512(oneGroupTensor(
            0x93, static_cast<uint8_t>(s), 0x6c));
    }
}

TEST(SimdDecodeAvx512, ExactRowDecodeOnRandomPackedTensors)
{
    if (!simdIsaAvailable(SimdIsa::Avx512))
        GTEST_SKIP() << "AVX-512 unavailable on this machine";
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    for (size_t k : {32u, 96u, 70u, 9u}) {
        Matrix w = randomMatrix(5, k, 0xcafe + k, 6.0);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        size_t padded_k = pw.groupsPerRow() * groupSize;
        std::vector<float> ref(padded_k), vec(padded_k);
        for (size_t r = 0; r < 5; ++r) {
            decodeWeightRow(pw, r, ref.data());
            detail::decodeWeightRowAvx512(pw, r, vec.data());
            ASSERT_EQ(std::memcmp(ref.data(), vec.data(),
                                  padded_k * sizeof(float)),
                      0)
                << "weight row " << r << " k " << k;
        }
    }
}

TEST(SimdGemm, DifferentialScalarVsAvx512Randomized)
{
    if (!simdIsaAvailable(SimdIsa::Avx512))
        GTEST_SKIP() << "AVX-512 unavailable on this machine";
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Rng rng(0x51a3d);
    for (int trial = 0; trial < 16; ++trial) {
        size_t m = 1 + rng.uniformInt(50);
        size_t n = 1 + rng.uniformInt(50);
        size_t k = 1 + rng.uniformInt(200);
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(n) +
                     "x" + std::to_string(k));
        Matrix a = randomMatrix(m, k, 9000 + trial, 4.0);
        Matrix w = randomMatrix(n, k, 10000 + trial, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

        Matrix scalar =
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar);
        Matrix avx512 =
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Avx512);
        expectMatricesClose(avx512, scalar);
        // And the oracle itself stays anchored to the reference.
        expectMatricesBitExact(scalar,
                               matmulNt(pa.unpackActivations(aq),
                                        pw.unpackWeights(wq)));
    }
}

#endif // M2X_HAVE_AVX512

#endif // M2X_HAVE_AVX2

TEST(SimdGemm, ExplicitScalarTierIgnoresDispatchDecision)
{
    // Whatever M2X_SIMD says, an explicit Scalar request must give
    // the bit-exact oracle result.
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Matrix a = randomMatrix(20, 77, 42, 4.0);
    Matrix w = randomMatrix(23, 77, 43, 6.0);
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    expectMatricesBitExact(
        packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar),
        matmulNt(pa.unpackActivations(aq), pw.unpackWeights(wq)));
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
