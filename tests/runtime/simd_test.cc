/**
 * @file
 * SIMD dispatch and vector-kernel verification:
 *  - M2X_SIMD resolution logic (pure, no re-exec needed),
 *  - vector-vs-scalar decode exactness over all 256 values of every
 *    stream byte (element codes, metadata, scales) — the vector LUT
 *    decode must be bit-identical to runtime/decode_lut,
 *  - randomized differential GEMM between the scalar oracle and the
 *    AVX2 tier across ragged M/N/K and tail-group shapes (≤ 1e-6
 *    relative), plus explicit-tier pinning regardless of M2X_SIMD.
 *
 * AVX2-specific cases skip (not fail) on machines without the tier,
 * so the suite stays green on any host; CI additionally runs the
 * whole runtime label under M2X_SIMD=scalar.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesBitExact;
using test::expectMatricesClose;
using test::randomMatrix;

TEST(SimdDispatch, NamesAreStable)
{
    EXPECT_STREQ(simdIsaName(SimdIsa::Scalar), "scalar");
    EXPECT_STREQ(simdIsaName(SimdIsa::Avx2), "avx2");
}

TEST(SimdDispatch, ScalarTierIsAlwaysAvailable)
{
    EXPECT_TRUE(simdIsaAvailable(SimdIsa::Scalar));
    std::vector<SimdIsa> isas = supportedSimdIsas();
    ASSERT_FALSE(isas.empty());
    EXPECT_EQ(isas.front(), SimdIsa::Scalar);
}

TEST(SimdDispatch, ActiveIsaIsSupported)
{
    SimdIsa active = activeSimdIsa();
    EXPECT_TRUE(simdIsaAvailable(active));
    EXPECT_STREQ(activeSimdIsaName(), simdIsaName(active));
    std::vector<SimdIsa> isas = supportedSimdIsas();
    EXPECT_NE(std::find(isas.begin(), isas.end(), active),
              isas.end());
}

TEST(SimdDispatch, ResolvesEnvOverrides)
{
    SimdIsa best = detail::resolveSimdIsa(nullptr);
    EXPECT_TRUE(simdIsaAvailable(best));
    EXPECT_EQ(detail::resolveSimdIsa(""), best);
    EXPECT_EQ(detail::resolveSimdIsa("auto"), best);
    EXPECT_EQ(detail::resolveSimdIsa("scalar"), SimdIsa::Scalar);
    // Unknown values warn and fall back to the auto pick.
    EXPECT_EQ(detail::resolveSimdIsa("sse9"), best);
    // avx2 resolves to avx2 where available, scalar elsewhere.
    SimdIsa forced = detail::resolveSimdIsa("avx2");
    if (simdIsaAvailable(SimdIsa::Avx2))
        EXPECT_EQ(forced, SimdIsa::Avx2);
    else
        EXPECT_EQ(forced, SimdIsa::Scalar);
}

#ifdef M2X_HAVE_AVX2

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

/** One-group tensor with every element byte set to @p elem_byte. */
PackedM2xfpTensor
oneGroupTensor(uint8_t elem_byte, uint8_t scale_code,
               uint8_t meta_byte)
{
    std::vector<uint8_t> elems(
        PackedM2xfpTensor::bytesPerGroupElems, elem_byte);
    return PackedM2xfpTensor::fromRawStreams(
        1, groupSize, std::move(elems), {scale_code}, {meta_byte});
}

/** Demand bitwise-identical scalar and AVX2 decode of one group. */
void
expectDecodeExact(const PackedM2xfpTensor &t)
{
    float ref[groupSize], vec[groupSize];
    decodeWeightGroup(t, 0, 0, ref);
    detail::decodeWeightGroupAvx2(t, 0, 0, vec);
    ASSERT_EQ(std::memcmp(ref, vec, sizeof(ref)), 0)
        << "weight decode diverges";
    decodeActivationGroup(t, 0, 0, ref);
    detail::decodeActivationGroupAvx2(t, 0, 0, vec);
    ASSERT_EQ(std::memcmp(ref, vec, sizeof(ref)), 0)
        << "activation decode diverges";
}

TEST(SimdDecode, ExactForAllElementBytes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    for (unsigned b = 0; b < 256; ++b) {
        SCOPED_TRACE("element byte " + std::to_string(b));
        for (uint8_t meta : {0x00, 0x1b, 0xe4, 0xff})
            expectDecodeExact(oneGroupTensor(
                static_cast<uint8_t>(b), 127, meta));
    }
}

TEST(SimdDecode, ExactForAllMetadataBytes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    for (unsigned m = 0; m < 256; ++m) {
        SCOPED_TRACE("meta byte " + std::to_string(m));
        for (uint8_t elem : {0x00, 0x5a, 0xa5, 0x7f, 0xf7})
            expectDecodeExact(oneGroupTensor(
                elem, 130, static_cast<uint8_t>(m)));
    }
}

TEST(SimdDecode, ExactForAllScaleCodes)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    // Code 255 is the E8M0 NaN, never produced by the packers, and
    // NaN bit patterns after the multiply are not pinned — skip it.
    for (unsigned s = 0; s < 255; ++s) {
        SCOPED_TRACE("scale code " + std::to_string(s));
        expectDecodeExact(oneGroupTensor(
            0x93, static_cast<uint8_t>(s), 0x6c));
    }
}

TEST(SimdDecode, ExactOnRandomPackedTensors)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    // Real packer output (instead of synthetic streams), row decode
    // against row decode, including a ragged tail group.
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    for (size_t k : {32u, 96u, 70u, 9u}) {
        Matrix a = randomMatrix(5, k, 0xd00d + k, 4.0);
        Matrix w = randomMatrix(5, k, 0xbeef + k, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        size_t padded_k = pa.groupsPerRow() * groupSize;
        std::vector<float> ref(padded_k), vec(padded_k);
        for (size_t r = 0; r < 5; ++r) {
            decodeActivationRow(pa, r, ref.data());
            detail::decodeActivationRowAvx2(pa, r, vec.data());
            ASSERT_EQ(std::memcmp(ref.data(), vec.data(),
                                  padded_k * sizeof(float)),
                      0)
                << "activation row " << r << " k " << k;
            for (size_t g = 0; g < pw.groupsPerRow(); ++g) {
                decodeWeightGroup(pw, r, g, ref.data());
                detail::decodeWeightGroupAvx2(pw, r, g, vec.data());
                ASSERT_EQ(std::memcmp(ref.data(), vec.data(),
                                      groupSize * sizeof(float)),
                          0)
                    << "weight row " << r << " group " << g;
            }
        }
    }
}

TEST(SimdGemm, DifferentialScalarVsAvx2Randomized)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Rng rng(0x51a2d);
    for (int trial = 0; trial < 16; ++trial) {
        size_t m = 1 + rng.uniformInt(50);
        size_t n = 1 + rng.uniformInt(50);
        size_t k = 1 + rng.uniformInt(200);
        SCOPED_TRACE(std::to_string(m) + "x" + std::to_string(n) +
                     "x" + std::to_string(k));
        Matrix a = randomMatrix(m, k, 7000 + trial, 4.0);
        Matrix w = randomMatrix(n, k, 8000 + trial, 6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

        Matrix scalar =
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar);
        Matrix avx2 = packedMatmulNt(pa, pw, nullptr, SimdIsa::Avx2);
        expectMatricesClose(avx2, scalar);
        // And the oracle itself stays anchored to the reference.
        expectMatricesBitExact(scalar,
                               matmulNt(pa.unpackActivations(aq),
                                        pw.unpackWeights(wq)));
    }
}

TEST(SimdGemm, TailGroupShapesAgreeAcrossTiers)
{
    if (!simdIsaAvailable(SimdIsa::Avx2))
        GTEST_SKIP() << "AVX2 unavailable on this machine";
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    // K values that split groups and subgroups; N values that leave
    // ragged 4-column remainders in the AVX2 microkernel.
    size_t shapes[][3] = {{1, 1, 1},   {3, 6, 33},  {17, 18, 40},
                          {16, 3, 35}, {2, 19, 63}, {33, 34, 129}};
    for (auto &sh : shapes) {
        SCOPED_TRACE(std::to_string(sh[0]) + "x" +
                     std::to_string(sh[1]) + "x" +
                     std::to_string(sh[2]));
        Matrix a = randomMatrix(sh[0], sh[2], sh[0] * 131 + sh[2],
                                4.0);
        Matrix w = randomMatrix(sh[1], sh[2], sh[1] * 137 + sh[2],
                                6.0);
        PackedM2xfpTensor pa =
            PackedM2xfpTensor::packActivations(a, aq);
        PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
        expectMatricesClose(
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Avx2),
            packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar));
    }
}

#endif // M2X_HAVE_AVX2

TEST(SimdGemm, ExplicitScalarTierIgnoresDispatchDecision)
{
    // Whatever M2X_SIMD says, an explicit Scalar request must give
    // the bit-exact oracle result.
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Matrix a = randomMatrix(20, 77, 42, 4.0);
    Matrix w = randomMatrix(23, 77, 43, 6.0);
    PackedM2xfpTensor pa = PackedM2xfpTensor::packActivations(a, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);
    expectMatricesBitExact(
        packedMatmulNt(pa, pw, nullptr, SimdIsa::Scalar),
        matmulNt(pa.unpackActivations(aq), pw.unpackWeights(wq)));
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
