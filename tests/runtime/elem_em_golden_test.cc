/**
 * @file
 * Elem-EM byte-exactness lock: golden FNV-1a hashes of the packed
 * streams and kernel decode outputs for a fixed adversarial input,
 * captured on the pre-codec-seam runtime (PR 9 HEAD) and asserted
 * here on every compiled ISA tier.
 *
 * The codec-traits seam's hardest contract is that the paper-pair
 * fast paths stay byte-for-byte what they always were: the per-ISA
 * activation encoder, the GEMM panel/row decode kernels, and the KV
 * page encode path must produce the exact same bytes as before any
 * format axis existed. Stream-vs-stream tests can only prove
 * today's paths agree with each other; these constants prove they
 * agree with *history*. If any hash changes, the seam broke the
 * legacy format — that is a regression, never a baseline to update.
 *
 * The encoder/decoder byte-exactness contract is ISA-uniform, so a
 * single constant per artifact covers every tier; the test loops
 * over supportedSimdIsas() and holds each to the same value.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "quant/matrix.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime/simd.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

/** @{ Pre-seam golden hashes (captured at PR 9 HEAD, all tiers). */
constexpr uint64_t goldenEncoderHash = 0xf76e2138fdd2434full;
constexpr uint64_t goldenGemmPanelHash = 0x1d744453a5b4ed36ull;
constexpr uint64_t goldenKvPagesHash = 0x23246e7da98456dfull;
/** @} */

constexpr uint64_t fnvBasis = 0xcbf29ce484222325ull;
constexpr uint64_t fnvPrime = 0x100000001b3ull;

uint64_t
fnv1a(const void *data, size_t n, uint64_t h = fnvBasis)
{
    const uint8_t *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= fnvPrime;
    }
    return h;
}

uint64_t
hashStreams(const PackedM2xfpTensor &t, uint64_t h = fnvBasis)
{
    h = fnv1a(t.elementStream().data(), t.elementStream().size(), h);
    h = fnv1a(t.scaleStream().data(), t.scaleStream().size(), h);
    h = fnv1a(t.metadataStream().data(), t.metadataStream().size(),
              h);
    return h;
}

/**
 * The fixed input: heavy-tailed random fill with specials (signed
 * zeros, denormal, FP4 rounding ties, scale-clamp magnitudes) at
 * fixed positions. Any change to this recipe invalidates the
 * constants — don't touch it.
 */
Matrix
goldenMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(4.0));
    const float specials[] = {0.0f,    -0.0f,  1e-40f, 3.0f,
                              -1.25f,  448.0f, 0.25f,  5.0f,
                              1e30f,   -1e-30f, 0.75f, 1.75f};
    size_t n = m.size();
    for (size_t i = 0; i < sizeof(specials) / sizeof(float); ++i)
        m.flat()[(i * 97) % n] = specials[i];
    return m;
}

Matrix
goldenActivations()
{
    return goldenMatrix(13, 100, 0xE1);
}

TEST(ElemEmGolden, EncoderStreamsOnEveryTier)
{
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    Matrix am = goldenActivations();
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        PackedM2xfpTensor a =
            PackedM2xfpTensor::packActivations(am, q, nullptr, isa);
        EXPECT_EQ(hashStreams(a), goldenEncoderHash);
    }
}

TEST(ElemEmGolden, GemmPanelDecodeOnEveryTier)
{
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    Matrix am = goldenActivations();
    Matrix wm = goldenMatrix(9, 100, 0xE2);
    PackedM2xfpTensor w = PackedM2xfpTensor::packWeights(wm, wq);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        PackedM2xfpTensor a =
            PackedM2xfpTensor::packActivations(am, aq, nullptr, isa);
        const auto &kern = detail::gemmKernels(isa);
        size_t padded_k = a.groupsPerRow() * 32;
        std::vector<float> buf(padded_k);
        uint64_t h = fnvBasis;
        for (size_t r = 0; r < a.rows(); ++r) {
            kern.decodeActivationRow(a, r, buf.data());
            h = fnv1a(buf.data(), buf.size() * sizeof(float), h);
        }
        for (size_t r = 0; r < w.rows(); ++r) {
            kern.decodeWeightRow(w, r, buf.data());
            h = fnv1a(buf.data(), buf.size() * sizeof(float), h);
        }
        EXPECT_EQ(h, goldenGemmPanelHash);
    }
}

TEST(ElemEmGolden, KvPageStreamsOnEveryTier)
{
    Matrix am = goldenActivations();
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        KvPageArena arena(100, KvCacheMode::Packed, {}, isa,
                          {.pageRows = 4, .capacityPages = 8});
        std::vector<KvPageId> ids;
        size_t row = 0;
        while (row < am.rows()) {
            size_t n = std::min<size_t>(4, am.rows() - row);
            KvPageId id = arena.allocPage();
            ASSERT_NE(id, kvInvalidPage);
            arena.appendRows(id, am.data() + row * am.cols(), n);
            ids.push_back(id);
            row += n;
        }
        uint64_t h = fnvBasis;
        for (KvPageId id : ids)
            h = hashStreams(arena.packedPage(id), h);
        EXPECT_EQ(h, goldenKvPagesHash);
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
