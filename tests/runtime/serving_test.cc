/**
 * @file
 * ServingEngine: continuous batching over the shared page arena must
 * not change what any request generates — scheduler interleaving,
 * admission stalls, preemption and byte-exact re-prefill are all
 * invisible to the tokens, so every request's output equals a
 * single-sequence DecodeSession run bit-for-bit (both KV modes, every
 * compiled ISA tier). Also covers: admission stalling at arena
 * exhaustion, forced preemption with recovered outputs, and free-list
 * reuse keeping the arena flat across request churn.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/decode_session.hh"
#include "runtime/serving.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

model::ModelConfig
tinyConfig()
{
    model::ModelConfig cfg;
    cfg.name = "test-tiny";
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 2;
    cfg.dFf = 96;
    cfg.vocab = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomTokens(size_t n, unsigned vocab, uint64_t seed)
{
    std::vector<int> toks(n);
    Rng rng(seed);
    for (auto &t : toks)
        t = static_cast<int>(rng.uniformInt(vocab));
    return toks;
}

int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

/**
 * The parity oracle: the same greedy generation run alone through a
 * fixed-batch DecodeSession (whose own parity against the one-shot
 * forward is covered by decode_session_test).
 */
std::vector<int>
greedyReference(const model::ModelConfig &mc, KvCacheMode mode,
                SimdIsa isa, const std::vector<int> &prompt,
                size_t max_new)
{
    DecodeSession s(mc, {.isa = isa, .kvMode = mode});
    size_t seq = s.addSequence();
    Matrix logits = s.prefill(seq, prompt);
    std::vector<int> out;
    out.push_back(argmaxRow(logits, logits.rows() - 1));
    while (out.size() < max_new) {
        int next = out.back();
        Matrix l = s.decode({&next, 1});
        out.push_back(argmaxRow(l, 0));
    }
    return out;
}

struct Workload
{
    std::vector<int> prompt;
    size_t maxNew;
};

std::vector<Workload>
mixedWorkload(const model::ModelConfig &mc)
{
    return {
        {randomTokens(6, mc.vocab, 1), 5},
        {randomTokens(3, mc.vocab, 2), 8},
        {randomTokens(9, mc.vocab, 3), 1}, // finishes at admission
        {randomTokens(5, mc.vocab, 4), 6},
    };
}

void
expectMatchesReference(ServingEngine &eng,
                       const model::ModelConfig &mc,
                       const std::vector<Workload> &work,
                       KvCacheMode mode, SimdIsa isa)
{
    for (size_t i = 0; i < work.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        const RequestStats &st = eng.stats(i);
        EXPECT_EQ(st.state, RequestState::Finished);
        EXPECT_EQ(st.generated, work[i].maxNew);
        EXPECT_GT(st.ttftSeconds(), 0.0);
        std::vector<int> want = greedyReference(
            mc, mode, isa, work[i].prompt, work[i].maxNew);
        EXPECT_EQ(eng.generated(i), want);
    }
}

TEST(ServingEngine, MatchesSingleSequenceDecodeOnEveryTier)
{
    model::ModelConfig mc = tinyConfig();
    std::vector<Workload> work = mixedWorkload(mc);
    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        for (SimdIsa isa : supportedSimdIsas()) {
            SCOPED_TRACE(std::string("mode=") +
                         kvCacheModeName(mode) +
                         " isa=" + simdIsaName(isa));
            ServingEngine eng(mc, {.isa = isa,
                                   .kvMode = mode,
                                   .pageRows = 4,
                                   .arenaPages = 256,
                                   .maxBatch = 8});
            for (const Workload &w : work)
                eng.submit(w.prompt, w.maxNew);
            eng.runToCompletion();
            EXPECT_TRUE(eng.idle());
            EXPECT_EQ(eng.finishedCount(), work.size());
            // Ample arena: the scheduler never had to preempt.
            EXPECT_EQ(eng.preemptionCount(), 0u);
            expectMatchesReference(eng, mc, work, mode, isa);
        }
    }
}

TEST(ServingEngine, AdmissionStallsAtArenaExhaustion)
{
    model::ModelConfig mc = tinyConfig();
    // One request needs 8 pages (prompt 4 + gen 4 -> 7 rows -> 2
    // pages per stream, x2 streams x2 layers); 12 total pages admit
    // exactly one at a time.
    std::vector<Workload> work = {
        {randomTokens(4, mc.vocab, 11), 4},
        {randomTokens(4, mc.vocab, 12), 4},
        {randomTokens(4, mc.vocab, 13), 4},
    };
    ServingEngine eng(mc, {.kvMode = KvCacheMode::Packed,
                           .pageRows = 4,
                           .arenaPages = 12,
                           .maxBatch = 8,
                           .admitFreeFraction = 0.0});
    for (const Workload &w : work)
        eng.submit(w.prompt, w.maxNew);
    ASSERT_TRUE(eng.step());
    // Only the first request fit; the rest stalled in the queue.
    EXPECT_EQ(eng.activeCount(), 1u);
    EXPECT_EQ(eng.waitingCount(), 2u);
    eng.runToCompletion();
    EXPECT_TRUE(eng.idle());
    EXPECT_EQ(eng.finishedCount(), 3u);
    EXPECT_EQ(eng.arena().livePages(), 0u);
    for (size_t i = 0; i < work.size(); ++i)
        EXPECT_EQ(eng.generated(i).size(), work[i].maxNew);
}

TEST(ServingEngine, PreemptionRoundTripKeepsOutputsExact)
{
    model::ModelConfig mc = tinyConfig();
    SimdIsa isa = activeSimdIsa();
    std::vector<Workload> work = {
        {randomTokens(6, mc.vocab, 21), 10},
        {randomTokens(6, mc.vocab, 22), 10},
        {randomTokens(6, mc.vocab, 23), 10},
    };
    // Tight arena: all three admit early (8 pages each) but cannot
    // all grow to their 16-page finals, so the youngest gets evicted
    // mid-generation and later resumes via byte-exact re-prefill.
    ServingEngine eng(mc, {.isa = isa,
                           .kvMode = KvCacheMode::Packed,
                           .pageRows = 4,
                           .arenaPages = 28,
                           .maxBatch = 4,
                           .admitFreeFraction = 0.0});
    for (const Workload &w : work)
        eng.submit(w.prompt, w.maxNew);
    eng.runToCompletion();
    EXPECT_TRUE(eng.idle());
    EXPECT_GT(eng.preemptionCount(), 0u);
    expectMatchesReference(eng, mc, work, KvCacheMode::Packed, isa);
    size_t preempted_total = 0;
    for (size_t i = 0; i < work.size(); ++i)
        preempted_total += eng.stats(i).preemptions;
    EXPECT_EQ(preempted_total, eng.preemptionCount());
}

TEST(ServingEngine, ChurnDoesNotGrowArena)
{
    model::ModelConfig mc = tinyConfig();
    ServingEngine eng(mc, {.kvMode = KvCacheMode::Packed,
                           .pageRows = 4,
                           .arenaPages = 64,
                           .maxBatch = 4});
    size_t high_water_after_first = 0;
    for (int wave = 0; wave < 3; ++wave) {
        SCOPED_TRACE("wave " + std::to_string(wave));
        for (uint64_t i = 0; i < 3; ++i)
            eng.submit(randomTokens(5, mc.vocab, 31 + i), 6);
        eng.runToCompletion();
        EXPECT_TRUE(eng.idle());
        EXPECT_EQ(eng.arena().livePages(), 0u);
        if (wave == 0)
            high_water_after_first = eng.arena().highWaterPages();
        // Identical waves recycle the first wave's pages: the
        // arena's materialized set must not grow across churn.
        EXPECT_EQ(eng.arena().highWaterPages(),
                  high_water_after_first);
    }
    EXPECT_EQ(eng.finishedCount(), 9u);
    EXPECT_GT(eng.occupancyPeak(), 0.0);
    EXPECT_LE(eng.occupancyPeak(), 1.0);
    EXPECT_GT(eng.stepCount(), 0u);
    // 54 tokens total: each request's first lands in ttfts(), the
    // remaining inter-token gaps in tokenLatencies().
    EXPECT_EQ(eng.ttfts().size(), 9u);
    EXPECT_EQ(eng.tokenLatencies().size(), 9u * 6u - 9u);
}

TEST(ServingEngine, LifecycleAndStateNames)
{
    model::ModelConfig mc = tinyConfig();
    ServingEngine eng(mc, {.kvMode = KvCacheMode::Fp32,
                           .pageRows = 4,
                           .arenaPages = 64});
    size_t id = eng.submit(randomTokens(4, mc.vocab, 51), 3);
    EXPECT_EQ(eng.stats(id).state, RequestState::Queued);
    EXPECT_EQ(eng.waitingCount(), 1u);
    eng.runToCompletion();
    EXPECT_EQ(eng.stats(id).state, RequestState::Finished);
    EXPECT_EQ(eng.generated(id).size(), 3u);
    EXPECT_STREQ(requestStateName(RequestState::Queued), "queued");
    EXPECT_STREQ(requestStateName(RequestState::Active), "active");
    EXPECT_STREQ(requestStateName(RequestState::Preempted),
                 "preempted");
    EXPECT_STREQ(requestStateName(RequestState::Finished),
                 "finished");
}

} // namespace
} // namespace runtime
} // namespace m2x
