/**
 * @file
 * Tests for the runtime telemetry subsystem: histogram bucket
 * geometry and quantile extraction against a sorted-reference
 * oracle, counter/gauge/histogram concurrency under a multi-lane
 * ThreadPool (run under ASan/UBSan in CI), the Chrome trace_event
 * JSON round-trip, and the disabled path (zero events, zero
 * registry entries).
 *
 * DisabledPathIsInert must stay the FIRST test in this file: it
 * asserts on process-global state (the registry is empty, nothing
 * is buffered) that later tests deliberately populate.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/telemetry.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {
namespace telemetry {
namespace {

/**
 * Minimal structural JSON validator: every brace/bracket balances
 * outside of string literals, strings close, escapes are sane, and
 * the document is a single object. (Semantic validation — event
 * fields, span names — is tools/check_trace.py's job; this guards
 * the writer's quoting/nesting.)
 */
bool
jsonBalanced(const std::string &text)
{
    int depth = 0;
    bool in_string = false, escaped = false, seen_any = false;
    for (char ch : text) {
        if (in_string) {
            if (escaped)
                escaped = false;
            else if (ch == '\\')
                escaped = true;
            else if (ch == '"')
                in_string = false;
            continue;
        }
        switch (ch) {
          case '"':
            in_string = true;
            break;
          case '{':
          case '[':
            ++depth;
            seen_any = true;
            break;
          case '}':
          case ']':
            if (--depth < 0)
                return false;
            break;
          default:
            break;
        }
    }
    return seen_any && depth == 0 && !in_string;
}

TEST(TelemetryDisabled, DisabledPathIsInert)
{
    if (std::getenv("M2X_TRACE") || std::getenv("M2X_METRICS"))
        GTEST_SKIP() << "telemetry enabled via environment";
    ASSERT_FALSE(traceEnabled());
    ASSERT_FALSE(metricsEnabled());

    // Exercise every instrumentation surface: spans, explicit
    // complete events, cached metric handles, and an instrumented
    // pool job.
    {
        TraceSpan span("test.span");
        EXPECT_FALSE(span.active());
        span.arg("k", 1);
        span.arg("f", 0.5);
        span.arg("s", "v");
        EXPECT_EQ(span.finish(), 0u);
    }
    traceComplete("test.complete", 0, 100);

    static std::atomic<Counter *> cslot{nullptr};
    static std::atomic<Gauge *> gslot{nullptr};
    static std::atomic<Histogram *> hslot{nullptr};
    EXPECT_EQ(cachedCounter(cslot, "test.counter"), nullptr);
    EXPECT_EQ(cachedGauge(gslot, "test.gauge"), nullptr);
    EXPECT_EQ(cachedHistogram(hslot, "test.histogram"), nullptr);

    ThreadPool pool(2);
    std::atomic<int> total{0};
    pool.parallelFor(0, 256, 16, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(total.load(), 256);

    // The whole point of the disabled path: nothing was recorded
    // anywhere — no buffered trace events, no registry entries.
    EXPECT_EQ(detail::pendingTraceEvents(), 0u);
    EXPECT_EQ(MetricRegistry::global().size(), 0u);
}

TEST(Histogram, BucketGeometry)
{
    // Exact unit buckets below 16.
    for (uint64_t v = 0; v < 16; ++v) {
        size_t i = Histogram::bucketIndex(v);
        EXPECT_EQ(Histogram::bucketLow(i), v);
        EXPECT_EQ(Histogram::bucketHigh(i), v + 1);
    }
    // Log-linear buckets: low <= v < high, relative width <= 1/16,
    // and indices are monotone across a wide sweep.
    size_t prev = 0;
    for (uint64_t v = 1; v < (uint64_t{1} << 62);
         v += 1 + v / 3) {
        size_t i = Histogram::bucketIndex(v);
        ASSERT_LT(i, Histogram::nBuckets);
        EXPECT_GE(i, prev);
        prev = i;
        uint64_t lo = Histogram::bucketLow(i);
        uint64_t hi = Histogram::bucketHigh(i);
        EXPECT_LE(lo, v);
        EXPECT_GT(hi, v);
        if (v >= 16)
            EXPECT_LE(hi - lo, lo / 16);
    }
    // The extremes stay in range.
    EXPECT_LT(Histogram::bucketIndex(UINT64_MAX),
              Histogram::nBuckets);
}

TEST(Histogram, SingleSampleIsExact)
{
    for (uint64_t v : {uint64_t{0}, uint64_t{7}, uint64_t{12345},
                       uint64_t{987654321098ull}}) {
        Histogram h;
        h.record(v);
        EXPECT_EQ(h.count(), 1u);
        EXPECT_EQ(h.sum(), v);
        EXPECT_EQ(h.minValue(), v);
        EXPECT_EQ(h.maxValue(), v);
        for (double q : {0.0, 0.5, 0.95, 0.99, 1.0})
            EXPECT_EQ(h.quantile(q), static_cast<double>(v))
                << "q=" << q << " v=" << v;
    }
}

TEST(Histogram, TwoBucketSplit)
{
    // 10 samples in one bucket, 10 in a far higher one: every
    // quantile below the split must resolve inside the low bucket
    // and every quantile above it inside the high bucket, each
    // within the 1/16 relative bucket width.
    Histogram h;
    for (int i = 0; i < 10; ++i)
        h.record(100);
    for (int i = 0; i < 10; ++i)
        h.record(1000000);
    EXPECT_EQ(h.count(), 20u);
    EXPECT_EQ(h.sum(), 10u * 100 + 10u * 1000000);
    // q in the low half: within the bucket containing 100.
    double lo_est = h.quantile(0.25);
    EXPECT_GE(lo_est, 100.0);
    EXPECT_LE(lo_est, 100.0 * (1.0 + 1.0 / 16));
    // q in the high half: within the bucket containing 1e6.
    double hi_est = h.quantile(0.75);
    EXPECT_GE(hi_est, 1000000.0 * (1.0 - 1.0 / 16));
    EXPECT_LE(hi_est, 1000000.0 * (1.0 + 1.0 / 16));
    // The extremes are exact.
    EXPECT_EQ(h.quantile(0.0), 100.0);
    EXPECT_EQ(h.quantile(1.0), 1000000.0);
}

TEST(Histogram, MillionSampleQuantilesMatchSortedOracle)
{
    // Log-normal-ish latencies spanning several octaves: the shape
    // where log bucketing earns its keep.
    constexpr size_t n = 1000000;
    std::mt19937_64 rng(42);
    std::lognormal_distribution<double> dist(10.0, 2.0);
    std::vector<uint64_t> values(n);
    Histogram h;
    uint64_t sum = 0;
    for (auto &v : values) {
        v = static_cast<uint64_t>(dist(rng));
        h.record(v);
        sum += v;
    }
    EXPECT_EQ(h.count(), n);
    EXPECT_EQ(h.sum(), sum);

    std::vector<uint64_t> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(h.minValue(), sorted.front());
    EXPECT_EQ(h.maxValue(), sorted.back());

    for (double q : {0.0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999,
                     1.0}) {
        auto target = static_cast<size_t>(
            std::llround(q * static_cast<double>(n - 1)));
        double truth = static_cast<double>(sorted[target]);
        double est = h.quantile(q);
        // The estimate lives in the bucket of the true order
        // statistic: relative error bounded by the bucket width
        // (1/16), plus one unit of interpolation slack.
        EXPECT_NEAR(est, truth, truth / 16.0 + 1.0)
            << "q=" << q;
    }
}

TEST(Histogram, ResetClears)
{
    Histogram h;
    h.record(5);
    h.record(500);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.minValue(), 0u);
    EXPECT_EQ(h.maxValue(), 0u);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    h.record(77);
    EXPECT_EQ(h.quantile(0.5), 77.0);
}

TEST(MetricRegistry, FindOrCreateAndSnapshot)
{
    MetricRegistry &reg = MetricRegistry::global();
    size_t before = reg.size();
    Counter &c = reg.counter("reg_test.counter");
    EXPECT_EQ(&c, &reg.counter("reg_test.counter"));
    c.add(3);
    reg.gauge("reg_test.gauge").set(1.5);
    reg.histogram("reg_test.hist").record(1000);
    EXPECT_EQ(reg.size(), before + 3);
    EXPECT_EQ(reg.findCounter("reg_test.counter")->value(), 3u);
    EXPECT_EQ(reg.findCounter("reg_test.nope"), nullptr);

    reg.counter("reg_test.prefix.a").add(10);
    reg.counter("reg_test.prefix.b").add(32);
    EXPECT_EQ(reg.counterSumByPrefix("reg_test.prefix."), 42u);

    std::string json = reg.snapshotJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;
    EXPECT_NE(json.find("\"reg_test.counter\": 3"),
              std::string::npos);
    EXPECT_NE(json.find("\"reg_test.hist\""), std::string::npos);
    EXPECT_NE(json.find("\"p99\""), std::string::npos);

    // reset() zeroes values but keeps registrations (stable refs).
    reg.reset();
    EXPECT_EQ(reg.size(), before + 5);
    EXPECT_EQ(reg.findCounter("reg_test.counter")->value(), 0u);
    EXPECT_EQ(&c, &reg.counter("reg_test.counter"));
}

TEST(MetricRegistry, ConcurrentRecordingUnderPool)
{
    bool were_on = metricsEnabled();
    setMetricsEnabled(true);
    MetricRegistry &reg = MetricRegistry::global();
    Counter &hits = reg.counter("conc_test.hits");
    Gauge &last = reg.gauge("conc_test.last");
    Histogram &lat = reg.histogram("conc_test.lat");
    hits.reset();
    lat.reset();

    constexpr size_t n = 100000;
    ThreadPool pool(4);
    static std::atomic<Counter *> cached_slot{nullptr};
    pool.parallelFor(0, n, 64, [&](size_t b, size_t e) {
        for (size_t i = b; i < e; ++i) {
            hits.add();
            lat.record(i);
            last.set(3.25);
            // The lazily-cached handle resolves to the same entry
            // from every lane.
            if (auto *c = cachedCounter(cached_slot,
                                        "conc_test.hits2"))
                c->add();
        }
    });
    EXPECT_EQ(hits.value(), n);
    EXPECT_EQ(lat.count(), n);
    EXPECT_EQ(lat.sum(), n * (n - 1) / 2);
    EXPECT_EQ(lat.minValue(), 0u);
    EXPECT_EQ(lat.maxValue(), n - 1);
    EXPECT_EQ(last.value(), 3.25);
    EXPECT_EQ(reg.findCounter("conc_test.hits2")->value(), n);
    // Median of 0..n-1 within one bucket width.
    EXPECT_NEAR(lat.quantile(0.5), n / 2.0, n / 16.0);
    setMetricsEnabled(were_on);
}

TEST(Trace, JsonRoundTrip)
{
    std::string path =
        testing::TempDir() + "telemetry_trace_test.json";
    traceStart(path);
    ASSERT_TRUE(traceEnabled());
    setCurrentThreadName("main-test-thread");
    {
        TraceSpan span("trace_test.outer");
        ASSERT_TRUE(span.active());
        span.arg("iter", 3);
        span.arg("ratio", 0.5);
        span.arg("quoted", "a\"b\\c\n");
        TraceSpan inner("trace_test.inner");
        inner.finish();
    }
    traceComplete("trace_test.complete", nowNanos() - 1000,
                  nowNanos());
    // Spans recorded on pool workers land in per-thread buffers.
    ThreadPool pool(3);
    pool.parallelFor(0, 8, 1, [&](size_t b, size_t) {
        TraceSpan span("trace_test.worker");
        span.arg("chunk", b);
    });
    EXPECT_GT(detail::pendingTraceEvents(), 0u);

    size_t written = traceStop();
    EXPECT_FALSE(traceEnabled());
    EXPECT_GE(written, 11u); // 3 + 1 + 8 span events
    EXPECT_EQ(detail::pendingTraceEvents(), 0u);
    // Stopping again is a no-op.
    EXPECT_EQ(traceStop(), 0u);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    std::string text = ss.str();
    EXPECT_TRUE(jsonBalanced(text)) << text;
    for (const char *needle :
         {"\"traceEvents\"", "\"ph\": \"X\"", "\"ph\": \"M\"",
          "trace_test.outer", "trace_test.inner",
          "trace_test.complete", "trace_test.worker",
          "main-test-thread", "\"iter\": 3",
          "a\\\"b\\\\c\\n"})
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle;
    std::remove(path.c_str());
}

TEST(Trace, SpanStraddlingStopIsDropped)
{
    std::string path =
        testing::TempDir() + "telemetry_trace_straddle.json";
    traceStart(path);
    {
        TraceSpan span("trace_test.straddle");
        ASSERT_TRUE(span.active());
        traceStop();
        // The span ends after the flush: it must vanish, not linger
        // in a drained buffer.
    }
    EXPECT_EQ(detail::pendingTraceEvents(), 0u);
    std::remove(path.c_str());
}

} // anonymous namespace
} // namespace telemetry
} // namespace runtime
} // namespace m2x
