/**
 * @file
 * The cross-format differential suite: the tentpole proof that the
 * packed runtime behind the codec-traits seam executes every
 * registered format correctly on every ISA tier and in both KV cache
 * modes.
 *
 * The oracle for each format is its own functional quantizer
 * pipeline (core/packed_formats.cc): one value-parameterized fixture
 * runs encode, GEMM and paged attend per codec and holds each tier
 * to its contract — byte-/bit-exact on the scalar tier, within the
 * SIMD tolerance (1e-6 relative) on vector tiers. Sweeps include
 * randomized shapes, ragged K (tail groups that split a subgroup for
 * both group geometries), adversarial values (NaN/Inf/denormals,
 * signed zeros, FP4 rounding ties, scale-clamp boundaries) and
 * page-straddling KV appends.
 *
 * For PackedCodec::ElemEm the same suite doubles as the seam
 * identity check: the codec entry points must route to the legacy
 * byte-exact fast paths (the golden lock in elem_em_golden_test.cc
 * pins those against history).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "core/m2xfp_packed.hh"
#include "core/packed_codec.hh"
#include "gemm/gemm.hh"
#include "runtime/kv_cache.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/packed_gemm.hh"
#include "runtime/thread_pool.hh"
#include "runtime_test_util.hh"

namespace m2x {
namespace runtime {
namespace {

using test::expectMatricesClose;
using test::expectMatricesMatch;
using test::expectPackedStreamsEqual;
using test::randomMatrix;

class CrossFormat : public testing::TestWithParam<PackedCodec>
{
  protected:
    PackedCodec codec() const { return GetParam(); }
    size_t groupSize() const
    {
        return packedCodecInfo(codec()).groupSize;
    }
};

/**
 * Adversarial operand: heavy-tailed fill with specials planted at
 * fixed positions — signed zeros, denormals, FP4 rounding ties at
 * clamping block scales. NaN/Inf stay out of *value* comparisons
 * (NaN breaks float equality); the encode byte-equality test below
 * covers them separately.
 */
Matrix
adversarialMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m = randomMatrix(r, c, seed, 4.0);
    const float specials[] = {
        0.0f,   -0.0f,  1e-40f, -1e-40f, 448.0f, -448.0f,
        0.25f,  0.75f,  1.75f,  2.5f,    5.0f,   -5.0f,
        1e30f,  -1e30f, 1e-30f, -1e-30f,
        std::numeric_limits<float>::denorm_min(),
        std::numeric_limits<float>::max(),
    };
    size_t n = m.size();
    for (size_t i = 0; i < sizeof(specials) / sizeof(float); ++i)
        m.flat()[(i * 89) % n] = specials[i];
    return m;
}

/** The same plus NaN/Inf — byte-level comparisons only. */
Matrix
nonFiniteMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m = adversarialMatrix(r, c, seed);
    const float inf = std::numeric_limits<float>::infinity();
    const float qnan = std::numeric_limits<float>::quiet_NaN();
    const float specials[] = {qnan, -qnan, inf, -inf};
    size_t n = m.size();
    for (size_t i = 0; i < sizeof(specials) / sizeof(float); ++i)
        m.flat()[(i * 101 + 13) % n] = specials[i];
    return m;
}

TEST_P(CrossFormat, RuntimeEncodeMatchesFunctionalOnEveryTier)
{
    // Runtime packers (pooled, per-ISA) must produce byte-identical
    // streams to the functional one-shot pack — for elem_em that is
    // the legacy SIMD-encoder contract, for the rest the shared
    // portable row encoder must agree with itself across threading.
    ThreadPool pool(3);
    for (size_t cols : {size_t{96}, size_t{100}, size_t{13}}) {
        Matrix m = adversarialMatrix(11, cols, 0xA0 + cols);
        PackedM2xfpTensor want =
            PackedM2xfpTensor::packActivationsCodec(m, codec());
        ASSERT_EQ(want.codec(), codec());
        for (SimdIsa isa : supportedSimdIsas()) {
            SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) +
                         " cols=" + std::to_string(cols));
            PackedM2xfpTensor got =
                PackedM2xfpTensor::packActivationsCodec(
                    m, codec(), nullptr, isa);
            expectPackedStreamsEqual(got, want, "serial");
            PackedM2xfpTensor pooled =
                PackedM2xfpTensor::packActivationsCodec(m, codec(),
                                                        &pool, isa);
            expectPackedStreamsEqual(pooled, want, "pooled");
        }
    }
}

TEST_P(CrossFormat, EncodeNonFiniteValuesStayByteExact)
{
    // NaN/Inf/denormal inputs: every tier and the functional path
    // must agree byte-for-byte (value comparison is meaningless for
    // NaN, stream bytes are not).
    Matrix m = nonFiniteMatrix(7, 70, 0xF0);
    PackedM2xfpTensor want =
        PackedM2xfpTensor::packActivationsCodec(m, codec());
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        PackedM2xfpTensor got =
            PackedM2xfpTensor::packActivationsCodec(m, codec(),
                                                    nullptr, isa);
        expectPackedStreamsEqual(got, want, "non-finite");
    }
}

TEST_P(CrossFormat, AppendRowsMatchesOneShotPack)
{
    // The KV-cache append shape: growing a tensor row-by-row in
    // uneven chunks must equal the one-shot pack byte-for-byte on
    // every tier (row independence is what makes paging and
    // re-prefill exact).
    size_t gs = groupSize();
    for (size_t cols : {2 * gs, gs + 5}) {
        Matrix m = adversarialMatrix(20, cols, 0xB0 + cols);
        PackedM2xfpTensor want =
            PackedM2xfpTensor::packActivationsCodec(m, codec());
        for (SimdIsa isa : supportedSimdIsas()) {
            SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) +
                         " cols=" + std::to_string(cols));
            PackedM2xfpTensor t =
                PackedM2xfpTensor::emptyActivationsCodec(cols,
                                                         codec());
            size_t chunks[] = {1, 7, 9, 3};
            size_t r = 0;
            for (size_t n : chunks) {
                if (codec() == PackedCodec::ElemEm)
                    t.appendActivationRows(
                        m.data() + r * cols, n,
                        makeM2xfpActivationQuantizer(), isa);
                else
                    t.appendActivationRowsCodec(m.data() + r * cols,
                                                n, isa);
                r += n;
            }
            ASSERT_EQ(r, m.rows());
            expectPackedStreamsEqual(t, want, "chunked append");
        }
    }
}

void
expectGemmParity(PackedCodec codec, size_t m, size_t n, size_t k,
                 uint64_t seed, ThreadPool *pool = nullptr)
{
    Matrix a = randomMatrix(m, k, seed, 4.0);
    Matrix w = randomMatrix(n, k, seed ^ 0xfeedu, 6.0);
    PackedM2xfpTensor pa =
        PackedM2xfpTensor::packActivationsCodec(a, codec);
    PackedM2xfpTensor pw =
        PackedM2xfpTensor::packWeightsCodec(w, codec);
    Matrix ref = matmulNt(pa.unpackActivationsCodec(),
                          pw.unpackWeightsCodec());
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) + " " +
                     std::to_string(m) + "x" + std::to_string(n) +
                     "x" + std::to_string(k));
        Matrix got = packedMatmulNt(pa, pw, pool, isa);
        expectMatricesMatch(got, ref, isa);
    }
}

TEST_P(CrossFormat, GemmMatchesFunctionalReference)
{
    expectGemmParity(codec(), 4, 8, 2 * groupSize(), 1);
    expectGemmParity(codec(), 16, 16, 64, 2);
    expectGemmParity(codec(), 33, 20, 96, 3);
}

TEST_P(CrossFormat, GemmRaggedKSweep)
{
    size_t gs = groupSize();
    // Tail groups that are subgroup-aligned, split a subgroup, and
    // K below one group — padding must not leak into any output for
    // either group geometry.
    expectGemmParity(codec(), 5, 9, gs + gs / 4, 4);
    expectGemmParity(codec(), 12, 17, 3 * gs - 5, 5);
    expectGemmParity(codec(), 7, 21, 67, 6);
    expectGemmParity(codec(), 3, 5, 7, 7);
    expectGemmParity(codec(), 1, 1, gs - 1, 8);
}

TEST_P(CrossFormat, GemmRandomizedShapesAndThreads)
{
    Rng rng(0xC0FFEE ^ static_cast<uint64_t>(codec()));
    ThreadPool pool(4);
    for (int trial = 0; trial < 6; ++trial) {
        size_t m = 1 + rng.uniformInt(30);
        size_t n = 1 + rng.uniformInt(30);
        size_t k = 1 + rng.uniformInt(140);
        expectGemmParity(codec(), m, n, k, 500 + trial, &pool);
    }
}

TEST_P(CrossFormat, GemmAdversarialValuesScalarExact)
{
    // Scale-clamp boundaries, denormals and signed zeros through the
    // full quantize → pack → GEMM path: scalar must equal the
    // functional pipeline bit-for-bit, vector tiers to tolerance.
    // Magnitudes stay bounded so the products never overflow float —
    // ±Inf/NaN outputs would make value comparison vacuous (the
    // encode tests above cover those at the byte level).
    Matrix a = adversarialMatrix(9, 100, 0xD1);
    Matrix w = adversarialMatrix(7, 100, 0xD2);
    for (Matrix *m : {&a, &w})
        for (auto &v : m->flat())
            if (std::abs(v) > 1e4f)
                v = std::copysign(448.0f, v);
    PackedM2xfpTensor pa =
        PackedM2xfpTensor::packActivationsCodec(a, codec());
    PackedM2xfpTensor pw =
        PackedM2xfpTensor::packWeightsCodec(w, codec());
    Matrix ref = matmulNt(pa.unpackActivationsCodec(),
                          pw.unpackWeightsCodec());
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        Matrix got = packedMatmulNt(pa, pw, nullptr, isa);
        expectMatricesMatch(got, ref, isa);
    }
}

TEST_P(CrossFormat, MixedCodecGemmOperandsAreRejected)
{
    if (codec() == PackedCodec::ElemEm)
        GTEST_SKIP() << "needs a non-default codec";
    Matrix a = randomMatrix(2, 64, 1, 4.0);
    Matrix w = randomMatrix(2, 64, 2, 6.0);
    PackedM2xfpTensor pa =
        PackedM2xfpTensor::packActivationsCodec(a, codec());
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeightsCodec(
        w, PackedCodec::ElemEm);
    EXPECT_DEATH(packedMatmulNt(pa, pw), "codec");
}

TEST_P(CrossFormat, KvPagesMatchFunctionalPackAcrossBoundaries)
{
    // Page-straddling appends into a codec arena: every page's
    // streams must equal the functional one-shot pack of its row
    // slice, on every tier.
    const size_t d = 100, total = 11, page_rows = 4;
    Matrix m = adversarialMatrix(total, d, 0xE5);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        KvPageArena arena(d, KvCacheMode::Packed, {}, isa,
                          {.pageRows = page_rows,
                           .capacityPages = 8,
                           .codec = codec()});
        EXPECT_EQ(arena.codec(), codec());
        std::vector<KvPageId> ids;
        size_t row = 0;
        while (row < total) {
            size_t n = std::min(page_rows, total - row);
            ids.push_back(arena.allocPage());
            arena.appendRows(ids.back(), m.data() + row * d, n);
            row += n;
        }
        for (size_t p = 0; p < ids.size(); ++p) {
            SCOPED_TRACE("page " + std::to_string(p));
            size_t r0 = p * page_rows;
            size_t rows = std::min(page_rows, total - r0);
            Matrix slice(rows, d);
            std::copy(m.data() + r0 * d, m.data() + (r0 + rows) * d,
                      slice.data());
            PackedM2xfpTensor want =
                PackedM2xfpTensor::packActivationsCodec(slice,
                                                        codec());
            expectPackedStreamsEqual(arena.packedPage(ids[p]), want,
                                     "page slice");
        }
    }
}

TEST_P(CrossFormat, PackedAttendMatchesFp32OracleOnQuantizedRows)
{
    // The packed attend for this codec vs the fp32 oracle fed the
    // codec's functionally round-tripped K/V rows: both kernels see
    // the same operand values, so outputs agree to the established
    // attend tolerance on every tier and in both the flash and the
    // legacy page walker.
    const size_t layers = 2, d = 64, tokens = 13;
    const unsigned heads = 2;
    Matrix k = randomMatrix(tokens, d, 0x11, 4.0);
    Matrix v = randomMatrix(tokens, d, 0x12, 4.0);
    Matrix q = randomMatrix(tokens, d, 0x13, 4.0);
    Matrix kq = PackedM2xfpTensor::packActivationsCodec(k, codec())
                    .unpackActivationsCodec();
    Matrix vq = PackedM2xfpTensor::packActivationsCodec(v, codec())
                    .unpackActivationsCodec();

    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        KvCache packed(layers, d, KvCacheMode::Packed, {}, isa,
                       codec());
        KvCache fp32(layers, d, KvCacheMode::Fp32, {}, isa);
        for (size_t l = 0; l < layers; ++l) {
            packed.append(l, k.data(), v.data(), tokens);
            fp32.append(l, kq.data(), vq.data(), tokens);
        }
        Matrix ctx_packed(tokens, d), ctx_fp32(tokens, d);
        packed.attend(0, q.data(), tokens, 0, heads,
                      ctx_packed.data());
        fp32.attend(0, q.data(), tokens, 0, heads, ctx_fp32.data());
        expectMatricesClose(ctx_packed, ctx_fp32, 1e-6);

        packed.attendLegacy(0, q.data(), tokens, 0, heads,
                            ctx_packed.data());
        fp32.attendLegacy(0, q.data(), tokens, 0, heads,
                          ctx_fp32.data());
        expectMatricesClose(ctx_packed, ctx_fp32, 1e-6);
    }
}

TEST_P(CrossFormat, ChunkedAppendKeepsAttendExact)
{
    // Chunk boundaries must stay invisible: attend over a cache
    // built from ragged prefill chunks equals attend over a cache
    // built in one append, bit-for-bit (same codec, same tier).
    const size_t d = 64, tokens = 19;
    const unsigned heads = 4;
    Matrix k = randomMatrix(tokens, d, 0x21, 4.0);
    Matrix v = randomMatrix(tokens, d, 0x22, 4.0);
    Matrix q = randomMatrix(tokens, d, 0x23, 4.0);

    KvCache oneshot(1, d, KvCacheMode::Packed, {}, activeSimdIsa(),
                    codec());
    oneshot.append(0, k.data(), v.data(), tokens);
    KvCache chunked(1, d, KvCacheMode::Packed, {}, activeSimdIsa(),
                    codec());
    size_t chunks[] = {1, 7, 9, 2};
    size_t r = 0;
    for (size_t n : chunks) {
        chunked.append(0, k.data() + r * d, v.data() + r * d, n);
        r += n;
    }
    ASSERT_EQ(r, tokens);
    Matrix want(tokens, d), got(tokens, d);
    oneshot.attend(0, q.data(), tokens, 0, heads, want.data());
    chunked.attend(0, q.data(), tokens, 0, heads, got.data());
    test::expectMatricesBitExact(got, want);
}

TEST_P(CrossFormat, BytesPerTokenFollowsTheCodecsBitRate)
{
    const size_t d = 128, tokens = 16;
    KvCache cache(1, d, KvCacheMode::Packed, {}, activeSimdIsa(),
                  codec());
    Matrix rows = randomMatrix(tokens, d, 0x31, 4.0);
    cache.append(0, rows.data(), rows.data(), tokens);
    const PackedCodecInfo &info = packedCodecInfo(codec());
    // K and V streams: groups/row * (nibble bytes + scale + meta).
    size_t gpr = (d + info.groupSize - 1) / info.groupSize;
    size_t want =
        2 * tokens * gpr * (info.bytesPerGroupElems + 2);
    EXPECT_EQ(cache.totalBytes(), want);
    EXPECT_NEAR(cache.bytesPerToken() * 8.0 / (2 * d),
                info.bitsPerElement, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, CrossFormat, testing::ValuesIn(allPackedCodecs()),
    [](const testing::TestParamInfo<PackedCodec> &info) {
        return std::string(packedCodecName(info.param));
    });

} // anonymous namespace
} // namespace runtime
} // namespace m2x
