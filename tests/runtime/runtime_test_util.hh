/**
 * @file
 * Shared helpers for the runtime test binaries: random operands and
 * ISA-aware matrix comparison.
 *
 * The scalar kernel tier is the bit-exact oracle; vector tiers may
 * reassociate the double accumulation, so they are held to a tight
 * relative tolerance instead. expectMatricesMatch picks the right
 * contract for the tier that produced the result.
 */

#ifndef M2X_TESTS_RUNTIME_RUNTIME_TEST_UTIL_HH__
#define M2X_TESTS_RUNTIME_RUNTIME_TEST_UTIL_HH__

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "core/m2xfp_packed.hh"
#include "quant/matrix.hh"
#include "runtime/simd.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace test {

/** Tolerance contract for vector tiers: ≤ 1e-6 relative. */
constexpr double simdRelTol = 1e-6;

inline Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double dof)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(dof));
    return m;
}

/** Exact (bitwise) matrix equality. */
inline void
expectMatricesBitExact(const Matrix &got, const Matrix &want)
{
    ASSERT_TRUE(got.sameShape(want))
        << got.rows() << "x" << got.cols() << " vs " << want.rows()
        << "x" << want.cols();
    for (size_t i = 0; i < want.size(); ++i)
        ASSERT_EQ(got.flat()[i], want.flat()[i]) << "elem " << i;
}

/** Relative-tolerance matrix equality (floor of 1.0 on the scale). */
inline void
expectMatricesClose(const Matrix &got, const Matrix &want,
                    double rel = simdRelTol)
{
    ASSERT_TRUE(got.sameShape(want))
        << got.rows() << "x" << got.cols() << " vs " << want.rows()
        << "x" << want.cols();
    for (size_t i = 0; i < want.size(); ++i) {
        double g = got.flat()[i], w = want.flat()[i];
        double scale = std::max(1.0, std::abs(w));
        ASSERT_LE(std::abs(g - w), rel * scale)
            << "elem " << i << ": got " << g << " want " << w;
    }
}

/**
 * Hold @p got to the contract of the tier that produced it:
 * bit-exact for the scalar oracle, tight tolerance otherwise.
 */
inline void
expectMatricesMatch(const Matrix &got, const Matrix &want,
                    SimdIsa isa)
{
    if (isa == SimdIsa::Scalar)
        expectMatricesBitExact(got, want);
    else
        expectMatricesClose(got, want);
}

/**
 * Byte equality of all three packed streams (shape first). The
 * stream-geometry contract shared by the encoder, KV-cache and
 * page-arena exactness tests.
 */
inline void
expectPackedStreamsEqual(const PackedM2xfpTensor &got,
                         const PackedM2xfpTensor &want,
                         const char *what = "packed streams")
{
    ASSERT_EQ(got.rows(), want.rows()) << what;
    ASSERT_EQ(got.cols(), want.cols()) << what;
    EXPECT_EQ(got.elementStream(), want.elementStream())
        << what << ": element stream";
    EXPECT_EQ(got.scaleStream(), want.scaleStream())
        << what << ": scale stream";
    EXPECT_EQ(got.metadataStream(), want.metadataStream())
        << what << ": metadata stream";
}

/**
 * A one-row, one-group tensor of @p codec with every element byte
 * set to @p elem_byte — the raw-stream probe the decode-exactness
 * sweeps build for each of the 256 element-byte values.
 */
inline PackedM2xfpTensor
oneGroupTensor(uint8_t elem_byte, uint8_t scale_code,
               uint8_t meta_byte,
               PackedCodec codec = PackedCodec::ElemEm)
{
    const PackedCodecInfo &info = packedCodecInfo(codec);
    std::vector<uint8_t> elems(info.bytesPerGroupElems, elem_byte);
    return PackedM2xfpTensor::fromRawStreams(
        1, info.groupSize, std::move(elems), {scale_code},
        {meta_byte}, codec);
}

} // namespace test
} // namespace runtime
} // namespace m2x

#endif // M2X_TESTS_RUNTIME_RUNTIME_TEST_UTIL_HH__
