/**
 * @file
 * Tests for the runtime ThreadPool: full coverage of ranges, chunk
 * boundaries, nesting, and reuse across jobs. Run under ASan/UBSan
 * in the CI sanitizer job.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
    std::vector<std::atomic<int>> hits(1000);
    pool.parallelFor(0, hits.size(), 7, [&](size_t b, size_t e) {
        EXPECT_LE(e - b, 7u);
        for (size_t i = b; i < e; ++i)
            hits[i].fetch_add(1);
    });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolRunsInline)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.size(), 1u);
    std::vector<int> hits(64, 0); // not atomic: must be single-threaded
    pool.parallelFor(0, hits.size(), 8,
                     [&](size_t b, size_t e) {
                         for (size_t i = b; i < e; ++i)
                             ++hits[i];
                     });
    EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 64);
}

TEST(ThreadPool, EmptyAndTinyRanges)
{
    ThreadPool pool(4);
    int calls = 0;
    pool.parallelFor(5, 5, 1, [&](size_t, size_t) { ++calls; });
    EXPECT_EQ(calls, 0);
    std::atomic<int> total{0};
    pool.parallelFor(10, 13, 100, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(total.load(), 3);
}

TEST(ThreadPool, NonZeroBegin)
{
    ThreadPool pool(3);
    std::atomic<uint64_t> sum{0};
    pool.parallelFor(100, 200, 9, [&](size_t b, size_t e) {
        uint64_t s = 0;
        for (size_t i = b; i < e; ++i)
            s += i;
        sum.fetch_add(s);
    });
    EXPECT_EQ(sum.load(), (100u + 199u) * 100u / 2);
}

TEST(ThreadPool, ManySequentialJobsReuseWorkers)
{
    ThreadPool pool(4);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> total{0};
        pool.parallelFor(0, 128, 4, [&](size_t b, size_t e) {
            total.fetch_add(static_cast<int>(e - b));
        });
        ASSERT_EQ(total.load(), 128) << round;
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::atomic<int> inner_total{0};
    pool.parallelFor(0, 8, 1, [&](size_t, size_t) {
        // Nested call must not deadlock waiting on busy workers.
        pool.parallelFor(0, 16, 4, [&](size_t b, size_t e) {
            inner_total.fetch_add(static_cast<int>(e - b));
        });
    });
    EXPECT_EQ(inner_total.load(), 8 * 16);
}

TEST(ThreadPool, ConcurrentCallersFromDifferentThreads)
{
    // Only one caller at a time owns the workers; the others must
    // fall back to inline execution, never corrupt the job slot or
    // deadlock. Exercised under ASan/UBSan in CI.
    ThreadPool pool(4);
    constexpr int n_callers = 3;
    constexpr int rounds = 25;
    std::vector<std::atomic<uint64_t>> sums(n_callers);
    std::vector<std::thread> callers;
    for (int c = 0; c < n_callers; ++c) {
        callers.emplace_back([&, c] {
            for (int round = 0; round < rounds; ++round) {
                pool.parallelFor(0, 256, 8,
                                 [&](size_t b, size_t e) {
                                     for (size_t i = b; i < e; ++i)
                                         sums[c].fetch_add(i);
                                 });
            }
        });
    }
    for (auto &t : callers)
        t.join();
    uint64_t expect = 255u * 256u / 2 * rounds;
    for (int c = 0; c < n_callers; ++c)
        EXPECT_EQ(sums[c].load(), expect) << c;
}

TEST(ThreadPool, ExceptionOnInlinePathLeavesPoolUsable)
{
    // Inline-path throws (serial pool, or a range that fits one
    // chunk) must propagate and restore the in-job state so later
    // jobs still run — including parallel dispatch afterwards.
    ThreadPool serial(1), pool(4);
    auto boom = [](size_t, size_t) {
        throw std::runtime_error("boom");
    };
    EXPECT_THROW(serial.parallelFor(0, 8, 2, boom),
                 std::runtime_error);
    EXPECT_THROW(pool.parallelFor(0, 2, 8, boom),
                 std::runtime_error);
    for (ThreadPool *p : {&serial, &pool}) {
        std::atomic<int> total{0};
        p->parallelFor(0, 256, 8, [&](size_t b, size_t e) {
            total.fetch_add(static_cast<int>(e - b));
        });
        EXPECT_EQ(total.load(), 256);
    }
}

TEST(ThreadPool, ExceptionOnWorkerLaneRethrownOnCaller)
{
    // Regression: a body throw on a *worker* lane used to escape
    // workerLoop and std::terminate the process. The contract is the
    // exception-safe drain: capture the first exception, finish the
    // job on every lane, rethrow on the calling thread.
    ThreadPool pool(4);
    std::atomic<bool> worker_threw{false};
    std::thread::id caller = std::this_thread::get_id();
    try {
        pool.parallelFor(0, 1000, 1, [&](size_t, size_t) {
            if (std::this_thread::get_id() == caller) {
                // Pin the calling lane until a worker has thrown, so
                // the caller cannot drain the whole range by itself
                // and the throw is guaranteed to happen off-caller.
                while (!worker_threw.load())
                    std::this_thread::yield();
            } else {
                worker_threw.store(true);
                throw std::runtime_error("worker boom");
            }
        });
        FAIL() << "expected the worker exception on the caller";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "worker boom");
        EXPECT_EQ(std::this_thread::get_id(), caller);
    }
    EXPECT_TRUE(worker_threw.load());

    // The drain must leave the pool fully usable, including
    // parallel dispatch of later jobs.
    std::atomic<int> total{0};
    pool.parallelFor(0, 256, 8, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(total.load(), 256);
}

TEST(ThreadPool, FirstOfManyConcurrentExceptionsWins)
{
    // Every lane throws; exactly one exception must surface (any of
    // them), the others are dropped, and nothing terminates.
    ThreadPool pool(4);
    for (int round = 0; round < 20; ++round) {
        std::atomic<int> started{0};
        EXPECT_THROW(
            pool.parallelFor(0, 64, 1,
                             [&](size_t b, size_t) {
                                 started.fetch_add(1);
                                 throw std::out_of_range(
                                     "lane " + std::to_string(b));
                             }),
            std::out_of_range)
            << round;
        EXPECT_GE(started.load(), 1) << round;
    }
}

namespace {

/** Sets (or unsets, for nullptr) an env var; restores on scope exit. */
struct ScopedEnv
{
    std::string name;
    std::string saved;
    bool had;

    ScopedEnv(const char *n, const char *value) : name(n)
    {
        const char *old = std::getenv(n);
        had = old != nullptr;
        if (had)
            saved = old;
        if (value)
            setenv(n, value, 1);
        else
            unsetenv(n);
    }
    ~ScopedEnv()
    {
        if (had)
            setenv(name.c_str(), saved.c_str(), 1);
        else
            unsetenv(name.c_str());
    }
};

unsigned
hwFallback()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

} // anonymous namespace

TEST(ThreadPool, DefaultThreadsHonorsValidEnv)
{
    ScopedEnv env("M2X_THREADS", "8");
    EXPECT_EQ(ThreadPool::defaultThreads(), 8u);
}

TEST(ThreadPool, DefaultThreadsClampsHugeValues)
{
    ScopedEnv env("M2X_THREADS", "4096");
    EXPECT_EQ(ThreadPool::defaultThreads(), 1024u);
}

TEST(ThreadPool, DefaultThreadsRejectsTrailingGarbage)
{
    // Regression: strtol(env, nullptr, 10) silently accepted "8x".
    ScopedEnv env("M2X_THREADS", "8x");
    EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
}

TEST(ThreadPool, DefaultThreadsRejectsZeroNegativeAndEmpty)
{
    {
        ScopedEnv env("M2X_THREADS", "0");
        EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
    }
    {
        ScopedEnv env("M2X_THREADS", "-3");
        EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
    }
    {
        ScopedEnv env("M2X_THREADS", "");
        EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
    }
    {
        ScopedEnv env("M2X_THREADS", "threads");
        EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
    }
}

TEST(ThreadPool, DefaultThreadsRejectsOverflow)
{
    // Regression: ERANGE was not detected, so LONG_MAX saturation
    // produced a silently-clamped bogus lane count.
    ScopedEnv env("M2X_THREADS", "99999999999999999999999999");
    EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
}

TEST(ThreadPool, DefaultThreadsUnsetUsesHardware)
{
    ScopedEnv env("M2X_THREADS", nullptr);
    EXPECT_EQ(ThreadPool::defaultThreads(), hwFallback());
}

TEST(ThreadPool, FreeFunctionUsesGlobalPool)
{
    std::atomic<int> total{0};
    parallelFor(0, 33, 5, [&](size_t b, size_t e) {
        total.fetch_add(static_cast<int>(e - b));
    });
    EXPECT_EQ(total.load(), 33);
}

TEST(ThreadPool, DefaultThreadsIsPositive)
{
    EXPECT_GE(ThreadPool::defaultThreads(), 1u);
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
