/**
 * @file
 * ServingEngine end-to-end over the codec seam: continuous batching,
 * admission stalls, forced preemption and byte-exact re-prefill
 * resume must all be invisible to the generated tokens for every
 * registered packed codec, not just the paper's elem_em pair. Each
 * request's output is held bit-for-bit to a single-sequence
 * DecodeSession run configured with the same codec (whose own parity
 * against the one-shot forward is codec-independent linear algebra).
 *
 * This is the serving-layer leg of the cross-format differential
 * suite: the scheduler machinery exercised by serving_test.cc, but
 * with the linear layers and KV pages executing a non-default format
 * through the traits-driven generic kernels.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/packed_codec.hh"
#include "runtime/decode_session.hh"
#include "runtime/serving.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

model::ModelConfig
tinyConfig()
{
    model::ModelConfig cfg;
    cfg.name = "test-tiny";
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 2;
    cfg.dFf = 96;
    cfg.vocab = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomTokens(size_t n, unsigned vocab, uint64_t seed)
{
    std::vector<int> toks(n);
    Rng rng(seed);
    for (auto &t : toks)
        t = static_cast<int>(rng.uniformInt(vocab));
    return toks;
}

int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

/** Greedy single-sequence oracle running the same codec. */
std::vector<int>
greedyReference(const model::ModelConfig &mc, SimdIsa isa,
                PackedCodec codec, const std::vector<int> &prompt,
                size_t max_new)
{
    DecodeSession s(mc, {.isa = isa,
                         .kvMode = KvCacheMode::Packed,
                         .codec = codec});
    size_t seq = s.addSequence();
    Matrix logits = s.prefill(seq, prompt);
    std::vector<int> out;
    out.push_back(argmaxRow(logits, logits.rows() - 1));
    while (out.size() < max_new) {
        int next = out.back();
        Matrix l = s.decode({&next, 1});
        out.push_back(argmaxRow(l, 0));
    }
    return out;
}

struct Workload
{
    std::vector<int> prompt;
    size_t maxNew;
};

class ServingCodec : public testing::TestWithParam<PackedCodec>
{
  protected:
    PackedCodec codec() const { return GetParam(); }

    void expectMatchesReference(ServingEngine &eng,
                                const model::ModelConfig &mc,
                                const std::vector<Workload> &work,
                                SimdIsa isa)
    {
        for (size_t i = 0; i < work.size(); ++i) {
            SCOPED_TRACE("request " + std::to_string(i));
            const RequestStats &st = eng.stats(i);
            EXPECT_EQ(st.state, RequestState::Finished);
            EXPECT_EQ(st.generated, work[i].maxNew);
            std::vector<int> want =
                greedyReference(mc, isa, codec(), work[i].prompt,
                                work[i].maxNew);
            EXPECT_EQ(eng.generated(i), want);
        }
    }
};

TEST_P(ServingCodec, BatchedGenerationMatchesSingleSequence)
{
    model::ModelConfig mc = tinyConfig();
    std::vector<Workload> work = {
        {randomTokens(6, mc.vocab, 1), 5},
        {randomTokens(3, mc.vocab, 2), 8},
        {randomTokens(9, mc.vocab, 3), 1},
        {randomTokens(5, mc.vocab, 4), 6},
    };
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        ServingEngine eng(mc, {.isa = isa,
                               .kvMode = KvCacheMode::Packed,
                               .pageRows = 4,
                               .arenaPages = 256,
                               .maxBatch = 8,
                               .codec = codec()});
        EXPECT_EQ(eng.codec(), codec());
        EXPECT_EQ(eng.arena().codec(), codec());
        for (const Workload &w : work)
            eng.submit(w.prompt, w.maxNew);
        eng.runToCompletion();
        EXPECT_TRUE(eng.idle());
        EXPECT_EQ(eng.finishedCount(), work.size());
        EXPECT_EQ(eng.preemptionCount(), 0u);
        expectMatchesReference(eng, mc, work, isa);
    }
}

TEST_P(ServingCodec, AdmissionStallsAtArenaExhaustion)
{
    model::ModelConfig mc = tinyConfig();
    // Page accounting is row-granular, so the serving_test geometry
    // carries over codec-unchanged: each request needs 8 pages, 12
    // total pages admit exactly one at a time.
    std::vector<Workload> work = {
        {randomTokens(4, mc.vocab, 11), 4},
        {randomTokens(4, mc.vocab, 12), 4},
        {randomTokens(4, mc.vocab, 13), 4},
    };
    ServingEngine eng(mc, {.kvMode = KvCacheMode::Packed,
                           .pageRows = 4,
                           .arenaPages = 12,
                           .maxBatch = 8,
                           .admitFreeFraction = 0.0,
                           .codec = codec()});
    for (const Workload &w : work)
        eng.submit(w.prompt, w.maxNew);
    ASSERT_TRUE(eng.step());
    EXPECT_EQ(eng.activeCount(), 1u);
    EXPECT_EQ(eng.waitingCount(), 2u);
    eng.runToCompletion();
    EXPECT_TRUE(eng.idle());
    EXPECT_EQ(eng.finishedCount(), 3u);
    EXPECT_EQ(eng.arena().livePages(), 0u);
    for (size_t i = 0; i < work.size(); ++i)
        EXPECT_EQ(eng.generated(i).size(), work[i].maxNew);
}

TEST_P(ServingCodec, PreemptionRoundTripKeepsOutputsExact)
{
    model::ModelConfig mc = tinyConfig();
    SimdIsa isa = activeSimdIsa();
    std::vector<Workload> work = {
        {randomTokens(6, mc.vocab, 21), 10},
        {randomTokens(6, mc.vocab, 22), 10},
        {randomTokens(6, mc.vocab, 23), 10},
    };
    // Tight arena: the youngest request gets evicted mid-generation
    // and resumes via re-prefill — which must rebuild byte-identical
    // packed pages under every codec for the outputs to stay exact.
    ServingEngine eng(mc, {.isa = isa,
                           .kvMode = KvCacheMode::Packed,
                           .pageRows = 4,
                           .arenaPages = 28,
                           .maxBatch = 4,
                           .admitFreeFraction = 0.0,
                           .codec = codec()});
    for (const Workload &w : work)
        eng.submit(w.prompt, w.maxNew);
    eng.runToCompletion();
    EXPECT_TRUE(eng.idle());
    EXPECT_GT(eng.preemptionCount(), 0u);
    expectMatchesReference(eng, mc, work, isa);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodecs, ServingCodec, testing::ValuesIn(allPackedCodecs()),
    [](const testing::TestParamInfo<PackedCodec> &info) {
        return std::string(packedCodecName(info.param));
    });

} // namespace
} // namespace runtime
} // namespace m2x
