/**
 * @file
 * KvCache: the growable packed streams must be byte-identical to the
 * one-shot functional packer whatever the append chunking, the
 * packed attention kernel must agree with the fp32 oracle when both
 * see the same (already quantized) rows, parallel attention must be
 * deterministic, and the resident-bytes accounting must reflect the
 * 4.5 bits/element packed layout.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "quant/group_quantizer.hh"
#include "runtime/kv_cache.hh"
#include "runtime_test_util.hh"

namespace m2x {
namespace runtime {
namespace {

TEST(AppendActivationRows, ChunkedAppendMatchesFunctionalPacker)
{
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    // Tail-group width included: 40 = 32 + 8-element padded tail.
    for (size_t cols : {64u, 40u}) {
        Matrix m = test::randomMatrix(20, cols, 77, 4.0);
        PackedM2xfpTensor want =
            PackedM2xfpTensor::packActivations(m, q);
        for (SimdIsa isa : supportedSimdIsas()) {
            SCOPED_TRACE(std::string("isa=") + simdIsaName(isa) +
                         " cols=" + std::to_string(cols));
            PackedM2xfpTensor t =
                PackedM2xfpTensor::emptyActivations(cols, q);
            EXPECT_EQ(t.rows(), 0u);
            EXPECT_EQ(t.cols(), cols);
            // Uneven chunks, including a single-row append.
            size_t chunks[] = {1, 7, 9, 3};
            size_t r = 0;
            for (size_t n : chunks) {
                t.appendActivationRows(m.data() + r * cols, n, q,
                                       isa);
                r += n;
                EXPECT_EQ(t.rows(), r);
            }
            ASSERT_EQ(r, m.rows());
            test::expectPackedStreamsEqual(t, want);
        }
    }
}

TEST(KvCache, BytesAccountingMatchesPackedLayout)
{
    const size_t layers = 3, d = 64, tokens = 10;
    Matrix rows = test::randomMatrix(tokens, d, 5, 4.0);

    KvCache packed(layers, d, KvCacheMode::Packed);
    KvCache fp32(layers, d, KvCacheMode::Fp32);
    EXPECT_EQ(packed.totalBytes(), 0u);
    EXPECT_EQ(packed.bytesPerToken(), 0.0);
    for (size_t l = 0; l < layers; ++l) {
        packed.append(l, rows.data(), rows.data(), tokens);
        fp32.append(l, rows.data(), rows.data(), tokens);
    }
    EXPECT_EQ(packed.length(), tokens);
    EXPECT_EQ(fp32.length(), tokens);

    // Per token: K + V, each groupsPerRow * (16 elem + 1 scale +
    // 1 meta) bytes per layer — 4.5 bits/element when d % 32 == 0.
    size_t groups = d / 32;
    size_t packed_want = tokens * 2 * layers * groups * 18;
    size_t fp32_want = tokens * 2 * layers * d * sizeof(float);
    EXPECT_EQ(packed.totalBytes(), packed_want);
    EXPECT_EQ(fp32.totalBytes(), fp32_want);
    EXPECT_DOUBLE_EQ(packed.bytesPerToken() * tokens,
                     static_cast<double>(packed_want));
    // 32 bits vs 4.5 bits per element.
    EXPECT_DOUBLE_EQ(fp32.bytesPerToken() / packed.bytesPerToken(),
                     32.0 / 4.5);
}

TEST(KvCache, PackedAttendMatchesFp32OracleOnQuantizedRows)
{
    // Feed the fp32 oracle the functionally quantized K/V rows; the
    // packed cache quantizes the raw rows itself and decodes
    // bit-identical values, so the two kernels see the same
    // operands and may differ only by double-ulp reassociation
    // inside the score dots.
    const size_t layers = 2, d = 64, tokens = 13;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 11, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 12, 4.0);
    Matrix q = test::randomMatrix(tokens, d, 13, 4.0);

    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    Matrix kq = quantizeRowsGrouped(k, aq);
    Matrix vq = quantizeRowsGrouped(v, aq);

    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        KvCache packed(layers, d, KvCacheMode::Packed, {}, isa);
        KvCache fp32(layers, d, KvCacheMode::Fp32, {}, isa);
        for (size_t l = 0; l < layers; ++l) {
            packed.append(l, k.data(), v.data(), tokens);
            fp32.append(l, kq.data(), vq.data(), tokens);
        }
        Matrix ctx_packed(tokens, d), ctx_fp32(tokens, d);
        packed.attend(0, q.data(), tokens, 0, heads,
                      ctx_packed.data());
        fp32.attend(0, q.data(), tokens, 0, heads, ctx_fp32.data());
        test::expectMatricesClose(ctx_packed, ctx_fp32, 1e-6);
    }
}

TEST(KvCache, AttendIsDeterministicAcrossThreadCounts)
{
    const size_t layers = 1, d = 64, tokens = 19;
    const unsigned heads = 4;
    Matrix k = test::randomMatrix(tokens, d, 21, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 22, 4.0);
    Matrix q = test::randomMatrix(tokens, d, 23, 4.0);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        KvCache cache(layers, d, mode);
        cache.append(0, k.data(), v.data(), tokens);
        ThreadPool p1(1), p4(4);
        Matrix a(tokens, d), b(tokens, d);
        cache.attend(0, q.data(), tokens, 0, heads, a.data(), &p1);
        cache.attend(0, q.data(), tokens, 0, heads, b.data(), &p4);
        test::expectMatricesBitExact(a, b);
    }
}

TEST(KvCache, ChunkedAppendAttendMatchesOneShot)
{
    // Growing the cache across chunk boundaries (1 + 7 + 5 rows)
    // must behave exactly like one 13-row append: same streams,
    // same attention output for the final chunk's queries.
    const size_t d = 64, tokens = 13;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 31, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 32, 4.0);
    Matrix q = test::randomMatrix(tokens, d, 33, 4.0);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(kvCacheModeName(mode));
        KvCache chunked(1, d, mode);
        KvCache oneshot(1, d, mode);
        oneshot.append(0, k.data(), v.data(), tokens);
        size_t chunks[] = {1, 7, 5};
        size_t r = 0;
        Matrix got(tokens, d);
        for (size_t n : chunks) {
            chunked.append(0, k.data() + r * d, v.data() + r * d, n);
            chunked.attend(0, q.data() + r * d, n, r, heads,
                           got.data() + r * d);
            r += n;
        }
        EXPECT_EQ(chunked.totalBytes(), oneshot.totalBytes());
        Matrix want(tokens, d);
        oneshot.attend(0, q.data(), tokens, 0, heads, want.data());
        test::expectMatricesBitExact(got, want);
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
