/**
 * @file
 * KvPageArena: bounded arenas must fail allocation cleanly at
 * exhaustion, the free list must recycle pages without growing the
 * arena across sequence churn, page-granular packed appends must be
 * byte-identical to the corresponding row slice of the one-shot
 * functional packer (the PR 5 exactness contract is page-boundary
 * agnostic), and a released + re-prefilled cache must rebuild the
 * exact same state (what makes scheduler eviction recoverable).
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "runtime/kv_cache.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime_test_util.hh"

namespace m2x {
namespace runtime {
namespace {

TEST(KvPageArena, BoundedExhaustionReturnsInvalidPage)
{
    KvPageArena arena(64, KvCacheMode::Fp32, {}, SimdIsa::Scalar,
                      {.pageRows = 4, .capacityPages = 3});
    EXPECT_EQ(arena.capacityPages(), 3u);
    EXPECT_EQ(arena.freePages(), 3u);

    std::vector<KvPageId> ids;
    for (int i = 0; i < 3; ++i) {
        KvPageId id = arena.allocPage();
        ASSERT_NE(id, kvInvalidPage);
        ids.push_back(id);
    }
    EXPECT_EQ(arena.livePages(), 3u);
    EXPECT_EQ(arena.freePages(), 0u);
    EXPECT_DOUBLE_EQ(arena.occupancy(), 1.0);

    // Exhausted: the allocator reports failure instead of growing.
    EXPECT_EQ(arena.allocPage(), kvInvalidPage);

    // One retirement makes exactly one claim possible again.
    arena.freePage(ids[1]);
    EXPECT_EQ(arena.freePages(), 1u);
    KvPageId again = arena.allocPage();
    EXPECT_EQ(again, ids[1]); // recycled, not freshly materialized
    EXPECT_EQ(arena.allocPage(), kvInvalidPage);
    EXPECT_EQ(arena.highWaterPages(), 3u);
}

TEST(KvPageArena, FreeListReusePreventsGrowthAcrossChurn)
{
    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        SCOPED_TRACE(std::string("mode=") + kvCacheModeName(mode));
        KvPageArena arena(64, mode, {}, SimdIsa::Scalar,
                          {.pageRows = 4, .capacityPages = 16});
        Matrix rows = test::randomMatrix(8, 64, 11, 4.0);

        size_t high_water_after_first = 0;
        for (int wave = 0; wave < 5; ++wave) {
            std::vector<KvPageId> ids;
            for (int i = 0; i < 6; ++i) {
                KvPageId id = arena.allocPage();
                ASSERT_NE(id, kvInvalidPage);
                arena.appendRows(id, rows.data(), 4);
                EXPECT_EQ(arena.pageUsed(id), 4u);
                ids.push_back(id);
            }
            if (wave == 0)
                high_water_after_first = arena.highWaterPages();
            // Churn never materializes fresh pages once the working
            // set has peaked — recycled pages refill in place.
            EXPECT_EQ(arena.highWaterPages(),
                      high_water_after_first);
            for (KvPageId id : ids) {
                arena.freePage(id);
                EXPECT_EQ(arena.pageUsed(id), 0u);
            }
            EXPECT_EQ(arena.livePages(), 0u);
        }
        EXPECT_EQ(arena.highWaterPages(), 6u);
        EXPECT_EQ(arena.residentBytes(), 6u * arena.pageBytes());
    }
}

TEST(KvPageArena, PackedPagesByteExactVsOneShotPacker)
{
    const size_t d = 64, page_rows = 4, total = 11;
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    Matrix m = test::randomMatrix(total, d, 23, 4.0);

    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        KvPageArena arena(d, KvCacheMode::Packed, {}, isa,
                          {.pageRows = page_rows, .capacityPages = 8});

        // Fill pages through uneven appends that straddle page
        // boundaries: 3 + 3 rows land 3/1 and 2/2 across pages.
        std::vector<KvPageId> ids;
        size_t filled = 0;
        size_t chunks[] = {3, 3, 1, 4};
        for (size_t n : chunks) {
            size_t left = n;
            while (left > 0) {
                if (filled % page_rows == 0)
                    ids.push_back(arena.allocPage());
                size_t take = std::min(
                    page_rows - filled % page_rows, left);
                arena.appendRows(ids.back(),
                                 m.data() + filled * d, take);
                filled += take;
                left -= take;
            }
        }
        ASSERT_EQ(filled, total);

        // Every page's streams must equal the one-shot pack of its
        // row slice — row independence makes paging invisible.
        for (size_t p = 0; p < ids.size(); ++p) {
            SCOPED_TRACE("page " + std::to_string(p));
            size_t r0 = p * page_rows;
            size_t rows = std::min(page_rows, total - r0);
            Matrix slice(rows, d);
            std::memcpy(slice.data(), m.data() + r0 * d,
                        rows * d * sizeof(float));
            PackedM2xfpTensor want =
                PackedM2xfpTensor::packActivations(slice, q);
            const PackedM2xfpTensor &got = arena.packedPage(ids[p]);
            ASSERT_EQ(got.rows(), rows);
            test::expectPackedStreamsEqual(got, want, "page slice");
        }
    }
}

TEST(KvCache, SharedArenaPageAccounting)
{
    const size_t layers = 2, d = 64;
    KvPageArena arena(d, KvCacheMode::Packed, {}, SimdIsa::Scalar,
                      {.pageRows = 4, .capacityPages = 64});
    KvCache cache(arena, layers);
    Matrix rows = test::randomMatrix(10, d, 31, 4.0);

    // 10 rows at 4 rows/page = 3 pages per stream, x2 streams x2
    // layers = 12 pages; the next row fits in every tail page.
    EXPECT_EQ(cache.pagesNeededFor(10), 12u);
    for (size_t l = 0; l < layers; ++l)
        cache.append(l, rows.data(), rows.data(), 10);
    EXPECT_EQ(cache.pagesHeld(), 12u);
    EXPECT_EQ(arena.livePages(), 12u);
    EXPECT_EQ(cache.pagesNeededFor(1), 0u);
    // 3 more rows overflow the 2 free tail slots: one fresh page
    // per stream per layer.
    EXPECT_EQ(cache.pagesNeededFor(3), 1u * 2u * layers);

    cache.release();
    EXPECT_EQ(cache.length(), 0u);
    EXPECT_EQ(cache.pagesHeld(), 0u);
    EXPECT_EQ(arena.livePages(), 0u);
}

TEST(KvCache, EvictionRePrefillRoundTripParity)
{
    const size_t layers = 2, d = 64, tokens = 9;
    const unsigned heads = 2;
    Matrix k = test::randomMatrix(tokens, d, 41, 4.0);
    Matrix v = test::randomMatrix(tokens, d, 42, 4.0);
    Matrix q = test::randomMatrix(1, d, 43, 4.0);

    for (KvCacheMode mode :
         {KvCacheMode::Fp32, KvCacheMode::Packed}) {
        for (SimdIsa isa : supportedSimdIsas()) {
            SCOPED_TRACE(std::string("mode=") +
                         kvCacheModeName(mode) +
                         " isa=" + simdIsaName(isa));
            KvPageArena arena(d, mode, {}, isa,
                              {.pageRows = 4, .capacityPages = 32});
            KvCache cache(arena, layers);
            auto fill = [&] {
                for (size_t l = 0; l < layers; ++l)
                    cache.append(l, k.data(), v.data(), tokens);
            };
            fill();
            Matrix ctx_before(1, d);
            cache.attend(0, q.data(), 1, tokens - 1, heads,
                         ctx_before.data());
            size_t high_water = arena.highWaterPages();

            // Evict (pages back to the free list), then re-prefill
            // the identical history: the rebuilt pages must carry
            // the same bytes, so attention is bit-identical and the
            // arena has not grown.
            cache.release();
            EXPECT_EQ(arena.livePages(), 0u);
            fill();
            EXPECT_EQ(cache.length(), tokens);
            EXPECT_EQ(arena.highWaterPages(), high_water);
            Matrix ctx_after(1, d);
            cache.attend(0, q.data(), 1, tokens - 1, heads,
                         ctx_after.data());
            test::expectMatricesBitExact(ctx_after, ctx_before);
        }
    }
}

TEST(KvPageArena, PackedPageCapacityMultiplierVsFp32)
{
    // The point of the paged packed cache: one fp32 page budget
    // holds >= 4x more packed pages (18 bytes per 32 elements vs
    // 128 — the paper's ~7.1x at d % 32 == 0).
    KvPageArena arena(256, KvCacheMode::Packed, {}, SimdIsa::Scalar,
                      {.pageRows = 16, .capacityPages = 4});
    double mult = static_cast<double>(arena.fp32PageBytes()) /
                  static_cast<double>(arena.pageBytes());
    EXPECT_GE(mult, 4.0);
    EXPECT_NEAR(mult, 32.0 * 4.0 / 18.0, 1e-9);
}

} // namespace
} // namespace runtime
} // namespace m2x
