/**
 * @file
 * The decode LUTs must be bit-identical to the functional codecs:
 * every table entry is checked against the Minifloat/ScaleE8m0
 * decoders, and LUT group decode against unpackActivations /
 * unpackWeights, element for element with exact float equality.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/m2xfp.hh"
#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "runtime/decode_lut.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(4.0));
    return m;
}

TEST(DecodeLut, Fp4TablesMatchMinifloat)
{
    const DecodeTables &t = DecodeTables::get();
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    for (uint32_t c = 0; c < 16; ++c)
        EXPECT_EQ(t.fp4Value[c], fp4.decode(c)) << c;
    for (uint32_t b = 0; b < 256; ++b) {
        EXPECT_EQ(t.fp4Pair[b].lo, fp4.decode(b & 0xfu)) << b;
        EXPECT_EQ(t.fp4Pair[b].hi, fp4.decode(b >> 4)) << b;
    }
}

TEST(DecodeLut, E8m0TableMatchesScaleType)
{
    const DecodeTables &t = DecodeTables::get();
    for (uint32_t c = 0; c < 255; ++c)
        EXPECT_EQ(t.e8m0Value[c],
                  ScaleE8m0::fromCode(static_cast<uint8_t>(c)).value())
            << c;
    EXPECT_TRUE(std::isnan(t.e8m0Value[255]));
}

TEST(DecodeLut, SgEmMultipliersMatchQuantizer)
{
    const DecodeTables &t = DecodeTables::get();
    SgEmQuantizer q = makeM2xfpWeightQuantizer();
    ScaleE8m0 one = ScaleE8m0::fromExponent(0);
    for (uint8_t m = 0; m < 4; ++m)
        EXPECT_EQ(t.sgEmMult[m], q.subgroupScale(one, m)) << int(m);
}

TEST(DecodeLut, ElemEmTableMatchesFp6Promotion)
{
    const DecodeTables &t = DecodeTables::get();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    for (uint32_t c = 0; c < 16; ++c) {
        for (uint8_t m = 0; m < 4; ++m) {
            uint32_t mag6 =
                ElemEmQuantizer::decodeFp6Mag(c & 0x7u, m);
            float mag = fp6.decode(mag6 & 0x1fu);
            float want = (c >> 3) ? -mag : mag;
            EXPECT_EQ(t.elemEmValue[c][m], want)
                << "code " << c << " meta " << int(m);
        }
    }
}

TEST(DecodeLut, ActivationGroupDecodeMatchesUnpack)
{
    Matrix m = randomMatrix(7, 96, 21);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    Matrix ref = t.unpackActivations(q);
    float buf[PackedM2xfpTensor::groupSize];
    for (size_t r = 0; r < t.rows(); ++r) {
        for (size_t g = 0; g < t.groupsPerRow(); ++g) {
            decodeActivationGroup(t, r, g, buf);
            for (size_t i = 0; i < PackedM2xfpTensor::groupSize; ++i)
                ASSERT_EQ(buf[i], ref(r, g * 32 + i))
                    << r << "," << g << "," << i;
        }
    }
}

TEST(DecodeLut, WeightGroupDecodeMatchesUnpack)
{
    Matrix m = randomMatrix(6, 64, 22);
    SgEmQuantizer q = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packWeights(m, q);
    Matrix ref = t.unpackWeights(q);
    float buf[PackedM2xfpTensor::groupSize];
    for (size_t r = 0; r < t.rows(); ++r) {
        for (size_t g = 0; g < t.groupsPerRow(); ++g) {
            decodeWeightGroup(t, r, g, buf);
            for (size_t i = 0; i < PackedM2xfpTensor::groupSize; ++i)
                ASSERT_EQ(buf[i], ref(r, g * 32 + i))
                    << r << "," << g << "," << i;
        }
    }
}

TEST(DecodeLut, RowDecodeMatchesUnpackWithRaggedTail)
{
    // 44 columns: tail group of 12 (not a multiple of the subgroup).
    Matrix m = randomMatrix(3, 44, 23);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor ta = PackedM2xfpTensor::packActivations(m, aq);
    PackedM2xfpTensor tw = PackedM2xfpTensor::packWeights(m, wq);
    Matrix ra = ta.unpackActivations(aq);
    Matrix rw = tw.unpackWeights(wq);
    std::vector<float> buf(ta.groupsPerRow() * 32);
    for (size_t r = 0; r < 3; ++r) {
        decodeActivationRow(ta, r, buf.data());
        for (size_t c = 0; c < 44; ++c)
            ASSERT_EQ(buf[c], ra(r, c)) << r << "," << c;
        decodeWeightRow(tw, r, buf.data());
        for (size_t c = 0; c < 44; ++c)
            ASSERT_EQ(buf[c], rw(r, c)) << r << "," << c;
    }
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
