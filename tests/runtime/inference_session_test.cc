/**
 * @file
 * InferenceSession: batched packed-domain forward passes must agree
 * with the functional quantized transformer (bit-exactly on the
 * scalar kernel tier, within tolerance on vector tiers), and the
 * per-layer accounting — including the reported ISA — must add up.
 */

#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "core/m2xfp.hh"
#include "runtime/inference_session.hh"
#include "runtime_test_util.hh"
#include "util/rng.hh"

namespace m2x {
namespace runtime {
namespace {

model::ModelConfig
tinyConfig()
{
    model::ModelConfig cfg;
    cfg.name = "test-tiny";
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 2;
    cfg.dFf = 96;
    cfg.vocab = 64;
    cfg.seed = 7;
    return cfg;
}

std::vector<int>
randomTokens(size_t n, unsigned vocab, uint64_t seed)
{
    std::vector<int> toks(n);
    Rng rng(seed);
    for (auto &t : toks)
        t = static_cast<int>(rng.uniformInt(vocab));
    return toks;
}

TEST(InferenceSession, MatchesFunctionalQuantizedTransformer)
{
    model::ModelConfig cfg = tinyConfig();

    model::TinyTransformer ref(cfg);
    ref.rebuild(model::quantizedLinearFactory(
        [] {
            return std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer());
        },
        [] {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        }));

    std::vector<int> toks = randomTokens(12, cfg.vocab, 1);
    Matrix want = ref.forwardLogits(toks);
    for (SimdIsa isa : supportedSimdIsas()) {
        SCOPED_TRACE(std::string("isa=") + simdIsaName(isa));
        // The oracle above is the paper-pair pipeline, so the codec
        // must stay pinned regardless of any M2X_FORMAT override
        // (cross-format coverage lives in cross_format_parity_test).
        InferenceSession session(
            cfg, {.isa = isa, .codec = PackedCodec::ElemEm});
        EXPECT_EQ(session.simdIsa(), isa);
        // Model-level tolerance: tiny linear-output differences pass
        // through layernorm/softmax, so the vector-tier bound is a
        // little looser than the raw GEMM contract.
        Matrix got = session.forward(toks);
        if (isa == SimdIsa::Scalar)
            test::expectMatricesBitExact(got, want);
        else
            test::expectMatricesClose(got, want, 1e-5);
    }
}

TEST(InferenceSession, BatchedForwardAndTimings)
{
    model::ModelConfig cfg = tinyConfig();
    InferenceSession session(cfg, {.threads = 2});

    std::vector<std::vector<int>> batch = {
        randomTokens(8, cfg.vocab, 2),
        randomTokens(16, cfg.vocab, 3),
        randomTokens(4, cfg.vocab, 4),
    };
    std::vector<Matrix> logits = session.forwardBatch(batch);
    ASSERT_EQ(logits.size(), 3u);
    for (size_t s = 0; s < batch.size(); ++s) {
        EXPECT_EQ(logits[s].rows(), batch[s].size());
        EXPECT_EQ(logits[s].cols(), cfg.vocab);
    }

    // 7 linears per layer + head, each called once per sequence.
    const auto &stats = session.layerStats();
    ASSERT_EQ(stats.size(), 7u * cfg.nLayers + 1);
    uint64_t total_rows = 8 + 16 + 4;
    for (const auto &st : stats) {
        EXPECT_EQ(st->calls.load(), batch.size()) << st->name;
        EXPECT_EQ(st->rows.load(), total_rows) << st->name;
        EXPECT_GT(st->packedBytes, 0u) << st->name;
        EXPECT_LT(st->packedBytes, st->denseBytes) << st->name;
        // Every layer reports the tier it actually executes on,
        // including the demoted encode tier when it differs (e.g.
        // "avx512+avx2enc" — see encodeSimdIsa).
        SimdIsa gemm_isa = session.simdIsa();
        SimdIsa enc_isa = encodeSimdIsa(gemm_isa);
        std::string want_isa = simdIsaName(gemm_isa);
        if (enc_isa != gemm_isa)
            want_isa +=
                std::string("+") + simdIsaName(enc_isa) + "enc";
        EXPECT_EQ(st->isa, want_isa) << st->name;
        // The phase split is populated and consistent: quantize +
        // GEMM account for (most of, never more than) the layer's
        // wall time.
        EXPECT_GT(st->quantizeSeconds(), 0.0) << st->name;
        EXPECT_GT(st->gemmSeconds(), 0.0) << st->name;
        EXPECT_LE(st->quantizeSeconds() + st->gemmSeconds(),
                  st->seconds()) << st->name;
    }
    EXPECT_GT(session.linearSeconds(), 0.0);

    session.resetStats();
    EXPECT_EQ(session.linearSeconds(), 0.0);
    EXPECT_EQ(stats[0]->calls.load(), 0u);
    EXPECT_EQ(stats[0]->quantizeNanos.load(), 0u);
    EXPECT_EQ(stats[0]->gemmNanos.load(), 0u);
    // Weight accounting survives a stats reset.
    EXPECT_GT(session.packedWeightBytes(), 0u);
    EXPECT_LT(session.packedWeightBytes(),
              session.denseWeightBytes() / 7);
}

TEST(InferenceSession, ConcurrentForwardsStayCorrect)
{
    // The per-layer packing workspace is claimed by one forward at
    // a time; a concurrent forward on the same layer must fall back
    // to per-call scratch and still produce identical results
    // (packing is byte-exact and the GEMM is per-element
    // deterministic on every tier, whatever the interleaving).
    model::ModelConfig cfg = tinyConfig();
    InferenceSession session(cfg, {.threads = 1});
    std::vector<int> toks = randomTokens(6, cfg.vocab, 9);
    Matrix want = session.forward(toks);

    std::vector<Matrix> got(4);
    std::vector<std::thread> threads;
    for (size_t i = 0; i < got.size(); ++i)
        threads.emplace_back(
            [&, i] { got[i] = session.forward(toks); });
    for (auto &t : threads)
        t.join();
    for (const auto &g : got)
        test::expectMatricesBitExact(g, want);
}

TEST(InferenceSession, PackedFactoryPluggableWithoutStats)
{
    model::ModelConfig cfg = tinyConfig();
    model::TinyTransformer t(cfg);
    t.rebuild(packedLinearFactory());
    std::vector<int> toks = randomTokens(6, cfg.vocab, 5);
    Matrix logits = t.forwardLogits(toks);
    EXPECT_EQ(logits.rows(), 6u);
    EXPECT_EQ(logits.cols(), cfg.vocab);
}

} // anonymous namespace
} // namespace runtime
} // namespace m2x
