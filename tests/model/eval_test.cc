/**
 * @file
 * Tests for the evaluation harness: FP32 run is exactly anchored,
 * quantization produces positive KL, format ordering is sane, and
 * accuracy responds to logit perturbation the way the proxy intends.
 */

#include <gtest/gtest.h>

#include "model/eval.hh"
#include "model/zoo.hh"

namespace m2x {
namespace model {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig c = llama2_7b();
    c.dModel = 64;
    c.nHeads = 2;
    c.nLayers = 2;
    c.dFf = 96;
    c.vocab = 128;
    return c;
}

TEST(Evaluator, Fp32RunIsExactlyReference)
{
    Evaluator ev(tinyConfig(), 128, 32);
    EvalRun run = ev.run();
    EXPECT_DOUBLE_EQ(run.meanKl, 0.0);
    EXPECT_DOUBLE_EQ(run.logitMse, 0.0);
    EXPECT_DOUBLE_EQ(ev.perplexityFrom(run),
                     ev.config().fp16Perplexity);
}

TEST(Evaluator, QuantizationIncreasesKl)
{
    Evaluator ev(tinyConfig(), 128, 32);
    ev.model().rebuild(scheme("MXFP4").factory);
    EvalRun run = ev.run();
    EXPECT_GT(run.meanKl, 0.0);
    EXPECT_GT(ev.perplexityFrom(run), ev.config().fp16Perplexity);
}

TEST(Evaluator, M2xfpBeatsMxfp4)
{
    // The paper's core claim, at model scale.
    Evaluator ev(tinyConfig(), 192, 32);
    ev.model().rebuild(scheme("MXFP4").factory);
    double kl_mx = ev.run().meanKl;
    ev.model().rebuild(scheme("M2XFP").factory);
    double kl_m2 = ev.run().meanKl;
    EXPECT_LT(kl_m2, kl_mx);
}

TEST(Evaluator, Fp32AccuracyNearAnchor)
{
    Evaluator ev(tinyConfig(), 256, 32);
    EvalRun run = ev.run();
    double acc = ev.accuracyFrom(run, 75.0, 4, 42);
    // FP32 matches the reference, so accuracy = label-keep rate up
    // to sampling noise over 256 positions.
    EXPECT_NEAR(acc, 75.0, 8.0);
}

TEST(Evaluator, AccuracyDropsUnderHeavyQuantization)
{
    Evaluator ev(tinyConfig(), 256, 32);
    EvalRun ref_run = ev.run();
    double ref_acc = ev.accuracyFrom(ref_run, 75.0, 4, 42);
    ev.model().rebuild(scheme("SMX4").factory);
    EvalRun smx_run = ev.run();
    double smx_acc = ev.accuracyFrom(smx_run, 75.0, 4, 42);
    EXPECT_LT(smx_acc, ref_acc - 5.0);
}

TEST(Evaluator, DifferentTaskSeedsGiveDifferentTasks)
{
    Evaluator ev(tinyConfig(), 128, 32);
    ev.model().rebuild(scheme("MXFP4").factory);
    EvalRun run = ev.run();
    double a = ev.accuracyFrom(run, 70.0, 4, 1);
    double b = ev.accuracyFrom(run, 70.0, 4, 2);
    // Usually differ (different noise draws / labels).
    EXPECT_NE(a, b);
}

TEST(Evaluator, ReasoningModeUsesMoreChoices)
{
    Evaluator ev(tinyConfig(), 128, 32);
    ev.model().rebuild(scheme("MXFP4").factory);
    EvalRun run = ev.run();
    double acc8 = ev.accuracyFrom(run, 85.0, 8, 3);
    double acc2 = ev.accuracyFrom(run, 85.0, 2, 3);
    // Finer-grained candidate sets are strictly harder or equal.
    EXPECT_LE(acc8, acc2 + 10.0);
}

} // anonymous namespace
} // namespace model
} // namespace m2x
