/**
 * @file
 * Tests for the scheme registry: every named scheme builds and runs.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "model/eval.hh"
#include "model/zoo.hh"

namespace m2x {
namespace model {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig c = llama2_7b();
    c.dModel = 64;
    c.nHeads = 2;
    c.nLayers = 1;
    c.dFf = 96;
    c.vocab = 128;
    return c;
}

class ZooScheme : public ::testing::TestWithParam<const char *>
{};

TEST_P(ZooScheme, BuildsAndRuns)
{
    Evaluator ev(tinyConfig(), 64, 32);
    QuantScheme s = scheme(GetParam());
    ev.model().rebuild(s.factory);
    EvalRun run = ev.run();
    EXPECT_GE(run.meanKl, 0.0);
    EXPECT_TRUE(std::isfinite(run.meanKl));
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, ZooScheme,
    ::testing::Values("FP16", "FP4", "MXFP4", "NVFP4", "SMX4", "M2XFP",
                      "M2-NVFP4", "MX-ANT", "MX-M-ANT", "MX-OliVe",
                      "MicroScopiQ", "BlockDialect", "QuaRot",
                      "DuQuant", "MR-GPTQ", "MR-GPTQ-M2XFP",
                      "MXFP4-maxpreserve", "MXFP4-ceil", "M2XFP-rtne"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string n = info.param;
        for (auto &c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(Zoo, UnknownNameIsFatal)
{
    EXPECT_DEATH(scheme("no-such-format"), "unknown");
}

TEST(Zoo, MethodListsMatchPaperOrder)
{
    auto t3 = table3Methods();
    EXPECT_EQ(t3.front(), "FP16");
    EXPECT_EQ(t3.back(), "M2XFP");
    EXPECT_EQ(t3.size(), 8u);
    auto t2 = table2Methods();
    EXPECT_EQ(t2.size(), 5u);
}

TEST(Zoo, EbwAnnotations)
{
    EXPECT_DOUBLE_EQ(scheme("MXFP4").weightEbw, 4.25);
    EXPECT_DOUBLE_EQ(scheme("M2XFP").weightEbw, 4.5);
    EXPECT_DOUBLE_EQ(scheme("NVFP4").actEbw, 4.5);
    EXPECT_DOUBLE_EQ(scheme("M2-NVFP4").actEbw, 5.0);
}

} // anonymous namespace
} // namespace model
} // namespace m2x
