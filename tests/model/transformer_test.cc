/**
 * @file
 * Tests for the transformer substrate: determinism, shapes, FP32
 * reference behaviour, quantized rebuilds, calibration capture, and
 * the KV-quantization extension.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/m2xfp.hh"
#include "model/eval.hh"
#include "model/tensor_gen.hh"
#include "model/transformer.hh"
#include "mx/mxfp.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {
namespace {

ModelConfig
tinyConfig()
{
    ModelConfig c = llama2_7b();
    c.dModel = 64;
    c.nHeads = 2;
    c.nLayers = 2;
    c.dFf = 96;
    c.vocab = 128;
    return c;
}

std::vector<int>
someTokens(const ModelConfig &c, size_t n)
{
    Rng rng(99);
    return genTokens(rng, n, c.vocab);
}

TEST(Transformer, DeterministicConstruction)
{
    ModelConfig c = tinyConfig();
    TinyTransformer a(c), b(c);
    auto toks = someTokens(c, 16);
    Matrix la = a.forwardLogits(toks);
    Matrix lb = b.forwardLogits(toks);
    for (size_t i = 0; i < la.size(); ++i)
        ASSERT_FLOAT_EQ(la.flat()[i], lb.flat()[i]);
}

TEST(Transformer, LogitShape)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 12);
    Matrix logits = m.forwardLogits(toks);
    EXPECT_EQ(logits.rows(), 12u);
    EXPECT_EQ(logits.cols(), c.vocab);
    for (float v : logits.flat())
        ASSERT_TRUE(std::isfinite(v));
}

TEST(Transformer, CausalityHoldsExactly)
{
    // Changing a future token must not affect earlier logits.
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 10);
    Matrix base = m.forwardLogits(toks);
    auto toks2 = toks;
    toks2[9] = (toks2[9] + 1) % static_cast<int>(c.vocab);
    Matrix mod = m.forwardLogits(toks2);
    for (size_t t = 0; t < 9; ++t)
        for (size_t v = 0; v < c.vocab; ++v)
            ASSERT_FLOAT_EQ(base(t, v), mod(t, v)) << t;
    // And the last position does change.
    double diff = 0;
    for (size_t v = 0; v < c.vocab; ++v)
        diff += std::fabs(base(9, v) - mod(9, v));
    EXPECT_GT(diff, 1e-3);
}

TEST(Transformer, LinearNamesCoverAllLayers)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto names = m.linearNames();
    // 7 per block + head.
    EXPECT_EQ(names.size(), 7u * c.nLayers + 1);
    EXPECT_EQ(names.back(), "head");
}

TEST(Transformer, QuantizedRebuildChangesLogitsSlightly)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 16);
    Matrix ref = m.forwardLogits(toks);

    m.rebuild(quantizedLinearFactory(
        []() {
            return std::make_shared<MxfpQuantizer>(
                MxfpQuantizer::mxfp4());
        },
        []() {
            return std::make_shared<MxfpQuantizer>(
                MxfpQuantizer::mxfp4());
        }));
    Matrix q = m.forwardLogits(toks);
    double e = mse(ref.flat(), q.flat());
    EXPECT_GT(e, 0.0); // it did something
    // W4A4 on a 2-layer toy model is noisy; the logits must still be
    // positively correlated with the reference, not destroyed.
    EXPECT_GT(cosineSimilarity(ref.flat(), q.flat()), 0.25);
}

TEST(Transformer, RebuildBackToFp32Restores)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 8);
    Matrix ref = m.forwardLogits(toks);
    m.rebuild(quantizedLinearFactory(
        []() {
            return std::make_shared<MxfpQuantizer>(
                MxfpQuantizer::mxfp4());
        },
        nullptr));
    m.rebuild(fp32LinearFactory());
    Matrix back = m.forwardLogits(toks);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_FLOAT_EQ(ref.flat()[i], back.flat()[i]);
}

TEST(Transformer, CalibrationCapturesEveryLinear)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 8);
    m.collectCalibration(toks);
    // GPTQ factories receive non-null calibration for every slot:
    // verify via a probing factory.
    size_t with_calib = 0, total = 0;
    m.rebuild([&](const Matrix &w, const std::string &,
                  const Matrix *calib) -> std::unique_ptr<LinearOp> {
        ++total;
        if (calib) {
            ++with_calib;
            EXPECT_EQ(calib->cols(), w.cols());
            EXPECT_EQ(calib->rows(), 8u);
        }
        return std::make_unique<QuantizedLinear>(w, nullptr, nullptr);
    });
    EXPECT_EQ(total, 7u * c.nLayers + 1);
    EXPECT_EQ(with_calib, total);
}

TEST(Transformer, KvQuantizationPerturbsButPreservesShape)
{
    ModelConfig c = tinyConfig();
    TinyTransformer m(c);
    auto toks = someTokens(c, 16);
    Matrix ref = m.forwardLogits(toks);
    m.setKvQuantizers(
        []() {
            return std::make_shared<SgEmQuantizer>(
                makeM2xfpWeightQuantizer());
        },
        []() {
            return std::make_shared<ElemEmQuantizer>(
                makeM2xfpActivationQuantizer());
        });
    Matrix kv = m.forwardLogits(toks);
    EXPECT_TRUE(kv.sameShape(ref));
    double e = mse(ref.flat(), kv.flat());
    EXPECT_GT(e, 0.0);
    EXPECT_GT(cosineSimilarity(ref.flat(), kv.flat()), 0.9);
    // Disable again.
    m.setKvQuantizers(nullptr, nullptr);
    Matrix back = m.forwardLogits(toks);
    for (size_t i = 0; i < ref.size(); ++i)
        ASSERT_FLOAT_EQ(ref.flat()[i], back.flat()[i]);
}

TEST(TensorGen, WeightOutlierChannelsExist)
{
    Rng rng(5);
    ModelConfig c = llama3_8b();
    Matrix w = genWeight(rng, 64, 256, c, 1.0);
    // Column max/median ratio should show heavy channels.
    std::vector<float> colmax(256, 0.0f);
    for (size_t r = 0; r < 64; ++r)
        for (size_t col = 0; col < 256; ++col)
            colmax[col] =
                std::max(colmax[col], std::fabs(w(r, col)));
    std::sort(colmax.begin(), colmax.end());
    float median = colmax[128];
    float top = colmax[255];
    EXPECT_GT(top / median, 3.0f);
}

TEST(TensorGen, TokensInRange)
{
    Rng rng(6);
    auto toks = genTokens(rng, 500, 77);
    for (int t : toks) {
        ASSERT_GE(t, 0);
        ASSERT_LT(t, 77);
    }
}

TEST(TensorGen, MarkovTokensAreNotUniform)
{
    Rng rng(7);
    auto toks = genTokens(rng, 4000, 64);
    // Count bigram concentration: repeated (a -> b) transitions must
    // be far above the uniform expectation.
    std::vector<int> counts(64 * 64, 0);
    for (size_t i = 0; i + 1 < toks.size(); ++i)
        ++counts[toks[i] * 64 + toks[i + 1]];
    int mx = *std::max_element(counts.begin(), counts.end());
    EXPECT_GT(mx, 10); // uniform would give ~1
}

} // anonymous namespace
} // namespace model
} // namespace m2x
