/**
 * @file
 * Tests for the algorithm schemes: Hadamard rotation properties,
 * DuQuant permutation validity, GPTQ error compensation.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "gemm/gemm.hh"
#include "model/algorithms.hh"
#include "mx/fp16_scale.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double tail = 0.0)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(tail > 0 ? rng.studentT(tail)
                                        : rng.normal(0, 1));
    return m;
}

TEST(Hadamard, BlockFor)
{
    EXPECT_EQ(hadamardBlockFor(192), 64u);
    EXPECT_EQ(hadamardBlockFor(512), 64u); // capped at 64
    EXPECT_EQ(hadamardBlockFor(96), 32u);
    EXPECT_EQ(hadamardBlockFor(7), 1u);
}

TEST(Hadamard, RotationIsOrthogonal)
{
    // R = S*H is orthogonal: pairwise dot products between rows are
    // preserved, which is what makes (xR)(WR)^T == xW^T.
    Matrix m = randomMatrix(6, 64, 1);
    Matrix rot = m;
    hadamardRotateRows(rot, 64, 7);
    for (size_t a = 0; a < m.rows(); ++a) {
        for (size_t b = 0; b < m.rows(); ++b) {
            double d0 = 0, d1 = 0;
            for (size_t c = 0; c < m.cols(); ++c) {
                d0 += static_cast<double>(m(a, c)) * m(b, c);
                d1 += static_cast<double>(rot(a, c)) * rot(b, c);
            }
            EXPECT_NEAR(d1, d0, 1e-3 * std::fabs(d0) + 1e-3)
                << a << "," << b;
        }
    }
}

TEST(Hadamard, PreservesRowNorms)
{
    Matrix m = randomMatrix(8, 128, 2);
    Matrix orig = m;
    hadamardRotateRows(m, 32, 9);
    for (size_t r = 0; r < m.rows(); ++r) {
        double n0 = 0, n1 = 0;
        for (size_t c = 0; c < m.cols(); ++c) {
            n0 += static_cast<double>(orig(r, c)) * orig(r, c);
            n1 += static_cast<double>(m(r, c)) * m(r, c);
        }
        EXPECT_NEAR(n1, n0, 1e-3 * n0 + 1e-9);
    }
}

TEST(Hadamard, SmearsOutliers)
{
    // A single spike spreads across the block: max magnitude drops.
    Matrix m(1, 64, 0.0f);
    m(0, 13) = 64.0f;
    hadamardRotateRows(m, 64, 3);
    float mx = absMax(m.flat());
    EXPECT_NEAR(mx, 8.0f, 1e-3f); // 64 / sqrt(64)
}

TEST(RotatedLinear, ExactWithoutQuantizers)
{
    Matrix w = randomMatrix(16, 64, 4);
    Matrix x = randomMatrix(5, 64, 5);
    RotatedLinear rot(w, nullptr, nullptr, 11);
    QuantizedLinear plain(w, nullptr, nullptr);
    Matrix a = rot.forward(x);
    Matrix b = plain.forward(x);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a.flat()[i], b.flat()[i],
                    2e-3f * (std::fabs(b.flat()[i]) + 1.0f));
}

TEST(RotatedLinear, ImprovesInt4OnOutlierActivations)
{
    // QuaRot's raison d'etre: rotation + INT4 beats plain INT4 when
    // activations carry channel outliers.
    Matrix w = randomMatrix(32, 128, 6);
    Matrix x = randomMatrix(16, 128, 7);
    // Inject channel outliers.
    for (size_t r = 0; r < x.rows(); ++r) {
        x(r, 5) *= 30.0f;
        x(r, 77) *= 20.0f;
    }
    Matrix ref = matmulNt(x, w);

    auto int4 = []() {
        return std::make_shared<IntFp16ScaleQuantizer>(
            IntFp16ScaleQuantizer::int4());
    };
    QuantizedLinear plain(w, int4(), int4());
    RotatedLinear rot(w, int4(), int4(), 13);
    double e_plain = nmse(ref.flat(), plain.forward(x).flat());
    double e_rot = nmse(ref.flat(), rot.forward(x).flat());
    EXPECT_LT(e_rot, e_plain);
}

TEST(DuQuantLinear, ExactWithoutQuantizers)
{
    Matrix w = randomMatrix(16, 64, 8);
    Matrix x = randomMatrix(5, 64, 9);
    DuQuantLinear dq(w, nullptr, nullptr, nullptr, 15);
    QuantizedLinear plain(w, nullptr, nullptr);
    Matrix a = dq.forward(x);
    Matrix b = plain.forward(x);
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(a.flat()[i], b.flat()[i],
                    2e-3f * (std::fabs(b.flat()[i]) + 1.0f));
}

TEST(Gptq, CompensationBeatsDirectQuantization)
{
    // The defining GPTQ property: on the calibration distribution,
    // output error is lower than direct round-to-nearest.
    Matrix w = randomMatrix(48, 128, 10);
    Matrix calib = randomMatrix(64, 128, 11, 4.0);
    Matrix wq_gptq = gptqQuantizeWeight(w, calib, GptqGrid::Mxfp4);

    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    Matrix wq_rtn = quantizeRowsGrouped(w, mx);

    Matrix ref = matmulNt(calib, w);
    double e_gptq = nmse(ref.flat(), matmulNt(calib, wq_gptq).flat());
    double e_rtn = nmse(ref.flat(), matmulNt(calib, wq_rtn).flat());
    EXPECT_LT(e_gptq, e_rtn);
}

TEST(Gptq, M2xfpGridBeatsMxfp4Grid)
{
    Matrix w = randomMatrix(48, 128, 12);
    Matrix calib = randomMatrix(64, 128, 13, 4.0);
    Matrix q_mx = gptqQuantizeWeight(w, calib, GptqGrid::Mxfp4);
    Matrix q_m2 = gptqQuantizeWeight(w, calib, GptqGrid::M2xfpSgEm);
    Matrix ref = matmulNt(calib, w);
    double e_mx = nmse(ref.flat(), matmulNt(calib, q_mx).flat());
    double e_m2 = nmse(ref.flat(), matmulNt(calib, q_m2).flat());
    EXPECT_LT(e_m2, e_mx);
}

TEST(Gptq, OutputStaysOnGridScaleStructure)
{
    // GPTQ output must be *representable*: re-quantizing with plain
    // RTN on the same grid must be a no-op for MXFP4... only if the
    // scale rederives identically; verify values are finite and
    // bounded instead, plus determinism.
    Matrix w = randomMatrix(8, 64, 14);
    Matrix calib = randomMatrix(32, 64, 15);
    Matrix a = gptqQuantizeWeight(w, calib, GptqGrid::Mxfp4);
    Matrix b = gptqQuantizeWeight(w, calib, GptqGrid::Mxfp4);
    for (size_t i = 0; i < a.size(); ++i) {
        ASSERT_TRUE(std::isfinite(a.flat()[i]));
        ASSERT_FLOAT_EQ(a.flat()[i], b.flat()[i]);
    }
}

} // anonymous namespace
} // namespace model
} // namespace m2x
