/**
 * @file
 * Tests for the baseline accelerator quantizer models.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/baselines.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {
namespace {

std::vector<float>
gaussianGroup(Rng &rng, size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0, 1));
    return v;
}

TEST(ValueGrid, QuantizeMagNearest)
{
    ValueGrid g = gridFp4();
    EXPECT_FLOAT_EQ(g.quantizeMag(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(g.quantizeMag(2.4f), 2.0f);
    EXPECT_FLOAT_EQ(g.quantizeMag(2.6f), 3.0f);
    EXPECT_FLOAT_EQ(g.quantizeMag(100.0f), 6.0f);
}

TEST(ValueGrid, MaxPow2)
{
    EXPECT_FLOAT_EQ(gridFp4().maxPow2(), 4.0f);
    EXPECT_FLOAT_EQ(gridInt4().maxPow2(), 4.0f);
    EXPECT_FLOAT_EQ(gridPot4().maxPow2(), 8.0f);
}

TEST(MxAnt, AtLeastAsGoodAsMxfp4OnWeights)
{
    // ANT includes the FP4 grid, so type selection can only help.
    Rng rng(31);
    GridSelectQuantizer ant = GridSelectQuantizer::mxAnt();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double e_ant = 0, e_mx = 0;
    for (int t = 0; t < 200; ++t) {
        auto in = gaussianGroup(rng, 32);
        std::vector<float> out(32);
        ant.quantizeGroup(in, out);
        e_ant += mse(in, out);
        mx.quantizeGroup(in, out);
        e_mx += mse(in, out);
    }
    EXPECT_LE(e_ant, e_mx + 1e-9);
}

TEST(MxMAnt, AtLeastAsGoodAsAntPerGroup)
{
    // M-ANT's type set is a superset evaluated per group.
    Rng rng(32);
    GridSelectQuantizer ant = GridSelectQuantizer::mxAnt();
    GridSelectQuantizer mant = GridSelectQuantizer::mxMAnt();
    for (int t = 0; t < 100; ++t) {
        auto in = gaussianGroup(rng, 32);
        std::vector<float> oa(32), om(32);
        ant.quantizeGroup(in, oa);
        mant.quantizeGroup(in, om);
        EXPECT_LE(mse(in, om), mse(in, oa) + 1e-9) << t;
    }
}

TEST(BlockDialect, BeatsAntOnHeavyTails)
{
    Rng rng(33);
    GridSelectQuantizer ant = GridSelectQuantizer::mxAnt();
    GridSelectQuantizer bd = GridSelectQuantizer::blockDialect();
    double e_ant = 0, e_bd = 0;
    for (int t = 0; t < 300; ++t) {
        std::vector<float> in(32);
        for (auto &x : in)
            x = static_cast<float>(rng.studentT(3.0));
        std::vector<float> out(32);
        ant.quantizeGroup(in, out);
        e_ant += mse(in, out);
        bd.quantizeGroup(in, out);
        e_bd += mse(in, out);
    }
    EXPECT_LT(e_bd, e_ant);
}

TEST(Olive, VictimIsSacrificed)
{
    OliveQuantizer q;
    std::vector<float> in(32, 0.5f);
    in[6] = 30.0f; // outlier; victim is index 7
    in[7] = 0.45f;
    std::vector<float> out(32);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[7], 0.0f);
    // Outlier lands on the wide grid, well above the inlier range.
    EXPECT_GT(out[6], 8.0f);
}

TEST(Olive, HandlesOutlierBetterThanMxfp4ButHurtsVictim)
{
    OliveQuantizer olive;
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> in(32, 0.5f);
    in[0] = 30.0f;
    in[1] = 2.0f; // the victim: representable under MXFP4's scale
    std::vector<float> o1(32), o2(32);
    olive.quantizeGroup(in, o1);
    mx.quantizeGroup(in, o2);
    // Olive represents the outlier better...
    EXPECT_LT(std::fabs(o1[0] - in[0]), std::fabs(o2[0] - in[0]));
    // ...but kills its neighbour that MXFP4 kept exactly.
    EXPECT_FLOAT_EQ(o1[1], 0.0f);
    EXPECT_FLOAT_EQ(o2[1], 2.0f);
    EXPECT_GT(std::fabs(o1[1] - in[1]), std::fabs(o2[1] - in[1]));
}

TEST(MicroScopiQ, OutliersKeptPreciselySmallestPruned)
{
    MicroScopiQWeightQuantizer q;
    std::vector<float> in(32);
    for (size_t i = 0; i < 32; ++i)
        in[i] = 0.2f + 0.01f * static_cast<float>(i);
    in[3] = 25.0f;
    in[17] = -19.0f;
    std::vector<float> out(32);
    q.quantizeGroup(in, out);
    EXPECT_NEAR(out[3], 25.0f, 1.0f);
    EXPECT_NEAR(out[17], -19.0f, 1.0f);
    // The two smallest inliers were pruned.
    EXPECT_FLOAT_EQ(out[0], 0.0f);
    EXPECT_FLOAT_EQ(out[1], 0.0f);
}

TEST(MicroScopiQ, BetterThanMxfp4OnOutlierHeavyWeights)
{
    Rng rng(34);
    MicroScopiQWeightQuantizer msq;
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double e_msq = 0, e_mx = 0;
    for (int t = 0; t < 300; ++t) {
        std::vector<float> in(32);
        for (auto &x : in)
            x = static_cast<float>(rng.studentT(3.0));
        std::vector<float> out(32);
        msq.quantizeGroup(in, out);
        e_msq += mse(in, out);
        mx.quantizeGroup(in, out);
        e_mx += mse(in, out);
    }
    EXPECT_LT(e_msq, e_mx);
}

TEST(Baselines, ZeroGroupsHandled)
{
    std::vector<float> in(32, 0.0f), out(32, 1.0f);
    GridSelectQuantizer::mxAnt().quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
    std::fill(out.begin(), out.end(), 1.0f);
    OliveQuantizer().quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
    std::fill(out.begin(), out.end(), 1.0f);
    MicroScopiQWeightQuantizer().quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

} // anonymous namespace
} // namespace model
} // namespace m2x
