/**
 * @file
 * Tests for the accelerator simulator: workload shapes, tile math,
 * reuse strategies, fallback blending, and the Fig. 13 relative
 * ordering invariants.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "sim/accelerator.hh"
#include "sim/workload.hh"

namespace m2x {
namespace sim {
namespace {

TEST(Workload, Llama2ShapesAndMacs)
{
    auto ws = linearLayerGemms(llama2_7bDims(), 4096);
    // 7 projections + head.
    EXPECT_EQ(ws.size(), 8u);
    // qkv+o at d=4096: 4 * 4096^3 * 32 layers, mlp 3 * 4096*11008,
    // head once.
    double expect = 32.0 * 4096.0 *
                        (4 * 4096.0 * 4096 + 3 * 4096.0 * 11008) +
                    4096.0 * 4096 * 32000;
    EXPECT_NEAR(workloadMacs(ws) / expect, 1.0, 1e-9);
}

TEST(Workload, NonGatedModelsHaveTwoMlpMats)
{
    auto ws = linearLayerGemms(opt_6_7bDims(), 4096);
    EXPECT_EQ(ws.size(), 7u);
}

TEST(Workload, Llama3LargestModel)
{
    double m70 = workloadMacs(linearLayerGemms(llama3_70bDims()));
    double m8 = workloadMacs(linearLayerGemms(llama3_8bDims()));
    EXPECT_GT(m70, 5.0 * m8);
}

TEST(TileSim, ComputeBoundCyclesMatchTileMath)
{
    AcceleratorConfig cfg = m2xfpAccel();
    cfg.dramGBs = 1e9; // infinite bandwidth: pure compute
    cfg.pipelineOverhead = 0.0;
    TileSimulator sim(cfg);
    GemmShape g{"g", 1024, 1024, 1024, 1};
    SimStats s = sim.simulateGemm(g);
    double tiles = (1024.0 / 32) * (1024.0 / 32);
    EXPECT_NEAR(s.cycles, tiles * (1024 + 64), 1.0);
}

TEST(TileSim, MemoryBoundWhenBandwidthTiny)
{
    AcceleratorConfig cfg = m2xfpAccel();
    cfg.dramGBs = 0.001;
    TileSimulator sim(cfg);
    GemmShape g{"g", 256, 256, 256, 1};
    SimStats s = sim.simulateGemm(g);
    AcceleratorConfig fast = m2xfpAccel();
    fast.dramGBs = 1e9;
    SimStats sf = TileSimulator(fast).simulateGemm(g);
    EXPECT_GT(s.cycles, 100.0 * sf.cycles);
}

TEST(TileSim, LowerBitsMoveLessData)
{
    AcceleratorConfig a = m2xfpAccel();   // 4.5 bits
    AcceleratorConfig b = mxint8Reference(); // 8.25 bits, 4 passes
    GemmShape g{"g", 4096, 4096, 4096, 1};
    SimStats sa = TileSimulator(a).simulateGemm(g);
    SimStats sb = TileSimulator(b).simulateGemm(g);
    EXPECT_LT(sa.dramEnergyJ, sb.dramEnergyJ);
    EXPECT_LT(sa.cycles, sb.cycles);
}

TEST(TileSim, FallbackBlendingMonotonic)
{
    GemmShape g{"g", 2048, 2048, 2048, 1};
    double prev = 0.0;
    for (double f : {0.0, 0.25, 0.5, 0.75, 1.0}) {
        AcceleratorConfig cfg = m2xfpAccel();
        cfg.fallback8b = f;
        SimStats s = TileSimulator(cfg).simulateGemm(g);
        EXPECT_GT(s.cycles, prev);
        prev = s.cycles;
    }
}

TEST(TileSim, RepeatScalesLinearly)
{
    TileSimulator sim(m2xfpAccel());
    GemmShape one{"g", 512, 512, 512, 1};
    GemmShape eight{"g", 512, 512, 512, 8};
    SimStats s1 = sim.simulateGemm(one);
    SimStats s8 = sim.simulateGemm(eight);
    EXPECT_NEAR(s8.cycles / s1.cycles, 8.0, 1e-6);
    EXPECT_NEAR(s8.totalEnergyJ() / s1.totalEnergyJ(), 8.0, 1e-6);
}

TEST(Fig13Invariants, M2xfpFastestAndMostEfficient)
{
    auto workload = linearLayerGemms(llama2_7bDims());
    SimStats m2 =
        TileSimulator(m2xfpAccel()).simulateWorkload(workload);
    for (const auto &cfg : fig13Accelerators()) {
        if (cfg.name == "M2XFP")
            continue;
        SimStats s = TileSimulator(cfg).simulateWorkload(workload);
        EXPECT_LT(m2.seconds, s.seconds) << cfg.name;
        EXPECT_LT(m2.totalEnergyJ(), s.totalEnergyJ()) << cfg.name;
    }
}

TEST(Fig13Invariants, OliveSlowestDueToFallback)
{
    auto workload = linearLayerGemms(llama3_8bDims());
    SimStats olive =
        TileSimulator(mxOliveAccel()).simulateWorkload(workload);
    for (const auto &cfg : fig13Accelerators()) {
        if (cfg.name == "MX-OliVe")
            continue;
        SimStats s = TileSimulator(cfg).simulateWorkload(workload);
        EXPECT_GE(olive.seconds, s.seconds) << cfg.name;
    }
}

TEST(Fig13Invariants, SpeedupOverMicroScopiqNearPaper)
{
    // Paper: average 1.91x speedup and 1.75x energy gain vs
    // MicroScopiQ. Allow a generous band — the shape matters.
    double sp = 0, en = 0;
    int n = 0;
    for (const auto &dims : fig13Models()) {
        auto w = linearLayerGemms(dims);
        SimStats m2 = TileSimulator(m2xfpAccel()).simulateWorkload(w);
        SimStats ms =
            TileSimulator(microScopiqAccel()).simulateWorkload(w);
        sp += ms.seconds / m2.seconds;
        en += ms.totalEnergyJ() / m2.totalEnergyJ();
        ++n;
    }
    sp /= n;
    en /= n;
    EXPECT_GT(sp, 1.4);
    EXPECT_LT(sp, 2.6);
    EXPECT_GT(en, 1.3);
    EXPECT_LT(en, 2.4);
}

TEST(Fig13Invariants, AllNormalizedBelowReference)
{
    // Every 4-bit accelerator beats the W8A8 reference.
    auto w = linearLayerGemms(mistral_7bDims());
    SimStats ref =
        TileSimulator(mxint8Reference()).simulateWorkload(w);
    for (const auto &cfg : fig13Accelerators()) {
        SimStats s = TileSimulator(cfg).simulateWorkload(w);
        EXPECT_LT(s.seconds, ref.seconds) << cfg.name;
        EXPECT_LT(s.totalEnergyJ(), ref.totalEnergyJ()) << cfg.name;
    }
}

TEST(TileSim, EnergyComponentsAllPositive)
{
    auto w = linearLayerGemms(falcon_7bDims());
    SimStats s = TileSimulator(m2xfpAccel()).simulateWorkload(w);
    EXPECT_GT(s.coreEnergyJ, 0.0);
    EXPECT_GT(s.bufferEnergyJ, 0.0);
    EXPECT_GT(s.dramEnergyJ, 0.0);
    EXPECT_GT(s.staticEnergyJ, 0.0);
}

} // anonymous namespace
} // namespace sim
} // namespace m2x
