/**
 * @file
 * Unit tests for the symmetric integer codecs.
 */

#include <gtest/gtest.h>

#include "formats/intcodec.hh"

namespace m2x {
namespace {

TEST(RoundNearestEven, HalfwayCases)
{
    EXPECT_EQ(roundNearestEven(0.5), 0);
    EXPECT_EQ(roundNearestEven(1.5), 2);
    EXPECT_EQ(roundNearestEven(2.5), 2);
    EXPECT_EQ(roundNearestEven(3.5), 4);
    EXPECT_EQ(roundNearestEven(-0.5), 0);
    EXPECT_EQ(roundNearestEven(-1.5), -2);
    EXPECT_EQ(roundNearestEven(-2.5), -2);
}

TEST(RoundNearestEven, NonHalfway)
{
    EXPECT_EQ(roundNearestEven(1.49), 1);
    EXPECT_EQ(roundNearestEven(1.51), 2);
    EXPECT_EQ(roundNearestEven(-1.49), -1);
    EXPECT_EQ(roundNearestEven(-1.51), -2);
    EXPECT_EQ(roundNearestEven(0.0), 0);
}

TEST(IntSym, Int4Range)
{
    IntSym q(4);
    EXPECT_EQ(q.maxCode(), 7);
    EXPECT_EQ(q.encode(100.0f), 7);
    EXPECT_EQ(q.encode(-100.0f), -7);
    EXPECT_EQ(q.encode(-8.0f), -7); // symmetric: -8 unused
}

TEST(IntSym, Int8Range)
{
    IntSym q(8);
    EXPECT_EQ(q.maxCode(), 127);
    EXPECT_EQ(q.encode(127.4f), 127);
    EXPECT_EQ(q.encode(-127.6f), -127);
}

TEST(IntSym, QuantizeGridValues)
{
    IntSym q(4);
    for (int i = -7; i <= 7; ++i)
        EXPECT_FLOAT_EQ(q.quantize(static_cast<float>(i)),
                        static_cast<float>(i));
}

TEST(IntSym, TiesToEven)
{
    IntSym q(4);
    EXPECT_FLOAT_EQ(q.quantize(2.5f), 2.0f);
    EXPECT_FLOAT_EQ(q.quantize(3.5f), 4.0f);
}

} // anonymous namespace
} // namespace m2x
