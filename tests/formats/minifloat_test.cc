/**
 * @file
 * Exhaustive and value-table tests for the minifloat codec. FP4 E2M1
 * and FP6 E2M3 grids are the numeric foundation of M2XFP (Alg. 1),
 * so their value tables are pinned here explicitly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "formats/minifloat.hh"

namespace m2x {
namespace {

TEST(Fp4E2m1, ValueTable)
{
    const Minifloat &f = Minifloat::fp4e2m1();
    // Magnitude codes 0..7 -> 0, .5, 1, 1.5, 2, 3, 4, 6.
    std::vector<float> expect{0.0f, 0.5f, 1.0f, 1.5f,
                              2.0f, 3.0f, 4.0f, 6.0f};
    ASSERT_EQ(f.positiveValues().size(), 8u);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_FLOAT_EQ(f.positiveValues()[i], expect[i]) << i;
    EXPECT_FLOAT_EQ(f.maxValue(), 6.0f);  // paper's M
    EXPECT_FLOAT_EQ(f.maxPow2(), 4.0f);   // paper's P
    EXPECT_FLOAT_EQ(f.minSubnormal(), 0.5f);
}

TEST(Fp6E2m3, ValueTableSpotChecks)
{
    const Minifloat &f = Minifloat::fp6e2m3();
    ASSERT_EQ(f.positiveValues().size(), 32u);
    // Subnormals: 0.125 steps.
    EXPECT_FLOAT_EQ(f.positiveValues()[1], 0.125f);
    EXPECT_FLOAT_EQ(f.positiveValues()[7], 0.875f);
    // Normals at each binade.
    EXPECT_FLOAT_EQ(f.positiveValues()[8], 1.0f);
    EXPECT_FLOAT_EQ(f.positiveValues()[16], 2.0f);
    EXPECT_FLOAT_EQ(f.positiveValues()[22], 3.5f);  // Fig. 8 candidates
    EXPECT_FLOAT_EQ(f.positiveValues()[23], 3.75f);
    EXPECT_FLOAT_EQ(f.positiveValues()[24], 4.0f);
    EXPECT_FLOAT_EQ(f.positiveValues()[25], 4.5f);
    EXPECT_FLOAT_EQ(f.positiveValues()[26], 5.0f);
    EXPECT_FLOAT_EQ(f.maxValue(), 7.5f);
    EXPECT_FLOAT_EQ(f.maxPow2(), 4.0f);
}

TEST(Fp6E2m3, SharesExponentRangeWithFp4)
{
    // Same P means the same shared scale works for FP4 and the FP6
    // re-rounding in Alg. 1.
    EXPECT_FLOAT_EQ(Minifloat::fp6e2m3().maxPow2(),
                    Minifloat::fp4e2m1().maxPow2());
}

TEST(Fp8E4m3, KnownLimits)
{
    const Minifloat &f = Minifloat::fp8e4m3();
    EXPECT_FLOAT_EQ(f.maxValue(), 448.0f);
    EXPECT_FLOAT_EQ(f.maxPow2(), 256.0f);
    // Smallest subnormal 2^-9.
    EXPECT_FLOAT_EQ(f.minSubnormal(), std::exp2(-9.0f));
}

TEST(Fp8E5m2, KnownLimits)
{
    const Minifloat &f = Minifloat::fp8e5m2();
    EXPECT_FLOAT_EQ(f.maxValue(), 57344.0f);
    EXPECT_FLOAT_EQ(f.minSubnormal(), std::exp2(-16.0f));
}

class MinifloatRoundTrip
    : public ::testing::TestWithParam<const Minifloat *>
{};

TEST_P(MinifloatRoundTrip, AllCodesRoundTrip)
{
    const Minifloat &f = *GetParam();
    for (uint32_t code = 0; code < f.codeCount(); ++code) {
        float v = f.decode(code);
        if (!std::isfinite(v))
            continue;
        uint32_t back = f.encode(v);
        EXPECT_FLOAT_EQ(f.decode(back), v)
            << f.name() << " code " << code;
    }
}

TEST_P(MinifloatRoundTrip, MagnitudeTableNondecreasing)
{
    const Minifloat &f = *GetParam();
    const auto &vals = f.positiveValues();
    for (size_t i = 1; i < vals.size(); ++i) {
        if (!std::isfinite(vals[i]) || !std::isfinite(vals[i - 1]))
            continue;
        EXPECT_LE(vals[i - 1], vals[i]) << f.name() << " @ " << i;
    }
}

TEST_P(MinifloatRoundTrip, EncodeIsNearest)
{
    const Minifloat &f = *GetParam();
    // Probe a dense sweep; the encoded value must never be farther
    // than any other representable value.
    for (int i = -300; i <= 300; ++i) {
        float x = static_cast<float>(i) * 0.021f * f.maxValue() / 6.0f;
        float q = f.quantize(x);
        float err = std::fabs(q - x);
        for (float v : f.positiveValues()) {
            if (!std::isfinite(v))
                continue;
            EXPECT_LE(err, std::fabs(v - x) + 1e-6f)
                << f.name() << " x=" << x;
            EXPECT_LE(err, std::fabs(-v - x) + 1e-6f)
                << f.name() << " x=" << x;
        }
    }
}

TEST_P(MinifloatRoundTrip, SaturatesAtMax)
{
    const Minifloat &f = *GetParam();
    EXPECT_FLOAT_EQ(f.quantize(f.maxValue() * 100.0f), f.maxValue());
    EXPECT_FLOAT_EQ(f.quantize(-f.maxValue() * 100.0f), -f.maxValue());
}

INSTANTIATE_TEST_SUITE_P(
    AllFormats, MinifloatRoundTrip,
    ::testing::Values(&Minifloat::fp4e2m1(), &Minifloat::fp6e2m3(),
                      &Minifloat::fp6e3m2(), &Minifloat::fp8e4m3(),
                      &Minifloat::fp8e5m2()),
    [](const ::testing::TestParamInfo<const Minifloat *> &info) {
        return info.param->name();
    });

TEST(Fp4E2m1, RoundToNearestEvenTies)
{
    const Minifloat &f = Minifloat::fp4e2m1();
    // 2.5 is midway between 2 (mantissa 0) and 3 (mantissa 1): even
    // mantissa wins.
    EXPECT_FLOAT_EQ(f.quantize(2.5f), 2.0f);
    // 5.0 is midway between 4 (m=0) and 6 (m=1): 4 wins.
    EXPECT_FLOAT_EQ(f.quantize(5.0f), 4.0f);
    // 3.5 is midway between 3 (m=1) and 4 (m=0): 4 wins — this makes
    // the FP4-quantizes-to-4 interval [3.5, 5] (§4.4.1).
    EXPECT_FLOAT_EQ(f.quantize(3.5f), 4.0f);
    // 0.25 is midway between 0 and 0.5: 0 wins (even code).
    EXPECT_FLOAT_EQ(f.quantize(0.25f), 0.0f);
    // 1.25 midway between 1 (m=0) and 1.5 (m=1): 1 wins.
    EXPECT_FLOAT_EQ(f.quantize(1.25f), 1.0f);
}

TEST(Fp4E2m1, NonTieRounding)
{
    const Minifloat &f = Minifloat::fp4e2m1();
    EXPECT_FLOAT_EQ(f.quantize(2.4f), 2.0f);
    EXPECT_FLOAT_EQ(f.quantize(2.6f), 3.0f);
    EXPECT_FLOAT_EQ(f.quantize(4.9f), 4.0f);
    EXPECT_FLOAT_EQ(f.quantize(5.1f), 6.0f);
    EXPECT_FLOAT_EQ(f.quantize(-2.6f), -3.0f);
}

TEST(Fp4E2m1, SignHandling)
{
    const Minifloat &f = Minifloat::fp4e2m1();
    for (float v : {0.5f, 1.0f, 3.0f, 6.0f})
        EXPECT_FLOAT_EQ(f.quantize(-v), -f.quantize(v));
    // Negative zero keeps its sign bit but compares equal to zero.
    uint32_t nz = f.encode(-0.0f);
    EXPECT_EQ(nz >> 3, 1u);
    EXPECT_FLOAT_EQ(f.decode(nz), -0.0f);
}

TEST(Minifloat, NanEncodesToMax)
{
    const Minifloat &f = Minifloat::fp4e2m1();
    EXPECT_FLOAT_EQ(f.quantize(std::nanf("")), 6.0f);
}

TEST(Minifloat, QuantizeIdempotent)
{
    for (const Minifloat *f :
         {&Minifloat::fp4e2m1(), &Minifloat::fp6e2m3(),
          &Minifloat::fp8e4m3()}) {
        for (int i = -50; i < 50; ++i) {
            float x = static_cast<float>(i) * 0.13f;
            float q1 = f->quantize(x);
            EXPECT_FLOAT_EQ(f->quantize(q1), q1) << f->name();
        }
    }
}

TEST(Fp6E3m2, ValueSpotChecks)
{
    const Minifloat &f = Minifloat::fp6e3m2();
    // bias 3: subnormal step 2^-2 * 2^-2 = 2^-4.
    EXPECT_FLOAT_EQ(f.minSubnormal(), 0.0625f);
    EXPECT_FLOAT_EQ(f.maxValue(), 28.0f);
    EXPECT_FLOAT_EQ(f.maxPow2(), 16.0f);
}

} // anonymous namespace
} // namespace m2x
