/**
 * @file
 * Unit tests for the E8M0 power-of-two scale type.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "formats/e8m0.hh"

namespace m2x {
namespace {

TEST(E8m0, ValueIsPowerOfTwo)
{
    for (int e = -20; e <= 20; ++e) {
        ScaleE8m0 s = ScaleE8m0::fromExponent(e);
        EXPECT_FLOAT_EQ(s.value(), std::exp2(static_cast<float>(e)));
        EXPECT_FLOAT_EQ(s.inverse() * s.value(), 1.0f);
    }
}

TEST(E8m0, CodeRoundTrip)
{
    for (int e = ScaleE8m0::minExp; e <= ScaleE8m0::maxExp; ++e) {
        ScaleE8m0 s = ScaleE8m0::fromExponent(e);
        ScaleE8m0 back = ScaleE8m0::fromCode(s.code());
        EXPECT_EQ(back.exponent(), e);
    }
}

TEST(E8m0, ClampsAtRangeLimits)
{
    EXPECT_EQ(ScaleE8m0::fromExponent(1000).exponent(), 127);
    EXPECT_EQ(ScaleE8m0::fromExponent(-1000).exponent(), -127);
}

TEST(E8m0, ShiftedSaturates)
{
    ScaleE8m0 top = ScaleE8m0::fromExponent(127);
    EXPECT_EQ(top.shifted(1).exponent(), 127);
    EXPECT_EQ(top.shifted(-1).exponent(), 126);
}

TEST(E8m0, DefaultIsIdentity)
{
    ScaleE8m0 s;
    EXPECT_FLOAT_EQ(s.value(), 1.0f);
    EXPECT_EQ(s.code(), 127);
}

TEST(E8m0, EqualityByExponent)
{
    EXPECT_TRUE(ScaleE8m0::fromExponent(3) == ScaleE8m0::fromExponent(3));
    EXPECT_FALSE(ScaleE8m0::fromExponent(3) ==
                 ScaleE8m0::fromExponent(4));
}

} // anonymous namespace
} // namespace m2x
