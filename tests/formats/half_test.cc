/**
 * @file
 * Unit tests for the software FP16/BF16 conversions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "formats/half.hh"

namespace m2x {
namespace {

TEST(Half, ExactSmallValuesRoundTrip)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 1.5f, 2.0f, 100.0f,
                    -0.25f, 6.0f, 448.0f, 0.0009765625f}) {
        EXPECT_FLOAT_EQ(quantizeToHalf(v), v) << v;
    }
}

TEST(Half, KnownBitPatterns)
{
    EXPECT_EQ(floatToHalfBits(1.0f), 0x3c00);
    EXPECT_EQ(floatToHalfBits(-2.0f), 0xc000);
    EXPECT_EQ(floatToHalfBits(0.0f), 0x0000);
    EXPECT_EQ(floatToHalfBits(65504.0f), 0x7bff); // max half
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x3c00), 1.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x7bff), 65504.0f);
    EXPECT_FLOAT_EQ(halfBitsToFloat(0x0001), std::exp2(-24.0f));
}

TEST(Half, RoundToNearestEven)
{
    // 1 + 2^-11 is exactly midway between 1.0 and the next half
    // (1 + 2^-10): RNE keeps 1.0 (even mantissa).
    float mid = 1.0f + std::exp2(-11.0f);
    EXPECT_FLOAT_EQ(quantizeToHalf(mid), 1.0f);
    // 1 + 3*2^-11 is midway to the next pair: rounds up to 1 + 2^-9
    // ... actually to 1 + 2*2^-10 (even).
    float mid2 = 1.0f + 3.0f * std::exp2(-11.0f);
    EXPECT_FLOAT_EQ(quantizeToHalf(mid2), 1.0f + 2.0f * std::exp2(-10.0f));
}

TEST(Half, OverflowToInfinity)
{
    EXPECT_TRUE(std::isinf(quantizeToHalf(1e6f)));
    EXPECT_TRUE(std::isinf(quantizeToHalf(-1e6f)));
}

TEST(Half, SubnormalsRepresentable)
{
    float sub = std::exp2(-24.0f); // smallest positive half
    EXPECT_FLOAT_EQ(quantizeToHalf(sub), sub);
    float below = sub * 0.25f;
    EXPECT_FLOAT_EQ(quantizeToHalf(below), 0.0f);
}

TEST(Half, NanPropagates)
{
    EXPECT_TRUE(std::isnan(quantizeToHalf(std::nanf(""))));
}

TEST(Half, MonotonicOverSweep)
{
    float prev = -70000.0f;
    for (int i = -1000; i <= 1000; ++i) {
        float x = static_cast<float>(i) * 7.3f;
        float q = quantizeToHalf(x);
        EXPECT_GE(q, quantizeToHalf(prev) - 1e-3f);
        prev = x;
    }
}

TEST(Bf16, RoundTripExactValues)
{
    for (float v : {0.0f, 1.0f, -1.0f, 0.5f, 2.0f, 128.0f})
        EXPECT_FLOAT_EQ(quantizeToBf16(v), v) << v;
}

TEST(Bf16, TruncatesMantissaWithRounding)
{
    // bf16 has 8 v bits: 1 + 2^-9 rounds to 1.0.
    EXPECT_FLOAT_EQ(quantizeToBf16(1.0f + std::exp2(-9.0f)), 1.0f);
    EXPECT_FLOAT_EQ(quantizeToBf16(1.0f + 3.0f * std::exp2(-9.0f)),
                    1.0f + std::exp2(-7.0f));
}

TEST(Bf16, NanPreserved)
{
    EXPECT_TRUE(std::isnan(quantizeToBf16(std::nanf(""))));
}

TEST(Bf16, LargeRangePreserved)
{
    // bf16 keeps float's exponent range: huge values survive with
    // <= 0.4% relative rounding error instead of overflowing.
    float q = quantizeToBf16(1e30f);
    EXPECT_FALSE(std::isinf(q));
    EXPECT_NEAR(q / 1e30f, 1.0f, 0.004f);
    EXPECT_FALSE(std::isinf(quantizeToBf16(1e38f)));
}

} // anonymous namespace
} // namespace m2x
