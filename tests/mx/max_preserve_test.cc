/**
 * @file
 * Tests for the max-value-preservation wrapper (Fig. 3 motivation).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "mx/max_preserve.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

std::unique_ptr<GroupQuantizer>
mxfp4Ptr()
{
    return std::make_unique<MxfpQuantizer>(MxfpQuantizer::mxfp4());
}

TEST(MaxPreserve, MaxSurvivesInFp16)
{
    MaxPreserveQuantizer q(mxfp4Ptr());
    std::vector<float> in(32, 0.3f);
    in[7] = 7.7f; // would clip to 6 * 2^0 under floor scaling
    std::vector<float> out(32);
    q.quantizeGroup(in, out);
    EXPECT_NEAR(out[7], 7.7f, 0.01f);
}

TEST(MaxPreserve, DrasticallyReducesGroupError)
{
    // The Fig. 3 effect: preserving the block max in FP16 recovers
    // most of MXFP4's loss.
    Rng rng(17);
    MaxPreserveQuantizer mp(mxfp4Ptr());
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double e_mp = 0, e_mx = 0;
    for (int t = 0; t < 400; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(3.0));
        std::vector<float> out(32);
        mp.quantizeGroup(in, out);
        e_mp += mse(in, out);
        mx.quantizeGroup(in, out);
        e_mx += mse(in, out);
    }
    EXPECT_LT(e_mp, e_mx * 0.75);
}

TEST(MaxPreserve, RestQuantizedUnderSecondMaxScale)
{
    // The preserved max is out-of-band: the remaining elements are
    // quantized with the scale derived from the SECOND max, gaining
    // resolution over plain MXFP4.
    MaxPreserveQuantizer mp(mxfp4Ptr());
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> in{40.0f, 1.3f, -2.2f, 0.7f};
    std::vector<float> a(4), b(4);
    mp.quantizeGroup(in, a);
    mx.quantizeGroup(in, b);
    // Under MXFP4 the 40 forces scale 2^3: small values are crushed.
    EXPECT_FLOAT_EQ(b[3], 0.0f);
    // With the max preserved, scale comes from 2.2: all survive.
    EXPECT_NEAR(a[1], 1.3f, 0.26f);
    EXPECT_NEAR(a[2], -2.2f, 0.26f);
    EXPECT_NEAR(a[3], 0.7f, 0.26f);
    EXPECT_NEAR(a[0], 40.0f, 0.01f);
}

TEST(MaxPreserve, AccountsMetadataInEbw)
{
    MaxPreserveQuantizer mp(mxfp4Ptr());
    // 16-bit value + 5-bit index per group of 32 on top of 4.25.
    EXPECT_NEAR(mp.ebw(), 4.25 + 21.0 / 32.0, 1e-9);
}

TEST(MaxPreserve, NameReflectsWrapper)
{
    MaxPreserveQuantizer mp(mxfp4Ptr());
    EXPECT_NE(mp.name().find("+maxfp16"), std::string::npos);
}

} // anonymous namespace
} // namespace m2x
