/**
 * @file
 * Tests for the SMX (shared micro-exponent) and MSFP (block floating
 * point) variants, including the SMX pathology the paper leans on:
 * pairing a large and a small element destroys the small one.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mx/msfp.hh"
#include "mx/mxfp.hh"
#include "mx/smx.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(Smx4, Ebw)
{
    // 3 bits/elem + 1 micro-exp bit per pair + 8 scale bits per 16:
    // 3 + 0.5 + 0.5 = 4.
    EXPECT_DOUBLE_EQ(SmxQuantizer::smx4().ebw(), 4.0);
}

TEST(Smx4, UniformPairQuantizesReasonably)
{
    SmxQuantizer q = SmxQuantizer::smx4();
    std::vector<float> in(16, 0.75f);
    std::vector<float> out(16);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_NEAR(v, 0.75f, 0.15f);
}

TEST(Smx4, MixedMagnitudePairLosesSmallElement)
{
    // Fig. 3's diagnosis: a pair (big, small) forces the shared
    // micro-exponent high; with only 2 mantissa bits the small
    // element collapses.
    SmxQuantizer q = SmxQuantizer::smx4();
    std::vector<float> in(16, 0.0f);
    in[0] = 1.0f;   // pair 0: big
    in[1] = 0.11f;  //         small -> crushed
    in[2] = 0.11f;  // pair 1: small alone -> fine(r)
    std::vector<float> out(16);
    q.quantizeGroup(in, out);
    double err_paired = std::fabs(out[1] - in[1]);
    double err_alone = std::fabs(out[2] - in[2]);
    EXPECT_GE(err_paired, err_alone);
}

TEST(Smx4, WorseThanMxfp4OnGaussian)
{
    // The headline Fig. 3 ordering: SMX4 << MXFP4 in fidelity.
    Rng rng(13);
    SmxQuantizer smx = SmxQuantizer::smx4();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double smx_err = 0, mx_err = 0;
    for (int t = 0; t < 300; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.normal(0, 1));
        std::vector<float> out(32);
        mx.quantizeGroup(in, out);
        mx_err += mse(in, out);
        std::vector<float> o16(16);
        for (int h = 0; h < 2; ++h) {
            std::span<const float> half(in.data() + 16 * h, 16);
            smx.quantizeGroup(half, o16);
            smx_err += mse(half, o16) / 2;
        }
    }
    EXPECT_GT(smx_err, mx_err);
}

TEST(Msfp, WidthsControlFidelity)
{
    Rng rng(14);
    MsfpQuantizer m12 = MsfpQuantizer::msfp12();
    MsfpQuantizer m16 = MsfpQuantizer::msfp16();
    double e12 = 0, e16 = 0;
    for (int t = 0; t < 200; ++t) {
        std::vector<float> in(16);
        for (auto &v : in)
            v = static_cast<float>(rng.normal(0, 1));
        std::vector<float> out(16);
        m12.quantizeGroup(in, out);
        e12 += mse(in, out);
        m16.quantizeGroup(in, out);
        e16 += mse(in, out);
    }
    EXPECT_LT(e16, e12 * 0.05); // 4 extra mantissa bits >= 24 dB
}

TEST(Msfp, Ebw)
{
    EXPECT_DOUBLE_EQ(MsfpQuantizer::msfp12().ebw(), 4.5);
    EXPECT_DOUBLE_EQ(MsfpQuantizer::msfp16().ebw(), 8.5);
}

TEST(Msfp, ZeroGroup)
{
    MsfpQuantizer q = MsfpQuantizer::msfp12();
    std::vector<float> in(16, 0.0f), out(16, 3.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Smx4, ZeroGroup)
{
    SmxQuantizer q = SmxQuantizer::smx4();
    std::vector<float> in(16, 0.0f), out(16, 3.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

} // anonymous namespace
} // namespace m2x
