/**
 * @file
 * Unit tests for the MXFP / MXINT container formats, including the
 * Fig. 2 phenomenon: E8M0 scaling misaligns the block maximum while
 * FP16 scaling maps it tightly.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mx/fp16_scale.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

std::vector<float>
randomGroup(Rng &rng, size_t n, double scale = 1.0)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, scale));
    return v;
}

TEST(Mxfp4, ExactGridValuesRoundTrip)
{
    MxfpQuantizer q = MxfpQuantizer::mxfp4();
    // A group whose max is exactly 4 * 2^0: every FP4 grid point
    // (x1 scale) must survive quantization unchanged.
    std::vector<float> in{4.0f, -3.0f, 2.0f,  1.5f, 1.0f, 0.5f,
                          0.0f, -0.5f, -1.0f, 3.0f, -4.0f};
    std::vector<float> out(in.size());
    q.quantizeGroup(in, out);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]) << i;
}

TEST(Mxfp4, ScaleFollowsBlockMax)
{
    MxfpQuantizer q = MxfpQuantizer::mxfp4();
    std::vector<float> in{100.0f, 1.0f, 0.5f};
    EXPECT_EQ(q.sharedScale(in).exponent(),
              4); // floor(log2(100/4)) = 4
}

TEST(Mxfp4, MaxMisalignmentErrorVsFp16Scale)
{
    // Fig. 2: when the block max falls between exponent bins, E8M0
    // rounding error on the max dominates; FP16 scaling avoids it.
    Rng rng(42);
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    Fp16ScaleQuantizer fp16s = Fp16ScaleQuantizer::fp4();
    double mx_err = 0.0, fp16_err = 0.0;
    int trials = 500;
    for (int t = 0; t < trials; ++t) {
        auto in = randomGroup(rng, 32);
        std::vector<float> out(32);
        mx.quantizeGroup(in, out);
        mx_err += mse(in, out);
        fp16s.quantizeGroup(in, out);
        fp16_err += mse(in, out);
    }
    EXPECT_GT(mx_err, fp16_err * 1.2);
}

TEST(Mxfp4, ZerosStayZero)
{
    MxfpQuantizer q = MxfpQuantizer::mxfp4();
    std::vector<float> in(32, 0.0f), out(32, 1.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(Mxfp4, Ebw)
{
    EXPECT_DOUBLE_EQ(MxfpQuantizer::mxfp4().ebw(), 4.25);
    EXPECT_DOUBLE_EQ(MxfpQuantizer::mxfp8e4m3().ebw(), 8.25);
}

TEST(Mxfp6, MoreAccurateThanMxfp4)
{
    Rng rng(7);
    MxfpQuantizer q4 = MxfpQuantizer::mxfp4();
    MxfpQuantizer q6 = MxfpQuantizer::mxfp6e2m3();
    double e4 = 0, e6 = 0;
    for (int t = 0; t < 200; ++t) {
        auto in = randomGroup(rng, 32);
        std::vector<float> o4(32), o6(32);
        q4.quantizeGroup(in, o4);
        q6.quantizeGroup(in, o6);
        e4 += mse(in, o4);
        e6 += mse(in, o6);
    }
    EXPECT_LT(e6, e4 * 0.5);
}

TEST(Mxfp8, NearLosslessOnSmoothData)
{
    Rng rng(8);
    MxfpQuantizer q = MxfpQuantizer::mxfp8e4m3();
    auto in = randomGroup(rng, 32);
    std::vector<float> out(32);
    q.quantizeGroup(in, out);
    EXPECT_LT(nmse(in, out), 1e-3);
}

TEST(MxfpScaleRules, CeilReducesClippingError)
{
    // Groups whose max lands just below a power of two suffer with
    // floor (max -> 7.99 saturates at 6); ceil fixes exactly that.
    MxfpQuantizer floor_q(Minifloat::fp4e2m1(), 32, ScaleRule::Floor);
    MxfpQuantizer ceil_q(Minifloat::fp4e2m1(), 32, ScaleRule::Ceil);
    std::vector<float> in(32, 0.1f);
    in[0] = 7.9f; // just below 8
    std::vector<float> of(32), oc(32);
    floor_q.quantizeGroup(in, of);
    ceil_q.quantizeGroup(in, oc);
    EXPECT_FLOAT_EQ(of[0], 6.0f); // clipped
    EXPECT_NEAR(oc[0], 8.0f, 0.11f);
    EXPECT_LT(std::fabs(oc[0] - in[0]), std::fabs(of[0] - in[0]));
}

TEST(Mxint8, GridIsUniformWithinGroup)
{
    MxIntQuantizer q = MxIntQuantizer::mxint8();
    std::vector<float> in{1.0f, 0.5f, 0.25f, -0.75f};
    std::vector<float> out(in.size());
    q.quantizeGroup(in, out);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(out[i], in[i], 1.0f / 64.0f) << i;
}

TEST(Mxint8, SaturatesSymmetrically)
{
    MxIntQuantizer q = MxIntQuantizer::mxint8();
    std::vector<float> in{2.0f, -2.0f};
    std::vector<float> out(2);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], -out[1]);
}

TEST(Mxint8, Ebw)
{
    EXPECT_DOUBLE_EQ(MxIntQuantizer::mxint8().ebw(), 8.25);
}

class MxfpPropertyTest : public ::testing::TestWithParam<int>
{};

TEST_P(MxfpPropertyTest, QuantizationIsIdempotentAndBounded)
{
    Rng rng(GetParam());
    MxfpQuantizer q = MxfpQuantizer::mxfp4();
    auto in = randomGroup(rng, 32, std::exp(rng.uniform(-4, 4)));
    std::vector<float> out(32), out2(32);
    q.quantizeGroup(in, out);
    q.quantizeGroup(out, out2);
    float amax = absMax(in);
    for (size_t i = 0; i < in.size(); ++i) {
        // Idempotent: re-quantizing a quantized group is a no-op.
        EXPECT_FLOAT_EQ(out2[i], out[i]);
        // Bounded: output magnitude can never exceed 2 * amax.
        EXPECT_LE(std::fabs(out[i]), 2.0f * amax + 1e-20f);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MxfpPropertyTest,
                         ::testing::Range(0, 20));

} // anonymous namespace
} // namespace m2x
