/**
 * @file
 * Tests for the FP16-scale group quantizers (the pre-MX baseline and
 * the INT grids used by the Tbl. 7 algorithm schemes).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mx/fp16_scale.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(Fp16Scale, MapsBlockMaxOntoFormatMax)
{
    Fp16ScaleQuantizer q = Fp16ScaleQuantizer::fp4();
    std::vector<float> in(32, 0.1f);
    in[5] = 5.3f; // awkward max for E8M0, trivial for FP16 scale
    std::vector<float> out(32);
    q.quantizeGroup(in, out);
    // max reconstructs to ~5.3 (6 * scale with scale ~ 5.3/6)
    EXPECT_NEAR(out[5], 5.3f, 0.01f);
}

TEST(Fp16Scale, BetterThanE8m0OnAverage)
{
    Rng rng(15);
    Fp16ScaleQuantizer fp16s = Fp16ScaleQuantizer::fp4();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double e16 = 0, e8 = 0;
    for (int t = 0; t < 400; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.normal(0, 1));
        std::vector<float> out(32);
        fp16s.quantizeGroup(in, out);
        e16 += mse(in, out);
        mx.quantizeGroup(in, out);
        e8 += mse(in, out);
    }
    EXPECT_LT(e16, e8);
}

TEST(Fp16Scale, GroupSizeControlsEbw)
{
    EXPECT_DOUBLE_EQ(Fp16ScaleQuantizer::fp4(32).ebw(), 4.5);
    EXPECT_DOUBLE_EQ(Fp16ScaleQuantizer::fp4(16).ebw(), 5.0);
    EXPECT_DOUBLE_EQ(Fp16ScaleQuantizer::fp4(128).ebw(), 4.125);
}

TEST(IntFp16Scale, Int4GridUniform)
{
    IntFp16ScaleQuantizer q = IntFp16ScaleQuantizer::int4();
    std::vector<float> in{7.0f, 5.0f, 3.0f, 1.0f, -7.0f, 0.0f};
    std::vector<float> out(in.size());
    q.quantizeGroup(in, out);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_NEAR(out[i], in[i], 0.01f) << i;
}

TEST(IntFp16Scale, FinerGranularityReducesError)
{
    Rng rng(16);
    IntFp16ScaleQuantizer g32 = IntFp16ScaleQuantizer::int4(32);
    IntFp16ScaleQuantizer g8(4, 8);
    double e32 = 0, e8 = 0;
    for (int t = 0; t < 300; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(4.0));
        std::vector<float> out(32);
        g32.quantizeGroup(in, out);
        e32 += mse(in, out);
        for (int h = 0; h < 4; ++h) {
            std::vector<float> o8(8);
            std::span<const float> part(in.data() + 8 * h, 8);
            g8.quantizeGroup(part, o8);
            e8 += mse(part, o8) / 4;
        }
    }
    EXPECT_LT(e8, e32);
}

TEST(Fp16Scale, ZeroGroup)
{
    Fp16ScaleQuantizer q = Fp16ScaleQuantizer::fp4();
    std::vector<float> in(32, 0.0f), out(32, 1.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

} // anonymous namespace
} // namespace m2x
