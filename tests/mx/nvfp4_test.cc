/**
 * @file
 * Tests for the NVFP4 quantizer: tensor-scale recipe, block-scale
 * precision advantage over E8M0, and range behaviour.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "mx/mxfp.hh"
#include "mx/nvfp4.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(Nvfp4, TensorScaleRecipe)
{
    Nvfp4Quantizer q;
    std::vector<float> t(64, 0.0f);
    t[0] = 2688.0f; // 448 * 6
    q.calibrate(t);
    EXPECT_FLOAT_EQ(q.tensorScale(), 1.0f);
}

TEST(Nvfp4, Ebw)
{
    EXPECT_DOUBLE_EQ(Nvfp4Quantizer().ebw(), 4.5);
}

TEST(Nvfp4, ExactWhenMaxIsOnGrid)
{
    Nvfp4Quantizer q;
    std::vector<float> tensor(16);
    for (size_t i = 0; i < 16; ++i)
        tensor[i] = (i % 2 ? -1.0f : 1.0f) *
                    static_cast<float>(i % 4);
    q.calibrate(tensor);
    std::vector<float> out(16);
    q.quantizeGroup(tensor, out);
    // max=3; block scale = fp8(3/6 / ts); reconstruction should be
    // near-exact for these small integers.
    for (size_t i = 0; i < 16; ++i)
        EXPECT_NEAR(out[i], tensor[i], 0.05f) << i;
}

TEST(Nvfp4, LowerErrorThanMxfp4OnMisalignedBlocks)
{
    // The paper's core claim for NVFP4: FP8 scaling aligns the block
    // max better than power-of-two scaling.
    Rng rng(11);
    Nvfp4Quantizer nv;
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    double nv_err = 0, mx_err = 0;
    std::vector<float> tensor(4096);
    for (auto &v : tensor)
        v = static_cast<float>(rng.normal(0, 1));
    nv.calibrate(tensor);
    std::vector<float> out(16);
    for (size_t off = 0; off < tensor.size(); off += 16) {
        std::span<const float> in(tensor.data() + off, 16);
        nv.quantizeGroup(in, out);
        nv_err += mse(in, out);
    }
    std::vector<float> out32(32);
    for (size_t off = 0; off < tensor.size(); off += 32) {
        std::span<const float> in(tensor.data() + off, 32);
        mx.quantizeGroup(in, out32);
        mx_err += mse(in, out32) * 2; // same element count weighting
    }
    EXPECT_LT(nv_err, mx_err);
}

TEST(Nvfp4, HandlesTinyTensorScale)
{
    Nvfp4Quantizer q;
    std::vector<float> tensor(16, 1e-20f);
    tensor[0] = 4e-20f;
    q.calibrate(tensor);
    std::vector<float> out(16);
    q.quantizeGroup(tensor, out);
    for (float v : out)
        EXPECT_TRUE(std::isfinite(v));
}

} // anonymous namespace
} // namespace m2x
