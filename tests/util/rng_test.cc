/**
 * @file
 * Unit tests for the deterministic RNG: reproducibility, distribution
 * moments, permutation validity, fork independence.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/rng.hh"

namespace m2x {
namespace {

TEST(Rng, SameSeedSameStream)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, ReseedRestartsStream)
{
    Rng a(7);
    uint64_t first = a.next();
    a.next();
    a.reseed(7);
    EXPECT_EQ(a.next(), first);
}

TEST(Rng, UniformRange)
{
    Rng r(3);
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformBoundsRespected)
{
    Rng r(4);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform(-2.5, 7.5);
        ASSERT_GE(u, -2.5);
        ASSERT_LT(u, 7.5);
    }
}

TEST(Rng, UniformIntCoversRangeWithoutBias)
{
    Rng r(5);
    int counts[7] = {0};
    int n = 70000;
    for (int i = 0; i < n; ++i)
        ++counts[r.uniformInt(7)];
    for (int c : counts) {
        // Each bucket should be within 10% of n/7.
        EXPECT_NEAR(c, n / 7, n / 70);
    }
}

TEST(Rng, NormalMoments)
{
    Rng r(6);
    double sum = 0.0, sq = 0.0;
    int n = 200000;
    for (int i = 0; i < n; ++i) {
        double x = r.normal();
        sum += x;
        sq += x * x;
    }
    double m = sum / n;
    double var = sq / n - m * m;
    EXPECT_NEAR(m, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShifted)
{
    Rng r(7);
    double sum = 0.0;
    int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += r.normal(3.0, 0.5);
    EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, StudentTHeavierTailsThanNormal)
{
    Rng r(8);
    int t_extreme = 0, n_extreme = 0;
    int n = 100000;
    for (int i = 0; i < n; ++i) {
        if (std::fabs(r.studentT(3.0)) > 4.0)
            ++t_extreme;
        if (std::fabs(r.normal()) > 4.0)
            ++n_extreme;
    }
    EXPECT_GT(t_extreme, 10 * std::max(n_extreme, 1));
}

TEST(Rng, LogNormalPositive)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i)
        ASSERT_GT(r.logNormal(0.0, 1.0), 0.0);
}

TEST(Rng, PermutationIsBijection)
{
    Rng r(10);
    auto p = r.permutation(257);
    std::set<uint32_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 257u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(Rng, ForkIndependent)
{
    Rng a(11);
    Rng child = a.fork();
    // Child stream should differ from the parent's continuation.
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == child.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, FillNormalFillsAll)
{
    Rng r(12);
    std::vector<float> v(1000, -1e9f);
    r.fillNormal(v, 0.0f, 1.0f);
    int untouched = static_cast<int>(
        std::count(v.begin(), v.end(), -1e9f));
    EXPECT_EQ(untouched, 0);
}

} // anonymous namespace
} // namespace m2x
