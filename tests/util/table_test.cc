/**
 * @file
 * Unit tests for the ASCII table printer.
 */

#include <gtest/gtest.h>

#include "util/table.hh"

namespace m2x {
namespace {

TEST(TextTable, RendersHeaderAndRows)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"bb", "22"});
    std::string s = t.render();
    EXPECT_NE(s.find("name"), std::string::npos);
    EXPECT_NE(s.find("bb"), std::string::npos);
    // Header rule present.
    EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(TextTable, IncrementalRow)
{
    TextTable t({"a", "b", "c"});
    t.beginRow();
    t.cell("x");
    t.cell(1.2345, 2);
    t.cell(7.0, 0);
    t.endRow();
    std::string s = t.render();
    EXPECT_NE(s.find("1.23"), std::string::npos);
    EXPECT_NE(s.find("7"), std::string::npos);
}

TEST(TextTable, ColumnsAligned)
{
    TextTable t({"col", "v"});
    t.addRow({"short", "1"});
    t.addRow({"much-longer-cell", "2"});
    std::string s = t.render();
    // Every line should have the same position for the last column.
    size_t line1 = s.find("short");
    size_t nl1 = s.find('\n', line1);
    size_t one = s.rfind('1', nl1);
    size_t line2 = s.find("much-longer-cell");
    size_t nl2 = s.find('\n', line2);
    size_t two = s.rfind('2', nl2);
    EXPECT_EQ(one - line1, two - line2);
}

TEST(TextTable, FmtNum)
{
    EXPECT_EQ(fmtNum(3.14159, 2), "3.14");
    EXPECT_EQ(fmtNum(3.14159, 0), "3");
    EXPECT_EQ(fmtNum(-1.5, 1), "-1.5");
}

} // anonymous namespace
} // namespace m2x
