/**
 * @file
 * Unit tests for the statistics helpers.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "util/stats.hh"

namespace m2x {
namespace {

TEST(Stats, Mean)
{
    std::vector<float> v{1, 2, 3, 4};
    EXPECT_DOUBLE_EQ(mean(v), 2.5);
}

TEST(Stats, Variance)
{
    std::vector<float> v{1, 1, 1, 1};
    EXPECT_DOUBLE_EQ(variance(v), 0.0);
    std::vector<float> w{0, 2};
    EXPECT_DOUBLE_EQ(variance(w), 1.0);
}

TEST(Stats, AbsMax)
{
    std::vector<float> v{1.0f, -5.0f, 3.0f};
    EXPECT_FLOAT_EQ(absMax(v), 5.0f);
    std::vector<float> empty;
    EXPECT_FLOAT_EQ(absMax(empty), 0.0f);
}

TEST(Stats, MseZeroForIdentical)
{
    std::vector<float> v{1, 2, 3};
    EXPECT_DOUBLE_EQ(mse(v, v), 0.0);
}

TEST(Stats, MseKnownValue)
{
    std::vector<float> a{0, 0}, b{1, -1};
    EXPECT_DOUBLE_EQ(mse(a, b), 1.0);
}

TEST(Stats, NmseScaleInvariantToReferenceEnergy)
{
    std::vector<float> ref{2, 2, 2, 2};
    std::vector<float> approx{2.2f, 1.8f, 2.2f, 1.8f};
    // mse = 0.04, ref energy = 4 -> nmse = 0.01
    EXPECT_NEAR(nmse(ref, approx), 0.01, 1e-6);
}

TEST(Stats, SqnrInverseOfNmse)
{
    std::vector<float> ref{1, 1, 1, 1};
    std::vector<float> ap{1.1f, 0.9f, 1.1f, 0.9f};
    EXPECT_NEAR(sqnrDb(ref, ap), 20.0, 0.1); // nmse = 0.01 -> 20 dB
}

TEST(Stats, CosineIdentical)
{
    std::vector<float> v{1, 2, 3};
    EXPECT_NEAR(cosineSimilarity(v, v), 1.0, 1e-9);
}

TEST(Stats, CosineOrthogonal)
{
    std::vector<float> a{1, 0}, b{0, 1};
    EXPECT_NEAR(cosineSimilarity(a, b), 0.0, 1e-9);
}

TEST(Stats, CosineBothZero)
{
    std::vector<float> a{0, 0}, b{0, 0};
    EXPECT_DOUBLE_EQ(cosineSimilarity(a, b), 1.0);
}

TEST(Stats, SoftmaxSumsToOne)
{
    std::vector<float> logits{1.0f, 2.0f, 3.0f, -1.0f};
    std::vector<float> p(4);
    softmax(logits, p);
    float s = 0;
    for (float v : p)
        s += v;
    EXPECT_NEAR(s, 1.0f, 1e-6f);
    EXPECT_GT(p[2], p[1]);
    EXPECT_GT(p[1], p[0]);
}

TEST(Stats, SoftmaxStableForLargeLogits)
{
    std::vector<float> logits{1000.0f, 1000.0f};
    std::vector<float> p(2);
    softmax(logits, p);
    EXPECT_NEAR(p[0], 0.5f, 1e-6f);
}

TEST(Stats, KlZeroForIdenticalLogits)
{
    std::vector<float> l{0.5f, -1.0f, 2.0f};
    EXPECT_NEAR(klDivergenceLogits(l, l), 0.0, 1e-9);
}

TEST(Stats, KlPositiveAndAsymmetric)
{
    std::vector<float> p{2.0f, 0.0f, 0.0f};
    std::vector<float> q{0.0f, 0.0f, 2.0f};
    double pq = klDivergenceLogits(p, q);
    double qp = klDivergenceLogits(q, p);
    EXPECT_GT(pq, 0.0);
    EXPECT_GT(qp, 0.0);
}

TEST(Stats, KlInvariantToLogitShift)
{
    std::vector<float> p{1.0f, 2.0f, 3.0f};
    std::vector<float> q{0.0f, 1.0f, 5.0f};
    std::vector<float> q_shift{10.0f, 11.0f, 15.0f};
    EXPECT_NEAR(klDivergenceLogits(p, q),
                klDivergenceLogits(p, q_shift), 1e-6);
}

TEST(Stats, RunningMean)
{
    RunningMean rm;
    EXPECT_DOUBLE_EQ(rm.value(), 0.0);
    rm.add(2.0);
    rm.add(4.0);
    EXPECT_DOUBLE_EQ(rm.value(), 3.0);
    EXPECT_EQ(rm.count(), 2u);
}

} // anonymous namespace
} // namespace m2x
