/**
 * @file
 * Unit tests for the bit helpers.
 */

#include <gtest/gtest.h>

#include "util/bits.hh"

namespace m2x {
namespace {

TEST(Bits, FieldExtract)
{
    EXPECT_EQ(bitsField(0b110100u, 2, 3), 0b101u);
    EXPECT_EQ(bitsField(0xffu, 0, 8), 0xffu);
    EXPECT_EQ(bitsField(0xffu, 4, 4), 0xfu);
}

TEST(Bits, FieldInsert)
{
    EXPECT_EQ(bitsInsert(0u, 2, 3, 0b101u), 0b10100u);
    EXPECT_EQ(bitsInsert(0xffu, 0, 4, 0u), 0xf0u);
}

TEST(Bits, InsertThenExtractRoundTrips)
{
    for (uint32_t f = 0; f < 8; ++f) {
        uint32_t v = bitsInsert(0xdeadbeefu, 5, 3, f);
        EXPECT_EQ(bitsField(v, 5, 3), f);
    }
}

TEST(Bits, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(4), 2);
    EXPECT_EQ(floorLog2(1023), 9);
    EXPECT_EQ(floorLog2(1024), 10);
}

TEST(Bits, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 5), 2u);
    EXPECT_EQ(ceilDiv(11, 5), 3u);
    EXPECT_EQ(ceilDiv(1, 32), 1u);
}

TEST(Bits, RoundUp)
{
    EXPECT_EQ(roundUp(31, 32), 32u);
    EXPECT_EQ(roundUp(32, 32), 32u);
    EXPECT_EQ(roundUp(33, 32), 64u);
}

} // anonymous namespace
} // namespace m2x
