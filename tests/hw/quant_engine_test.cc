/**
 * @file
 * Tests for the streaming Quantization Engine (Fig. 12): bit-exact
 * agreement with the functional Elem-EM encoder, plus the pipeline
 * timing model.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/m2xfp.hh"
#include "hw/quant_engine.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

class QuantEngineExactness : public ::testing::TestWithParam<int>
{};

TEST_P(QuantEngineExactness, MatchesFunctionalEncoder)
{
    Rng rng(8000 + GetParam());
    hw::QuantizationEngine engine;
    ElemEmQuantizer func = makeM2xfpActivationQuantizer();

    std::vector<float> in(32);
    for (auto &v : in)
        v = static_cast<float>(rng.studentT(3.0) *
                               std::exp(rng.uniform(-4, 4)));

    hw::QuantEngineResult hw_res = engine.encodeGroup(in);
    ElemEmGroup ref = func.encodeGroup(in);

    ASSERT_EQ(hw_res.group.scale.exponent(), ref.scale.exponent());
    ASSERT_EQ(hw_res.group.fp4Codes.size(), ref.fp4Codes.size());
    for (size_t i = 0; i < ref.fp4Codes.size(); ++i)
        ASSERT_EQ(hw_res.group.fp4Codes[i], ref.fp4Codes[i]) << i;
    ASSERT_EQ(hw_res.group.meta.size(), ref.meta.size());
    for (size_t i = 0; i < ref.meta.size(); ++i)
        ASSERT_EQ(hw_res.group.meta[i], ref.meta[i]) << i;
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuantEngineExactness,
                         ::testing::Range(0, 50));

TEST(QuantEngine, DecodedOutputMatchesFunctionalQuantize)
{
    Rng rng(9);
    hw::QuantizationEngine engine;
    ElemEmQuantizer func = makeM2xfpActivationQuantizer();
    std::vector<float> in(32);
    for (auto &v : in)
        v = static_cast<float>(rng.normal(0, 2));
    hw::QuantEngineResult res = engine.encodeGroup(in);
    std::vector<float> hw_dec(32), func_dec(32);
    func.decodeGroup(res.group, hw_dec);
    func.quantizeGroup(in, func_dec);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(hw_dec[i], func_dec[i]) << i;
}

TEST(QuantEngine, PipelineCycles)
{
    hw::QuantizationEngine engine(32);
    std::vector<float> in(32, 1.0f);
    // One group through a 32-lane two-stage pipeline: 2 cycles.
    EXPECT_EQ(engine.encodeGroup(in).cycles, 2u);
    // Streaming n groups: fill + 1/cycle.
    EXPECT_EQ(engine.streamCycles(100), 101u);
}

TEST(QuantEngine, NarrowEngineTakesLonger)
{
    hw::QuantizationEngine narrow(8);
    std::vector<float> in(32, 1.0f);
    EXPECT_EQ(narrow.encodeGroup(in).cycles, 8u);
    EXPECT_EQ(narrow.streamCycles(100), 404u);
}

TEST(QuantEngine, HandlesExtremeDynamicRange)
{
    hw::QuantizationEngine engine;
    ElemEmQuantizer func = makeM2xfpActivationQuantizer();
    std::vector<float> in(32, 1e-6f);
    in[3] = 3e4f;
    hw::QuantEngineResult res = engine.encodeGroup(in);
    ElemEmGroup ref = func.encodeGroup(in);
    EXPECT_EQ(res.group.scale.exponent(), ref.scale.exponent());
    for (size_t i = 0; i < 32; ++i)
        EXPECT_EQ(res.group.fp4Codes[i], ref.fp4Codes[i]) << i;
}

} // anonymous namespace
} // namespace m2x
