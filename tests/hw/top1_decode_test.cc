/**
 * @file
 * Tests for the Top-1 Decode Unit (Fig. 10): LUT monotonicity,
 * comparator-tree tie behaviour, and agreement with the functional
 * top-1 selection of Alg. 1.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/elem_em.hh"
#include "formats/minifloat.hh"
#include "hw/top1_decode.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

TEST(Top1DecodeUnit, LutIsMonotonicInMagnitude)
{
    hw::Top1DecodeUnit u;
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    // For any two codes, LUT order must match |value| order.
    for (uint32_t a = 0; a < 16; ++a) {
        for (uint32_t b = 0; b < 16; ++b) {
            float va = std::fabs(fp4.decode(a));
            float vb = std::fabs(fp4.decode(b));
            if (va < vb) {
                EXPECT_LT(u.lut()[a], u.lut()[b]) << a << "," << b;
            }
            if (va == vb) {
                EXPECT_EQ(u.lut()[a], u.lut()[b]) << a << "," << b;
            }
        }
    }
}

TEST(Top1DecodeUnit, ThreeLevelTreeUsesSevenComparators)
{
    hw::Top1DecodeUnit u;
    std::vector<uint8_t> codes(8, 0x3);
    u.decode(codes, 1);
    EXPECT_EQ(u.comparatorOps(), 7u);
}

TEST(Top1DecodeUnit, PicksLargestMagnitude)
{
    hw::Top1DecodeUnit u;
    // codes: values 1.5, -6.0, 2.0, 0.5, ...
    std::vector<uint8_t> codes{0x3, 0xf, 0x4, 0x1, 0x0, 0x0, 0x0, 0x0};
    hw::Top1Decode t = u.decode(codes, 1);
    EXPECT_EQ(t.idx, 1);
    EXPECT_TRUE(t.negative);
    EXPECT_EQ(t.fp4Mag, 0x7);
}

TEST(Top1DecodeUnit, TieKeepsLowestIndexAcrossAllPositions)
{
    hw::Top1DecodeUnit u;
    for (size_t first = 0; first < 8; ++first) {
        for (size_t second = first + 1; second < 8; ++second) {
            std::vector<uint8_t> codes(8, 0x1); // all 0.5
            codes[first] = 0x6;                 // +4.0
            codes[second] = 0xe;                // -4.0 (same magnitude)
            hw::Top1Decode t = u.decode(codes, 1);
            EXPECT_EQ(t.idx, first) << first << "," << second;
        }
    }
}

TEST(Top1DecodeUnit, MatchesFunctionalSelection)
{
    hw::Top1DecodeUnit u;
    Rng rng(21);
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    for (int t = 0; t < 2000; ++t) {
        std::vector<uint8_t> codes(8);
        for (auto &c : codes)
            c = static_cast<uint8_t>(rng.uniformInt(16));
        size_t ref = ElemEmQuantizer::top1Index(codes);
        hw::Top1Decode d = u.decode(codes, 1);
        ASSERT_EQ(d.idx, ref) << "trial " << t;
        ASSERT_EQ(d.fp4Mag, codes[ref] & 0x7);
        ASSERT_EQ(d.negative, (codes[ref] >> 3) != 0);
    }
    (void)fp4;
}

TEST(Top1DecodeUnit, MetadataReconstruction)
{
    hw::Top1DecodeUnit u;
    std::vector<uint8_t> codes{0x6, 0x0, 0x0, 0x0,
                               0x0, 0x0, 0x0, 0x0}; // top is +4.0
    for (uint8_t meta = 0; meta <= 3; ++meta) {
        hw::Top1Decode t = u.decode(codes, meta);
        EXPECT_EQ(t.fp6Mag,
                  ElemEmQuantizer::decodeFp6Mag(0x6, meta));
        EXPECT_EQ(t.deltaUlp6, meta - 1);
    }
}

TEST(Top1DecodeUnit, ShortSubgroup)
{
    hw::Top1DecodeUnit u;
    std::vector<uint8_t> codes{0x2, 0x5}; // 1.0, 3.0
    hw::Top1Decode t = u.decode(codes, 1);
    EXPECT_EQ(t.idx, 1);
}

} // anonymous namespace
} // namespace m2x
