/**
 * @file
 * Bit-exactness proof for the PE tile (Fig. 11): the integer
 * datapath (base MACs + aux extra-mantissa MAC + shift-add subgroup
 * scaling + exponent-align dequant) must reproduce the functional
 * codecs' dequantized dot product exactly, for random operands.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/elem_em.hh"
#include "core/m2xfp.hh"
#include "core/sg_em.hh"
#include "formats/minifloat.hh"
#include "hw/pe_tile.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

TEST(PeTile, Fp4IntTableIsValueTimes8)
{
    hw::PeTile pe;
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    for (uint32_t c = 0; c < 16; ++c)
        EXPECT_EQ(pe.fp4Int8(static_cast<uint8_t>(c)),
                  std::lround(fp4.decode(c) * 8.0f))
            << c;
}

TEST(PeTile, Fp6IntTableIsValueTimes8)
{
    hw::PeTile pe;
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    for (uint32_t m = 0; m < 32; ++m)
        EXPECT_EQ(pe.fp6MagInt8(static_cast<uint8_t>(m)),
                  std::lround(fp6.decode(m) * 8.0f))
            << m;
}

TEST(PeTile, ShiftAddScaleIsExact)
{
    for (int64_t p = -20000; p <= 20000; p += 4) {
        EXPECT_EQ(hw::PeTile::applySubgroupScale(p, 0), p);
        EXPECT_EQ(hw::PeTile::applySubgroupScale(p, 1), p * 5 / 4);
        EXPECT_EQ(hw::PeTile::applySubgroupScale(p, 2), p * 3 / 2);
        EXPECT_EQ(hw::PeTile::applySubgroupScale(p, 3), p * 7 / 4);
    }
}

TEST(PeTile, BaseMacMatchesManualDotProduct)
{
    hw::PeTile pe;
    hw::PeSubgroupInput in;
    // w = [1, -2, 3, 0.5, 6, -4, 1.5, 0], x = [2, 2, -1, 4, 1, 1, 1, 3]
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    float wv[8] = {1, -2, 3, 0.5f, 6, -4, 1.5f, 0};
    float xv[8] = {2, 2, -1, 4, 1, 1, 1, 3};
    for (int i = 0; i < 8; ++i) {
        in.wCodes[i] = static_cast<uint8_t>(fp4.encode(wv[i]));
        in.xCodes[i] = static_cast<uint8_t>(fp4.encode(xv[i]));
    }
    in.xMeta = 1; // identity metadata: top-1 stays at its FP4 value
    double expect = 0;
    for (int i = 0; i < 8; ++i)
        expect += static_cast<double>(wv[i]) * xv[i];
    int64_t p256 = pe.macSubgroup(in);
    EXPECT_DOUBLE_EQ(static_cast<double>(p256) / 256.0, expect);
}

/**
 * End-to-end exactness: quantize random activations (Elem-EM) and
 * weights (Sg-EM), feed the bit-level codes through the PE tile, and
 * compare with the double-precision dot product of the functional
 * decoders' outputs. Must agree to the last bit (all quantities are
 * dyadic rationals well inside double's significand).
 */
class PeTileExactness : public ::testing::TestWithParam<int>
{};

TEST_P(PeTileExactness, MatchesFunctionalGroupDotProduct)
{
    Rng rng(7000 + GetParam());
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();

    std::vector<float> x(32), w(32);
    for (auto &v : x)
        v = static_cast<float>(rng.studentT(4.0) *
                               std::exp(rng.uniform(-2, 2)));
    for (auto &v : w)
        v = static_cast<float>(rng.normal(0, 1));

    ElemEmGroup xg = aq.encodeGroup(x);
    SgEmGroup wg = wq.encodeGroup(w);

    // Functional reference: decoded values, double accumulation.
    std::vector<float> xd(32), wd(32);
    aq.decodeGroup(xg, xd);
    wq.decodeGroup(wg, wd);
    double ref = 0;
    for (int i = 0; i < 32; ++i)
        ref += static_cast<double>(xd[i]) * wd[i];

    // Hardware path.
    hw::PeTile pe;
    std::vector<hw::PeSubgroupInput> subs(4);
    for (int s = 0; s < 4; ++s) {
        for (int i = 0; i < 8; ++i) {
            subs[s].wCodes[i] = wg.fp4Codes[8 * s + i];
            subs[s].xCodes[i] = xg.fp4Codes[8 * s + i];
        }
        subs[s].xMeta = xg.meta[s];
        subs[s].wSgEm = wg.sgMeta[s];
        subs[s].len = 8;
    }
    double got = pe.computeGroup(subs, wg.scale.exponent(),
                                 xg.scale.exponent());
    EXPECT_DOUBLE_EQ(got, ref) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PeTileExactness,
                         ::testing::Range(0, 50));

TEST(PeTile, OpCountersTrackWork)
{
    hw::PeTile pe;
    std::vector<hw::PeSubgroupInput> subs(4);
    pe.computeGroup(subs, 0, 0);
    EXPECT_EQ(pe.opCounts().baseMacs, 32u);
    EXPECT_EQ(pe.opCounts().auxMacs, 4u);
    EXPECT_EQ(pe.opCounts().scaleOps, 4u);
    EXPECT_EQ(pe.opCounts().dequants, 1u);
    pe.resetOpCounts();
    EXPECT_EQ(pe.opCounts().baseMacs, 0u);
}

TEST(PeTile, SubgroupScaleDistributesOverSum)
{
    // (sum w*x) * 1.25 == sum (w*1.25)*x — the identity the shift-add
    // refinement relies on.
    hw::PeTile pe;
    hw::PeSubgroupInput in;
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    float wv[8] = {1, 2, -3, 4, 0.5f, -1.5f, 6, 1};
    float xv[8] = {1, -1, 2, 0.5f, 3, 2, 1, -4};
    for (int i = 0; i < 8; ++i) {
        in.wCodes[i] = static_cast<uint8_t>(fp4.encode(wv[i]));
        in.xCodes[i] = static_cast<uint8_t>(fp4.encode(xv[i]));
    }
    in.xMeta = 1;
    int64_t p = pe.macSubgroup(in);
    double scaled =
        static_cast<double>(hw::PeTile::applySubgroupScale(p, 1)) /
        256.0;
    double manual = 0;
    for (int i = 0; i < 8; ++i)
        manual += (1.25 * wv[i]) * xv[i];
    EXPECT_DOUBLE_EQ(scaled, manual);
}

} // anonymous namespace
} // namespace m2x
