/**
 * @file
 * Tests for the area/power model: Tbl. 5 totals and the §6.3 PE-tile
 * format comparison.
 */

#include <gtest/gtest.h>

#include <vector>

#include "hw/area_power.hh"

namespace m2x {
namespace {

TEST(AreaPower, PeTileAreasMatchPaperSynthesis)
{
    // §6.3: 2057.6 (MXFP4), 2104.7 (NVFP4, +2.3%), 2140.1 (M2XFP,
    // +4.0%) um^2 under the same 28 nm flow.
    EXPECT_NEAR(hw::makeMxfp4PeTile().areaUm2(), 2057.6, 1.0);
    EXPECT_NEAR(hw::makeNvfp4PeTile().areaUm2(), 2104.7, 1.0);
    EXPECT_NEAR(hw::makeM2xfpPeTile().areaUm2(), 2140.1, 1.0);
}

TEST(AreaPower, M2xfpOverheadIsFourPercent)
{
    double base = hw::makeMxfp4PeTile().areaUm2();
    double m2 = hw::makeM2xfpPeTile().areaUm2();
    double nv = hw::makeNvfp4PeTile().areaUm2();
    EXPECT_NEAR((m2 - base) / base, 0.040, 0.002);
    EXPECT_NEAR((nv - base) / base, 0.023, 0.002);
}

TEST(AreaPower, DecodeUnitAndEngineAreas)
{
    EXPECT_NEAR(hw::makeTop1DecodeUnit().areaUm2(), 82.91, 0.5);
    EXPECT_NEAR(hw::makeQuantizationEngine().areaUm2(), 2451.47, 2.0);
}

TEST(AreaPower, SramAnchoredAtPaperPoint)
{
    hw::SramModel buf{324.0};
    EXPECT_NEAR(buf.areaMm2(), 0.7740, 0.001);
    EXPECT_NEAR(buf.powerMw(), 176.268, 0.2);
    EXPECT_GT(buf.energyPerBytePj(), 0.0);
}

TEST(AreaPower, Table5TotalsMatchPaper)
{
    auto rows = hw::table5Breakdown();
    ASSERT_EQ(rows.size(), 5u);
    // Paper: total 1.051 mm^2, 204.02 mW.
    EXPECT_NEAR(rows.back().totalAreaMm2, 1.051, 0.01);
    EXPECT_NEAR(rows.back().totalPowerMw, 204.02, 1.5);
    // Decode + engine overhead is a fraction of a percent of area.
    double overhead =
        (rows[1].totalAreaMm2 + rows[2].totalAreaMm2) /
        rows.back().totalAreaMm2;
    EXPECT_LT(overhead, 0.005);
}

TEST(AreaPower, BlocksSumToUnitTotals)
{
    std::vector<hw::UnitModel> units;
    units.push_back(hw::makeM2xfpPeTile());
    units.push_back(hw::makeTop1DecodeUnit());
    units.push_back(hw::makeQuantizationEngine());
    for (const auto &unit : units) {
        double sum = 0.0;
        for (const auto &b : unit.blocks())
            sum += b.areaUm2();
        EXPECT_DOUBLE_EQ(sum, unit.areaUm2()) << unit.name();
    }
}

} // anonymous namespace
} // namespace m2x
