/**
 * @file
 * Cross-module integration tests: the packed §5.2 streams driving
 * the bit-exact PE array must reproduce the functional quantized
 * GEMM; the streaming quantization engine must feed the packed
 * layout; the full model pipeline must be deterministic end to end.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "gemm/gemm.hh"
#include "hw/pe_tile.hh"
#include "hw/quant_engine.hh"
#include "model/eval.hh"
#include "model/zoo.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double dof = 4.0)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(dof));
    return m;
}

/**
 * Full GEMM through the hardware path: pack X (Elem-EM) and W
 * (Sg-EM) into §5.2 streams, then compute every output element with
 * the PE tile from the packed codes only, and compare with the
 * functional QuantizedLinear result.
 */
TEST(EndToEnd, PackedStreamsThroughPeTileMatchFunctionalGemm)
{
    const size_t m_rows = 6, k = 64, n = 8;
    Matrix x = randomMatrix(m_rows, k, 77);
    Matrix w = randomMatrix(n, k, 78, 6.0);

    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();

    PackedM2xfpTensor px = PackedM2xfpTensor::packActivations(x, aq);
    PackedM2xfpTensor pw = PackedM2xfpTensor::packWeights(w, wq);

    // Functional reference.
    QuantizedLinear lin(
        w, std::make_shared<SgEmQuantizer>(wq),
        std::make_shared<ElemEmQuantizer>(aq));
    Matrix ref = lin.forward(x);

    // Hardware path: per output element, stream the K groups of
    // packed codes through the PE tile.
    hw::PeTile pe;
    const size_t groups = k / 32;
    for (size_t r = 0; r < m_rows; ++r) {
        for (size_t c = 0; c < n; ++c) {
            double acc = 0.0;
            for (size_t g = 0; g < groups; ++g) {
                std::vector<hw::PeSubgroupInput> subs(4);
                for (size_t s = 0; s < 4; ++s) {
                    for (size_t i = 0; i < 8; ++i) {
                        size_t col = g * 32 + s * 8 + i;
                        subs[s].xCodes[i] = px.elementCode(r, col);
                        subs[s].wCodes[i] = pw.elementCode(c, col);
                    }
                    subs[s].xMeta = px.subgroupMeta(r, g, s);
                    subs[s].wSgEm = pw.subgroupMeta(c, g, s);
                }
                int ex = ScaleE8m0::fromCode(px.scaleCode(r, g))
                             .exponent();
                int ew = ScaleE8m0::fromCode(pw.scaleCode(c, g))
                             .exponent();
                acc += pe.computeGroup(subs, ew, ex);
            }
            ASSERT_NEAR(acc, ref(r, c),
                        1e-6 * (std::fabs(ref(r, c)) + 1.0))
                << r << "," << c;
        }
    }
}

TEST(EndToEnd, QuantEngineOutputFeedsPackedLayout)
{
    // Stream groups through the hardware engine, pack its outputs,
    // and verify the packed tensor equals the software-packed one.
    Matrix x = randomMatrix(4, 64, 79);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    hw::QuantizationEngine engine;

    PackedM2xfpTensor sw = PackedM2xfpTensor::packActivations(x, aq);
    for (size_t r = 0; r < x.rows(); ++r) {
        for (size_t g = 0; g < 2; ++g) {
            std::span<const float> grp(x.data() + r * 64 + g * 32,
                                       32);
            hw::QuantEngineResult res = engine.encodeGroup(grp);
            ASSERT_EQ(res.group.scale.code(), sw.scaleCode(r, g));
            for (size_t i = 0; i < 32; ++i)
                ASSERT_EQ(res.group.fp4Codes[i],
                          sw.elementCode(r, g * 32 + i));
            for (size_t s = 0; s < 4; ++s)
                ASSERT_EQ(res.group.meta[s], sw.subgroupMeta(r, g, s));
        }
    }
}

TEST(EndToEnd, ModelPipelineDeterministic)
{
    model::ModelConfig cfg = model::llama2_7b();
    cfg.dModel = 64;
    cfg.nHeads = 2;
    cfg.nLayers = 1;
    cfg.dFf = 96;
    cfg.vocab = 128;
    model::Evaluator a(cfg, 64, 32), b(cfg, 64, 32);
    a.model().rebuild(model::scheme("M2XFP").factory);
    b.model().rebuild(model::scheme("M2XFP").factory);
    model::EvalRun ra = a.run(), rb = b.run();
    EXPECT_DOUBLE_EQ(ra.meanKl, rb.meanKl);
    EXPECT_DOUBLE_EQ(ra.logitMse, rb.logitMse);
}

TEST(EndToEnd, StorageAccountingConsistent)
{
    // The packed representation's physical bits must equal the
    // BitBudget-declared EBW for aligned shapes.
    Matrix x = randomMatrix(8, 256, 80);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor p = PackedM2xfpTensor::packActivations(x, aq);
    EXPECT_DOUBLE_EQ(p.bitsPerElement(), aq.ebw());
}

} // anonymous namespace
} // namespace m2x
