/**
 * @file
 * Unit tests for the Matrix container.
 */

#include <gtest/gtest.h>

#include "quant/matrix.hh"

namespace m2x {
namespace {

TEST(Matrix, ShapeAndFill)
{
    Matrix m(3, 4, 2.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 4u);
    EXPECT_EQ(m.size(), 12u);
    for (float v : m.flat())
        EXPECT_FLOAT_EQ(v, 2.5f);
}

TEST(Matrix, ElementAccess)
{
    Matrix m(2, 3);
    m(1, 2) = 7.0f;
    EXPECT_FLOAT_EQ(m(1, 2), 7.0f);
    EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, RowSpanIsContiguousView)
{
    Matrix m(2, 3);
    auto r1 = m.row(1);
    r1[0] = 9.0f;
    EXPECT_FLOAT_EQ(m(1, 0), 9.0f);
    EXPECT_EQ(r1.size(), 3u);
}

TEST(Matrix, Transpose)
{
    Matrix m(2, 3);
    float v = 0;
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            m(r, c) = v++;
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.cols(), 2u);
    for (size_t r = 0; r < 2; ++r)
        for (size_t c = 0; c < 3; ++c)
            EXPECT_FLOAT_EQ(t(c, r), m(r, c));
}

TEST(Matrix, TransposeTwiceIsIdentity)
{
    Matrix m(3, 5);
    for (size_t i = 0; i < m.size(); ++i)
        m.flat()[i] = static_cast<float>(i * i % 17);
    Matrix tt = m.transposed().transposed();
    ASSERT_TRUE(tt.sameShape(m));
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(tt.flat()[i], m.flat()[i]);
}

TEST(Matrix, SameShape)
{
    EXPECT_TRUE(Matrix(2, 3).sameShape(Matrix(2, 3)));
    EXPECT_FALSE(Matrix(2, 3).sameShape(Matrix(3, 2)));
}

} // anonymous namespace
} // namespace m2x
