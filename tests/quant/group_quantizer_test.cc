/**
 * @file
 * Unit tests for the group-quantizer plumbing: EBW accounting (Eq. 2)
 * and the matrix application helpers.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "quant/group_quantizer.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

/** Toy quantizer: rounds to integers; counts calibrate() calls. */
class RoundingQuantizer : public GroupQuantizer
{
  public:
    explicit RoundingQuantizer(unsigned k) : k_(k) {}

    void
    calibrate(std::span<const float> full) override
    {
        ++calibrations;
        lastCalibrated = full.size();
    }

    void
    quantizeGroup(std::span<const float> in,
                  std::span<float> out) const override
    {
        ++groupCalls;
        maxLen = std::max(maxLen, in.size());
        for (size_t i = 0; i < in.size(); ++i)
            out[i] = std::round(in[i]);
    }

    unsigned groupSize() const override { return k_; }
    BitBudget bitBudget() const override { return {4, 8, 2, k_}; }
    std::string name() const override { return "round"; }

    int calibrations = 0;
    size_t lastCalibrated = 0;
    mutable int groupCalls = 0;
    mutable size_t maxLen = 0;

  private:
    unsigned k_;
};

TEST(BitBudget, Eq2)
{
    // EBW = B_elem + (B_meta + B_scale) / k
    BitBudget mxfp4{4, 8, 0, 32};
    EXPECT_DOUBLE_EQ(mxfp4.ebw(), 4.25);
    BitBudget nvfp4{4, 8, 0, 16};
    EXPECT_DOUBLE_EQ(nvfp4.ebw(), 4.5);
    BitBudget m2xfp{4, 8, 8, 32}; // 2 bits x 4 subgroups
    EXPECT_DOUBLE_EQ(m2xfp.ebw(), 4.5);
}

TEST(GroupApply, RowsGroupedCoversEverythingOnce)
{
    Matrix m(3, 10);
    Rng rng(1);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.uniform(-5, 5));
    RoundingQuantizer q(4);
    Matrix out = quantizeRowsGrouped(m, q);
    // 3 rows x ceil(10/4)=3 groups.
    EXPECT_EQ(q.groupCalls, 9);
    EXPECT_EQ(q.calibrations, 1);
    EXPECT_EQ(q.lastCalibrated, 30u);
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(out.flat()[i], std::round(m.flat()[i]));
}

TEST(GroupApply, TailGroupShorter)
{
    Matrix m(1, 10);
    RoundingQuantizer q(4);
    quantizeRowsGrouped(m, q);
    EXPECT_EQ(q.maxLen, 4u); // and a final group of 2 exists
    EXPECT_EQ(q.groupCalls, 3);
}

TEST(GroupApply, ColsGroupedMatchesTransposedRows)
{
    Matrix m(8, 6);
    Rng rng(2);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.uniform(-5, 5));
    RoundingQuantizer q1(4), q2(4);
    Matrix by_cols = quantizeColsGrouped(m, q1);
    Matrix by_rows_t =
        quantizeRowsGrouped(m.transposed(), q2).transposed();
    for (size_t i = 0; i < m.size(); ++i)
        EXPECT_FLOAT_EQ(by_cols.flat()[i], by_rows_t.flat()[i]);
}

TEST(GroupApply, WholeChannelUsesOneGroupPerRow)
{
    Matrix m(4, 100);
    RoundingQuantizer q(4);
    quantizeRowsWholeChannel(m, q);
    EXPECT_EQ(q.groupCalls, 4);
    EXPECT_EQ(q.maxLen, 100u);
}

TEST(GroupApply, SpanGroupedMatchesManual)
{
    std::vector<float> in{0.4f, 1.6f, -2.3f, 7.9f, 0.1f};
    std::vector<float> out(5);
    RoundingQuantizer q(2);
    quantizeSpanGrouped(in, out, q);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], std::round(in[i]));
}

} // anonymous namespace
} // namespace m2x
