/**
 * @file
 * Unit tests for the five shared-scale rules (Tbl. 8), including the
 * paper's claimed RTNE == ceil equivalence for FP4 (M = 1.5 P).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "quant/scale_rules.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

const Minifloat &fp4 = Minifloat::fp4e2m1();

TEST(ExactLogs, FloorLog2)
{
    EXPECT_EQ(floorLog2Exact(1.0f), 0);
    EXPECT_EQ(floorLog2Exact(2.0f), 1);
    EXPECT_EQ(floorLog2Exact(4.0f), 2);
    EXPECT_EQ(floorLog2Exact(3.999f), 1);
    EXPECT_EQ(floorLog2Exact(0.5f), -1);
    EXPECT_EQ(floorLog2Exact(0.49f), -2);
}

TEST(ExactLogs, CeilLog2)
{
    EXPECT_EQ(ceilLog2Exact(1.0f), 0);
    EXPECT_EQ(ceilLog2Exact(1.01f), 1);
    EXPECT_EQ(ceilLog2Exact(2.0f), 1);
    EXPECT_EQ(ceilLog2Exact(0.5f), -1);
    EXPECT_EQ(ceilLog2Exact(0.51f), 0);
}

TEST(ExactLogs, RoundLog2GeometricThreshold)
{
    // Threshold is sqrt(2) ~ 1.4142 within each binade.
    EXPECT_EQ(roundLog2Exact(1.41f), 0);
    EXPECT_EQ(roundLog2Exact(1.42f), 1);
    EXPECT_EQ(roundLog2Exact(2.82f), 1);
    EXPECT_EQ(roundLog2Exact(2.84f), 2);
}

TEST(ScaleRules, FloorMatchesOcpDefinition)
{
    // E = floor(log2(amax / 4)).
    struct Case { float amax; int e; };
    for (auto [amax, e] : {Case{4.0f, 0}, Case{6.0f, 0}, Case{7.99f, 0},
                           Case{8.0f, 1}, Case{3.99f, -1},
                           Case{1.0f, -2}, Case{0.5f, -3}}) {
        EXPECT_EQ(computeSharedScale(amax, fp4, ScaleRule::Floor)
                      .exponent(),
                  e)
            << amax;
    }
}

TEST(ScaleRules, CeilMapsAmaxOntoOrBelowMax)
{
    // ceil rule: amax / S <= M always (no clipping).
    Rng rng(99);
    for (int i = 0; i < 2000; ++i) {
        float amax = static_cast<float>(
            std::exp(rng.uniform(-6.0, 6.0)));
        ScaleE8m0 s =
            computeSharedScale(amax, fp4, ScaleRule::Ceil);
        EXPECT_LE(amax / s.value(), fp4.maxValue() * (1 + 1e-6f))
            << amax;
    }
}

TEST(ScaleRules, FloorNeverClipsPow2Target)
{
    // floor rule guarantees amax / S in [4, 8): above P, possibly
    // above M=6 (the clipping the ceil rule avoids).
    Rng rng(100);
    for (int i = 0; i < 2000; ++i) {
        float amax = static_cast<float>(
            std::exp(rng.uniform(-6.0, 6.0)));
        ScaleE8m0 s =
            computeSharedScale(amax, fp4, ScaleRule::Floor);
        float ratio = amax / s.value();
        EXPECT_GE(ratio, 4.0f * (1 - 1e-6f)) << amax;
        EXPECT_LT(ratio, 8.0f * (1 + 1e-6f)) << amax;
    }
}

TEST(ScaleRules, RtneEqualsCeilForFp4)
{
    // Paper §6.4: for FP4 (M = 1.5 P) the RTNE and ceil rules produce
    // identical exponents for every block maximum.
    Rng rng(101);
    for (int i = 0; i < 20000; ++i) {
        float amax = static_cast<float>(
            std::exp(rng.uniform(-8.0, 8.0)));
        int e_rtne = computeSharedScale(amax, fp4, ScaleRule::Rtne)
                         .exponent();
        int e_ceil = computeSharedScale(amax, fp4, ScaleRule::Ceil)
                         .exponent();
        EXPECT_EQ(e_rtne, e_ceil) << amax;
    }
}

TEST(ScaleRules, RtneSpotValues)
{
    // amax=5: round2 -> 4, E = log2(4/4) = 0.
    EXPECT_EQ(computeSharedScale(5.0f, fp4, ScaleRule::Rtne).exponent(),
              0);
    // amax=7: round2 -> 8 (above midpoint 6), E = 1.
    EXPECT_EQ(computeSharedScale(7.0f, fp4, ScaleRule::Rtne).exponent(),
              1);
    // amax=6: midpoint, ties to the smaller power -> 4, E = 0.
    EXPECT_EQ(computeSharedScale(6.0f, fp4, ScaleRule::Rtne).exponent(),
              0);
    // amax=3: midpoint of [2,4] -> 2, E = -1.
    EXPECT_EQ(computeSharedScale(3.0f, fp4, ScaleRule::Rtne).exponent(),
              -1);
}

TEST(ScaleRules, ZeroAmaxGivesIdentity)
{
    for (auto rule : {ScaleRule::Floor, ScaleRule::Ceil,
                      ScaleRule::Rtn1, ScaleRule::Rtn2,
                      ScaleRule::Rtne}) {
        EXPECT_EQ(computeSharedScale(0.0f, fp4, rule).exponent(), 0);
    }
}

TEST(ScaleRules, OrderingBetweenRules)
{
    // ceil(log2(a/6)) <= floor(log2(a/4)) + 1 and the rules never
    // differ by more than one binade.
    Rng rng(102);
    for (int i = 0; i < 5000; ++i) {
        float amax = static_cast<float>(
            std::exp(rng.uniform(-6.0, 6.0)));
        int ef = computeSharedScale(amax, fp4, ScaleRule::Floor)
                     .exponent();
        int ec = computeSharedScale(amax, fp4, ScaleRule::Ceil)
                     .exponent();
        EXPECT_GE(ec, ef) << amax; // ceil/M-based scale >= floor scale
        EXPECT_LE(ec - ef, 1) << amax;
    }
}

TEST(ScaleRules, NamesArePaperRows)
{
    EXPECT_STREQ(scaleRuleName(ScaleRule::Floor), "floor");
    EXPECT_STREQ(scaleRuleName(ScaleRule::Ceil), "ceil");
    EXPECT_STREQ(scaleRuleName(ScaleRule::Rtn1), "RTN1");
    EXPECT_STREQ(scaleRuleName(ScaleRule::Rtn2), "RTN2");
    EXPECT_STREQ(scaleRuleName(ScaleRule::Rtne), "RTNE");
}

} // anonymous namespace
} // namespace m2x
