/**
 * @file
 * Tests for the GEMM kernels and the quantized linear layer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/m2xfp.hh"
#include "gemm/gemm.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed, double scale = 1.0)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.normal(0.0, scale));
    return m;
}

TEST(Gemm, IdentityMultiply)
{
    Matrix a = randomMatrix(4, 4, 1);
    Matrix eye(4, 4);
    for (size_t i = 0; i < 4; ++i)
        eye(i, i) = 1.0f;
    Matrix c = matmulNt(a, eye); // a * I^T = a
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_FLOAT_EQ(c.flat()[i], a.flat()[i]);
}

TEST(Gemm, KnownSmallProduct)
{
    Matrix a(2, 3);
    float av = 1;
    for (auto &v : a.flat())
        v = av++;
    // b_nk rows are output channels: y[i][j] = dot(a_i, b_j)
    Matrix b(2, 3);
    b(0, 0) = 1;
    b(0, 1) = 0;
    b(0, 2) = 0;
    b(1, 0) = 1;
    b(1, 1) = 1;
    b(1, 2) = 1;
    Matrix c = matmulNt(a, b);
    EXPECT_FLOAT_EQ(c(0, 0), 1.0f);
    EXPECT_FLOAT_EQ(c(0, 1), 6.0f);
    EXPECT_FLOAT_EQ(c(1, 0), 4.0f);
    EXPECT_FLOAT_EQ(c(1, 1), 15.0f);
}

TEST(Gemm, MatmulAgreesWithMatmulNt)
{
    Matrix a = randomMatrix(5, 7, 2);
    Matrix b = randomMatrix(7, 3, 3);
    Matrix c1 = matmul(a, b);
    Matrix c2 = matmulNt(a, b.transposed());
    ASSERT_TRUE(c1.sameShape(c2));
    for (size_t i = 0; i < c1.size(); ++i)
        EXPECT_NEAR(c1.flat()[i], c2.flat()[i], 1e-4f);
}

TEST(QuantizedLinear, NullQuantizersAreExact)
{
    Matrix w = randomMatrix(8, 16, 4);
    Matrix x = randomMatrix(3, 16, 5);
    QuantizedLinear lin(w, nullptr, nullptr);
    Matrix y = lin.forward(x);
    Matrix ref = matmulNt(x, w);
    for (size_t i = 0; i < y.size(); ++i)
        EXPECT_FLOAT_EQ(y.flat()[i], ref.flat()[i]);
}

TEST(QuantizedLinear, W4A4CloseToReference)
{
    Matrix w = randomMatrix(32, 128, 6, 0.05);
    Matrix x = randomMatrix(4, 128, 7);
    auto wq = std::make_shared<SgEmQuantizer>(
        makeM2xfpWeightQuantizer());
    auto aq = std::make_shared<ElemEmQuantizer>(
        makeM2xfpActivationQuantizer());
    QuantizedLinear lin(w, wq, aq);
    Matrix y = lin.forward(x);
    Matrix ref = matmulNt(x, w);
    EXPECT_LT(nmse(ref.flat(), y.flat()), 0.05);
}

TEST(QuantizedLinear, M2xfpBeatsMxfp4EndToEnd)
{
    // The product-level payoff: W4A4 GEMM error with M2XFP vs MXFP4.
    Matrix w = randomMatrix(64, 256, 8, 0.05);
    Matrix x(16, 256);
    Rng rng(9);
    for (auto &v : x.flat())
        v = static_cast<float>(rng.studentT(4.0));
    Matrix ref = matmulNt(x, w);

    auto m2_w = std::make_shared<SgEmQuantizer>(
        makeM2xfpWeightQuantizer());
    auto m2_a = std::make_shared<ElemEmQuantizer>(
        makeM2xfpActivationQuantizer());
    QuantizedLinear lin_m2(w, m2_w, m2_a);

    auto mx_w = std::make_shared<MxfpQuantizer>(MxfpQuantizer::mxfp4());
    auto mx_a = std::make_shared<MxfpQuantizer>(MxfpQuantizer::mxfp4());
    QuantizedLinear lin_mx(w, mx_w, mx_a);

    double e_m2 = nmse(ref.flat(), lin_m2.forward(x).flat());
    double e_mx = nmse(ref.flat(), lin_mx.forward(x).flat());
    EXPECT_LT(e_m2, e_mx);
}

TEST(QuantizedLinear, SetWeightRequantizes)
{
    Matrix w1 = randomMatrix(8, 32, 10);
    auto wq = std::make_shared<MxfpQuantizer>(MxfpQuantizer::mxfp4());
    QuantizedLinear lin(w1, wq, nullptr);
    Matrix w2 = randomMatrix(8, 32, 11);
    lin.setWeight(w2);
    Matrix expect = quantizeRowsGrouped(w2, *wq);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_FLOAT_EQ(lin.effectiveWeight().flat()[i],
                        expect.flat()[i]);
}

TEST(QuantizedLinear, SetWeightMoveOverloadStealsStorage)
{
    Matrix w1 = randomMatrix(8, 32, 12);
    QuantizedLinear lin(w1, nullptr, nullptr);
    Matrix w2 = randomMatrix(8, 32, 13);
    const float *storage = w2.data();
    Matrix expect = w2;
    lin.setWeight(std::move(w2));
    // Unquantized path: the storage must have been moved, not copied.
    EXPECT_EQ(lin.effectiveWeight().data(), storage);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_FLOAT_EQ(lin.effectiveWeight().flat()[i],
                        expect.flat()[i]);
}

TEST(QuantizedLinear, SetWeightConstRefLeavesSourceIntact)
{
    Matrix w1 = randomMatrix(8, 32, 14);
    auto wq = std::make_shared<MxfpQuantizer>(MxfpQuantizer::mxfp4());
    QuantizedLinear lin(w1, wq, nullptr);
    Matrix w2 = randomMatrix(8, 32, 15);
    Matrix before = w2;
    lin.setWeight(w2); // lvalue: re-quantizes without consuming w2
    for (size_t i = 0; i < w2.size(); ++i)
        EXPECT_FLOAT_EQ(w2.flat()[i], before.flat()[i]);
    Matrix expect = quantizeRowsGrouped(w2, *wq);
    for (size_t i = 0; i < expect.size(); ++i)
        EXPECT_FLOAT_EQ(lin.effectiveWeight().flat()[i],
                        expect.flat()[i]);
}

} // anonymous namespace
} // namespace m2x
