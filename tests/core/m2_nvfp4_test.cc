/**
 * @file
 * Tests for M2-NVFP4 (Tbl. 6): metadata-augmented NVFP4.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/m2_nvfp4.hh"
#include "mx/nvfp4.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(M2Nvfp4, EbwIsFiveBits)
{
    // Paper: metadata raises NVFP4's effective width from 4.5 to 5.
    M2Nvfp4Quantizer w(true);
    M2Nvfp4Quantizer a(false);
    EXPECT_DOUBLE_EQ(w.ebw(), 5.0);
    EXPECT_DOUBLE_EQ(a.ebw(), 5.0);
}

TEST(M2Nvfp4, ZeroGroup)
{
    M2Nvfp4Quantizer q(false);
    std::vector<float> in(16, 0.0f), out(16, 1.0f);
    q.calibrate(in);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

class M2Nvfp4Property : public ::testing::TestWithParam<int>
{};

TEST_P(M2Nvfp4Property, WeightModeBeatsPlainNvfp4)
{
    Rng rng(100 + GetParam());
    std::vector<float> tensor(1024);
    for (auto &v : tensor)
        v = static_cast<float>(rng.studentT(4.0));

    Nvfp4Quantizer base;
    M2Nvfp4Quantizer aug(true);
    base.calibrate(tensor);
    aug.calibrate(tensor);

    double base_err = 0, aug_err = 0;
    std::vector<float> out(16);
    for (size_t off = 0; off < tensor.size(); off += 16) {
        std::span<const float> in(tensor.data() + off, 16);
        base.quantizeGroup(in, out);
        base_err += mse(in, out);
        aug.quantizeGroup(in, out);
        aug_err += mse(in, out);
    }
    EXPECT_LE(aug_err, base_err + 1e-12);
}

TEST_P(M2Nvfp4Property, ActivationModeBeatsPlainNvfp4)
{
    Rng rng(200 + GetParam());
    std::vector<float> tensor(1024);
    for (auto &v : tensor)
        v = static_cast<float>(rng.studentT(3.0));

    Nvfp4Quantizer base;
    M2Nvfp4Quantizer aug(false);
    base.calibrate(tensor);
    aug.calibrate(tensor);

    double base_err = 0, aug_err = 0;
    std::vector<float> out(16);
    for (size_t off = 0; off < tensor.size(); off += 16) {
        std::span<const float> in(tensor.data() + off, 16);
        base.quantizeGroup(in, out);
        base_err += mse(in, out);
        aug.quantizeGroup(in, out);
        aug_err += mse(in, out);
    }
    EXPECT_LE(aug_err, base_err + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, M2Nvfp4Property,
                         ::testing::Range(0, 10));

} // anonymous namespace
} // namespace m2x
