/**
 * @file
 * Tests for the §5.2 packed memory layout: stream sizes, bit
 * accounting, and exact agreement with the functional codecs.
 */

#include <gtest/gtest.h>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "util/rng.hh"

namespace m2x {
namespace {

Matrix
randomMatrix(size_t r, size_t c, uint64_t seed)
{
    Matrix m(r, c);
    Rng rng(seed);
    for (auto &v : m.flat())
        v = static_cast<float>(rng.studentT(4.0));
    return m;
}

TEST(Packed, StreamSizesMatchLayout)
{
    Matrix m = randomMatrix(4, 64, 1);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    // 4 rows x 2 groups: 16B elements, 1B scale, 1B meta per group.
    EXPECT_EQ(t.elementStream().size(), 4u * 2 * 16);
    EXPECT_EQ(t.scaleStream().size(), 8u);
    EXPECT_EQ(t.metadataStream().size(), 8u);
    EXPECT_EQ(t.totalBytes(), 4u * 2 * 18);
}

TEST(Packed, BitsPerElementIsFourPointFive)
{
    Matrix m = randomMatrix(8, 128, 2);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    EXPECT_DOUBLE_EQ(t.bitsPerElement(), 4.5);
}

TEST(Packed, ActivationsRoundTripMatchesFunctionalCodec)
{
    Matrix m = randomMatrix(5, 96, 3);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    Matrix unpacked = t.unpackActivations(q);
    Matrix direct = quantizeRowsGrouped(m, q);
    ASSERT_TRUE(unpacked.sameShape(direct));
    for (size_t i = 0; i < direct.size(); ++i)
        ASSERT_FLOAT_EQ(unpacked.flat()[i], direct.flat()[i]) << i;
}

TEST(Packed, WeightsRoundTripMatchesFunctionalCodec)
{
    Matrix m = randomMatrix(6, 64, 4);
    SgEmQuantizer q = makeM2xfpWeightQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packWeights(m, q);
    Matrix unpacked = t.unpackWeights(q);
    Matrix direct = quantizeRowsGrouped(m, q);
    for (size_t i = 0; i < direct.size(); ++i)
        ASSERT_FLOAT_EQ(unpacked.flat()[i], direct.flat()[i]) << i;
}

TEST(Packed, RaggedColumnsArePadded)
{
    // 40 columns -> 2 groups per row, second group half-padded.
    Matrix m = randomMatrix(2, 40, 5);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    EXPECT_EQ(t.groupsPerRow(), 2u);
    Matrix unpacked = t.unpackActivations(q);
    EXPECT_EQ(unpacked.cols(), 40u);
    Matrix direct = quantizeRowsGrouped(m, q);
    for (size_t i = 0; i < direct.size(); ++i)
        ASSERT_FLOAT_EQ(unpacked.flat()[i], direct.flat()[i]) << i;
}

TEST(Packed, TailGroupNotSubgroupAligned)
{
    // 36 columns: the tail group holds 4 real elements — less than
    // one subgroup — so every padding lane of every subgroup must
    // decode away cleanly in both roles.
    Matrix m = randomMatrix(3, 36, 7);
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();

    PackedM2xfpTensor ta = PackedM2xfpTensor::packActivations(m, aq);
    Matrix ua = ta.unpackActivations(aq);
    Matrix da = quantizeRowsGrouped(m, aq);
    for (size_t i = 0; i < da.size(); ++i)
        ASSERT_FLOAT_EQ(ua.flat()[i], da.flat()[i]) << i;

    PackedM2xfpTensor tw = PackedM2xfpTensor::packWeights(m, wq);
    Matrix uw = tw.unpackWeights(wq);
    Matrix dw = quantizeRowsGrouped(m, wq);
    for (size_t i = 0; i < dw.size(); ++i)
        ASSERT_FLOAT_EQ(uw.flat()[i], dw.flat()[i]) << i;
}

TEST(Packed, TailGroupSweepMatchesFunctionalCodec)
{
    // Every tail length mod the subgroup, including K < one group.
    ElemEmQuantizer aq = makeM2xfpActivationQuantizer();
    SgEmQuantizer wq = makeM2xfpWeightQuantizer();
    for (size_t cols : {1u, 7u, 8u, 9u, 31u, 33u, 40u, 63u, 65u}) {
        Matrix m = randomMatrix(2, cols, 100 + cols);
        PackedM2xfpTensor ta =
            PackedM2xfpTensor::packActivations(m, aq);
        Matrix ua = ta.unpackActivations(aq);
        Matrix da = quantizeRowsGrouped(m, aq);
        for (size_t i = 0; i < da.size(); ++i)
            ASSERT_FLOAT_EQ(ua.flat()[i], da.flat()[i])
                << cols << ":" << i;
        PackedM2xfpTensor tw = PackedM2xfpTensor::packWeights(m, wq);
        Matrix uw = tw.unpackWeights(wq);
        Matrix dw = quantizeRowsGrouped(m, wq);
        for (size_t i = 0; i < dw.size(); ++i)
            ASSERT_FLOAT_EQ(uw.flat()[i], dw.flat()[i])
                << cols << ":" << i;
    }
}

TEST(Packed, ElementCodeAccessorsConsistent)
{
    Matrix m = randomMatrix(3, 32, 6);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    // Re-encode row 1 directly and compare codes.
    ElemEmGroup g = q.encodeGroup(m.row(1));
    for (size_t c = 0; c < 32; ++c)
        EXPECT_EQ(t.elementCode(1, c), g.fp4Codes[c]) << c;
    EXPECT_EQ(t.scaleCode(1, 0), g.scale.code());
    for (size_t s = 0; s < 4; ++s)
        EXPECT_EQ(t.subgroupMeta(1, 0, s), g.meta[s]) << s;
}

TEST(Packed, GroupStreamAccessorsMatchElementAccessors)
{
    Matrix m = randomMatrix(3, 70, 8);
    ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    PackedM2xfpTensor t = PackedM2xfpTensor::packActivations(m, q);
    for (size_t r = 0; r < t.rows(); ++r) {
        for (size_t g = 0; g < t.groupsPerRow(); ++g) {
            const uint8_t *bytes = t.groupElementBytes(r, g);
            for (size_t i = 0; i < 32; i += 2) {
                uint8_t b = bytes[i / 2];
                EXPECT_EQ(b & 0xfu, t.elementCode(r, g * 32 + i));
                EXPECT_EQ(b >> 4, t.elementCode(r, g * 32 + i + 1));
            }
            uint8_t meta = t.groupMetaByte(r, g);
            for (size_t s = 0; s < 4; ++s)
                EXPECT_EQ((meta >> (2 * s)) & 0x3u,
                          t.subgroupMeta(r, g, s));
        }
    }
}

} // anonymous namespace
} // namespace m2x
