/**
 * @file
 * Unit + property tests for the Sg-EM weight codec (Eq. 3/4):
 * multiplier grid, adaptive exponent bias absorption, hierarchical
 * MSE optimality, and the Sg-EE variant.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/m2xfp.hh"
#include "core/sg_em.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(SgEm, MultiplierGridMatchesEq3)
{
    SgEmQuantizer q = SgEmQuantizer::paperWeights();
    ScaleE8m0 s = ScaleE8m0::fromExponent(2); // S = 4
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 0), 4.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 1), 5.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 2), 6.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 3), 7.0f);
}

TEST(SgEm, SgEeGridIsBinadeShifts)
{
    SgEmConfig cfg;
    cfg.extraExponent = true;
    cfg.metaBits = 2;
    SgEmQuantizer q(cfg);
    ScaleE8m0 s = ScaleE8m0::fromExponent(3); // S = 8
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 0), 8.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 1), 4.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 2), 2.0f);
    EXPECT_FLOAT_EQ(q.subgroupScale(s, 3), 1.0f);
}

TEST(SgEm, RecoversExactMultiplierGrid)
{
    // Data sitting exactly on the 1.25x grid quantizes losslessly.
    SgEmConfig cfg;
    cfg.groupSize = 8;
    cfg.subgroupSize = 8;
    cfg.adaptiveScale = false;
    SgEmQuantizer q(cfg);
    // amax=5 -> E0=0, S=1; multiplier 1.25 makes {5, 2.5, 1.25}
    // exactly representable (4, 2, 1 in FP4).
    std::vector<float> in{5.0f, 2.5f, 1.25f, 0.625f,
                          -5.0f, -2.5f, 0.0f, 1.875f};
    std::vector<float> out(8);
    q.quantizeGroup(in, out);
    for (size_t i = 0; i < in.size(); ++i)
        EXPECT_FLOAT_EQ(out[i], in[i]) << i;
    SgEmGroup g = q.encodeGroup(in);
    ASSERT_EQ(g.sgMeta.size(), 1u);
    EXPECT_EQ(g.sgMeta[0], 1); // multiplier code 01 -> 1.25
}

TEST(SgEm, EncodeDecodeRoundTripMatchesQuantize)
{
    Rng rng(5);
    SgEmQuantizer q = SgEmQuantizer::paperWeights();
    for (int t = 0; t < 200; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.normal(0, 1));
        SgEmGroup g = q.encodeGroup(in);
        std::vector<float> dec(32), direct(32);
        q.decodeGroup(g, dec);
        q.quantizeGroup(in, direct);
        for (size_t i = 0; i < in.size(); ++i)
            ASSERT_FLOAT_EQ(dec[i], direct[i]) << t << ":" << i;
    }
}

TEST(SgEm, AllZeroGroup)
{
    SgEmQuantizer q = SgEmQuantizer::paperWeights();
    std::vector<float> in(32, 0.0f), out(32, 9.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(SgEm, EbwIsFourPointFive)
{
    EXPECT_DOUBLE_EQ(SgEmQuantizer::paperWeights().ebw(), 4.5);
}

TEST(SgEm, MetaCodesWithinWidth)
{
    Rng rng(6);
    SgEmQuantizer q = SgEmQuantizer::paperWeights();
    for (int t = 0; t < 50; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(5.0));
        SgEmGroup g = q.encodeGroup(in);
        EXPECT_EQ(g.sgMeta.size(), 4u);
        for (uint8_t m : g.sgMeta)
            EXPECT_LE(m, 3);
    }
}

class SgEmProperty : public ::testing::TestWithParam<int>
{};

TEST_P(SgEmProperty, NeverWorseThanMxfp4)
{
    // Multiplier code 0 with bias 0 reproduces plain MXFP4, so the
    // hierarchical search can never do worse.
    Rng rng(4000 + GetParam());
    SgEmQuantizer sg = SgEmQuantizer::paperWeights();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> in(32), a(32), b(32);
    for (auto &v : in)
        v = static_cast<float>(rng.studentT(4.0) *
                               std::exp(rng.uniform(-2, 2)));
    sg.quantizeGroup(in, a);
    mx.quantizeGroup(in, b);
    EXPECT_LE(mse(in, a), mse(in, b) + 1e-12);
}

TEST_P(SgEmProperty, AdaptiveNeverWorseThanFixed)
{
    Rng rng(5000 + GetParam());
    SgEmConfig fixed_cfg;
    fixed_cfg.adaptiveScale = false;
    SgEmConfig adapt_cfg;
    adapt_cfg.adaptiveScale = true;
    SgEmQuantizer fixed_q(fixed_cfg), adapt_q(adapt_cfg);
    std::vector<float> in(32), a(32), b(32);
    for (auto &v : in)
        v = static_cast<float>(rng.normal(0, 1));
    fixed_q.quantizeGroup(in, a);
    adapt_q.quantizeGroup(in, b);
    EXPECT_LE(mse(in, b), mse(in, a) + 1e-12);
}

TEST_P(SgEmProperty, ChosenMultiplierIsArgmin)
{
    // Re-check the hierarchical optimality: no other (bias, k) pair
    // for the winning subgroup beats the chosen one at its bias.
    Rng rng(6000 + GetParam());
    SgEmQuantizer q = SgEmQuantizer::paperWeights();
    std::vector<float> in(8);
    for (auto &v : in)
        v = static_cast<float>(rng.normal(0, 1));
    SgEmConfig cfg;
    cfg.groupSize = 8;
    cfg.subgroupSize = 8;
    SgEmQuantizer q8(cfg);
    SgEmGroup g = q8.encodeGroup(in);
    std::vector<float> chosen_dec(8);
    q8.decodeGroup(g, chosen_dec);
    double chosen_err = mse(in, chosen_dec) * 8;

    const Minifloat &fp4 = Minifloat::fp4e2m1();
    for (unsigned m = 0; m < 4; ++m) {
        float s = q8.subgroupScale(g.scale, static_cast<uint8_t>(m));
        double err = 0;
        for (float x : in) {
            float v = fp4.quantize(x / s) * s;
            err += (v - x) * (v - x);
        }
        // Small slack: the two error sums accumulate in different
        // orders (float vs double), so exact ties can differ in the
        // last ulp.
        EXPECT_GE(err + 1e-6, chosen_err) << "m=" << m;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SgEmProperty,
                         ::testing::Range(0, 25));

TEST(SgEe, ShiftsSmallSubgroupDown)
{
    // A subgroup far below the block max should use a nonzero
    // exponent offset to regain resolution.
    SgEmConfig cfg;
    cfg.extraExponent = true;
    cfg.metaBits = 2;
    cfg.adaptiveScale = false;
    SgEmQuantizer q(cfg);
    std::vector<float> in(32);
    for (size_t i = 0; i < 8; ++i)
        in[i] = (i % 2) ? 4.0f : -4.0f; // big subgroup
    for (size_t i = 8; i < 16; ++i)
        in[i] = (i % 2) ? 0.4f : -0.4f; // small subgroup
    for (size_t i = 16; i < 32; ++i)
        in[i] = 0.9f;
    SgEmGroup g = q.encodeGroup(in);
    EXPECT_EQ(g.sgMeta[0], 0);
    EXPECT_GT(g.sgMeta[1], 0);
}

} // anonymous namespace
} // namespace m2x
