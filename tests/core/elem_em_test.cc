/**
 * @file
 * Unit + property tests for the Elem-EM activation codec (Alg. 1),
 * pinning the paper's worked examples: the bias-clamp encoding, the
 * §4.4.1 "bad case" (3.578 -> 3.75 instead of 3.5), tie resolution by
 * lowest index, and the guarantee that metadata never hurts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/elem_em.hh"
#include "core/m2xfp.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

ElemEmQuantizer
paperCodec()
{
    return makeM2xfpActivationQuantizer();
}

TEST(ElemEmMeta, EncodeDecodeBiasWindow)
{
    // decode(fp4_mag, meta) = fp4_mag*4 + meta - 1: offsets -1..+2.
    for (uint32_t fp4 = 1; fp4 <= 7; ++fp4) {
        for (uint8_t meta = 0; meta <= 3; ++meta) {
            uint32_t fp6 = ElemEmQuantizer::decodeFp6Mag(fp4, meta);
            EXPECT_EQ(static_cast<int>(fp6),
                      static_cast<int>(fp4 * 4) + meta - 1);
        }
    }
}

TEST(ElemEmMeta, EncodeMetaIdentityWhenFp6MatchesFp4)
{
    // FP6 code fp4*4 has the same value as the FP4 code; encoded =
    // fp6+1 lands at meta=1 and decodes back to fp4*4.
    for (uint32_t fp4 = 0; fp4 <= 7; ++fp4) {
        uint8_t meta = ElemEmQuantizer::encodeMeta(fp4 * 4, fp4);
        EXPECT_EQ(meta, 1);
        EXPECT_EQ(ElemEmQuantizer::decodeFp6Mag(fp4, meta), fp4 * 4);
    }
}

TEST(ElemEmMeta, ClampKeepsHighBitsEqualToFp4)
{
    // Whatever the FP6 code, the decoded code's high 3 bits equal the
    // FP4 magnitude (the Step-7 alignment invariant).
    for (uint32_t fp4 = 1; fp4 <= 7; ++fp4) {
        for (uint32_t fp6 = 0; fp6 < 32; ++fp6) {
            uint8_t meta = ElemEmQuantizer::encodeMeta(fp6, fp4);
            uint32_t dec = ElemEmQuantizer::decodeFp6Mag(fp4, meta);
            // dec in [fp4*4 - 1, fp4*4 + 2].
            EXPECT_GE(static_cast<int>(dec),
                      static_cast<int>(fp4 * 4) - 1);
            EXPECT_LE(dec, fp4 * 4 + 2);
        }
    }
}

TEST(ElemEm, PaperBadCase3p578)
{
    // §4.4.1/Fig. 8: FP16 3.578 quantizes to FP4 4.0; ideal FP6 is
    // 3.5 (error 0.078) but the clamped encoding reconstructs 3.75
    // (error 0.172).
    ElemEmQuantizer q(ElemEmConfig{8, 4, 1, ScaleRule::Floor, false,
                                   true});
    // Group max 4.2 puts the shared scale at 2^0 = 1.
    std::vector<float> in{3.578f, 0.5f, 0.25f, 0.1f,
                          4.2f,   1.0f, 0.5f,  0.1f};
    std::vector<float> out(8);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], 3.75f);
    EXPECT_NEAR(std::fabs(out[0] - in[0]), 0.172f, 1e-5f);
}

TEST(ElemEm, WideBiasVariantRecovers3p5)
{
    // The unclamped 3-bit ablation reaches the fifth candidate 3.5.
    ElemEmQuantizer q(ElemEmConfig{8, 4, 1, ScaleRule::Floor, false,
                                   false});
    std::vector<float> in{3.578f, 0.5f, 0.25f, 0.1f,
                          4.2f,   1.0f, 0.5f,  0.1f};
    std::vector<float> out(8);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], 3.5f);
}

TEST(ElemEm, Top1GainsFp6Precision)
{
    ElemEmQuantizer q(ElemEmConfig{8, 4, 1, ScaleRule::Floor, false,
                                   true});
    // 4.3 -> FP4 4.0, FP6 4.5 (meta +1): reconstruction 4.5.
    std::vector<float> in{4.3f, 0.5f, 0.25f, 0.1f,
                          1.0f, 0.5f, 0.25f, 0.1f};
    std::vector<float> out(8);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], 4.5f);
    // The second subgroup's max 1.0 is exactly on the FP4 grid.
    EXPECT_FLOAT_EQ(out[4], 1.0f);
}

TEST(ElemEm, TieResolvesToLowestIndex)
{
    // Two elements with the same FP4 code: the lower address gets
    // the metadata (Alg. 1 step 4).
    std::vector<uint8_t> codes{0x5, 0x6, 0x6, 0x1};
    EXPECT_EQ(ElemEmQuantizer::top1Index(codes), 1u);
    // Sign must not affect the comparison: -4.0 (0xe) vs +4.0 (0x6).
    std::vector<uint8_t> signed_codes{0xe, 0x6, 0x1, 0x0};
    EXPECT_EQ(ElemEmQuantizer::top1Index(signed_codes), 0u);
}

TEST(ElemEm, TieBreakEndToEnd)
{
    ElemEmQuantizer q(ElemEmConfig{4, 4, 1, ScaleRule::Floor, false,
                                   true});
    // 4.6 and 4.4 both quantize to FP4 4.0 (scale 1); index 0 gets
    // the FP6 refinement (4.5), index 1 stays at 4.0.
    std::vector<float> in{4.6f, 4.4f, 0.5f, 0.1f};
    std::vector<float> out(4);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], 4.5f);
    EXPECT_FLOAT_EQ(out[1], 4.0f);
}

TEST(ElemEm, AllZeroGroup)
{
    ElemEmQuantizer q = paperCodec();
    std::vector<float> in(32, 0.0f), out(32, 5.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

TEST(ElemEm, NegativeTopElementKeepsSign)
{
    ElemEmQuantizer q(ElemEmConfig{4, 4, 1, ScaleRule::Floor, false,
                                   true});
    std::vector<float> in{-4.3f, 0.5f, 0.25f, 0.1f};
    std::vector<float> out(4);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], -4.5f);
}

TEST(ElemEm, EncodeDecodeRoundTripMatchesQuantize)
{
    Rng rng(3);
    ElemEmQuantizer q = paperCodec();
    for (int t = 0; t < 200; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(4.0));
        ElemEmGroup g = q.encodeGroup(in);
        std::vector<float> dec(32), direct(32);
        q.decodeGroup(g, dec);
        q.quantizeGroup(in, direct);
        for (size_t i = 0; i < in.size(); ++i)
            ASSERT_FLOAT_EQ(dec[i], direct[i]) << t << ":" << i;
    }
}

TEST(ElemEm, MetadataBitsStayTwoBits)
{
    Rng rng(4);
    ElemEmQuantizer q = paperCodec();
    for (int t = 0; t < 100; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.normal(0, 3));
        ElemEmGroup g = q.encodeGroup(in);
        EXPECT_EQ(g.meta.size(), 4u); // 32/8 subgroups
        for (uint8_t m : g.meta)
            EXPECT_LE(m, 3);
    }
}

TEST(ElemEm, EbwIsFourPointFive)
{
    EXPECT_DOUBLE_EQ(paperCodec().ebw(), 4.5);
}

TEST(ElemEm, Top2EbwIsFourPointSevenFive)
{
    ElemEmQuantizer q(ElemEmConfig{32, 8, 2, ScaleRule::Floor, false,
                                   true});
    EXPECT_DOUBLE_EQ(q.ebw(), 4.75);
}

class ElemEmProperty : public ::testing::TestWithParam<int>
{};

TEST_P(ElemEmProperty, NeverWorseThanMxfp4)
{
    // The metadata only ever moves top-1 elements toward their true
    // value, so group MSE must be <= MXFP4's for any input.
    Rng rng(1000 + GetParam());
    ElemEmQuantizer em = paperCodec();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> in(32), a(32), b(32);
    for (auto &v : in)
        v = static_cast<float>(rng.studentT(3.0) *
                               std::exp(rng.uniform(-3, 3)));
    em.quantizeGroup(in, a);
    mx.quantizeGroup(in, b);
    EXPECT_LE(mse(in, a), mse(in, b) + 1e-12);
}

TEST_P(ElemEmProperty, TopElementErrorNeverIncreases)
{
    Rng rng(2000 + GetParam());
    ElemEmQuantizer em = paperCodec();
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> in(32), a(32), b(32);
    for (auto &v : in)
        v = static_cast<float>(rng.normal(0, 2));
    em.quantizeGroup(in, a);
    mx.quantizeGroup(in, b);
    for (size_t i = 0; i < 32; ++i) {
        EXPECT_LE(std::fabs(a[i] - in[i]),
                  std::fabs(b[i] - in[i]) + 1e-6f)
            << i;
    }
}

TEST_P(ElemEmProperty, AdaptiveScaleNeverWorseThanFixed)
{
    Rng rng(3000 + GetParam());
    ElemEmConfig fixed_cfg{32, 8, 1, ScaleRule::Floor, false, true};
    ElemEmConfig adapt_cfg{32, 8, 1, ScaleRule::Floor, true, true};
    ElemEmQuantizer fixed_q(fixed_cfg), adapt_q(adapt_cfg);
    std::vector<float> in(32), a(32), b(32);
    for (auto &v : in)
        v = static_cast<float>(rng.studentT(3.0));
    fixed_q.quantizeGroup(in, a);
    adapt_q.quantizeGroup(in, b);
    EXPECT_LE(mse(in, b), mse(in, a) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElemEmProperty,
                         ::testing::Range(0, 25));

} // anonymous namespace
} // namespace m2x
