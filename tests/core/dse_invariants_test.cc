/**
 * @file
 * Tensor-level invariants behind the Fig. 6 / Fig. 7 design-space
 * conclusions, checked over many random heavy-tailed groups:
 *   - top-1 ~ top-2 Elem-EM (capturing the max suffices),
 *   - smaller subgroups monotonically reduce error per strategy,
 *   - adaptive scale helps Sg-EM more than it helps Elem-EM (the
 *     asymmetry motivating the hybrid),
 *   - Sg-EE is the weakest strategy at equal budget.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/elem_em.hh"
#include "core/sg_em.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

/** Mean group MSE of a quantizer over heavy-tailed random groups. */
double
avgError(GroupQuantizer &q, uint64_t seed, int trials = 300)
{
    Rng rng(seed);
    std::vector<float> in(32), out(32);
    double total = 0;
    for (int t = 0; t < trials; ++t) {
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(4.0) *
                                   std::exp(rng.uniform(-2, 2)));
        q.quantizeGroup(in, out);
        total += mse(in, out);
    }
    return total / trials;
}

ElemEmQuantizer
em(unsigned sub, unsigned topk, bool adaptive)
{
    ElemEmConfig c;
    c.subgroupSize = sub;
    c.topK = topk;
    c.adaptiveScale = adaptive;
    return ElemEmQuantizer(c);
}

SgEmQuantizer
sg(unsigned sub, bool ee, bool adaptive)
{
    SgEmConfig c;
    c.subgroupSize = sub;
    c.metaBits = 2;
    c.extraExponent = ee;
    c.adaptiveScale = adaptive;
    return SgEmQuantizer(c);
}

TEST(DseInvariants, Top1NearlyMatchesTop2)
{
    // Fig. 6: top-1 and top-2 curves coincide — the subgroup max is
    // what matters.
    auto q1 = em(8, 1, false);
    auto q2 = em(8, 2, false);
    double e1 = avgError(q1, 101);
    double e2 = avgError(q2, 101);
    EXPECT_LE(e2, e1 + 1e-12);          // top2 can only help...
    EXPECT_LT((e1 - e2) / e1, 0.25);    // ...but only marginally
}

TEST(DseInvariants, SmallerSubgroupsMonotonicallyHelp)
{
    double prev = 1e30;
    for (unsigned sub : {32u, 16u, 8u, 4u, 2u}) {
        auto q = em(sub, 1, false);
        double e = avgError(q, 102);
        EXPECT_LE(e, prev + 1e-12) << sub;
        prev = e;
    }
    prev = 1e30;
    for (unsigned sub : {32u, 16u, 8u, 4u}) {
        auto q = sg(sub, false, false);
        double e = avgError(q, 103);
        EXPECT_LE(e, prev + 1e-12) << sub;
        prev = e;
    }
}

TEST(DseInvariants, AdaptiveScaleHelpsSgEmMoreThanElemEm)
{
    // The Fig. 6 -> Fig. 7 shift: adaptation rebalances the whole
    // block, which benefits subgroup-scale refinement the most.
    auto em_f = em(8, 1, false);
    auto em_a = em(8, 1, true);
    auto sg_f = sg(8, false, false);
    auto sg_a = sg(8, false, true);
    double gain_em =
        (avgError(em_f, 104) - avgError(em_a, 104));
    double gain_sg =
        (avgError(sg_f, 104) - avgError(sg_a, 104));
    EXPECT_GT(gain_sg, gain_em);
}

TEST(DseInvariants, AdaptiveSgEmBeatsFixedElemEmAtEqualBudget)
{
    // Fig. 7's headline: Sg-EM-2bit-adaptive overtakes Elem-EM at
    // the same 4.5-bit budget — the reason weights use Sg-EM.
    auto em_f = em(8, 1, false);
    auto sg_a = sg(8, false, true);
    EXPECT_LT(avgError(sg_a, 105), avgError(em_f, 105));
}

TEST(DseInvariants, SgEeIsTheWeakestStrategy)
{
    // Fig. 6/7: subgroup range extension cannot address block-max
    // rounding; Sg-EE trails both mantissa strategies.
    auto sgee_f = sg(8, true, false);
    auto sgem_f = sg(8, false, false);
    auto elem_f = em(8, 1, false);
    double e_sgee = avgError(sgee_f, 106);
    EXPECT_GT(e_sgee, avgError(sgem_f, 106));
    EXPECT_GT(e_sgee, avgError(elem_f, 106));
}

TEST(DseInvariants, AdaptiveHelpsSgEeTooButNotEnough)
{
    auto sgee_f = sg(8, true, false);
    auto sgee_a = sg(8, true, true);
    auto sgem_a = sg(8, false, true);
    double e_f = avgError(sgee_f, 107);
    double e_a = avgError(sgee_a, 107);
    EXPECT_LE(e_a, e_f + 1e-12);
    EXPECT_GT(e_a, avgError(sgem_a, 107)); // still behind Sg-EM
}

} // anonymous namespace
} // namespace m2x
