/**
 * @file
 * Tests for the Elem-EE strategy (element-level extra exponent) and
 * the paper's claim for omitting it: exponent offsets cannot fix the
 * block-maximum rounding error, so Elem-EE trails Elem-EM at equal
 * metadata budget.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/elem_ee.hh"
#include "core/elem_em.hh"
#include "mx/mxfp.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace {

TEST(ElemEe, EncodeDecodeRoundTripMatchesQuantize)
{
    Rng rng(61);
    ElemEeQuantizer q;
    for (int t = 0; t < 100; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(4.0));
        ElemEeGroup g = q.encodeGroup(in);
        std::vector<float> dec(32), direct(32);
        q.decodeGroup(g, dec);
        q.quantizeGroup(in, direct);
        for (size_t i = 0; i < 32; ++i)
            ASSERT_FLOAT_EQ(dec[i], direct[i]) << t << ":" << i;
    }
}

TEST(ElemEe, OffsetCannotRescueTheClippedMax)
{
    // The §4.2.1 rationale for omitting Elem-EE, demonstrated: under
    // floor scaling amax/S < 8 while FP4 reaches 6, so the only
    // upward offset doubles 6 to 12 — overshooting every clipped
    // value (all < 8). The encoder therefore keeps offset 0 and the
    // max stays at the clipped 6.0: extra exponent bits cannot
    // address block-max rounding error.
    ElemEeQuantizer q(ElemEeConfig{8, 8, 2, 2, ScaleRule::Floor});
    std::vector<float> in(8, 0.1f);
    in[0] = 7.9f; // scale 1: target 7.9, FP4 clips to 6
    std::vector<float> out(8);
    q.quantizeGroup(in, out);
    EXPECT_FLOAT_EQ(out[0], 6.0f);
}

TEST(ElemEe, MetaWithinWidth)
{
    Rng rng(62);
    ElemEeQuantizer q;
    std::vector<float> in(32);
    for (auto &v : in)
        v = static_cast<float>(rng.normal(0, 2));
    ElemEeGroup g = q.encodeGroup(in);
    EXPECT_EQ(g.meta.size(), 4u);
    for (uint8_t m : g.meta)
        EXPECT_LE(m, 3);
}

TEST(ElemEe, EbwMatchesElemEmAtSameBudget)
{
    ElemEeQuantizer ee;                      // 2 bits / subgroup 8
    ElemEmQuantizer em(ElemEmConfig{});      // 2 bits / subgroup 8
    EXPECT_DOUBLE_EQ(ee.ebw(), em.ebw());    // both 4.5
}

class ElemEeVsEm : public ::testing::TestWithParam<int>
{};

TEST_P(ElemEeVsEm, ExtraMantissaBeatsExtraExponentOnAverage)
{
    // The §4.2.1 argument, measured: over heavy-tailed groups the
    // mantissa refinement wins at equal EBW. (Per-group EE can win
    // occasionally when the max clips; the average must favour EM.)
    Rng rng(9000 + GetParam());
    ElemEeQuantizer ee;
    ElemEmQuantizer em{ElemEmConfig{}};
    double e_ee = 0, e_em = 0;
    std::vector<float> out(32);
    for (int t = 0; t < 200; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(4.0) *
                                   std::exp(rng.uniform(-2, 2)));
        ee.quantizeGroup(in, out);
        e_ee += mse(in, out);
        em.quantizeGroup(in, out);
        e_em += mse(in, out);
    }
    EXPECT_LT(e_em, e_ee);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ElemEeVsEm, ::testing::Range(0, 10));

TEST(ElemEe, NeverWorseThanMxfp4)
{
    // Offset 0 reproduces plain FP4, so the searched offset can only
    // help the top-1 element.
    Rng rng(63);
    ElemEeQuantizer ee;
    MxfpQuantizer mx = MxfpQuantizer::mxfp4();
    std::vector<float> a(32), b(32);
    for (int t = 0; t < 200; ++t) {
        std::vector<float> in(32);
        for (auto &v : in)
            v = static_cast<float>(rng.studentT(3.0));
        ee.quantizeGroup(in, a);
        mx.quantizeGroup(in, b);
        EXPECT_LE(mse(in, a), mse(in, b) + 1e-12) << t;
    }
}

TEST(ElemEe, ZeroGroup)
{
    ElemEeQuantizer q;
    std::vector<float> in(32, 0.0f), out(32, 1.0f);
    q.quantizeGroup(in, out);
    for (float v : out)
        EXPECT_FLOAT_EQ(v, 0.0f);
}

} // anonymous namespace
} // namespace m2x
