#!/usr/bin/env python3
"""Perf-regression gate over BENCH_runtime.json, run by CI bench smoke.

Compares a freshly generated BENCH_runtime.json against the committed
baseline and fails when any machine-normalized throughput ratio drops
by more than the threshold (default 15%). Only ratio metrics are
compared — speedup-vs-reference numbers measured on the *same* run of
the *same* machine — never absolute seconds, so a slower CI runner
cannot fail the gate but a genuinely regressed kernel will.

Rows are matched by (section, shape, isa, threads); rows present in
only one file (a quick run's subset, a tier the runner lacks, thread
counts the runner cannot honestly measure) are skipped. At least one
row must match, otherwise the comparison is vacuous and the gate
fails loudly instead of green-washing.

Escape hatch: set M2X_BENCH_BASELINE_SKIP=1 to skip the comparison
(documented in BUILDING.md — for intentional perf-trajectory resets
where the baseline itself is being recommitted).

Usage:
  tools/check_bench_regression.py --fresh NEW.json \
      [--baseline BENCH_runtime.json] [--threshold 0.15]
"""

import argparse
import json
import os
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

# section -> (shape keys, per-row keys, ratio metrics). The shape keys
# identify the outer entry, the row keys identify one measurement in
# its "results" list, and the metrics are the machine-normalized
# ratios compared across runs.
GEMM = (("m", "n", "k"), ("isa", "threads"),
        ("speedup_vs_ref_gemm", "speedup_vs_unpack_gemm"))
PACK = (("rows", "cols"), ("isa", "threads"),
        ("speedup_vs_functional",))
FWD = (("m", "n", "k"), ("threads",), ("speedup_vs_ref",))

# Per-metric overrides of the default --threshold. flash_vs_old times
# two single-query attends back to back — microsecond-scale work at
# the short contexts — so even as a paired same-run ratio it swings
# roughly 1.5x-2.8x at the 256/1024 contexts when the shared runner
# changes speed regime mid-window; the wide band still catches a
# real kernel regression (losing the blocked-attend advantage reads
# ~1.0x against any committed baseline >= 2x) without flaking on
# runner noise.
METRIC_THRESHOLDS = {"flash_vs_old": 0.45}


def row_index(doc, section, shape_keys, row_keys, metrics):
    """(section, shape..., row...) -> {metric: value}."""
    out = {}
    for entry in doc.get(section, []):
        shape = tuple(entry[k] for k in shape_keys)
        for row in entry.get("results", []):
            key = (section, shape, tuple(row[k] for k in row_keys))
            out[key] = {m: row[m] for m in metrics if m in row}
    return out


def ratio_rows(doc):
    rows = row_index(doc, "gemm", *GEMM)
    rows.update(row_index(doc, "pack_activations", *PACK))
    rows.update(row_index(doc, "forward", *FWD))
    # Per-shape GEMM trajectory ratios (1-thread, best tiers).
    for entry in doc.get("gemm", []):
        shape = tuple(entry[k] for k in GEMM[0])
        summary = {
            m: entry[m]
            for m in ("blocked_vs_pr3_1t", "avx2_vs_scalar_1t",
                      "avx512_vs_scalar_1t") if m in entry
        }
        if summary:
            rows[("gemm", shape, ("summary",))] = summary
    # Whole-model and decode sections are single rows. Their shape
    # keys carry the full workload (quick mode shrinks the model and
    # the token counts), so a quick run never matches — and never
    # falsely gates against — a full-run baseline row.
    model = doc.get("model", {})
    if "speedup_vs_ref" in model:
        rows[("model",
              (model.get("name"), model.get("batch"),
               model.get("seq_len")),
              (model.get("isa"), model.get("threads")))] = {
                  "speedup_vs_ref": model["speedup_vs_ref"]
              }
    dec = doc.get("decode", {})
    if "packed_vs_fp32_tokens_per_s" in dec:
        rows[("decode",
              (dec.get("model"), dec.get("layers"), dec.get("batch"),
               dec.get("prefill_tokens"), dec.get("decode_steps")),
              (dec.get("isa"), dec.get("threads")))] = {
                  "packed_vs_fp32_tokens_per_s":
                      dec["packed_vs_fp32_tokens_per_s"]
              }
    # Long-context attend rows are keyed (context, mode, window_s,
    # isa, threads); flash_vs_old compares the flash and legacy
    # attends of the same run, so it is runner-speed independent —
    # but the quick run's 0.1 s timing windows carry far more
    # single-query jitter than the full run's 0.2 s windows, so the
    # window length is part of the key and a --quick run never gates
    # against a full-run baseline (the model/decode precedent).
    lc = doc.get("long_context", {})
    for row in lc.get("rows", []):
        if "flash_vs_old" in row:
            rows[("long_context",
                  (row.get("context"), row.get("mode"),
                   row.get("window_s")),
                  (row.get("isa"), row.get("threads")))] = {
                      "flash_vs_old": row["flash_vs_old"]
                  }
    # The serving bench (BENCH_serving.json) is likewise one row per
    # run, keyed by the whole Poisson workload + arena geometry so a
    # --quick run can never match a full-run baseline. Both ratios
    # compare the packed and fp32 runs of the same invocation on the
    # same machine, so they are runner-speed independent.
    srv = doc.get("serving", {})
    if "packed_vs_fp32_tokens_per_s" in srv:
        rows[("serving",
              (srv.get("model"), srv.get("layers"),
               srv.get("requests"), srv.get("mean_gap_steps"),
               tuple(srv.get("prompt_tokens", [])),
               tuple(srv.get("gen_tokens", [])),
               srv.get("page_rows"), srv.get("arena_pages"),
               srv.get("max_batch")),
              (srv.get("isa"), srv.get("threads")))] = {
                  m: srv[m]
                  for m in ("packed_vs_fp32_tokens_per_s",
                            "concurrent_vs_fp32_capacity")
                  if m in srv
              }
    return rows


def check_cross_format(fresh_doc, base_doc):
    """Structural + accuracy gate over the cross_format section.

    The section commits one row per packed codec: the GEMM accuracy
    against fp32 (a machine-independent property of the format, so it
    IS compared across runs, unlike the throughput ratios) and decode
    tokens/s (only checked for being positive — absolute speed never
    gates). Rows are emitted in ascending rel_rmse order by the
    bench; the gate re-asserts the ordering so a codec whose kernels
    silently lost accuracy cannot keep its committed rank.
    """
    errors = []
    rows = fresh_doc.get("cross_format", [])
    if len(rows) < 3:
        return [f"cross_format: {len(rows)} format row(s), "
                "need >= 3"]
    prev_rel = None
    for row in rows:
        fmt = row.get("format", "?")
        tps = row.get("decode_tokens_per_s", 0)
        if not tps > 0:
            errors.append(f"cross_format/{fmt}: non-positive "
                          f"decode_tokens_per_s ({tps})")
        rel = row.get("gemm_rel_rmse_vs_fp32")
        if rel is None or not 0 < rel < 1:
            errors.append(f"cross_format/{fmt}: "
                          f"gemm_rel_rmse_vs_fp32 out of (0, 1): "
                          f"{rel}")
            continue
        if prev_rel is not None and rel < prev_rel:
            errors.append(f"cross_format/{fmt}: rows not in "
                          f"ascending rel_rmse order ({rel:.6f} "
                          f"after {prev_rel:.6f})")
        prev_rel = rel
    # Accuracy vs the committed baseline: the operands are fixed in
    # the bench, so rel_rmse only moves if a codec's quantize/decode
    # math changed (vector-tier reassociation is ~1e-6, far below
    # the 1% band).
    base_rows = {r.get("format"): r
                 for r in base_doc.get("cross_format", [])}
    for row in rows:
        b = base_rows.get(row.get("format"))
        if b is None or "gemm_rel_rmse_vs_fp32" not in b:
            continue
        fv, bv = row["gemm_rel_rmse_vs_fp32"], \
            b["gemm_rel_rmse_vs_fp32"]
        if bv > 0 and abs(fv - bv) / bv > 0.01:
            errors.append(
                f"cross_format/{row['format']}: accuracy moved "
                f"{bv:.6f} -> {fv:.6f} (> 1%) — codec math changed")
    if not errors:
        print(f"check_bench_regression: cross_format ok "
              f"({len(rows)} formats, accuracy order "
              + " <= ".join(r['format'] for r in rows) + ")")
    return errors


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--fresh", required=True,
                    help="freshly generated BENCH_runtime.json")
    ap.add_argument("--baseline", default=None,
                    help="committed baseline (default: the repo-root "
                         "file matching the fresh doc's bench id — "
                         "BENCH_serving.json for serving_runtime, "
                         "else BENCH_runtime.json)")
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max fractional drop before failing "
                         "(default 0.15)")
    args = ap.parse_args()

    if os.environ.get("M2X_BENCH_BASELINE_SKIP"):
        print("check_bench_regression: M2X_BENCH_BASELINE_SKIP set "
              "- skipping baseline comparison")
        return 0

    fresh_doc = json.load(open(args.fresh))
    if args.baseline is None:
        name = ("BENCH_serving.json"
                if fresh_doc.get("bench") == "serving_runtime"
                else "BENCH_runtime.json")
        args.baseline = str(REPO / name)
    base_doc = json.load(open(args.baseline))
    fresh = ratio_rows(fresh_doc)
    base = ratio_rows(base_doc)

    # The runtime bench must carry a valid cross_format section; the
    # serving bench (own baseline file) has none.
    cf_failures = []
    if fresh_doc.get("bench") != "serving_runtime":
        cf_failures = check_cross_format(fresh_doc, base_doc)

    matched = 0
    matched_rows = 0
    failures = []
    for key, base_metrics in sorted(base.items()):
        fresh_metrics = fresh.get(key)
        if fresh_metrics is None:
            continue
        matched_rows += 1
        for metric, base_v in base_metrics.items():
            fresh_v = fresh_metrics.get(metric)
            if fresh_v is None or base_v <= 0:
                continue
            matched += 1
            drop = 1.0 - fresh_v / base_v
            tag = "/".join(str(p) for p in
                           (key[0], *key[1], *key[2], metric))
            threshold = METRIC_THRESHOLDS.get(metric, args.threshold)
            if drop > threshold:
                failures.append(
                    f"FAIL {tag}: {base_v:.3f} -> {fresh_v:.3f} "
                    f"({100 * drop:.1f}% drop > "
                    f"{100 * threshold:.0f}%)")
            else:
                # Per-row delta on success too, so CI logs show
                # exactly what the gate compared and by how much
                # each ratio moved (+ = faster than baseline).
                print(f"  ok {tag}: {base_v:.3f} -> {fresh_v:.3f} "
                      f"({100 * -drop:+.1f}%)")

    failures.extend(cf_failures)
    if matched == 0:
        print("check_bench_regression: no comparable rows between "
              f"{args.fresh} and {args.baseline} - the gate would be "
              "vacuous. Regenerate the baseline on comparable "
              "hardware or set M2X_BENCH_BASELINE_SKIP=1.")
        return 1
    if failures:
        print(f"\n{len(failures)} regression(s) past the "
              f"{100 * args.threshold:.0f}% threshold:")
        for f in failures:
            print(" ", f)
        print("If the drop is intentional, recommit the baseline "
              "and/or set M2X_BENCH_BASELINE_SKIP=1 for this run "
              "(see BUILDING.md).")
        return 1
    print(f"check_bench_regression: {matched} metric(s) across "
          f"{matched_rows} matched row(s), no regression past the "
          f"{100 * args.threshold:.0f}% threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
