#!/usr/bin/env python3
"""Validator for Chrome trace_event JSON written by the telemetry
layer (M2X_TRACE / --trace), run by the CI traced-decode smoke leg.

Checks, in order:
  1. The file parses as JSON and has the {"traceEvents": [...]}
     object form Perfetto and chrome://tracing load.
  2. Every event is well-formed for its phase: "X" complete events
     carry name/pid/tid and non-negative numeric ts/dur; "B"/"E"
     duration events (the writer emits only "X", but the format
     allows both) balance per (pid, tid) stack; "M" metadata events
     carry a name.
  3. The expected span names are present (--require, repeatable;
     substring match over event names), so a refactor that silently
     drops the decode/GEMM instrumentation fails CI rather than
     shipping an empty trace.

Usage:
  tools/check_trace.py TRACE.json [--require NAME ...]
          [--min-events N]
"""

import argparse
import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    return 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace_event JSON file")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="event name that must appear at least once")
    ap.add_argument("--min-events", type=int, default=1,
                    help="minimum number of span events (default 1)")
    args = ap.parse_args()

    try:
        with open(args.trace) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return fail(f"{args.trace}: not readable as JSON: {e}")

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            return fail(f"{args.trace}: no traceEvents array")
    elif isinstance(doc, list):
        events = doc  # the bare-array form is also loadable
    else:
        return fail(f"{args.trace}: root is neither object nor array")

    problems = []
    names = set()
    spans = 0
    open_stacks = {}  # (pid, tid) -> [names] for B/E balancing
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i}: not an object")
            continue
        ph = ev.get("ph")
        name = ev.get("name")
        if ph in ("X", "B", "E", "M") and ph != "E":
            if not isinstance(name, str) or not name:
                problems.append(f"event {i}: ph={ph} without a name")
                continue
        if ph == "X":
            spans += 1
            names.add(name)
            for field in ("ts", "dur"):
                v = ev.get(field)
                if not isinstance(v, (int, float)) or v < 0:
                    problems.append(
                        f"event {i} ({name}): bad {field}: {v!r}")
            for field in ("pid", "tid"):
                if not isinstance(ev.get(field), int):
                    problems.append(
                        f"event {i} ({name}): missing {field}")
        elif ph == "B":
            spans += 1
            names.add(name)
            key = (ev.get("pid"), ev.get("tid"))
            open_stacks.setdefault(key, []).append(name)
        elif ph == "E":
            key = (ev.get("pid"), ev.get("tid"))
            stack = open_stacks.get(key)
            if not stack:
                problems.append(
                    f"event {i}: E without matching B on {key}")
            else:
                stack.pop()
        elif ph == "M":
            pass
        elif ph is None:
            problems.append(f"event {i}: no ph field")
        # Other phases (counters, flows, ...) are legal; ignored.

    for key, stack in open_stacks.items():
        if stack:
            problems.append(
                f"{len(stack)} unclosed B event(s) on {key}: "
                f"{stack[:4]}")

    if spans < args.min_events:
        problems.append(
            f"only {spans} span event(s), expected at least "
            f"{args.min_events}")
    for req in args.require:
        if not any(req in n for n in names):
            problems.append(f"required span name absent: {req}")

    for p in problems:
        print(f"check_trace: {args.trace}: {p}", file=sys.stderr)
    if problems:
        return 1
    print(f"check_trace: OK ({spans} span events, "
          f"{len(names)} distinct names, "
          f"{len(args.require)} required names present)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
