#!/usr/bin/env python3
"""Documentation health check, run by the CI docs job.

Three guarantees:
  1. Presence: the documentation entry points exist and README links
     to them (docs/ARCHITECTURE.md and docs/FORMATS.md are part of
     the repo's acceptance surface, not optional extras).
  2. Link integrity: every relative markdown link in every tracked
     .md file points at a path that exists, so file moves and
     renames cannot silently strand the docs.
  3. The runtime support matrix: docs/FORMATS.md must keep its
     "Runtime support matrix" section and the section must mention
     every registered packed codec, so a codec added to the runtime
     cannot ship undocumented.

Exits non-zero with one line per problem.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

REQUIRED_DOCS = [
    "README.md",
    "BUILDING.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/FORMATS.md",
    "docs/SERVING.md",
    "docs/OBSERVABILITY.md",
]

# README must reference the docs/ subsystem entry points.
REQUIRED_README_LINKS = [
    "docs/ARCHITECTURE.md",
    "docs/FORMATS.md",
    "docs/SERVING.md",
    "docs/OBSERVABILITY.md",
    "BUILDING.md",
]

# docs/FORMATS.md must document runtime support per packed codec.
# Keep in sync with the registry in src/core/packed_codec.cc.
MATRIX_HEADING = "## Runtime support matrix"
PACKED_CODECS = ["elem_em", "elem_ee", "sg_em", "m2_nvfp4"]

# Inline markdown links: [text](target). Reference-style links are
# not used in this repo.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

# Directories that hold no tracked documentation.
SKIP_DIRS = {"build", "build-asan", ".git"}


def md_files():
    for path in sorted(REPO.rglob("*.md")):
        rel = path.relative_to(REPO)
        if rel.parts[0] in SKIP_DIRS:
            continue
        yield path


def check():
    problems = []

    for rel in REQUIRED_DOCS:
        if not (REPO / rel).is_file():
            problems.append(f"missing required doc: {rel}")

    readme = REPO / "README.md"
    readme_text = readme.read_text() if readme.is_file() else ""
    for target in REQUIRED_README_LINKS:
        if target not in readme_text:
            problems.append(f"README.md does not link {target}")

    formats = REPO / "docs/FORMATS.md"
    formats_text = formats.read_text() if formats.is_file() else ""
    if MATRIX_HEADING not in formats_text:
        problems.append(
            f"docs/FORMATS.md lacks the '{MATRIX_HEADING}' section")
    else:
        # Check codec coverage within the section (up to the next
        # same-level heading) so a row cannot quietly migrate out.
        section = formats_text.split(MATRIX_HEADING, 1)[1]
        section = section.split("\n## ", 1)[0]
        for codec in PACKED_CODECS:
            if f"`{codec}`" not in section:
                problems.append(
                    "docs/FORMATS.md runtime support matrix does "
                    f"not cover codec {codec}")

    n_links = 0
    for path in md_files():
        rel = path.relative_to(REPO)
        for m in LINK_RE.finditer(path.read_text()):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            target = target.split("#", 1)[0]
            if not target:
                continue  # pure same-file anchor
            n_links += 1
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                problems.append(
                    f"{rel}: broken relative link -> {m.group(1)}")

    for p in problems:
        print(f"check_docs: {p}", file=sys.stderr)
    if problems:
        return 1
    print(f"check_docs: OK ({n_links} relative links verified, "
          f"{len(REQUIRED_DOCS)} required docs present)")
    return 0


if __name__ == "__main__":
    sys.exit(check())
