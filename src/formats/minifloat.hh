/**
 * @file
 * Generic parameterized minifloat codec.
 *
 * All of the narrow element types used by MX-family formats (FP4 E2M1,
 * FP6 E2M3/E3M2, FP8 E4M3/E5M2) are sign + exponent + mantissa codes
 * with subnormals. This class decodes/encodes any such layout with
 * round-to-nearest-even and saturation to the largest finite value,
 * which is the quantization convention used by the OCP MX spec and by
 * the M2XFP paper.
 *
 * Encoding is implemented against a precomputed table of all positive
 * representable values (at most 2^(E+M) entries), which makes the RNE
 * semantics — including tie-to-even-code behaviour — self-evidently
 * correct and cheap to test exhaustively.
 */

#ifndef M2X_FORMATS_MINIFLOAT_HH__
#define M2X_FORMATS_MINIFLOAT_HH__

#include <cstdint>
#include <string>
#include <vector>

namespace m2x {

/**
 * A concrete minifloat layout: 1 sign bit, expBits exponent bits,
 * mantBits mantissa bits.
 */
class Minifloat
{
  public:
    /** How the top exponent codes are interpreted. */
    enum class Special
    {
        None,    //!< every code is finite (FP4/FP6 per OCP)
        NanOnly, //!< exp=max, mant=max is NaN; rest finite (FP8 E4M3)
        InfNan,  //!< exp=max is Inf (mant=0) / NaN (IEEE, FP8 E5M2)
    };

    Minifloat(unsigned exp_bits, unsigned mant_bits, int bias,
              Special special, std::string name);

    /** Decode an integer code (low bits() bits used). NaN -> quiet NaN. */
    float decode(uint32_t code) const;

    /**
     * Encode with round-to-nearest-even, saturating at the largest
     * finite magnitude. NaN inputs map to +max (quantizers never emit
     * NaN). Signed zero is preserved in the sign bit.
     */
    uint32_t encode(float x) const;

    /** decode(encode(x)) — quantize onto this format's grid. */
    float quantize(float x) const { return decode(encode(x)); }

    /** Total bit width including sign. */
    unsigned bits() const { return 1 + expBits_ + mantBits_; }
    unsigned expBits() const { return expBits_; }
    unsigned mantBits() const { return mantBits_; }
    int bias() const { return bias_; }
    const std::string &name() const { return name_; }

    /** Number of distinct codes (2^bits). */
    uint32_t codeCount() const { return 1u << bits(); }

    /** Largest finite magnitude — the paper's "M" (6 for FP4). */
    float maxValue() const { return maxValue_; }

    /** Largest representable power of two — the paper's "P" (4). */
    float maxPow2() const { return maxPow2_; }

    /** Smallest positive (subnormal) magnitude. */
    float minSubnormal() const { return minSub_; }

    /**
     * Positive finite values in increasing order, one per magnitude
     * code (exposed for exhaustive tests and the hardware LUTs).
     */
    const std::vector<float> &positiveValues() const { return posValues_; }

    /** The magnitude code (sign stripped) of @p x's encoding. */
    uint32_t magnitudeCode(float x) const;

    /** @{ Canonical shared instances of the formats the paper uses. */
    static const Minifloat &fp4e2m1();
    static const Minifloat &fp6e2m3();
    static const Minifloat &fp6e3m2();
    static const Minifloat &fp8e4m3();
    static const Minifloat &fp8e5m2();
    /** @} */

  private:
    unsigned expBits_;
    unsigned mantBits_;
    int bias_;
    Special special_;
    std::string name_;

    float maxValue_ = 0.0f;
    float maxPow2_ = 0.0f;
    float minSub_ = 0.0f;
    /** posValues_[magnitude code] = value; strictly nondecreasing. */
    std::vector<float> posValues_;

    float decodeMagnitude(uint32_t mag) const;
};

} // namespace m2x

#endif // M2X_FORMATS_MINIFLOAT_HH__
