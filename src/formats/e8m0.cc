#include "formats/e8m0.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m2x {

ScaleE8m0
ScaleE8m0::fromExponent(int e)
{
    ScaleE8m0 s;
    s.exp_ = std::clamp(e, minExp, maxExp);
    return s;
}

ScaleE8m0
ScaleE8m0::fromCode(uint8_t code)
{
    m2x_assert(code != 255, "E8M0 code 255 is NaN");
    ScaleE8m0 s;
    s.exp_ = static_cast<int>(code) - bias;
    return s;
}

float
ScaleE8m0::value() const
{
    return std::exp2(static_cast<float>(exp_));
}

float
ScaleE8m0::inverse() const
{
    return std::exp2(static_cast<float>(-exp_));
}

} // namespace m2x
