#include "formats/intcodec.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace m2x {

int64_t
roundNearestEven(double x)
{
    double r = std::nearbyint(x); // default FE_TONEAREST is RNE
    // nearbyint honours the dynamic rounding mode; enforce RNE
    // explicitly for the half-integer case to stay mode-independent.
    double diff = x - std::floor(x);
    if (diff == 0.5) {
        double lo = std::floor(x);
        r = (static_cast<int64_t>(lo) % 2 == 0) ? lo : lo + 1.0;
    }
    return static_cast<int64_t>(r);
}

IntSym::IntSym(unsigned bits) : bits_(bits)
{
    m2x_assert(bits >= 2 && bits <= 16, "bad int width %u", bits);
    maxCode_ = (1 << (bits - 1)) - 1;
}

int32_t
IntSym::encode(float x) const
{
    int64_t r = roundNearestEven(static_cast<double>(x));
    return static_cast<int32_t>(
        std::clamp<int64_t>(r, -maxCode_, maxCode_));
}

} // namespace m2x
