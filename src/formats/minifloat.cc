#include "formats/minifloat.hh"

#include <cmath>
#include <limits>

#include "util/logging.hh"

namespace m2x {

Minifloat::Minifloat(unsigned exp_bits, unsigned mant_bits, int bias,
                     Special special, std::string name)
    : expBits_(exp_bits), mantBits_(mant_bits), bias_(bias),
      special_(special), name_(std::move(name))
{
    m2x_assert(exp_bits >= 1 && exp_bits <= 8, "bad exp bits %u",
               exp_bits);
    m2x_assert(mant_bits <= 10, "bad mant bits %u", mant_bits);

    uint32_t mag_codes = 1u << (expBits_ + mantBits_);
    posValues_.resize(mag_codes);
    for (uint32_t m = 0; m < mag_codes; ++m)
        posValues_[m] = decodeMagnitude(m);

    // Largest finite magnitude.
    for (uint32_t m = mag_codes; m-- > 0;) {
        if (std::isfinite(posValues_[m]) && !std::isnan(posValues_[m])) {
            maxValue_ = posValues_[m];
            break;
        }
    }
    // Largest representable power of two <= maxValue_.
    maxPow2_ = std::exp2(std::floor(std::log2(maxValue_)));
    minSub_ = posValues_[1];
}

float
Minifloat::decodeMagnitude(uint32_t mag) const
{
    uint32_t e = mag >> mantBits_;
    uint32_t m = mag & ((1u << mantBits_) - 1);
    uint32_t emax = (1u << expBits_) - 1;

    if (special_ == Special::InfNan && e == emax) {
        return m == 0 ? std::numeric_limits<float>::infinity()
                      : std::numeric_limits<float>::quiet_NaN();
    }
    if (special_ == Special::NanOnly && e == emax &&
        m == (1u << mantBits_) - 1) {
        return std::numeric_limits<float>::quiet_NaN();
    }

    float mant_scale = std::exp2(-static_cast<float>(mantBits_));
    if (e == 0) {
        // Subnormal: 0.m * 2^(1 - bias)
        return std::exp2(static_cast<float>(1 - bias_)) *
               (static_cast<float>(m) * mant_scale);
    }
    return std::exp2(static_cast<float>(static_cast<int>(e) - bias_)) *
           (1.0f + static_cast<float>(m) * mant_scale);
}

float
Minifloat::decode(uint32_t code) const
{
    uint32_t mag_bits = expBits_ + mantBits_;
    uint32_t mag = code & ((1u << mag_bits) - 1);
    uint32_t sign = (code >> mag_bits) & 1u;
    float v = posValues_[mag];
    return sign ? -v : v;
}

uint32_t
Minifloat::magnitudeCode(float x) const
{
    uint32_t mag_bits = expBits_ + mantBits_;
    return encode(x) & ((1u << mag_bits) - 1);
}

uint32_t
Minifloat::encode(float x) const
{
    uint32_t mag_bits = expBits_ + mantBits_;
    uint32_t sign = std::signbit(x) ? 1u : 0u;
    float a = std::fabs(x);
    if (std::isnan(x)) {
        sign = 0;
        a = maxValue_;
    }
    if (a >= maxValue_) {
        // Saturate: find the code of maxValue_ (last finite).
        uint32_t best = 0;
        for (uint32_t m = 0; m < posValues_.size(); ++m)
            if (posValues_[m] == maxValue_)
                best = m;
        return (sign << mag_bits) | best;
    }

    // Binary search over the finite prefix of the value table. Codes
    // whose value is non-finite (Inf/NaN region) sit at the top and
    // are already excluded by the saturation test above.
    uint32_t lo = 0;
    uint32_t hi = static_cast<uint32_t>(posValues_.size()) - 1;
    while (!std::isfinite(posValues_[hi]) || std::isnan(posValues_[hi]))
        --hi;
    // Find largest code with value <= a.
    while (lo < hi) {
        uint32_t mid = (lo + hi + 1) / 2;
        if (posValues_[mid] <= a)
            lo = mid;
        else
            hi = mid - 1;
    }
    uint32_t below = lo;
    uint32_t above = below;
    if (below + 1 < posValues_.size() &&
        std::isfinite(posValues_[below + 1]) &&
        !std::isnan(posValues_[below + 1]))
        above = below + 1;

    uint32_t best;
    if (above == below) {
        best = below;
    } else {
        float dlo = a - posValues_[below];
        float dhi = posValues_[above] - a;
        if (dlo < dhi) {
            best = below;
        } else if (dhi < dlo) {
            best = above;
        } else {
            // Tie: round to even code (mantissa LSB == 0).
            best = (below & 1u) == 0 ? below : above;
        }
    }
    return (sign << mag_bits) | best;
}

const Minifloat &
Minifloat::fp4e2m1()
{
    static const Minifloat f(2, 1, 1, Special::None, "fp4_e2m1");
    return f;
}

const Minifloat &
Minifloat::fp6e2m3()
{
    static const Minifloat f(2, 3, 1, Special::None, "fp6_e2m3");
    return f;
}

const Minifloat &
Minifloat::fp6e3m2()
{
    static const Minifloat f(3, 2, 3, Special::None, "fp6_e3m2");
    return f;
}

const Minifloat &
Minifloat::fp8e4m3()
{
    static const Minifloat f(4, 3, 7, Special::NanOnly, "fp8_e4m3");
    return f;
}

const Minifloat &
Minifloat::fp8e5m2()
{
    static const Minifloat f(5, 2, 15, Special::InfNan, "fp8_e5m2");
    return f;
}

} // namespace m2x
