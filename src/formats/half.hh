/**
 * @file
 * Software IEEE binary16 (FP16) and bfloat16 conversions.
 *
 * The paper's baselines use FP16 group scales (pre-MX group-wise
 * quantization, Fig. 4) and the "FP16" reference rows. We implement
 * the conversions in portable integer arithmetic with RNE so results
 * do not depend on the host's F16C support.
 */

#ifndef M2X_FORMATS_HALF_HH__
#define M2X_FORMATS_HALF_HH__

#include <cstdint>

namespace m2x {

/** Convert float -> IEEE binary16 bits, round-to-nearest-even. */
uint16_t floatToHalfBits(float f);

/** Convert IEEE binary16 bits -> float (exact). */
float halfBitsToFloat(uint16_t h);

/** Quantize a float onto the FP16 grid. */
inline float
quantizeToHalf(float f)
{
    return halfBitsToFloat(floatToHalfBits(f));
}

/** Convert float -> bfloat16 bits, round-to-nearest-even. */
uint16_t floatToBf16Bits(float f);

/** Convert bfloat16 bits -> float (exact). */
float bf16BitsToFloat(uint16_t b);

/** Quantize a float onto the BF16 grid. */
inline float
quantizeToBf16(float f)
{
    return bf16BitsToFloat(floatToBf16Bits(f));
}

} // namespace m2x

#endif // M2X_FORMATS_HALF_HH__
