/**
 * @file
 * E8M0 shared-scale type: the OCP MX power-of-two scale.
 *
 * An E8M0 code is an 8-bit biased exponent (bias 127, code 255 = NaN),
 * representing exactly 2^e for e in [-127, 127]. MX formats store one
 * E8M0 scale per block; M2XFP additionally absorbs its adaptive
 * exponent bias (b in {-1, 0, +1}) into this stored code.
 */

#ifndef M2X_FORMATS_E8M0_HH__
#define M2X_FORMATS_E8M0_HH__

#include <cstdint>

namespace m2x {

/** A power-of-two scale, stored as its integer exponent. */
class ScaleE8m0
{
  public:
    static constexpr int minExp = -127;
    static constexpr int maxExp = 127;
    static constexpr int bias = 127;

    ScaleE8m0() : exp_(0) {}

    /** Construct from an integer exponent, clamped to the E8M0 range. */
    static ScaleE8m0 fromExponent(int e);

    /** Decode an 8-bit code (biased exponent). Code 255 is invalid. */
    static ScaleE8m0 fromCode(uint8_t code);

    /** The represented scale value 2^exp as a float. */
    float value() const;

    /** 1 / value(), exact for the representable range. */
    float inverse() const;

    int exponent() const { return exp_; }
    uint8_t code() const { return static_cast<uint8_t>(exp_ + bias); }

    /** Shift the exponent by @p d, saturating at the range limits. */
    ScaleE8m0 shifted(int d) const { return fromExponent(exp_ + d); }

    bool operator==(const ScaleE8m0 &o) const { return exp_ == o.exp_; }

  private:
    int exp_;
};

} // namespace m2x

#endif // M2X_FORMATS_E8M0_HH__
