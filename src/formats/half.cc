#include "formats/half.hh"

#include <cstring>

namespace m2x {

namespace {

uint32_t
floatBits(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
bitsToFloat(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

} // anonymous namespace

uint16_t
floatToHalfBits(float f)
{
    uint32_t x = floatBits(f);
    uint32_t sign = (x >> 16) & 0x8000u;
    int32_t exp = static_cast<int32_t>((x >> 23) & 0xff) - 127 + 15;
    uint32_t mant = x & 0x7fffffu;

    if (((x >> 23) & 0xff) == 0xff) {
        // Inf / NaN
        return static_cast<uint16_t>(sign | 0x7c00u |
                                     (mant ? 0x200u | (mant >> 13) : 0));
    }
    if (exp >= 0x1f) {
        // Overflow -> Inf
        return static_cast<uint16_t>(sign | 0x7c00u);
    }
    if (exp <= 0) {
        // Subnormal half or zero.
        if (exp < -10)
            return static_cast<uint16_t>(sign);
        mant |= 0x800000u; // implicit bit
        uint32_t shift = static_cast<uint32_t>(14 - exp);
        uint32_t half_mant = mant >> shift;
        uint32_t rem = mant & ((1u << shift) - 1);
        uint32_t halfway = 1u << (shift - 1);
        if (rem > halfway || (rem == halfway && (half_mant & 1)))
            ++half_mant;
        return static_cast<uint16_t>(sign | half_mant);
    }
    // Normal: round mantissa from 23 to 10 bits (RNE).
    uint32_t half_mant = mant >> 13;
    uint32_t rem = mant & 0x1fffu;
    if (rem > 0x1000u || (rem == 0x1000u && (half_mant & 1)))
        ++half_mant;
    // Mantissa carry may overflow into the exponent; addition handles
    // that correctly (RNE overflow rounds up to the next binade).
    uint32_t out = sign + (static_cast<uint32_t>(exp) << 10) + half_mant;
    return static_cast<uint16_t>(out);
}

float
halfBitsToFloat(uint16_t h)
{
    uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
    uint32_t exp = (h >> 10) & 0x1fu;
    uint32_t mant = h & 0x3ffu;

    if (exp == 0x1f)
        return bitsToFloat(sign | 0x7f800000u | (mant << 13));
    if (exp == 0) {
        if (mant == 0)
            return bitsToFloat(sign);
        // Normalize the subnormal.
        int shift = 0;
        while (!(mant & 0x400u)) {
            mant <<= 1;
            ++shift;
        }
        mant &= 0x3ffu;
        uint32_t e = static_cast<uint32_t>(127 - 15 - shift + 1);
        return bitsToFloat(sign | (e << 23) | (mant << 13));
    }
    return bitsToFloat(sign | ((exp - 15 + 127) << 23) | (mant << 13));
}

uint16_t
floatToBf16Bits(float f)
{
    uint32_t x = floatBits(f);
    if (((x >> 23) & 0xff) == 0xff && (x & 0x7fffffu))
        return static_cast<uint16_t>((x >> 16) | 0x40u); // quiet NaN
    uint32_t lsb = (x >> 16) & 1u;
    uint32_t rounding = 0x7fffu + lsb;
    return static_cast<uint16_t>((x + rounding) >> 16);
}

float
bf16BitsToFloat(uint16_t b)
{
    return bitsToFloat(static_cast<uint32_t>(b) << 16);
}

} // namespace m2x
