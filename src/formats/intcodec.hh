/**
 * @file
 * Symmetric integer codecs used by the INT-based baselines (MXINT8,
 * SMX's INT3 mantissas, QuaRot/DuQuant INT4).
 */

#ifndef M2X_FORMATS_INTCODEC_HH__
#define M2X_FORMATS_INTCODEC_HH__

#include <cstdint>

namespace m2x {

/**
 * Symmetric signed integer grid with @p bits total bits: codes in
 * [-(2^(bits-1) - 1), 2^(bits-1) - 1] (the most negative code is
 * unused so the grid is symmetric, the common convention in
 * quantization papers).
 */
class IntSym
{
  public:
    explicit IntSym(unsigned bits);

    /** Round-to-nearest-even onto the integer grid, then clamp. */
    int32_t encode(float x) const;

    /** The integer code interpreted as a float. */
    float decode(int32_t code) const { return static_cast<float>(code); }

    /** encode + decode. */
    float quantize(float x) const { return decode(encode(x)); }

    int32_t maxCode() const { return maxCode_; }
    unsigned bits() const { return bits_; }

  private:
    unsigned bits_;
    int32_t maxCode_;
};

/** Round-half-to-even of a float to the nearest integer. */
int64_t roundNearestEven(double x);

} // namespace m2x

#endif // M2X_FORMATS_INTCODEC_HH__
