#include "model/tensor_gen.hh"

#include <cmath>

#include "util/logging.hh"

namespace m2x {
namespace model {

Matrix
genWeight(Rng &rng, size_t out_features, size_t in_features,
          const ModelConfig &cfg, double scale)
{
    Matrix w(out_features, in_features);
    // Per-input-channel scales: lognormal body + rare outliers. The
    // *input* dimension is the MX grouping axis, so this is what
    // block maxima see.
    std::vector<double> ch(in_features);
    for (auto &c : ch) {
        c = rng.logNormal(0.0, 0.35);
        if (rng.uniform() < cfg.weightOutlierRate)
            c *= cfg.weightOutlierAmp *
                 (1.0 + rng.uniform());
    }
    double norm = scale / std::sqrt(static_cast<double>(in_features));
    for (size_t o = 0; o < out_features; ++o) {
        double row_scale = rng.logNormal(0.0, 0.15);
        for (size_t i = 0; i < in_features; ++i) {
            w(o, i) = static_cast<float>(rng.normal() * ch[i] *
                                         row_scale * norm);
        }
    }
    return w;
}

std::vector<float>
genNormGain(Rng &rng, size_t n, const ModelConfig &cfg)
{
    std::vector<float> g(n);
    for (auto &v : g) {
        v = static_cast<float>(1.0 + 0.15 * rng.normal());
        if (rng.uniform() < cfg.normGainOutlierRate)
            v *= static_cast<float>(
                cfg.normGainOutlierAmp * (0.5 + rng.uniform()));
    }
    return g;
}

std::vector<float>
hotChannelGains(Rng &rng, const ModelConfig &cfg)
{
    // Persistent outlier channels in the residual stream — the
    // mechanism behind the paper's block-max misalignment error.
    std::vector<float> g(cfg.dModel, 1.0f);
    for (auto &v : g) {
        if (rng.uniform() < cfg.embedOutlierRate)
            v = static_cast<float>(cfg.embedOutlierAmp *
                                   (0.5 + rng.uniform()));
    }
    return g;
}

Matrix
genEmbedding(Rng &rng, const ModelConfig &cfg,
             const std::vector<float> &gains)
{
    Matrix e(cfg.vocab, cfg.dModel);
    for (auto &v : e.flat())
        v = static_cast<float>(0.02 * rng.studentT(cfg.actTailDof));
    for (size_t c = 0; c < cfg.dModel; ++c)
        for (size_t v = 0; v < cfg.vocab; ++v)
            e(v, c) *= gains[c];
    return e;
}

Matrix
genActivations(Rng &rng, size_t rows, size_t cols,
               const ModelConfig &cfg)
{
    Matrix x(rows, cols);
    // Channel scale vector with outliers (the RMSNorm-gain effect).
    std::vector<float> gain = genNormGain(rng, cols, cfg);
    for (size_t r = 0; r < rows; ++r)
        for (size_t c = 0; c < cols; ++c)
            x(r, c) = static_cast<float>(
                rng.studentT(cfg.actTailDof) * gain[c]);
    return x;
}

std::vector<int>
genTokens(Rng &rng, size_t n, unsigned vocab)
{
    m2x_assert(vocab >= 4, "vocabulary too small");
    std::vector<int> toks(n);
    // Order-1 Markov chain: each state prefers a small successor set,
    // giving the logit distribution genuine low-entropy structure.
    int state = static_cast<int>(rng.uniformInt(vocab));
    for (size_t i = 0; i < n; ++i) {
        toks[i] = state;
        if (rng.uniform() < 0.7) {
            // Likely transitions: a deterministic successor window.
            state = static_cast<int>(
                (static_cast<unsigned>(state) * 7 + 1 +
                 rng.uniformInt(4)) %
                vocab);
        } else {
            state = static_cast<int>(rng.uniformInt(vocab));
        }
    }
    return toks;
}

} // namespace model
} // namespace m2x
