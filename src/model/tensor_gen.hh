/**
 * @file
 * Deterministic synthetic tensor generation with LLM-like outlier
 * structure.
 *
 * What matters for MX-format fidelity is the *within-block* dynamic
 * range: how often a block maximum towers over its neighbours. Real
 * LLM weights have per-channel scale variation plus a sparse set of
 * outlier channels; activations have heavy tails concentrated in a
 * few channels (amplified by LayerNorm/RMSNorm gains). The
 * generators reproduce exactly those mechanisms:
 *   - weights: elementwise Gaussian x lognormal channel scale, with
 *     a Bernoulli set of outlier channels amplified by a factor;
 *   - norm gains: ~1 with rare large spikes (the classic outlier
 *     channel mechanism);
 *   - embeddings: Student-t rows (heavy tails).
 */

#ifndef M2X_MODEL_TENSOR_GEN_HH__
#define M2X_MODEL_TENSOR_GEN_HH__

#include <vector>

#include "model/config.hh"
#include "quant/matrix.hh"
#include "util/rng.hh"

namespace m2x {
namespace model {

/** Weight matrix [out, in] with outlier channel structure. */
Matrix genWeight(Rng &rng, size_t out_features, size_t in_features,
                 const ModelConfig &cfg, double scale);

/** RMSNorm gain vector: ones with rare outlier spikes. */
std::vector<float> genNormGain(Rng &rng, size_t n,
                               const ModelConfig &cfg);

/**
 * Per-channel hot-channel gains for the residual stream: mostly 1,
 * with cfg.embedOutlierRate of channels amplified by roughly
 * cfg.embedOutlierAmp. Drawn deterministically from @p rng.
 */
std::vector<float> hotChannelGains(Rng &rng, const ModelConfig &cfg);

/**
 * Embedding table [vocab, d] with Student-t heavy tails; columns are
 * scaled by @p gains (the persistent outlier channels).
 */
Matrix genEmbedding(Rng &rng, const ModelConfig &cfg,
                    const std::vector<float> &gains);

/**
 * Synthetic activation matrix with channel-outlier structure (used
 * by benches that exercise quantizers outside a full forward pass).
 */
Matrix genActivations(Rng &rng, size_t rows, size_t cols,
                      const ModelConfig &cfg);

/**
 * Synthetic token stream: an order-1 Markov chain over the model's
 * vocabulary so logits carry real structure (not uniform noise).
 */
std::vector<int> genTokens(Rng &rng, size_t n, unsigned vocab);

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_TENSOR_GEN_HH__
