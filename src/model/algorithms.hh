/**
 * @file
 * Algorithm-level quantization schemes (Tbl. 7): QuaRot-style
 * randomized Hadamard rotation, DuQuant-style permutation + block
 * rotation, and GPTQ-style sequential error compensation (MR-GPTQ).
 * All are LinearOp wrappers, so the transformer substrate runs them
 * end to end exactly like plain formats.
 *
 *  - QuaRot: y = x W^T = (xR)(WR)^T for orthogonal R; quantization
 *    sees the rotated tensors, whose outliers are smeared across
 *    channels. R is a block-diagonal randomized Hadamard.
 *  - DuQuant: channels are first permuted (round-robin by calibrated
 *    energy, spreading outliers across rotation blocks), then
 *    rotated within small blocks.
 *  - MR-GPTQ: weights are quantized column-by-column with error
 *    feedback through the Cholesky factor of the inverse calibration
 *    Hessian (H = 2 X^T X + damping); the quantization grid is the
 *    MX format under test (MXFP4, or M2XFP's Sg-EM for the combined
 *    MR-GPTQ-M2XFP row).
 */

#ifndef M2X_MODEL_ALGORITHMS_HH__
#define M2X_MODEL_ALGORITHMS_HH__

#include <cstdint>
#include <memory>

#include "gemm/gemm.hh"
#include "model/transformer.hh"

namespace m2x {
namespace model {

/**
 * In-place fast Walsh-Hadamard transform of each length-@p block
 * segment of each row, orthonormal scaling, with a per-channel
 * random sign flip (seeded). The combined map R = S*H is orthogonal,
 * so applying it to both GEMM operands leaves the product unchanged.
 */
void hadamardRotateRows(Matrix &m, unsigned block, uint64_t seed);

/** Largest power-of-two divisor of n (the usable Hadamard block). */
unsigned hadamardBlockFor(size_t n);

/** QuaRot-style rotated + quantized linear. */
class RotatedLinear : public LinearOp
{
  public:
    RotatedLinear(const Matrix &weight,
                  std::shared_ptr<GroupQuantizer> weight_q,
                  std::shared_ptr<GroupQuantizer> act_q,
                  uint64_t seed);

    Matrix forward(const Matrix &x) const override;
    size_t inFeatures() const override { return inner_->inFeatures(); }
    size_t outFeatures() const override
    {
        return inner_->outFeatures();
    }

  private:
    unsigned block_;
    uint64_t seed_;
    std::unique_ptr<QuantizedLinear> inner_;
};

/** DuQuant-style permuted + block-rotated linear. */
class DuQuantLinear : public LinearOp
{
  public:
    /**
     * @param calib_input optional calibration rows used to rank
     *        channel energies for the zigzag permutation (falls back
     *        to weight column norms)
     */
    DuQuantLinear(const Matrix &weight,
                  std::shared_ptr<GroupQuantizer> weight_q,
                  std::shared_ptr<GroupQuantizer> act_q,
                  const Matrix *calib_input, uint64_t seed);

    Matrix forward(const Matrix &x) const override;
    size_t inFeatures() const override { return perm_.size(); }
    size_t outFeatures() const override
    {
        return inner_->outFeatures();
    }

  private:
    std::vector<uint32_t> perm_; //!< channel permutation
    unsigned block_;
    uint64_t seed_;
    std::unique_ptr<QuantizedLinear> inner_;
};

/** The weight grid GPTQ compensates onto. */
enum class GptqGrid
{
    Mxfp4,    //!< MR-GPTQ: FP4 + E8M0 floor scale, group 32
    M2xfpSgEm //!< MR-GPTQ-M2XFP: Sg-EM-2bit adaptive, g32/sg8
};

/**
 * GPTQ-quantize a weight matrix [out, K] against calibration inputs
 * X [N, K]. Returns the dequantized compensated weight.
 */
Matrix gptqQuantizeWeight(const Matrix &weight, const Matrix &calib_x,
                          GptqGrid grid);

/** GPTQ-compensated linear (weights offline, activations online). */
class GptqLinear : public LinearOp
{
  public:
    GptqLinear(const Matrix &weight, const Matrix *calib_input,
               GptqGrid grid, std::shared_ptr<GroupQuantizer> act_q);

    Matrix forward(const Matrix &x) const override;
    size_t inFeatures() const override { return inner_->inFeatures(); }
    size_t outFeatures() const override
    {
        return inner_->outFeatures();
    }

  private:
    std::unique_ptr<QuantizedLinear> inner_;
};

/** @{ LinearFactory builders for the Tbl. 7 schemes. */
LinearFactory quarotFactory(
    std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
    std::function<std::shared_ptr<GroupQuantizer>()> act_q,
    uint64_t seed);

LinearFactory duquantFactory(
    std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
    std::function<std::shared_ptr<GroupQuantizer>()> act_q,
    uint64_t seed);

LinearFactory gptqFactory(
    GptqGrid grid,
    std::function<std::shared_ptr<GroupQuantizer>()> act_q);
/** @} */

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_ALGORITHMS_HH__
