/**
 * @file
 * The attention softmax, shared between the full-forward causal
 * attention (model/transformer) and the KV-cache attend kernels
 * (runtime/kv_cache).
 *
 * This exact operation sequence — float max subtraction, float exp,
 * double normalizer accumulated in ascending order, float inverse
 * applied as a float multiply — IS the bit-exactness contract: the
 * fp32-cache decode oracle reproduces forwardLogits() bitwise only
 * because both paths call this one function. Do not fork it.
 */

#ifndef M2X_MODEL_SOFTMAX_HH__
#define M2X_MODEL_SOFTMAX_HH__

#include <algorithm>
#include <cmath>
#include <cstddef>

namespace m2x {
namespace model {

/** In-place softmax over scores[0, valid); valid must be >= 1. */
inline void
attentionSoftmax(float *scores, size_t valid)
{
    float mx = scores[0];
    for (size_t j = 1; j < valid; ++j)
        mx = std::max(mx, scores[j]);
    double z = 0.0;
    for (size_t j = 0; j < valid; ++j) {
        scores[j] = std::exp(scores[j] - mx);
        z += scores[j];
    }
    float inv_z = static_cast<float>(1.0 / z);
    for (size_t j = 0; j < valid; ++j)
        scores[j] *= inv_z;
}

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_SOFTMAX_HH__
