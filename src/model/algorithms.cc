#include "model/algorithms.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "formats/minifloat.hh"
#include "quant/scale_rules.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {

unsigned
hadamardBlockFor(size_t n)
{
    unsigned b = 1;
    while (n % (2ull * b) == 0 && 2ull * b <= 64)
        b *= 2;
    return b;
}

void
hadamardRotateRows(Matrix &m, unsigned block, uint64_t seed)
{
    m2x_assert(block >= 1 && (block & (block - 1)) == 0,
               "Hadamard block must be a power of two");
    m2x_assert(m.cols() % block == 0,
               "cols %zu not divisible by block %u", m.cols(), block);

    // Deterministic per-channel signs (the randomized-Hadamard part).
    Rng rng(seed ^ 0x4ad0'0000ull);
    std::vector<float> sign(m.cols());
    for (auto &s : sign)
        s = rng.uniform() < 0.5 ? -1.0f : 1.0f;

    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(block));
    for (size_t r = 0; r < m.rows(); ++r) {
        float *row = m.data() + r * m.cols();
        for (size_t off = 0; off < m.cols(); off += block) {
            float *seg = row + off;
            for (unsigned i = 0; i < block; ++i)
                seg[i] *= sign[off + i];
            // In-place FWHT.
            for (unsigned h = 1; h < block; h *= 2) {
                for (unsigned i = 0; i < block; i += 2 * h) {
                    for (unsigned j = i; j < i + h; ++j) {
                        float a = seg[j];
                        float b = seg[j + h];
                        seg[j] = a + b;
                        seg[j + h] = a - b;
                    }
                }
            }
            for (unsigned i = 0; i < block; ++i)
                seg[i] *= inv_sqrt;
        }
    }
}

RotatedLinear::RotatedLinear(const Matrix &weight,
                             std::shared_ptr<GroupQuantizer> weight_q,
                             std::shared_ptr<GroupQuantizer> act_q,
                             uint64_t seed)
    : block_(hadamardBlockFor(weight.cols())), seed_(seed)
{
    Matrix wr = weight;
    hadamardRotateRows(wr, block_, seed_);
    inner_ = std::make_unique<QuantizedLinear>(
        std::move(wr), std::move(weight_q), std::move(act_q));
}

Matrix
RotatedLinear::forward(const Matrix &x) const
{
    Matrix xr = x;
    hadamardRotateRows(xr, block_, seed_);
    return inner_->forward(xr);
}

DuQuantLinear::DuQuantLinear(const Matrix &weight,
                             std::shared_ptr<GroupQuantizer> weight_q,
                             std::shared_ptr<GroupQuantizer> act_q,
                             const Matrix *calib_input, uint64_t seed)
    : seed_(seed)
{
    size_t k = weight.cols();
    // Rank channels by energy (calibrated if available).
    std::vector<double> energy(k, 0.0);
    if (calib_input && calib_input->cols() == k) {
        for (size_t r = 0; r < calib_input->rows(); ++r)
            for (size_t c = 0; c < k; ++c)
                energy[c] += static_cast<double>((*calib_input)(r, c)) *
                             (*calib_input)(r, c);
    } else {
        for (size_t r = 0; r < weight.rows(); ++r)
            for (size_t c = 0; c < k; ++c)
                energy[c] +=
                    static_cast<double>(weight(r, c)) * weight(r, c);
    }
    std::vector<uint32_t> order(k);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
        return energy[a] > energy[b];
    });

    // Zigzag deal: spread high-energy channels round-robin across
    // rotation blocks so no block holds two top outliers.
    block_ = 16;
    while (k % block_ != 0)
        block_ /= 2;
    size_t n_blocks = k / block_;
    perm_.assign(k, 0);
    for (size_t rank = 0; rank < k; ++rank) {
        size_t blk = rank % n_blocks;
        size_t slot = rank / n_blocks;
        perm_[blk * block_ + slot] = order[rank];
    }

    Matrix wp(weight.rows(), k);
    for (size_t r = 0; r < weight.rows(); ++r)
        for (size_t c = 0; c < k; ++c)
            wp(r, c) = weight(r, perm_[c]);
    hadamardRotateRows(wp, block_, seed_);
    inner_ = std::make_unique<QuantizedLinear>(
        std::move(wp), std::move(weight_q), std::move(act_q));
}

Matrix
DuQuantLinear::forward(const Matrix &x) const
{
    Matrix xp(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < x.cols(); ++c)
            xp(r, c) = x(r, perm_[c]);
    hadamardRotateRows(xp, block_, seed_);
    return inner_->forward(xp);
}

namespace {

/** Cholesky decomposition A = L L^T in place (lower). */
bool
cholesky(std::vector<double> &a, size_t n)
{
    for (size_t j = 0; j < n; ++j) {
        double d = a[j * n + j];
        for (size_t k = 0; k < j; ++k)
            d -= a[j * n + k] * a[j * n + k];
        if (d <= 0.0)
            return false;
        double lj = std::sqrt(d);
        a[j * n + j] = lj;
        for (size_t i = j + 1; i < n; ++i) {
            double s = a[i * n + j];
            for (size_t k = 0; k < j; ++k)
                s -= a[i * n + k] * a[j * n + k];
            a[i * n + j] = s / lj;
        }
        for (size_t i = 0; i < j; ++i)
            a[i * n + j] = 0.0;
    }
    return true;
}

/** Invert SPD matrix via its Cholesky factor. */
std::vector<double>
spdInverse(std::vector<double> h, size_t n)
{
    bool ok = cholesky(h, n);
    m2x_assert(ok, "Hessian not positive definite");
    // Invert L (lower triangular).
    std::vector<double> linv(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        linv[i * n + i] = 1.0 / h[i * n + i];
        for (size_t j = 0; j < i; ++j) {
            double s = 0.0;
            for (size_t k = j; k < i; ++k)
                s += h[i * n + k] * linv[k * n + j];
            linv[i * n + j] = -s / h[i * n + i];
        }
    }
    // H^-1 = L^-T L^-1.
    std::vector<double> inv(n * n, 0.0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j <= i; ++j) {
            double s = 0.0;
            for (size_t k = i; k < n; ++k)
                s += linv[k * n + i] * linv[k * n + j];
            inv[i * n + j] = s;
            inv[j * n + i] = s;
        }
    }
    return inv;
}

/**
 * Upper Cholesky factor U of H^-1 (H^-1 = U^T U), the matrix GPTQ
 * propagates errors through.
 */
std::vector<double>
gptqCholeskyUpper(const Matrix &calib_x, size_t k)
{
    std::vector<double> h(k * k, 0.0);
    for (size_t r = 0; r < calib_x.rows(); ++r) {
        const float *row = calib_x.data() + r * k;
        for (size_t i = 0; i < k; ++i) {
            double xi = 2.0 * row[i];
            for (size_t j = i; j < k; ++j)
                h[i * k + j] += xi * row[j];
        }
    }
    for (size_t i = 0; i < k; ++i)
        for (size_t j = 0; j < i; ++j)
            h[i * k + j] = h[j * k + i];
    // Damping.
    double mean_diag = 0.0;
    for (size_t i = 0; i < k; ++i)
        mean_diag += h[i * k + i];
    mean_diag = mean_diag / static_cast<double>(k);
    double damp = 0.01 * (mean_diag > 0 ? mean_diag : 1.0);
    for (size_t i = 0; i < k; ++i)
        h[i * k + i] += damp;

    std::vector<double> hinv = spdInverse(std::move(h), k);
    // Hinv = L L^T, so U = L^T satisfies Hinv = U^T U — the upper
    // factor GPTQ propagates errors through.
    bool ok = cholesky(hinv, k);
    m2x_assert(ok, "Hinv lost positive definiteness");
    std::vector<double> upper(k * k, 0.0);
    for (size_t i = 0; i < k; ++i)
        for (size_t j = i; j < k; ++j)
            upper[i * k + j] = hinv[j * k + i];
    return upper;
}

} // anonymous namespace

Matrix
gptqQuantizeWeight(const Matrix &weight, const Matrix &calib_x,
                   GptqGrid grid)
{
    size_t k = weight.cols();
    m2x_assert(calib_x.cols() == k,
               "calibration width %zu != weight K %zu", calib_x.cols(),
               k);
    std::vector<double> u = gptqCholeskyUpper(calib_x, k);

    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const unsigned group = 32;
    const unsigned sub = 8;

    Matrix out(weight.rows(), k);
    std::vector<double> w(k);
    std::vector<float> scale_at(k); // effective scale per column
    for (size_t r = 0; r < weight.rows(); ++r) {
        for (size_t c = 0; c < k; ++c)
            w[c] = weight(r, c);

        // Static groups: freeze every group/subgroup grid from the
        // ORIGINAL weights. (Deriving scales from the drifting
        // residuals is a known GPTQ failure mode.)
        for (size_t base = 0; base < k; base += group) {
            size_t glen = std::min<size_t>(group, k - base);
            float amax = 0.0f;
            for (size_t i = 0; i < glen; ++i)
                amax = std::max(amax, std::fabs(weight(r, base + i)));
            ScaleE8m0 gs =
                computeSharedScale(amax, fp4, ScaleRule::Floor);
            if (grid == GptqGrid::Mxfp4) {
                for (size_t i = 0; i < glen; ++i)
                    scale_at[base + i] = gs.value();
            } else {
                for (size_t sb = base; sb < base + glen; sb += sub) {
                    size_t slen =
                        std::min<size_t>(sub, base + glen - sb);
                    double best = -1.0;
                    float best_s = gs.value();
                    for (unsigned m = 0; m < 4; ++m) {
                        float s = gs.value() *
                                  (1.0f + static_cast<float>(m) / 4);
                        double err = 0.0;
                        for (size_t i = 0; i < slen; ++i) {
                            float x = weight(r, sb + i);
                            float qv = fp4.quantize(x / s) * s;
                            err += (qv - x) *
                                   static_cast<double>(qv - x);
                        }
                        if (best < 0.0 || err < best) {
                            best = err;
                            best_s = s;
                        }
                    }
                    for (size_t i = 0; i < slen; ++i)
                        scale_at[sb + i] = best_s;
                }
            }
        }

        // Column-by-column quantization with error feedback through
        // the Cholesky factor.
        for (size_t j = 0; j < k; ++j) {
            float s = scale_at[j];
            float x = static_cast<float>(w[j]);
            double qv =
                fp4.quantize(x / s) * static_cast<double>(s);
            out(r, j) = static_cast<float>(qv);
            double ujj = u[j * k + j];
            double err = (w[j] - qv) / (ujj > 0 ? ujj : 1.0);
            const double *urow = u.data() + j * k;
            for (size_t jj = j + 1; jj < k; ++jj)
                w[jj] -= err * urow[jj];
        }
    }
    return out;
}

GptqLinear::GptqLinear(const Matrix &weight, const Matrix *calib_input,
                       GptqGrid grid,
                       std::shared_ptr<GroupQuantizer> act_q)
{
    m2x_assert(calib_input != nullptr,
               "GPTQ needs calibration data (run collectCalibration)");
    Matrix wq = gptqQuantizeWeight(weight, *calib_input, grid);
    // Weights already on the grid: no further weight quantizer.
    inner_ = std::make_unique<QuantizedLinear>(std::move(wq), nullptr,
                                               std::move(act_q));
}

Matrix
GptqLinear::forward(const Matrix &x) const
{
    return inner_->forward(x);
}

LinearFactory
quarotFactory(std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
              std::function<std::shared_ptr<GroupQuantizer>()> act_q,
              uint64_t seed)
{
    return [=](const Matrix &w, const std::string &name,
               const Matrix *) -> std::unique_ptr<LinearOp> {
        uint64_t s = seed ^ std::hash<std::string>{}(name);
        return std::make_unique<RotatedLinear>(
            w, weight_q ? weight_q() : nullptr,
            act_q ? act_q() : nullptr, s);
    };
}

LinearFactory
duquantFactory(std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
               std::function<std::shared_ptr<GroupQuantizer>()> act_q,
               uint64_t seed)
{
    return [=](const Matrix &w, const std::string &name,
               const Matrix *calib) -> std::unique_ptr<LinearOp> {
        uint64_t s = seed ^ std::hash<std::string>{}(name);
        return std::make_unique<DuQuantLinear>(
            w, weight_q ? weight_q() : nullptr,
            act_q ? act_q() : nullptr, calib, s);
    };
}

LinearFactory
gptqFactory(GptqGrid grid,
            std::function<std::shared_ptr<GroupQuantizer>()> act_q)
{
    return [=](const Matrix &w, const std::string &,
               const Matrix *calib) -> std::unique_ptr<LinearOp> {
        return std::make_unique<GptqLinear>(
            w, calib, grid, act_q ? act_q() : nullptr);
    };
}

} // namespace model
} // namespace m2x
