#include "model/config.hh"

namespace m2x {
namespace model {

/*
 * Family knobs are set so the quantization-error regime matches what
 * the paper reports for real LLMs: block-max handling dominates
 * (Fig. 3), OPT is the hardest model (activation outliers), LLaMA-3
 * is harder than LLaMA-2, and Mistral/Falcon are mildest.
 *
 * klToLogPpl is the proxy-perplexity coupling (DESIGN.md §3):
 * calibrated once per model so the *MXFP4 row* of Tbl. 3 reproduces
 * the paper's value; every other method's perplexity then follows
 * from its own measured KL. The calibration tool is
 * bench/calibrate_coupling (run it if the generators change).
 */

namespace {

ModelConfig
base(const std::string &name, uint64_t seed)
{
    ModelConfig c;
    c.name = name;
    c.seed = seed;
    return c;
}

} // anonymous namespace

ModelConfig
llama2_7b()
{
    ModelConfig c = base("LLaMA2-7B", 0x11a);
    c.weightOutlierRate = 0.03;
    c.weightOutlierAmp = 6.0;
    c.embedOutlierRate = 0.04;
    c.embedOutlierAmp = 6.0;
    c.normGainOutlierRate = 0.01;
    c.normGainOutlierAmp = 3.0;
    c.actTailDof = 4.5;
    c.fp16Perplexity = 5.47;
    c.klToLogPpl = 0.085;
    return c;
}

ModelConfig
llama3_8b()
{
    // LLaMA-3 is consistently harder to quantize (larger effective
    // dynamic range after its aggressive tokenizer/training recipe).
    ModelConfig c = base("LLaMA3-8B", 0x3a8);
    c.weightOutlierRate = 0.04;
    c.weightOutlierAmp = 7.0;
    c.embedOutlierRate = 0.05;
    c.embedOutlierAmp = 7.0;
    c.normGainOutlierRate = 0.012;
    c.normGainOutlierAmp = 3.5;
    c.actTailDof = 4.0;
    c.fp16Perplexity = 6.14;
    c.klToLogPpl = 0.0612;
    return c;
}

ModelConfig
llama3_70b()
{
    ModelConfig c = base("LLaMA3-70B", 0x370);
    c.dModel = 256;
    c.nHeads = 8;
    c.nLayers = 4;
    c.dFf = 688;
    c.weightOutlierRate = 0.04;
    c.weightOutlierAmp = 7.0;
    c.embedOutlierRate = 0.05;
    c.embedOutlierAmp = 7.0;
    c.normGainOutlierRate = 0.012;
    c.normGainOutlierAmp = 3.5;
    c.actTailDof = 4.0;
    c.fp16Perplexity = 2.85;
    c.klToLogPpl = 0.1207;
    return c;
}

ModelConfig
opt_6_7b()
{
    // OPT's massive activation outliers are the canonical hard case.
    ModelConfig c = base("OPT-6.7B", 0x067);
    c.weightOutlierRate = 0.05;
    c.weightOutlierAmp = 8.0;
    c.embedOutlierRate = 0.07;
    c.embedOutlierAmp = 9.0;
    c.normGainOutlierRate = 0.02;
    c.normGainOutlierAmp = 4.0;
    c.actTailDof = 3.2;
    c.fp16Perplexity = 10.86;
    c.klToLogPpl = 0.0997;
    return c;
}

ModelConfig
mistral_7b()
{
    ModelConfig c = base("Mistral-7B", 0x715);
    c.weightOutlierRate = 0.025;
    c.weightOutlierAmp = 5.0;
    c.embedOutlierRate = 0.03;
    c.embedOutlierAmp = 5.0;
    c.normGainOutlierRate = 0.008;
    c.normGainOutlierAmp = 2.5;
    c.actTailDof = 5.0;
    c.fp16Perplexity = 5.32;
    c.klToLogPpl = 0.1464;
    return c;
}

ModelConfig
falcon_7b()
{
    ModelConfig c = base("Falcon-7B", 0xfa1);
    c.weightOutlierRate = 0.03;
    c.weightOutlierAmp = 5.0;
    c.embedOutlierRate = 0.035;
    c.embedOutlierAmp = 5.5;
    c.normGainOutlierRate = 0.01;
    c.normGainOutlierAmp = 3.0;
    c.actTailDof = 4.8;
    c.fp16Perplexity = 6.59;
    c.klToLogPpl = 0.0746;
    return c;
}

ModelConfig
llama1_7b()
{
    ModelConfig c = base("LLaMA-7B", 0x117);
    c.weightOutlierRate = 0.03;
    c.weightOutlierAmp = 6.0;
    c.embedOutlierRate = 0.04;
    c.embedOutlierAmp = 6.0;
    c.normGainOutlierRate = 0.01;
    c.normGainOutlierAmp = 3.0;
    c.actTailDof = 4.5;
    c.fp16Perplexity = 5.68;
    c.klToLogPpl = 0.0197;
    return c;
}

ModelConfig
r1_qwen_1_5b()
{
    // Reasoning-distilled models: long chains compound quantization
    // error; small models are the most fragile (Tbl. 4).
    ModelConfig c = base("DeepSeek-R1-Distill-Qwen-1.5B", 0xd15);
    c.dModel = 160;
    c.nHeads = 4;
    c.nLayers = 3;
    c.dFf = 432;
    c.weightOutlierRate = 0.05;
    c.weightOutlierAmp = 7.0;
    c.embedOutlierRate = 0.06;
    c.embedOutlierAmp = 8.0;
    c.normGainOutlierRate = 0.015;
    c.normGainOutlierAmp = 3.5;
    c.actTailDof = 3.5;
    c.fp16Perplexity = 8.0;
    c.klToLogPpl = 0.1;
    return c;
}

ModelConfig
r1_qwen_7b()
{
    ModelConfig c = base("DeepSeek-R1-Distill-Qwen-7B", 0xd70);
    c.weightOutlierRate = 0.04;
    c.weightOutlierAmp = 6.0;
    c.embedOutlierRate = 0.05;
    c.embedOutlierAmp = 7.0;
    c.normGainOutlierRate = 0.012;
    c.normGainOutlierAmp = 3.0;
    c.actTailDof = 4.0;
    c.fp16Perplexity = 6.5;
    c.klToLogPpl = 0.1;
    return c;
}

ModelConfig
llama3_8b_gqa()
{
    // Grouped-query variant of the LLaMA-3 stand-in: 4 query heads
    // share 2 K/V heads, so the KV projections and cache shrink to
    // half width (kvDim = 96 at dModel 192). Weight streams differ
    // from llama3_8b() because wk/wv consume fewer RNG draws.
    ModelConfig c = llama3_8b();
    c.name = "LLaMA3-8B-GQA";
    c.nKvHeads = c.nHeads / 2;
    return c;
}

ModelConfig
mistral_7b_swa()
{
    // Sliding-window variant of the Mistral stand-in (the real model
    // popularized W=4096); scaled here to a window that several test
    // and bench context lengths actually exceed.
    ModelConfig c = mistral_7b();
    c.name = "Mistral-7B-SWA";
    c.slidingWindow = 24;
    return c;
}

std::vector<ModelConfig>
table3Models()
{
    return {llama2_7b(), llama3_8b(), llama3_70b(),
            opt_6_7b(),  mistral_7b(), falcon_7b()};
}

} // namespace model
} // namespace m2x
