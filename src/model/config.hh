/**
 * @file
 * Model configurations for the synthetic transformer substrate.
 *
 * Substitution note (DESIGN.md §3): the paper evaluates on public
 * pretrained LLMs we cannot load offline. Each paper model maps to a
 * scaled-down transformer whose *statistics* — per-channel weight
 * outliers, heavy-tailed activations, block-max misalignment — drive
 * the same quantization-error mechanisms. The family-specific knobs
 * (outlier rate/amplitude, activation tail weight) are set so that
 * the relative difficulty ordering across models mirrors the paper
 * (OPT's notorious activation outliers, LLaMA-3 harder to quantize
 * than LLaMA-2, Mistral/Falcon milder). The FP16 anchors reproduce
 * the paper's FP16 rows exactly; quantized deltas are *measured*.
 */

#ifndef M2X_MODEL_CONFIG_HH__
#define M2X_MODEL_CONFIG_HH__

#include <cstdint>
#include <string>
#include <vector>

namespace m2x {
namespace model {

/** Architecture + distribution parameters for one synthetic model. */
struct ModelConfig
{
    std::string name;      //!< paper model this stands in for
    unsigned dModel = 192; //!< hidden width
    unsigned nHeads = 4;
    unsigned nLayers = 3;
    unsigned dFf = 512;    //!< SwiGLU inner width
    unsigned vocab = 512;
    uint64_t seed = 1;     //!< weight-generation seed

    /**
     * Grouped-query attention: number of K/V heads. 0 (the default)
     * means nHeads, i.e. classic multi-head attention. When smaller,
     * each K/V head is shared by nHeads/nKvHeads query heads and the
     * KV projections/cache shrink to kvDim() columns.
     */
    unsigned nKvHeads = 0;

    /**
     * Sliding-window attention: each query attends only to the
     * trailing `slidingWindow` positions (itself included). 0 (the
     * default) means full causal attention.
     */
    unsigned slidingWindow = 0;

    /** Effective K/V head count (nKvHeads, defaulted to nHeads). */
    unsigned
    kvHeads() const
    {
        return nKvHeads == 0 ? nHeads : nKvHeads;
    }

    /** Width of the K/V projections: kvHeads() * (dModel/nHeads). */
    unsigned
    kvDim() const
    {
        return kvHeads() * (dModel / nHeads);
    }

    /** @{ Outlier-structure knobs (see tensor_gen.hh). */
    double weightOutlierRate = 0.01; //!< fraction of outlier channels
    double weightOutlierAmp = 4.0;   //!< their amplification
    double actTailDof = 5.0;  //!< Student-t dof of embeddings (lower
                              //!< = heavier activation tails)
    double normGainOutlierRate = 0.02; //!< RMSNorm-gain spike rate
    double normGainOutlierAmp = 6.0;   //!< RMSNorm-gain spike size
    double embedOutlierRate = 0.03; //!< hot residual-channel rate
    double embedOutlierAmp = 6.0;   //!< hot-channel amplification
    /** @} */

    /** FP16 Wikitext perplexity anchor (paper Tbl. 3 FP16 row). */
    double fp16Perplexity = 0.0;

    /**
     * How strongly measured logit KL maps to perplexity degradation
     * (models differ in how much one layer's error compounds).
     */
    double klToLogPpl = 1.0;
};

/** @{ The paper's evaluation models (Tbl. 2/3/4, Figs. 3/4/6/7/13). */
ModelConfig llama2_7b();
ModelConfig llama3_8b();
ModelConfig llama3_70b();
ModelConfig opt_6_7b();
ModelConfig mistral_7b();
ModelConfig falcon_7b();
ModelConfig llama1_7b();        //!< Fig. 4 (LLaMA-7B v1)
ModelConfig r1_qwen_1_5b();     //!< Tbl. 4 reasoning models
ModelConfig r1_qwen_7b();
/** @} */

/** @{ Attention-variant configs for the long-context runtime. */
ModelConfig llama3_8b_gqa();    //!< grouped-query (2 KV heads / 4 Q)
ModelConfig mistral_7b_swa();   //!< sliding-window (Mistral-style)
/** @} */

/** All six Tbl. 3 models in paper order. */
std::vector<ModelConfig> table3Models();

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_CONFIG_HH__
