/**
 * @file
 * Evaluation harness: proxy perplexity and synthetic task accuracy.
 *
 * Substitution note (DESIGN.md §3): absolute Wikitext perplexity and
 * lm-eval accuracies require the real pretrained models. We measure
 * the *degradation* a quantization configuration causes — the KL
 * divergence between the quantized and FP32 logit distributions over
 * the same token stream, propagated through a real transformer
 * forward pass — and anchor the FP16 row to the paper:
 *
 *     ppl_quant = ppl_fp16 * exp(klToLogPpl * mean KL)
 *
 * Task accuracy: each evaluated position becomes a multiple-choice
 * item whose candidates are the reference model's top-K tokens; the
 * label is the reference argmax with label noise tuned so the FP16
 * row matches the paper's anchor. A quantized model loses accuracy
 * exactly when its logit perturbation flips the argmax among
 * plausible candidates — the same mechanism that drives real
 * zero-shot degradation.
 *
 * Everything derives from one forward sweep per configuration
 * (EvalRun), so perplexity and all six task accuracies share the
 * compute.
 */

#ifndef M2X_MODEL_EVAL_HH__
#define M2X_MODEL_EVAL_HH__

#include <memory>
#include <vector>

#include "model/transformer.hh"

namespace m2x {
namespace model {

/** Metrics + logits from one forward sweep of the current build. */
struct EvalRun
{
    double meanKl = 0.0;
    double logitMse = 0.0;
    std::vector<Matrix> logits; //!< per evaluation window
};

/** A reusable evaluation context for one model. */
class Evaluator
{
  public:
    /**
     * @param cfg model configuration
     * @param eval_tokens total held-out token positions
     * @param seq_len forward-pass window length
     */
    explicit Evaluator(const ModelConfig &cfg,
                       size_t eval_tokens = 256, size_t seq_len = 64);

    /** The configurable model (rebuild() per quantization config). */
    TinyTransformer &model() { return model_; }
    const ModelConfig &config() const { return cfg_; }

    /** Forward sweep of the current build over the eval stream. */
    EvalRun run() const;

    /** Proxy perplexity from a run's mean KL. */
    double perplexityFrom(const EvalRun &run) const;

    /** Convenience: run() + perplexityFrom(). */
    double proxyPerplexity() const { return perplexityFrom(run()); }

    /**
     * Task accuracy (percent) from a run.
     * @param fp16_accuracy paper anchor for the FP16 row (percent)
     * @param n_choices candidates per item (4 zero-shot, 8 reasoning)
     * @param task_seed distinguishes benchmarks (distractor draw +
     *        label noise)
     */
    double accuracyFrom(const EvalRun &run, double fp16_accuracy,
                        unsigned n_choices, uint64_t task_seed) const;

  private:
    ModelConfig cfg_;
    TinyTransformer model_;
    size_t seqLen_;
    std::vector<int> tokens_;
    std::vector<Matrix> refLogits_; //!< FP32 reference, per window
};

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_EVAL_HH__
