#include "model/transformer.hh"

#include <cmath>

#include "model/softmax.hh"
#include "model/tensor_gen.hh"
#include "util/logging.hh"

namespace m2x {
namespace model {

LinearFactory
fp32LinearFactory()
{
    return [](const Matrix &w, const std::string &,
              const Matrix *) -> std::unique_ptr<LinearOp> {
        return std::make_unique<QuantizedLinear>(w, nullptr, nullptr);
    };
}

LinearFactory
quantizedLinearFactory(
    std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
    std::function<std::shared_ptr<GroupQuantizer>()> act_q)
{
    return [weight_q, act_q](const Matrix &w, const std::string &,
                             const Matrix *)
               -> std::unique_ptr<LinearOp> {
        return std::make_unique<QuantizedLinear>(
            w, weight_q ? weight_q() : nullptr,
            act_q ? act_q() : nullptr);
    };
}

TinyTransformer::TinyTransformer(const ModelConfig &cfg) : cfg_(cfg)
{
    Rng rng(cfg.seed * 0x9e3779b97f4a7c15ull + 0x1234567);
    std::vector<float> hot = hotChannelGains(rng, cfg);
    embedding_ = genEmbedding(rng, cfg, hot);
    lmHead_ = genWeight(rng, cfg.vocab, cfg.dModel, cfg, 1.0);
    finalNormGain_ = genNormGain(rng, cfg.dModel, cfg);

    double resid_scale = 1.0 / std::sqrt(2.0 * cfg.nLayers);
    // GQA: the K/V projections produce kvDim() columns (== dModel for
    // classic MHA, so default configs consume the identical RNG
    // stream and keep their exact weights).
    unsigned kv_dim = cfg.kvDim();
    blocks_.resize(cfg.nLayers);
    for (auto &b : blocks_) {
        b.attnNormGain = genNormGain(rng, cfg.dModel, cfg);
        b.mlpNormGain = genNormGain(rng, cfg.dModel, cfg);
        b.wq = genWeight(rng, cfg.dModel, cfg.dModel, cfg, 1.0);
        b.wk = genWeight(rng, kv_dim, cfg.dModel, cfg, 1.0);
        b.wv = genWeight(rng, kv_dim, cfg.dModel, cfg, 1.0);
        b.wo = genWeight(rng, cfg.dModel, cfg.dModel, cfg,
                         resid_scale);
        b.wGate = genWeight(rng, cfg.dFf, cfg.dModel, cfg, 1.0);
        b.wUp = genWeight(rng, cfg.dFf, cfg.dModel, cfg, 1.0);
        b.wDown = genWeight(rng, cfg.dModel, cfg.dFf, cfg,
                            resid_scale);
    }
    rebuild(fp32LinearFactory());
}

std::vector<TinyTransformer::LinearSlot>
TinyTransformer::linearSlots()
{
    std::vector<LinearSlot> slots;
    for (size_t l = 0; l < blocks_.size(); ++l) {
        Block &b = blocks_[l];
        std::string p = "layer" + std::to_string(l) + ".";
        slots.push_back({p + "q", &b.wq, &b.q});
        slots.push_back({p + "k", &b.wk, &b.k});
        slots.push_back({p + "v", &b.wv, &b.v});
        slots.push_back({p + "o", &b.wo, &b.o});
        slots.push_back({p + "gate", &b.wGate, &b.gate});
        slots.push_back({p + "up", &b.wUp, &b.up});
        slots.push_back({p + "down", &b.wDown, &b.down});
    }
    slots.push_back({"head", &lmHead_, &head_});
    return slots;
}

void
TinyTransformer::rebuild(const LinearFactory &factory)
{
    for (auto &slot : linearSlots()) {
        auto it = calib_.find(slot.name);
        const Matrix *calib =
            it == calib_.end() ? nullptr : &it->second;
        *slot.op = factory(*slot.weight, slot.name, calib);
    }
}

std::vector<std::string>
TinyTransformer::linearNames() const
{
    std::vector<std::string> names;
    for (auto &slot : const_cast<TinyTransformer *>(this)
                          ->linearSlots())
        names.push_back(slot.name);
    return names;
}

const Matrix &
TinyTransformer::rawWeight(const std::string &name) const
{
    for (auto &slot :
         const_cast<TinyTransformer *>(this)->linearSlots()) {
        if (slot.name == name)
            return *slot.weight;
    }
    m2x_fatal("unknown linear '%s'", name.c_str());
}

void
TinyTransformer::setKvQuantizers(
    std::function<std::shared_ptr<GroupQuantizer>()> kv_q,
    std::function<std::shared_ptr<GroupQuantizer>()> qp_q)
{
    kvQ_ = std::move(kv_q);
    qpQ_ = std::move(qp_q);
}

Matrix
TinyTransformer::rmsNorm(const Matrix &x,
                         const std::vector<float> &gain) const
{
    Matrix out;
    rmsNormInto(x, gain, out);
    return out;
}

void
TinyTransformer::rmsNormInto(const Matrix &x,
                             const std::vector<float> &gain,
                             Matrix &out) const
{
    out.resize(x.rows(), x.cols());
    for (size_t r = 0; r < x.rows(); ++r) {
        double ss = 0.0;
        for (float v : x.row(r))
            ss += static_cast<double>(v) * v;
        float inv = static_cast<float>(
            1.0 / std::sqrt(ss / static_cast<double>(x.cols()) +
                            1e-6));
        for (size_t c = 0; c < x.cols(); ++c)
            out(r, c) = x(r, c) * inv * gain[c];
    }
}

namespace {

/**
 * Rotary position embedding applied in place per head. Row t rotates
 * by its absolute position positions[t], so a chunk of rows deep in a
 * sequence gets exactly the rotation the full forward would apply.
 */
void
applyRope(Matrix &x, unsigned n_heads,
          std::span<const size_t> positions)
{
    size_t t_len = x.rows();
    size_t d = x.cols();
    size_t hd = d / n_heads;
    for (size_t t = 0; t < t_len; ++t) {
        for (unsigned h = 0; h < n_heads; ++h) {
            float *base = x.data() + t * d + h * hd;
            for (size_t i = 0; i + 1 < hd; i += 2) {
                double theta =
                    static_cast<double>(positions[t]) /
                    std::pow(10000.0,
                             static_cast<double>(i) /
                                 static_cast<double>(hd));
                float c = static_cast<float>(std::cos(theta));
                float s = static_cast<float>(std::sin(theta));
                float a = base[i], b = base[i + 1];
                base[i] = a * c - b * s;
                base[i + 1] = a * s + b * c;
            }
        }
    }
}

} // anonymous namespace

void
TinyTransformer::attention(const Block &b, size_t layer,
                           const Matrix &x_normed,
                           std::span<const size_t> positions,
                           AttentionBackend *backend,
                           const std::string &prefix,
                           std::map<std::string, Matrix> *collect,
                           ForwardScratch &s) const
{
    // Projection stage: QKV linears, RoPE at the rows' absolute
    // positions, §6.4 operand quantization.
    b.q->forwardInto(x_normed, s.q);
    b.k->forwardInto(x_normed, s.k);
    b.v->forwardInto(x_normed, s.v);
    applyRope(s.q, cfg_.nHeads, positions);
    applyRope(s.k, cfg_.kvHeads(), positions);

    // §6.4 extension: K/V are right-hand GEMM operands and may be
    // quantized with the static-side codec; Q with the dynamic one.
    if (kvQ_) {
        auto kq = kvQ_();
        s.k = quantizeRowsGrouped(s.k, *kq);
        auto vq = kvQ_();
        s.v = quantizeRowsGrouped(s.v, *vq);
    }
    if (qpQ_) {
        auto qq = qpQ_();
        s.q = quantizeRowsGrouped(s.q, *qq);
    }

    // Score/value stage: the built-in causal implementation, or the
    // caller's incremental backend (which owns the KV cache).
    if (backend) {
        // §6.4 P quantization happens inside the softmax loop, which
        // an external backend owns — none implements it today, so
        // running such a model incrementally would silently diverge
        // from the one-shot forward. Fail loudly instead.
        m2x_assert(!qpQ_,
                   "forwardChunk: the post-softmax P quantizer "
                   "(setKvQuantizers) is not supported by attention "
                   "backends");
        s.attnOut = backend->attend(layer, s.q, s.k, s.v, positions,
                                    cfg_.nHeads, cfg_.kvHeads(),
                                    cfg_.slidingWindow);
        m2x_assert(s.attnOut.rows() == x_normed.rows() &&
                   s.attnOut.cols() == cfg_.dModel,
                   "attention backend returned %zux%zu, want %zux%u",
                   s.attnOut.rows(), s.attnOut.cols(),
                   x_normed.rows(), cfg_.dModel);
    } else {
        s.attnOut = causalAttend(s.q, s.k, s.v);
    }
    if (collect)
        (*collect)[prefix + "o"] = s.attnOut;
    b.o->forwardInto(s.attnOut, s.attnProj);
}

Matrix
TinyTransformer::causalAttend(const Matrix &q, const Matrix &k,
                              const Matrix &v) const
{
    size_t t_len = q.rows();
    size_t d = cfg_.dModel;
    size_t hd = d / cfg_.nHeads;
    // GQA: consecutive groups of `group` query heads read the same
    // K/V head; classic MHA is group == 1.
    unsigned group = cfg_.nHeads / cfg_.kvHeads();
    size_t window = cfg_.slidingWindow;

    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    Matrix out(t_len, d);
    std::vector<float> scores(t_len);
    for (unsigned h = 0; h < cfg_.nHeads; ++h) {
        size_t off = h * hd;
        size_t kv_off = static_cast<size_t>(h / group) * hd;
        for (size_t i = 0; i < t_len; ++i) {
            // Causal scores for row i; a sliding window keeps only
            // the trailing `window` positions (i itself included).
            size_t j0 = (window != 0 && i + 1 > window)
                            ? i + 1 - window
                            : 0;
            size_t valid = i + 1 - j0;
            for (size_t j = j0; j <= i; ++j) {
                double dot = 0.0;
                for (size_t c = 0; c < hd; ++c)
                    dot += static_cast<double>(q(i, off + c)) *
                           k(j, kv_off + c);
                scores[j - j0] = static_cast<float>(dot) * inv_sqrt;
            }
            // Softmax over the visible prefix — the shared helper is
            // the bit-exactness contract with the decode runtime.
            attentionSoftmax(scores.data(), valid);
            // §6.4: optionally quantize the probability row (P).
            if (qpQ_) {
                auto pq = qpQ_();
                std::vector<float> p_out(valid);
                quantizeSpanGrouped({scores.data(), valid},
                                    {p_out.data(), valid}, *pq);
                std::copy(p_out.begin(), p_out.end(),
                          scores.begin());
            }
            // O_i = sum_j P_ij V_j.
            for (size_t c = 0; c < hd; ++c) {
                double acc = 0.0;
                for (size_t j = 0; j < valid; ++j)
                    acc += static_cast<double>(scores[j]) *
                           v(j0 + j, kv_off + c);
                out(i, off + c) = static_cast<float>(acc);
            }
        }
    }
    return out;
}

Matrix
TinyTransformer::forwardInner(
    std::span<const int> tokens, std::span<const size_t> positions,
    AttentionBackend *backend,
    std::map<std::string, Matrix> *collect) const
{
    size_t t_len = tokens.size();
    m2x_assert(positions.size() == t_len,
               "positions: %zu entries for %zu tokens",
               positions.size(), t_len);
    Matrix x(t_len, cfg_.dModel);
    for (size_t t = 0; t < t_len; ++t) {
        int tok = tokens[t];
        m2x_assert(tok >= 0 &&
                   static_cast<unsigned>(tok) < cfg_.vocab,
                   "token %d out of vocab %u", tok, cfg_.vocab);
        for (size_t c = 0; c < cfg_.dModel; ++c)
            x(t, c) = embedding_(static_cast<size_t>(tok), c);
    }

    auto record = [&](const std::string &name, const Matrix &input) {
        if (collect)
            (*collect)[name] = input;
    };

    ForwardScratch s;
    for (size_t l = 0; l < blocks_.size(); ++l) {
        const Block &b = blocks_[l];
        std::string p = "layer" + std::to_string(l) + ".";

        rmsNormInto(x, b.attnNormGain, s.xn);
        record(p + "q", s.xn);
        record(p + "k", s.xn);
        record(p + "v", s.xn);
        attention(b, l, s.xn, positions, backend, p, collect, s);
        for (size_t i = 0; i < x.size(); ++i)
            x.flat()[i] += s.attnProj.flat()[i];

        rmsNormInto(x, b.mlpNormGain, s.mn);
        record(p + "gate", s.mn);
        record(p + "up", s.mn);
        b.gate->forwardInto(s.mn, s.g);
        b.up->forwardInto(s.mn, s.u);
        // SwiGLU: silu(g) * u, written back over g in place.
        for (size_t i = 0; i < s.g.size(); ++i) {
            float gv = s.g.flat()[i];
            float silu = gv / (1.0f + std::exp(-gv));
            s.g.flat()[i] = silu * s.u.flat()[i];
        }
        record(p + "down", s.g);
        b.down->forwardInto(s.g, s.mlp);
        for (size_t i = 0; i < x.size(); ++i)
            x.flat()[i] += s.mlp.flat()[i];
    }

    Matrix xf = rmsNorm(x, finalNormGain_);
    record("head", xf);
    return head_->forward(xf);
}

namespace {

/** Positions 0..T-1: the full-forward identity mapping. */
std::vector<size_t>
identityPositions(size_t t_len)
{
    std::vector<size_t> pos(t_len);
    for (size_t t = 0; t < t_len; ++t)
        pos[t] = t;
    return pos;
}

} // anonymous namespace

void
TinyTransformer::collectCalibration(std::span<const int> tokens)
{
    calib_.clear();
    forwardInner(tokens, identityPositions(tokens.size()), nullptr,
                 &calib_);
}

Matrix
TinyTransformer::forwardLogits(std::span<const int> tokens) const
{
    return forwardInner(tokens, identityPositions(tokens.size()),
                        nullptr, nullptr);
}

Matrix
TinyTransformer::forwardChunk(std::span<const int> tokens,
                              std::span<const size_t> positions,
                              AttentionBackend &backend) const
{
    return forwardInner(tokens, positions, &backend, nullptr);
}

} // namespace model
} // namespace m2x
