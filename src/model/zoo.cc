#include "model/zoo.hh"

#include <memory>

#include "core/elem_em.hh"
#include "core/m2_nvfp4.hh"
#include "core/m2xfp.hh"
#include "core/sg_em.hh"
#include "model/algorithms.hh"
#include "model/baselines.hh"
#include "mx/fp16_scale.hh"
#include "mx/max_preserve.hh"
#include "mx/mxfp.hh"
#include "mx/nvfp4.hh"
#include "mx/smx.hh"
#include "util/logging.hh"

namespace m2x {
namespace model {

namespace {

using QFn = std::function<std::shared_ptr<GroupQuantizer>()>;

QFn
mxfp4Q(ScaleRule rule = ScaleRule::Floor)
{
    return [rule]() {
        return std::make_shared<MxfpQuantizer>(
            MxfpQuantizer::mxfp4(rule));
    };
}

QFn
nvfp4Q()
{
    return []() { return std::make_shared<Nvfp4Quantizer>(); };
}

QFn
smx4Q()
{
    return []() {
        return std::make_shared<SmxQuantizer>(SmxQuantizer::smx4());
    };
}

QFn
fp4Fp16Q()
{
    return []() {
        return std::make_shared<Fp16ScaleQuantizer>(
            Fp16ScaleQuantizer::fp4());
    };
}

QFn
m2xfpWeightQ(ScaleRule rule = ScaleRule::Floor)
{
    return [rule]() {
        M2xfpConfig cfg;
        cfg.rule = rule;
        return std::make_shared<SgEmQuantizer>(
            makeM2xfpWeightQuantizer(cfg));
    };
}

QFn
m2xfpActQ(ScaleRule rule = ScaleRule::Floor)
{
    return [rule]() {
        M2xfpConfig cfg;
        cfg.rule = rule;
        return std::make_shared<ElemEmQuantizer>(
            makeM2xfpActivationQuantizer(cfg));
    };
}

QFn
maxPreserveQ(const QFn &inner)
{
    return [inner]() -> std::shared_ptr<GroupQuantizer> {
        auto q = inner();
        // Wrap a fresh inner instance.
        struct Shim : GroupQuantizer
        {
            explicit Shim(std::shared_ptr<GroupQuantizer> q)
                : inner(std::move(q))
            {}
            std::shared_ptr<GroupQuantizer> inner;
            void
            calibrate(std::span<const float> f) override
            {
                inner->calibrate(f);
            }
            void
            quantizeGroup(std::span<const float> in,
                          std::span<float> out) const override
            {
                inner->quantizeGroup(in, out);
            }
            unsigned groupSize() const override
            {
                return inner->groupSize();
            }
            BitBudget bitBudget() const override
            {
                return inner->bitBudget();
            }
            std::string name() const override { return inner->name(); }
        };
        return std::make_shared<MaxPreserveQuantizer>(
            std::make_unique<Shim>(q));
    };
}

ScaleRule
ruleFromSuffix(const std::string &s)
{
    if (s == "floor")
        return ScaleRule::Floor;
    if (s == "ceil")
        return ScaleRule::Ceil;
    if (s == "rtn1")
        return ScaleRule::Rtn1;
    if (s == "rtn2")
        return ScaleRule::Rtn2;
    if (s == "rtne")
        return ScaleRule::Rtne;
    m2x_fatal("unknown scale rule '%s'", s.c_str());
}

QuantScheme
make(const std::string &name, QFn wq, QFn aq, double w_ebw,
     double a_ebw)
{
    QuantScheme s;
    s.name = name;
    s.factory = quantizedLinearFactory(std::move(wq), std::move(aq));
    s.weightEbw = w_ebw;
    s.actEbw = a_ebw;
    return s;
}

} // anonymous namespace

QuantScheme
scheme(const std::string &name)
{
    // Tbl. 8 rule variants: "<method>-<rule>".
    auto dash = name.rfind('-');
    if (dash != std::string::npos) {
        std::string suffix = name.substr(dash + 1);
        if (suffix == "floor" || suffix == "ceil" || suffix == "rtn1" ||
            suffix == "rtn2" || suffix == "rtne") {
            ScaleRule rule = ruleFromSuffix(suffix);
            std::string base = name.substr(0, dash);
            if (base == "MXFP4")
                return make(name, mxfp4Q(rule), mxfp4Q(rule), 4.25,
                            4.25);
            if (base == "M2XFP")
                return make(name, m2xfpWeightQ(rule),
                            m2xfpActQ(rule), 4.5, 4.5);
            m2x_fatal("no rule variants for '%s'", base.c_str());
        }
    }

    if (name == "FP16") {
        QuantScheme s;
        s.name = name;
        s.factory = fp32LinearFactory();
        return s;
    }
    if (name == "MXFP4")
        return make(name, mxfp4Q(), mxfp4Q(), 4.25, 4.25);
    if (name == "NVFP4")
        return make(name, nvfp4Q(), nvfp4Q(), 4.5, 4.5);
    if (name == "SMX4")
        return make(name, smx4Q(), smx4Q(), 4.0, 4.0);
    if (name == "FP4")
        return make(name, fp4Fp16Q(), fp4Fp16Q(), 4.5, 4.5);
    if (name == "M2XFP")
        return make(name, m2xfpWeightQ(), m2xfpActQ(), 4.5, 4.5);
    if (name == "M2-NVFP4") {
        return make(
            name,
            []() { return std::make_shared<M2Nvfp4Quantizer>(true); },
            []() {
                return std::make_shared<M2Nvfp4Quantizer>(false);
            },
            5.0, 5.0);
    }
    if (name == "MX-ANT") {
        // Adaptive types for static weights; online search is too
        // costly for activations, which stay MXFP4 (§6.2).
        return make(
            name,
            []() {
                return std::make_shared<GridSelectQuantizer>(
                    GridSelectQuantizer::mxAnt());
            },
            mxfp4Q(), 4.3125, 4.25);
    }
    if (name == "MX-M-ANT") {
        return make(
            name,
            []() {
                return std::make_shared<GridSelectQuantizer>(
                    GridSelectQuantizer::mxMAnt());
            },
            mxfp4Q(), 4.25, 4.25);
    }
    if (name == "MX-OliVe") {
        return make(
            name,
            []() { return std::make_shared<OliveQuantizer>(); },
            []() { return std::make_shared<OliveQuantizer>(); },
            4.40625, 4.40625);
    }
    if (name == "MicroScopiQ") {
        return make(
            name,
            []() {
                return std::make_shared<MicroScopiQWeightQuantizer>();
            },
            []() { return std::make_shared<MxIntQuantizer>(4, 32); },
            4.625, 4.25);
    }
    if (name == "BlockDialect") {
        return make(
            name,
            []() {
                return std::make_shared<GridSelectQuantizer>(
                    GridSelectQuantizer::blockDialect());
            },
            []() {
                return std::make_shared<GridSelectQuantizer>(
                    GridSelectQuantizer::blockDialect());
            },
            4.375, 4.375);
    }
    if (name == "QuaRot") {
        QuantScheme s;
        s.name = name;
        auto int4 = []() {
            return std::make_shared<IntFp16ScaleQuantizer>(
                IntFp16ScaleQuantizer::int4());
        };
        s.factory = quarotFactory(int4, int4, 0xabc1);
        s.weightEbw = s.actEbw = 4.5;
        return s;
    }
    if (name == "DuQuant") {
        QuantScheme s;
        s.name = name;
        auto int4 = []() {
            return std::make_shared<IntFp16ScaleQuantizer>(
                IntFp16ScaleQuantizer::int4());
        };
        s.factory = duquantFactory(int4, int4, 0xabc2);
        s.weightEbw = s.actEbw = 4.5;
        return s;
    }
    if (name == "MR-GPTQ") {
        QuantScheme s;
        s.name = name;
        s.factory = gptqFactory(GptqGrid::Mxfp4, mxfp4Q());
        s.weightEbw = s.actEbw = 4.25;
        return s;
    }
    if (name == "MR-GPTQ-M2XFP") {
        QuantScheme s;
        s.name = name;
        s.factory = gptqFactory(GptqGrid::M2xfpSgEm, m2xfpActQ());
        s.weightEbw = s.actEbw = 4.5;
        return s;
    }
    if (name == "MXFP4-maxpreserve")
        return make(name, maxPreserveQ(mxfp4Q()),
                    maxPreserveQ(mxfp4Q()), 4.9, 4.9);
    if (name == "NVFP4-maxpreserve")
        return make(name, maxPreserveQ(nvfp4Q()),
                    maxPreserveQ(nvfp4Q()), 5.8, 5.8);
    if (name == "FP4-maxpreserve")
        return make(name, maxPreserveQ(fp4Fp16Q()),
                    maxPreserveQ(fp4Fp16Q()), 5.2, 5.2);
    if (name == "SMX4-maxpreserve")
        return make(name, maxPreserveQ(smx4Q()),
                    maxPreserveQ(smx4Q()), 5.3, 5.3);

    m2x_fatal("unknown quantization scheme '%s'", name.c_str());
}

std::vector<std::string>
table3Methods()
{
    return {"FP16",      "MXFP4",       "MX-ANT",
            "MX-M-ANT",  "MX-OliVe",    "MicroScopiQ",
            "BlockDialect", "M2XFP"};
}

std::vector<std::string>
table2Methods()
{
    return {"FP16", "SMX4", "MXFP4", "NVFP4", "M2XFP"};
}

} // namespace model
} // namespace m2x
