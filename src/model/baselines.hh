/**
 * @file
 * Algorithm models of the baseline accelerators the paper compares
 * against (Tbl. 3, Fig. 13), adapted to group-wise MX settings the
 * way §6.1 describes ("MX-ANT", "MX-M-ANT", "MX-OliVe") plus
 * MicroScopiQ and BlockDialect.
 *
 * Each baseline's *mechanism* is reproduced:
 *  - ANT: per-group adaptive numerical type selection among a small
 *    set of 4-bit grids (int4 / fp4 / pot4 / flint4);
 *  - M-ANT: the same with a richer, mathematically shaped type set;
 *  - OliVe: outlier-victim pairs — the group's dominant outlier is
 *    granted a wide-range code while its neighbour (victim) is
 *    sacrificed to zero; group-wise this trades a neighbour for an
 *    outlier and underperforms exactly as the paper observes;
 *  - MicroScopiQ: weights keep top outliers in FP8-grade precision
 *    with the smallest elements pruned to compensate; activations
 *    fall back to naive MXINT4;
 *  - BlockDialect: per-group selection among 16 "dialect" grids for
 *    both weights and activations with a 4-bit index.
 */

#ifndef M2X_MODEL_BASELINES_HH__
#define M2X_MODEL_BASELINES_HH__

#include <string>
#include <vector>

#include "quant/group_quantizer.hh"

namespace m2x {
namespace model {

/** A normalized 4-bit magnitude grid (a "numerical type"). */
struct ValueGrid
{
    std::string name;
    std::vector<float> mags; //!< nonnegative, increasing, mags[0]==0

    float maxValue() const { return mags.back(); }
    /** Largest power of two <= maxValue (the scale anchor "P"). */
    float maxPow2() const;
    /** Nearest-value quantization of a nonnegative magnitude. */
    float quantizeMag(float m) const;
};

/** @{ The standard 4-bit grids. */
ValueGrid gridFp4();
ValueGrid gridInt4();
ValueGrid gridPot4();
ValueGrid gridFlint4();
/** @} */

/**
 * Per-group adaptive type selection with an E8M0 shared scale: the
 * common machinery behind ANT / M-ANT / BlockDialect.
 */
class GridSelectQuantizer : public GroupQuantizer
{
  public:
    GridSelectQuantizer(std::string name, std::vector<ValueGrid> grids,
                        unsigned group_size, double index_bits);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override { return name_; }

    /** MX-ANT: 4 classic types. */
    static GridSelectQuantizer mxAnt();
    /** MX-M-ANT: richer mathematically shaped type set. */
    static GridSelectQuantizer mxMAnt();
    /** BlockDialect: 16 dialects, both operands. */
    static GridSelectQuantizer blockDialect();

  private:
    std::string name_;
    std::vector<ValueGrid> grids_;
    unsigned groupSize_;
    double indexBits_;
};

/** MX-OliVe: outlier-victim pair quantization, group-wise. */
class OliveQuantizer : public GroupQuantizer
{
  public:
    explicit OliveQuantizer(unsigned group_size = 32);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override { return "MX-OliVe"; }

  private:
    unsigned groupSize_;
};

/** MicroScopiQ weight path: outliers in high precision, smallest
 *  elements pruned to pay for them. */
class MicroScopiQWeightQuantizer : public GroupQuantizer
{
  public:
    explicit MicroScopiQWeightQuantizer(unsigned group_size = 32,
                                        unsigned n_outliers = 2);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override { return "MicroScopiQ-W"; }

  private:
    unsigned groupSize_;
    unsigned nOutliers_;
};

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_BASELINES_HH__
