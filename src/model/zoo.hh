/**
 * @file
 * The quantization-scheme registry: maps the method names used in
 * the paper's tables to LinearFactory builders, so every bench can
 * evaluate "MXFP4" / "M2XFP" / "MicroScopiQ" / "QuaRot" / ... through
 * one interface.
 */

#ifndef M2X_MODEL_ZOO_HH__
#define M2X_MODEL_ZOO_HH__

#include <string>
#include <vector>

#include "model/transformer.hh"

namespace m2x {
namespace model {

/** One named W/A quantization scheme. */
struct QuantScheme
{
    std::string name;
    LinearFactory factory;
    double weightEbw = 16.0; //!< effective bits, weight operand
    double actEbw = 16.0;    //!< effective bits, activation operand
};

/**
 * Look up a scheme by table name. Known names:
 *   FP16, FP4, MXFP4, NVFP4, SMX4, M2XFP, M2-NVFP4,
 *   MX-ANT, MX-M-ANT, MX-OliVe, MicroScopiQ, BlockDialect,
 *   QuaRot, DuQuant, MR-GPTQ, MR-GPTQ-M2XFP,
 *   MXFP4-maxpreserve, NVFP4-maxpreserve, FP4-maxpreserve,
 *   SMX4-maxpreserve, and MXFP4-<rule> / M2XFP-<rule> for the Tbl. 8
 *   scale rules (rule in floor/ceil/rtn1/rtn2/rtne).
 */
QuantScheme scheme(const std::string &name);

/** Names in Tbl. 3 row order. */
std::vector<std::string> table3Methods();

/** Names in Tbl. 2 row order. */
std::vector<std::string> table2Methods();

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_ZOO_HH__
