#include "model/baselines.hh"

#include <algorithm>
#include <cmath>

#include "formats/minifloat.hh"
#include "quant/scale_rules.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {

float
ValueGrid::maxPow2() const
{
    return std::exp2(std::floor(std::log2(maxValue())));
}

float
ValueGrid::quantizeMag(float m) const
{
    // Nearest value; ties resolve downward (grid entries are exact).
    size_t lo = 0, hi = mags.size() - 1;
    if (m >= mags[hi])
        return mags[hi];
    while (lo + 1 < hi) {
        size_t mid = (lo + hi) / 2;
        if (mags[mid] <= m)
            lo = mid;
        else
            hi = mid;
    }
    float dlo = m - mags[lo];
    float dhi = mags[hi] - m;
    return dlo <= dhi ? mags[lo] : mags[hi];
}

ValueGrid
gridFp4()
{
    return {"fp4", {0, 0.5f, 1, 1.5f, 2, 3, 4, 6}};
}

ValueGrid
gridInt4()
{
    return {"int4", {0, 1, 2, 3, 4, 5, 6, 7}};
}

ValueGrid
gridPot4()
{
    return {"pot4", {0, 0.125f, 0.25f, 0.5f, 1, 2, 4, 8}};
}

ValueGrid
gridFlint4()
{
    // ANT's flint: float-ish near 1, int-ish near max.
    return {"flint4", {0, 1, 1.5f, 2, 3, 4, 6, 8}};
}

GridSelectQuantizer::GridSelectQuantizer(std::string name,
                                         std::vector<ValueGrid> grids,
                                         unsigned group_size,
                                         double index_bits)
    : name_(std::move(name)), grids_(std::move(grids)),
      groupSize_(group_size), indexBits_(index_bits)
{
    m2x_assert(!grids_.empty(), "need at least one grid");
}

void
GridSelectQuantizer::quantizeGroup(std::span<const float> in,
                                   std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    double best_err = -1.0;
    std::vector<float> cand(in.size());
    for (const ValueGrid &g : grids_) {
        // E8M0 shared scale, OCP floor rule w.r.t. this grid's P.
        int e = floorLog2Exact(amax) -
                floorLog2Exact(g.maxPow2());
        float scale = std::exp2(static_cast<float>(e));
        float inv = 1.0f / scale;
        double err = 0.0;
        for (size_t i = 0; i < in.size(); ++i) {
            float mag = std::fabs(in[i]) * inv;
            float q = g.quantizeMag(mag) * scale;
            cand[i] = in[i] < 0 ? -q : q;
            double d = static_cast<double>(cand[i]) - in[i];
            err += d * d;
        }
        if (best_err < 0.0 || err < best_err) {
            best_err = err;
            std::copy(cand.begin(), cand.end(), out.begin());
        }
    }
}

BitBudget
GridSelectQuantizer::bitBudget() const
{
    return {4.0, 8.0, indexBits_, groupSize_};
}

GridSelectQuantizer
GridSelectQuantizer::mxAnt()
{
    return {"MX-ANT",
            {gridFp4(), gridInt4(), gridPot4(), gridFlint4()},
            32,
            2.0};
}

GridSelectQuantizer
GridSelectQuantizer::mxMAnt()
{
    // M-ANT adds mathematically shaped grids (lognormal/gaussian-
    // optimal spacings and mixed-resolution variants).
    std::vector<ValueGrid> grids{gridFp4(), gridInt4(), gridPot4(),
                                 gridFlint4()};
    grids.push_back({"gauss4", {0, 0.4f, 0.8f, 1.3f, 1.9f, 2.6f,
                                3.8f, 6}});
    grids.push_back({"lognorm4", {0, 0.35f, 0.7f, 1.1f, 1.6f, 2.3f,
                                  3.4f, 6}});
    grids.push_back({"dense-mid4", {0, 0.75f, 1.25f, 1.75f, 2.25f,
                                    3, 4, 6}});
    grids.push_back({"wide4", {0, 0.5f, 1, 2, 4, 6, 8, 12}});
    return {"MX-M-ANT", std::move(grids), 64, 8.0};
}

GridSelectQuantizer
GridSelectQuantizer::blockDialect()
{
    // 16 dialects spanning precision-vs-range trade-offs.
    std::vector<ValueGrid> grids{gridFp4(), gridInt4(), gridPot4(),
                                 gridFlint4()};
    grids.push_back({"d4", {0, 0.4f, 0.8f, 1.3f, 1.9f, 2.6f, 3.8f, 6}});
    grids.push_back({"d5", {0, 0.35f, 0.7f, 1.1f, 1.6f, 2.3f, 3.4f, 6}});
    grids.push_back({"d6", {0, 0.25f, 0.5f, 0.75f, 1, 1.5f, 3, 6}});
    grids.push_back({"d7", {0, 0.5f, 1, 1.5f, 2.5f, 3.5f, 5, 7}});
    grids.push_back({"d8", {0, 0.75f, 1.5f, 2.25f, 3, 4, 5, 6}});
    grids.push_back({"d9", {0, 1, 2, 3, 4, 5, 6, 8}});
    grids.push_back({"d10", {0, 0.5f, 1, 2, 3, 4.5f, 6, 9}});
    grids.push_back({"d11", {0, 0.3f, 0.6f, 1, 1.5f, 2.2f, 3.2f, 4.8f}});
    grids.push_back({"d12", {0, 0.6f, 1.2f, 1.8f, 2.6f, 3.6f, 4.8f, 6.4f}});
    grids.push_back({"d13", {0, 0.45f, 0.95f, 1.5f, 2.1f, 2.9f, 4.1f, 6}});
    grids.push_back({"d14", {0, 0.2f, 0.45f, 0.8f, 1.3f, 2, 3.2f, 5.5f}});
    grids.push_back({"d15", {0, 0.55f, 1.05f, 1.65f, 2.4f, 3.3f, 4.4f,
                             5.8f}});
    return {"BlockDialect", std::move(grids), 32, 4.0};
}

OliveQuantizer::OliveQuantizer(unsigned group_size)
    : groupSize_(group_size)
{}

void
OliveQuantizer::quantizeGroup(std::span<const float> in,
                              std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }

    // Identify the dominant outlier and its victim neighbour.
    size_t o_idx = 0;
    for (size_t i = 1; i < in.size(); ++i)
        if (std::fabs(in[i]) > std::fabs(in[o_idx]))
            o_idx = i;
    size_t victim = o_idx ^ 1u;
    bool has_victim = victim < in.size();

    // Inlier scale from the largest non-outlier magnitude.
    float inlier_max = 0.0f;
    for (size_t i = 0; i < in.size(); ++i) {
        if (i == o_idx || (has_victim && i == victim))
            continue;
        inlier_max = std::max(inlier_max, std::fabs(in[i]));
    }
    ScaleE8m0 s = computeSharedScale(
        inlier_max > 0 ? inlier_max : amax, fp4, ScaleRule::Floor);
    float inv = s.inverse();
    float sval = s.value();
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = fp4.quantize(in[i] * inv) * sval;

    // The victim is sacrificed; the pair encodes the outlier on a
    // wide power-of-two (abfloat-style) grid anchored to the inlier
    // scale.
    if (has_victim)
        out[victim] = 0.0f;
    float mag = std::fabs(in[o_idx]) * inv;
    float best = 0.0f;
    for (int k = 0; k < 8; ++k) {
        float cand = std::exp2(static_cast<float>(k)) * 4.0f;
        if (std::fabs(cand - mag) < std::fabs(best - mag))
            best = cand;
    }
    // Small outliers stay on the FP4 grid if that is closer.
    float fp4_q = fp4.quantize(mag);
    if (std::fabs(fp4_q - mag) <= std::fabs(best - mag))
        best = fp4_q;
    out[o_idx] = (in[o_idx] < 0 ? -best : best) * sval;
}

BitBudget
OliveQuantizer::bitBudget() const
{
    // Outlier-victim encoding is in-band (the victim's slot), plus a
    // per-group outlier locator.
    return {4.0, 8.0, 5.0, groupSize_};
}

MicroScopiQWeightQuantizer::MicroScopiQWeightQuantizer(
    unsigned group_size, unsigned n_outliers)
    : groupSize_(group_size), nOutliers_(n_outliers)
{}

void
MicroScopiQWeightQuantizer::quantizeGroup(std::span<const float> in,
                                          std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp8 = Minifloat::fp8e4m3();
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }

    // Rank elements by magnitude.
    std::vector<size_t> order(in.size());
    for (size_t i = 0; i < in.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return std::fabs(in[a]) > std::fabs(in[b]);
    });
    size_t n_out = std::min<size_t>(nOutliers_, in.size());

    // Inlier scale from the largest inlier.
    float inlier_max =
        n_out < in.size() ? std::fabs(in[order[n_out]]) : amax;
    ScaleE8m0 s = computeSharedScale(
        inlier_max > 0 ? inlier_max : amax, fp4, ScaleRule::Floor);
    float inv = s.inverse();
    float sval = s.value();
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = fp4.quantize(in[i] * inv) * sval;

    // Outliers re-encoded in FP8 (E4M3) precision; the smallest
    // elements are pruned to pay the bit budget.
    for (size_t k = 0; k < n_out; ++k) {
        size_t idx = order[k];
        out[idx] = fp8.quantize(in[idx] * inv) * sval;
    }
    for (size_t k = 0; k < n_out; ++k) {
        size_t idx = order[in.size() - 1 - k];
        out[idx] = 0.0f;
    }
}

BitBudget
MicroScopiQWeightQuantizer::bitBudget() const
{
    // Paper: permutation list + identifier + extra scale, 40+ bits
    // per block at group 128; scaled to group 32 here.
    return {4.0, 8.0, 12.0, groupSize_};
}

} // namespace model
} // namespace m2x
