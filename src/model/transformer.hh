/**
 * @file
 * A small but complete decoder-only transformer: RMSNorm, RoPE
 * multi-head causal attention, SwiGLU MLP, tied token embedding and
 * LM head. Every linear layer is a pluggable LinearOp, so the same
 * network runs in FP32 reference mode, W4A4 quantized mode for any
 * format pair, or wrapped by algorithm schemes (QuaRot/GPTQ).
 *
 * The §6.4 extension — quantizing the attention KV cache (Sg-EM for
 * K/V as static-side operands, Elem-EM for Q and the probability
 * matrix P) — is available via setKvQuantizers().
 *
 * Attention is split into a projection stage (QKV linears, RoPE,
 * §6.4 operand quantization) and a score/value stage behind the
 * AttentionBackend seam, so the same block computation runs either
 * as the classic full causal forward (forwardLogits — recomputes the
 * whole prefix, the built-in backend) or incrementally against an
 * externally owned KV cache (forwardChunk — one chunk of tokens at
 * explicit positions, backend supplied by a decode engine).
 */

#ifndef M2X_MODEL_TRANSFORMER_HH__
#define M2X_MODEL_TRANSFORMER_HH__

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gemm/gemm.hh"
#include "model/config.hh"
#include "quant/matrix.hh"

namespace m2x {
namespace model {

/**
 * Builds the LinearOp for one weight matrix. @p calib_input is the
 * layer's FP input sample (rows of X) when calibration data has been
 * collected, else nullptr; GPTQ-style factories need it.
 */
using LinearFactory = std::function<std::unique_ptr<LinearOp>(
    const Matrix &weight, const std::string &layer_name,
    const Matrix *calib_input)>;

/** The plain FP32 factory (reference model). */
LinearFactory fp32LinearFactory();

/**
 * The attention seam between the transformer's per-block projection
 * stage and the score/value computation. The full-forward path uses
 * the built-in causal implementation; incremental decode engines
 * (src/runtime/decode_session) implement this interface to run the
 * same block computation against an externally owned KV cache.
 */
class AttentionBackend
{
  public:
    virtual ~AttentionBackend() = default;

    /**
     * Context rows [rows, dModel] for one block's chunk of queries.
     * @p q/@p k/@p v are the block's projected rows after RoPE and
     * any §6.4 operand quantization; row i belongs to the token at
     * absolute position positions[i]. The backend owns causality:
     * the built-in implementation masks j > i within the chunk, a
     * KV-cache backend appends k/v and attends over everything
     * cached so far.
     *
     * @p n_kv_heads is the grouped-query K/V head count (k/v have
     * n_kv_heads * (dModel/n_heads) columns; equal head counts is
     * classic MHA). @p window is the sliding-window span: a query at
     * position p sees only positions (p-window, p]; 0 = full causal.
     */
    virtual Matrix attend(size_t layer, const Matrix &q,
                          const Matrix &k, const Matrix &v,
                          std::span<const size_t> positions,
                          unsigned n_heads, unsigned n_kv_heads,
                          size_t window) = 0;
};

/**
 * A factory applying independent W/A group quantizers. The functors
 * create fresh quantizer instances per layer (they carry per-tensor
 * calibration state).
 */
LinearFactory quantizedLinearFactory(
    std::function<std::shared_ptr<GroupQuantizer>()> weight_q,
    std::function<std::shared_ptr<GroupQuantizer>()> act_q);

/** The synthetic decoder-only transformer. */
class TinyTransformer
{
  public:
    explicit TinyTransformer(const ModelConfig &cfg);

    /**
     * (Re)build all linear operators with @p factory. Call once for
     * the FP reference and once per quantization configuration.
     */
    void rebuild(const LinearFactory &factory);

    /**
     * Run an FP32 forward over @p tokens, capturing every linear
     * layer's input rows for later GPTQ-style calibration.
     */
    void collectCalibration(std::span<const int> tokens);

    /** Logits [T, vocab] for a causal forward pass over tokens. */
    Matrix forwardLogits(std::span<const int> tokens) const;

    /**
     * Logits [rows, vocab] for one chunk of tokens at the given
     * absolute @p positions (one per token — they drive RoPE), with
     * the attention score/value stage delegated to @p backend. This
     * is the incremental entry point: a decode engine calls it once
     * per prefill chunk or decode step, with a backend that owns the
     * KV cache. forwardLogits(tokens) is exactly
     * forwardChunk(tokens, {0..T-1}, built-in causal backend).
     */
    Matrix forwardChunk(std::span<const int> tokens,
                        std::span<const size_t> positions,
                        AttentionBackend &backend) const;

    /**
     * §6.4 extension: quantize the attention operands. K and V use
     * the static-side quantizer, Q and the post-softmax P use the
     * dynamic-side quantizer. Pass nullptr factories to disable.
     */
    void setKvQuantizers(
        std::function<std::shared_ptr<GroupQuantizer>()> kv_q,
        std::function<std::shared_ptr<GroupQuantizer>()> qp_q);

    const ModelConfig &config() const { return cfg_; }

    /** Names of all linear layers (layer order is deterministic). */
    std::vector<std::string> linearNames() const;

    /** Raw (unquantized) weight of a linear by name. */
    const Matrix &rawWeight(const std::string &name) const;

  private:
    struct Block
    {
        std::vector<float> attnNormGain;
        std::vector<float> mlpNormGain;
        Matrix wq, wk, wv, wo;       // raw weights
        Matrix wGate, wUp, wDown;
        std::unique_ptr<LinearOp> q, k, v, o;
        std::unique_ptr<LinearOp> gate, up, down;
    };

    ModelConfig cfg_;
    Matrix embedding_;    // [vocab, d]
    Matrix lmHead_;       // [vocab, d]
    std::vector<float> finalNormGain_;
    std::vector<Block> blocks_;
    std::unique_ptr<LinearOp> head_;
    std::map<std::string, Matrix> calib_;

    std::function<std::shared_ptr<GroupQuantizer>()> kvQ_;
    std::function<std::shared_ptr<GroupQuantizer>()> qpQ_;

    /**
     * Per-forward reused buffers: every norm output and linear-layer
     * output of the block loop lands in one of these (via the
     * into-style LinearOp entry point), so a forwardInner call
     * allocates each buffer at most once and a steady-state chunk
     * stream — decode steps over a fixed active set — allocates no
     * layer outputs at all.
     */
    struct ForwardScratch
    {
        Matrix xn, mn;            // pre-attention / pre-MLP norms
        Matrix q, k, v;           // attention projections
        Matrix attnOut, attnProj; // score/value output, o-projection
        Matrix g, u, mlp;         // SwiGLU gate/up, down projection
    };

    Matrix rmsNorm(const Matrix &x,
                   const std::vector<float> &gain) const;
    void rmsNormInto(const Matrix &x, const std::vector<float> &gain,
                     Matrix &out) const;
    /** One block's attention half; the o-projection lands in
     * @p s.attnProj. */
    void attention(const Block &b, size_t layer,
                   const Matrix &x_normed,
                   std::span<const size_t> positions,
                   AttentionBackend *backend,
                   const std::string &prefix,
                   std::map<std::string, Matrix> *collect,
                   ForwardScratch &s) const;
    Matrix causalAttend(const Matrix &q, const Matrix &k,
                        const Matrix &v) const;
    Matrix forwardInner(std::span<const int> tokens,
                        std::span<const size_t> positions,
                        AttentionBackend *backend,
                        std::map<std::string, Matrix> *collect) const;

    /** Ordered (name, raw weight, op slot) tuples. */
    struct LinearSlot
    {
        std::string name;
        const Matrix *weight;
        std::unique_ptr<LinearOp> *op;
    };
    std::vector<LinearSlot> linearSlots();
};

} // namespace model
} // namespace m2x

#endif // M2X_MODEL_TRANSFORMER_HH__
