#include "model/eval.hh"

#include <algorithm>
#include <cmath>

#include "model/tensor_gen.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {
namespace model {

Evaluator::Evaluator(const ModelConfig &cfg, size_t eval_tokens,
                     size_t seq_len)
    : cfg_(cfg), model_(cfg), seqLen_(seq_len)
{
    m2x_assert(seq_len >= 8, "window too short");
    Rng rng(cfg.seed ^ 0xeba1eba1eba1ull);
    tokens_ = genTokens(rng, eval_tokens, cfg.vocab);

    // Calibration stream for GPTQ-style factories (distinct from the
    // eval stream, as in real calibration practice). More rows than
    // one window so the Hessian estimate is usable.
    std::vector<int> calib = genTokens(rng, 4 * seq_len, cfg.vocab);
    model_.collectCalibration(calib);

    // FP32 reference logits per window (model_ is FP32 after
    // construction).
    for (size_t off = 0; off + seqLen_ <= tokens_.size();
         off += seqLen_) {
        std::span<const int> window(tokens_.data() + off, seqLen_);
        refLogits_.push_back(model_.forwardLogits(window));
    }
    m2x_assert(!refLogits_.empty(),
               "eval_tokens must cover at least one window");
}

EvalRun
Evaluator::run() const
{
    EvalRun out;
    RunningMean kl, mse_acc;
    size_t w = 0;
    for (size_t off = 0; off + seqLen_ <= tokens_.size();
         off += seqLen_, ++w) {
        std::span<const int> window(tokens_.data() + off, seqLen_);
        Matrix logits = model_.forwardLogits(window);
        const Matrix &ref = refLogits_[w];
        for (size_t t = 0; t < logits.rows(); ++t) {
            kl.add(klDivergenceLogits(ref.row(t), logits.row(t)));
            mse_acc.add(mse(ref.row(t), logits.row(t)));
        }
        out.logits.push_back(std::move(logits));
    }
    out.meanKl = kl.value();
    out.logitMse = mse_acc.value();
    return out;
}

double
Evaluator::perplexityFrom(const EvalRun &run) const
{
    return cfg_.fp16Perplexity *
           std::exp(cfg_.klToLogPpl * run.meanKl);
}

double
Evaluator::accuracyFrom(const EvalRun &run, double fp16_accuracy,
                        unsigned n_choices, uint64_t task_seed) const
{
    m2x_assert(n_choices >= 2 && n_choices <= 16, "bad n_choices");
    m2x_assert(run.logits.size() == refLogits_.size(),
               "run does not match this evaluator");
    double p_keep = fp16_accuracy / 100.0;
    Rng rng(task_seed ^ (cfg_.seed << 17) ^ 0x7a5c7a5cull);

    size_t correct = 0, total = 0;
    for (size_t w = 0; w < refLogits_.size(); ++w) {
        const Matrix &ref = refLogits_[w];
        const Matrix &cur = run.logits[w];
        for (size_t t = 0; t < ref.rows(); ++t) {
            std::span<const float> rrow = ref.row(t);
            // Candidates: the reference argmax plus distractors at
            // geometrically spaced ranks of the reference ordering.
            // Adjacent-rank candidates would be near-ties that any
            // quantization noise flips; spaced ranks make an item
            // fail only when the logit perturbation overcomes a real
            // margin — mirroring how multiple-choice endings differ
            // by meaningful likelihood gaps.
            std::vector<int> order(rrow.size());
            for (size_t i = 0; i < order.size(); ++i)
                order[i] = static_cast<int>(i);
            std::sort(order.begin(), order.end(),
                      [&](int a, int b) { return rrow[a] > rrow[b]; });
            std::vector<int> cand(n_choices);
            cand[0] = order[0];
            double span = static_cast<double>(order.size() - 1);
            for (size_t i = 1; i < n_choices; ++i) {
                double frac = static_cast<double>(i) /
                              static_cast<double>(n_choices - 1);
                size_t rank = 1 + static_cast<size_t>(
                    std::pow(frac, 2.5) * (span - 1.0));
                cand[i] = order[std::min<size_t>(
                    rank, order.size() - 1)];
            }

            // Reference choice is candidate 0 by construction; the
            // label adds benchmark noise.
            size_t label = 0;
            if (rng.uniform() > p_keep)
                label = 1 + rng.uniformInt(n_choices - 1);

            // The model under test picks its own argmax among the
            // candidates.
            std::span<const float> crow = cur.row(t);
            size_t pick = 0;
            float best = crow[static_cast<size_t>(cand[0])];
            for (size_t i = 1; i < n_choices; ++i) {
                float v = crow[static_cast<size_t>(cand[i])];
                if (v > best) {
                    best = v;
                    pick = i;
                }
            }
            correct += (pick == label);
            ++total;
        }
    }
    return 100.0 * static_cast<double>(correct) /
           static_cast<double>(total);
}

} // namespace model
} // namespace m2x
