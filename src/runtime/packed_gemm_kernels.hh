/**
 * @file
 * Internal per-ISA kernel table for the packed GEMM.
 *
 * packedMatmulNt owns the tile grid, the thread distribution and the
 * per-thread A-tile cache; everything below the tile boundary — the
 * LUT decode into abuf/wtile buffers and the K-loop accumulation —
 * is an ISA-specific kernel selected through gemmKernels(). The
 * scalar tier accumulates each output in ascending-k order and is
 * bit-exact against matmulNt(unpack, unpack); vector tiers may
 * reassociate the sum (verified to tight tolerance by
 * tests/runtime/simd_test.cc). Both tiers decode identical values:
 * the vector LUT decode is bit-identical to runtime/decode_lut.
 *
 * Not installed API — tests include it for direct kernel access.
 */

#ifndef M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__
#define M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__

#include <cstddef>

#include "core/m2xfp_packed.hh"
#include "quant/matrix.hh"
#include "runtime/simd.hh"

namespace m2x {
namespace runtime {
namespace detail {

/** Output tile height (A rows) and width (W rows) per task. */
constexpr size_t gemmTileM = 16;
constexpr size_t gemmTileN = 16;

/**
 * Compute one output tile: rows [i0, i0+mt) x cols [j0, j0+nt) of c,
 * with the decoded A tile already in abuf (mt rows of padded_k
 * floats, tail-group padding included). k is the true (unpadded)
 * depth.
 */
using TileKernelFn = void (*)(const PackedM2xfpTensor &w,
                              const float *abuf, size_t padded_k,
                              size_t i0, size_t mt, size_t j0,
                              size_t nt, size_t k, Matrix &c);

/** Decode one activation row into a group-padded float buffer. */
using DecodeRowFn = void (*)(const PackedM2xfpTensor &t, size_t row,
                             float *out);

/** The per-ISA kernel set used by packedMatmulNt. */
struct GemmKernels
{
    DecodeRowFn decodeActivationRow;
    TileKernelFn computeTile;
};

/**
 * Kernel table for @p isa. Asking for a tier that is not compiled in
 * returns the scalar table (callers guard with simdIsaAvailable).
 */
const GemmKernels &gemmKernels(SimdIsa isa);

/**
 * parallelFor grain (tiles per chunk) for an n_it x n_jt tile grid
 * distributed over @p lanes. Invariants (asserted by the tests):
 *  - 1 <= grain <= max(n_tiles, 1);
 *  - for lanes >= 2, the chunk count ceil(n_tiles/grain) is at least
 *    min(n_tiles, 2*lanes) — no shape serializes onto one lane while
 *    tiles remain to hand out;
 *  - when row stripes alone balance the lanes (n_it >= 2*lanes) the
 *    grain is a whole stripe, so each A tile is decoded exactly once.
 */
size_t packedGemmGrain(size_t n_it, size_t n_jt, size_t lanes);

/** Scalar tier: ascending-k double accumulation, the bit-exact oracle. */
void computeTileScalar(const PackedM2xfpTensor &w, const float *abuf,
                       size_t padded_k, size_t i0, size_t mt,
                       size_t j0, size_t nt, size_t k, Matrix &c);

#ifdef M2X_HAVE_AVX2
/** AVX2+FMA tier: vector LUT decode, 4-wide double accumulators. */
void computeTileAvx2(const PackedM2xfpTensor &w, const float *abuf,
                     size_t padded_k, size_t i0, size_t mt, size_t j0,
                     size_t nt, size_t k, Matrix &c);

void decodeActivationRowAvx2(const PackedM2xfpTensor &t, size_t row,
                             float *out);

/** @{
 * Vector group decodes, bit-identical to runtime/decode_lut —
 * exposed for the vector-vs-scalar exactness tests.
 */
void decodeActivationGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                               size_t group, float *out);
void decodeWeightGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                           size_t group, float *out);
/** @} */
#endif // M2X_HAVE_AVX2

} // namespace detail
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__
