/**
 * @file
 * Internal per-ISA kernel table for the packed GEMM.
 *
 * Since the panel rework, packedMatmulNt is a cache-blocked GEMM
 * with an explicit block hierarchy chosen per ISA:
 *
 *   NC  columns of W form a *panel*: each panel's M2XFP groups are
 *       LUT-decoded exactly once per worker thread into an
 *       L2-resident buffer of NR-wide, k-major slivers (widened to
 *       double so the FMA kernels need no per-tile conversion), and
 *       that decoded panel is then reused across the full M
 *       dimension.
 *   MC  rows of A form a *block*, decoded once per (panel, block)
 *       task into a row-major double buffer.
 *   KC  slices the depth: the register-tile sweep walks K in KC
 *       chunks so one A-slice x W-slice working set stays hot while
 *       every register tile of the block consumes it.
 *   MRxNR is the register tile the ISA's microkernel computes per
 *       call, accumulating into a persistent double accumulator so
 *       KC slicing never splits a summation chain.
 *
 * packedMatmulNt owns the block grid, the thread distribution and
 * the per-thread panel cache; everything below — per-row LUT decode
 * into the panels and the register-tile accumulation — is an
 * ISA-specific kernel selected through gemmKernels(). The scalar
 * tier accumulates each output in ascending-k order, excluding the
 * zero pad, and is bit-exact against matmulNt(unpack, unpack);
 * vector tiers may reassociate the sum and sweep the zero-padded
 * tail (verified to tight tolerance by tests/runtime/simd_test.cc).
 * All tiers decode identical values: the vector LUT decodes are
 * bit-identical to runtime/decode_lut.
 *
 * The PR3 tile-at-a-time driver is kept as
 * detail::packedMatmulNtTiled — the committed-trajectory baseline
 * the bench's blocked_vs_pr3 ratios are measured against.
 *
 * Not installed API — tests include it for direct kernel access.
 */

#ifndef M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__
#define M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__

#include <cstddef>

#include "core/m2xfp_packed.hh"
#include "quant/matrix.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {
namespace detail {

/** Legacy (PR3) output tile height and width per task. */
constexpr size_t gemmTileM = 16;
constexpr size_t gemmTileN = 16;

/**
 * The cache-block hierarchy of the panel GEMM. mr/nr are the
 * register tile compiled into the ISA's microkernel and cannot be
 * overridden; mc/kc/nc are the cache blocks (defaults per ISA,
 * overridable via M2X_GEMM_MC/KC/NC — see gemmBlocking()).
 */
struct GemmBlocking
{
    size_t mr; //!< register tile rows (A rows per microkernel call)
    size_t nr; //!< register tile cols (W rows per sliver)
    size_t mc; //!< A block rows per task (multiple of mr)
    size_t kc; //!< depth slice per register-tile sweep
    size_t nc; //!< W panel rows per task column (multiple of nr)
};

/**
 * Accumulate one register tile over the depth range [p0, p1):
 *
 *   acc[ii*acc_stride + jj] +=
 *       sum_{p in [p0,p1)} a[ii*a_stride + p] * ws[p*nr + jj]
 *
 * for ii in [0, mr_cur), jj in [0, nr). @p a is the decoded A block
 * (row-major doubles), @p ws one k-major NR-wide W sliver (zero
 * padded to full nr width and past the true depth). The scalar tier
 * adds every product directly into acc in ascending-p order, so KC
 * slicing keeps each output a single ascending chain; vector tiers
 * reduce lane partials into acc at the end of the range.
 */
using MicroKernelFn = void (*)(const double *a, size_t a_stride,
                               const double *ws, size_t nr,
                               size_t p0, size_t p1, size_t mr_cur,
                               double *acc, size_t acc_stride);

/** Decode one tensor row into a group-padded float buffer. */
using DecodeRowFn = void (*)(const PackedM2xfpTensor &t, size_t row,
                             float *out);

/**
 * Legacy PR3 tile kernel: rows [i0, i0+mt) x cols [j0, j0+nt) of c,
 * with the decoded A tile already in abuf (mt rows of padded_k
 * floats). k is the true (unpadded) depth.
 */
using TileKernelFn = void (*)(const PackedM2xfpTensor &w,
                              const float *abuf, size_t padded_k,
                              size_t i0, size_t mt, size_t j0,
                              size_t nt, size_t k, Matrix &c);

/** The per-ISA kernel set used by packedMatmulNt. */
struct GemmKernels
{
    DecodeRowFn decodeActivationRow;
    DecodeRowFn decodeWeightRow;
    MicroKernelFn microKernel;
    TileKernelFn computeTile; //!< legacy PR3 tile kernel
    GemmBlocking blocking;    //!< per-ISA default block hierarchy
    /** Vector tiers sweep the zero-padded K tail; the scalar oracle
     *  must exclude it to keep the reference summation chain. */
    bool accumulatePadding;
};

/**
 * Kernel table for @p isa. Asking for a tier that is not compiled in
 * returns the scalar table (callers guard with simdIsaAvailable).
 */
const GemmKernels &gemmKernels(SimdIsa isa);

/**
 * The block hierarchy packedMatmulNt uses for @p isa: the kernel
 * table's defaults with the M2X_GEMM_MC / M2X_GEMM_KC / M2X_GEMM_NC
 * environment overrides applied (parsed once per process; values are
 * rounded up to the register tile / decode group so no override can
 * break a kernel invariant, malformed values warn and are ignored).
 */
GemmBlocking gemmBlocking(SimdIsa isa);

/**
 * The blocked GEMM with an explicit block hierarchy — the bench's
 * per-block-size sweep and the block-boundary tests use this to pin
 * mc/kc/nc regardless of the environment. @p blocking must come from
 * normalizeBlocking() (or gemmBlocking()) for the same ISA.
 */
void packedMatmulNtBlocked(const PackedM2xfpTensor &a,
                           const PackedM2xfpTensor &w, Matrix &c,
                           ThreadPool *pool, SimdIsa isa,
                           const GemmBlocking &blocking);

/**
 * Clamp an arbitrary mc/kc/nc request onto @p isa's register tile:
 * mc to a multiple of mr, nc to a multiple of nr, kc to a multiple
 * of the decode group size (all at least one unit).
 */
GemmBlocking normalizeBlocking(SimdIsa isa, size_t mc, size_t kc,
                               size_t nc);

/**
 * parallelFor grain (tasks per chunk) for the blocked GEMM's
 * n_ic x n_jc block grid distributed over @p lanes. Tasks enumerate
 * ic-fastest: a stripe of n_ic consecutive tasks shares one decoded
 * W panel. Invariants (asserted by the tests):
 *  - 1 <= grain <= max(n_tasks, 1);
 *  - for lanes >= 2, the chunk count ceil(n_tasks/grain) is at least
 *    min(n_tasks, 2*lanes) — no shape (hence no mc/nc block
 *    configuration) serializes onto one lane while tasks remain;
 *  - when panel stripes alone balance the lanes (n_jc >= 2*lanes)
 *    the grain is a whole stripe, so each W panel is decoded exactly
 *    once per stripe.
 */
size_t packedGemmGrain(size_t n_ic, size_t n_jc, size_t lanes);

/**
 * Legacy PR3 driver: tile-at-a-time K loop, W tile re-decoded for
 * every M tile. Kept (scalar and AVX2 tiers only) as the comparison
 * baseline for the bench's blocked_vs_pr3 ratios and the
 * blocked-vs-tiled parity tests.
 */
void packedMatmulNtTiled(const PackedM2xfpTensor &a,
                         const PackedM2xfpTensor &w, Matrix &c,
                         ThreadPool *pool, SimdIsa isa);

/** @{ Scalar tier: ascending-k double accumulation, the bit-exact
 *  oracle. */
void microKernelScalar(const double *a, size_t a_stride,
                       const double *ws, size_t nr, size_t p0,
                       size_t p1, size_t mr_cur, double *acc,
                       size_t acc_stride);
void computeTileScalar(const PackedM2xfpTensor &w, const float *abuf,
                       size_t padded_k, size_t i0, size_t mt,
                       size_t j0, size_t nt, size_t k, Matrix &c);
/** @} */

#ifdef M2X_HAVE_AVX2
/** @{ AVX2+FMA tier: vector LUT decode, 4-wide double FMA. */
void microKernelAvx2(const double *a, size_t a_stride,
                     const double *ws, size_t nr, size_t p0,
                     size_t p1, size_t mr_cur, double *acc,
                     size_t acc_stride);
void computeTileAvx2(const PackedM2xfpTensor &w, const float *abuf,
                     size_t padded_k, size_t i0, size_t mt, size_t j0,
                     size_t nt, size_t k, Matrix &c);

void decodeActivationRowAvx2(const PackedM2xfpTensor &t, size_t row,
                             float *out);
void decodeWeightRowAvx2(const PackedM2xfpTensor &t, size_t row,
                         float *out);

/** @{
 * Vector group decodes, bit-identical to runtime/decode_lut —
 * exposed for the vector-vs-scalar exactness tests.
 */
void decodeActivationGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                               size_t group, float *out);
void decodeWeightGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                           size_t group, float *out);
/** @} */
/** @} */
#endif // M2X_HAVE_AVX2

#ifdef M2X_HAVE_AVX512
/** @{ AVX-512 tier: full-table vpermps decode, 8-wide double FMA.
 *  Activation-row decode is shared with the AVX2 tier (the Elem-EM
 *  top-1 fixup is already vectorized there and bit-identical). */
void microKernelAvx512(const double *a, size_t a_stride,
                       const double *ws, size_t nr, size_t p0,
                       size_t p1, size_t mr_cur, double *acc,
                       size_t acc_stride);
void decodeWeightRowAvx512(const PackedM2xfpTensor &t, size_t row,
                           float *out);
void decodeWeightGroupAvx512(const PackedM2xfpTensor &t, size_t row,
                             size_t group, float *out);
/** @} */
#endif // M2X_HAVE_AVX512

} // namespace detail
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_PACKED_GEMM_KERNELS_HH__
