#include "runtime/decode_lut.hh"

#include <cmath>

#include "core/elem_em.hh"
#include "formats/e8m0.hh"
#include "formats/minifloat.hh"

namespace m2x {
namespace runtime {

namespace {

constexpr unsigned groupSize = PackedM2xfpTensor::groupSize;
constexpr unsigned subgroupSize = PackedM2xfpTensor::subgroupSize;
constexpr unsigned bytesPerGroup =
    PackedM2xfpTensor::bytesPerGroupElems;
constexpr unsigned nSubgroups = groupSize / subgroupSize;

DecodeTables
buildTables()
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();

    DecodeTables t;
    for (uint32_t c = 0; c < 16; ++c)
        t.fp4Value[c] = fp4.decode(c);
    for (uint32_t b = 0; b < 256; ++b)
        t.fp4Pair[b] = {t.fp4Value[b & 0xfu], t.fp4Value[b >> 4]};

    for (uint32_t c = 0; c < 255; ++c)
        t.e8m0Value[c] =
            ScaleE8m0::fromCode(static_cast<uint8_t>(c)).value();
    t.e8m0Value[255] = std::nanf("");

    // Sg-EM paper config: 2 metadata bits, multiplier grid 1 + m/4.
    for (uint32_t m = 0; m < 4; ++m)
        t.sgEmMult[m] = 1.0f + static_cast<float>(m) / 4.0f;

    // Elem-EM: the top-1 element's FP4 code is promoted to the FP6
    // magnitude fp4_mag*4 + meta - 1 (the same guarded arithmetic as
    // ElemEmQuantizer::decodeGroup, including the & 0x1f wrap for the
    // never-emitted mag=0/meta=0 corner).
    for (uint32_t c = 0; c < 16; ++c) {
        uint32_t mag4 = c & 0x7u;
        bool neg = (c >> 3) & 1u;
        for (uint32_t m = 0; m < 4; ++m) {
            uint32_t mag6 = ElemEmQuantizer::decodeFp6Mag(
                mag4, static_cast<uint8_t>(m));
            float mag = fp6.decode(mag6 & 0x1fu);
            t.elemEmValue[c][m] = neg ? -mag : mag;
        }
    }
    return t;
}

} // anonymous namespace

const DecodeTables &
DecodeTables::get()
{
    static const DecodeTables tables = buildTables();
    return tables;
}

void
decodeActivationGroup(const PackedM2xfpTensor &t, size_t row,
                      size_t group, float *out)
{
    const DecodeTables &lut = DecodeTables::get();
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = lut.e8m0Value[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    uint8_t codes[groupSize];
    for (unsigned i = 0; i < bytesPerGroup; ++i) {
        uint8_t b = bytes[i];
        codes[2 * i] = b & 0xfu;
        codes[2 * i + 1] = b >> 4;
        Fp4Pair p = lut.fp4Pair[b];
        out[2 * i] = p.lo * sval;
        out[2 * i + 1] = p.hi * sval;
    }

    // Per subgroup: recompute the top-1 selection from the FP4 codes
    // (strict compare, ties to the lowest index — exactly
    // ElemEmQuantizer::top1Index) and apply the metadata-adjusted
    // FP6 value.
    for (unsigned s = 0; s < nSubgroups; ++s) {
        const uint8_t *sc = codes + s * subgroupSize;
        unsigned best = 0;
        uint32_t best_mag = sc[0] & 0x7u;
        for (unsigned i = 1; i < subgroupSize; ++i) {
            uint32_t m = sc[i] & 0x7u;
            if (m > best_mag) {
                best_mag = m;
                best = i;
            }
        }
        uint8_t mcode = (meta >> (2 * s)) & 0x3u;
        out[s * subgroupSize + best] =
            lut.elemEmValue[sc[best]][mcode] * sval;
    }
}

void
decodeWeightGroup(const PackedM2xfpTensor &t, size_t row, size_t group,
                  float *out)
{
    const DecodeTables &lut = DecodeTables::get();
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = lut.e8m0Value[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    float sub_scale[nSubgroups];
    for (unsigned s = 0; s < nSubgroups; ++s)
        sub_scale[s] = sval * lut.sgEmMult[(meta >> (2 * s)) & 0x3u];

    constexpr unsigned bytes_per_sub = subgroupSize / 2;
    for (unsigned i = 0; i < bytesPerGroup; ++i) {
        uint8_t b = bytes[i];
        float scale = sub_scale[i / bytes_per_sub];
        Fp4Pair p = lut.fp4Pair[b];
        out[2 * i] = p.lo * scale;
        out[2 * i + 1] = p.hi * scale;
    }
}

void
decodeActivationRow(const PackedM2xfpTensor &t, size_t row, float *out)
{
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        decodeActivationGroup(t, row, g, out + g * groupSize);
}

void
decodeWeightRow(const PackedM2xfpTensor &t, size_t row, float *out)
{
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        decodeWeightGroup(t, row, g, out + g * groupSize);
}

} // namespace runtime
} // namespace m2x
