#include "runtime/thread_pool.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <string>

#include "runtime/telemetry.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/** True while the current thread is executing a job body. */
thread_local bool in_job = false;

/** @{
 * Cached pool metric handles (see telemetry::cachedCounter): null —
 * and unregistered — until metrics are enabled.
 *
 *  - pool.jobs_submitted / pool.jobs_completed: jobs that ran on the
 *    workers; pool.jobs_inline: top-level parallelFor calls that ran
 *    serially (serial pool, tiny range, or contended job slot).
 *  - pool.queue_wait_ns: post-to-pickup latency per worker per job.
 *  - pool.task_run_ns: per-lane busy interval per job (workers and
 *    the participating caller alike).
 *  - pool.lane<N>.busy_ns counters (lane 0 = callers) accumulate the
 *    same intervals per lane for utilization reporting.
 */
std::atomic<telemetry::Counter *> jobsSubmittedSlot{nullptr};
std::atomic<telemetry::Counter *> jobsCompletedSlot{nullptr};
std::atomic<telemetry::Counter *> jobsInlineSlot{nullptr};
std::atomic<telemetry::Counter *> lane0BusySlot{nullptr};
std::atomic<telemetry::Histogram *> queueWaitSlot{nullptr};
std::atomic<telemetry::Histogram *> taskRunSlot{nullptr};
/** @} */

/** Record one lane-busy interval (histogram + per-lane counter). */
void
recordLaneBusy(telemetry::Counter *&lane_busy, unsigned lane,
               uint64_t busy_ns)
{
    if (!lane_busy)
        lane_busy = &telemetry::MetricRegistry::global().counter(
            "pool.lane" + std::to_string(lane) + ".busy_ns");
    lane_busy->add(busy_ns);
    if (auto *h = telemetry::cachedHistogram(taskRunSlot,
                                             "pool.task_run_ns"))
        h->record(busy_ns);
}

/** Lane-busy for the calling thread (lane 0), via the cached slot. */
void
recordCallerBusy(uint64_t busy_ns)
{
    if (auto *c = telemetry::cachedCounter(lane0BusySlot,
                                           "pool.lane0.busy_ns"))
        c->add(busy_ns);
    if (auto *h = telemetry::cachedHistogram(taskRunSlot,
                                             "pool.task_run_ns"))
        h->record(busy_ns);
}

/** Marks the current thread in-job; restores the flag on unwind. */
struct InJobScope
{
    bool outer;
    InJobScope() : outer(!in_job) { in_job = true; }
    ~InJobScope()
    {
        if (outer)
            in_job = false;
    }
};

} // anonymous namespace

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw >= 1 ? hw : 1;
    const char *env = std::getenv("M2X_THREADS");
    if (!env)
        return fallback;
    // Full-string validation: trailing garbage ("8x") and
    // out-of-range values (ERANGE) must not be silently accepted.
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        m2x_warn("ignoring bad M2X_THREADS value '%s' (want an "
                 "integer >= 1); using %u threads", env, fallback);
        return fallback;
    }
    return static_cast<unsigned>(std::min(v, 1024l));
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(unsigned n_threads)
    : nLanes_(n_threads ? n_threads : defaultThreads())
{
    workers_.reserve(nLanes_ - 1);
    for (unsigned i = 0; i + 1 < nLanes_; ++i)
        workers_.emplace_back([this, i] { workerLoop(i + 1); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        size_t begin = job.next.fetch_add(job.grain,
                                          std::memory_order_relaxed);
        if (begin >= job.end)
            return;
        size_t end = std::min(begin + job.grain, job.end);
        try {
            (*job.body)(begin, end);
        } catch (...) {
            // First thrower wins the error slot (the write is safe:
            // only the CAS winner touches it, and the caller reads
            // it only after the drain's mutex synchronization).
            // Parking the cursor at the end makes every lane stop
            // handing out chunks, so the drain finishes promptly.
            bool expected = false;
            if (job.failed.compare_exchange_strong(expected, true))
                job.error = std::current_exception();
            job.next.store(job.end, std::memory_order_relaxed);
            return;
        }
    }
}

void
ThreadPool::workerLoop(unsigned lane)
{
    telemetry::setCurrentThreadName("pool-worker-" +
                                    std::to_string(lane));
    uint64_t seen = 0;
    telemetry::Counter *lane_busy = nullptr;
    for (;;) {
        Job *job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        // Sampled once per job so the begin/end bookkeeping stays
        // paired even if metrics are toggled mid-job.
        const bool instrument = telemetry::metricsEnabled();
        uint64_t t0 = 0;
        if (instrument) {
            t0 = telemetry::nowNanos();
            if (auto *h = telemetry::cachedHistogram(
                    queueWaitSlot, "pool.queue_wait_ns"))
                h->record(t0 - job->postNanos);
        }
        in_job = true;
        runChunks(*job);
        in_job = false;
        if (instrument)
            recordLaneBusy(lane_busy, lane,
                           telemetry::nowNanos() - t0);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    m2x_assert(grain >= 1, "parallelFor grain must be positive");

    // Serial pool, tiny range, a nested call from inside a job body
    // (workers are busy with the outer job, so waiting on them could
    // deadlock), or another thread currently owns the workers: run
    // inline on the calling thread.
    std::unique_lock<std::mutex> job_lock(jobMutex_,
                                          std::defer_lock);
    if (workers_.empty() || end - begin <= grain || in_job ||
        !job_lock.try_lock()) {
        // Only a top-level inline call is a "job" worth accounting;
        // nested calls already run inside an accounted interval.
        const bool instrument =
            telemetry::metricsEnabled() && !in_job;
        uint64_t t0 = 0;
        if (instrument) {
            t0 = telemetry::nowNanos();
            if (auto *c = telemetry::cachedCounter(
                    jobsInlineSlot, "pool.jobs_inline"))
                c->add();
        }
        InJobScope scope;
        for (size_t b = begin; b < end; b += grain)
            body(b, std::min(b + grain, end));
        if (instrument)
            recordCallerBusy(telemetry::nowNanos() - t0);
        return;
    }

    const bool instrument = telemetry::metricsEnabled();
    telemetry::TraceSpan span("pool.run");
    if (span.active()) {
        span.arg("begin", begin);
        span.arg("end", end);
        span.arg("grain", grain);
        span.arg("lanes", nLanes_);
    }

    Job job;
    job.body = &body;
    job.next.store(begin, std::memory_order_relaxed);
    job.end = end;
    job.grain = grain;
    if (instrument) {
        job.postNanos = telemetry::nowNanos();
        if (auto *c = telemetry::cachedCounter(
                jobsSubmittedSlot, "pool.jobs_submitted"))
            c->add();
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        pending_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    wake_.notify_all();

    // The job lives on this stack frame, so every worker must finish
    // touching it before the frame unwinds — runChunks never lets an
    // exception escape (failures are captured in the job), hence the
    // drain below always runs.
    {
        InJobScope scope;
        uint64_t t0 = instrument ? telemetry::nowNanos() : 0;
        runChunks(job);
        if (instrument)
            recordCallerBusy(telemetry::nowNanos() - t0);
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
    }
    if (instrument)
        if (auto *c = telemetry::cachedCounter(
                jobsCompletedSlot, "pool.jobs_completed"))
            c->add();
    // Exception-safe drain contract: a body throw on *any* lane —
    // worker or caller — surfaces here, on the calling thread, after
    // the workers have let go of the job.
    if (job.failed.load(std::memory_order_relaxed))
        std::rethrow_exception(job.error);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &body,
            ThreadPool *pool)
{
    (pool ? *pool : ThreadPool::global())
        .parallelFor(begin, end, grain, body);
}

} // namespace runtime
} // namespace m2x
