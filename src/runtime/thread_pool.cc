#include "runtime/thread_pool.hh"

#include <algorithm>
#include <cerrno>
#include <cstdlib>

#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/** True while the current thread is executing a job body. */
thread_local bool in_job = false;

/** Marks the current thread in-job; restores the flag on unwind. */
struct InJobScope
{
    bool outer;
    InJobScope() : outer(!in_job) { in_job = true; }
    ~InJobScope()
    {
        if (outer)
            in_job = false;
    }
};

} // anonymous namespace

unsigned
ThreadPool::defaultThreads()
{
    unsigned hw = std::thread::hardware_concurrency();
    unsigned fallback = hw >= 1 ? hw : 1;
    const char *env = std::getenv("M2X_THREADS");
    if (!env)
        return fallback;
    // Full-string validation: trailing garbage ("8x") and
    // out-of-range values (ERANGE) must not be silently accepted.
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE || v < 1) {
        m2x_warn("ignoring bad M2X_THREADS value '%s' (want an "
                 "integer >= 1); using %u threads", env, fallback);
        return fallback;
    }
    return static_cast<unsigned>(std::min(v, 1024l));
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool;
    return pool;
}

ThreadPool::ThreadPool(unsigned n_threads)
    : nLanes_(n_threads ? n_threads : defaultThreads())
{
    workers_.reserve(nLanes_ - 1);
    for (unsigned i = 0; i + 1 < nLanes_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::runChunks(Job &job)
{
    for (;;) {
        size_t begin = job.next.fetch_add(job.grain,
                                          std::memory_order_relaxed);
        if (begin >= job.end)
            return;
        size_t end = std::min(begin + job.grain, job.end);
        try {
            (*job.body)(begin, end);
        } catch (...) {
            // First thrower wins the error slot (the write is safe:
            // only the CAS winner touches it, and the caller reads
            // it only after the drain's mutex synchronization).
            // Parking the cursor at the end makes every lane stop
            // handing out chunks, so the drain finishes promptly.
            bool expected = false;
            if (job.failed.compare_exchange_strong(expected, true))
                job.error = std::current_exception();
            job.next.store(job.end, std::memory_order_relaxed);
            return;
        }
    }
}

void
ThreadPool::workerLoop()
{
    uint64_t seen = 0;
    for (;;) {
        Job *job;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [&] {
                return stop_ || generation_ != seen;
            });
            if (stop_)
                return;
            seen = generation_;
            job = job_;
        }
        in_job = true;
        runChunks(*job);
        in_job = false;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            if (--pending_ == 0)
                done_.notify_one();
        }
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end, size_t grain,
                        const std::function<void(size_t, size_t)> &body)
{
    if (begin >= end)
        return;
    m2x_assert(grain >= 1, "parallelFor grain must be positive");

    // Serial pool, tiny range, a nested call from inside a job body
    // (workers are busy with the outer job, so waiting on them could
    // deadlock), or another thread currently owns the workers: run
    // inline on the calling thread.
    std::unique_lock<std::mutex> job_lock(jobMutex_,
                                          std::defer_lock);
    if (workers_.empty() || end - begin <= grain || in_job ||
        !job_lock.try_lock()) {
        InJobScope scope;
        for (size_t b = begin; b < end; b += grain)
            body(b, std::min(b + grain, end));
        return;
    }

    Job job;
    job.body = &body;
    job.next.store(begin, std::memory_order_relaxed);
    job.end = end;
    job.grain = grain;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &job;
        pending_ = static_cast<unsigned>(workers_.size());
        ++generation_;
    }
    wake_.notify_all();

    // The job lives on this stack frame, so every worker must finish
    // touching it before the frame unwinds — runChunks never lets an
    // exception escape (failures are captured in the job), hence the
    // drain below always runs.
    {
        InJobScope scope;
        runChunks(job);
    }
    {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] { return pending_ == 0; });
        job_ = nullptr;
    }
    // Exception-safe drain contract: a body throw on *any* lane —
    // worker or caller — surfaces here, on the calling thread, after
    // the workers have let go of the job.
    if (job.failed.load(std::memory_order_relaxed))
        std::rethrow_exception(job.error);
}

void
parallelFor(size_t begin, size_t end, size_t grain,
            const std::function<void(size_t, size_t)> &body,
            ThreadPool *pool)
{
    (pool ? *pool : ThreadPool::global())
        .parallelFor(begin, end, grain, body);
}

} // namespace runtime
} // namespace m2x
