/**
 * @file
 * Blocked multi-threaded GEMM directly on packed M2XFP streams.
 *
 * packedMatmulNt computes C[M,N] = A * W^T where A is an
 * activation-role (Elem-EM) packed tensor [M,K] and W a weight-role
 * (Sg-EM) packed tensor [N,K] — the same contract as
 * matmulNt(unpackActivations, unpackWeights). On the scalar ISA tier
 * it is bit-exact against that reference: every output element
 * accumulates its K products in double precision in ascending-k
 * order, so tiling and threading cannot change a single ULP. Vector
 * tiers (runtime-dispatched, see runtime/simd.hh) decode the exact
 * same values but reassociate the accumulation across SIMD lanes;
 * they are verified against the scalar oracle to tight tolerance.
 *
 * What *is* different from the reference is the execution: operands
 * stay packed in memory (4.5 bits/element) and the driver is a
 * cache-blocked panel GEMM (Goto-style, see packed_gemm_kernels.hh).
 * Each NC×KC block of W is LUT-decoded **once** into an L2-resident
 * k-major panel and reused across the full M dimension — never once
 * per output tile — while an MR×NR register-tile microkernel per ISA
 * sweeps KC-deep slices into a persistent double accumulator (one
 * unbroken summation chain per output, which is what keeps the
 * scalar tier bit-exact under blocking). No full dequantized matrix
 * is ever materialized. (jc, ic) block pairs are independent and are
 * distributed over a ThreadPool with panel-friendly chunking
 * (detail::packedGemmGrain). Block sizes default per ISA and can be
 * overridden with M2X_GEMM_MC / M2X_GEMM_KC / M2X_GEMM_NC.
 */

#ifndef M2X_RUNTIME_PACKED_GEMM_HH__
#define M2X_RUNTIME_PACKED_GEMM_HH__

#include "core/m2xfp_packed.hh"
#include "quant/matrix.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/**
 * C[M,N] = A[M,K] * W^T, consuming the packed byte streams directly,
 * on the process's active ISA tier (activeSimdIsa()).
 *
 * @param a activation-role packed tensor (Elem-EM metadata)
 * @param w weight-role packed tensor (Sg-EM metadata), [N,K] row
 *        layout like matmulNt's b_nk
 * @param c resized to [M,N] and overwritten; storage is reused
 *        (not reallocated) when its capacity already fits, so a
 *        caller-held output buffer makes the steady state
 *        allocation-free
 * @param pool thread pool to distribute tiles over; null uses the
 *        process-global pool
 */
void packedMatmulNt(const PackedM2xfpTensor &a,
                    const PackedM2xfpTensor &w, Matrix &c,
                    ThreadPool *pool = nullptr);

/** Convenience overload returning the result. */
Matrix packedMatmulNt(const PackedM2xfpTensor &a,
                      const PackedM2xfpTensor &w,
                      ThreadPool *pool = nullptr);

/** @{
 * Same, but on an explicitly requested ISA tier (which must be
 * available — asserted). SimdIsa::Scalar is the bit-exact oracle;
 * tests and the per-ISA bench comparison use these to pin a tier
 * regardless of M2X_SIMD.
 */
void packedMatmulNt(const PackedM2xfpTensor &a,
                    const PackedM2xfpTensor &w, Matrix &c,
                    ThreadPool *pool, SimdIsa isa);
Matrix packedMatmulNt(const PackedM2xfpTensor &a,
                      const PackedM2xfpTensor &w, ThreadPool *pool,
                      SimdIsa isa);
/** @} */

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_PACKED_GEMM_HH__
