/**
 * @file
 * DecodeSession: autoregressive generation over a batch of
 * independent sequences with every linear layer in the packed M2XFP
 * domain and the attention K/V state resident in per-sequence
 * KvCaches.
 *
 * This is the serving-shaped counterpart of InferenceSession: where
 * forwardLogits() recomputes the whole causal prefix on every call
 * (O(T^2) attention per generated token), a DecodeSession runs the
 * transformer incrementally through TinyTransformer::forwardChunk —
 * prompt chunks during prefill, then one token per sequence per
 * decode() step — against caches that grow by one row per token.
 * A decode step over a batch stacks the S next-tokens into a single
 * [S, d] chunk, so every linear layer runs one batched packed GEMM
 * for the whole batch, while the attention stage fans out over the
 * sequences on the thread pool (each sequence's cache is
 * independent).
 *
 * With KvCacheMode::Packed the cached rows live in the three packed
 * M2XFP byte streams (~4.5 bits/element, encoded on append by the
 * fast-path Elem-EM encoder) and are dequantized through the decode
 * LUTs inside the attention kernels — the KV cache becomes a
 * memory-bandwidth optimization, not just an accuracy knob. With
 * KvCacheMode::Fp32 the rows stay dense and decode reproduces
 * forwardLogits() bit-exactly (the correctness oracle and bench
 * baseline).
 *
 * Since the paged refactor every sequence's cache draws from one
 * shared KvPageArena (elastic by default — a fixed batch run to
 * completion never stalls) and the session drives the same
 * CacheAttendBackend as the ServingEngine: a DecodeSession is the
 * continuous-batching engine's fixed-batch special case, with
 * prefill() = beginChunk routing and decode() = beginRows routing
 * over a row set that never changes.
 *
 * Like InferenceSession, one DecodeSession expects a single driving
 * thread; parallelism lives inside the packed kernels and the
 * per-sequence attention fan-out.
 */

#ifndef M2X_RUNTIME_DECODE_SESSION_HH__
#define M2X_RUNTIME_DECODE_SESSION_HH__

#include <atomic>
#include <memory>
#include <span>
#include <vector>

#include "core/m2xfp.hh"
#include "model/config.hh"
#include "model/transformer.hh"
#include "runtime/inference_session.hh"
#include "runtime/kv_cache.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/serving.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/** DecodeSession construction knobs. */
struct DecodeConfig
{
    /** Parallel lanes; 0 = the global pool. */
    unsigned threads = 0;
    /** Format configuration (must keep the paper packed layout). */
    M2xfpConfig format{};
    /** Kernel tier for every layer and the KV codec. */
    SimdIsa isa = activeSimdIsa();
    /** Resident representation of the KV cache. */
    KvCacheMode kvMode = KvCacheMode::Packed;
    /** Rows per KV page of the session's shared arena. */
    size_t pageRows = 16;
    /**
     * Arena capacity in pages; 0 = elastic (the arena grows on
     * demand — a fixed batch run to completion never needs to stall
     * or evict, so the session defaults to never failing a claim).
     */
    size_t arenaPages = 0;
    /**
     * Packed stream codec for the linear layers and the packed KV
     * cache. Session-level default follows the M2X_FORMAT
     * environment override (see defaultPackedCodec()).
     */
    PackedCodec codec = defaultPackedCodec();
};

/** A loaded model serving stepwise generation with a KV cache. */
class DecodeSession
{
  public:
    explicit DecodeSession(const model::ModelConfig &model_cfg,
                           DecodeConfig cfg = {});
    ~DecodeSession();

    /** Register a new (empty) sequence; returns its id. */
    size_t addSequence();

    /**
     * Run a chunk of @p tokens of sequence @p seq through the model,
     * appending their K/V rows to the sequence's cache. Returns the
     * chunk's logits [tokens, vocab]. May be called repeatedly to
     * prefill in chunks — the cache is chunk-boundary agnostic — and
     * a single-token chunk is valid (it is exactly a decode step for
     * one sequence).
     */
    Matrix prefill(size_t seq, std::span<const int> tokens);

    /**
     * One decode step over the whole batch: next[s] is the next
     * token of sequence s (every registered sequence steps).
     * Returns logits [batch, vocab], row s for sequence s. Linear
     * layers run batched over the stacked rows; attention fans out
     * per sequence on the pool.
     */
    Matrix decode(std::span<const int> next);

    size_t batchSize() const { return seqs_.size(); }

    /** Tokens cached so far for @p seq. */
    size_t length(size_t seq) const;

    /** A sequence's cache (bytes accounting, tests). */
    const KvCache &cache(size_t seq) const;

    /** Resident K/V bytes across all sequences and layers. */
    size_t kvBytes() const;

    /** Resident K/V bytes per cached token (0 while empty). */
    double kvBytesPerToken() const;

    /** Wall time spent in the attention stage since construction. */
    double
    attendSeconds() const
    {
        return 1e-9 * static_cast<double>(attendNanos_.load());
    }

    KvCacheMode kvMode() const { return cfg_.kvMode; }
    SimdIsa simdIsa() const { return isa_; }
    PackedCodec codec() const { return cfg_.codec; }

    /** The page arena every sequence's cache draws from. */
    const KvPageArena &arena() const { return arena_; }

    /** Per-linear-layer stats in deterministic layer order. */
    const std::vector<std::shared_ptr<LayerStats>> &
    layerStats() const
    {
        return stats_;
    }

    const model::TinyTransformer &model() const { return model_; }
    const model::ModelConfig &modelConfig() const
    {
        return model_.config();
    }

  private:
    struct Sequence
    {
        KvCache cache;
    };

    ThreadPool *pool() const;

    /**
     * Refresh the decode.kv_* occupancy gauges in the telemetry
     * registry (no-op cost while metrics are off; callers gate it).
     */
    void updateKvGauges() const;

    DecodeConfig cfg_;
    std::unique_ptr<ThreadPool> ownedPool_; //!< when threads != 0
    model::TinyTransformer model_;
    std::vector<std::shared_ptr<LayerStats>> stats_;
    SimdIsa isa_;
    KvPageArena arena_;
    std::vector<Sequence> seqs_;
    std::atomic<uint64_t> attendNanos_{0};
    CacheAttendBackend backend_;
    std::vector<KvCache *> rowCaches_; //!< decode() scratch
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_DECODE_SESSION_HH__
