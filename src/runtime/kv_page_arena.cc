#include "runtime/kv_page_arena.hh"

#include <cstring>
#include <limits>

#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/**
 * Elastic arenas still need a fixed directory (page addresses must
 * never move), so they get a generous hard ceiling: 2^18 pages is
 * ~4M cached rows per stream at the default geometry, far beyond any
 * in-process session, for 32 KiB of directory.
 */
constexpr size_t elasticMaxPages = size_t{1} << 18;

} // anonymous namespace

const char *
kvCacheModeName(KvCacheMode mode)
{
    return mode == KvCacheMode::Fp32 ? "fp32" : "packed";
}

KvPageArena::KvPageArena(size_t d_model, KvCacheMode mode,
                         M2xfpConfig fmt, SimdIsa isa,
                         KvArenaConfig cfg)
    : mode_(mode), dModel_(d_model), isa_(isa),
      pageRows_(cfg.pageRows), capacityPages_(cfg.capacityPages),
      codec_(cfg.codec),
      groupsPerRow_(ceilDiv(d_model,
                            size_t{packedCodecInfo(cfg.codec).groupSize})),
      actQ_(fmt.activationConfig())
{
    m2x_assert(d_model > 0, "KvPageArena needs d_model > 0");
    m2x_assert(pageRows_ > 0, "KvPageArena needs pageRows > 0");
    m2x_assert(simdIsaAvailable(isa),
               "KvPageArena: ISA tier '%s' is not available on this "
               "machine", simdIsaName(isa));
    size_t max_pages =
        capacityPages_ ? capacityPages_ : elasticMaxPages;
    m2x_assert(max_pages < kvInvalidPage,
               "KvPageArena: %zu pages exceeds the page-id space",
               max_pages);
    chunks_.resize(ceilDiv(max_pages, chunkPages));
}

KvPageArena::Page &
KvPageArena::page(KvPageId id)
{
    Page *chunk = chunks_[id / chunkPages].get();
    m2x_assert(chunk != nullptr && id < nextId_,
               "KvPageArena: page %u was never allocated", id);
    return chunk[id % chunkPages];
}

const KvPageArena::Page &
KvPageArena::page(KvPageId id) const
{
    return const_cast<KvPageArena *>(this)->page(id);
}

KvPageId
KvPageArena::allocPage()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!freeList_.empty()) {
        KvPageId id = freeList_.back();
        freeList_.pop_back();
        ++live_;
        return id;
    }
    size_t max_pages =
        capacityPages_ ? capacityPages_ : elasticMaxPages;
    if (nextId_ >= max_pages)
        return kvInvalidPage;
    KvPageId id = static_cast<KvPageId>(nextId_);
    auto &chunk = chunks_[id / chunkPages];
    if (!chunk)
        chunk = std::make_unique<Page[]>(chunkPages);
    Page &p = chunk[id % chunkPages];
    if (mode_ == KvCacheMode::Fp32) {
        p.f32.resize(pageRows_ * dModel_);
    } else if (codec_ == PackedCodec::ElemEm) {
        p.packed = PackedM2xfpTensor::emptyActivations(dModel_, actQ_);
        p.packed.reserveActivationRows(pageRows_);
    } else {
        p.packed =
            PackedM2xfpTensor::emptyActivationsCodec(dModel_, codec_);
        p.packed.reserveActivationRows(pageRows_);
    }
    ++nextId_;
    ++live_;
    return id;
}

void
KvPageArena::freePage(KvPageId id)
{
    std::lock_guard<std::mutex> lock(mu_);
    Page &p = page(id);
    m2x_assert(live_ > 0, "KvPageArena: freePage with no live pages");
    p.used = 0;
    if (mode_ == KvCacheMode::Packed)
        p.packed.clearActivationRows();
    freeList_.push_back(id);
    --live_;
}

size_t
KvPageArena::livePages() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return live_;
}

size_t
KvPageArena::freePages() const
{
    std::lock_guard<std::mutex> lock(mu_);
    if (!capacityPages_)
        return std::numeric_limits<size_t>::max();
    return capacityPages_ - live_;
}

size_t
KvPageArena::highWaterPages() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return nextId_;
}

double
KvPageArena::occupancy() const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t denom = capacityPages_ ? capacityPages_ : nextId_;
    return denom == 0 ? 0.0
                      : static_cast<double>(live_) /
                            static_cast<double>(denom);
}

size_t
KvPageArena::pageBytes() const
{
    if (mode_ == KvCacheMode::Fp32)
        return fp32PageBytes();
    // Per row and group: the codec's element bytes + 1 scale byte +
    // 1 metadata byte.
    return pageRows_ * groupsPerRow_ *
           (packedCodecInfo(codec_).bytesPerGroupElems + 2);
}

void
KvPageArena::appendRows(KvPageId id, const float *rows, size_t n,
                        ThreadPool *pool)
{
    if (n == 0)
        return;
    Page &p = page(id);
    m2x_assert(p.used + n <= pageRows_,
               "KvPageArena: append of %zu rows overflows page %u "
               "(%zu/%zu used)", n, id, p.used, pageRows_);
    if (mode_ == KvCacheMode::Fp32) {
        std::memcpy(p.f32.data() + p.used * dModel_, rows,
                    n * dModel_ * sizeof(float));
    } else if (codec_ == PackedCodec::ElemEm) {
        p.packed.appendActivationRows(rows, n, actQ_, isa_, pool);
    } else {
        p.packed.appendActivationRowsCodec(rows, n, isa_, pool);
    }
    p.used += n;
}

const float *
KvPageArena::fp32Rows(KvPageId id) const
{
    m2x_assert(mode_ == KvCacheMode::Fp32,
               "fp32Rows on a packed-mode arena");
    return page(id).f32.data();
}

const PackedM2xfpTensor &
KvPageArena::packedPage(KvPageId id) const
{
    m2x_assert(mode_ == KvCacheMode::Packed,
               "packedPage on an fp32-mode arena");
    return page(id).packed;
}

} // namespace runtime
} // namespace m2x
