/**
 * @file
 * Per-sequence attention KV cache for the autoregressive decode
 * runtime, with the paper's packed M2XFP streams as the resident
 * representation — backed by a shared KvPageArena since the paged
 * refactor, so many sequences draw from (and return to) one fixed
 * page pool.
 *
 * One KvCache holds the K and V rows of every layer of ONE sequence,
 * as per-layer page tables into the arena. Rows are appended as they
 * are produced (prefill chunks, then one row per decode step) and
 * never rewritten; an append fills the tail page and claims fresh
 * pages from the arena as it crosses page boundaries. Two storage
 * modes, decided by the arena:
 *
 *  - KvCacheMode::Fp32 — rows stay dense fp32 (32 bits/element).
 *    attend() streams the visible rows in three exact passes (max,
 *    normalizer, weighted value) that replicate the full-forward
 *    causal attention operation for operation — the same float/
 *    double op sequence as model::attentionSoftmax, just without
 *    ever materializing the score vector — so prefill + stepwise
 *    decode against an Fp32 cache still reproduces forwardLogits()
 *    bit-exactly while the attend scratch stays O(headDim). This
 *    mode is the correctness oracle and the memory/throughput
 *    baseline.
 *
 *  - KvCacheMode::Packed — rows are encoded on append through the
 *    fast-path Elem-EM encoder into the pages' packed streams at
 *    ~4.5 bits/element. Because every row encodes independently, a
 *    page's streams are byte-identical to the corresponding row
 *    slice of the one-shot packer — the PR 5 exactness contract is
 *    page-boundary agnostic exactly as it was chunk-boundary
 *    agnostic. attend() runs the flash-style blocked online-softmax
 *    kernel: K/V pages stream through a bounded working set (each
 *    page LUT-decoded once per query block and reused across all
 *    heads), per-head running max m / normalizer l / value
 *    accumulator acc advance with the standard rescale-on-new-max
 *    recurrence, and no [S, T] (or even [T]) score buffer ever
 *    exists — scratch is O(pageRows · nHeads), independent of
 *    context length. Logits agree with a forwardLogits() reference
 *    that quantizes K/V via setKvQuantizers to the established
 *    model tolerance (1e-5).
 *
 * Causality comes from row order: the cache row appended for
 * position p is row p (page tables are walked in ascending order),
 * and the query at position p attends to rows 0..p — or, with a
 * sliding window W, to rows (p-W, p]. Chunk and page boundaries are
 * both invisible to the math.
 *
 * Grouped-query attention: the cache stores n_kv_heads head slices
 * per row (dModel() == n_kv_heads * headDim), and attend() maps
 * query head h onto K/V head h / (n_heads / n_kv_heads). Equal head
 * counts reproduce classic MHA bit-exactly.
 *
 * release() returns every page to the arena (sequence retirement or
 * scheduler eviction); a later re-prefill of the same token history
 * reproduces the exact same cache bytes, which is what makes
 * eviction recoverable (see serving.hh and docs/SERVING.md).
 */

#ifndef M2X_RUNTIME_KV_CACHE_HH__
#define M2X_RUNTIME_KV_CACHE_HH__

#include <memory>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/** The K/V state of one sequence across all layers. */
class KvCache
{
  public:
    /**
     * A cache drawing from a shared @p arena (the serving shape).
     * The arena must outlive the cache.
     *
     * @param n_layers transformer blocks (one K + one V per block)
     */
    KvCache(KvPageArena &arena, size_t n_layers);

    /**
     * Convenience: a cache over its own private elastic arena (the
     * standalone shape — tests, single-sequence tools).
     *
     * @param d_model row width; must divide evenly into the heads
     *        at attend() time
     * @param mode    resident representation
     * @param fmt     packed-mode codec config (paper layout only)
     * @param isa     kernel tier for packed-mode encode/decode
     * @param codec   packed-mode stream codec (the format axis)
     */
    KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
            M2xfpConfig fmt = {}, SimdIsa isa = activeSimdIsa(),
            PackedCodec codec = PackedCodec::ElemEm);

    ~KvCache();

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;
    KvCache(KvCache &&o) noexcept;
    KvCache &operator=(KvCache &&) = delete;

    KvCacheMode mode() const { return arena_->mode(); }
    size_t layers() const { return layers_.size(); }
    size_t dModel() const { return arena_->dModel(); }
    SimdIsa simdIsa() const { return arena_->simdIsa(); }
    const KvPageArena &arena() const { return *arena_; }

    /**
     * Cached rows (== tokens seen) — the same for every layer once a
     * chunk has been appended to all of them.
     */
    size_t length() const
    {
        return layers_.empty() ? 0 : layers_[0].rows;
    }

    /**
     * Append @p n contiguous row-major rows of K and V (each
     * dModel() floats) to @p layer, claiming arena pages as the
     * tail crosses page boundaries. Packed mode encodes them through
     * the fast-path Elem-EM encoder on the arena's ISA tier —
     * multi-row appends (prefill chunks) distribute the encodes
     * over @p pool (null = the global pool), single rows stay
     * inline. Exhaustion of a bounded arena is a hard error here:
     * schedulers must check pagesNeededFor() against the arena's
     * free count first (see serving.cc).
     */
    void append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n,
                ThreadPool *pool = nullptr);

    /**
     * Causal attention of @p n_rows query rows (row-major,
     * n_heads * headDim floats each, first row at absolute position
     * @p pos0) against this cache's @p layer, writing the context
     * rows to @p ctx (same shape as q). The chunk's own K/V rows
     * must already be appended: query row i attends cache rows
     * [0, pos0 + i], narrowed to the trailing @p window positions
     * when a sliding window is set.
     *
     * @p n_kv_heads is the grouped-query K/V head count (0 =
     * n_heads, classic MHA); the cache rows carry n_kv_heads head
     * slices (dModel() == n_kv_heads * headDim) while q/ctx carry
     * n_heads. @p window == 0 means full causal attention.
     *
     * Fp32 mode streams the visible rows in three exact passes
     * (bit-exact to the full forward) and parallelizes over heads;
     * Packed mode runs the flash-style online-softmax page walker
     * and parallelizes over query blocks. Both resolve row j through
     * the page table (j / pageRows, j % pageRows) and keep per-lane
     * scratch bounded independent of context length (see
     * attendScratchPeakBytes). @p pool follows the runtime
     * convention (null = global pool); per-lane scratch is
     * thread-local, so steady-state decode allocates nothing.
     */
    void attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool = nullptr, unsigned n_kv_heads = 0,
                size_t window = 0) const;

    /**
     * The pre-flash attend (PR 5–8): materializes the full
     * O(context) score vector per query row and runs the two-pass
     * reference softmax. Classic MHA over the full causal prefix
     * only — kept as the measured baseline for the long-context
     * bench trajectory (old-attend vs flash-attend ratio), not used
     * by any decode path.
     */
    void attendLegacy(size_t layer, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool *pool = nullptr) const;

    /**
     * Return to the arena every page that lies wholly below cache
     * row @p row, in every layer (sliding-window retirement: once
     * all queries' windows have moved past a page it can never be
     * attended again). Freed table slots keep a tombstone so
     * absolute row indexing — and the append tail — are unaffected.
     * Note that a later re-prefill after eviction replays the full
     * history, transiently re-claiming early pages; schedulers must
     * keep admission accounting on the full row count (see
     * docs/SERVING.md).
     */
    void releaseBefore(size_t row);

    /**
     * Bytes of cached K/V rows across layers (row-granular: the
     * bytes the rows actually occupy, not the page-granular arena
     * claim — see pagesHeld() for the latter). All three packed
     * streams in Packed mode, the dense rows in Fp32 mode.
     */
    size_t totalBytes() const;

    /** Resident K/V bytes per cached token (0 while empty). */
    double
    bytesPerToken() const
    {
        size_t len = length();
        return len == 0 ? 0.0
                        : static_cast<double>(totalBytes()) /
                              static_cast<double>(len);
    }

    /** Arena pages this sequence currently holds. */
    size_t pagesHeld() const;

    /**
     * Fresh arena pages appending @p n_rows more rows would claim
     * (across all layers and both streams) — what a scheduler checks
     * against the arena's free count before admitting or stepping.
     */
    size_t pagesNeededFor(size_t n_rows) const;

    /**
     * Return every page to the arena and reset to zero length (the
     * retirement/eviction path). The cache remains usable: a
     * re-prefill of the same token history rebuilds byte-identical
     * pages.
     */
    void release();

  private:
    struct Layer
    {
        size_t rows = 0;
        /** Page tables: k[j / pageRows] holds cache row j. */
        std::vector<KvPageId> k, v;
    };

    void appendStream(std::vector<KvPageId> &table, size_t rows_used,
                      const float *rows, size_t n, ThreadPool *pool);
    void attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads,
                    unsigned n_kv_heads, size_t window, float *ctx,
                    ThreadPool &pool) const;
    void attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads,
                      unsigned n_kv_heads, size_t window, float *ctx,
                      ThreadPool &pool) const;
    void attendFp32Legacy(const Layer &l, const float *q,
                          size_t n_rows, size_t pos0,
                          unsigned n_heads, float *ctx,
                          ThreadPool &pool) const;
    void attendPackedLegacy(const Layer &l, const float *q,
                            size_t n_rows, size_t pos0,
                            unsigned n_heads, float *ctx,
                            ThreadPool &pool) const;

    std::unique_ptr<KvPageArena> owned_; //!< standalone shape only
    KvPageArena *arena_;
    std::vector<Layer> layers_;
};

/**
 * @{ Peak per-lane attend scratch, in bytes, across every
 * KvCache::attend since the last reset (process-wide, any thread).
 * The flash attend's defining property is that this is bounded by
 * O(pageRows · nHeads + queryBlock · dModel) independent of context
 * length — tests assert it and DecodeSession exports it as the
 * decode.attend_scratch_bytes gauge. attendLegacy is deliberately
 * excluded: its O(context) scores vector is the regression this
 * measures against.
 */
size_t attendScratchPeakBytes();
void resetAttendScratchPeak();
/** @} */

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_CACHE_HH__
