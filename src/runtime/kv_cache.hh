/**
 * @file
 * Per-sequence attention KV cache for the autoregressive decode
 * runtime, with the paper's packed M2XFP streams as the resident
 * representation.
 *
 * One KvCache holds the K and V rows of every layer of ONE sequence.
 * Rows are appended as they are produced (prefill chunks, then one
 * row per decode step) and never rewritten, so the cache grows in
 * amortized O(1) per row. Two storage modes:
 *
 *  - KvCacheMode::Fp32 — rows stay dense fp32 (32 bits/element).
 *    attend() replicates the full-forward causal attention loops
 *    operation for operation (double-precision dots in ascending-k
 *    order, the same softmax arithmetic), so prefill + stepwise
 *    decode against an Fp32 cache reproduces forwardLogits()
 *    bit-exactly. This mode is the correctness oracle and the
 *    memory/throughput baseline.
 *
 *  - KvCacheMode::Packed — rows are encoded on append through the
 *    fast-path Elem-EM encoder (runtime/packed_quantize, the same
 *    per-ISA kernels the linear layers use) into growable packed
 *    streams at ~4.5 bits/element, a ~7.1x resident-memory
 *    reduction. attend() dequantizes rows tile-by-tile through the
 *    DecodeTables-backed per-ISA row decoders — no dense K/V matrix
 *    is ever materialized — and runs a blocked kernel that decodes
 *    each cached row once per query block and keeps multiple
 *    independent double accumulation chains in flight. The decoded
 *    values are bit-identical to the functional Elem-EM codec, so
 *    logits agree with a forwardLogits() reference that quantizes
 *    K/V via setKvQuantizers to the established model-level
 *    tolerance (1e-5).
 *
 * Causality comes from row order: the cache row appended for
 * position p is row p, and the query at position p attends to rows
 * 0..p. Chunk boundaries are invisible — appending 17 rows then 3
 * rows yields the same streams as one 20-row append.
 */

#ifndef M2X_RUNTIME_KV_CACHE_HH__
#define M2X_RUNTIME_KV_CACHE_HH__

#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/** Resident representation of the cached K/V rows. */
enum class KvCacheMode
{
    Fp32,   //!< dense fp32 rows: bit-exact oracle + baseline
    Packed, //!< packed M2XFP streams (~4.5 bits/element)
};

/** Display name ("fp32" / "packed"). */
const char *kvCacheModeName(KvCacheMode mode);

/** The K/V state of one sequence across all layers. */
class KvCache
{
  public:
    /**
     * @param n_layers transformer blocks (one K + one V per block)
     * @param d_model  row width; must divide evenly into the heads
     *        at attend() time
     * @param mode     resident representation
     * @param fmt      packed-mode codec config (paper layout only)
     * @param isa      kernel tier for packed-mode encode/decode
     */
    KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
            M2xfpConfig fmt = {}, SimdIsa isa = activeSimdIsa());

    KvCacheMode mode() const { return mode_; }
    size_t layers() const { return layers_.size(); }
    size_t dModel() const { return dModel_; }
    SimdIsa simdIsa() const { return isa_; }

    /**
     * Cached rows (== tokens seen) — the same for every layer once a
     * chunk has been appended to all of them.
     */
    size_t length() const
    {
        return layers_.empty() ? 0 : layers_[0].rows;
    }

    /**
     * Append @p n contiguous row-major rows of K and V (each
     * dModel() floats) to @p layer. Packed mode encodes them through
     * the fast-path Elem-EM encoder on this cache's ISA tier —
     * multi-row appends (prefill chunks) distribute the encodes
     * over @p pool (null = the global pool), single rows stay
     * inline.
     */
    void append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n,
                ThreadPool *pool = nullptr);

    /**
     * Causal attention of @p n_rows query rows (row-major, dModel()
     * floats each, first row at absolute position @p pos0) against
     * this cache's @p layer, writing the context rows to @p ctx
     * (same shape as q). The chunk's own K/V rows must already be
     * appended: cache rows [0, pos0 + n_rows) are attended, query
     * row i masking rows beyond pos0 + i.
     *
     * Fp32 mode replicates the full-forward loops bit-exactly and
     * parallelizes over heads; Packed mode runs the blocked
     * decode-fused kernel and parallelizes over query blocks.
     * @p pool follows the runtime convention (null = global pool);
     * per-lane scratch is thread-local, so steady-state decode
     * allocates nothing.
     */
    void attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool = nullptr) const;

    /**
     * Resident bytes of all cached K/V rows across layers: all three
     * packed streams in Packed mode, the dense rows in Fp32 mode.
     */
    size_t totalBytes() const;

    /** Resident K/V bytes per cached token (0 while empty). */
    double
    bytesPerToken() const
    {
        size_t len = length();
        return len == 0 ? 0.0
                        : static_cast<double>(totalBytes()) /
                              static_cast<double>(len);
    }

  private:
    struct Layer
    {
        size_t rows = 0;
        /** @{
         * Fp32 mode storage: row-major [rows, dModel] in plain
         * vectors, deliberately not Matrix — vector growth is
         * guaranteed to preserve the existing rows, which the
         * append path depends on (Matrix::resize documents its
         * contents as unspecified after a resize).
         */
        std::vector<float> k, v;
        /** @} */
        PackedM2xfpTensor pk, pv; //!< Packed mode storage
    };

    void attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads, float *ctx,
                    ThreadPool &pool) const;
    void attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool &pool) const;

    KvCacheMode mode_;
    size_t dModel_;
    SimdIsa isa_;
    ElemEmQuantizer actQ_; //!< packed-mode row codec
    std::vector<Layer> layers_;
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_CACHE_HH__
