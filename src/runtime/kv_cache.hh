/**
 * @file
 * Per-sequence attention KV cache for the autoregressive decode
 * runtime, with the paper's packed M2XFP streams as the resident
 * representation — backed by a shared KvPageArena since the paged
 * refactor, so many sequences draw from (and return to) one fixed
 * page pool.
 *
 * One KvCache holds the K and V rows of every layer of ONE sequence,
 * as per-layer page tables into the arena. Rows are appended as they
 * are produced (prefill chunks, then one row per decode step) and
 * never rewritten; an append fills the tail page and claims fresh
 * pages from the arena as it crosses page boundaries. Two storage
 * modes, decided by the arena:
 *
 *  - KvCacheMode::Fp32 — rows stay dense fp32 (32 bits/element).
 *    attend() replicates the full-forward causal attention loops
 *    operation for operation (double-precision dots in ascending-k
 *    order, the same softmax arithmetic); walking the page table
 *    only changes where row j is fetched from, not one arithmetic
 *    op, so prefill + stepwise decode against an Fp32 cache still
 *    reproduces forwardLogits() bit-exactly. This mode is the
 *    correctness oracle and the memory/throughput baseline.
 *
 *  - KvCacheMode::Packed — rows are encoded on append through the
 *    fast-path Elem-EM encoder into the pages' packed streams at
 *    ~4.5 bits/element. Because every row encodes independently, a
 *    page's streams are byte-identical to the corresponding row
 *    slice of the one-shot packer — the PR 5 exactness contract is
 *    page-boundary agnostic exactly as it was chunk-boundary
 *    agnostic. attend() dequantizes rows tile-by-tile through the
 *    DecodeTables-backed per-ISA row decoders applied per page and
 *    runs the blocked kernel (each cached row decoded once per query
 *    block, multiple independent double chains). Logits agree with a
 *    forwardLogits() reference that quantizes K/V via
 *    setKvQuantizers to the established model tolerance (1e-5).
 *
 * Causality comes from row order: the cache row appended for
 * position p is row p (page tables are walked in ascending order),
 * and the query at position p attends to rows 0..p. Chunk and page
 * boundaries are both invisible to the math.
 *
 * release() returns every page to the arena (sequence retirement or
 * scheduler eviction); a later re-prefill of the same token history
 * reproduces the exact same cache bytes, which is what makes
 * eviction recoverable (see serving.hh and docs/SERVING.md).
 */

#ifndef M2X_RUNTIME_KV_CACHE_HH__
#define M2X_RUNTIME_KV_CACHE_HH__

#include <memory>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/** The K/V state of one sequence across all layers. */
class KvCache
{
  public:
    /**
     * A cache drawing from a shared @p arena (the serving shape).
     * The arena must outlive the cache.
     *
     * @param n_layers transformer blocks (one K + one V per block)
     */
    KvCache(KvPageArena &arena, size_t n_layers);

    /**
     * Convenience: a cache over its own private elastic arena (the
     * standalone shape — tests, single-sequence tools).
     *
     * @param d_model row width; must divide evenly into the heads
     *        at attend() time
     * @param mode    resident representation
     * @param fmt     packed-mode codec config (paper layout only)
     * @param isa     kernel tier for packed-mode encode/decode
     */
    KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
            M2xfpConfig fmt = {}, SimdIsa isa = activeSimdIsa());

    ~KvCache();

    KvCache(const KvCache &) = delete;
    KvCache &operator=(const KvCache &) = delete;
    KvCache(KvCache &&o) noexcept;
    KvCache &operator=(KvCache &&) = delete;

    KvCacheMode mode() const { return arena_->mode(); }
    size_t layers() const { return layers_.size(); }
    size_t dModel() const { return arena_->dModel(); }
    SimdIsa simdIsa() const { return arena_->simdIsa(); }
    const KvPageArena &arena() const { return *arena_; }

    /**
     * Cached rows (== tokens seen) — the same for every layer once a
     * chunk has been appended to all of them.
     */
    size_t length() const
    {
        return layers_.empty() ? 0 : layers_[0].rows;
    }

    /**
     * Append @p n contiguous row-major rows of K and V (each
     * dModel() floats) to @p layer, claiming arena pages as the
     * tail crosses page boundaries. Packed mode encodes them through
     * the fast-path Elem-EM encoder on the arena's ISA tier —
     * multi-row appends (prefill chunks) distribute the encodes
     * over @p pool (null = the global pool), single rows stay
     * inline. Exhaustion of a bounded arena is a hard error here:
     * schedulers must check pagesNeededFor() against the arena's
     * free count first (see serving.cc).
     */
    void append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n,
                ThreadPool *pool = nullptr);

    /**
     * Causal attention of @p n_rows query rows (row-major, dModel()
     * floats each, first row at absolute position @p pos0) against
     * this cache's @p layer, writing the context rows to @p ctx
     * (same shape as q). The chunk's own K/V rows must already be
     * appended: cache rows [0, pos0 + n_rows) are attended, query
     * row i masking rows beyond pos0 + i.
     *
     * Fp32 mode replicates the full-forward loops bit-exactly and
     * parallelizes over heads; Packed mode runs the blocked
     * decode-fused kernel and parallelizes over query blocks. Both
     * resolve row j through the page table (j / pageRows, j %
     * pageRows). @p pool follows the runtime convention (null =
     * global pool); per-lane scratch is thread-local, so
     * steady-state decode allocates nothing.
     */
    void attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool = nullptr) const;

    /**
     * Bytes of cached K/V rows across layers (row-granular: the
     * bytes the rows actually occupy, not the page-granular arena
     * claim — see pagesHeld() for the latter). All three packed
     * streams in Packed mode, the dense rows in Fp32 mode.
     */
    size_t totalBytes() const;

    /** Resident K/V bytes per cached token (0 while empty). */
    double
    bytesPerToken() const
    {
        size_t len = length();
        return len == 0 ? 0.0
                        : static_cast<double>(totalBytes()) /
                              static_cast<double>(len);
    }

    /** Arena pages this sequence currently holds. */
    size_t pagesHeld() const;

    /**
     * Fresh arena pages appending @p n_rows more rows would claim
     * (across all layers and both streams) — what a scheduler checks
     * against the arena's free count before admitting or stepping.
     */
    size_t pagesNeededFor(size_t n_rows) const;

    /**
     * Return every page to the arena and reset to zero length (the
     * retirement/eviction path). The cache remains usable: a
     * re-prefill of the same token history rebuilds byte-identical
     * pages.
     */
    void release();

  private:
    struct Layer
    {
        size_t rows = 0;
        /** Page tables: k[j / pageRows] holds cache row j. */
        std::vector<KvPageId> k, v;
    };

    void appendStream(std::vector<KvPageId> &table, size_t rows_used,
                      const float *rows, size_t n, ThreadPool *pool);
    void attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads, float *ctx,
                    ThreadPool &pool) const;
    void attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool &pool) const;

    std::unique_ptr<KvPageArena> owned_; //!< standalone shape only
    KvPageArena *arena_;
    std::vector<Layer> layers_;
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_CACHE_HH__
