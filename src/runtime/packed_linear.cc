#include "runtime/packed_linear.hh"

#include "util/logging.hh"

namespace m2x {
namespace runtime {

PackedLinear::PackedLinear(const Matrix &weight, M2xfpConfig cfg,
                           ThreadPool *pool)
    : actQ_(cfg.activationConfig()), weightQ_(cfg.weightConfig()),
      inFeatures_(weight.cols()), outFeatures_(weight.rows()),
      pool_(pool)
{
    m2x_assert(cfg.groupSize == PackedM2xfpTensor::groupSize &&
               cfg.subgroupSize == PackedM2xfpTensor::subgroupSize,
               "PackedLinear requires the paper layout (g32/sg8), "
               "got g%u/sg%u", cfg.groupSize, cfg.subgroupSize);
    weight_ = PackedM2xfpTensor::packWeights(weight, weightQ_);
}

Matrix
PackedLinear::forward(const Matrix &x) const
{
    m2x_assert(x.cols() == inFeatures_,
               "linear in_features mismatch: %zu vs %zu", x.cols(),
               inFeatures_);
    PackedM2xfpTensor xa =
        PackedM2xfpTensor::packActivations(x, actQ_);
    return packedMatmulNt(xa, weight_, pool_);
}

} // namespace runtime
} // namespace m2x
