#include "runtime/packed_linear.hh"

#include <chrono>

#include "util/logging.hh"

namespace m2x {
namespace runtime {

PackedLinear::PackedLinear(const Matrix &weight, M2xfpConfig cfg,
                           ThreadPool *pool, SimdIsa isa)
    : actQ_(cfg.activationConfig()), weightQ_(cfg.weightConfig()),
      inFeatures_(weight.cols()), outFeatures_(weight.rows()),
      pool_(pool), isa_(isa)
{
    m2x_assert(cfg.groupSize == PackedM2xfpTensor::groupSize &&
               cfg.subgroupSize == PackedM2xfpTensor::subgroupSize,
               "PackedLinear requires the paper layout (g32/sg8), "
               "got g%u/sg%u", cfg.groupSize, cfg.subgroupSize);
    m2x_assert(simdIsaAvailable(isa),
               "PackedLinear: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    weight_ = PackedM2xfpTensor::packWeights(weight, weightQ_);
}

void
PackedLinear::forward(const Matrix &x, Matrix &y, Workspace *ws,
                      ForwardBreakdown *times) const
{
    using clock = std::chrono::steady_clock;

    m2x_assert(x.cols() == inFeatures_,
               "linear in_features mismatch: %zu vs %zu", x.cols(),
               inFeatures_);
    Workspace local;
    Workspace &w = ws ? *ws : local;

    auto t0 = clock::now();
    PackedM2xfpTensor::packActivations(x, actQ_, pool_, isa_,
                                       w.packedAct);
    auto t1 = clock::now();
    packedMatmulNt(w.packedAct, weight_, y, pool_, isa_);
    auto t2 = clock::now();
    if (times) {
        using std::chrono::duration_cast;
        using std::chrono::nanoseconds;
        times->quantizeNanos +=
            duration_cast<nanoseconds>(t1 - t0).count();
        times->gemmNanos +=
            duration_cast<nanoseconds>(t2 - t1).count();
    }
}

Matrix
PackedLinear::forward(const Matrix &x) const
{
    Matrix y;
    forward(x, y);
    return y;
}

} // namespace runtime
} // namespace m2x
