#include "runtime/packed_linear.hh"

#include "util/logging.hh"

namespace m2x {
namespace runtime {

PackedLinear::PackedLinear(const Matrix &weight, M2xfpConfig cfg,
                           ThreadPool *pool, SimdIsa isa)
    : actQ_(cfg.activationConfig()), weightQ_(cfg.weightConfig()),
      inFeatures_(weight.cols()), outFeatures_(weight.rows()),
      pool_(pool), isa_(isa)
{
    m2x_assert(cfg.groupSize == PackedM2xfpTensor::groupSize &&
               cfg.subgroupSize == PackedM2xfpTensor::subgroupSize,
               "PackedLinear requires the paper layout (g32/sg8), "
               "got g%u/sg%u", cfg.groupSize, cfg.subgroupSize);
    m2x_assert(simdIsaAvailable(isa),
               "PackedLinear: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    weight_ = PackedM2xfpTensor::packWeights(weight, weightQ_);
}

Matrix
PackedLinear::forward(const Matrix &x) const
{
    m2x_assert(x.cols() == inFeatures_,
               "linear in_features mismatch: %zu vs %zu", x.cols(),
               inFeatures_);
    PackedM2xfpTensor xa =
        PackedM2xfpTensor::packActivations(x, actQ_);
    return packedMatmulNt(xa, weight_, pool_, isa_);
}

} // namespace runtime
} // namespace m2x
