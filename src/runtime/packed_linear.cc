#include "runtime/packed_linear.hh"

#include "runtime/telemetry.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/** @{ Cached forward-phase metric handles (null while metrics off). */
std::atomic<telemetry::Histogram *> quantizeSlot{nullptr};
std::atomic<telemetry::Histogram *> gemmSlot{nullptr};
std::atomic<telemetry::Counter *> forwardRowsSlot{nullptr};
/** @} */

} // anonymous namespace

PackedLinear::PackedLinear(const Matrix &weight, M2xfpConfig cfg,
                           ThreadPool *pool, SimdIsa isa,
                           PackedCodec codec)
    : actQ_(cfg.activationConfig()), weightQ_(cfg.weightConfig()),
      inFeatures_(weight.cols()), outFeatures_(weight.rows()),
      pool_(pool), isa_(isa), codec_(codec)
{
    m2x_assert(cfg.groupSize == PackedM2xfpTensor::groupSize &&
               cfg.subgroupSize == PackedM2xfpTensor::subgroupSize,
               "PackedLinear requires the paper layout (g32/sg8), "
               "got g%u/sg%u", cfg.groupSize, cfg.subgroupSize);
    m2x_assert(simdIsaAvailable(isa),
               "PackedLinear: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    // Weight packing is offline (construction): elem_em keeps the
    // legacy quantizer path byte-for-byte; other codecs go through
    // the functional codec packers.
    weight_ = codec_ == PackedCodec::ElemEm
                  ? PackedM2xfpTensor::packWeights(weight, weightQ_)
                  : PackedM2xfpTensor::packWeightsCodec(weight,
                                                        codec_);
}

void
PackedLinear::forward(const Matrix &x, Matrix &y, Workspace *ws,
                      ForwardBreakdown *times) const
{
    m2x_assert(x.cols() == inFeatures_,
               "linear in_features mismatch: %zu vs %zu", x.cols(),
               inFeatures_);
    Workspace local;
    Workspace &w = ws ? *ws : local;

    // One nowNanos pair per phase feeds every consumer — the trace
    // span, the registry histogram, and the caller's accumulating
    // ForwardBreakdown — so all three always agree. When telemetry
    // is off and no breakdown was asked for, the clock is not read.
    const bool timed = times || telemetry::traceEnabled() ||
                       telemetry::metricsEnabled();

    uint64_t t0 = timed ? telemetry::nowNanos() : 0;
    if (codec_ == PackedCodec::ElemEm)
        PackedM2xfpTensor::packActivations(x, actQ_, pool_, isa_,
                                           w.packedAct);
    else
        PackedM2xfpTensor::packActivationsCodec(x, codec_, pool_,
                                                isa_, w.packedAct);
    uint64_t t1 = timed ? telemetry::nowNanos() : 0;
    telemetry::traceComplete("linear.quantize", t0, t1);
    packedMatmulNt(w.packedAct, weight_, y, pool_, isa_);
    uint64_t t2 = timed ? telemetry::nowNanos() : 0;
    telemetry::traceComplete("linear.gemm", t1, t2);

    if (times) {
        times->quantizeNanos += t1 - t0;
        times->gemmNanos += t2 - t1;
    }
    if (telemetry::metricsEnabled()) {
        if (auto *h = telemetry::cachedHistogram(
                quantizeSlot, "linear.quantize_ns"))
            h->record(t1 - t0);
        if (auto *h = telemetry::cachedHistogram(gemmSlot,
                                                 "linear.gemm_ns"))
            h->record(t2 - t1);
        if (auto *c = telemetry::cachedCounter(
                forwardRowsSlot, "linear.forward_rows"))
            c->add(x.rows());
    }
}

Matrix
PackedLinear::forward(const Matrix &x) const
{
    Matrix y;
    forward(x, y);
    return y;
}

} // namespace runtime
} // namespace m2x
