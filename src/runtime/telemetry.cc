#include "runtime/telemetry.hh"

#include <algorithm>
#include <bit>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace m2x {
namespace runtime {
namespace telemetry {

namespace detail {

std::atomic<bool> traceEnabledFlag{false};
std::atomic<bool> metricsEnabledFlag{false};

} // namespace detail

// ---------------------------------------------------------------------------
// Trace collection
// ---------------------------------------------------------------------------

namespace {

/** One buffered span. @c name must be a string literal. */
struct TraceEvent
{
    const char *name;
    uint64_t t0;      //!< nowNanos at span begin
    uint64_t dur;     //!< nanoseconds
    std::string args; //!< preformatted JSON fragment (may be empty)
};

/**
 * Per-thread event buffer. Owned jointly by the writing thread (a
 * thread_local shared_ptr) and the global registry, so a worker
 * thread exiting before the flush cannot strand its events. The
 * mutex is per-buffer and uncontended on the hot path (only the
 * owning thread appends; the flusher takes it briefly).
 */
struct ThreadBuf
{
    std::mutex mutex;
    uint32_t tid = 0;
    std::string threadName;
    std::vector<TraceEvent> events;
};

/** Global trace collection state. */
struct TraceState
{
    std::mutex mutex; //!< guards bufs/path/startNanos/nextTid
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    std::string path;
    uint64_t startNanos = 0;
    uint32_t nextTid = 1;
};

/**
 * Intentionally leaked: spans may end and the exit-time flush may
 * run during static destruction, after a function-local static
 * would already be gone.
 */
TraceState &
traceState()
{
    static TraceState *state = new TraceState;
    return *state;
}

/** The calling thread's buffer, registered on first use. */
ThreadBuf &
threadBuf()
{
    thread_local std::shared_ptr<ThreadBuf> buf;
    if (!buf) {
        auto b = std::make_shared<ThreadBuf>();
        TraceState &st = traceState();
        std::lock_guard<std::mutex> lock(st.mutex);
        b->tid = st.nextTid++;
        st.bufs.push_back(b);
        buf = std::move(b);
    }
    return *buf;
}

void
appendEvent(const char *name, uint64_t t0, uint64_t t1,
            std::string args)
{
    // A span that straddles traceStop() is dropped rather than left
    // to linger in a buffer the flush has already drained.
    if (!traceEnabled())
        return;
    ThreadBuf &b = threadBuf();
    std::lock_guard<std::mutex> lock(b.mutex);
    b.events.push_back(
        {name, t0, t1 - t0, std::move(args)});
}

/** Minimal JSON string escaping (quotes, backslash, control). */
std::string
escapeJson(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (c < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

} // anonymous namespace

namespace detail {

size_t
pendingTraceEvents()
{
    TraceState &st = traceState();
    std::lock_guard<std::mutex> lock(st.mutex);
    size_t n = 0;
    for (const auto &b : st.bufs) {
        std::lock_guard<std::mutex> blk(b->mutex);
        n += b->events.size();
    }
    return n;
}

} // namespace detail

void
setMetricsEnabled(bool enabled)
{
    detail::metricsEnabledFlag.store(enabled,
                                     std::memory_order_relaxed);
}

void
traceStart(const std::string &path)
{
    TraceState &st = traceState();
    std::lock_guard<std::mutex> lock(st.mutex);
    for (const auto &b : st.bufs) {
        std::lock_guard<std::mutex> blk(b->mutex);
        b->events.clear();
    }
    st.path = path;
    st.startNanos = nowNanos();
    detail::traceEnabledFlag.store(true, std::memory_order_relaxed);
}

size_t
traceStop()
{
    TraceState &st = traceState();
    std::lock_guard<std::mutex> lock(st.mutex);
    if (!traceEnabled())
        return 0;
    detail::traceEnabledFlag.store(false,
                                   std::memory_order_relaxed);

    FILE *f = std::fopen(st.path.c_str(), "w");
    if (!f) {
        m2x_warn("telemetry: cannot open trace output '%s'",
                 st.path.c_str());
        for (const auto &b : st.bufs) {
            std::lock_guard<std::mutex> blk(b->mutex);
            b->events.clear();
        }
        return 0;
    }

    std::fprintf(f, "{\"traceEvents\": [\n");
    std::fprintf(f,
                 "{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": "
                 "\"process_name\", \"args\": {\"name\": \"m2x\"}}");
    size_t written = 0;
    for (const auto &b : st.bufs) {
        std::lock_guard<std::mutex> blk(b->mutex);
        if (!b->threadName.empty() && !b->events.empty())
            std::fprintf(f,
                         ",\n{\"ph\": \"M\", \"pid\": 1, \"tid\": "
                         "%" PRIu32 ", \"name\": \"thread_name\", "
                         "\"args\": {\"name\": \"%s\"}}",
                         b->tid,
                         escapeJson(b->threadName).c_str());
        for (const TraceEvent &e : b->events) {
            // Timestamps are microseconds relative to traceStart —
            // small enough that the double keeps full nanosecond
            // resolution.
            double ts =
                1e-3 * static_cast<double>(e.t0 - st.startNanos);
            double dur = 1e-3 * static_cast<double>(e.dur);
            std::fprintf(f,
                         ",\n{\"ph\": \"X\", \"pid\": 1, \"tid\": "
                         "%" PRIu32 ", \"ts\": %.3f, \"dur\": %.3f, "
                         "\"cat\": \"m2x\", \"name\": \"%s\", "
                         "\"args\": {%s}}",
                         b->tid, ts, dur, e.name, e.args.c_str());
            ++written;
        }
        b->events.clear();
    }
    std::fprintf(f, "\n]}\n");
    std::fclose(f);
    return written;
}

void
setCurrentThreadName(const std::string &name)
{
    ThreadBuf &b = threadBuf();
    std::lock_guard<std::mutex> lock(b.mutex);
    b.threadName = name;
}

void
traceComplete(const char *name, uint64_t t0_ns, uint64_t t1_ns)
{
    if (!traceEnabled())
        return;
    appendEvent(name, t0_ns, t1_ns, std::string());
}

// ---------------------------------------------------------------------------
// TraceSpan
// ---------------------------------------------------------------------------

void
TraceSpan::argInt(const char *key, int64_t value)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %lld",
                  args_.empty() ? "" : ", ", key,
                  static_cast<long long>(value));
    args_ += buf;
}

void
TraceSpan::arg(const char *key, double value)
{
    if (!name_)
        return;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s\"%s\": %.6g",
                  args_.empty() ? "" : ", ", key, value);
    args_ += buf;
}

void
TraceSpan::arg(const char *key, const char *value)
{
    if (!name_)
        return;
    args_ += args_.empty() ? "\"" : ", \"";
    args_ += key;
    args_ += "\": \"";
    args_ += escapeJson(value);
    args_ += "\"";
}

uint64_t
TraceSpan::finish()
{
    if (!name_)
        return 0;
    uint64_t t1 = nowNanos();
    appendEvent(name_, t0_, t1, std::move(args_));
    name_ = nullptr;
    return t1 - t0_;
}

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

void
Gauge::set(double v)
{
    bits_.store(std::bit_cast<uint64_t>(v),
                std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return std::bit_cast<double>(
        bits_.load(std::memory_order_relaxed));
}

void
Gauge::reset()
{
    bits_.store(0, std::memory_order_relaxed);
}

size_t
Histogram::bucketIndex(uint64_t v)
{
    if (v < 16)
        return static_cast<size_t>(v);
    // Octave o = floor(log2 v) >= 4; 16 linear sub-buckets each.
    unsigned o = 63u - static_cast<unsigned>(std::countl_zero(v));
    uint64_t sub = (v >> (o - 4)) & 15u;
    return 16 + (o - 4) * subBuckets + static_cast<size_t>(sub);
}

uint64_t
Histogram::bucketLow(size_t index)
{
    if (index < 16)
        return index;
    unsigned o = 4 + static_cast<unsigned>((index - 16) / subBuckets);
    uint64_t sub = (index - 16) % subBuckets;
    return (16u + sub) << (o - 4);
}

uint64_t
Histogram::bucketHigh(size_t index)
{
    if (index < 16)
        return index + 1;
    unsigned o = 4 + static_cast<unsigned>((index - 16) / subBuckets);
    return bucketLow(index) + (uint64_t{1} << (o - 4));
}

void
Histogram::record(uint64_t value)
{
    buckets_[bucketIndex(value)].fetch_add(
        1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
    uint64_t seen = min_.load(std::memory_order_relaxed);
    while (value < seen &&
           !min_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
    seen = max_.load(std::memory_order_relaxed);
    while (value > seen &&
           !max_.compare_exchange_weak(seen, value,
                                       std::memory_order_relaxed)) {
    }
}

uint64_t
Histogram::minValue() const
{
    uint64_t v = min_.load(std::memory_order_relaxed);
    return v == UINT64_MAX ? 0 : v;
}

uint64_t
Histogram::maxValue() const
{
    return max_.load(std::memory_order_relaxed);
}

double
Histogram::mean() const
{
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(sum()) /
                        static_cast<double>(n);
}

double
Histogram::quantile(double q) const
{
    uint64_t n = count();
    if (n == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // Nearest 0-based rank, then locate its bucket. The extreme
    // ranks are tracked exactly — no bucket interpolation needed.
    uint64_t target = static_cast<uint64_t>(
        std::llround(q * static_cast<double>(n - 1)));
    if (target == 0)
        return static_cast<double>(minValue());
    if (target == n - 1)
        return static_cast<double>(maxValue());
    uint64_t cum = 0;
    for (size_t i = 0; i < nBuckets; ++i) {
        uint64_t c = buckets_[i].load(std::memory_order_relaxed);
        if (c == 0)
            continue;
        if (cum + c > target) {
            double lo = static_cast<double>(bucketLow(i));
            double hi = static_cast<double>(bucketHigh(i));
            double within =
                (static_cast<double>(target - cum) + 0.5) /
                static_cast<double>(c);
            double v = lo + (hi - lo) * within;
            // The exact extremes bound every order statistic; the
            // clamp also makes a single-sample histogram exact.
            return std::clamp(v,
                              static_cast<double>(minValue()),
                              static_cast<double>(maxValue()));
        }
        cum += c;
    }
    return static_cast<double>(maxValue());
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(UINT64_MAX, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

MetricRegistry &
MetricRegistry::global()
{
    // Leaked for the same static-destruction reason as the trace
    // state: cached handles in long-lived objects may record during
    // teardown.
    static MetricRegistry *reg = new MetricRegistry;
    return *reg;
}

Counter &
MetricRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &
MetricRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &
MetricRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

const Counter *
MetricRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(name);
    return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge *
MetricRegistry::findGauge(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : it->second.get();
}

const Histogram *
MetricRegistry::findHistogram(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : it->second.get();
}

size_t
MetricRegistry::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return counters_.size() + gauges_.size() + histograms_.size();
}

void
MetricRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second->reset();
}

uint64_t
MetricRegistry::counterSumByPrefix(const std::string &prefix) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t sum = 0;
    for (const auto &kv : counters_)
        if (kv.first.compare(0, prefix.size(), prefix) == 0)
            sum += kv.second->value();
    return sum;
}

MetricsSnapshot
MetricRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &kv : counters_)
        snap.counters.emplace_back(kv.first, kv.second->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        snap.gauges.emplace_back(kv.first, kv.second->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto &kv : histograms_) {
        const Histogram &h = *kv.second;
        snap.histograms.push_back({kv.first, h.count(), h.sum(),
                                   h.minValue(), h.maxValue(),
                                   h.quantile(0.50),
                                   h.quantile(0.95),
                                   h.quantile(0.99)});
    }
    return snap;
}

std::string
MetricRegistry::snapshotJson() const
{
    MetricsSnapshot snap = snapshot();
    std::string out = "{\"counters\": {";
    char buf[160];
    bool first = true;
    for (const auto &kv : snap.counters) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %llu",
                      first ? "" : ", ",
                      escapeJson(kv.first).c_str(),
                      static_cast<unsigned long long>(kv.second));
        out += buf;
        first = false;
    }
    out += "}, \"gauges\": {";
    first = true;
    for (const auto &kv : snap.gauges) {
        std::snprintf(buf, sizeof(buf), "%s\"%s\": %.9g",
                      first ? "" : ", ",
                      escapeJson(kv.first).c_str(), kv.second);
        out += buf;
        first = false;
    }
    out += "}, \"histograms\": {";
    first = true;
    for (const auto &h : snap.histograms) {
        std::snprintf(
            buf, sizeof(buf),
            "%s\"%s\": {\"count\": %llu, \"sum\": %llu, "
            "\"min\": %llu, \"max\": %llu, ",
            first ? "" : ", ", escapeJson(h.name).c_str(),
            static_cast<unsigned long long>(h.count),
            static_cast<unsigned long long>(h.sum),
            static_cast<unsigned long long>(h.min),
            static_cast<unsigned long long>(h.max));
        out += buf;
        double mean =
            h.count ? static_cast<double>(h.sum) /
                          static_cast<double>(h.count)
                    : 0.0;
        std::snprintf(buf, sizeof(buf),
                      "\"mean\": %.9g, \"p50\": %.9g, "
                      "\"p95\": %.9g, \"p99\": %.9g}",
                      mean, h.p50, h.p95, h.p99);
        out += buf;
        first = false;
    }
    out += "}}";
    return out;
}

// ---------------------------------------------------------------------------
// Environment initialization
// ---------------------------------------------------------------------------

namespace {

void
flushTraceAtExit()
{
    size_t n = traceStop();
    if (n)
        m2x_inform("telemetry: wrote %zu trace event(s) to %s",
                   n, traceState().path.c_str());
}

/**
 * Reads M2X_TRACE / M2X_METRICS once at load time, so a traced run
 * needs no code changes; the atexit hook flushes whatever was still
 * being collected when the process ends.
 */
struct EnvInit
{
    EnvInit()
    {
        const char *t = std::getenv("M2X_TRACE");
        if (t && *t)
            traceStart(t);
        const char *m = std::getenv("M2X_METRICS");
        if (m && *m && std::strcmp(m, "0") != 0)
            setMetricsEnabled(true);
        std::atexit(flushTraceAtExit);
    }
};

EnvInit envInit;

} // anonymous namespace

} // namespace telemetry
} // namespace runtime
} // namespace m2x
