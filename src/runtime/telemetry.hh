/**
 * @file
 * Runtime telemetry: trace spans, a metrics registry, and latency
 * histograms for the packed execution engine.
 *
 * Two independent layers share one monotonic clock (nowNanos, the
 * steady_clock helper every runtime and bench timing site routes
 * through, so timestamps can never go backwards):
 *
 *  - **Tracing** — scoped spans (TraceSpan / traceComplete) recorded
 *    into per-thread buffers and written as Chrome `trace_event`
 *    JSON (loadable in Perfetto / chrome://tracing). Enabled with
 *    `M2X_TRACE=<path>` (flushed at process exit) or
 *    programmatically with traceStart()/traceStop(). When disabled
 *    — the default — every span site costs exactly one relaxed
 *    atomic load and a predictable branch: no clock read, no
 *    allocation, no stored event.
 *
 *  - **Metrics** — named counters, gauges, and log-bucketed latency
 *    histograms (exact count/sum/min/max, p50/p95/p99 quantile
 *    extraction) in a process-global MetricRegistry, snapshot-
 *    exportable as JSON. Enabled with `M2X_METRICS=1` or
 *    setMetricsEnabled(true). Instrumentation sites create registry
 *    entries lazily and only while enabled, so a disabled run leaves
 *    the registry empty; recording is lock-free (atomics only).
 *
 * Span and metric names are documented in docs/OBSERVABILITY.md;
 * histogram values are raw uint64 with the unit in the name suffix
 * (`_ns` = nanoseconds).
 */

#ifndef M2X_RUNTIME_TELEMETRY_HH__
#define M2X_RUNTIME_TELEMETRY_HH__

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace m2x {
namespace runtime {
namespace telemetry {

/**
 * Monotonic nanoseconds since an arbitrary process epoch — the one
 * clock every runtime span, stat counter, and bench stopwatch uses
 * (std::chrono::steady_clock; never the wall clock, never
 * high_resolution_clock, which may alias a non-monotonic clock).
 */
inline uint64_t
nowNanos()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

namespace detail {

/** @{
 * Global enable flags. Relaxed loads: a toggle only needs to become
 * visible eventually, and instrumentation sites must stay free of
 * ordering cost. Defined in telemetry.cc; initialized from
 * M2X_TRACE / M2X_METRICS before main().
 */
extern std::atomic<bool> traceEnabledFlag;
extern std::atomic<bool> metricsEnabledFlag;
/** @} */

/** Trace events buffered but not yet flushed (tests). */
size_t pendingTraceEvents();

} // namespace detail

/** True while a trace is being collected. */
inline bool
traceEnabled()
{
    return detail::traceEnabledFlag.load(std::memory_order_relaxed);
}

/** True while metric recording is on. */
inline bool
metricsEnabled()
{
    return detail::metricsEnabledFlag.load(
        std::memory_order_relaxed);
}

/** Turn metric recording on/off (M2X_METRICS=1 does this at load). */
void setMetricsEnabled(bool enabled);

/**
 * Start collecting a trace to be written to @p path (overwrites any
 * in-progress collection: buffered events are dropped, the
 * timestamp origin resets). `M2X_TRACE=<path>` calls this before
 * main() and registers an exit-time flush.
 */
void traceStart(const std::string &path);

/**
 * Stop collecting, write the Chrome trace_event JSON, and clear the
 * buffers. Returns the number of events written (0 when no trace
 * was active). Idempotent — the exit-time flush after an explicit
 * traceStop() is a no-op.
 */
size_t traceStop();

/**
 * Name the calling thread in the trace ("pool-worker-3"); shown as
 * the track name in Perfetto. Cheap; safe to call when tracing is
 * off (the name is kept for a later traceStart).
 */
void setCurrentThreadName(const std::string &name);

/**
 * Record a complete span [t0_ns, t1_ns] (nowNanos timestamps) for
 * code that already measures its own interval. No-op (one relaxed
 * load) when tracing is off.
 */
void traceComplete(const char *name, uint64_t t0_ns,
                   uint64_t t1_ns);

/**
 * RAII trace span: records [construction, destruction) on the
 * calling thread. @p name must be a string literal (stored by
 * pointer). When tracing is off the constructor is one relaxed load
 * and every other member is an inert branch.
 *
 *   TraceSpan span("gemm.packed");
 *   if (span.active()) {
 *       span.arg("m", m);
 *       span.arg("isa", simdIsaName(isa));
 *   }
 */
class TraceSpan
{
  public:
    explicit TraceSpan(const char *name)
    {
        if (traceEnabled()) {
            name_ = name;
            t0_ = nowNanos();
        }
    }

    ~TraceSpan()
    {
        if (name_)
            finish();
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** True when the span is being recorded (gate arg formatting). */
    bool active() const { return name_ != nullptr; }

    /** @{
     * Attach a key/value argument (shown in the Perfetto detail
     * pane). No-ops when inactive, so callers may skip the active()
     * check for cheap values.
     */
    template <typename T,
              std::enable_if_t<std::is_integral_v<T>, int> = 0>
    void
    arg(const char *key, T value)
    {
        if (name_)
            argInt(key, static_cast<int64_t>(value));
    }
    void arg(const char *key, double value);
    void arg(const char *key, const char *value);
    /** @} */

    /**
     * End the span now instead of at destruction; returns its
     * duration in nanoseconds (0 when inactive).
     */
    uint64_t finish();

  private:
    void argInt(const char *key, int64_t value);

    const char *name_ = nullptr;
    uint64_t t0_ = 0;
    std::string args_; //!< preformatted JSON fragment, built lazily
};

/** Monotonically increasing event count. Lock-free. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<uint64_t> value_{0};
};

/** Last-write-wins instantaneous value. Lock-free. */
class Gauge
{
  public:
    void set(double v);
    double value() const;
    void reset();

  private:
    /** Double bits; avoids relying on std::atomic<double>. */
    std::atomic<uint64_t> bits_{0};
};

/**
 * Log-bucketed histogram of uint64 values (typically nanoseconds).
 *
 * Bucket layout: values 0..15 get exact unit buckets; every larger
 * octave [2^o, 2^(o+1)) is split into 16 linear sub-buckets, so a
 * bucket's relative width is at most 1/16 (6.25%) of its lower
 * bound — the bound on quantile error. count/sum/min/max are exact.
 * record() is lock-free (one atomic add per bucket + the exact
 * aggregates); quantile()/snapshot readers expect a quiesced
 * histogram (concurrent records may or may not be included).
 */
class Histogram
{
  public:
    static constexpr size_t subBuckets = 16;
    /** 0..15 exact + 16 sub-buckets per octave for o in [4, 63]. */
    static constexpr size_t nBuckets = 16 + (64 - 4) * subBuckets;

    void record(uint64_t value);

    uint64_t
    count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Exact sum of all recorded values. */
    uint64_t
    sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }

    uint64_t minValue() const; //!< exact; 0 when empty
    uint64_t maxValue() const; //!< exact; 0 when empty
    double mean() const;       //!< sum/count; 0 when empty

    /**
     * Value at quantile @p q in [0, 1] (0.5 = p50). Nearest-rank
     * into the bucket array, linearly interpolated inside the
     * bucket and clamped to the exact [min, max] — so a
     * single-sample histogram returns the sample exactly, and any
     * result is within one bucket width (≤ 1/16 relative) of the
     * true order statistic. Returns 0 when empty.
     */
    double quantile(double q) const;

    void reset();

    /** @{ Bucket geometry, exposed for the unit tests. */
    static size_t bucketIndex(uint64_t v);
    static uint64_t bucketLow(size_t index);
    static uint64_t bucketHigh(size_t index); //!< exclusive
    /** @} */

  private:
    std::array<std::atomic<uint64_t>, nBuckets> buckets_{};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
    std::atomic<uint64_t> min_{UINT64_MAX};
    std::atomic<uint64_t> max_{0};
};

/** One histogram's aggregates, as exported in a snapshot. */
struct HistogramSnapshot
{
    std::string name;
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** A point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;
};

/**
 * Process-global name → metric table. Lookup/creation takes a
 * mutex; the returned references are stable for the process
 * lifetime, so hot paths resolve once and then record lock-free.
 * Instrumentation sites must create entries only while
 * metricsEnabled() (the cached* helpers below enforce this), which
 * keeps the registry empty — zero entries, zero overhead beyond the
 * flag check — in an un-instrumented run.
 */
class MetricRegistry
{
  public:
    static MetricRegistry &global();

    /** @{ Find-or-create; the reference never moves. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);
    /** @} */

    /** @{ Lookup without creation; nullptr when absent. */
    const Counter *findCounter(const std::string &name) const;
    const Gauge *findGauge(const std::string &name) const;
    const Histogram *findHistogram(const std::string &name) const;
    /** @} */

    /** Registered entries across all three kinds. */
    size_t size() const;

    /** Zero every metric's values; registrations stay. */
    void reset();

    /** Sum of every counter whose name starts with @p prefix. */
    uint64_t counterSumByPrefix(const std::string &prefix) const;

    MetricsSnapshot snapshot() const;

    /**
     * The snapshot as a JSON object:
     *   {"counters": {name: value, ...},
     *    "gauges": {name: value, ...},
     *    "histograms": {name: {"count": n, "sum": s, "min": m,
     *                          "max": M, "mean": x,
     *                          "p50": a, "p95": b, "p99": c}, ...}}
     */
    std::string snapshotJson() const;

  private:
    MetricRegistry() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** @{
 * Lazily resolved, cached metric handles for instrumentation sites:
 * nullptr (one relaxed load) while metrics are off; on the first
 * enabled call the name is registered and the pointer cached in
 * @p slot. The benign race on the slot resolves to the same stable
 * registry entry.
 */
inline Counter *
cachedCounter(std::atomic<Counter *> &slot, const char *name)
{
    if (!metricsEnabled())
        return nullptr;
    Counter *c = slot.load(std::memory_order_acquire);
    if (!c) {
        c = &MetricRegistry::global().counter(name);
        slot.store(c, std::memory_order_release);
    }
    return c;
}

inline Gauge *
cachedGauge(std::atomic<Gauge *> &slot, const char *name)
{
    if (!metricsEnabled())
        return nullptr;
    Gauge *g = slot.load(std::memory_order_acquire);
    if (!g) {
        g = &MetricRegistry::global().gauge(name);
        slot.store(g, std::memory_order_release);
    }
    return g;
}

inline Histogram *
cachedHistogram(std::atomic<Histogram *> &slot, const char *name)
{
    if (!metricsEnabled())
        return nullptr;
    Histogram *h = slot.load(std::memory_order_acquire);
    if (!h) {
        h = &MetricRegistry::global().histogram(name);
        slot.store(h, std::memory_order_release);
    }
    return h;
}
/** @} */

} // namespace telemetry
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_TELEMETRY_HH__
