/**
 * @file
 * AVX-512 (F+BW) tier of the packed GEMM: full-table vector LUT
 * decode of the M2XFP weight streams and an 8x16 broadcast-form FMA
 * microkernel over 8-wide double accumulators.
 *
 * Decode: the 16-entry FP4 E2M1 value table fits one zmm register,
 * so a single vpermps (_mm512_permutexvar_ps) decodes 16 codes at
 * once — no sign-split needed, unlike the AVX2 tier's 8-entry
 * magnitude permute. The four Sg-EM subgroup scales of a group are
 * staged in one xmm and expanded to per-lane scale vectors with a
 * second permutexvar, keeping the multiply order identical to the
 * scalar decode (value * (sval * mult)), so the decoded floats are
 * bit-identical to runtime/decode_lut (asserted by
 * tests/runtime/simd_test.cc). Activation-role row decode is shared
 * with the AVX2 tier: its Elem-EM top-1 fix-up is already
 * vectorized there and bit-identical, and re-deriving it per ISA
 * would only add surface for drift.
 *
 * Accumulate: per depth step the k-major sliver contributes two
 * 8-wide W vectors and each of the 8 A rows one broadcast — 16
 * independent FMA chains across 19 live zmm registers, deep enough
 * to cover the FMA latency at two issues per cycle. Lane partials
 * persist in the block accumulator across KC slices; the summation
 * order differs from the scalar oracle, so parity is
 * tolerance-checked, never assumed bit-exact.
 *
 * This translation unit is compiled with -mavx2 -mfma -mavx512f
 * -mavx512bw and must only be entered through the runtime dispatch
 * (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

/** Scalar tables plus their vector-register forms. */
struct Avx512Tables
{
    const DecodeTables *lut;
    __m512 fp4Value;     //!< the full 16-entry FP4 table
    __m512i sgIdxLo;     //!< lane -> subgroup index, elements 0..15
    __m512i sgIdxHi;     //!< same for elements 16..31
};

const Avx512Tables &
tables()
{
    static const Avx512Tables t = [] {
        const DecodeTables &lut = DecodeTables::get();
        return Avx512Tables{
            &lut, _mm512_loadu_ps(lut.fp4Value),
            _mm512_set_epi32(1, 1, 1, 1, 1, 1, 1, 1, 0, 0, 0, 0, 0,
                             0, 0, 0),
            _mm512_set_epi32(3, 3, 3, 3, 3, 3, 3, 3, 2, 2, 2, 2, 2,
                             2, 2, 2)};
    }();
    return t;
}

/**
 * Split one group's 16 packed bytes into 32 interleaved 4-bit codes
 * (element order: byte i's low nibble is element 2i), returned as
 * two 16-code chunks.
 */
inline void
splitNibbles(const uint8_t *bytes, __m128i chunk[2])
{
    __m128i raw = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(bytes));
    __m128i mask = _mm_set1_epi8(0x0f);
    __m128i lo = _mm_and_si128(raw, mask);
    __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
    chunk[0] = _mm_unpacklo_epi8(lo, hi); // codes 0..15
    chunk[1] = _mm_unpackhi_epi8(lo, hi); // codes 16..31
}

} // anonymous namespace

void
decodeWeightGroupAvx512(const PackedM2xfpTensor &t, size_t row,
                        size_t group, float *out)
{
    const Avx512Tables &tab = tables();
    float sval = tab.lut->e8m0Value[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    // The four subgroup scales, premultiplied exactly like the
    // scalar decode, then fanned out to their 8-lane spans.
    __m128 s4 = _mm_setr_ps(
        sval * tab.lut->sgEmMult[meta & 0x3u],
        sval * tab.lut->sgEmMult[(meta >> 2) & 0x3u],
        sval * tab.lut->sgEmMult[(meta >> 4) & 0x3u],
        sval * tab.lut->sgEmMult[(meta >> 6) & 0x3u]);
    __m512 s16 = _mm512_castps128_ps512(s4);
    __m512 scale_lo = _mm512_permutexvar_ps(tab.sgIdxLo, s16);
    __m512 scale_hi = _mm512_permutexvar_ps(tab.sgIdxHi, s16);

    __m128i chunk[2];
    splitNibbles(t.groupElementBytes(row, group), chunk);
    __m512 val_lo = _mm512_permutexvar_ps(
        _mm512_cvtepu8_epi32(chunk[0]), tab.fp4Value);
    __m512 val_hi = _mm512_permutexvar_ps(
        _mm512_cvtepu8_epi32(chunk[1]), tab.fp4Value);
    _mm512_storeu_ps(out, _mm512_mul_ps(val_lo, scale_lo));
    _mm512_storeu_ps(out + 16, _mm512_mul_ps(val_hi, scale_hi));
}

void
decodeWeightRowAvx512(const PackedM2xfpTensor &t, size_t row,
                      float *out)
{
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        decodeWeightGroupAvx512(t, row, g, out + g * groupSize);
}

void
microKernelAvx512(const double *a, size_t a_stride, const double *ws,
                  size_t nr, size_t p0, size_t p1, size_t mr_cur,
                  double *acc, size_t acc_stride)
{
    m2x_assert(nr == 16, "microKernelAvx512 expects nr=16, got %zu",
               nr);
    if (mr_cur == 8) {
        __m512d c_lo[8], c_hi[8];
        for (size_t ii = 0; ii < 8; ++ii) {
            const double *r = acc + ii * acc_stride;
            c_lo[ii] = _mm512_loadu_pd(r);
            c_hi[ii] = _mm512_loadu_pd(r + 8);
        }
        for (size_t p = p0; p < p1; ++p) {
            const double *wp = ws + p * 16;
            __m512d wl = _mm512_loadu_pd(wp);
            __m512d wh = _mm512_loadu_pd(wp + 8);
            // Fully unrolled 8-row broadcast sweep: the fixed trip
            // count lets the compiler keep all 16 accumulators in
            // registers.
            c_lo[0] = _mm512_fmadd_pd(_mm512_set1_pd(a[p]), wl,
                                      c_lo[0]);
            c_hi[0] = _mm512_fmadd_pd(_mm512_set1_pd(a[p]), wh,
                                      c_hi[0]);
            c_lo[1] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[a_stride + p]), wl, c_lo[1]);
            c_hi[1] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[a_stride + p]), wh, c_hi[1]);
            c_lo[2] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[2 * a_stride + p]), wl, c_lo[2]);
            c_hi[2] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[2 * a_stride + p]), wh, c_hi[2]);
            c_lo[3] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[3 * a_stride + p]), wl, c_lo[3]);
            c_hi[3] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[3 * a_stride + p]), wh, c_hi[3]);
            c_lo[4] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[4 * a_stride + p]), wl, c_lo[4]);
            c_hi[4] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[4 * a_stride + p]), wh, c_hi[4]);
            c_lo[5] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[5 * a_stride + p]), wl, c_lo[5]);
            c_hi[5] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[5 * a_stride + p]), wh, c_hi[5]);
            c_lo[6] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[6 * a_stride + p]), wl, c_lo[6]);
            c_hi[6] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[6 * a_stride + p]), wh, c_hi[6]);
            c_lo[7] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[7 * a_stride + p]), wl, c_lo[7]);
            c_hi[7] = _mm512_fmadd_pd(
                _mm512_set1_pd(a[7 * a_stride + p]), wh, c_hi[7]);
        }
        for (size_t ii = 0; ii < 8; ++ii) {
            double *r = acc + ii * acc_stride;
            _mm512_storeu_pd(r, c_lo[ii]);
            _mm512_storeu_pd(r + 8, c_hi[ii]);
        }
        return;
    }
    // Ragged edge (mr_cur < 8): per-row two-accumulator sweep.
    for (size_t ii = 0; ii < mr_cur; ++ii) {
        double *r = acc + ii * acc_stride;
        const double *ar = a + ii * a_stride;
        __m512d cl = _mm512_loadu_pd(r);
        __m512d ch = _mm512_loadu_pd(r + 8);
        for (size_t p = p0; p < p1; ++p) {
            const double *wp = ws + p * 16;
            __m512d av = _mm512_set1_pd(ar[p]);
            cl = _mm512_fmadd_pd(av, _mm512_loadu_pd(wp), cl);
            ch = _mm512_fmadd_pd(av, _mm512_loadu_pd(wp + 8), ch);
        }
        _mm512_storeu_pd(r, cl);
        _mm512_storeu_pd(r + 8, ch);
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
