/**
 * @file
 * Scalar tier of the packed GEMM tile kernel — the bit-exact oracle
 * every vector tier is verified against. Each output element sums
 * its K products in double precision in ascending-k order, exactly
 * like matmulNt over the unpacked operands, so tiling, threading and
 * dispatch cannot change a single ULP on this tier.
 */

#include <algorithm>

#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

void
computeTileScalar(const PackedM2xfpTensor &w, const float *abuf,
                  size_t padded_k, size_t i0, size_t mt, size_t j0,
                  size_t nt, size_t k, Matrix &c)
{
    constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

    // Independent double accumulators: each c(i,j) still sums its
    // products in ascending-k order (bit-exact vs matmulNt), but
    // adjacent outputs interleave, hiding the FP add latency.
    double acc[gemmTileM][gemmTileN] = {};
    float wtile[groupSize * gemmTileN]; // transposed: [p][jj]
    float wrow[groupSize];

    size_t n_groups = padded_k / groupSize;
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * groupSize;
        size_t glen = std::min(groupSize, k - base);
        for (size_t jj = 0; jj < nt; ++jj) {
            decodeWeightGroup(w, j0 + jj, g, wrow);
            for (size_t p = 0; p < glen; ++p)
                wtile[p * gemmTileN + jj] = wrow[p];
        }
        for (size_t p = 0; p < glen; ++p) {
            const float *wp = wtile + p * gemmTileN;
            for (size_t ii = 0; ii < mt; ++ii) {
                double av = abuf[ii * padded_k + base + p];
                double *arow = acc[ii];
                for (size_t jj = 0; jj < nt; ++jj)
                    arow[jj] += av * wp[jj];
            }
        }
    }

    for (size_t ii = 0; ii < mt; ++ii)
        for (size_t jj = 0; jj < nt; ++jj)
            c(i0 + ii, j0 + jj) =
                static_cast<float>(acc[ii][jj]);
}

} // namespace detail
} // namespace runtime
} // namespace m2x
