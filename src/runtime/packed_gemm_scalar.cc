/**
 * @file
 * Scalar tier of the packed GEMM kernels — the bit-exact oracle
 * every vector tier is verified against. Each output element sums
 * its K products in double precision in ascending-k order, exactly
 * like matmulNt over the unpacked operands, so blocking, threading
 * and dispatch cannot change a single ULP on this tier. The panel
 * microkernel adds every product straight into the persistent block
 * accumulator (never a lane partial), so KC depth slicing preserves
 * the same single ascending chain per output; the driver clamps the
 * scalar depth sweep to the true k (accumulatePadding=false), which
 * keeps the zero-filled tail pad out of the chains entirely. The
 * legacy PR3 tile kernel below it backs detail::packedMatmulNtTiled.
 */

#include <algorithm>

#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

void
microKernelScalar(const double *a, size_t a_stride, const double *ws,
                  size_t nr, size_t p0, size_t p1, size_t mr_cur,
                  double *acc, size_t acc_stride)
{
    // p outermost, direct accumulation: each acc element's chain
    // stays a single ascending-k sum across every KC slice, while
    // adjacent outputs interleave to hide the FP add latency.
    for (size_t p = p0; p < p1; ++p) {
        const double *wp = ws + p * nr;
        for (size_t ii = 0; ii < mr_cur; ++ii) {
            double av = a[ii * a_stride + p];
            double *arow = acc + ii * acc_stride;
            for (size_t jj = 0; jj < nr; ++jj)
                arow[jj] += av * wp[jj];
        }
    }
}

void
computeTileScalar(const PackedM2xfpTensor &w, const float *abuf,
                  size_t padded_k, size_t i0, size_t mt, size_t j0,
                  size_t nt, size_t k, Matrix &c)
{
    constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

    // Independent double accumulators: each c(i,j) still sums its
    // products in ascending-k order (bit-exact vs matmulNt), but
    // adjacent outputs interleave, hiding the FP add latency.
    double acc[gemmTileM][gemmTileN] = {};
    float wtile[groupSize * gemmTileN]; // transposed: [p][jj]
    float wrow[groupSize];

    size_t n_groups = padded_k / groupSize;
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * groupSize;
        size_t glen = std::min(groupSize, k - base);
        for (size_t jj = 0; jj < nt; ++jj) {
            decodeWeightGroup(w, j0 + jj, g, wrow);
            for (size_t p = 0; p < glen; ++p)
                wtile[p * gemmTileN + jj] = wrow[p];
        }
        for (size_t p = 0; p < glen; ++p) {
            const float *wp = wtile + p * gemmTileN;
            for (size_t ii = 0; ii < mt; ++ii) {
                double av = abuf[ii * padded_k + base + p];
                double *arow = acc[ii];
                for (size_t jj = 0; jj < nt; ++jj)
                    arow[jj] += av * wp[jj];
            }
        }
    }

    for (size_t ii = 0; ii < mt; ++ii)
        for (size_t jj = 0; jj < nt; ++jj)
            c(i0 + ii, j0 + jj) =
                static_cast<float>(acc[ii][jj]);
}

} // namespace detail
} // namespace runtime
} // namespace m2x
