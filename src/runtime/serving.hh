/**
 * @file
 * Continuous-batching serving engine over the paged packed KV cache.
 *
 * Where DecodeSession runs a fixed batch to completion, the
 * ServingEngine admits and retires sequences mid-flight over one
 * shared fixed-capacity KvPageArena — the shape the paper's 4.5
 * bits/element KV state is for: compressed pages are what let many
 * concurrent sequences fit one arena byte budget (~7.1x the
 * sequences dense fp32 KV could hold).
 *
 * Scheduler (one step() = one iteration):
 *  1. Admission — FCFS over the waiting queue (preempted requests
 *     resume first, in original submission order). A request is
 *     admitted only if the pages its whole history needs, plus the
 *     configured free-page watermark, fit the arena's free count;
 *     otherwise admission stalls until retirements free pages.
 *     Admission prefills the request's full token history in one
 *     chunk (prompt for fresh requests; prompt + generated tokens
 *     for resumed ones — byte-exact re-prefill is what makes
 *     eviction recoverable).
 *  2. Capacity check — the coming decode step appends one row per
 *     active sequence per layer per stream; if the worst-case fresh
 *     pages exceed the arena's free count, the youngest active
 *     sequences are preempted (pages released, token history kept)
 *     until the step fits. FCFS with preemption: the oldest work is
 *     never the victim.
 *  3. Batched step — the active set's next tokens are re-batched
 *     into a single ragged [S, d] chunk (every linear runs one
 *     batched packed GEMM; attention fans out per sequence), tokens
 *     are sampled greedily, finished sequences retire and their
 *     pages return to the free list.
 *
 * Request lifecycle: Queued -> Active -> (Preempted -> Active)* ->
 * Finished. See docs/SERVING.md for the policy rationale and the
 * page-table layout.
 *
 * Telemetry (PR 7 registry, off by default): serving.step /
 * serving.prefill trace spans, serving.step_ns / serving.token_ns /
 * serving.ttft_ns histograms, serving.tokens / serving.preemptions
 * counters, serving.occupancy / serving.active / serving.queued /
 * serving.free_pages gauges.
 *
 * Like the sessions, one engine expects a single driving thread;
 * parallelism lives inside the packed kernels and the per-sequence
 * attention fan-out.
 */

#ifndef M2X_RUNTIME_SERVING_HH__
#define M2X_RUNTIME_SERVING_HH__

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/m2xfp.hh"
#include "model/config.hh"
#include "model/transformer.hh"
#include "runtime/inference_session.hh"
#include "runtime/kv_cache.hh"
#include "runtime/kv_page_arena.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/**
 * The AttentionBackend gluing TinyTransformer::forwardChunk to a set
 * of paged KvCaches. Two routing modes, reconfigured per forward
 * call by the single driving thread:
 *  - chunk: every row of the chunk belongs to ONE cache (a prefill)
 *    — append the whole chunk, then attend with the cache's internal
 *    parallelism (heads / query blocks over the pool);
 *  - rows: chunk row r belongs to rowCaches[r] (a ragged decode
 *    step) — fan the rows out over the pool, each lane appending +
 *    attending its own caches (nested attends run inline).
 *
 * DecodeSession and ServingEngine both drive this backend — the
 * fixed-batch session is literally the special case where the row
 * set never changes.
 */
class CacheAttendBackend : public model::AttentionBackend
{
  public:
    /**
     * @param pool lane source (null = the global pool)
     * @param attend_nanos accumulator for wall time spent in
     *        attend() (nullable)
     */
    CacheAttendBackend(ThreadPool *pool,
                       std::atomic<uint64_t> *attend_nanos)
        : pool_(pool), attendNanos_(attend_nanos)
    {}

    /** Route the next forward as a one-sequence prefill chunk. */
    void
    beginChunk(KvCache &cache)
    {
        chunk_ = &cache;
        rowCaches_ = {};
    }

    /**
     * Route the next forward as a ragged step: row r of the chunk
     * advances @p row_caches[r]. The span must stay valid through
     * the forwardChunk call.
     */
    void
    beginRows(std::span<KvCache *const> row_caches)
    {
        chunk_ = nullptr;
        rowCaches_ = row_caches;
    }

    Matrix attend(size_t layer, const Matrix &q, const Matrix &k,
                  const Matrix &v, std::span<const size_t> positions,
                  unsigned n_heads, unsigned n_kv_heads,
                  size_t window) override;

  private:
    ThreadPool *pool_;
    std::atomic<uint64_t> *attendNanos_;
    KvCache *chunk_ = nullptr;
    std::span<KvCache *const> rowCaches_{};
};

/**
 * Streamed-token callback: invoked once per generated token at
 * harvest time (request id, the token, and whether it is the
 * request's last). Runs on the engine's driving thread inside
 * step()/activate() — keep it cheap, and don't call back into the
 * engine from inside it.
 */
using TokenCallback =
    std::function<void(size_t req_id, int token, bool is_last)>;

/** ServingEngine construction knobs. */
struct ServingConfig
{
    /** Parallel lanes; 0 = the global pool. */
    unsigned threads = 0;
    /** Format configuration (must keep the paper packed layout). */
    M2xfpConfig format{};
    /** Kernel tier for every layer and the KV codec. */
    SimdIsa isa = activeSimdIsa();
    /** Resident representation of the KV pages. */
    KvCacheMode kvMode = KvCacheMode::Packed;
    /** Rows per KV page. */
    size_t pageRows = 16;
    /** Fixed arena capacity in pages (must be > 0). */
    size_t arenaPages = 4096;
    /** Scheduler cap on concurrently active sequences. */
    size_t maxBatch = 64;
    /**
     * Admission watermark: a request is admitted only if this
     * fraction of the arena would remain free afterwards, leaving
     * headroom for the active set's step-to-step page growth.
     */
    double admitFreeFraction = 0.05;
    /**
     * Packed stream codec for the linear layers and the packed KV
     * pages. Session-level default follows the M2X_FORMAT
     * environment override (see defaultPackedCodec()).
     */
    PackedCodec codec = defaultPackedCodec();
};

/** Where a request is in its lifecycle. */
enum class RequestState
{
    Queued,    //!< submitted, waiting for admission
    Active,    //!< holding pages, generating
    Preempted, //!< evicted under pressure, waiting to resume
    Finished,  //!< maxNewTokens generated, pages released
};

const char *requestStateName(RequestState s);

/** Per-request bookkeeping, readable any time via stats(). */
struct RequestStats
{
    RequestState state = RequestState::Queued;
    size_t promptTokens = 0;
    size_t maxNewTokens = 0;
    size_t generated = 0;
    size_t preemptions = 0;
    uint64_t submitNs = 0;     //!< submit() timestamp
    uint64_t firstTokenNs = 0; //!< first generated token (TTFT end)
    uint64_t finishNs = 0;

    double
    ttftSeconds() const
    {
        return firstTokenNs ? 1e-9 * static_cast<double>(
                                         firstTokenNs - submitNs)
                            : 0.0;
    }
};

/** A model serving a dynamic request stream over one page arena. */
class ServingEngine
{
  public:
    ServingEngine(const model::ModelConfig &model_cfg,
                  ServingConfig cfg);
    ~ServingEngine();

    /**
     * Enqueue a request: generate @p max_new_tokens greedily after
     * @p prompt. Returns the request id (dense, submission order).
     */
    size_t submit(std::vector<int> prompt, size_t max_new_tokens);

    /**
     * Install the streamed-token callback (nullable to clear).
     * Every token generated after this call — including each
     * request's TTFT token emitted during admission prefill — is
     * delivered as onToken(reqId, token, isLast) the moment it is
     * harvested, interleaved with preemption/resume exactly as the
     * scheduler sees it.
     */
    void onToken(TokenCallback cb) { tokenCb_ = std::move(cb); }

    /**
     * One scheduler iteration (admission, capacity check, batched
     * decode step). Returns false when the engine is idle — nothing
     * active and nothing waiting.
     */
    bool step();

    /** step() until idle; returns tokens generated by this call. */
    size_t runToCompletion();

    bool idle() const { return active_.empty() && waitingCount() == 0; }

    /** @{ Request introspection. */
    size_t requestCount() const { return reqs_.size(); }
    const RequestStats &stats(size_t id) const;
    /** Generated tokens so far (complete once state == Finished). */
    const std::vector<int> &generated(size_t id) const;
    /** @} */

    /** @{ Scheduler state. */
    size_t activeCount() const { return active_.size(); }
    size_t waitingCount() const
    {
        return queued_.size() + preempted_.size();
    }
    size_t finishedCount() const { return finished_; }
    size_t preemptionCount() const { return preemptions_; }
    const KvPageArena &arena() const { return arena_; }
    /** @} */

    /** @{
     * Latency series for bench reporting: seconds per generated
     * token (inter-token gaps; the first token of each request is
     * its TTFT and lands in ttfts() instead), in emission order.
     */
    const std::vector<double> &tokenLatencies() const
    {
        return tokenLat_;
    }
    const std::vector<double> &ttfts() const { return ttfts_; }
    /** @} */

    /** @{ Occupancy trace over the run (sampled once per step). */
    double occupancyPeak() const { return occPeak_; }
    double
    occupancyMean() const
    {
        return steps_ ? occSum_ / static_cast<double>(steps_) : 0.0;
    }
    size_t stepCount() const { return steps_; }
    /** @} */

    /** Wall time spent in the attention stage since construction. */
    double
    attendSeconds() const
    {
        return 1e-9 * static_cast<double>(attendNanos_.load());
    }

    KvCacheMode kvMode() const { return cfg_.kvMode; }
    SimdIsa simdIsa() const { return isa_; }
    PackedCodec codec() const { return cfg_.codec; }
    const model::TinyTransformer &model() const { return model_; }

  private:
    struct Request
    {
        std::vector<int> prompt;
        std::vector<int> out; //!< generated tokens (out.back() is
                              //!< the next token to feed)
        std::unique_ptr<KvCache> cache; //!< non-null while Active
        RequestStats st;
        uint64_t lastEmitNs = 0;
    };

    ThreadPool *pool() const { return ownedPool_.get(); }

    /** Admit/resume waiting requests while they fit. */
    void admit();
    /** Activate one request: build its cache, prefill its history. */
    void activate(size_t id);
    /** Preempt active sequences until the next step's pages fit. */
    void ensureStepCapacity();
    void finish(Request &r, uint64_t now);
    void updateGauges();

    ServingConfig cfg_;
    std::unique_ptr<ThreadPool> ownedPool_; //!< when threads != 0
    model::TinyTransformer model_;
    std::vector<std::shared_ptr<LayerStats>> stats_;
    SimdIsa isa_;
    KvPageArena arena_;
    CacheAttendBackend backend_;

    std::vector<Request> reqs_;
    std::deque<size_t> queued_;    //!< fresh, FCFS
    std::vector<size_t> preempted_; //!< kept sorted by id (FCFS)
    std::vector<size_t> active_;    //!< admission order
    size_t finished_ = 0;
    size_t preemptions_ = 0;

    TokenCallback tokenCb_;
    std::vector<double> tokenLat_;
    std::vector<double> ttfts_;
    double occPeak_ = 0.0;
    double occSum_ = 0.0;
    size_t steps_ = 0;
    std::atomic<uint64_t> attendNanos_{0};

    /** Per-step scratch (single driving thread). */
    std::vector<KvCache *> rowCaches_;
    std::vector<int> stepTokens_;
    std::vector<size_t> stepPositions_;
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_SERVING_HH__
