/**
 * @file
 * KvPageArena: the shared fixed-size-page allocator underneath every
 * KV cache of a decode or serving session.
 *
 * PR 5 gave each sequence its own growable packed streams; that shape
 * cannot serve sequences that are admitted and retired mid-flight,
 * because every retirement strands its high-water allocation inside
 * one sequence. The arena replaces the per-sequence tails with a
 * block allocator over fixed-size pages:
 *
 *  - A page holds up to pageRows() rows of ONE stream (the K or the
 *    V rows of one layer of one sequence). Packed mode stores a page
 *    as a small PackedM2xfpTensor (the three M2XFP byte streams,
 *    ~4.5 bits/element); Fp32 mode as a dense float block.
 *  - allocPage()/freePage() run a free-list: a freed page keeps its
 *    stream storage (capacity retained, rows cleared), so sequence
 *    churn re-fills recycled pages without growing the arena —
 *    highWaterPages() is the proof, it plateaus at the peak working
 *    set no matter how many sequences come and go.
 *  - Appends are page-granular and row-independent: the Elem-EM
 *    encoder packs each row on its own, so a page's packed bytes are
 *    byte-identical to the corresponding row slice of the one-shot
 *    packer (the PR 5 exactness contract survives paging), and fp32
 *    pages hold exactly the rows the bit-exact oracle reads.
 *
 * Capacity is fixed when cfg.capacityPages > 0 — allocPage() returns
 * kvInvalidPage on exhaustion, which the serving scheduler turns into
 * admission stalls and preemption — or elastic (capacityPages == 0)
 * for the fixed-batch DecodeSession special case, where the arena
 * grows on demand but still recycles through the free list.
 *
 * Thread-safety: allocPage/freePage and the accounting accessors are
 * safe from concurrent lanes (the decode step fans sequences out over
 * the pool and each lane appends to its own caches). Page *contents*
 * are single-owner: only the sequence holding a page id may append to
 * it, and readers may only walk ids they obtained before the current
 * parallel section (or allocated themselves). Page addresses are
 * stable for the arena's lifetime — storage lives behind a fixed
 * directory of lazily materialized chunks, never moved by growth.
 */

#ifndef M2X_RUNTIME_KV_PAGE_ARENA_HH__
#define M2X_RUNTIME_KV_PAGE_ARENA_HH__

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "runtime/simd.hh"

namespace m2x {
namespace runtime {

class ThreadPool;

/** Resident representation of the cached K/V rows. */
enum class KvCacheMode
{
    Fp32,   //!< dense fp32 rows: bit-exact oracle + baseline
    Packed, //!< packed M2XFP streams (~4.5 bits/element)
};

/** Display name ("fp32" / "packed"). */
const char *kvCacheModeName(KvCacheMode mode);

/** Index of one page inside its arena. */
using KvPageId = uint32_t;

/** allocPage() result when a bounded arena is exhausted. */
constexpr KvPageId kvInvalidPage = 0xffffffffu;

/** Arena geometry knobs. */
struct KvArenaConfig
{
    /** Rows per page (per layer per K/V stream). */
    size_t pageRows = 16;
    /**
     * Total pages. > 0 = fixed capacity (serving: exhaustion drives
     * admission stalls and preemption); 0 = elastic (DecodeSession:
     * grows on demand, still free-list recycled).
     */
    size_t capacityPages = 0;
    /**
     * Packed-mode stream codec. ElemEm keeps the per-ISA SIMD row
     * encoder (byte-exact legacy behavior); other codecs append
     * through their functional row encoders via the codec seam.
     */
    PackedCodec codec = PackedCodec::ElemEm;
};

/** The shared page pool all KvCaches of one session draw from. */
class KvPageArena
{
  public:
    /**
     * @param d_model row width of every page
     * @param mode    resident representation of the rows
     * @param fmt     packed-mode codec config (paper layout only)
     * @param isa     kernel tier for packed-mode encode
     * @param cfg     page geometry + capacity
     */
    KvPageArena(size_t d_model, KvCacheMode mode, M2xfpConfig fmt = {},
                SimdIsa isa = activeSimdIsa(), KvArenaConfig cfg = {});

    KvPageArena(const KvPageArena &) = delete;
    KvPageArena &operator=(const KvPageArena &) = delete;

    KvCacheMode mode() const { return mode_; }
    size_t dModel() const { return dModel_; }
    SimdIsa simdIsa() const { return isa_; }
    size_t pageRows() const { return pageRows_; }
    size_t groupsPerRow() const { return groupsPerRow_; }

    /** Packed-mode stream codec of every page. */
    PackedCodec codec() const { return codec_; }

    /** Fixed page budget; 0 = elastic. */
    size_t capacityPages() const { return capacityPages_; }

    /**
     * Claim a page (recycled from the free list when possible).
     * Returns kvInvalidPage when a bounded arena is exhausted.
     */
    KvPageId allocPage();

    /**
     * Return a page to the free list. Its rows are cleared but its
     * stream storage is retained for the next owner.
     */
    void freePage(KvPageId id);

    /** @{ Occupancy accounting (safe from concurrent lanes). */
    size_t livePages() const;
    size_t freePages() const; //!< bounded: capacity - live; else SIZE_MAX
    size_t highWaterPages() const; //!< page slots ever materialized
    /**
     * live / capacity for a bounded arena; live / high-water for an
     * elastic one (0 while nothing is materialized).
     */
    double occupancy() const;
    /** @} */

    /** Resident bytes of one full page (one stream, pageRows rows). */
    size_t pageBytes() const;

    /** Resident bytes of all materialized pages (used or free). */
    size_t residentBytes() const { return highWaterPages() * pageBytes(); }

    /**
     * Bytes one full page would occupy if its rows were dense fp32 —
     * the denominator of the packed-arena concurrency multiplier.
     */
    size_t fp32PageBytes() const
    {
        return pageRows_ * dModel_ * sizeof(float);
    }

    /**
     * Encode-and-append @p n row-major rows (dModel() floats each)
     * onto page @p id. The caller owns the page and must leave room:
     * pageUsed(id) + n <= pageRows(). Packed mode runs the fast-path
     * Elem-EM encoder on this arena's ISA tier; multi-row appends
     * distribute over @p pool (null = the global pool).
     */
    void appendRows(KvPageId id, const float *rows, size_t n,
                    ThreadPool *pool = nullptr);

    /** Rows currently stored in page @p id. */
    size_t pageUsed(KvPageId id) const { return page(id).used; }

    /** Dense rows of an Fp32-mode page (row-major, pageRows max). */
    const float *fp32Rows(KvPageId id) const;

    /** Packed streams of a Packed-mode page (rows() == pageUsed). */
    const PackedM2xfpTensor &packedPage(KvPageId id) const;

    /** Pages needed to store @p rows rows of one stream. */
    static size_t pagesForRows(size_t rows, size_t page_rows)
    {
        return (rows + page_rows - 1) / page_rows;
    }

  private:
    /**
     * One page slot. `used` counts appended rows; exactly one of the
     * two storages is populated, per the arena mode.
     */
    struct Page
    {
        size_t used = 0;
        std::vector<float> f32;
        PackedM2xfpTensor packed;
    };

    /**
     * Pages live in fixed-size chunks behind a directory sized at
     * construction, so growth never moves existing pages and readers
     * can walk page ids without taking the allocator mutex.
     */
    static constexpr size_t chunkPages = 64;

    Page &page(KvPageId id);
    const Page &page(KvPageId id) const;

    KvCacheMode mode_;
    size_t dModel_;
    SimdIsa isa_;
    size_t pageRows_;
    size_t capacityPages_;
    PackedCodec codec_;
    size_t groupsPerRow_;
    ElemEmQuantizer actQ_; //!< packed-mode elem_em row codec

    mutable std::mutex mu_;
    std::vector<std::unique_ptr<Page[]>> chunks_; //!< fixed-size dir
    std::vector<KvPageId> freeList_;
    size_t nextId_ = 0; //!< == highWaterPages()
    size_t live_ = 0;
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_PAGE_ARENA_HH__
