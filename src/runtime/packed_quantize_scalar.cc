/**
 * @file
 * Scalar tier of the fast-path activation encoder — the portable,
 * allocation-free oracle reproducing ElemEmQuantizer::encodeGroup
 * byte for byte. Every tier (including this one) is verified against
 * the functional codec by tests/runtime/packed_quantize_test.cc; the
 * scalar tier additionally serves as the reference the AVX2 tier is
 * swept against on machines where both run.
 */

#include <algorithm>
#include <cstring>

#include "runtime/packed_quantize.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t subgroupSize = PackedM2xfpTensor::subgroupSize;
constexpr size_t nSubgroups = groupSize / subgroupSize;

} // anonymous namespace

void
encodeActivationGroupScalar(const float *in, ScaleRule rule,
                            uint8_t *elems, uint8_t *scale,
                            uint8_t *meta)
{
    // Step 1: shared scale from the block max. std::max ignores NaN
    // elements (the comparison is false), matching absMax().
    float amax = 0.0f;
    for (size_t i = 0; i < groupSize; ++i)
        amax = std::max(amax, std::fabs(in[i]));
    ScaleE8m0 s =
        computeSharedScale(amax, Minifloat::fp4e2m1(), rule);
    *scale = s.code();
    float inv = s.inverse();

    // Step 2: FP4 codes for every element, packed two per byte.
    uint8_t codes[groupSize];
    for (size_t i = 0; i < groupSize; ++i)
        codes[i] = static_cast<uint8_t>(fp4CodeRne(in[i] * inv));
    for (size_t j = 0; j < groupSize / 2; ++j)
        elems[j] = static_cast<uint8_t>(codes[2 * j] |
                                        (codes[2 * j + 1] << 4));

    // Steps 3-7: per-subgroup top-1 (strict compare, ties to the
    // lowest index), FP6 re-round of the original value, 2-bit
    // clamped-bias metadata.
    uint8_t mb = 0;
    for (size_t sg = 0; sg < nSubgroups; ++sg) {
        const uint8_t *sc = codes + sg * subgroupSize;
        size_t best = 0;
        uint32_t best_mag = sc[0] & 0x7u;
        for (size_t i = 1; i < subgroupSize; ++i) {
            uint32_t m = sc[i] & 0x7u;
            if (m > best_mag) {
                best_mag = m;
                best = i;
            }
        }
        float a6 = std::fabs(in[sg * subgroupSize + best]) * inv;
        uint32_t mag6 = fp6MagRne(a6);
        mb = static_cast<uint8_t>(
            mb | ((ElemEmQuantizer::encodeMeta(mag6, best_mag) & 0x3u)
                  << (2 * sg)));
    }
    *meta = mb;
}

void
quantizeActivationRowScalar(const float *src, size_t cols,
                            ScaleRule rule, uint8_t *elems,
                            uint8_t *scales, uint8_t *meta)
{
    constexpr size_t bpg = PackedM2xfpTensor::bytesPerGroupElems;
    size_t g = 0;
    for (; (g + 1) * groupSize <= cols; ++g)
        encodeActivationGroupScalar(src + g * groupSize, rule,
                                    elems + g * bpg, scales + g,
                                    meta + g);
    if (g * groupSize < cols) {
        // Tail group: zero-pad to the full group, exactly like the
        // functional packer.
        float padded[groupSize] = {};
        std::memcpy(padded, src + g * groupSize,
                    (cols - g * groupSize) * sizeof(float));
        encodeActivationGroupScalar(padded, rule, elems + g * bpg,
                                    scales + g, meta + g);
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
