/**
 * @file
 * AVX2 tier of the fast-path activation encoder.
 *
 * Unlike the GEMM tiers, this kernel is held to the *byte-exact*
 * contract: encoding is elementwise (no reassociated accumulation),
 * so every vector step below reproduces the scalar oracle exactly.
 *
 *   absmax   — abs-mask + lanewise max; _mm256_max_ps(v, acc)
 *              returns acc when v is NaN, matching std::max's
 *              NaN-ignoring fold in absMax().
 *   FP4 RNE  — the threshold ladder of fp4CodeRne() as seven
 *              ordered-quiet compares (GT/GE picked per tie so ties
 *              land on the even code); mask subtraction accumulates
 *              the magnitude, the sign bit is shifted down from the
 *              scaled float, NaN lanes blend to code 7.
 *   top-1    — per subgroup (one 8-lane vector) the key
 *              (mag << 3) | (7 - lane) makes a single horizontal
 *              max yield the strict-greater, ties-to-lowest-index
 *              argmax the decoder recomputes.
 *   pack     — two packus stages + a cross-lane permute restore
 *              element order, then nibble merge in 16-bit lanes.
 *
 * The per-group shared scale (any ScaleRule) and the 4-per-group FP6
 * re-rounds stay scalar — they are O(groups), not O(elements).
 *
 * This translation unit is compiled with -mavx2 -mfma and must only
 * be entered through the runtime dispatch (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "runtime/packed_quantize.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t subgroupSize = PackedM2xfpTensor::subgroupSize;
constexpr size_t nSubgroups = groupSize / subgroupSize;

/**
 * FP4 codes of 8 scaled elements, one per 32-bit lane. Bit-identical
 * to fp4CodeRne() lane by lane.
 */
inline __m256i
fp4Codes8(__m256 x)
{
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 a = _mm256_and_ps(x, absmask);
    __m256i mag = _mm256_setzero_si256();
    auto step = [&](float thr, int op) {
        __m256 m = (op == _CMP_GT_OQ)
                       ? _mm256_cmp_ps(a, _mm256_set1_ps(thr),
                                       _CMP_GT_OQ)
                       : _mm256_cmp_ps(a, _mm256_set1_ps(thr),
                                       _CMP_GE_OQ);
        mag = _mm256_sub_epi32(mag, _mm256_castps_si256(m));
    };
    step(0.25f, _CMP_GT_OQ);
    step(0.75f, _CMP_GE_OQ);
    step(1.25f, _CMP_GT_OQ);
    step(1.75f, _CMP_GE_OQ);
    step(2.5f, _CMP_GT_OQ);
    step(3.5f, _CMP_GE_OQ);
    step(5.0f, _CMP_GT_OQ);
    __m256i sign = _mm256_and_si256(
        _mm256_srli_epi32(_mm256_castps_si256(x), 28),
        _mm256_set1_epi32(8));
    __m256i code = _mm256_or_si256(sign, mag);
    // NaN lanes (all ordered compares false, sign whatever the NaN
    // carries) must match the scalar convention: +max, code 7.
    __m256i nan =
        _mm256_castps_si256(_mm256_cmp_ps(x, x, _CMP_UNORD_Q));
    return _mm256_blendv_epi8(code, _mm256_set1_epi32(7), nan);
}

} // anonymous namespace

void
encodeActivationGroupAvx2(const float *in, ScaleRule rule,
                          uint8_t *elems, uint8_t *scale,
                          uint8_t *meta)
{
    const __m256 absmask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));

    // Step 1: block absmax. NaN lanes never enter the accumulator
    // (max_ps returns the second operand when the first is NaN), so
    // the fold matches absMax()'s std::max semantics.
    __m256 v[4];
    __m256 acc = _mm256_setzero_ps();
    for (size_t i = 0; i < 4; ++i) {
        v[i] = _mm256_loadu_ps(in + 8 * i);
        acc = _mm256_max_ps(_mm256_and_ps(v[i], absmask), acc);
    }
    __m128 m4 = _mm_max_ps(_mm256_castps256_ps128(acc),
                           _mm256_extractf128_ps(acc, 1));
    m4 = _mm_max_ps(m4, _mm_movehl_ps(m4, m4));
    m4 = _mm_max_ss(m4, _mm_movehdup_ps(m4));
    float amax = _mm_cvtss_f32(m4);

    ScaleE8m0 s =
        computeSharedScale(amax, Minifloat::fp4e2m1(), rule);
    *scale = s.code();
    float inv = s.inverse();
    __m256 vinv = _mm256_set1_ps(inv);

    // Step 2: FP4 codes, 8 per vector (vector i == subgroup i).
    __m256i codes[nSubgroups];
    for (size_t i = 0; i < nSubgroups; ++i)
        codes[i] = fp4Codes8(_mm256_mul_ps(v[i], vinv));

    // Steps 3-7: top-1 per subgroup via one horizontal max over
    // (mag << 3) | (7 - lane): larger magnitude wins, equal
    // magnitude prefers the lower lane — the decoder's exact rule.
    const __m256i revlane =
        _mm256_set_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    uint8_t mb = 0;
    for (size_t sg = 0; sg < nSubgroups; ++sg) {
        __m256i mag =
            _mm256_and_si256(codes[sg], _mm256_set1_epi32(7));
        __m256i key = _mm256_or_si256(_mm256_slli_epi32(mag, 3),
                                      revlane);
        __m128i k = _mm_max_epi32(_mm256_castsi256_si128(key),
                                  _mm256_extracti128_si256(key, 1));
        k = _mm_max_epi32(
            k, _mm_shuffle_epi32(k, _MM_SHUFFLE(1, 0, 3, 2)));
        k = _mm_max_epi32(
            k, _mm_shuffle_epi32(k, _MM_SHUFFLE(2, 3, 0, 1)));
        uint32_t best = static_cast<uint32_t>(_mm_cvtsi128_si32(k));
        size_t idx = 7u - (best & 0x7u);
        uint32_t mag4 = best >> 3;
        float a6 =
            std::fabs(in[sg * subgroupSize + idx]) * inv;
        uint32_t mag6 = fp6MagRne(a6);
        mb = static_cast<uint8_t>(
            mb | ((ElemEmQuantizer::encodeMeta(mag6, mag4) & 0x3u)
                  << (2 * sg)));
    }
    *meta = mb;

    // Nibble pack: 4x8 dword codes -> 32 ordered byte codes -> 16
    // packed bytes (even element in the low nibble).
    __m256i p01 = _mm256_packus_epi32(codes[0], codes[1]);
    __m256i p23 = _mm256_packus_epi32(codes[2], codes[3]);
    __m256i p = _mm256_packus_epi16(p01, p23);
    // Dwords now hold [c0:0-3, c1:0-3, c2:0-3, c3:0-3, c0:4-7, ...];
    // restore element order.
    p = _mm256_permutevar8x32_epi32(
        p, _mm256_set_epi32(7, 3, 6, 2, 5, 1, 4, 0));
    __m256i even =
        _mm256_and_si256(p, _mm256_set1_epi16(0x00ff));
    __m256i odd = _mm256_srli_epi16(p, 8);
    __m256i byte16 =
        _mm256_or_si256(even, _mm256_slli_epi16(odd, 4));
    const __m256i take_even = _mm256_setr_epi8(
        0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1,
        0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1);
    __m256i packed = _mm256_shuffle_epi8(byte16, take_even);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(elems),
                     _mm256_castsi256_si128(packed));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(elems + 8),
                     _mm256_extracti128_si256(packed, 1));
}

void
quantizeActivationRowAvx2(const float *src, size_t cols,
                          ScaleRule rule, uint8_t *elems,
                          uint8_t *scales, uint8_t *meta)
{
    constexpr size_t bpg = PackedM2xfpTensor::bytesPerGroupElems;
    size_t g = 0;
    for (; (g + 1) * groupSize <= cols; ++g)
        encodeActivationGroupAvx2(src + g * groupSize, rule,
                                  elems + g * bpg, scales + g,
                                  meta + g);
    if (g * groupSize < cols) {
        alignas(32) float padded[groupSize] = {};
        std::memcpy(padded, src + g * groupSize,
                    (cols - g * groupSize) * sizeof(float));
        encodeActivationGroupAvx2(padded, rule, elems + g * bpg,
                                  scales + g, meta + g);
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
