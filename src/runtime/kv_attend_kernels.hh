/**
 * @file
 * Internal per-ISA kernel table for the packed KV-cache attention
 * (runtime/kv_cache).
 *
 * The blocked online-softmax attend spends its time in three
 * primitives per cached row: the per-head score dot q_h · k_h, the
 * exponential weighting p_r = exp(s_r - m) of one head's page-local
 * scores against the running max, and the per-head value
 * accumulation acc_h += p_h * v_h. Dots and accumulations run in
 * double precision — the scalar tier with independent plain-C
 * chains, the AVX2+FMA tier with 4-wide and the AVX-512 tier with
 * 8-wide double FMA vectors — so the difference vs the oracle's
 * single ascending chain stays at double-ulp level (~1e-16
 * relative). The exponential is the one place the tiers genuinely
 * diverge: the scalar tier calls the libm double exp (the numerics
 * oracle), the vector tiers run a polynomial float exp (Cephes
 * expf ported to 8/16-wide SIMD, ~2 float-ulp), which lands within
 * the packed model tolerance (1e-5) but not bitwise — which is why
 * the fp32 bit-exact path never calls expWeights.
 *
 * The flash attend drives the three of them through page-granular
 * batch entry points — decodeRows / scorePage / accumPage — one
 * call per (query, page) instead of one per cached row, so the
 * per-row cost is pure kernel arithmetic: no indirect calls, no
 * head-major scatter/gather staging, and the value accumulator
 * stays register-resident across the page. decodeRows is the page
 * form of the packed GEMM's decodeActivationRow
 * (packed_gemm_kernels.hh) — same streams, bit-identical floats;
 * the AVX-512 tier decodes a whole 32-element group per pair of
 * 16-lane table permutes instead of the 8-wide AVX2 scheme, which
 * is what makes long-context attend decode-bound rather than
 * overhead-bound. The per-row primitives remain — the legacy
 * (pre-flash) attend paths and the kernel parity tests call them
 * directly.
 *
 * Grouped-query attention threads through as @p group: query head h
 * reads K/V head h / group, so a K/V row carries n_heads / group
 * head slices. group == 1 is classic MHA.
 *
 * Not installed API — tests include it for direct kernel access.
 */

#ifndef M2X_RUNTIME_KV_ATTEND_KERNELS_HH__
#define M2X_RUNTIME_KV_ATTEND_KERNELS_HH__

#include <cstddef>

#include "runtime/kv_page_arena.hh"
#include "runtime/simd.hh"

namespace m2x {
namespace runtime {
namespace detail {

/**
 * Read-only view of one paged K or V stream: resolves absolute cache
 * row j to its page (j / pageRows) and local row (j % pageRows), so
 * the attend loops walk page tables instead of contiguous streams.
 * The view captures raw pointers — valid only while the owning cache
 * neither appends to this layer nor releases (the attend contract).
 */
struct PagedKvView
{
    const KvPageArena *arena;
    const KvPageId *table;

    /** Dense row j of an Fp32-mode stream. */
    const float *
    fp32Row(size_t j) const
    {
        size_t pr = arena->pageRows();
        return arena->fp32Rows(table[j / pr]) +
               (j % pr) * arena->dModel();
    }

    /** Packed page holding row j; @p local gets the in-page row. */
    const PackedM2xfpTensor &
    packedOf(size_t j, size_t &local) const
    {
        size_t pr = arena->pageRows();
        local = j % pr;
        return arena->packedPage(table[j / pr]);
    }
};

/**
 * Per-head score dots of one query row against one decoded cache
 * row: out[h] = sum_c q[h*hd + c] * row[(h/group)*hd + c] (double
 * accumulation, result still in double — the caller applies the
 * float cast and 1/sqrt(hd) scaling in the oracle's order).
 */
using DotHeadsFn = void (*)(const float *q, const float *row,
                            size_t hd, unsigned n_heads,
                            unsigned group, double *out);

/**
 * Per-head value accumulation of one decoded cache row:
 * acc[h*hd + c] += p[h] * row[(h/group)*hd + c] for every head and
 * channel, each channel's chain staying in ascending-row order
 * across calls.
 */
using AccumHeadsFn = void (*)(const double *p, const float *row,
                              size_t hd, unsigned n_heads,
                              unsigned group, double *acc);

/**
 * Exponential weights of one head's page-local scores against the
 * (already updated) running max: p[r] = exp(s[r] - m) for r in
 * [0, n). Every s[r] <= m by construction, so the result is in
 * (0, 1]. Scalar tier: libm double exp. Vector tiers: polynomial
 * float exp, widened back to double.
 */
using ExpWeightsFn = void (*)(const double *s, double m, size_t n,
                              double *p);

/**
 * Decode @p n_rows consecutive rows of one packed page into a dense
 * float slab: row local @p row0 + r lands at out + r * stride
 * (stride >= groupsPerRow * 32 — tail-group padding included, like
 * decodeActivationRow). Bit-identical to the scalar LUT decode on
 * every tier.
 */
using DecodeRowsFn = void (*)(const PackedM2xfpTensor &t, size_t row0,
                              size_t n_rows, size_t stride,
                              float *out);

/**
 * Score one query row against a decoded page slab: for every head,
 * scores[h * s_stride + r] = (q_h · rows_r,h) * inv_sqrt for r in
 * [0, n_rows), and smax[h] = max_r of that head's page scores. Dots
 * accumulate in double with the same chain structure as DotHeadsFn,
 * so per-score results are bit-identical to the per-row primitive.
 */
using ScorePageFn = void (*)(const float *q, const float *rows,
                             size_t stride, size_t n_rows, size_t hd,
                             unsigned n_heads, unsigned group,
                             double inv_sqrt, double *scores,
                             size_t s_stride, double *smax);

/**
 * Accumulate one query's weighted page values: acc[h*hd + c] +=
 * sum_r w[h * w_stride + r] * rows[r * stride + (h/group)*hd + c],
 * each channel's additions in ascending-row order — bit-identical
 * to calling AccumHeadsFn per ascending row, but with the
 * accumulator held in registers across the page.
 */
using AccumPageFn = void (*)(const double *w, size_t w_stride,
                             const float *rows, size_t stride,
                             size_t n_rows, size_t hd,
                             unsigned n_heads, unsigned group,
                             double *acc);

/** The per-ISA primitive set used by KvCache::attend. */
struct AttendKernels
{
    DotHeadsFn dotHeads;
    AccumHeadsFn accumHeads;
    ExpWeightsFn expWeights;
    DecodeRowsFn decodeRows;
    ScorePageFn scorePage;
    AccumPageFn accumPage;
};

/**
 * Kernel table for @p isa. Asking for a tier that is not compiled in
 * returns the scalar table (callers guard with simdIsaAvailable).
 */
const AttendKernels &attendKernels(SimdIsa isa);

/** @{ Scalar tier: independent plain-C chains, libm double exp. */
void dotHeadsScalar(const float *q, const float *row, size_t hd,
                    unsigned n_heads, unsigned group, double *out);
void accumHeadsScalar(const double *p, const float *row, size_t hd,
                      unsigned n_heads, unsigned group, double *acc);
void expWeightsScalar(const double *s, double m, size_t n,
                      double *p);
void decodeRowsScalar(const PackedM2xfpTensor &t, size_t row0,
                      size_t n_rows, size_t stride, float *out);
void scorePageScalar(const float *q, const float *rows,
                     size_t stride, size_t n_rows, size_t hd,
                     unsigned n_heads, unsigned group,
                     double inv_sqrt, double *scores,
                     size_t s_stride, double *smax);
void accumPageScalar(const double *w, size_t w_stride,
                     const float *rows, size_t stride, size_t n_rows,
                     size_t hd, unsigned n_heads, unsigned group,
                     double *acc);
/** @} */

#ifdef M2X_HAVE_AVX2
/** @{ AVX2+FMA tier: 4-wide double FMA chains, 8-wide float exp. */
void dotHeadsAvx2(const float *q, const float *row, size_t hd,
                  unsigned n_heads, unsigned group, double *out);
void accumHeadsAvx2(const double *p, const float *row, size_t hd,
                    unsigned n_heads, unsigned group, double *acc);
void expWeightsAvx2(const double *s, double m, size_t n, double *p);
void decodeRowsAvx2(const PackedM2xfpTensor &t, size_t row0,
                    size_t n_rows, size_t stride, float *out);
void scorePageAvx2(const float *q, const float *rows, size_t stride,
                   size_t n_rows, size_t hd, unsigned n_heads,
                   unsigned group, double inv_sqrt, double *scores,
                   size_t s_stride, double *smax);
void accumPageAvx2(const double *w, size_t w_stride,
                   const float *rows, size_t stride, size_t n_rows,
                   size_t hd, unsigned n_heads, unsigned group,
                   double *acc);
/** @} */
#endif // M2X_HAVE_AVX2

#ifdef M2X_HAVE_AVX512
/** @{ AVX-512 tier: 8-wide double FMA chains, 16-wide float exp,
 * whole-group table-permute page decode. */
void dotHeadsAvx512(const float *q, const float *row, size_t hd,
                    unsigned n_heads, unsigned group, double *out);
void accumHeadsAvx512(const double *p, const float *row, size_t hd,
                      unsigned n_heads, unsigned group, double *acc);
void expWeightsAvx512(const double *s, double m, size_t n,
                      double *p);
void decodeRowsAvx512(const PackedM2xfpTensor &t, size_t row0,
                      size_t n_rows, size_t stride, float *out);
void scorePageAvx512(const float *q, const float *rows,
                     size_t stride, size_t n_rows, size_t hd,
                     unsigned n_heads, unsigned group,
                     double inv_sqrt, double *scores,
                     size_t s_stride, double *smax);
void accumPageAvx512(const double *w, size_t w_stride,
                     const float *rows, size_t stride, size_t n_rows,
                     size_t hd, unsigned n_heads, unsigned group,
                     double *acc);
/** @} */
#endif // M2X_HAVE_AVX512

} // namespace detail
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_ATTEND_KERNELS_HH__
