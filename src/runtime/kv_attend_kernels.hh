/**
 * @file
 * Internal per-ISA kernel table for the packed KV-cache attention
 * (runtime/kv_cache).
 *
 * The blocked attend kernel spends its time in two primitives per
 * cached row: the per-head score dot q_h · k_h and the per-head
 * value accumulation acc_h += p_h * v_h. Both accumulate in double
 * precision — the scalar tier with independent plain-C chains, the
 * AVX2+FMA tier with 4-wide double FMA vectors — so the difference
 * vs the oracle's single ascending chain stays at double-ulp level
 * (~1e-16 relative), far below the float rounding of the stored
 * score, and the model-level tolerance contract (1e-5) is never
 * stressed. Row decode itself is shared with the packed GEMM
 * (packed_gemm_kernels.hh decodeActivationRow).
 *
 * Not installed API — tests include it for direct kernel access.
 */

#ifndef M2X_RUNTIME_KV_ATTEND_KERNELS_HH__
#define M2X_RUNTIME_KV_ATTEND_KERNELS_HH__

#include <cstddef>

#include "runtime/kv_page_arena.hh"
#include "runtime/simd.hh"

namespace m2x {
namespace runtime {
namespace detail {

/**
 * Read-only view of one paged K or V stream: resolves absolute cache
 * row j to its page (j / pageRows) and local row (j % pageRows), so
 * the attend loops walk page tables instead of contiguous streams.
 * The view captures raw pointers — valid only while the owning cache
 * neither appends to this layer nor releases (the attend contract).
 */
struct PagedKvView
{
    const KvPageArena *arena;
    const KvPageId *table;

    /** Dense row j of an Fp32-mode stream. */
    const float *
    fp32Row(size_t j) const
    {
        size_t pr = arena->pageRows();
        return arena->fp32Rows(table[j / pr]) +
               (j % pr) * arena->dModel();
    }

    /** Packed page holding row j; @p local gets the in-page row. */
    const PackedM2xfpTensor &
    packedOf(size_t j, size_t &local) const
    {
        size_t pr = arena->pageRows();
        local = j % pr;
        return arena->packedPage(table[j / pr]);
    }
};

/**
 * Per-head score dots of one query row against one decoded cache
 * row: out[h] = sum_c q[h*hd + c] * row[h*hd + c] (double
 * accumulation, result still in double — the caller applies the
 * float cast and 1/sqrt(hd) scaling in the oracle's order).
 */
using DotHeadsFn = void (*)(const float *q, const float *row,
                            size_t hd, unsigned n_heads,
                            double *out);

/**
 * Per-head value accumulation of one decoded cache row:
 * acc[h*hd + c] += p[h] * row[h*hd + c] for every head and channel,
 * each channel's chain staying in ascending-row order across calls.
 */
using AccumHeadsFn = void (*)(const double *p, const float *row,
                              size_t hd, unsigned n_heads,
                              double *acc);

/** The per-ISA primitive set used by KvCache::attend. */
struct AttendKernels
{
    DotHeadsFn dotHeads;
    AccumHeadsFn accumHeads;
};

/**
 * Kernel table for @p isa. Asking for a tier that is not compiled in
 * returns the scalar table (callers guard with simdIsaAvailable).
 */
const AttendKernels &attendKernels(SimdIsa isa);

/** @{ Scalar tier: independent plain-C accumulation chains. */
void dotHeadsScalar(const float *q, const float *row, size_t hd,
                    unsigned n_heads, double *out);
void accumHeadsScalar(const double *p, const float *row, size_t hd,
                      unsigned n_heads, double *acc);
/** @} */

#ifdef M2X_HAVE_AVX2
/** @{ AVX2+FMA tier: 4-wide double FMA chains. */
void dotHeadsAvx2(const float *q, const float *row, size_t hd,
                  unsigned n_heads, double *out);
void accumHeadsAvx2(const double *p, const float *row, size_t hd,
                    unsigned n_heads, double *acc);
/** @} */
#endif // M2X_HAVE_AVX2

#ifdef M2X_HAVE_AVX512
/** @{ AVX-512 tier: 8-wide double FMA chains. */
void dotHeadsAvx512(const float *q, const float *row, size_t hd,
                    unsigned n_heads, double *out);
void accumHeadsAvx512(const double *p, const float *row, size_t hd,
                      unsigned n_heads, double *acc);
/** @} */
#endif // M2X_HAVE_AVX512

} // namespace detail
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_KV_ATTEND_KERNELS_HH__
