/**
 * @file
 * SIMD capability probe and one-time kernel-tier dispatch for the
 * packed-domain execution runtime.
 *
 * The runtime carries one microkernel implementation per ISA tier:
 * a portable scalar tier that is the bit-exact oracle (identical to
 * matmulNt over the unpacked operands), an AVX2+FMA tier, and an
 * AVX-512 tier (F+BW) whose LUT decode and accumulation are
 * vectorized (verified against the scalar tier to tight tolerance,
 * since vector accumulation changes the summation order). The tier
 * is chosen once per process, from cpuid, and can be pinned with the
 * M2X_SIMD environment variable:
 *
 *   M2X_SIMD=scalar   force the scalar fallback
 *   M2X_SIMD=avx2     force AVX2 (warns and falls back to the best
 *                     remaining tier if the CPU or build cannot run
 *                     it)
 *   M2X_SIMD=avx512   force AVX-512 (same graceful downgrade)
 *   M2X_SIMD=auto     (or unset) best tier the machine supports
 *
 * Code that wants a specific tier regardless of the environment
 * (tests, the per-ISA bench comparison) passes a SimdIsa explicitly
 * to the packedMatmulNt / PackedLinear overloads instead.
 */

#ifndef M2X_RUNTIME_SIMD_HH__
#define M2X_RUNTIME_SIMD_HH__

#include <vector>

namespace m2x {
namespace runtime {

/** Kernel tiers, in increasing preference order. */
enum class SimdIsa {
    Scalar, //!< portable fallback; bit-exact GEMM oracle
    Avx2,   //!< AVX2+FMA microkernels (x86-64)
    Avx512, //!< AVX-512 F+BW microkernels (x86-64)
};

/** Stable lowercase name ("scalar", "avx2", "avx512") for logs and
 *  JSON. */
const char *simdIsaName(SimdIsa isa);

/** True when the tier is compiled in AND this CPU can run it. */
bool simdIsaAvailable(SimdIsa isa);

/** Every available tier, scalar first. */
std::vector<SimdIsa> supportedSimdIsas();

/**
 * The process-wide dispatch decision, resolved once on first call:
 * the M2X_SIMD override if set, else the best available tier.
 */
SimdIsa activeSimdIsa();

/** simdIsaName(activeSimdIsa()). */
const char *activeSimdIsaName();

/**
 * The kernel tier the *activation encoder* should run at when the
 * surrounding computation runs at @p isa. On the measured hosts the
 * AVX-512 encoder (vpmovdb pack path) trails the AVX2 one — narrow
 * stores dominate and the wider lanes don't pay — so an Avx512
 * request is demoted to Avx2 for the encode stage only; GEMM and
 * attend keep their full tier. The byte-exactness contract between
 * encoder tiers makes the demotion numerically invisible.
 *
 * Overridable with M2X_SIMD_ENCODE (scalar|avx2|avx512|auto, same
 * availability fallbacks as M2X_SIMD; auto/unset = the demotion
 * policy above) — the knob the encoder bench uses to measure the
 * tiers honestly. Resolved once per process.
 */
SimdIsa encodeSimdIsa(SimdIsa isa);

namespace detail {

/**
 * Pure resolution of an M2X_SIMD value (nullptr = unset) to a tier;
 * exposed so tests can cover the parsing without re-execing.
 */
SimdIsa resolveSimdIsa(const char *env);

/**
 * Pure resolution of an M2X_SIMD_ENCODE value for a computation
 * running at @p isa (nullptr/"auto" = demote Avx512 to Avx2 when
 * available); exposed for the same reason.
 */
SimdIsa resolveEncodeSimdIsa(const char *env, SimdIsa isa);

} // namespace detail

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_SIMD_HH__
