#include "runtime/inference_session.hh"

#include "runtime/packed_linear.hh"
#include "runtime/telemetry.hh"

namespace m2x {
namespace runtime {

namespace {

/** Cached session metric handle (null while metrics off). */
std::atomic<telemetry::Histogram *> sessionForwardSlot{nullptr};

/**
 * Shim recording wall time, the quantize/GEMM phase split and row
 * counts around a PackedLinear. The per-layer Workspace persists
 * across calls so the encode side of the steady-state forward is
 * allocation-free on the expected single-serving-thread path; a
 * concurrent forward on the same layer (the old stateless shim
 * allowed it, so it must stay correct) simply fails to claim the
 * workspace and pays one per-call scratch allocation instead. The
 * into-style forwardInto() is the primary entry point — the model
 * routes through it with per-slot reused outputs, so the
 * steady-state forward performs no output allocation either;
 * forward() wraps it for return-by-value callers.
 */
class TimedLinear : public LinearOp
{
  public:
    TimedLinear(std::unique_ptr<PackedLinear> inner,
                std::shared_ptr<LayerStats> stats)
        : inner_(std::move(inner)), stats_(std::move(stats))
    {}

    Matrix
    forward(const Matrix &x) const override
    {
        Matrix y;
        forwardInto(x, y);
        return y;
    }

    void
    forwardInto(const Matrix &x, Matrix &y) const override
    {
        ForwardBreakdown bd;
        telemetry::TraceSpan span("linear.forward");
        if (span.active()) {
            span.arg("layer", stats_->name.c_str());
            span.arg("rows", x.rows());
        }
        uint64_t t0 = telemetry::nowNanos();
        // Claim the shared workspace; a concurrent forward on the
        // same layer (legal — the pre-workspace shim was stateless)
        // falls back to per-call scratch rather than racing.
        struct Release
        {
            std::atomic<bool> *flag;
            ~Release()
            {
                if (flag)
                    flag->store(false, std::memory_order_release);
            }
        } release{nullptr};
        if (!busy_.exchange(true, std::memory_order_acquire)) {
            release.flag = &busy_;
            inner_->forward(x, y, &ws_, &bd);
        } else {
            inner_->forward(x, y, nullptr, &bd);
        }
        stats_->calls.fetch_add(1, std::memory_order_relaxed);
        stats_->rows.fetch_add(x.rows(), std::memory_order_relaxed);
        stats_->nanos.fetch_add(telemetry::nowNanos() - t0,
                                std::memory_order_relaxed);
        stats_->quantizeNanos.fetch_add(bd.quantizeNanos,
                                        std::memory_order_relaxed);
        stats_->gemmNanos.fetch_add(bd.gemmNanos,
                                    std::memory_order_relaxed);
    }

    size_t inFeatures() const override { return inner_->inFeatures(); }
    size_t outFeatures() const override
    {
        return inner_->outFeatures();
    }

  private:
    std::unique_ptr<PackedLinear> inner_;
    std::shared_ptr<LayerStats> stats_;
    mutable PackedLinear::Workspace ws_;
    mutable std::atomic<bool> busy_{false};
};

} // anonymous namespace

model::LinearFactory
packedLinearFactory(M2xfpConfig cfg, ThreadPool *pool,
                    std::vector<std::shared_ptr<LayerStats>> *stats,
                    SimdIsa isa, PackedCodec codec)
{
    return [cfg, pool, stats, isa, codec](const Matrix &w,
                                          const std::string &name,
                                          const Matrix *)
               -> std::unique_ptr<LinearOp> {
        auto packed =
            std::make_unique<PackedLinear>(w, cfg, pool, isa, codec);
        if (!stats)
            return packed;
        auto s = std::make_shared<LayerStats>();
        s->name = name;
        // When the encode stage runs a demoted tier (encodeSimdIsa),
        // surface it: "avx512+avx2enc" means AVX-512 GEMM fed by the
        // AVX2 activation encoder.
        SimdIsa gemm_isa = packed->simdIsa();
        SimdIsa enc_isa = encodeSimdIsa(gemm_isa);
        s->isa = simdIsaName(gemm_isa);
        if (enc_isa != gemm_isa)
            s->isa += std::string("+") + simdIsaName(enc_isa) + "enc";
        s->inFeatures = packed->inFeatures();
        s->outFeatures = packed->outFeatures();
        s->packedBytes = packed->residentBytes();
        s->denseBytes = packed->denseBytes();
        stats->push_back(s);
        return std::make_unique<TimedLinear>(std::move(packed),
                                             std::move(s));
    };
}

InferenceSession::InferenceSession(const model::ModelConfig &model_cfg,
                                   SessionConfig cfg)
    : ownedPool_(cfg.threads ? std::make_unique<ThreadPool>(cfg.threads)
                             : nullptr),
      model_(model_cfg), isa_(cfg.isa), codec_(cfg.codec)
{
    model_.rebuild(packedLinearFactory(cfg.format, ownedPool_.get(),
                                       &stats_, isa_, codec_));
}

InferenceSession::~InferenceSession() = default;

Matrix
InferenceSession::forward(std::span<const int> tokens)
{
    telemetry::TraceSpan span("session.forward");
    if (span.active())
        span.arg("tokens", tokens.size());
    uint64_t t0 = telemetry::metricsEnabled()
                      ? telemetry::nowNanos()
                      : 0;
    Matrix logits = model_.forwardLogits(tokens);
    if (t0)
        if (auto *h = telemetry::cachedHistogram(
                sessionForwardSlot, "session.forward_ns"))
            h->record(telemetry::nowNanos() - t0);
    return logits;
}

std::vector<Matrix>
InferenceSession::forwardBatch(
    const std::vector<std::vector<int>> &batch)
{
    std::vector<Matrix> logits;
    logits.reserve(batch.size());
    for (const auto &seq : batch)
        logits.push_back(model_.forwardLogits(seq));
    return logits;
}

double
InferenceSession::linearSeconds() const
{
    double s = 0.0;
    for (const auto &st : stats_)
        s += st->seconds();
    return s;
}

size_t
InferenceSession::packedWeightBytes() const
{
    size_t b = 0;
    for (const auto &st : stats_)
        b += st->packedBytes;
    return b;
}

size_t
InferenceSession::denseWeightBytes() const
{
    size_t b = 0;
    for (const auto &st : stats_)
        b += st->denseBytes;
    return b;
}

void
InferenceSession::resetStats()
{
    for (auto &st : stats_) {
        st->calls.store(0);
        st->nanos.store(0);
        st->rows.store(0);
        st->quantizeNanos.store(0);
        st->gemmNanos.store(0);
    }
}

} // namespace runtime
} // namespace m2x
