#include "runtime/kv_cache.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "model/softmax.hh"
#include "runtime/kv_attend_kernels.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace detail {

void
dotHeadsScalar(const float *q, const float *row, size_t hd,
               unsigned n_heads, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + h * hd;
        // Four independent chains: double-ulp reassociation vs the
        // oracle's single ascending chain, real ILP instead of one
        // latency-bound multiply-add at a time.
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        size_t c = 0;
        for (; c + 4 <= hd; c += 4) {
            s0 += static_cast<double>(a[c]) * b[c];
            s1 += static_cast<double>(a[c + 1]) * b[c + 1];
            s2 += static_cast<double>(a[c + 2]) * b[c + 2];
            s3 += static_cast<double>(a[c + 3]) * b[c + 3];
        }
        for (; c < hd; ++c)
            s0 += static_cast<double>(a[c]) * b[c];
        out[h] = (s0 + s1) + (s2 + s3);
    }
}

void
accumHeadsScalar(const double *p, const float *row, size_t hd,
                 unsigned n_heads, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        double ph = p[h];
        const float *vr = row + h * hd;
        double *ar = acc + h * hd;
        for (size_t c = 0; c < hd; ++c)
            ar[c] += ph * vr[c];
    }
}

const AttendKernels &
attendKernels(SimdIsa isa)
{
    static const AttendKernels scalar{&dotHeadsScalar,
                                      &accumHeadsScalar};
#ifdef M2X_HAVE_AVX2
    static const AttendKernels avx2{&dotHeadsAvx2, &accumHeadsAvx2};
    if (isa == SimdIsa::Avx2)
        return avx2;
#endif
#ifdef M2X_HAVE_AVX512
    static const AttendKernels avx512{&dotHeadsAvx512,
                                      &accumHeadsAvx512};
    if (isa == SimdIsa::Avx512)
        return avx512;
#endif
    (void)isa;
    return scalar;
}

} // namespace detail

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

/** Query rows per packed-attend block (bounds the scores scratch). */
constexpr size_t attendBlock = 8;

} // anonymous namespace

const char *
kvCacheModeName(KvCacheMode mode)
{
    return mode == KvCacheMode::Fp32 ? "fp32" : "packed";
}

KvCache::KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
                 M2xfpConfig fmt, SimdIsa isa)
    : mode_(mode), dModel_(d_model), isa_(isa),
      actQ_(fmt.activationConfig())
{
    m2x_assert(n_layers > 0 && d_model > 0,
               "KvCache needs layers > 0 and d_model > 0 (got "
               "%zu, %zu)", n_layers, d_model);
    m2x_assert(simdIsaAvailable(isa),
               "KvCache: ISA tier '%s' is not available on this "
               "machine", simdIsaName(isa));
    layers_.resize(n_layers);
    if (mode_ == KvCacheMode::Packed) {
        for (Layer &l : layers_) {
            l.pk = PackedM2xfpTensor::emptyActivations(d_model, actQ_);
            l.pv = PackedM2xfpTensor::emptyActivations(d_model, actQ_);
        }
    }
}

void
KvCache::append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n, ThreadPool *pool)
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    Layer &l = layers_[layer];
    if (n == 0)
        return;
    if (mode_ == KvCacheMode::Fp32) {
        l.k.insert(l.k.end(), k_rows, k_rows + n * dModel_);
        l.v.insert(l.v.end(), v_rows, v_rows + n * dModel_);
    } else {
        l.pk.appendActivationRows(k_rows, n, actQ_, isa_, pool);
        l.pv.appendActivationRows(v_rows, n, actQ_, isa_, pool);
    }
    l.rows += n;
}

size_t
KvCache::totalBytes() const
{
    size_t bytes = 0;
    for (const Layer &l : layers_) {
        if (mode_ == KvCacheMode::Fp32)
            bytes += 2 * l.rows * dModel_ * sizeof(float);
        else
            bytes += l.pk.totalBytes() + l.pv.totalBytes();
    }
    return bytes;
}

void
KvCache::attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool) const
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    m2x_assert(n_heads > 0 && dModel_ % n_heads == 0,
               "d_model %zu not divisible into %u heads", dModel_,
               n_heads);
    const Layer &l = layers_[layer];
    m2x_assert(pos0 + n_rows <= l.rows,
               "attend over rows [%zu, %zu) but layer %zu holds only "
               "%zu (append the chunk first)", pos0, pos0 + n_rows,
               layer, l.rows);
    if (n_rows == 0)
        return;
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    if (mode_ == KvCacheMode::Fp32)
        attendFp32(l, q, n_rows, pos0, n_heads, ctx, tp);
    else
        attendPacked(l, q, n_rows, pos0, n_heads, ctx, tp);
}

/*
 * Fp32 mode: the bit-exactness oracle. Heads are fully independent
 * and every (head, query) output replicates the full forward's
 * operation sequence — single ascending-order double chains, the
 * reference softmax — so distributing heads over the pool cannot
 * change a single ULP.
 */
void
KvCache::attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads, float *ctx,
                    ThreadPool &pool) const
{
    size_t d = dModel_;
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    const float *kc = l.k.data();
    const float *vc = l.v.data();

    pool.parallelFor(0, n_heads, 1, [&](size_t h0, size_t h1) {
        thread_local std::vector<float> scores;
        scores.resize(pos0 + n_rows);
        for (size_t h = h0; h < h1; ++h) {
            size_t off = h * hd;
            for (size_t i = 0; i < n_rows; ++i) {
                const float *qr = q + i * d + off;
                size_t valid = pos0 + i + 1;
                for (size_t j = 0; j < valid; ++j) {
                    double dot = 0.0;
                    const float *kr = kc + j * d + off;
                    for (size_t c = 0; c < hd; ++c)
                        dot += static_cast<double>(qr[c]) * kr[c];
                    scores[j] = static_cast<float>(dot) * inv_sqrt;
                }
                model::attentionSoftmax(scores.data(), valid);
                for (size_t c = 0; c < hd; ++c) {
                    double acc = 0.0;
                    for (size_t j = 0; j < valid; ++j)
                        acc += static_cast<double>(scores[j]) *
                               vc[j * d + off + c];
                    ctx[i * d + off + c] = static_cast<float>(acc);
                }
            }
        }
    });
}

/*
 * Packed mode: the production kernel. Queries are processed in
 * blocks so each cached row is LUT-decoded once per block (not once
 * per query), the score dots run four double chains deep, and the
 * value pass keeps one ascending-j double chain per output channel —
 * the same summation order as the oracle, so the only numerical
 * difference vs the functional Elem-EM reference is double-ulp
 * reassociation inside the score dots.
 */
void
KvCache::attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool &pool) const
{
    size_t d = dModel_;
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    size_t padded_d = l.pk.groupsPerRow() * groupSize;
    const detail::GemmKernels &gemm = detail::gemmKernels(isa_);
    const detail::AttendKernels &kern = detail::attendKernels(isa_);
    size_t n_blocks = ceilDiv(n_rows, attendBlock);

    pool.parallelFor(0, n_blocks, 1, [&](size_t b0, size_t b1) {
        thread_local std::vector<float> rowbuf;
        thread_local std::vector<float> scores;
        thread_local std::vector<double> acc;
        thread_local std::vector<double> heads;
        rowbuf.resize(padded_d);
        heads.resize(n_heads);
        for (size_t blk = b0; blk < b1; ++blk) {
            size_t i0 = blk * attendBlock;
            size_t bn = std::min(attendBlock, n_rows - i0);
            // Rows visible to the block's last query; earlier
            // queries mask the tail per-j below.
            size_t len = pos0 + i0 + bn;
            scores.resize(bn * n_heads * len);

            // Score pass: decode each cached K row once, dot it
            // against every (query, head) it is visible to.
            for (size_t j = 0; j < len; ++j) {
                gemm.decodeActivationRow(l.pk, j, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    kern.dotHeads(q + (i0 + i) * d, rowbuf.data(),
                                  hd, n_heads, heads.data());
                    for (unsigned h = 0; h < n_heads; ++h)
                        scores[(i * n_heads + h) * len + j] =
                            static_cast<float>(heads[h]) * inv_sqrt;
                }
            }

            for (size_t i = 0; i < bn; ++i) {
                size_t valid = pos0 + i0 + i + 1;
                for (unsigned h = 0; h < n_heads; ++h)
                    model::attentionSoftmax(
                        scores.data() + (i * n_heads + h) * len,
                        valid);
            }

            // Value pass: decode each cached V row once; per output
            // channel the accumulation stays a single ascending-j
            // double chain (now fused), like the oracle.
            acc.assign(bn * d, 0.0);
            for (size_t j = 0; j < len; ++j) {
                gemm.decodeActivationRow(l.pv, j, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    for (unsigned h = 0; h < n_heads; ++h)
                        heads[h] = scores[(i * n_heads + h) * len +
                                          j];
                    kern.accumHeads(heads.data(), rowbuf.data(), hd,
                                    n_heads, acc.data() + i * d);
                }
            }
            for (size_t i = 0; i < bn; ++i)
                for (size_t c = 0; c < d; ++c)
                    ctx[(i0 + i) * d + c] =
                        static_cast<float>(acc[i * d + c]);
        }
    });
}

} // namespace runtime
} // namespace m2x
