#include "runtime/kv_cache.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "model/softmax.hh"
#include "runtime/codec_traits.hh"
#include "runtime/decode_lut.hh"
#include "runtime/kv_attend_kernels.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime/telemetry.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace detail {

void
dotHeadsScalar(const float *q, const float *row, size_t hd,
               unsigned n_heads, unsigned group, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + (h / group) * hd;
        // Four independent chains: double-ulp reassociation vs the
        // oracle's single ascending chain, real ILP instead of one
        // latency-bound multiply-add at a time.
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        size_t c = 0;
        for (; c + 4 <= hd; c += 4) {
            s0 += static_cast<double>(a[c]) * b[c];
            s1 += static_cast<double>(a[c + 1]) * b[c + 1];
            s2 += static_cast<double>(a[c + 2]) * b[c + 2];
            s3 += static_cast<double>(a[c + 3]) * b[c + 3];
        }
        for (; c < hd; ++c)
            s0 += static_cast<double>(a[c]) * b[c];
        out[h] = (s0 + s1) + (s2 + s3);
    }
}

void
accumHeadsScalar(const double *p, const float *row, size_t hd,
                 unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        double ph = p[h];
        const float *vr = row + (h / group) * hd;
        double *ar = acc + h * hd;
        for (size_t c = 0; c < hd; ++c)
            ar[c] += ph * vr[c];
    }
}

void
expWeightsScalar(const double *s, double m, size_t n, double *p)
{
    for (size_t r = 0; r < n; ++r)
        p[r] = std::exp(s[r] - m);
}

void
decodeRowsScalar(const PackedM2xfpTensor &t, size_t row0,
                 size_t n_rows, size_t stride, float *out)
{
    for (size_t r = 0; r < n_rows; ++r)
        decodeActivationRow(t, row0 + r, out + r * stride);
}

void
scorePageScalar(const float *q, const float *rows, size_t stride,
                size_t n_rows, size_t hd, unsigned n_heads,
                unsigned group, double inv_sqrt, double *scores,
                size_t s_stride, double *smax)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *base = rows + (h / group) * hd;
        double *sh = scores + h * s_stride;
        double mx = -std::numeric_limits<double>::infinity();
        for (size_t r = 0; r < n_rows; ++r) {
            // Same four-chain dot as dotHeadsScalar, so per-score
            // results are bit-identical to the per-row primitive.
            const float *b = base + r * stride;
            double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
            size_t c = 0;
            for (; c + 4 <= hd; c += 4) {
                s0 += static_cast<double>(a[c]) * b[c];
                s1 += static_cast<double>(a[c + 1]) * b[c + 1];
                s2 += static_cast<double>(a[c + 2]) * b[c + 2];
                s3 += static_cast<double>(a[c + 3]) * b[c + 3];
            }
            for (; c < hd; ++c)
                s0 += static_cast<double>(a[c]) * b[c];
            double s = ((s0 + s1) + (s2 + s3)) * inv_sqrt;
            sh[r] = s;
            mx = std::max(mx, s);
        }
        smax[h] = mx;
    }
}

void
accumPageScalar(const double *w, size_t w_stride, const float *rows,
                size_t stride, size_t n_rows, size_t hd,
                unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const double *wh = w + h * w_stride;
        const float *base = rows + (h / group) * hd;
        double *ar = acc + h * hd;
        // Channel-outer, row-inner: each channel's chain still adds
        // in ascending-row order, so the sum is bit-identical to
        // accumHeadsScalar called once per ascending row.
        for (size_t c = 0; c < hd; ++c) {
            double s = ar[c];
            for (size_t r = 0; r < n_rows; ++r)
                s += wh[r] * static_cast<double>(base[r * stride + c]);
            ar[c] = s;
        }
    }
}

const AttendKernels &
attendKernels(SimdIsa isa)
{
    static const AttendKernels scalar{
        &dotHeadsScalar,   &accumHeadsScalar, &expWeightsScalar,
        &decodeRowsScalar, &scorePageScalar,  &accumPageScalar};
#ifdef M2X_HAVE_AVX2
    static const AttendKernels avx2{
        &dotHeadsAvx2,   &accumHeadsAvx2, &expWeightsAvx2,
        &decodeRowsAvx2, &scorePageAvx2,  &accumPageAvx2};
    if (isa == SimdIsa::Avx2)
        return avx2;
#endif
#ifdef M2X_HAVE_AVX512
    static const AttendKernels avx512{
        &dotHeadsAvx512,   &accumHeadsAvx512, &expWeightsAvx512,
        &decodeRowsAvx512, &scorePageAvx512,  &accumPageAvx512};
    if (isa == SimdIsa::Avx512)
        return avx512;
#endif
    (void)isa;
    return scalar;
}

} // namespace detail

namespace {

/** Query rows per packed-attend block (bounds the attend scratch). */
constexpr size_t attendBlock = 8;

/**
 * Process-wide peak of the per-lane attend scratch footprint. The
 * flash attend's bound — O(pageRows · nHeads + block · dModel),
 * context-length independent — is asserted against this by tests
 * and exported as the decode.attend_scratch_bytes gauge.
 */
std::atomic<size_t> g_attend_scratch_peak{0};

void
noteAttendScratch(size_t bytes)
{
    size_t cur = g_attend_scratch_peak.load(std::memory_order_relaxed);
    while (bytes > cur &&
           !g_attend_scratch_peak.compare_exchange_weak(
               cur, bytes, std::memory_order_relaxed)) {
    }
}

/** First visible cache row for a query whose last row is pos
 * (exclusive end @p valid = pos + 1) under sliding window @p w. */
inline size_t
windowStart(size_t valid, size_t w)
{
    return (w != 0 && valid > w) ? valid - w : 0;
}

/**
 * Prefetch the packed streams of rows [row0, row0 + n) into L2. At
 * long context the page walk is cold — the resident pages far
 * exceed the cache — so the flash attend hides the next page's
 * miss latency under the current page's decode+score work.
 */
inline void
prefetchPackedRows(const PackedM2xfpTensor &t, size_t row0, size_t n)
{
    size_t gpr = t.groupsPerRow();
    const uint8_t *p = t.groupElementBytes(row0, 0);
    size_t bytes = n * gpr * PackedM2xfpTensor::bytesPerGroupElems;
    for (size_t off = 0; off < bytes; off += 64)
        __builtin_prefetch(p + off, 0, 2);
    __builtin_prefetch(t.scaleStream().data() + row0 * gpr, 0, 2);
    __builtin_prefetch(t.metadataStream().data() + row0 * gpr, 0, 2);
}

} // anonymous namespace

size_t
attendScratchPeakBytes()
{
    return g_attend_scratch_peak.load(std::memory_order_relaxed);
}

void
resetAttendScratchPeak()
{
    g_attend_scratch_peak.store(0, std::memory_order_relaxed);
}

KvCache::KvCache(KvPageArena &arena, size_t n_layers)
    : arena_(&arena)
{
    m2x_assert(n_layers > 0, "KvCache needs layers > 0");
    layers_.resize(n_layers);
}

KvCache::KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
                 M2xfpConfig fmt, SimdIsa isa, PackedCodec codec)
    : owned_(std::make_unique<KvPageArena>(
          d_model, mode, fmt, isa,
          KvArenaConfig{.codec = codec})),
      arena_(owned_.get())
{
    m2x_assert(n_layers > 0 && d_model > 0,
               "KvCache needs layers > 0 and d_model > 0 (got "
               "%zu, %zu)", n_layers, d_model);
    layers_.resize(n_layers);
}

KvCache::KvCache(KvCache &&o) noexcept
    : owned_(std::move(o.owned_)), arena_(o.arena_),
      layers_(std::move(o.layers_))
{
    // The moved-from cache keeps its arena pointer but the vector
    // move left it with no layers, so its destructor frees nothing.
    o.layers_.clear();
}

KvCache::~KvCache()
{
    release();
}

void
KvCache::release()
{
    for (Layer &l : layers_) {
        for (KvPageId id : l.k)
            if (id != kvInvalidPage)
                arena_->freePage(id);
        for (KvPageId id : l.v)
            if (id != kvInvalidPage)
                arena_->freePage(id);
        l.k.clear();
        l.v.clear();
        l.rows = 0;
    }
}

void
KvCache::releaseBefore(size_t row)
{
    size_t pr = arena_->pageRows();
    size_t n_pages = row / pr; // pages holding only rows < row
    for (Layer &l : layers_) {
        size_t lim = std::min(n_pages, l.k.size());
        for (size_t p = 0; p < lim; ++p) {
            if (l.k[p] != kvInvalidPage) {
                arena_->freePage(l.k[p]);
                l.k[p] = kvInvalidPage;
            }
            if (l.v[p] != kvInvalidPage) {
                arena_->freePage(l.v[p]);
                l.v[p] = kvInvalidPage;
            }
        }
    }
}

size_t
KvCache::pagesHeld() const
{
    size_t n = 0;
    for (const Layer &l : layers_) {
        for (KvPageId id : l.k)
            n += id != kvInvalidPage;
        for (KvPageId id : l.v)
            n += id != kvInvalidPage;
    }
    return n;
}

size_t
KvCache::pagesNeededFor(size_t n_rows) const
{
    size_t pr = arena_->pageRows();
    size_t rows = length();
    size_t per_stream = KvPageArena::pagesForRows(rows + n_rows, pr) -
                        KvPageArena::pagesForRows(rows, pr);
    return 2 * layers_.size() * per_stream;
}

void
KvCache::appendStream(std::vector<KvPageId> &table, size_t rows_used,
                      const float *rows, size_t n, ThreadPool *pool)
{
    size_t pr = arena_->pageRows();
    size_t d = arena_->dModel();
    while (n > 0) {
        if (rows_used == table.size() * pr) {
            // No pages yet, or the tail page is exactly full: claim
            // a fresh one before the next row lands.
            KvPageId id = arena_->allocPage();
            m2x_assert(id != kvInvalidPage,
                       "KV page arena exhausted (%zu pages, all "
                       "live) — admit fewer sequences or evict "
                       "before appending",
                       arena_->capacityPages());
            table.push_back(id);
        }
        size_t tail_used = rows_used % pr;
        size_t take = std::min(pr - tail_used, n);
        arena_->appendRows(table.back(), rows, take, pool);
        rows += take * d;
        rows_used += take;
        n -= take;
    }
}

void
KvCache::append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n, ThreadPool *pool)
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    Layer &l = layers_[layer];
    if (n == 0)
        return;
    appendStream(l.k, l.rows, k_rows, n, pool);
    appendStream(l.v, l.rows, v_rows, n, pool);
    l.rows += n;
}

size_t
KvCache::totalBytes() const
{
    size_t bytes = 0;
    size_t d = arena_->dModel();
    size_t row_packed =
        arena_->groupsPerRow() *
        (packedCodecInfo(arena_->codec()).bytesPerGroupElems + 2);
    for (const Layer &l : layers_) {
        if (mode() == KvCacheMode::Fp32)
            bytes += 2 * l.rows * d * sizeof(float);
        else
            bytes += 2 * l.rows * row_packed;
    }
    return bytes;
}

void
KvCache::attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool, unsigned n_kv_heads,
                size_t window) const
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    if (n_kv_heads == 0)
        n_kv_heads = n_heads;
    m2x_assert(n_heads > 0 && n_heads % n_kv_heads == 0,
               "%u query heads not grouped by %u kv heads", n_heads,
               n_kv_heads);
    m2x_assert(dModel() % n_kv_heads == 0,
               "kv width %zu not divisible into %u kv heads",
               dModel(), n_kv_heads);
    const Layer &l = layers_[layer];
    m2x_assert(pos0 + n_rows <= l.rows,
               "attend over rows [%zu, %zu) but layer %zu holds only "
               "%zu (append the chunk first)", pos0, pos0 + n_rows,
               layer, l.rows);
    if (n_rows == 0)
        return;
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    if (mode() == KvCacheMode::Fp32)
        attendFp32(l, q, n_rows, pos0, n_heads, n_kv_heads, window,
                   ctx, tp);
    else
        attendPacked(l, q, n_rows, pos0, n_heads, n_kv_heads, window,
                     ctx, tp);
}

void
KvCache::attendLegacy(size_t layer, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool *pool) const
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    m2x_assert(n_heads > 0 && dModel() % n_heads == 0,
               "d_model %zu not divisible into %u heads", dModel(),
               n_heads);
    const Layer &l = layers_[layer];
    m2x_assert(pos0 + n_rows <= l.rows,
               "attend over rows [%zu, %zu) but layer %zu holds only "
               "%zu (append the chunk first)", pos0, pos0 + n_rows,
               layer, l.rows);
    if (n_rows == 0)
        return;
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    if (mode() == KvCacheMode::Fp32)
        attendFp32Legacy(l, q, n_rows, pos0, n_heads, ctx, tp);
    else
        attendPackedLegacy(l, q, n_rows, pos0, n_heads, ctx, tp);
}

/*
 * Fp32 mode: the bit-exactness oracle, now in streaming form. Heads
 * are fully independent and every (head, query) output replicates
 * the full forward's operation sequence — the scores the two-pass
 * reference would have stored are instead recomputed per pass
 * (identical float ops give identical bits), so pass A reproduces
 * the reference's float max, pass B its ascending-order double
 * normalizer, and pass C its float-weighted ascending-order value
 * chains. Three K passes instead of one buy an O(headDim) scratch
 * bound: this mode is the oracle and baseline, not the fast path.
 * The page table only changes where row j is fetched from (page
 * j / pageRows, local row j % pageRows), not one arithmetic
 * operation, so distributing heads over the pool cannot change a
 * single ULP.
 */
void
KvCache::attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads,
                    unsigned n_kv_heads, size_t window, float *ctx,
                    ThreadPool &pool) const
{
    size_t kv_d = dModel();
    size_t hd = kv_d / n_kv_heads;
    size_t q_d = hd * n_heads;
    unsigned group = n_heads / n_kv_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};

    pool.parallelFor(0, n_heads, 1, [&](size_t h0, size_t h1) {
        thread_local std::vector<double> acc;
        acc.resize(hd);
        noteAttendScratch(hd * sizeof(double));
        for (size_t h = h0; h < h1; ++h) {
            size_t off = h * hd;
            size_t kv_off = (h / group) * hd;
            for (size_t i = 0; i < n_rows; ++i) {
                const float *qr = q + i * q_d + off;
                size_t valid = pos0 + i + 1;
                size_t j0 = windowStart(valid, window);
                auto score = [&](size_t j) {
                    double dot = 0.0;
                    const float *kr = kview.fp32Row(j) + kv_off;
                    for (size_t c = 0; c < hd; ++c)
                        dot += static_cast<double>(qr[c]) * kr[c];
                    return static_cast<float>(dot) * inv_sqrt;
                };
                // Pass A: the reference softmax's float max.
                float mx = score(j0);
                for (size_t j = j0 + 1; j < valid; ++j)
                    mx = std::max(mx, score(j));
                // Pass B: its double normalizer, ascending order.
                double z = 0.0;
                for (size_t j = j0; j < valid; ++j)
                    z += std::exp(score(j) - mx);
                float inv_z = static_cast<float>(1.0 / z);
                // Pass C: float-weighted value chains, one ascending
                // double chain per channel exactly like the oracle.
                std::fill(acc.begin(), acc.end(), 0.0);
                for (size_t j = j0; j < valid; ++j) {
                    float p = std::exp(score(j) - mx) * inv_z;
                    const float *vr = vview.fp32Row(j) + kv_off;
                    for (size_t c = 0; c < hd; ++c)
                        acc[c] += static_cast<double>(p) * vr[c];
                }
                for (size_t c = 0; c < hd; ++c)
                    ctx[i * q_d + off + c] =
                        static_cast<float>(acc[c]);
            }
        }
    });
}

/*
 * Packed mode: the production flash kernel. K/V pages stream through
 * a bounded working set — each page is LUT-decoded once per query
 * block (the arena page is the natural KV block) and reused across
 * every query row and head — while per-(query, head) running
 * statistics advance with the online-softmax recurrence:
 *
 *   m' = max(m, max_r s_r)          page-local score max
 *   corr = exp(m - m')              rescale on a new max
 *   l' = l * corr + sum_r exp(s_r - m')
 *   acc' = acc * corr + sum_r exp(s_r - m') * v_r
 *
 * and the context row is acc / l after the last page. No [S, T] (or
 * even [T]) score buffer ever exists: scratch is two decoded pages
 * plus O(pageRows · nHeads) score/weight slabs plus the running
 * m/l/acc — independent of context length (attendScratchPeakBytes
 * tracks the peak). Scores, weights, and statistics all stay in
 * double; the vector tiers' polynomial float exp is the one source
 * of divergence from the scalar tier, well inside the packed model
 * tolerance (1e-5). Row decode yields exactly the bytes the
 * one-shot packer would have produced for absolute row j, as
 * before.
 */
void
KvCache::attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads,
                      unsigned n_kv_heads, size_t window, float *ctx,
                      ThreadPool &pool) const
{
    telemetry::TraceSpan span("decode.attend.flash");
    if (span.active()) {
        span.arg("rows", n_rows);
        span.arg("ctx_len", pos0 + n_rows);
        span.arg("kv_heads", n_kv_heads);
        if (window != 0)
            span.arg("window", window);
    }

    size_t kv_d = dModel();
    size_t hd = kv_d / n_kv_heads;
    size_t q_d = hd * n_heads;
    unsigned group = n_heads / n_kv_heads;
    float inv_sqrt_f = 1.0f / std::sqrt(static_cast<float>(hd));
    double inv_sqrt = static_cast<double>(inv_sqrt_f);
    size_t pr = arena_->pageRows();
    size_t padded_d = arena_->groupsPerRow() *
                      packedCodecInfo(arena_->codec()).groupSize;
    const detail::AttendKernels &kern =
        detail::attendKernels(simdIsa());
    // The codec seam: only the page decode is format-sensitive —
    // Elem-EM pages use the ISA tier's batch decode, other codecs the
    // generic traits kernel; scores/softmax/value accumulation are
    // codec-agnostic.
    detail::DecodeRowsFn decode_rows =
        arena_->codec() == PackedCodec::ElemEm ? kern.decodeRows
                                               : &codecDecodeRows;
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};
    size_t n_blocks = ceilDiv(n_rows, attendBlock);
    constexpr double neg_inf =
        -std::numeric_limits<double>::infinity();

    pool.parallelFor(0, n_blocks, 1, [&](size_t b0, size_t b1) {
        thread_local std::vector<float> kbuf, vbuf;
        thread_local std::vector<double> sbuf, pbuf, pmax;
        thread_local std::vector<double> mrun, lrun, acc;
        kbuf.resize(pr * padded_d);
        vbuf.resize(pr * padded_d);
        sbuf.resize(n_heads * pr);
        pbuf.resize(n_heads * pr);
        pmax.resize(n_heads);
        mrun.resize(attendBlock * n_heads);
        lrun.resize(attendBlock * n_heads);
        acc.resize(attendBlock * q_d);
        noteAttendScratch(
            2 * pr * padded_d * sizeof(float) +
            (2 * n_heads * pr + n_heads +
             2 * attendBlock * n_heads + attendBlock * q_d) *
                sizeof(double));

        for (size_t blk = b0; blk < b1; ++blk) {
            size_t i0 = blk * attendBlock;
            size_t bn = std::min(attendBlock, n_rows - i0);
            // Rows visible to the block's last query; the first
            // query's window start bounds the page walk below.
            size_t len = pos0 + i0 + bn;
            size_t j0_min = windowStart(pos0 + i0 + 1, window);

            std::fill_n(mrun.begin(), bn * n_heads, neg_inf);
            std::fill_n(lrun.begin(), bn * n_heads, 0.0);
            std::fill_n(acc.begin(), bn * q_d, 0.0);

            for (size_t pg = j0_min / pr; pg * pr < len; ++pg) {
                size_t lo = std::max(pg * pr, j0_min);
                size_t hi = std::min((pg + 1) * pr, len);
                // Decode the page's visible K and V rows once —
                // one page-table resolve per stream (the rows of a
                // logical page share one arena tensor), one batch
                // decode call; every query row and head below
                // reuses the slabs.
                size_t local_lo;
                const PackedM2xfpTensor &kp =
                    kview.packedOf(lo, local_lo);
                const PackedM2xfpTensor &vp =
                    vview.packedOf(lo, local_lo);
                // Issue the next page's stream prefetches first so
                // the misses resolve under this page's work.
                size_t nx_lo = (pg + 1) * pr;
                size_t nx_hi = std::min(nx_lo + pr, len);
                if (nx_lo < nx_hi) {
                    size_t nx_local = 0;
                    prefetchPackedRows(
                        kview.packedOf(nx_lo, nx_local), nx_local,
                        nx_hi - nx_lo);
                    prefetchPackedRows(
                        vview.packedOf(nx_lo, nx_local), nx_local,
                        nx_hi - nx_lo);
                }
                decode_rows(
                    kp, local_lo, hi - lo, padded_d,
                    kbuf.data() + (lo - pg * pr) * padded_d);
                decode_rows(
                    vp, local_lo, hi - lo, padded_d,
                    vbuf.data() + (lo - pg * pr) * padded_d);

                for (size_t i = 0; i < bn; ++i) {
                    size_t valid = pos0 + i0 + i + 1;
                    size_t vlo =
                        std::max(lo, windowStart(valid, window));
                    size_t vhi = std::min(hi, valid);
                    if (vlo >= vhi)
                        continue;
                    size_t nv = vhi - vlo;
                    const float *qi = q + (i0 + i) * q_d;

                    // Score pass: one page-granular call computes
                    // every (head, row) dot head-major (so the exp
                    // below runs over a contiguous run per head)
                    // plus each head's page max.
                    kern.scorePage(
                        qi,
                        kbuf.data() + (vlo - pg * pr) * padded_d,
                        padded_d, nv, hd, n_heads, group, inv_sqrt,
                        sbuf.data(), pr, pmax.data());

                    // Online-softmax update per head. A page that
                    // does not raise the head's running max leaves
                    // the accumulator untouched (corr == exp(0) ==
                    // 1 exactly), so the rescale — and its libm exp
                    // — is skipped in the steady state.
                    double *mi = mrun.data() + i * n_heads;
                    double *li = lrun.data() + i * n_heads;
                    for (unsigned h = 0; h < n_heads; ++h) {
                        double m_new = mi[h];
                        double corr = 1.0;
                        if (pmax[h] > m_new) {
                            m_new = pmax[h];
                            corr = std::exp(mi[h] - m_new);
                        }
                        kern.expWeights(sbuf.data() + h * pr, m_new,
                                        nv, pbuf.data() + h * pr);
                        double sum = 0.0;
                        const double *ph = pbuf.data() + h * pr;
                        for (size_t r = 0; r < nv; ++r)
                            sum += ph[r];
                        li[h] = li[h] * corr + sum;
                        mi[h] = m_new;
                        if (corr != 1.0) {
                            double *ah = acc.data() + i * q_d +
                                         h * hd;
                            for (size_t c = 0; c < hd; ++c)
                                ah[c] *= corr;
                        }
                    }

                    // Value pass: one page-granular accumulation
                    // over the decoded V slab, reading the weights
                    // head-major exactly as expWeights wrote them.
                    kern.accumPage(
                        pbuf.data(), pr,
                        vbuf.data() + (vlo - pg * pr) * padded_d,
                        padded_d, nv, hd, n_heads, group,
                        acc.data() + i * q_d);
                }
            }

            // Normalize: ctx = acc / l.
            for (size_t i = 0; i < bn; ++i) {
                for (unsigned h = 0; h < n_heads; ++h) {
                    double inv_l =
                        1.0 / lrun[i * n_heads + h];
                    const double *ah =
                        acc.data() + i * q_d + h * hd;
                    float *out = ctx + (i0 + i) * q_d + h * hd;
                    for (size_t c = 0; c < hd; ++c)
                        out[c] =
                            static_cast<float>(ah[c] * inv_l);
                }
            }
        }
    });
}

/*
 * The pre-flash paths, kept verbatim as the long-context bench's
 * measured baseline (classic MHA over the full causal prefix).
 * Fp32: heads fully independent, full score vector per query row,
 * the reference two-pass softmax. Packed: blocked kernel with an
 * O(block · heads · context) score slab. Neither participates in
 * the scratch-peak accounting — the O(context) slab is exactly the
 * regression attendScratchPeakBytes guards against.
 */
void
KvCache::attendFp32Legacy(const Layer &l, const float *q,
                          size_t n_rows, size_t pos0,
                          unsigned n_heads, float *ctx,
                          ThreadPool &pool) const
{
    size_t d = dModel();
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};

    pool.parallelFor(0, n_heads, 1, [&](size_t h0, size_t h1) {
        thread_local std::vector<float> scores;
        scores.resize(pos0 + n_rows);
        for (size_t h = h0; h < h1; ++h) {
            size_t off = h * hd;
            for (size_t i = 0; i < n_rows; ++i) {
                const float *qr = q + i * d + off;
                size_t valid = pos0 + i + 1;
                for (size_t j = 0; j < valid; ++j) {
                    double dot = 0.0;
                    const float *kr = kview.fp32Row(j) + off;
                    for (size_t c = 0; c < hd; ++c)
                        dot += static_cast<double>(qr[c]) * kr[c];
                    scores[j] = static_cast<float>(dot) * inv_sqrt;
                }
                model::attentionSoftmax(scores.data(), valid);
                for (size_t c = 0; c < hd; ++c) {
                    double acc = 0.0;
                    for (size_t j = 0; j < valid; ++j)
                        acc += static_cast<double>(scores[j]) *
                               vview.fp32Row(j)[off + c];
                    ctx[i * d + off + c] = static_cast<float>(acc);
                }
            }
        }
    });
}

void
KvCache::attendPackedLegacy(const Layer &l, const float *q,
                            size_t n_rows, size_t pos0,
                            unsigned n_heads, float *ctx,
                            ThreadPool &pool) const
{
    size_t d = dModel();
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    size_t padded_d = arena_->groupsPerRow() *
                      packedCodecInfo(arena_->codec()).groupSize;
    const detail::GemmKernels &gemm = detail::gemmKernels(simdIsa());
    detail::DecodeRowFn decode_row =
        arena_->codec() == PackedCodec::ElemEm
            ? gemm.decodeActivationRow
            : &codecDecodeActivationRow;
    const detail::AttendKernels &kern =
        detail::attendKernels(simdIsa());
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};
    size_t n_blocks = ceilDiv(n_rows, attendBlock);

    pool.parallelFor(0, n_blocks, 1, [&](size_t b0, size_t b1) {
        thread_local std::vector<float> rowbuf;
        thread_local std::vector<float> scores;
        thread_local std::vector<double> acc;
        thread_local std::vector<double> heads;
        rowbuf.resize(padded_d);
        heads.resize(n_heads);
        for (size_t blk = b0; blk < b1; ++blk) {
            size_t i0 = blk * attendBlock;
            size_t bn = std::min(attendBlock, n_rows - i0);
            // Rows visible to the block's last query; earlier
            // queries mask the tail per-j below.
            size_t len = pos0 + i0 + bn;
            scores.resize(bn * n_heads * len);

            // Score pass: decode each cached K row once, dot it
            // against every (query, head) it is visible to.
            for (size_t j = 0; j < len; ++j) {
                size_t local;
                const PackedM2xfpTensor &kp = kview.packedOf(j, local);
                decode_row(kp, local, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    kern.dotHeads(q + (i0 + i) * d, rowbuf.data(),
                                  hd, n_heads, 1, heads.data());
                    for (unsigned h = 0; h < n_heads; ++h)
                        scores[(i * n_heads + h) * len + j] =
                            static_cast<float>(heads[h]) * inv_sqrt;
                }
            }

            for (size_t i = 0; i < bn; ++i) {
                size_t valid = pos0 + i0 + i + 1;
                for (unsigned h = 0; h < n_heads; ++h)
                    model::attentionSoftmax(
                        scores.data() + (i * n_heads + h) * len,
                        valid);
            }

            // Value pass: decode each cached V row once; per output
            // channel the accumulation stays a single ascending-j
            // double chain (now fused), like the oracle.
            acc.assign(bn * d, 0.0);
            for (size_t j = 0; j < len; ++j) {
                size_t local;
                const PackedM2xfpTensor &vp = vview.packedOf(j, local);
                decode_row(vp, local, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    for (unsigned h = 0; h < n_heads; ++h)
                        heads[h] = scores[(i * n_heads + h) * len +
                                          j];
                    kern.accumHeads(heads.data(), rowbuf.data(), hd,
                                    n_heads, 1, acc.data() + i * d);
                }
            }
            for (size_t i = 0; i < bn; ++i)
                for (size_t c = 0; c < d; ++c)
                    ctx[(i0 + i) * d + c] =
                        static_cast<float>(acc[i * d + c]);
        }
    });
}

} // namespace runtime
} // namespace m2x
