#include "runtime/kv_cache.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "model/softmax.hh"
#include "runtime/kv_attend_kernels.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace detail {

void
dotHeadsScalar(const float *q, const float *row, size_t hd,
               unsigned n_heads, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + h * hd;
        // Four independent chains: double-ulp reassociation vs the
        // oracle's single ascending chain, real ILP instead of one
        // latency-bound multiply-add at a time.
        double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
        size_t c = 0;
        for (; c + 4 <= hd; c += 4) {
            s0 += static_cast<double>(a[c]) * b[c];
            s1 += static_cast<double>(a[c + 1]) * b[c + 1];
            s2 += static_cast<double>(a[c + 2]) * b[c + 2];
            s3 += static_cast<double>(a[c + 3]) * b[c + 3];
        }
        for (; c < hd; ++c)
            s0 += static_cast<double>(a[c]) * b[c];
        out[h] = (s0 + s1) + (s2 + s3);
    }
}

void
accumHeadsScalar(const double *p, const float *row, size_t hd,
                 unsigned n_heads, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        double ph = p[h];
        const float *vr = row + h * hd;
        double *ar = acc + h * hd;
        for (size_t c = 0; c < hd; ++c)
            ar[c] += ph * vr[c];
    }
}

const AttendKernels &
attendKernels(SimdIsa isa)
{
    static const AttendKernels scalar{&dotHeadsScalar,
                                      &accumHeadsScalar};
#ifdef M2X_HAVE_AVX2
    static const AttendKernels avx2{&dotHeadsAvx2, &accumHeadsAvx2};
    if (isa == SimdIsa::Avx2)
        return avx2;
#endif
#ifdef M2X_HAVE_AVX512
    static const AttendKernels avx512{&dotHeadsAvx512,
                                      &accumHeadsAvx512};
    if (isa == SimdIsa::Avx512)
        return avx512;
#endif
    (void)isa;
    return scalar;
}

} // namespace detail

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

/** Query rows per packed-attend block (bounds the scores scratch). */
constexpr size_t attendBlock = 8;

} // anonymous namespace

KvCache::KvCache(KvPageArena &arena, size_t n_layers)
    : arena_(&arena)
{
    m2x_assert(n_layers > 0, "KvCache needs layers > 0");
    layers_.resize(n_layers);
}

KvCache::KvCache(size_t n_layers, size_t d_model, KvCacheMode mode,
                 M2xfpConfig fmt, SimdIsa isa)
    : owned_(std::make_unique<KvPageArena>(d_model, mode, fmt, isa)),
      arena_(owned_.get())
{
    m2x_assert(n_layers > 0 && d_model > 0,
               "KvCache needs layers > 0 and d_model > 0 (got "
               "%zu, %zu)", n_layers, d_model);
    layers_.resize(n_layers);
}

KvCache::KvCache(KvCache &&o) noexcept
    : owned_(std::move(o.owned_)), arena_(o.arena_),
      layers_(std::move(o.layers_))
{
    // The moved-from cache keeps its arena pointer but the vector
    // move left it with no layers, so its destructor frees nothing.
    o.layers_.clear();
}

KvCache::~KvCache()
{
    release();
}

void
KvCache::release()
{
    for (Layer &l : layers_) {
        for (KvPageId id : l.k)
            arena_->freePage(id);
        for (KvPageId id : l.v)
            arena_->freePage(id);
        l.k.clear();
        l.v.clear();
        l.rows = 0;
    }
}

size_t
KvCache::pagesHeld() const
{
    size_t n = 0;
    for (const Layer &l : layers_)
        n += l.k.size() + l.v.size();
    return n;
}

size_t
KvCache::pagesNeededFor(size_t n_rows) const
{
    size_t pr = arena_->pageRows();
    size_t rows = length();
    size_t per_stream = KvPageArena::pagesForRows(rows + n_rows, pr) -
                        KvPageArena::pagesForRows(rows, pr);
    return 2 * layers_.size() * per_stream;
}

void
KvCache::appendStream(std::vector<KvPageId> &table, size_t rows_used,
                      const float *rows, size_t n, ThreadPool *pool)
{
    size_t pr = arena_->pageRows();
    size_t d = arena_->dModel();
    while (n > 0) {
        if (rows_used == table.size() * pr) {
            // No pages yet, or the tail page is exactly full: claim
            // a fresh one before the next row lands.
            KvPageId id = arena_->allocPage();
            m2x_assert(id != kvInvalidPage,
                       "KV page arena exhausted (%zu pages, all "
                       "live) — admit fewer sequences or evict "
                       "before appending",
                       arena_->capacityPages());
            table.push_back(id);
        }
        size_t tail_used = rows_used % pr;
        size_t take = std::min(pr - tail_used, n);
        arena_->appendRows(table.back(), rows, take, pool);
        rows += take * d;
        rows_used += take;
        n -= take;
    }
}

void
KvCache::append(size_t layer, const float *k_rows,
                const float *v_rows, size_t n, ThreadPool *pool)
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    Layer &l = layers_[layer];
    if (n == 0)
        return;
    appendStream(l.k, l.rows, k_rows, n, pool);
    appendStream(l.v, l.rows, v_rows, n, pool);
    l.rows += n;
}

size_t
KvCache::totalBytes() const
{
    size_t bytes = 0;
    size_t d = arena_->dModel();
    size_t row_packed =
        arena_->groupsPerRow() *
        (PackedM2xfpTensor::bytesPerGroupElems + 2);
    for (const Layer &l : layers_) {
        if (mode() == KvCacheMode::Fp32)
            bytes += 2 * l.rows * d * sizeof(float);
        else
            bytes += 2 * l.rows * row_packed;
    }
    return bytes;
}

void
KvCache::attend(size_t layer, const float *q, size_t n_rows,
                size_t pos0, unsigned n_heads, float *ctx,
                ThreadPool *pool) const
{
    m2x_assert(layer < layers_.size(), "layer %zu out of %zu", layer,
               layers_.size());
    m2x_assert(n_heads > 0 && dModel() % n_heads == 0,
               "d_model %zu not divisible into %u heads", dModel(),
               n_heads);
    const Layer &l = layers_[layer];
    m2x_assert(pos0 + n_rows <= l.rows,
               "attend over rows [%zu, %zu) but layer %zu holds only "
               "%zu (append the chunk first)", pos0, pos0 + n_rows,
               layer, l.rows);
    if (n_rows == 0)
        return;
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    if (mode() == KvCacheMode::Fp32)
        attendFp32(l, q, n_rows, pos0, n_heads, ctx, tp);
    else
        attendPacked(l, q, n_rows, pos0, n_heads, ctx, tp);
}

/*
 * Fp32 mode: the bit-exactness oracle. Heads are fully independent
 * and every (head, query) output replicates the full forward's
 * operation sequence — single ascending-order double chains, the
 * reference softmax. The page table only changes where row j is
 * fetched from (page j / pageRows, local row j % pageRows), not one
 * arithmetic operation, so distributing heads over the pool cannot
 * change a single ULP.
 */
void
KvCache::attendFp32(const Layer &l, const float *q, size_t n_rows,
                    size_t pos0, unsigned n_heads, float *ctx,
                    ThreadPool &pool) const
{
    size_t d = dModel();
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};

    pool.parallelFor(0, n_heads, 1, [&](size_t h0, size_t h1) {
        thread_local std::vector<float> scores;
        scores.resize(pos0 + n_rows);
        for (size_t h = h0; h < h1; ++h) {
            size_t off = h * hd;
            for (size_t i = 0; i < n_rows; ++i) {
                const float *qr = q + i * d + off;
                size_t valid = pos0 + i + 1;
                for (size_t j = 0; j < valid; ++j) {
                    double dot = 0.0;
                    const float *kr = kview.fp32Row(j) + off;
                    for (size_t c = 0; c < hd; ++c)
                        dot += static_cast<double>(qr[c]) * kr[c];
                    scores[j] = static_cast<float>(dot) * inv_sqrt;
                }
                model::attentionSoftmax(scores.data(), valid);
                for (size_t c = 0; c < hd; ++c) {
                    double acc = 0.0;
                    for (size_t j = 0; j < valid; ++j)
                        acc += static_cast<double>(scores[j]) *
                               vview.fp32Row(j)[off + c];
                    ctx[i * d + off + c] = static_cast<float>(acc);
                }
            }
        }
    });
}

/*
 * Packed mode: the production kernel. Queries are processed in
 * blocks so each cached row is LUT-decoded once per block (not once
 * per query) — the decoder runs on (page tensor, local row), which
 * yields exactly the bytes the one-shot packer would have produced
 * for absolute row j — the score dots run four double chains deep,
 * and the value pass keeps one ascending-j double chain per output
 * channel, the same summation order as the oracle, so the only
 * numerical difference vs the functional Elem-EM reference is
 * double-ulp reassociation inside the score dots.
 */
void
KvCache::attendPacked(const Layer &l, const float *q, size_t n_rows,
                      size_t pos0, unsigned n_heads, float *ctx,
                      ThreadPool &pool) const
{
    size_t d = dModel();
    size_t hd = d / n_heads;
    float inv_sqrt = 1.0f / std::sqrt(static_cast<float>(hd));
    size_t padded_d = arena_->groupsPerRow() * groupSize;
    const detail::GemmKernels &gemm = detail::gemmKernels(simdIsa());
    const detail::AttendKernels &kern =
        detail::attendKernels(simdIsa());
    detail::PagedKvView kview{arena_, l.k.data()};
    detail::PagedKvView vview{arena_, l.v.data()};
    size_t n_blocks = ceilDiv(n_rows, attendBlock);

    pool.parallelFor(0, n_blocks, 1, [&](size_t b0, size_t b1) {
        thread_local std::vector<float> rowbuf;
        thread_local std::vector<float> scores;
        thread_local std::vector<double> acc;
        thread_local std::vector<double> heads;
        rowbuf.resize(padded_d);
        heads.resize(n_heads);
        for (size_t blk = b0; blk < b1; ++blk) {
            size_t i0 = blk * attendBlock;
            size_t bn = std::min(attendBlock, n_rows - i0);
            // Rows visible to the block's last query; earlier
            // queries mask the tail per-j below.
            size_t len = pos0 + i0 + bn;
            scores.resize(bn * n_heads * len);

            // Score pass: decode each cached K row once, dot it
            // against every (query, head) it is visible to.
            for (size_t j = 0; j < len; ++j) {
                size_t local;
                const PackedM2xfpTensor &kp = kview.packedOf(j, local);
                gemm.decodeActivationRow(kp, local, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    kern.dotHeads(q + (i0 + i) * d, rowbuf.data(),
                                  hd, n_heads, heads.data());
                    for (unsigned h = 0; h < n_heads; ++h)
                        scores[(i * n_heads + h) * len + j] =
                            static_cast<float>(heads[h]) * inv_sqrt;
                }
            }

            for (size_t i = 0; i < bn; ++i) {
                size_t valid = pos0 + i0 + i + 1;
                for (unsigned h = 0; h < n_heads; ++h)
                    model::attentionSoftmax(
                        scores.data() + (i * n_heads + h) * len,
                        valid);
            }

            // Value pass: decode each cached V row once; per output
            // channel the accumulation stays a single ascending-j
            // double chain (now fused), like the oracle.
            acc.assign(bn * d, 0.0);
            for (size_t j = 0; j < len; ++j) {
                size_t local;
                const PackedM2xfpTensor &vp = vview.packedOf(j, local);
                gemm.decodeActivationRow(vp, local, rowbuf.data());
                size_t i_start =
                    j > pos0 + i0 ? j - (pos0 + i0) : 0;
                for (size_t i = i_start; i < bn; ++i) {
                    for (unsigned h = 0; h < n_heads; ++h)
                        heads[h] = scores[(i * n_heads + h) * len +
                                          j];
                    kern.accumHeads(heads.data(), rowbuf.data(), hd,
                                    n_heads, acc.data() + i * d);
                }
            }
            for (size_t i = 0; i < bn; ++i)
                for (size_t c = 0; c < d; ++c)
                    ctx[(i0 + i) * d + c] =
                        static_cast<float>(acc[i * d + c]);
        }
    });
}

} // namespace runtime
} // namespace m2x
