/**
 * @file
 * A small fixed-size thread pool with a chunked parallel-for.
 *
 * The execution runtime (packed GEMM, InferenceSession) needs fork/
 * join data parallelism over index ranges, nothing more — so this is
 * deliberately not a general task system: one job is active at a
 * time, workers pull fixed-grain chunks off a shared atomic cursor
 * (cache-friendly: consecutive chunks go to whichever lane is free,
 * so load imbalance is bounded by one grain), and the calling thread
 * participates instead of blocking idle. No work stealing, no
 * queues, no allocation on the hot path.
 *
 * All blocking uses mutex + condition_variable (no spin waits), so
 * the pool is well-behaved under sanitizers and on oversubscribed
 * machines.
 */

#ifndef M2X_RUNTIME_THREAD_POOL_HH__
#define M2X_RUNTIME_THREAD_POOL_HH__

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace m2x {
namespace runtime {

/**
 * Fixed set of worker threads executing chunked parallel-for jobs.
 * parallelFor is safe to call from any number of threads: one caller
 * at a time owns the workers (the job slot is claimed with a
 * try-lock) and every other concurrent or nested call runs its range
 * inline on the calling thread — correct, just without extra
 * parallelism.
 */
class ThreadPool
{
  public:
    /**
     * @param n_threads total parallel lanes (including the caller);
     *        0 picks defaultThreads(). A pool of size 1 spawns no
     *        workers and runs everything inline.
     */
    explicit ThreadPool(unsigned n_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total parallel lanes (workers + the calling thread). */
    unsigned size() const { return nLanes_; }

    /**
     * Invoke @p body over [begin, end) in chunks of at most @p grain
     * indices: body(chunk_begin, chunk_end). Returns when every index
     * has been processed. The caller's thread participates.
     *
     * Exception-safe drain: if @p body throws on any lane — worker
     * or caller — the first exception is captured, the remaining
     * chunks are abandoned, every lane finishes with the job, and
     * the exception is rethrown on the calling thread. Chunks that
     * were already running on other lanes when the throw happened
     * still complete, so side effects of non-throwing chunks are
     * not rolled back.
     */
    void parallelFor(size_t begin, size_t end, size_t grain,
                     const std::function<void(size_t, size_t)> &body);

    /**
     * Lanes to use when none are requested: the M2X_THREADS
     * environment variable if set, else std::thread's hardware
     * concurrency (at least 1). M2X_THREADS must be a full integer
     * in [1, LONG_MAX] (values above 1024 are clamped to 1024);
     * malformed values — trailing garbage like "8x", empty, zero,
     * negative, or out-of-range — warn and fall back to hardware
     * concurrency.
     */
    static unsigned defaultThreads();

    /** A shared process-wide pool sized with defaultThreads(). */
    static ThreadPool &global();

  private:
    struct Job
    {
        const std::function<void(size_t, size_t)> *body = nullptr;
        std::atomic<size_t> next{0};
        size_t end = 0;
        size_t grain = 1;
        /** nowNanos at post time (0 unless metrics are on). */
        uint64_t postNanos = 0;
        /** First body exception; owned by the failed CAS winner. */
        std::atomic<bool> failed{false};
        std::exception_ptr error;
    };

    void workerLoop(unsigned lane);
    static void runChunks(Job &job);

    unsigned nLanes_;
    std::vector<std::thread> workers_;

    std::mutex jobMutex_; //!< held by the caller owning the workers
    std::mutex mutex_;
    std::condition_variable wake_;
    std::condition_variable done_;
    Job *job_ = nullptr;      //!< current job, guarded by mutex_
    uint64_t generation_ = 0; //!< bumps when a new job is posted
    unsigned pending_ = 0;    //!< workers that have not finished job_
    bool stop_ = false;
};

/**
 * Convenience wrapper: parallelFor on @p pool, or on the global pool
 * when @p pool is null.
 */
void parallelFor(size_t begin, size_t end, size_t grain,
                 const std::function<void(size_t, size_t)> &body,
                 ThreadPool *pool = nullptr);

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_THREAD_POOL_HH__
