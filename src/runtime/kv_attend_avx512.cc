/**
 * @file
 * AVX-512 (F) tier of the KV-cache attention primitives: 8-wide
 * double FMA chains for the per-head score dots and value
 * accumulations, and a 16-wide polynomial float exp for the
 * online-softmax exponential weights.
 *
 * Precision contract: dots and accumulations run entirely in
 * double, exactly as the AVX2 tier — wider lanes only reassociate
 * further, so results still differ from the scalar oracle only at
 * double ulp level. expWeights evaluates the same Cephes expf
 * polynomial as the AVX2 tier (~2 float ulp) before widening back
 * to double — inside the packed 1e-5 contract, never used by the
 * bit-exact fp32 path.
 *
 * The page decode (decodeRowsAvx512) is this tier's own scheme
 * rather than a loop over the shared AVX2 row decode: one 32-element
 * group becomes two 16-lane halves, each decoded with a single
 * 16-entry FP4 table permute (vpermps), and the Elem-EM top-1
 * fix-up — a horizontal argmax per 8-lane subgroup in the AVX2
 * scheme — becomes a branchless in-register segmented max over key
 * vectors plus a 64-entry two-table permute (vpermt2ps) of the
 * metadata-adjusted values, blended into the winner lanes before
 * the shared scale multiply. Two groups are interleaved per
 * iteration to cover the shuffle-port latency. Every lane's value
 * is the exact same table entry times the exact same scale as the
 * scalar LUT decode, so the result stays bit-identical (asserted by
 * the flash kernel parity tests).
 *
 * This translation unit is compiled with -mavx2 -mfma -mavx512f
 * -mavx512bw and must only be entered through the runtime dispatch
 * (simdIsaAvailable guards).
 */

#include <cmath>
#include <immintrin.h>
#include <limits>

#include "runtime/decode_lut.hh"
#include "runtime/kv_attend_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

/** Widening load: 8 floats -> 8 doubles. */
inline __m512d
loadPs8(const float *p)
{
    return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}

/** Decode tables staged into 16-lane register form. */
struct Avx512Tables
{
    const DecodeTables *lut;
    __m512 fp4;  //!< fp4Value[0..15]
    /** elemEmValue flattened to [code*4 + meta], 64 entries. */
    __m512 em0, em1, em2, em3;
};

const Avx512Tables &
tables512()
{
    static const Avx512Tables t = [] {
        const DecodeTables &lut = DecodeTables::get();
        alignas(64) float em[64];
        for (unsigned c = 0; c < 16; ++c)
            for (unsigned m = 0; m < 4; ++m)
                em[c * 4 + m] = lut.elemEmValue[c][m];
        return Avx512Tables{&lut, _mm512_loadu_ps(lut.fp4Value),
                            _mm512_loadu_ps(em),
                            _mm512_loadu_ps(em + 16),
                            _mm512_loadu_ps(em + 32),
                            _mm512_loadu_ps(em + 48)};
    }();
    return t;
}

/**
 * Decode 16 element codes (two 8-lane subgroups) to their unscaled
 * values: FP4 table permute everywhere, the Elem-EM-adjusted FP6
 * value blended into each subgroup's top-1 lane. @p shifts selects
 * the two subgroups' metadata bit positions within @p mb.
 */
inline __m512
decodeHalf512(const Avx512Tables &t, __m512i code, __m512i mb,
              __m512i shifts)
{
    const __m512i lane_rev = _mm512_setr_epi32(
        7, 6, 5, 4, 3, 2, 1, 0, 7, 6, 5, 4, 3, 2, 1, 0);
    const __m512i swap4 = _mm512_setr_epi32(
        4, 5, 6, 7, 0, 1, 2, 3, 12, 13, 14, 15, 8, 9, 10, 11);
    __m512 fp4 = _mm512_permutexvar_ps(code, t.fp4);
    // Subgroup argmax of (code & 7), ties to the lowest lane, as a
    // segmented max over keys (mag << 3) | (7 - lane) — the same
    // keys as the AVX2 scheme, reduced with three in-register
    // swap+max steps instead of a horizontal extract.
    __m512i mag = _mm512_and_si512(code, _mm512_set1_epi32(7));
    __m512i key = _mm512_or_si512(_mm512_slli_epi32(mag, 3),
                                  lane_rev);
    __m512i mx = _mm512_max_epi32(
        key, _mm512_shuffle_epi32(key, (_MM_PERM_ENUM)0xB1));
    mx = _mm512_max_epi32(
        mx, _mm512_shuffle_epi32(mx, (_MM_PERM_ENUM)0x4E));
    mx = _mm512_max_epi32(mx, _mm512_permutexvar_epi32(swap4, mx));
    __mmask16 win = _mm512_cmpeq_epi32_mask(key, mx);
    // elemEmValue[code][meta] for every lane: 6-bit index into the
    // 64-entry table, two 32-entry vpermt2ps halves blended on
    // index bit 5.
    __m512i mc = _mm512_and_si512(_mm512_srlv_epi32(mb, shifts),
                                  _mm512_set1_epi32(3));
    __m512i idx = _mm512_or_si512(_mm512_slli_epi32(code, 2), mc);
    __m512 em_lo = _mm512_permutex2var_ps(t.em0, idx, t.em1);
    __m512 em_hi = _mm512_permutex2var_ps(t.em2, idx, t.em3);
    __mmask16 b5 =
        _mm512_test_epi32_mask(idx, _mm512_set1_epi32(32));
    __m512 em = _mm512_mask_blend_ps(b5, em_lo, em_hi);
    return _mm512_mask_blend_ps(win, fp4, em);
}

/** 16-wide float exp — the same Cephes expf scheme as the AVX2
 * tier, on 512-bit vectors. */
inline __m512
expPs16(__m512 x)
{
    const __m512 hi = _mm512_set1_ps(88.3762626647949f);
    const __m512 lo = _mm512_set1_ps(-88.3762626647949f);
    const __m512 log2e = _mm512_set1_ps(1.44269504088896341f);
    const __m512 c1 = _mm512_set1_ps(0.693359375f);
    const __m512 c2 = _mm512_set1_ps(-2.12194440e-4f);
    const __m512 one = _mm512_set1_ps(1.0f);

    x = _mm512_min_ps(x, hi);
    x = _mm512_max_ps(x, lo);

    __m512 fx = _mm512_fmadd_ps(x, log2e, _mm512_set1_ps(0.5f));
    fx = _mm512_roundscale_ps(
        fx, _MM_FROUND_TO_NEG_INF | _MM_FROUND_NO_EXC);
    x = _mm512_fnmadd_ps(fx, c1, x);
    x = _mm512_fnmadd_ps(fx, c2, x);

    __m512 z = _mm512_mul_ps(x, x);
    __m512 y = _mm512_set1_ps(1.9875691500e-4f);
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.3981999507e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(8.3334519073e-3f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(4.1665795894e-2f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(1.6666665459e-1f));
    y = _mm512_fmadd_ps(y, x, _mm512_set1_ps(5.0000001201e-1f));
    y = _mm512_fmadd_ps(y, z, _mm512_add_ps(x, one));

    __m512i n = _mm512_cvtps_epi32(fx);
    n = _mm512_add_epi32(n, _mm512_set1_epi32(127));
    n = _mm512_slli_epi32(n, 23);
    return _mm512_mul_ps(y, _mm512_castsi512_ps(n));
}

} // anonymous namespace

void
dotHeadsAvx512(const float *q, const float *row, size_t hd,
               unsigned n_heads, unsigned group, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + (h / group) * hd;
        __m512d s0 = _mm512_setzero_pd();
        __m512d s1 = _mm512_setzero_pd();
        size_t c = 0;
        for (; c + 16 <= hd; c += 16) {
            s0 = _mm512_fmadd_pd(loadPs8(a + c), loadPs8(b + c), s0);
            s1 = _mm512_fmadd_pd(loadPs8(a + c + 8),
                                 loadPs8(b + c + 8), s1);
        }
        if (c + 8 <= hd) {
            s0 = _mm512_fmadd_pd(loadPs8(a + c), loadPs8(b + c), s0);
            c += 8;
        }
        double dot = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
        for (; c < hd; ++c)
            dot += static_cast<double>(a[c]) * b[c];
        out[h] = dot;
    }
}

void
accumHeadsAvx512(const double *p, const float *row, size_t hd,
                 unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        __m512d pv = _mm512_set1_pd(p[h]);
        const float *vr = row + (h / group) * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        for (; c + 8 <= hd; c += 8)
            _mm512_storeu_pd(
                ar + c, _mm512_fmadd_pd(pv, loadPs8(vr + c),
                                        _mm512_loadu_pd(ar + c)));
        for (; c < hd; ++c)
            ar[c] += p[h] * vr[c];
    }
}

void
decodeRowsAvx512(const PackedM2xfpTensor &t, size_t row0,
                 size_t n_rows, size_t stride, float *out)
{
    const Avx512Tables &tab = tables512();
    // Metadata bit positions of subgroups (0,1) and (2,3).
    const __m512i shifts_a = _mm512_setr_epi32(
        0, 0, 0, 0, 0, 0, 0, 0, 2, 2, 2, 2, 2, 2, 2, 2);
    const __m512i shifts_b = _mm512_setr_epi32(
        4, 4, 4, 4, 4, 4, 4, 4, 6, 6, 6, 6, 6, 6, 6, 6);
    const __m128i nib = _mm_set1_epi8(0x0f);
    size_t gpr = t.groupsPerRow();
    for (size_t r = 0; r < n_rows; ++r) {
        float *o = out + r * stride;
        const uint8_t *bytes = t.groupElementBytes(row0 + r, 0);
        size_t g = 0;
        // Two groups per iteration: four independent 16-lane decode
        // chains keep the shuffle ports busy across the table
        // permutes' latency.
        for (; g + 2 <= gpr; g += 2) {
            float s0 =
                tab.lut->e8m0Value[t.scaleCode(row0 + r, g)];
            float s1 =
                tab.lut->e8m0Value[t.scaleCode(row0 + r, g + 1)];
            __m512i mb0 =
                _mm512_set1_epi32(t.groupMetaByte(row0 + r, g));
            __m512i mb1 =
                _mm512_set1_epi32(t.groupMetaByte(row0 + r, g + 1));
            __m128i raw0 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bytes + g * 16));
            __m128i raw1 = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bytes + g * 16 +
                                                  16));
            __m128i lo0 = _mm_and_si128(raw0, nib);
            __m128i hi0 =
                _mm_and_si128(_mm_srli_epi16(raw0, 4), nib);
            __m128i lo1 = _mm_and_si128(raw1, nib);
            __m128i hi1 =
                _mm_and_si128(_mm_srli_epi16(raw1, 4), nib);
            __m512 v0 = decodeHalf512(
                tab,
                _mm512_cvtepu8_epi32(_mm_unpacklo_epi8(lo0, hi0)),
                mb0, shifts_a);
            __m512 v1 = decodeHalf512(
                tab,
                _mm512_cvtepu8_epi32(_mm_unpackhi_epi8(lo0, hi0)),
                mb0, shifts_b);
            __m512 v2 = decodeHalf512(
                tab,
                _mm512_cvtepu8_epi32(_mm_unpacklo_epi8(lo1, hi1)),
                mb1, shifts_a);
            __m512 v3 = decodeHalf512(
                tab,
                _mm512_cvtepu8_epi32(_mm_unpackhi_epi8(lo1, hi1)),
                mb1, shifts_b);
            __m512 sc0 = _mm512_set1_ps(s0);
            __m512 sc1 = _mm512_set1_ps(s1);
            _mm512_storeu_ps(o + g * 32, _mm512_mul_ps(v0, sc0));
            _mm512_storeu_ps(o + g * 32 + 16,
                             _mm512_mul_ps(v1, sc0));
            _mm512_storeu_ps(o + g * 32 + 32,
                             _mm512_mul_ps(v2, sc1));
            _mm512_storeu_ps(o + g * 32 + 48,
                             _mm512_mul_ps(v3, sc1));
        }
        for (; g < gpr; ++g) {
            float sval =
                tab.lut->e8m0Value[t.scaleCode(row0 + r, g)];
            __m512i mb =
                _mm512_set1_epi32(t.groupMetaByte(row0 + r, g));
            __m128i raw = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(bytes + g * 16));
            __m128i lo = _mm_and_si128(raw, nib);
            __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), nib);
            __m512 v0 = decodeHalf512(
                tab, _mm512_cvtepu8_epi32(_mm_unpacklo_epi8(lo, hi)),
                mb, shifts_a);
            __m512 v1 = decodeHalf512(
                tab, _mm512_cvtepu8_epi32(_mm_unpackhi_epi8(lo, hi)),
                mb, shifts_b);
            __m512 sc = _mm512_set1_ps(sval);
            _mm512_storeu_ps(o + g * 32, _mm512_mul_ps(v0, sc));
            _mm512_storeu_ps(o + g * 32 + 16,
                             _mm512_mul_ps(v1, sc));
        }
    }
}

void
scorePageAvx512(const float *q, const float *rows, size_t stride,
                size_t n_rows, size_t hd, unsigned n_heads,
                unsigned group, double inv_sqrt, double *scores,
                size_t s_stride, double *smax)
{
    // The query is reused by every row of the page, so widen each
    // head's slice to double once (cvtps_pd is exact, so the FMA
    // inputs — and therefore every score bit — are unchanged) and
    // turn the per-row q conversions into plain double loads. The
    // stack slab bounds hd; headDim beyond it would be far outside
    // any transformer shape, and the row loops below only ever read
    // lanes < hd.
    constexpr size_t kMaxHd = 1024;
    alignas(64) double qd[kMaxHd];
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *base = rows + (h / group) * hd;
        double *sh = scores + h * s_stride;
        double mx = -std::numeric_limits<double>::infinity();
        size_t wide = hd <= kMaxHd ? hd & ~size_t{7} : 0;
        for (size_t c = 0; c < wide; c += 8)
            _mm512_storeu_pd(qd + c, loadPs8(a + c));
        size_t r = 0;
        // Two rows per iteration: four independent FMA chains hide
        // the FMA latency and overlap the horizontal reductions.
        // Each row's chain structure is exactly dotHeadsAvx512's,
        // so per-score results stay bit-identical to the per-row
        // primitive.
        for (; r + 2 <= n_rows; r += 2) {
            const float *b0 = base + r * stride;
            const float *b1 = b0 + stride;
            __m512d s00 = _mm512_setzero_pd();
            __m512d s01 = _mm512_setzero_pd();
            __m512d s10 = _mm512_setzero_pd();
            __m512d s11 = _mm512_setzero_pd();
            size_t c = 0;
            for (; c + 16 <= wide; c += 16) {
                __m512d qa = _mm512_load_pd(qd + c);
                __m512d qb = _mm512_load_pd(qd + c + 8);
                s00 = _mm512_fmadd_pd(qa, loadPs8(b0 + c), s00);
                s01 = _mm512_fmadd_pd(qb, loadPs8(b0 + c + 8), s01);
                s10 = _mm512_fmadd_pd(qa, loadPs8(b1 + c), s10);
                s11 = _mm512_fmadd_pd(qb, loadPs8(b1 + c + 8), s11);
            }
            for (; c + 16 <= hd; c += 16) {
                __m512d qa = loadPs8(a + c);
                __m512d qb = loadPs8(a + c + 8);
                s00 = _mm512_fmadd_pd(qa, loadPs8(b0 + c), s00);
                s01 = _mm512_fmadd_pd(qb, loadPs8(b0 + c + 8), s01);
                s10 = _mm512_fmadd_pd(qa, loadPs8(b1 + c), s10);
                s11 = _mm512_fmadd_pd(qb, loadPs8(b1 + c + 8), s11);
            }
            if (c + 8 <= hd) {
                __m512d qa = c + 8 <= wide ? _mm512_load_pd(qd + c)
                                           : loadPs8(a + c);
                s00 = _mm512_fmadd_pd(qa, loadPs8(b0 + c), s00);
                s10 = _mm512_fmadd_pd(qa, loadPs8(b1 + c), s10);
                c += 8;
            }
            double d0 =
                _mm512_reduce_add_pd(_mm512_add_pd(s00, s01));
            double d1 =
                _mm512_reduce_add_pd(_mm512_add_pd(s10, s11));
            for (; c < hd; ++c) {
                d0 += static_cast<double>(a[c]) * b0[c];
                d1 += static_cast<double>(a[c]) * b1[c];
            }
            double x0 = d0 * inv_sqrt;
            double x1 = d1 * inv_sqrt;
            sh[r] = x0;
            sh[r + 1] = x1;
            mx = std::max(mx, std::max(x0, x1));
        }
        for (; r < n_rows; ++r) {
            const float *b = base + r * stride;
            __m512d s0 = _mm512_setzero_pd();
            __m512d s1 = _mm512_setzero_pd();
            size_t c = 0;
            for (; c + 16 <= wide; c += 16) {
                s0 = _mm512_fmadd_pd(_mm512_load_pd(qd + c),
                                     loadPs8(b + c), s0);
                s1 = _mm512_fmadd_pd(_mm512_load_pd(qd + c + 8),
                                     loadPs8(b + c + 8), s1);
            }
            for (; c + 16 <= hd; c += 16) {
                s0 = _mm512_fmadd_pd(loadPs8(a + c), loadPs8(b + c),
                                     s0);
                s1 = _mm512_fmadd_pd(loadPs8(a + c + 8),
                                     loadPs8(b + c + 8), s1);
            }
            if (c + 8 <= hd) {
                __m512d qa = c + 8 <= wide ? _mm512_load_pd(qd + c)
                                           : loadPs8(a + c);
                s0 = _mm512_fmadd_pd(qa, loadPs8(b + c), s0);
                c += 8;
            }
            double dot =
                _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
            for (; c < hd; ++c)
                dot += static_cast<double>(a[c]) * b[c];
            double s = dot * inv_sqrt;
            sh[r] = s;
            mx = std::max(mx, s);
        }
        smax[h] = mx;
    }
}

namespace {

/**
 * One channel block of the page accumulation: NR 8-lane accumulator
 * registers (NR*8 channels) walk the page's rows once. A single
 * chain per register means the row walk would be FMA-latency-bound;
 * NR independent chains push it to FMA throughput instead. Per
 * channel lane the adds stay in ascending-row order — bit-identical
 * to accumHeadsAvx512 called per ascending row.
 */
template <int NR>
inline void
accumBlock512(const double *wh, const float *base, size_t stride,
              size_t n_rows, double *ar)
{
    __m512d a[NR];
    for (int i = 0; i < NR; ++i)
        a[i] = _mm512_loadu_pd(ar + 8 * i);
    for (size_t r = 0; r < n_rows; ++r) {
        __m512d pv = _mm512_set1_pd(wh[r]);
        const float *b = base + r * stride;
        for (int i = 0; i < NR; ++i)
            a[i] = _mm512_fmadd_pd(pv, loadPs8(b + 8 * i), a[i]);
    }
    for (int i = 0; i < NR; ++i)
        _mm512_storeu_pd(ar + 8 * i, a[i]);
}

} // anonymous namespace

void
accumPageAvx512(const double *w, size_t w_stride, const float *rows,
                size_t stride, size_t n_rows, size_t hd,
                unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const double *wh = w + h * w_stride;
        const float *base = rows + (h / group) * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        // Channel-outer, row-inner with the accumulator held in up
        // to 8 registers (64 channels) across the whole page; a
        // typical head (hd 48) is one accumBlock512<6> call.
        for (; c + 64 <= hd; c += 64)
            accumBlock512<8>(wh, base + c, stride, n_rows, ar + c);
        switch ((hd - c) / 8) {
        case 7:
            accumBlock512<7>(wh, base + c, stride, n_rows, ar + c);
            c += 56;
            break;
        case 6:
            accumBlock512<6>(wh, base + c, stride, n_rows, ar + c);
            c += 48;
            break;
        case 5:
            accumBlock512<5>(wh, base + c, stride, n_rows, ar + c);
            c += 40;
            break;
        case 4:
            accumBlock512<4>(wh, base + c, stride, n_rows, ar + c);
            c += 32;
            break;
        case 3:
            accumBlock512<3>(wh, base + c, stride, n_rows, ar + c);
            c += 24;
            break;
        case 2:
            accumBlock512<2>(wh, base + c, stride, n_rows, ar + c);
            c += 16;
            break;
        case 1:
            accumBlock512<1>(wh, base + c, stride, n_rows, ar + c);
            c += 8;
            break;
        default:
            break;
        }
        for (; c < hd; ++c) {
            double s = ar[c];
            for (size_t r = 0; r < n_rows; ++r)
                s += wh[r] *
                     static_cast<double>(base[r * stride + c]);
            ar[c] = s;
        }
    }
}

void
expWeightsAvx512(const double *s, double m, size_t n, double *p)
{
    __m512d md = _mm512_set1_pd(m);
    size_t r = 0;
    for (; r + 16 <= n; r += 16) {
        // Two 8-double differences narrowed to one 16-float vector,
        // one polynomial exp, widened back to two 8-double stores.
        __m256 x0 = _mm512_cvtpd_ps(
            _mm512_sub_pd(_mm512_loadu_pd(s + r), md));
        __m256 x1 = _mm512_cvtpd_ps(
            _mm512_sub_pd(_mm512_loadu_pd(s + r + 8), md));
        // Combine/split through f64x4 lane ops (AVX512F; the f32x8
        // variants would need DQ).
        __m512 e = expPs16(_mm512_castpd_ps(_mm512_insertf64x4(
            _mm512_castps_pd(_mm512_castps256_ps512(x0)),
            _mm256_castps_pd(x1), 1)));
        _mm512_storeu_pd(
            p + r,
            _mm512_cvtps_pd(_mm512_castps512_ps256(e)));
        _mm512_storeu_pd(
            p + r + 8,
            _mm512_cvtps_pd(_mm256_castpd_ps(_mm512_extractf64x4_pd(
                _mm512_castps_pd(e), 1))));
    }
    for (; r + 8 <= n; r += 8) {
        __m256 x = _mm512_cvtpd_ps(
            _mm512_sub_pd(_mm512_loadu_pd(s + r), md));
        __m512 e = expPs16(_mm512_castps256_ps512(x));
        _mm512_storeu_pd(
            p + r,
            _mm512_cvtps_pd(_mm512_castps512_ps256(e)));
    }
    for (; r < n; ++r)
        p[r] = static_cast<double>(
            std::exp(static_cast<float>(s[r] - m)));
}

} // namespace detail
} // namespace runtime
} // namespace m2x
