/**
 * @file
 * AVX-512 (F) tier of the KV-cache attention primitives: 8-wide
 * double FMA chains for the per-head score dots and value
 * accumulations.
 *
 * Precision contract: everything accumulates in double, exactly as
 * the AVX2 tier — wider lanes only reassociate further, so results
 * still differ from the scalar oracle only at double ulp level,
 * invisible after the float cast of the score and orders of
 * magnitude inside the model tolerance.
 *
 * This translation unit is compiled with -mavx2 -mfma -mavx512f
 * -mavx512bw and must only be entered through the runtime dispatch
 * (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include "runtime/kv_attend_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

/** Widening load: 8 floats -> 8 doubles. */
inline __m512d
loadPs8(const float *p)
{
    return _mm512_cvtps_pd(_mm256_loadu_ps(p));
}

} // anonymous namespace

void
dotHeadsAvx512(const float *q, const float *row, size_t hd,
               unsigned n_heads, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + h * hd;
        __m512d s0 = _mm512_setzero_pd();
        __m512d s1 = _mm512_setzero_pd();
        size_t c = 0;
        for (; c + 16 <= hd; c += 16) {
            s0 = _mm512_fmadd_pd(loadPs8(a + c), loadPs8(b + c), s0);
            s1 = _mm512_fmadd_pd(loadPs8(a + c + 8),
                                 loadPs8(b + c + 8), s1);
        }
        if (c + 8 <= hd) {
            s0 = _mm512_fmadd_pd(loadPs8(a + c), loadPs8(b + c), s0);
            c += 8;
        }
        double dot = _mm512_reduce_add_pd(_mm512_add_pd(s0, s1));
        for (; c < hd; ++c)
            dot += static_cast<double>(a[c]) * b[c];
        out[h] = dot;
    }
}

void
accumHeadsAvx512(const double *p, const float *row, size_t hd,
                 unsigned n_heads, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        __m512d pv = _mm512_set1_pd(p[h]);
        const float *vr = row + h * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        for (; c + 8 <= hd; c += 8)
            _mm512_storeu_pd(
                ar + c, _mm512_fmadd_pd(pv, loadPs8(vr + c),
                                        _mm512_loadu_pd(ar + c)));
        for (; c < hd; ++c)
            ar[c] += p[h] * vr[c];
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
