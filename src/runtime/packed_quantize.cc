#include "runtime/packed_quantize.hh"

#include <algorithm>

#include "core/m2xfp.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {
namespace detail {

const QuantizeKernels &
quantizeKernels(SimdIsa isa)
{
    static const QuantizeKernels scalar{&quantizeActivationRowScalar};
#ifdef M2X_HAVE_AVX2
    static const QuantizeKernels avx2{&quantizeActivationRowAvx2};
    if (isa == SimdIsa::Avx2)
        return avx2;
#endif
#ifdef M2X_HAVE_AVX512
    static const QuantizeKernels avx512{&quantizeActivationRowAvx512};
    if (isa == SimdIsa::Avx512)
        return avx512;
#endif
    (void)isa;
    return scalar;
}

size_t
packedQuantizeGrain(size_t rows, size_t lanes)
{
    if (rows == 0)
        return 1;
    // A serial pool runs inline anyway; one maximal chunk skips the
    // chunking overhead.
    if (lanes <= 1)
        return rows;
    // Target ~4 chunks per lane; the ceiling keeps tiny remainders
    // from exploding the chunk count while guaranteeing that any
    // range of at least 2*lanes rows yields at least 2*lanes chunks.
    return std::clamp<size_t>(ceilDiv(rows, 4 * lanes), 1, rows);
}

} // namespace detail
} // namespace runtime
} // namespace m2x

namespace m2x {

// Fast-path packActivations overloads declared in core/m2xfp_packed.hh
// but owned by the runtime library: core stays free of threading and
// dispatch concerns, while the packer keeps private access to the
// stream storage.

void
PackedM2xfpTensor::packActivations(const Matrix &m,
                                   const ElemEmQuantizer &q,
                                   runtime::ThreadPool *pool,
                                   runtime::SimdIsa isa,
                                   PackedM2xfpTensor &out)
{
    using namespace runtime;

    const ElemEmConfig &cfg = q.config();
    m2x_assert(cfg.groupSize == groupSize &&
               cfg.subgroupSize == subgroupSize && cfg.topK == 1 &&
               cfg.clampBias,
               "packed layout requires the paper config (g32/sg8 top1)");
    m2x_assert(!cfg.adaptiveScale,
               "fast-path packActivations requires the fixed-shared-"
               "scale activation config (adaptiveScale off)");
    m2x_assert(simdIsaAvailable(isa),
               "packActivations: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));

    out.resizeShape(m.rows(), m.cols());
    size_t rows = m.rows();
    size_t gpr = out.groupsPerRow_;
    if (rows == 0 || gpr == 0)
        return;

    // Encoder tiers are byte-exact against each other, so the encode
    // stage may run a different (faster) tier than the surrounding
    // GEMM/attend — see encodeSimdIsa.
    const detail::QuantizeKernels &kern =
        detail::quantizeKernels(encodeSimdIsa(isa));
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t grain = detail::packedQuantizeGrain(rows, tp.size());
    const float *src = m.data();
    size_t cols = m.cols();
    uint8_t *elems = out.elements_.data();
    uint8_t *scales = out.scales_.data();
    uint8_t *meta = out.meta_.data();
    ScaleRule rule = cfg.rule;
    tp.parallelFor(0, rows, grain, [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r)
            kern.quantizeActivationRow(
                src + r * cols, cols, rule,
                elems + r * gpr * bytesPerGroupElems,
                scales + r * gpr, meta + r * gpr);
    });
}

PackedM2xfpTensor
PackedM2xfpTensor::packActivations(const Matrix &m,
                                   const ElemEmQuantizer &q,
                                   runtime::ThreadPool *pool,
                                   runtime::SimdIsa isa)
{
    PackedM2xfpTensor t;
    packActivations(m, q, pool, isa, t);
    return t;
}

void
PackedM2xfpTensor::appendActivationRows(const float *rows,
                                        size_t n_rows,
                                        const ElemEmQuantizer &q,
                                        runtime::SimdIsa isa,
                                        runtime::ThreadPool *pool)
{
    using namespace runtime;

    const ElemEmConfig &cfg = q.config();
    m2x_assert(cfg.groupSize == groupSize &&
               cfg.subgroupSize == subgroupSize && cfg.topK == 1 &&
               cfg.clampBias && !cfg.adaptiveScale,
               "appendActivationRows requires the fixed-shared-scale "
               "paper activation config (g32/sg8 top1)");
    m2x_assert(simdIsaAvailable(isa),
               "appendActivationRows: ISA tier '%s' is not available "
               "on this machine", simdIsaName(isa));
    m2x_assert(cols_ > 0,
               "appendActivationRows on a shapeless tensor (create "
               "via emptyActivations)");
    if (n_rows == 0)
        return;

    size_t gpr = groupsPerRow_;
    size_t old_rows = rows_;
    rows_ += n_rows;
    elements_.resize(rows_ * gpr * bytesPerGroupElems);
    scales_.resize(rows_ * gpr);
    meta_.resize(rows_ * gpr);

    const detail::QuantizeKernels &kern =
        detail::quantizeKernels(encodeSimdIsa(isa));
    auto encode = [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            size_t slot = (old_rows + r) * gpr;
            kern.quantizeActivationRow(
                rows + r * cols_, cols_, cfg.rule,
                elements_.data() + slot * bytesPerGroupElems,
                scales_.data() + slot, meta_.data() + slot);
        }
    };
    if (n_rows == 1) {
        // The decode-step shape: one row per token — pool dispatch
        // would cost more than the encode.
        encode(0, 1);
        return;
    }
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    tp.parallelFor(0, n_rows,
                   detail::packedQuantizeGrain(n_rows, tp.size()),
                   encode);
}

namespace {

// The Elem-EM fast path of the codec packers below: the per-ISA SIMD
// encoder with the paper activation config.
const ElemEmQuantizer &
paperActivationQuantizer()
{
    static const ElemEmQuantizer q = makeM2xfpActivationQuantizer();
    return q;
}

} // anonymous namespace

void
PackedM2xfpTensor::packActivationsCodec(const Matrix &m,
                                        PackedCodec codec,
                                        runtime::ThreadPool *pool,
                                        runtime::SimdIsa isa,
                                        PackedM2xfpTensor &out)
{
    using namespace runtime;

    out.setCodec(codec);
    if (codec == PackedCodec::ElemEm) {
        packActivations(m, paperActivationQuantizer(), pool, isa, out);
        return;
    }
    m2x_assert(simdIsaAvailable(isa),
               "packActivationsCodec: ISA tier '%s' is not available "
               "on this machine", simdIsaName(isa));

    out.resizeShape(m.rows(), m.cols());
    size_t rows = m.rows();
    size_t gpr = out.groupsPerRow_;
    if (rows == 0 || gpr == 0)
        return;

    // Non-Elem-EM codecs encode through the functional row encoder —
    // ISA-independent, hence byte-exact on every tier by construction;
    // only the row distribution is parallel.
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t grain = detail::packedQuantizeGrain(rows, tp.size());
    const float *src = m.data();
    size_t cols = m.cols();
    uint8_t *elems = out.elements_.data();
    uint8_t *scales = out.scales_.data();
    uint8_t *meta = out.meta_.data();
    unsigned geb = out.groupElemBytes_;
    tp.parallelFor(0, rows, grain, [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r)
            packActivationRowCodec(codec, src + r * cols, cols,
                                   elems + r * gpr * geb,
                                   scales + r * gpr, meta + r * gpr);
    });
}

PackedM2xfpTensor
PackedM2xfpTensor::packActivationsCodec(const Matrix &m,
                                        PackedCodec codec,
                                        runtime::ThreadPool *pool,
                                        runtime::SimdIsa isa)
{
    PackedM2xfpTensor t;
    packActivationsCodec(m, codec, pool, isa, t);
    return t;
}

void
PackedM2xfpTensor::appendActivationRowsCodec(const float *rows,
                                             size_t n_rows,
                                             runtime::SimdIsa isa,
                                             runtime::ThreadPool *pool)
{
    using namespace runtime;

    if (codec_ == PackedCodec::ElemEm) {
        appendActivationRows(rows, n_rows, paperActivationQuantizer(),
                             isa, pool);
        return;
    }
    m2x_assert(simdIsaAvailable(isa),
               "appendActivationRowsCodec: ISA tier '%s' is not "
               "available on this machine", simdIsaName(isa));
    m2x_assert(cols_ > 0,
               "appendActivationRowsCodec on a shapeless tensor "
               "(create via emptyActivationsCodec)");
    if (n_rows == 0)
        return;

    size_t gpr = groupsPerRow_;
    size_t old_rows = rows_;
    rows_ += n_rows;
    elements_.resize(rows_ * gpr * groupElemBytes_);
    scales_.resize(rows_ * gpr);
    meta_.resize(rows_ * gpr);

    PackedCodec codec = codec_;
    auto encode = [&](size_t r0, size_t r1) {
        for (size_t r = r0; r < r1; ++r) {
            size_t slot = (old_rows + r) * gpr;
            packActivationRowCodec(
                codec, rows + r * cols_, cols_,
                elements_.data() + slot * groupElemBytes_,
                scales_.data() + slot, meta_.data() + slot);
        }
    };
    if (n_rows == 1) {
        encode(0, 1);
        return;
    }
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    tp.parallelFor(0, n_rows,
                   detail::packedQuantizeGrain(n_rows, tp.size()),
                   encode);
}

} // namespace m2x
