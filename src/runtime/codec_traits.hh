/**
 * @file
 * The codec-traits seam of the packed execution runtime.
 *
 * runtime/decode_lut hardwires the paper pair (Elem-EM activations,
 * Sg-EM weights). CodecTraits generalizes the same LUT family over
 * the PackedCodec axis: per codec, the tables capture
 *   - the stream geometry (group size, nibble bytes — via the
 *     codec's PackedCodecInfo),
 *   - the scale-byte rule (E8M0 exponent or NVFP4's FP8 E4M3),
 *   - the subgroup metadata semantics, classified by GroupDecodeKind:
 *     a top-1 value *replacement* (Elem-EM's FP6 re-round, shared by
 *     M2-NVFP4 activations), a top-1 value *multiplier* (Elem-EE's
 *     exponent offset) or a whole-subgroup scale multiplier (Sg-EM,
 *     the weight role of every codec).
 *
 * Every table entry is produced by the same functions the functional
 * codecs call, so the generic kernels below are bit-identical to
 * PackedM2xfpTensor::unpackActivationsCodec / unpackWeightsCodec —
 * asserted by tests/runtime/codec_traits_test.cc. For
 * PackedCodec::ElemEm they are additionally bit-identical to the
 * legacy decode_lut / per-ISA kernels, which keeps the paper-pair
 * fast paths byte-for-byte intact.
 *
 * The generic kernels are deliberately signature-compatible with the
 * GEMM's DecodeRowFn and the attend's DecodeRowsFn: the drivers pick
 * the ISA kernel for Elem-EM tensors and fall back to these for
 * every other codec, so adding a format never touches a kernel
 * table.
 */

#ifndef M2X_RUNTIME_CODEC_TRAITS_HH__
#define M2X_RUNTIME_CODEC_TRAITS_HH__

#include <cstdint>

#include "core/m2xfp_packed.hh"
#include "runtime/decode_lut.hh"

namespace m2x {
namespace runtime {

/** How a codec's 2-bit subgroup metadata acts during decode. */
enum class GroupDecodeKind : uint8_t
{
    /** The subgroup's top-1 element (FP4-domain selection) is
     *  replaced by a metadata-indexed value (Elem-EM's FP6
     *  re-round). */
    Top1Replace,
    /** The top-1 element's decoded value is multiplied by a
     *  metadata-indexed factor (Elem-EE's exponent offset). */
    Top1Multiply,
    /** The whole subgroup's scale is multiplied by a
     *  metadata-indexed factor (Sg-EM). */
    SubgroupMult,
};

/** Immutable per-codec decode tables; build once via get(). */
struct CodecTraits
{
    PackedCodec codec;
    const PackedCodecInfo *info;

    /** Metadata semantics of the activation role (the weight role is
     *  SubgroupMult for every codec). */
    GroupDecodeKind actKind;

    /** fp4Value[code] = FP4 E2M1 decode of the 4-bit code. */
    float fp4Value[16];

    /** fp4Pair[byte] = both nibbles of a packed element byte. */
    Fp4Pair fp4Pair[256];

    /**
     * scaleValue[code] = decoded shared scale of the scale byte:
     * 2^(code-127) for E8M0 codecs (entry 255 = NaN, never packed),
     * FP8 E4M3 decode for scaleIsFp8 codecs.
     */
    float scaleValue[256];

    /** Subgroup scale multiplier per metadata code: 1 + m/4. */
    float subMult[4];

    /**
     * Top1Replace: the metadata-adjusted signed value of the top-1
     * element, indexed [fp4 code][meta] (before the shared scale).
     */
    float top1Value[16][4];

    /** Top1Multiply: the top-1 value factor 2^(meta - bias). */
    float top1Mult[4];

    /** The process-wide tables of @p codec (built on first use). */
    static const CodecTraits &get(PackedCodec codec);
};

/** @{
 * Codec-generic scalar decode kernels, dispatching on t.codec().
 * Signature-compatible with the GEMM's DecodeRowFn
 * (codecDecodeActivationRow / codecDecodeWeightRow) and the attend's
 * DecodeRowsFn (codecDecodeRows); row buffers are group-padded
 * exactly like the Elem-EM kernels (groupsPerRow * groupSize floats,
 * padding elements decode to +0.0 for every codec).
 */
void codecDecodeActivationGroup(const PackedM2xfpTensor &t, size_t row,
                                size_t group, float *out);
void codecDecodeWeightGroup(const PackedM2xfpTensor &t, size_t row,
                            size_t group, float *out);
void codecDecodeActivationRow(const PackedM2xfpTensor &t, size_t row,
                              float *out);
void codecDecodeWeightRow(const PackedM2xfpTensor &t, size_t row,
                          float *out);
void codecDecodeRows(const PackedM2xfpTensor &t, size_t row0,
                     size_t n_rows, size_t stride, float *out);
/** @} */

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_CODEC_TRAITS_HH__
