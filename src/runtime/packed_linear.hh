/**
 * @file
 * PackedLinear: a LinearOp whose weight is resident as packed M2XFP
 * streams (~4.5 bits/element) instead of a dequantized fp32 matrix,
 * and whose forward pass runs the packed-domain GEMM.
 *
 * Numerically it is a drop-in for QuantizedLinear configured with
 * the paper's M2XFP pair (Sg-EM-2bit weights, Elem-EM-top1
 * activations): on the scalar ISA tier forward() produces
 * bit-identical outputs, because packing + packed GEMM reconstructs
 * exactly the values the functional codecs produce
 * (tests/runtime/packed_linear_test.cc asserts this); vector tiers
 * decode the same values but reassociate the accumulation and are
 * held to the SIMD tolerance contract. What changes is the cost
 * model: ~7.1x less resident weight memory, and a blocked
 * multi-threaded SIMD kernel instead of the naive reference loop.
 */

#ifndef M2X_RUNTIME_PACKED_LINEAR_HH__
#define M2X_RUNTIME_PACKED_LINEAR_HH__

#include <cstdint>

#include "core/m2xfp.hh"
#include "core/m2xfp_packed.hh"
#include "gemm/gemm.hh"
#include "runtime/packed_gemm.hh"

namespace m2x {
namespace runtime {

/**
 * Wall time a forward pass spent in its two phases: online
 * activation packing (the fast-path encoder) and the packed GEMM.
 * Accumulating — one instance can integrate over many calls.
 *
 * This is a per-caller view over the same measurements the
 * telemetry layer exports process-wide: each phase is timed once
 * and the interval feeds the `linear.quantize`/`linear.gemm` trace
 * spans, the `linear.*_ns` registry histograms, and this struct —
 * see runtime/telemetry.hh and docs/OBSERVABILITY.md.
 */
struct ForwardBreakdown
{
    uint64_t quantizeNanos = 0;
    uint64_t gemmNanos = 0;
};

/** y = x W^T with W resident in packed M2XFP form. */
class PackedLinear : public LinearOp
{
  public:
    /**
     * Reusable forward scratch: the packed activation streams. A
     * caller that keeps one Workspace per layer makes the encode
     * side of the steady-state forward allocation-free.
     */
    struct Workspace
    {
        PackedM2xfpTensor packedAct;
    };

    /**
     * Quantize and pack @p weight [out_features, in_features] at
     * construction (offline, like the paper's weight calibration).
     *
     * @param cfg  must keep the paper packed layout (g32/sg8, 2-bit
     *        metadata, top-1); only consulted by the elem_em codec —
     *        other codecs carry their own fixed geometry
     * @param pool thread pool for forward(); null = global pool
     * @param isa  kernel tier for forward(); defaults to the
     *        process-wide dispatch decision (must be available)
     * @param codec packed stream format for the resident weight and
     *        the online activation encode (the format axis of the
     *        codec-traits seam); elem_em keeps the legacy byte-exact
     *        fast path
     */
    explicit PackedLinear(const Matrix &weight, M2xfpConfig cfg = {},
                          ThreadPool *pool = nullptr,
                          SimdIsa isa = activeSimdIsa(),
                          PackedCodec codec = PackedCodec::ElemEm);

    /** Pack x as activations (online) and multiply in packed form. */
    Matrix forward(const Matrix &x) const override;

    /** The into-style LinearOp entry point (no output allocation). */
    void
    forwardInto(const Matrix &x, Matrix &y) const override
    {
        forward(x, y, nullptr, nullptr);
    }

    /**
     * Same, writing into the caller-provided output @p y (resized in
     * place, storage reused). @p ws, when non-null, carries the
     * packed-activation scratch across calls; @p times, when
     * non-null, accumulates the quantize/GEMM wall-time split. Both
     * phases run on the layer's thread pool and ISA tier.
     */
    void forward(const Matrix &x, Matrix &y, Workspace *ws = nullptr,
                 ForwardBreakdown *times = nullptr) const;

    size_t inFeatures() const override { return inFeatures_; }
    size_t outFeatures() const override { return outFeatures_; }

    /** The resident packed weight streams. */
    const PackedM2xfpTensor &packedWeight() const { return weight_; }

    /** Resident weight bytes (all three packed streams). */
    size_t residentBytes() const { return weight_.totalBytes(); }

    /** Bytes the dequantized fp32 weight would occupy. */
    size_t
    denseBytes() const
    {
        return inFeatures_ * outFeatures_ * sizeof(float);
    }

    const ElemEmQuantizer &activationQuantizer() const
    {
        return actQ_;
    }
    const SgEmQuantizer &weightQuantizer() const { return weightQ_; }

    /** The kernel tier forward() executes on. */
    SimdIsa simdIsa() const { return isa_; }

    /** The packed stream format of the weight and activations. */
    PackedCodec codec() const { return codec_; }

  private:
    ElemEmQuantizer actQ_;
    SgEmQuantizer weightQ_;
    PackedM2xfpTensor weight_;
    size_t inFeatures_;
    size_t outFeatures_;
    ThreadPool *pool_;
    SimdIsa isa_;
    PackedCodec codec_;
};

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_PACKED_LINEAR_HH__
