#include "runtime/codec_traits.hh"

#include <array>
#include <cmath>

#include "core/elem_em.hh"
#include "formats/e8m0.hh"
#include "formats/minifloat.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

GroupDecodeKind
actKindOf(PackedCodec codec)
{
    switch (codec) {
    case PackedCodec::ElemEm:
    case PackedCodec::M2Nvfp4:
        return GroupDecodeKind::Top1Replace;
    case PackedCodec::ElemEe:
        return GroupDecodeKind::Top1Multiply;
    case PackedCodec::SgEm:
        return GroupDecodeKind::SubgroupMult;
    }
    m2x_assert(false, "bad PackedCodec");
    return GroupDecodeKind::SubgroupMult;
}

CodecTraits
buildTraits(PackedCodec codec)
{
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp6 = Minifloat::fp6e2m3();
    const Minifloat &fp8 = Minifloat::fp8e4m3();

    CodecTraits t;
    t.codec = codec;
    t.info = &packedCodecInfo(codec);
    t.actKind = actKindOf(codec);

    for (uint32_t c = 0; c < 16; ++c)
        t.fp4Value[c] = fp4.decode(c);
    for (uint32_t b = 0; b < 256; ++b)
        t.fp4Pair[b] = {t.fp4Value[b & 0xfu], t.fp4Value[b >> 4]};

    if (t.info->scaleIsFp8) {
        for (uint32_t c = 0; c < 256; ++c)
            t.scaleValue[c] = fp8.decode(c);
    } else {
        for (uint32_t c = 0; c < 255; ++c)
            t.scaleValue[c] =
                ScaleE8m0::fromCode(static_cast<uint8_t>(c)).value();
        t.scaleValue[255] = std::nanf("");
    }

    for (uint32_t m = 0; m < 4; ++m)
        t.subMult[m] = 1.0f + static_cast<float>(m) / 4.0f;

    // Top1Replace: Elem-EM's FP6 promotion fp4_mag*4 + meta - 1,
    // including the & 0x1f wrap of the never-emitted mag=0/meta=0
    // corner — the same guarded arithmetic as decode_lut.
    for (uint32_t c = 0; c < 16; ++c) {
        uint32_t mag4 = c & 0x7u;
        bool neg = (c >> 3) & 1u;
        for (uint32_t m = 0; m < 4; ++m) {
            uint32_t mag6 = ElemEmQuantizer::decodeFp6Mag(
                mag4, static_cast<uint8_t>(m));
            float mag = fp6.decode(mag6 & 0x1fu);
            t.top1Value[c][m] = neg ? -mag : mag;
        }
    }

    // Top1Multiply: Elem-EE's 2-bit exponent offset, bias 2.
    for (uint32_t m = 0; m < 4; ++m)
        t.top1Mult[m] =
            std::exp2(static_cast<float>(static_cast<int>(m) - 2));

    return t;
}

std::array<CodecTraits, packedCodecCount>
buildAllTraits()
{
    std::array<CodecTraits, packedCodecCount> all{};
    for (PackedCodec c : allPackedCodecs())
        all[static_cast<size_t>(c)] = buildTraits(c);
    return all;
}

/**
 * FP4-domain top-1 of one subgroup: largest magnitude code, ties to
 * the lowest index — exactly ElemEmQuantizer::top1Index.
 */
unsigned
top1Of(const uint8_t *codes, unsigned n)
{
    unsigned best = 0;
    uint32_t best_mag = codes[0] & 0x7u;
    for (unsigned i = 1; i < n; ++i) {
        uint32_t m = codes[i] & 0x7u;
        if (m > best_mag) {
            best_mag = m;
            best = i;
        }
    }
    return best;
}

/** Sg-EM-style decode: out = fp4 * (sval * subMult[meta_s]). */
void
decodeGroupSubgroupMult(const CodecTraits &tr,
                        const PackedM2xfpTensor &t, size_t row,
                        size_t group, float *out)
{
    const PackedCodecInfo &info = *tr.info;
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = tr.scaleValue[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    unsigned n_sub = info.groupSize / info.subgroupSize;
    float sub_scale[4];
    for (unsigned s = 0; s < n_sub; ++s)
        sub_scale[s] = sval * tr.subMult[(meta >> (2 * s)) & 0x3u];

    unsigned bytes_per_sub = info.subgroupSize / 2;
    for (unsigned i = 0; i < info.bytesPerGroupElems; ++i) {
        uint8_t b = bytes[i];
        float scale = sub_scale[i / bytes_per_sub];
        Fp4Pair p = tr.fp4Pair[b];
        out[2 * i] = p.lo * scale;
        out[2 * i + 1] = p.hi * scale;
    }
}

/** Elem-EM-style decode: fp4 * sval, top-1 replaced via top1Value. */
void
decodeGroupTop1Replace(const CodecTraits &tr,
                       const PackedM2xfpTensor &t, size_t row,
                       size_t group, float *out)
{
    const PackedCodecInfo &info = *tr.info;
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = tr.scaleValue[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    uint8_t codes[PackedM2xfpTensor::groupSize];
    for (unsigned i = 0; i < info.bytesPerGroupElems; ++i) {
        uint8_t b = bytes[i];
        codes[2 * i] = b & 0xfu;
        codes[2 * i + 1] = b >> 4;
        Fp4Pair p = tr.fp4Pair[b];
        out[2 * i] = p.lo * sval;
        out[2 * i + 1] = p.hi * sval;
    }

    unsigned n_sub = info.groupSize / info.subgroupSize;
    for (unsigned s = 0; s < n_sub; ++s) {
        const uint8_t *sc = codes + s * info.subgroupSize;
        unsigned best = top1Of(sc, info.subgroupSize);
        uint8_t mcode = (meta >> (2 * s)) & 0x3u;
        out[s * info.subgroupSize + best] =
            tr.top1Value[sc[best]][mcode] * sval;
    }
}

/** Elem-EE-style decode: fp4 * sval, top-1 scaled by top1Mult. */
void
decodeGroupTop1Multiply(const CodecTraits &tr,
                        const PackedM2xfpTensor &t, size_t row,
                        size_t group, float *out)
{
    const PackedCodecInfo &info = *tr.info;
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = tr.scaleValue[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    uint8_t codes[PackedM2xfpTensor::groupSize];
    for (unsigned i = 0; i < info.bytesPerGroupElems; ++i) {
        uint8_t b = bytes[i];
        codes[2 * i] = b & 0xfu;
        codes[2 * i + 1] = b >> 4;
        Fp4Pair p = tr.fp4Pair[b];
        out[2 * i] = p.lo * sval;
        out[2 * i + 1] = p.hi * sval;
    }

    unsigned n_sub = info.groupSize / info.subgroupSize;
    for (unsigned s = 0; s < n_sub; ++s) {
        const uint8_t *sc = codes + s * info.subgroupSize;
        unsigned best = top1Of(sc, info.subgroupSize);
        uint8_t mcode = (meta >> (2 * s)) & 0x3u;
        out[s * info.subgroupSize + best] *= tr.top1Mult[mcode];
    }
}

} // anonymous namespace

const CodecTraits &
CodecTraits::get(PackedCodec codec)
{
    static const std::array<CodecTraits, packedCodecCount> all =
        buildAllTraits();
    size_t i = static_cast<size_t>(codec);
    m2x_assert(i < packedCodecCount, "bad PackedCodec %zu", i);
    return all[i];
}

void
codecDecodeActivationGroup(const PackedM2xfpTensor &t, size_t row,
                           size_t group, float *out)
{
    const CodecTraits &tr = CodecTraits::get(t.codec());
    switch (tr.actKind) {
    case GroupDecodeKind::Top1Replace:
        decodeGroupTop1Replace(tr, t, row, group, out);
        break;
    case GroupDecodeKind::Top1Multiply:
        decodeGroupTop1Multiply(tr, t, row, group, out);
        break;
    case GroupDecodeKind::SubgroupMult:
        decodeGroupSubgroupMult(tr, t, row, group, out);
        break;
    }
}

void
codecDecodeWeightGroup(const PackedM2xfpTensor &t, size_t row,
                       size_t group, float *out)
{
    const CodecTraits &tr = CodecTraits::get(t.codec());
    decodeGroupSubgroupMult(tr, t, row, group, out);
}

void
codecDecodeActivationRow(const PackedM2xfpTensor &t, size_t row,
                         float *out)
{
    size_t gs = t.codecInfo().groupSize;
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        codecDecodeActivationGroup(t, row, g, out + g * gs);
}

void
codecDecodeWeightRow(const PackedM2xfpTensor &t, size_t row,
                     float *out)
{
    size_t gs = t.codecInfo().groupSize;
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        codecDecodeWeightGroup(t, row, g, out + g * gs);
}

void
codecDecodeRows(const PackedM2xfpTensor &t, size_t row0, size_t n_rows,
                size_t stride, float *out)
{
    for (size_t r = 0; r < n_rows; ++r)
        codecDecodeActivationRow(t, row0 + r, out + r * stride);
}

} // namespace runtime
} // namespace m2x
