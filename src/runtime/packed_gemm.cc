#include "runtime/packed_gemm.hh"

#include <algorithm>
#include <atomic>
#include <vector>

#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t tileM = detail::gemmTileM;
constexpr size_t tileN = detail::gemmTileN;

/**
 * Distinguishes A-tile decode caches across GEMM calls: a
 * thread-local buffer keyed only on the tile index could alias a
 * previous call's tensor (same address, different data).
 */
std::atomic<uint64_t> call_counter{0};

} // anonymous namespace

namespace detail {

const GemmKernels &
gemmKernels(SimdIsa isa)
{
    static const GemmKernels scalar{&decodeActivationRow,
                                    &computeTileScalar};
#ifdef M2X_HAVE_AVX2
    static const GemmKernels avx2{&decodeActivationRowAvx2,
                                  &computeTileAvx2};
    if (isa == SimdIsa::Avx2)
        return avx2;
#else
    (void)isa;
#endif
    return scalar;
}

size_t
packedGemmGrain(size_t n_it, size_t n_jt, size_t lanes)
{
    size_t n_tiles = n_it * n_jt;
    if (n_tiles == 0)
        return 1;
    // A serial pool runs inline anyway; one maximal chunk skips the
    // chunking overhead.
    if (lanes <= 1)
        return n_tiles;
    // Whole row stripes when they already balance the lanes: each A
    // tile is then decoded by exactly one thread.
    if (n_it >= 2 * lanes)
        return n_jt;
    // Otherwise split stripes (duplicated A decode is the price of
    // parallelism across N): target ~4 chunks per lane, rounding the
    // grain up so tiny remainders don't explode the chunk count, and
    // never let a chunk exceed one stripe. With the ceiling, every
    // grid of at least 2*lanes tiles yields at least 2*lanes chunks
    // — no shape can serialize onto a few lanes.
    size_t target = ceilDiv(n_tiles, 4 * lanes);
    return std::clamp<size_t>(target, 1, n_jt);
}

} // namespace detail

void
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               Matrix &c, ThreadPool *pool, SimdIsa isa)
{
    m2x_assert(a.cols() == w.cols(),
               "packedMatmulNt K mismatch: %zu vs %zu", a.cols(),
               w.cols());
    m2x_assert(simdIsaAvailable(isa),
               "packedMatmulNt: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    size_t m = a.rows(), n = w.rows(), k = a.cols();
    // Resize in place: a caller-provided output buffer of the right
    // capacity is reused, not reallocated. Every element of the tile
    // grid is written, so skipping the zero-fill is safe.
    c.resize(m, n);
    if (m == 0 || n == 0)
        return;

    const detail::GemmKernels &kern = detail::gemmKernels(isa);
    size_t padded_k = a.groupsPerRow() * groupSize;
    size_t n_it = ceilDiv(m, tileM);
    size_t n_jt = ceilDiv(n, tileN);
    uint64_t call_id =
        call_counter.fetch_add(1, std::memory_order_relaxed) + 1;

    // Tiles are enumerated j-fastest so consecutive chunks reuse the
    // same decoded A tile (cached per thread, keyed by call + tile).
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t n_tiles = n_it * n_jt;
    size_t grain = detail::packedGemmGrain(n_it, n_jt, tp.size());
    tp.parallelFor(
        0, n_tiles, grain,
        [&](size_t t0, size_t t1) {
            thread_local std::vector<float> abuf;
            thread_local uint64_t cached_call = 0;
            thread_local size_t cached_it = SIZE_MAX;
            for (size_t t = t0; t < t1; ++t) {
                size_t it = t / n_jt;
                size_t jt = t % n_jt;
                size_t i0 = it * tileM;
                size_t mt = std::min(tileM, m - i0);
                if (cached_call != call_id || cached_it != it) {
                    abuf.resize(tileM * padded_k);
                    for (size_t ii = 0; ii < mt; ++ii)
                        kern.decodeActivationRow(a, i0 + ii,
                                                 abuf.data() +
                                                     ii * padded_k);
                    cached_call = call_id;
                    cached_it = it;
                }
                size_t j0 = jt * tileN;
                size_t nt = std::min(tileN, n - j0);
                kern.computeTile(w, abuf.data(), padded_k, i0, mt,
                                 j0, nt, k, c);
            }
        });
}

void
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               Matrix &c, ThreadPool *pool)
{
    packedMatmulNt(a, w, c, pool, activeSimdIsa());
}

Matrix
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               ThreadPool *pool, SimdIsa isa)
{
    Matrix c;
    packedMatmulNt(a, w, c, pool, isa);
    return c;
}

Matrix
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               ThreadPool *pool)
{
    return packedMatmulNt(a, w, pool, activeSimdIsa());
}

} // namespace runtime
} // namespace m2x
