#include "runtime/packed_gemm.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <vector>

#include "runtime/codec_traits.hh"
#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "runtime/telemetry.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t tileM = detail::gemmTileM;
constexpr size_t tileN = detail::gemmTileN;

/**
 * Distinguishes per-thread decode caches (W panels, legacy A tiles)
 * across GEMM calls: a thread-local buffer keyed only on the panel
 * index could alias a previous call's tensor (same address,
 * different data).
 */
std::atomic<uint64_t> call_counter{0};

/**
 * One M2X_GEMM_{MC,KC,NC} value, parsed once per process. 0 = unset
 * (malformed values warn and count as unset).
 */
size_t
parseBlockEnv(const char *name)
{
    const char *env = std::getenv(name);
    if (!env || !*env)
        return 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (*end != '\0' || v == 0) {
        m2x_warn("ignoring malformed %s value '%s' (want a positive "
                 "integer)", name, env);
        return 0;
    }
    return static_cast<size_t>(v);
}

struct BlockEnv
{
    size_t mc, kc, nc; // 0 = use the ISA default
};

const BlockEnv &
blockEnv()
{
    static const BlockEnv e{parseBlockEnv("M2X_GEMM_MC"),
                            parseBlockEnv("M2X_GEMM_KC"),
                            parseBlockEnv("M2X_GEMM_NC")};
    return e;
}

} // anonymous namespace

namespace detail {

const GemmKernels &
gemmKernels(SimdIsa isa)
{
    // Cache blocks (mc/kc/nc) per tier: the decoded W panel is nc
    // slivers of padded_k doubles and the A block is mc rows of the
    // same depth, so the defaults keep panel + block + accumulator
    // inside a ~1 MiB L2 at the bench shapes while kc * nr sliver
    // slices stay L1-resident for the register-tile sweep.
    static const GemmKernels scalar{&decodeActivationRow,
                                    &decodeWeightRow,
                                    &microKernelScalar,
                                    &computeTileScalar,
                                    {16, 16, 64, 256, 64},
                                    /*accumulatePadding=*/false};
#ifdef M2X_HAVE_AVX2
    static const GemmKernels avx2{&decodeActivationRowAvx2,
                                  &decodeWeightRowAvx2,
                                  &microKernelAvx2,
                                  &computeTileAvx2,
                                  {4, 8, 128, 256, 128},
                                  /*accumulatePadding=*/true};
    if (isa == SimdIsa::Avx2)
        return avx2;
#endif
#ifdef M2X_HAVE_AVX512
    // The legacy tile kernel predates this tier; the AVX2 one stands
    // in (AVX-512 availability implies AVX2) so the PR3 baseline
    // path stays runnable under every dispatchable ISA.
    static const GemmKernels avx512{&decodeActivationRowAvx2,
                                    &decodeWeightRowAvx512,
                                    &microKernelAvx512,
                                    &computeTileAvx2,
                                    {8, 16, 128, 256, 128},
                                    /*accumulatePadding=*/true};
    if (isa == SimdIsa::Avx512)
        return avx512;
#endif
    (void)isa;
    return scalar;
}

GemmBlocking
normalizeBlocking(SimdIsa isa, size_t mc, size_t kc, size_t nc)
{
    GemmBlocking b = gemmKernels(isa).blocking;
    b.mc = ceilDiv(std::max<size_t>(mc, 1), b.mr) * b.mr;
    b.kc = ceilDiv(std::max<size_t>(kc, 1), groupSize) * groupSize;
    b.nc = ceilDiv(std::max<size_t>(nc, 1), b.nr) * b.nr;
    return b;
}

GemmBlocking
gemmBlocking(SimdIsa isa)
{
    const GemmBlocking &def = gemmKernels(isa).blocking;
    const BlockEnv &env = blockEnv();
    return normalizeBlocking(isa, env.mc ? env.mc : def.mc,
                             env.kc ? env.kc : def.kc,
                             env.nc ? env.nc : def.nc);
}

size_t
packedGemmGrain(size_t n_ic, size_t n_jc, size_t lanes)
{
    size_t n_tasks = n_ic * n_jc;
    if (n_tasks == 0)
        return 1;
    // A serial pool runs inline anyway; one maximal chunk skips the
    // chunking overhead.
    if (lanes <= 1)
        return n_tasks;
    // Whole panel stripes when they already balance the lanes: each
    // W panel is then decoded by exactly one thread.
    if (n_jc >= 2 * lanes)
        return n_ic;
    // Otherwise split stripes (duplicated panel decode is the price
    // of parallelism across M): target ~4 chunks per lane, rounding
    // the grain up so tiny remainders don't explode the chunk count,
    // and never let a chunk exceed one stripe. With the ceiling,
    // every grid of at least 2*lanes tasks yields at least 2*lanes
    // chunks — no block configuration can serialize onto a few
    // lanes. (The stripe cap cannot bind here: grain > n_ic would
    // need n_jc > 4*lanes, contradicting n_jc < 2*lanes.)
    size_t target = ceilDiv(n_tasks, 4 * lanes);
    return std::clamp<size_t>(target, 1, n_ic);
}

void
packedMatmulNtBlocked(const PackedM2xfpTensor &a,
                      const PackedM2xfpTensor &w, Matrix &c,
                      ThreadPool *pool, SimdIsa isa,
                      const GemmBlocking &blocking)
{
    m2x_assert(a.cols() == w.cols(),
               "packedMatmulNt K mismatch: %zu vs %zu", a.cols(),
               w.cols());
    m2x_assert(a.codec() == w.codec(),
               "packedMatmulNt codec mismatch: %s vs %s",
               packedCodecName(a.codec()), packedCodecName(w.codec()));
    m2x_assert(simdIsaAvailable(isa),
               "packedMatmulNt: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    size_t m = a.rows(), n = w.rows(), k = a.cols();
    // Resize in place: a caller-provided output buffer of the right
    // capacity is reused, not reallocated. Every element of the
    // block grid is written, so skipping the zero-fill is safe.
    c.resize(m, n);
    if (m == 0 || n == 0)
        return;

    const detail::GemmKernels &kern = detail::gemmKernels(isa);
    // The codec seam: Elem-EM tensors decode through the ISA tier's
    // LUT kernels; every other codec through the generic traits
    // kernels (bit-identical scalar decode on every tier). The
    // microkernels are decode-agnostic, so only the two row decoders
    // are format-sensitive.
    bool elem_em = a.codec() == PackedCodec::ElemEm;
    detail::DecodeRowFn decode_act =
        elem_em ? kern.decodeActivationRow : &codecDecodeActivationRow;
    detail::DecodeRowFn decode_wt =
        elem_em ? kern.decodeWeightRow : &codecDecodeWeightRow;
    const size_t mr = blocking.mr, nr = blocking.nr;
    const size_t mc = blocking.mc, kc = blocking.kc;
    const size_t nc = blocking.nc;
    // kc stays a multiple of the paper group (32) for every codec —
    // also a multiple of the g16 M2-NVFP4 decode group.
    m2x_assert(mc % mr == 0 && nc % nr == 0 && kc % groupSize == 0,
               "packedMatmulNtBlocked: blocking %zux%zux%zu not "
               "normalized for mr=%zu nr=%zu", mc, kc, nc, mr, nr);
    size_t padded_k = a.groupsPerRow() * a.codecInfo().groupSize;
    // The scalar oracle keeps each output a single ascending-k
    // summation chain over the true depth; vector tiers sweep the
    // zero-filled pad so their FMA loops need no tail handling.
    size_t p_end = kern.accumulatePadding ? padded_k : k;
    size_t n_ic = ceilDiv(m, mc);
    size_t n_jc = ceilDiv(n, nc);
    uint64_t call_id =
        call_counter.fetch_add(1, std::memory_order_relaxed) + 1;

    // Tasks enumerate ic-fastest so consecutive chunks reuse the
    // same decoded W panel (cached per thread, keyed call + panel):
    // the panel's groups are LUT-decoded once and reused across the
    // full M dimension.
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t n_tasks = n_ic * n_jc;
    size_t grain = detail::packedGemmGrain(n_ic, n_jc, tp.size());
    size_t sliver_stride = padded_k * nr;
    telemetry::TraceSpan span("gemm.packed");
    if (span.active()) {
        span.arg("m", m);
        span.arg("n", n);
        span.arg("k", k);
        span.arg("isa", simdIsaName(isa));
        span.arg("mc", mc);
        span.arg("kc", kc);
        span.arg("nc", nc);
        span.arg("tasks", n_tasks);
        span.arg("grain", grain);
    }
    tp.parallelFor(
        0, n_tasks, grain,
        [&](size_t t0, size_t t1) {
            thread_local std::vector<double> panel_store;
            thread_local std::vector<double> ablock_store;
            thread_local std::vector<double> acc_store;
            thread_local std::vector<float> rowbuf_store;
            thread_local uint64_t cached_call = 0;
            thread_local size_t cached_jc = SIZE_MAX;
            rowbuf_store.resize(padded_k);
            float *rowbuf = rowbuf_store.data();
            for (size_t t = t0; t < t1; ++t) {
                size_t jc = t / n_ic;
                size_t ic = t % n_ic;
                size_t j0 = jc * nc;
                size_t nc_cur = std::min(nc, n - j0);
                size_t n_slivers = ceilDiv(nc_cur, nr);
                size_t acc_stride = n_slivers * nr;
                if (cached_call != call_id || cached_jc != jc) {
                    // Pack the W panel: nr-wide k-major slivers,
                    // widened to double, ragged lanes and the depth
                    // pad zero-filled so microkernels always see
                    // full nr x group-aligned slabs.
                    panel_store.resize(n_slivers * sliver_stride);
                    double *panel = panel_store.data();
                    for (size_t sv = 0; sv < n_slivers; ++sv) {
                        double *sl = panel + sv * sliver_stride;
                        size_t jbase = j0 + sv * nr;
                        size_t jlim = std::min(nr, n - jbase);
                        for (size_t lane = 0; lane < jlim; ++lane) {
                            decode_wt(w, jbase + lane, rowbuf);
                            for (size_t p = 0; p < k; ++p)
                                sl[p * nr + lane] = rowbuf[p];
                            for (size_t p = k; p < padded_k; ++p)
                                sl[p * nr + lane] = 0.0;
                        }
                        for (size_t lane = jlim; lane < nr; ++lane)
                            for (size_t p = 0; p < padded_k; ++p)
                                sl[p * nr + lane] = 0.0;
                    }
                    cached_call = call_id;
                    cached_jc = jc;
                }
                const double *panel = panel_store.data();

                // Decode the A block once per task (row-major
                // doubles, depth pad zeroed).
                size_t i0 = ic * mc;
                size_t mc_cur = std::min(mc, m - i0);
                ablock_store.resize(mc_cur * padded_k);
                double *ab = ablock_store.data();
                for (size_t ii = 0; ii < mc_cur; ++ii) {
                    decode_act(a, i0 + ii, rowbuf);
                    double *ar = ab + ii * padded_k;
                    for (size_t p = 0; p < k; ++p)
                        ar[p] = rowbuf[p];
                    for (size_t p = k; p < padded_k; ++p)
                        ar[p] = 0.0;
                }

                // The block's persistent accumulator: KC slicing
                // adds into it across depth slices, so no summation
                // chain is ever split into partial sums.
                acc_store.assign(mc_cur * acc_stride, 0.0);
                double *acc = acc_store.data();
                for (size_t p0 = 0; p0 < p_end; p0 += kc) {
                    size_t p1 = std::min(p0 + kc, p_end);
                    for (size_t sv = 0; sv < n_slivers; ++sv) {
                        const double *sl =
                            panel + sv * sliver_stride;
                        for (size_t ir = 0; ir < mc_cur; ir += mr) {
                            size_t mr_cur =
                                std::min(mr, mc_cur - ir);
                            kern.microKernel(
                                ab + ir * padded_k, padded_k, sl,
                                nr, p0, p1, mr_cur,
                                acc + ir * acc_stride + sv * nr,
                                acc_stride);
                        }
                    }
                }

                for (size_t ii = 0; ii < mc_cur; ++ii) {
                    const double *arow = acc + ii * acc_stride;
                    for (size_t jj = 0; jj < nc_cur; ++jj)
                        c(i0 + ii, j0 + jj) =
                            static_cast<float>(arow[jj]);
                }
            }
        });
}

void
packedMatmulNtTiled(const PackedM2xfpTensor &a,
                    const PackedM2xfpTensor &w, Matrix &c,
                    ThreadPool *pool, SimdIsa isa)
{
    m2x_assert(a.cols() == w.cols(),
               "packedMatmulNt K mismatch: %zu vs %zu", a.cols(),
               w.cols());
    // The PR3 baseline predates the codec seam and its tile kernels
    // hardcode the paper pair; the blocked driver serves every codec.
    m2x_assert(a.codec() == PackedCodec::ElemEm &&
               w.codec() == PackedCodec::ElemEm,
               "packedMatmulNtTiled supports only the elem_em codec");
    m2x_assert(simdIsaAvailable(isa),
               "packedMatmulNt: ISA tier '%s' is not available on "
               "this machine", simdIsaName(isa));
    size_t m = a.rows(), n = w.rows(), k = a.cols();
    c.resize(m, n);
    if (m == 0 || n == 0)
        return;

    const detail::GemmKernels &kern = detail::gemmKernels(isa);
    size_t padded_k = a.groupsPerRow() * groupSize;
    size_t n_it = ceilDiv(m, tileM);
    size_t n_jt = ceilDiv(n, tileN);
    uint64_t call_id =
        call_counter.fetch_add(1, std::memory_order_relaxed) + 1;

    // Tiles are enumerated j-fastest so consecutive chunks reuse the
    // same decoded A tile (cached per thread, keyed by call + tile).
    // The grain heuristic is shared with the blocked driver; here a
    // stripe is the n_jt tiles along one A tile, so the roles of the
    // two grid axes swap.
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t n_tiles = n_it * n_jt;
    size_t grain = detail::packedGemmGrain(n_jt, n_it, tp.size());
    tp.parallelFor(
        0, n_tiles, grain,
        [&](size_t t0, size_t t1) {
            thread_local std::vector<float> abuf;
            thread_local uint64_t cached_call = 0;
            thread_local size_t cached_it = SIZE_MAX;
            for (size_t t = t0; t < t1; ++t) {
                size_t it = t / n_jt;
                size_t jt = t % n_jt;
                size_t i0 = it * tileM;
                size_t mt = std::min(tileM, m - i0);
                if (cached_call != call_id || cached_it != it) {
                    abuf.resize(tileM * padded_k);
                    for (size_t ii = 0; ii < mt; ++ii)
                        kern.decodeActivationRow(a, i0 + ii,
                                                 abuf.data() +
                                                     ii * padded_k);
                    cached_call = call_id;
                    cached_it = it;
                }
                size_t j0 = jt * tileN;
                size_t nt = std::min(tileN, n - j0);
                kern.computeTile(w, abuf.data(), padded_k, i0, mt,
                                 j0, nt, k, c);
            }
        });
}

} // namespace detail

void
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               Matrix &c, ThreadPool *pool, SimdIsa isa)
{
    detail::packedMatmulNtBlocked(a, w, c, pool, isa,
                                  detail::gemmBlocking(isa));
}

void
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               Matrix &c, ThreadPool *pool)
{
    packedMatmulNt(a, w, c, pool, activeSimdIsa());
}

Matrix
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               ThreadPool *pool, SimdIsa isa)
{
    Matrix c;
    packedMatmulNt(a, w, c, pool, isa);
    return c;
}

Matrix
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               ThreadPool *pool)
{
    return packedMatmulNt(a, w, pool, activeSimdIsa());
}

} // namespace runtime
} // namespace m2x
