#include "runtime/packed_gemm.hh"

#include <algorithm>
#include <atomic>
#include <vector>

#include "runtime/decode_lut.hh"
#include "util/bits.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;

/** Output tile height (A rows) and width (W rows) per task. */
constexpr size_t tileM = 16;
constexpr size_t tileN = 16;

/**
 * Distinguishes A-tile decode caches across GEMM calls: a
 * thread-local buffer keyed only on the tile index could alias a
 * previous call's tensor (same address, different data).
 */
std::atomic<uint64_t> call_counter{0};

/**
 * One output tile: rows [i0, i0+mt) x cols [j0, j0+nt), with the
 * decoded A tile already in abuf (mt rows x padded_k floats).
 */
void
computeTile(const PackedM2xfpTensor &w, const float *abuf,
            size_t padded_k, size_t i0, size_t mt, size_t j0,
            size_t nt, size_t k, Matrix &c)
{
    // Independent double accumulators: each c(i,j) still sums its
    // products in ascending-k order (bit-exact vs matmulNt), but
    // adjacent outputs interleave, hiding the FP add latency.
    double acc[tileM][tileN] = {};
    float wtile[groupSize * tileN]; // transposed: [p][jj]
    float wrow[groupSize];

    size_t n_groups = padded_k / groupSize;
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * groupSize;
        size_t glen = std::min(groupSize, k - base);
        for (size_t jj = 0; jj < nt; ++jj) {
            decodeWeightGroup(w, j0 + jj, g, wrow);
            for (size_t p = 0; p < glen; ++p)
                wtile[p * tileN + jj] = wrow[p];
        }
        for (size_t p = 0; p < glen; ++p) {
            const float *wp = wtile + p * tileN;
            for (size_t ii = 0; ii < mt; ++ii) {
                double av = abuf[ii * padded_k + base + p];
                double *arow = acc[ii];
                for (size_t jj = 0; jj < nt; ++jj)
                    arow[jj] += av * wp[jj];
            }
        }
    }

    for (size_t ii = 0; ii < mt; ++ii)
        for (size_t jj = 0; jj < nt; ++jj)
            c(i0 + ii, j0 + jj) =
                static_cast<float>(acc[ii][jj]);
}

} // anonymous namespace

void
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               Matrix &c, ThreadPool *pool)
{
    m2x_assert(a.cols() == w.cols(),
               "packedMatmulNt K mismatch: %zu vs %zu", a.cols(),
               w.cols());
    size_t m = a.rows(), n = w.rows(), k = a.cols();
    c = Matrix(m, n);
    if (m == 0 || n == 0)
        return;

    size_t padded_k = a.groupsPerRow() * groupSize;
    size_t n_it = ceilDiv(m, tileM);
    size_t n_jt = ceilDiv(n, tileN);
    uint64_t call_id =
        call_counter.fetch_add(1, std::memory_order_relaxed) + 1;

    // Tiles are enumerated j-fastest so consecutive chunks reuse the
    // same decoded A tile (cached per thread, keyed by call + tile).
    // With enough row stripes to balance, hand out whole stripes so
    // each A tile is decoded by exactly one thread; only when stripes
    // are scarce split them (accepting duplicated A decode as the
    // price of parallelism across N).
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    size_t n_tiles = n_it * n_jt;
    size_t lanes = tp.size();
    size_t grain =
        n_it >= 2 * lanes
            ? n_jt
            : std::clamp<size_t>(n_tiles / (4 * lanes), 1, n_jt);
    tp.parallelFor(
        0, n_tiles, grain,
        [&](size_t t0, size_t t1) {
            thread_local std::vector<float> abuf;
            thread_local uint64_t cached_call = 0;
            thread_local size_t cached_it = SIZE_MAX;
            for (size_t t = t0; t < t1; ++t) {
                size_t it = t / n_jt;
                size_t jt = t % n_jt;
                size_t i0 = it * tileM;
                size_t mt = std::min(tileM, m - i0);
                if (cached_call != call_id || cached_it != it) {
                    abuf.resize(tileM * padded_k);
                    for (size_t ii = 0; ii < mt; ++ii)
                        decodeActivationRow(a, i0 + ii,
                                            abuf.data() +
                                                ii * padded_k);
                    cached_call = call_id;
                    cached_it = it;
                }
                size_t j0 = jt * tileN;
                size_t nt = std::min(tileN, n - j0);
                computeTile(w, abuf.data(), padded_k, i0, mt, j0,
                            nt, k, c);
            }
        });
}

Matrix
packedMatmulNt(const PackedM2xfpTensor &a, const PackedM2xfpTensor &w,
               ThreadPool *pool)
{
    Matrix c;
    packedMatmulNt(a, w, c, pool);
    return c;
}

} // namespace runtime
} // namespace m2x
