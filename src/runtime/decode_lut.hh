/**
 * @file
 * Decode lookup tables for the packed M2XFP execution runtime.
 *
 * The functional codecs (core/elem_em, core/sg_em) decode with
 * branchy float math and per-group vector allocations — fine for
 * verification, far too slow for a compute engine. These tables turn
 * group dequantization into pure loads:
 *   - a 16-entry FP4 E2M1 value table and its 256-entry byte-pair
 *     expansion (both nibbles of a packed element byte at once),
 *   - a 256-entry E8M0 scale-value table,
 *   - the Sg-EM role: a 4-entry subgroup-multiplier table (1 + m/4),
 *   - the Elem-EM role: a 64-entry [fp4 code][meta] table of the
 *     metadata-adjusted (FP6-re-rounded) element value.
 *
 * Every entry is produced by calling the exact same functions the
 * functional decoders call, so LUT decode is bit-identical to
 * PackedM2xfpTensor::unpackActivations / unpackWeights — this is
 * asserted by tests/runtime/decode_lut_test.cc.
 */

#ifndef M2X_RUNTIME_DECODE_LUT_HH__
#define M2X_RUNTIME_DECODE_LUT_HH__

#include <cstdint>

#include "core/m2xfp_packed.hh"

namespace m2x {
namespace runtime {

/** Two decoded FP4 values of one packed element byte. */
struct Fp4Pair
{
    float lo; //!< low nibble (even element)
    float hi; //!< high nibble (odd element)
};

/** Immutable decode tables; build once via get(). */
struct DecodeTables
{
    /** fp4Value[code] = FP4 E2M1 decode of the 4-bit code. */
    float fp4Value[16];

    /** fp4Pair[byte] = both nibbles of a packed element byte. */
    Fp4Pair fp4Pair[256];

    /**
     * e8m0Value[code] = 2^(code-127). Entry 255 (the E8M0 NaN code,
     * never produced by the packers) is quiet NaN.
     */
    float e8m0Value[256];

    /** Sg-EM subgroup scale multiplier: 1 + m/4 for m in 0..3. */
    float sgEmMult[4];

    /**
     * Elem-EM metadata-adjusted value of the subgroup's top-1
     * element: elemEmValue[code][meta] is the signed FP6 E2M3 value
     * reconstructed from FP4 code and 2-bit metadata (before the
     * shared scale is applied).
     */
    float elemEmValue[16][4];

    /** The process-wide tables (built on first use, thread-safe). */
    static const DecodeTables &get();
};

/**
 * Decode one 32-element group of an activation-role (Elem-EM) tensor
 * into out[0..31] (padding elements included). Bit-identical to
 * unpackActivations() for the paper config.
 */
void decodeActivationGroup(const PackedM2xfpTensor &t, size_t row,
                           size_t group, float *out);

/** Same for a weight-role (Sg-EM) tensor. */
void decodeWeightGroup(const PackedM2xfpTensor &t, size_t row,
                       size_t group, float *out);

/**
 * Decode one full row of an activation-role tensor into
 * out[0 .. groupsPerRow*32) — the tail group keeps its padding
 * elements, so the buffer must be group-padded.
 */
void decodeActivationRow(const PackedM2xfpTensor &t, size_t row,
                         float *out);

/** Same for a weight-role tensor. */
void decodeWeightRow(const PackedM2xfpTensor &t, size_t row,
                     float *out);

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_DECODE_LUT_HH__
