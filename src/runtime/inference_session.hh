/**
 * @file
 * InferenceSession: batched forward passes of a zoo model with every
 * linear layer executing in the packed M2XFP domain.
 *
 * The session owns a TinyTransformer rebuilt so each of its linear
 * operators is a PackedLinear (weights resident as packed streams)
 * wrapped in a timing shim, giving per-layer wall time, throughput,
 * and resident-bytes accounting — the serving-side counterpart of
 * the paper's accuracy benches, and the substrate later
 * batching/sharding work plugs into.
 */

#ifndef M2X_RUNTIME_INFERENCE_SESSION_HH__
#define M2X_RUNTIME_INFERENCE_SESSION_HH__

#include <atomic>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/m2xfp.hh"
#include "core/packed_codec.hh"
#include "model/config.hh"
#include "model/transformer.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {

/** Accumulated per-layer execution statistics. */
struct LayerStats
{
    std::string name;
    std::string isa;        //!< kernel tier the layer executes on
    size_t inFeatures = 0;
    size_t outFeatures = 0;
    size_t packedBytes = 0; //!< resident packed weight bytes
    size_t denseBytes = 0;  //!< fp32 equivalent
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> nanos{0};
    std::atomic<uint64_t> rows{0}; //!< total activation rows seen
    /** @{
     * Forward-pass phase split: online activation packing (the
     * fast-path encoder) vs the packed GEMM. Their sum is slightly
     * below nanos (shim overhead, buffer resizing).
     */
    std::atomic<uint64_t> quantizeNanos{0};
    std::atomic<uint64_t> gemmNanos{0};
    /** @} */

    double seconds() const { return 1e-9 * nanos.load(); }
    double quantizeSeconds() const
    {
        return 1e-9 * quantizeNanos.load();
    }
    double gemmSeconds() const { return 1e-9 * gemmNanos.load(); }

    /** Achieved GEMM throughput over all recorded calls. */
    double
    gflops() const
    {
        double s = seconds();
        if (s <= 0.0)
            return 0.0;
        double flops = 2.0 * static_cast<double>(rows.load()) *
                       static_cast<double>(inFeatures) *
                       static_cast<double>(outFeatures);
        return flops / s * 1e-9;
    }
};

/** Session construction knobs. */
struct SessionConfig
{
    /** Parallel lanes for the packed GEMM; 0 = the global pool. */
    unsigned threads = 0;
    /** Format configuration (must keep the paper packed layout). */
    M2xfpConfig format{};
    /** Kernel tier for every layer; defaults to the dispatch pick. */
    SimdIsa isa = activeSimdIsa();
    /**
     * Packed stream codec for every layer's weight + activation
     * encode. Session-level default follows the M2X_FORMAT
     * environment override (see defaultPackedCodec()); low-level
     * APIs keep explicit elem_em defaults.
     */
    PackedCodec codec = defaultPackedCodec();
};

/**
 * A loaded model ready to serve forward passes through PackedLinear
 * layers.
 *
 * Forward calls on one session are safe from any number of threads,
 * but the fast path expects a single serving thread (parallelism
 * lives inside the packed kernels): each layer shim reuses a
 * per-layer activation-packing workspace across calls, and a
 * concurrent forward that finds it claimed falls back to per-call
 * scratch — correct, just not allocation-free.
 */
class InferenceSession
{
  public:
    explicit InferenceSession(const model::ModelConfig &model_cfg,
                              SessionConfig cfg = {});
    ~InferenceSession();

    /** Logits [tokens, vocab] for one causal forward pass. */
    Matrix forward(std::span<const int> tokens);

    /** Forward every sequence of a batch; returns per-seq logits. */
    std::vector<Matrix>
    forwardBatch(const std::vector<std::vector<int>> &batch);

    /** Per-layer stats in deterministic layer order. */
    const std::vector<std::shared_ptr<LayerStats>> &
    layerStats() const
    {
        return stats_;
    }

    /** Wall time spent inside packed linear layers since reset. */
    double linearSeconds() const;

    /** Total resident packed weight bytes across all layers. */
    size_t packedWeightBytes() const;

    /** Total fp32-equivalent weight bytes. */
    size_t denseWeightBytes() const;

    /** Zero all timing counters (keeps the packed weights). */
    void resetStats();

    /** The kernel tier every layer executes on. */
    SimdIsa simdIsa() const { return isa_; }

    /** The packed stream codec every layer executes with. */
    PackedCodec codec() const { return codec_; }

    const model::TinyTransformer &model() const { return model_; }
    const model::ModelConfig &modelConfig() const
    {
        return model_.config();
    }

  private:
    std::unique_ptr<ThreadPool> ownedPool_; //!< when threads != 0
    model::TinyTransformer model_;
    std::vector<std::shared_ptr<LayerStats>> stats_;
    SimdIsa isa_;
    PackedCodec codec_;
};

/**
 * A LinearFactory producing PackedLinear layers, for wiring the
 * packed runtime into zoo-style evaluation code. @p stats, when non
 * null, receives one LayerStats per created layer (timing shims are
 * inserted); @p pool null uses the global pool; @p isa pins the
 * kernel tier (defaults to the process-wide dispatch decision).
 */
model::LinearFactory packedLinearFactory(
    M2xfpConfig cfg = {}, ThreadPool *pool = nullptr,
    std::vector<std::shared_ptr<LayerStats>> *stats = nullptr,
    SimdIsa isa = activeSimdIsa(),
    PackedCodec codec = PackedCodec::ElemEm);

} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_INFERENCE_SESSION_HH__
