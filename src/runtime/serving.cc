#include "runtime/serving.hh"

#include <algorithm>

#include "runtime/telemetry.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/** @{ Cached serving metric handles (null while metrics off). */
std::atomic<telemetry::Histogram *> stepSlot{nullptr};
std::atomic<telemetry::Histogram *> tokenSlot{nullptr};
std::atomic<telemetry::Histogram *> ttftSlot{nullptr};
std::atomic<telemetry::Counter *> tokensSlot{nullptr};
std::atomic<telemetry::Counter *> preemptSlot{nullptr};
std::atomic<telemetry::Counter *> admitSlot{nullptr};
std::atomic<telemetry::Gauge *> occupancySlot{nullptr};
std::atomic<telemetry::Gauge *> activeSlot{nullptr};
std::atomic<telemetry::Gauge *> queuedSlot{nullptr};
std::atomic<telemetry::Gauge *> freePagesSlot{nullptr};
std::atomic<telemetry::Gauge *> highWaterSlot{nullptr};
/** @} */

/** Greedy sampling: the arg-max logit of one row. */
int
argmaxRow(const Matrix &logits, size_t row)
{
    size_t best = 0;
    for (size_t c = 1; c < logits.cols(); ++c)
        if (logits(row, c) > logits(row, best))
            best = c;
    return static_cast<int>(best);
}

} // anonymous namespace

const char *
requestStateName(RequestState s)
{
    switch (s) {
    case RequestState::Queued:
        return "queued";
    case RequestState::Active:
        return "active";
    case RequestState::Preempted:
        return "preempted";
    case RequestState::Finished:
        return "finished";
    }
    return "?";
}

Matrix
CacheAttendBackend::attend(size_t layer, const Matrix &q,
                           const Matrix &k, const Matrix &v,
                           std::span<const size_t> positions,
                           unsigned n_heads, unsigned n_kv_heads,
                           size_t window)
{
    telemetry::TraceSpan span("decode.attend");
    if (span.active()) {
        span.arg("layer", layer);
        span.arg("rows", q.rows());
        span.arg("mode", chunk_ ? "prefill" : "step");
    }
    uint64_t t0 = telemetry::nowNanos();
    size_t d = q.cols();     // n_heads * headDim
    size_t d_kv = k.cols();  // n_kv_heads * headDim (GQA: <= d)
    Matrix ctx(q.rows(), d);
    if (chunk_) {
        chunk_->append(layer, k.data(), v.data(), k.rows(), pool_);
        chunk_->attend(layer, q.data(), q.rows(), positions[0],
                       n_heads, ctx.data(), pool_, n_kv_heads,
                       window);
        // Sliding window: pages every query's window has moved past
        // can never be attended again. Release them once the last
        // layer is done with this chunk (earlier layers only ever
        // see the same or later positions).
        if (window != 0 && layer + 1 == chunk_->layers()) {
            size_t end = positions[0] + q.rows();
            chunk_->releaseBefore(end > window ? end - window : 0);
        }
    } else {
        m2x_assert(rowCaches_.size() == q.rows(),
                   "CacheAttendBackend: %zu row caches for %zu rows",
                   rowCaches_.size(), q.rows());
        ThreadPool &tp = pool_ ? *pool_ : ThreadPool::global();
        tp.parallelFor(0, q.rows(), 1, [&](size_t s0, size_t s1) {
            for (size_t s = s0; s < s1; ++s) {
                // Per-sequence span: in step mode each lane attends
                // its own cache, so the trace shows the per-sequence
                // cost on its lane's track.
                telemetry::TraceSpan seq_span("decode.attend.seq");
                if (seq_span.active()) {
                    seq_span.arg("seq", s);
                    seq_span.arg("layer", layer);
                    seq_span.arg("pos", positions[s]);
                }
                KvCache &c = *rowCaches_[s];
                c.append(layer, k.data() + s * d_kv,
                         v.data() + s * d_kv, 1);
                c.attend(layer, q.data() + s * d, 1, positions[s],
                         n_heads, ctx.data() + s * d, pool_,
                         n_kv_heads, window);
                if (window != 0 && layer + 1 == c.layers()) {
                    size_t end = positions[s] + 1;
                    c.releaseBefore(end > window ? end - window
                                                 : 0);
                }
            }
        });
    }
    if (attendNanos_)
        attendNanos_->fetch_add(telemetry::nowNanos() - t0,
                                std::memory_order_relaxed);
    return ctx;
}

ServingEngine::ServingEngine(const model::ModelConfig &model_cfg,
                             ServingConfig cfg)
    : cfg_(cfg),
      ownedPool_(cfg.threads
                     ? std::make_unique<ThreadPool>(cfg.threads)
                     : nullptr),
      model_(model_cfg), isa_(cfg.isa),
      arena_(model_cfg.kvDim(), cfg.kvMode, cfg.format, cfg.isa,
             KvArenaConfig{cfg.pageRows, cfg.arenaPages, cfg.codec}),
      backend_(ownedPool_.get(), &attendNanos_)
{
    m2x_assert(cfg.arenaPages > 0,
               "ServingEngine needs a fixed arena (arenaPages > 0)");
    m2x_assert(cfg.maxBatch > 0, "ServingEngine needs maxBatch > 0");
    m2x_assert(cfg.admitFreeFraction >= 0.0 &&
               cfg.admitFreeFraction < 1.0,
               "admitFreeFraction must be in [0, 1)");
    model_.rebuild(packedLinearFactory(cfg.format, ownedPool_.get(),
                                       &stats_, isa_, cfg.codec));
}

ServingEngine::~ServingEngine() = default;

size_t
ServingEngine::submit(std::vector<int> prompt,
                      size_t max_new_tokens)
{
    m2x_assert(!prompt.empty(), "submit: empty prompt");
    m2x_assert(max_new_tokens > 0, "submit: max_new_tokens == 0");
    size_t id = reqs_.size();
    Request r;
    r.prompt = std::move(prompt);
    r.st.promptTokens = r.prompt.size();
    r.st.maxNewTokens = max_new_tokens;
    r.st.submitNs = telemetry::nowNanos();
    reqs_.push_back(std::move(r));
    queued_.push_back(id);
    return id;
}

const RequestStats &
ServingEngine::stats(size_t id) const
{
    m2x_assert(id < reqs_.size(), "request %zu out of %zu", id,
               reqs_.size());
    return reqs_[id].st;
}

const std::vector<int> &
ServingEngine::generated(size_t id) const
{
    m2x_assert(id < reqs_.size(), "request %zu out of %zu", id,
               reqs_.size());
    return reqs_[id].out;
}

void
ServingEngine::finish(Request &r, uint64_t now)
{
    r.cache.reset(); // pages return to the arena's free list
    r.st.state = RequestState::Finished;
    r.st.finishNs = now;
    ++finished_;
}

void
ServingEngine::activate(size_t id)
{
    Request &r = reqs_[id];
    bool resumed = !r.out.empty();
    // The cache must hold every token the model has consumed so
    // far: the prompt, plus all generated tokens except the newest
    // (which has not been fed back yet).
    std::vector<int> hist(r.prompt);
    if (resumed)
        hist.insert(hist.end(), r.out.begin(), r.out.end() - 1);
    std::vector<size_t> positions(hist.size());
    for (size_t t = 0; t < hist.size(); ++t)
        positions[t] = t;

    r.cache = std::make_unique<KvCache>(arena_,
                                        model_.config().nLayers);
    backend_.beginChunk(*r.cache);
    telemetry::TraceSpan span("serving.prefill");
    if (span.active()) {
        span.arg("request", id);
        span.arg("tokens", hist.size());
        span.arg("resumed", resumed ? 1 : 0);
    }
    Matrix logits = model_.forwardChunk(hist, positions, backend_);
    uint64_t now = telemetry::nowNanos();
    r.st.state = RequestState::Active;
    if (auto *c = telemetry::cachedCounter(admitSlot,
                                           "serving.admitted"))
        c->add(1);
    if (!resumed) {
        // The prefill's last-row logits produce the first token; a
        // resumed request already knows its next token (out.back()).
        int tok = argmaxRow(logits, logits.rows() - 1);
        r.out.push_back(tok);
        r.st.generated = 1;
        r.st.firstTokenNs = now;
        r.lastEmitNs = now;
        ttfts_.push_back(r.st.ttftSeconds());
        if (auto *h = telemetry::cachedHistogram(ttftSlot,
                                                 "serving.ttft_ns"))
            h->record(now - r.st.submitNs);
        if (auto *c = telemetry::cachedCounter(tokensSlot,
                                               "serving.tokens"))
            c->add(1);
        bool last = r.out.size() >= r.st.maxNewTokens;
        if (tokenCb_)
            tokenCb_(id, tok, last);
        if (last) {
            finish(r, now);
            return;
        }
    }
    active_.push_back(id);
}

void
ServingEngine::admit()
{
    unsigned layers = model_.config().nLayers;
    size_t reserve = static_cast<size_t>(
        cfg_.admitFreeFraction *
        static_cast<double>(cfg_.arenaPages));
    while (active_.size() < cfg_.maxBatch) {
        size_t id;
        bool from_preempted = !preempted_.empty();
        if (from_preempted)
            id = preempted_.front(); // sorted: oldest resumes first
        else if (!queued_.empty())
            id = queued_.front();
        else
            break;
        Request &r = reqs_[id];
        size_t hist = r.prompt.size() +
                      (r.out.empty() ? 0 : r.out.size() - 1);
        // Pages for the history plus the first decode row, so a
        // fresh admission cannot immediately force a preemption.
        size_t needed =
            2 * layers *
            KvPageArena::pagesForRows(hist + 1, cfg_.pageRows);
        if (arena_.freePages() < needed + reserve) {
            if (active_.empty() && arena_.livePages() == 0)
                m2x_fatal(
                    "serving: request %zu needs %zu pages (+%zu "
                    "watermark) but the arena holds only %zu — "
                    "enlarge arenaPages or shrink the request",
                    id, needed, reserve, arena_.capacityPages());
            break; // admission stall until retirements free pages
        }
        if (from_preempted)
            preempted_.erase(preempted_.begin());
        else
            queued_.pop_front();
        activate(id);
    }
}

void
ServingEngine::ensureStepCapacity()
{
    auto step_pages = [&] {
        size_t worst = 0;
        for (size_t id : active_)
            worst += reqs_[id].cache->pagesNeededFor(1);
        return worst;
    };
    size_t worst = step_pages();
    while (arena_.freePages() < worst && active_.size() > 1) {
        // FCFS with preemption: evict the youngest active sequence;
        // its pages return to the free list and its token history
        // stays behind for a byte-exact re-prefill later.
        size_t victim = active_.back();
        active_.pop_back();
        Request &r = reqs_[victim];
        r.cache.reset();
        r.st.state = RequestState::Preempted;
        ++r.st.preemptions;
        ++preemptions_;
        preempted_.insert(
            std::lower_bound(preempted_.begin(), preempted_.end(),
                             victim),
            victim);
        if (auto *c = telemetry::cachedCounter(
                preemptSlot, "serving.preemptions"))
            c->add(1);
        worst = step_pages();
    }
    m2x_assert(arena_.freePages() >= worst,
               "serving: one sequence's step needs %zu pages but "
               "only %zu are free — enlarge arenaPages", worst,
               arena_.freePages());
}

void
ServingEngine::updateGauges()
{
    if (auto *g = telemetry::cachedGauge(occupancySlot,
                                         "serving.occupancy"))
        g->set(arena_.occupancy());
    if (auto *g = telemetry::cachedGauge(activeSlot,
                                         "serving.active"))
        g->set(static_cast<double>(active_.size()));
    if (auto *g = telemetry::cachedGauge(queuedSlot,
                                         "serving.queued"))
        g->set(static_cast<double>(waitingCount()));
    if (auto *g = telemetry::cachedGauge(freePagesSlot,
                                         "serving.free_pages"))
        g->set(static_cast<double>(arena_.freePages()));
    if (auto *g = telemetry::cachedGauge(
            highWaterSlot, "serving.high_water_pages"))
        g->set(static_cast<double>(arena_.highWaterPages()));
}

bool
ServingEngine::step()
{
    if (idle())
        return false;
    telemetry::TraceSpan span("serving.step");
    admit();
    if (active_.empty()) {
        // Every admission either finished instantly (maxNew == 1)
        // or the queue drained; nothing to step this iteration.
        updateGauges();
        return !idle();
    }
    ensureStepCapacity();
    if (span.active()) {
        span.arg("active", active_.size());
        span.arg("waiting", waitingCount());
    }

    stepTokens_.clear();
    stepPositions_.clear();
    rowCaches_.clear();
    for (size_t id : active_) {
        Request &r = reqs_[id];
        stepTokens_.push_back(r.out.back());
        stepPositions_.push_back(r.cache->length());
        rowCaches_.push_back(r.cache.get());
    }
    backend_.beginRows(rowCaches_);
    uint64_t t0 = telemetry::nowNanos();
    Matrix logits =
        model_.forwardChunk(stepTokens_, stepPositions_, backend_);
    uint64_t now = telemetry::nowNanos();

    auto *token_h =
        telemetry::cachedHistogram(tokenSlot, "serving.token_ns");
    size_t w = 0;
    for (size_t s = 0; s < active_.size(); ++s) {
        size_t id = active_[s];
        Request &r = reqs_[id];
        int tok = argmaxRow(logits, s);
        r.out.push_back(tok);
        r.st.generated = r.out.size();
        tokenLat_.push_back(
            1e-9 * static_cast<double>(now - r.lastEmitNs));
        if (token_h)
            token_h->record(now - r.lastEmitNs);
        r.lastEmitNs = now;
        bool last = r.out.size() >= r.st.maxNewTokens;
        if (tokenCb_)
            tokenCb_(id, tok, last);
        if (last)
            finish(r, now);
        else
            active_[w++] = id;
    }
    size_t emitted = active_.size();
    active_.resize(w);

    ++steps_;
    double occ = arena_.occupancy();
    occPeak_ = std::max(occPeak_, occ);
    occSum_ += occ;
    if (auto *h = telemetry::cachedHistogram(stepSlot,
                                             "serving.step_ns"))
        h->record(now - t0);
    if (auto *c = telemetry::cachedCounter(tokensSlot,
                                           "serving.tokens"))
        c->add(emitted);
    updateGauges();
    return true;
}

size_t
ServingEngine::runToCompletion()
{
    size_t before = 0;
    for (const Request &r : reqs_)
        before += r.out.size();
    while (step()) {
    }
    size_t after = 0;
    for (const Request &r : reqs_)
        after += r.out.size();
    return after - before;
}

} // namespace runtime
} // namespace m2x
