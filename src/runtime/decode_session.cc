#include "runtime/decode_session.hh"

#include "runtime/telemetry.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

/** @{ Cached decode metric handles (null while metrics off). */
std::atomic<telemetry::Histogram *> stepSlot{nullptr};
std::atomic<telemetry::Histogram *> prefillSlot{nullptr};
std::atomic<telemetry::Counter *> stepTokensSlot{nullptr};
std::atomic<telemetry::Gauge *> kvBytesSlot{nullptr};
std::atomic<telemetry::Gauge *> kvTokensSlot{nullptr};
std::atomic<telemetry::Gauge *> kvBytesPerTokSlot{nullptr};
std::atomic<telemetry::Gauge *> sequencesSlot{nullptr};
std::atomic<telemetry::Gauge *> attendScratchSlot{nullptr};
/** @} */

} // anonymous namespace

DecodeSession::DecodeSession(const model::ModelConfig &model_cfg,
                             DecodeConfig cfg)
    : cfg_(cfg),
      ownedPool_(cfg.threads
                     ? std::make_unique<ThreadPool>(cfg.threads)
                     : nullptr),
      model_(model_cfg), isa_(cfg.isa),
      arena_(model_cfg.kvDim(), cfg.kvMode, cfg.format, cfg.isa,
             KvArenaConfig{cfg.pageRows, cfg.arenaPages, cfg.codec}),
      backend_(ownedPool_.get(), &attendNanos_)
{
    model_.rebuild(packedLinearFactory(cfg.format, ownedPool_.get(),
                                       &stats_, isa_, cfg.codec));
}

DecodeSession::~DecodeSession() = default;

ThreadPool *
DecodeSession::pool() const
{
    return ownedPool_.get();
}

size_t
DecodeSession::addSequence()
{
    seqs_.push_back(
        Sequence{KvCache(arena_, model_.config().nLayers)});
    return seqs_.size() - 1;
}

size_t
DecodeSession::length(size_t seq) const
{
    m2x_assert(seq < seqs_.size(), "sequence %zu out of %zu", seq,
               seqs_.size());
    return seqs_[seq].cache.length();
}

const KvCache &
DecodeSession::cache(size_t seq) const
{
    m2x_assert(seq < seqs_.size(), "sequence %zu out of %zu", seq,
               seqs_.size());
    return seqs_[seq].cache;
}

size_t
DecodeSession::kvBytes() const
{
    size_t bytes = 0;
    for (const Sequence &s : seqs_)
        bytes += s.cache.totalBytes();
    return bytes;
}

double
DecodeSession::kvBytesPerToken() const
{
    size_t tokens = 0;
    for (const Sequence &s : seqs_)
        tokens += s.cache.length();
    return tokens == 0 ? 0.0
                       : static_cast<double>(kvBytes()) /
                             static_cast<double>(tokens);
}

Matrix
DecodeSession::prefill(size_t seq, std::span<const int> tokens)
{
    m2x_assert(seq < seqs_.size(), "sequence %zu out of %zu", seq,
               seqs_.size());
    m2x_assert(!tokens.empty(), "prefill needs at least one token");
    size_t pos0 = seqs_[seq].cache.length();
    std::vector<size_t> positions(tokens.size());
    for (size_t t = 0; t < tokens.size(); ++t)
        positions[t] = pos0 + t;
    backend_.beginChunk(seqs_[seq].cache);
    telemetry::TraceSpan span("decode.prefill");
    if (span.active()) {
        span.arg("seq", seq);
        span.arg("tokens", tokens.size());
        span.arg("pos0", pos0);
    }
    uint64_t t0 = telemetry::metricsEnabled()
                      ? telemetry::nowNanos()
                      : 0;
    Matrix out = model_.forwardChunk(tokens, positions, backend_);
    if (t0) {
        if (auto *h = telemetry::cachedHistogram(
                prefillSlot, "decode.prefill_ns"))
            h->record(telemetry::nowNanos() - t0);
        updateKvGauges();
    }
    return out;
}

Matrix
DecodeSession::decode(std::span<const int> next)
{
    m2x_assert(!seqs_.empty(), "decode with no sequences");
    m2x_assert(next.size() == seqs_.size(),
               "decode: %zu tokens for %zu sequences", next.size(),
               seqs_.size());
    std::vector<size_t> positions(seqs_.size());
    rowCaches_.clear();
    for (size_t s = 0; s < seqs_.size(); ++s) {
        positions[s] = seqs_[s].cache.length();
        rowCaches_.push_back(&seqs_[s].cache);
    }
    backend_.beginRows(rowCaches_);
    telemetry::TraceSpan span("decode.step");
    if (span.active()) {
        span.arg("batch", next.size());
        span.arg("pos0", positions[0]);
    }
    uint64_t t0 = telemetry::metricsEnabled()
                      ? telemetry::nowNanos()
                      : 0;
    Matrix out = model_.forwardChunk(next, positions, backend_);
    if (t0) {
        if (auto *h = telemetry::cachedHistogram(stepSlot,
                                                 "decode.step_ns"))
            h->record(telemetry::nowNanos() - t0);
        if (auto *c = telemetry::cachedCounter(
                stepTokensSlot, "decode.step_tokens"))
            c->add(next.size());
        updateKvGauges();
    }
    return out;
}

void
DecodeSession::updateKvGauges() const
{
    size_t tokens = 0;
    for (const Sequence &s : seqs_)
        tokens += s.cache.length();
    size_t bytes = kvBytes();
    if (auto *g = telemetry::cachedGauge(kvBytesSlot,
                                         "decode.kv_bytes"))
        g->set(static_cast<double>(bytes));
    if (auto *g = telemetry::cachedGauge(kvTokensSlot,
                                         "decode.kv_tokens"))
        g->set(static_cast<double>(tokens));
    if (auto *g = telemetry::cachedGauge(
            kvBytesPerTokSlot, "decode.kv_bytes_per_token"))
        g->set(tokens ? static_cast<double>(bytes) /
                            static_cast<double>(tokens)
                      : 0.0);
    if (auto *g = telemetry::cachedGauge(sequencesSlot,
                                         "decode.sequences"))
        g->set(static_cast<double>(seqs_.size()));
    if (auto *g = telemetry::cachedGauge(
            attendScratchSlot, "decode.attend_scratch_bytes"))
        g->set(static_cast<double>(attendScratchPeakBytes()));
}

} // namespace runtime
} // namespace m2x
