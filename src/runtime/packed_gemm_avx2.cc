/**
 * @file
 * AVX2+FMA tier of the packed GEMM: vectorized LUT decode of the
 * M2XFP byte streams and an FMA microkernel over double accumulator
 * vectors.
 *
 * Decode: both nibbles of each packed element byte are split with
 * byte ops, widened to 32-bit lanes, and the 16-entry FP4 E2M1 table
 * collapses to an 8-entry magnitude permute (vpermps) plus a sign
 * XOR — exactly the scalar tables' values, so the decoded floats are
 * bit-identical to runtime/decode_lut (asserted by
 * tests/runtime/simd_test.cc over all 256 byte values per stream).
 * The Elem-EM top-1 fix-up touches one element per subgroup and
 * stays scalar.
 *
 * Accumulate: decoded W rows and the A row are widened once to
 * doubles (amortized over the tile), then the K loop runs 4 weight
 * rows x 2 k-vectors = 8 independent 4-wide double FMA chains — deep
 * enough to cover the FMA latency at two issues per cycle. Lane sums
 * are reduced horizontally at the end, so the summation order
 * differs from the scalar oracle; parity is tolerance-checked, never
 * assumed bit-exact.
 *
 * This translation unit is compiled with -mavx2 -mfma and must only
 * be entered through the runtime dispatch (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include <algorithm>
#include <bit>
#include <vector>

#include "runtime/decode_lut.hh"
#include "runtime/packed_gemm_kernels.hh"
#include "util/logging.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr unsigned subgroupSize = PackedM2xfpTensor::subgroupSize;
constexpr unsigned bytesPerGroup =
    PackedM2xfpTensor::bytesPerGroupElems;
constexpr unsigned nSubgroups = groupSize / subgroupSize;

/** Scalar tables plus their vector-register forms. */
struct Avx2Tables
{
    const DecodeTables *lut;
    __m256 fp4Mag; //!< fp4Value[0..7]: the positive half
};

const Avx2Tables &
tables()
{
    static const Avx2Tables t = [] {
        const DecodeTables &lut = DecodeTables::get();
        // The vector decode reconstructs negative codes as
        // sign-bit XOR on the positive entry; that is only
        // bit-identical to the scalar table if the table itself is
        // sign-symmetric (it is, for FP4 E2M1 — including -0.0).
        for (unsigned i = 0; i < 8; ++i)
            m2x_assert(std::bit_cast<uint32_t>(lut.fp4Value[8 + i]) ==
                       (std::bit_cast<uint32_t>(lut.fp4Value[i]) ^
                        0x80000000u),
                       "FP4 value table is not sign-symmetric");
        return Avx2Tables{&lut, _mm256_loadu_ps(lut.fp4Value)};
    }();
    return t;
}

/** FP4 decode of 8 codes (32-bit lanes): magnitude permute + sign. */
inline __m256
decodeFp4x8(__m256i codes, __m256 mag_table)
{
    __m256i mag = _mm256_and_si256(codes, _mm256_set1_epi32(7));
    __m256i sign = _mm256_slli_epi32(
        _mm256_and_si256(codes, _mm256_set1_epi32(8)), 28);
    __m256 val = _mm256_permutevar8x32_ps(mag_table, mag);
    return _mm256_xor_ps(val, _mm256_castsi256_ps(sign));
}

/**
 * Split one group's 16 packed bytes into 32 interleaved 4-bit codes
 * (element order: byte i's low nibble is element 2i), returned as
 * four 8-code chunks — one per subgroup.
 */
inline void
splitNibbles(const uint8_t *bytes, __m128i chunk[4])
{
    __m128i raw = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(bytes));
    __m128i mask = _mm_set1_epi8(0x0f);
    __m128i lo = _mm_and_si128(raw, mask);
    __m128i hi = _mm_and_si128(_mm_srli_epi16(raw, 4), mask);
    __m128i il0 = _mm_unpacklo_epi8(lo, hi); // codes 0..15
    __m128i il1 = _mm_unpackhi_epi8(lo, hi); // codes 16..31
    chunk[0] = il0;
    chunk[1] = _mm_srli_si128(il0, 8);
    chunk[2] = il1;
    chunk[3] = _mm_srli_si128(il1, 8);
}

/** Horizontal sum of a 4-double vector. */
inline double
hsum(__m256d v)
{
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
}

/** Widen @p n floats (multiple of 4) to doubles. */
inline void
widenToDouble(const float *src, double *dst, size_t n)
{
    for (size_t p = 0; p < n; p += 4)
        _mm256_storeu_pd(dst + p,
                         _mm256_cvtps_pd(_mm_loadu_ps(src + p)));
}

} // anonymous namespace

void
decodeWeightGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                      size_t group, float *out)
{
    const Avx2Tables &tab = tables();
    float sval = tab.lut->e8m0Value[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    __m128i chunk[4];
    splitNibbles(t.groupElementBytes(row, group), chunk);
    // One subgroup = one 8-lane vector; same two multiplies in the
    // same order as the scalar decode (value * (sval * mult)).
    for (unsigned s = 0; s < nSubgroups; ++s) {
        float mult = tab.lut->sgEmMult[(meta >> (2 * s)) & 0x3u];
        __m256 scale = _mm256_set1_ps(sval * mult);
        __m256 val = decodeFp4x8(_mm256_cvtepu8_epi32(chunk[s]),
                                 tab.fp4Mag);
        _mm256_storeu_ps(out + subgroupSize * s,
                         _mm256_mul_ps(val, scale));
    }
}

void
decodeActivationGroupAvx2(const PackedM2xfpTensor &t, size_t row,
                          size_t group, float *out)
{
    const Avx2Tables &tab = tables();
    const uint8_t *bytes = t.groupElementBytes(row, group);
    float sval = tab.lut->e8m0Value[t.scaleCode(row, group)];
    uint8_t meta = t.groupMetaByte(row, group);

    __m128i chunk[4];
    splitNibbles(bytes, chunk);
    __m256 scale = _mm256_set1_ps(sval);
    alignas(16) uint8_t codes[groupSize];
    // Elem-EM top-1 selection in the same pass: the subgroup's
    // argmax of (code & 7) with ties to the lowest index, found as
    // a horizontal max over keys (mag << 3) | (7 - lane) — equal
    // magnitudes then rank by descending (7 - lane), i.e. the
    // lowest lane wins, exactly the scalar decode's strict-compare
    // scan. The winning element is re-read from the metadata-
    // adjusted FP6 table, matching runtime/decode_lut bit for bit.
    const __m256i lane_rev =
        _mm256_setr_epi32(7, 6, 5, 4, 3, 2, 1, 0);
    for (unsigned s = 0; s < nSubgroups; ++s) {
        _mm_storel_epi64(
            reinterpret_cast<__m128i *>(codes + subgroupSize * s),
            chunk[s]);
        __m256i c32 = _mm256_cvtepu8_epi32(chunk[s]);
        __m256 val = decodeFp4x8(c32, tab.fp4Mag);
        _mm256_storeu_ps(out + subgroupSize * s,
                         _mm256_mul_ps(val, scale));

        __m256i mag = _mm256_and_si256(c32, _mm256_set1_epi32(7));
        __m256i key = _mm256_or_si256(_mm256_slli_epi32(mag, 3),
                                      lane_rev);
        __m128i mx = _mm_max_epi32(_mm256_castsi256_si128(key),
                                   _mm256_extracti128_si256(key, 1));
        mx = _mm_max_epi32(
            mx, _mm_shuffle_epi32(mx, _MM_SHUFFLE(1, 0, 3, 2)));
        mx = _mm_max_epi32(
            mx, _mm_shuffle_epi32(mx, _MM_SHUFFLE(2, 3, 0, 1)));
        unsigned best =
            7u - (static_cast<uint32_t>(_mm_cvtsi128_si32(mx)) & 7u);
        uint8_t mcode = (meta >> (2 * s)) & 0x3u;
        out[s * subgroupSize + best] =
            tab.lut->elemEmValue[codes[s * subgroupSize + best]]
                                [mcode] *
            sval;
    }
}

void
decodeActivationRowAvx2(const PackedM2xfpTensor &t, size_t row,
                        float *out)
{
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        decodeActivationGroupAvx2(t, row, g, out + g * groupSize);
}

void
decodeWeightRowAvx2(const PackedM2xfpTensor &t, size_t row,
                    float *out)
{
    for (size_t g = 0; g < t.groupsPerRow(); ++g)
        decodeWeightGroupAvx2(t, row, g, out + g * groupSize);
}

void
microKernelAvx2(const double *a, size_t a_stride, const double *ws,
                size_t nr, size_t p0, size_t p1, size_t mr_cur,
                double *acc, size_t acc_stride)
{
    // Broadcast-form register tile, MR=4 x NR=8: per depth step the
    // sliver contributes two 4-wide W vectors and each A row one
    // broadcast, feeding 8 independent FMA chains — enough to cover
    // the FMA latency at two issues per cycle. The accumulators
    // live in acc across KC slices; they are staged through
    // registers for the sweep and stored back at the end.
    m2x_assert(nr == 8, "microKernelAvx2 expects nr=8, got %zu", nr);
    if (mr_cur == 4) {
        double *r0 = acc;
        double *r1 = acc + acc_stride;
        double *r2 = acc + 2 * acc_stride;
        double *r3 = acc + 3 * acc_stride;
        __m256d c0l = _mm256_loadu_pd(r0);
        __m256d c0h = _mm256_loadu_pd(r0 + 4);
        __m256d c1l = _mm256_loadu_pd(r1);
        __m256d c1h = _mm256_loadu_pd(r1 + 4);
        __m256d c2l = _mm256_loadu_pd(r2);
        __m256d c2h = _mm256_loadu_pd(r2 + 4);
        __m256d c3l = _mm256_loadu_pd(r3);
        __m256d c3h = _mm256_loadu_pd(r3 + 4);
        const double *a0 = a;
        const double *a1 = a + a_stride;
        const double *a2 = a + 2 * a_stride;
        const double *a3 = a + 3 * a_stride;
        for (size_t p = p0; p < p1; ++p) {
            const double *wp = ws + p * 8;
            __m256d wl = _mm256_loadu_pd(wp);
            __m256d wh = _mm256_loadu_pd(wp + 4);
            __m256d av = _mm256_broadcast_sd(a0 + p);
            c0l = _mm256_fmadd_pd(av, wl, c0l);
            c0h = _mm256_fmadd_pd(av, wh, c0h);
            av = _mm256_broadcast_sd(a1 + p);
            c1l = _mm256_fmadd_pd(av, wl, c1l);
            c1h = _mm256_fmadd_pd(av, wh, c1h);
            av = _mm256_broadcast_sd(a2 + p);
            c2l = _mm256_fmadd_pd(av, wl, c2l);
            c2h = _mm256_fmadd_pd(av, wh, c2h);
            av = _mm256_broadcast_sd(a3 + p);
            c3l = _mm256_fmadd_pd(av, wl, c3l);
            c3h = _mm256_fmadd_pd(av, wh, c3h);
        }
        _mm256_storeu_pd(r0, c0l);
        _mm256_storeu_pd(r0 + 4, c0h);
        _mm256_storeu_pd(r1, c1l);
        _mm256_storeu_pd(r1 + 4, c1h);
        _mm256_storeu_pd(r2, c2l);
        _mm256_storeu_pd(r2 + 4, c2h);
        _mm256_storeu_pd(r3, c3l);
        _mm256_storeu_pd(r3 + 4, c3h);
        return;
    }
    // Ragged edge (mr_cur < 4): per-row two-accumulator sweep.
    for (size_t ii = 0; ii < mr_cur; ++ii) {
        double *r = acc + ii * acc_stride;
        const double *ar = a + ii * a_stride;
        __m256d cl = _mm256_loadu_pd(r);
        __m256d ch = _mm256_loadu_pd(r + 4);
        for (size_t p = p0; p < p1; ++p) {
            const double *wp = ws + p * 8;
            __m256d av = _mm256_broadcast_sd(ar + p);
            cl = _mm256_fmadd_pd(av, _mm256_loadu_pd(wp), cl);
            ch = _mm256_fmadd_pd(av, _mm256_loadu_pd(wp + 4), ch);
        }
        _mm256_storeu_pd(r, cl);
        _mm256_storeu_pd(r + 4, ch);
    }
}

void
computeTileAvx2(const PackedM2xfpTensor &w, const float *abuf,
                size_t padded_k, size_t i0, size_t mt, size_t j0,
                size_t nt, size_t k, Matrix &c)
{
    // Decoded W rows and the current A row, widened to doubles once
    // per tile/row. Rows [nt, nt4) and depths [k, padded_k) are
    // zeroed, so the FMA loop needs no tail handling and tail-group
    // padding decode can never leak into an output.
    size_t nt4 = (nt + 3) & ~size_t{3};
    thread_local std::vector<double> wd_store;
    thread_local std::vector<double> ad_store;
    wd_store.resize(gemmTileN * padded_k);
    ad_store.resize(padded_k);
    double *wd = wd_store.data();
    double *ad = ad_store.data();

    alignas(32) float wrow[groupSize];
    size_t n_groups = padded_k / groupSize;
    for (size_t jj = 0; jj < nt; ++jj) {
        double *wr = wd + jj * padded_k;
        for (size_t g = 0; g < n_groups; ++g) {
            decodeWeightGroupAvx2(w, j0 + jj, g, wrow);
            widenToDouble(wrow, wr + g * groupSize, groupSize);
        }
        for (size_t p = k; p < padded_k; ++p)
            wr[p] = 0.0;
    }
    for (size_t jj = nt; jj < nt4; ++jj)
        std::fill_n(wd + jj * padded_k, padded_k, 0.0);

    for (size_t ii = 0; ii < mt; ++ii) {
        widenToDouble(abuf + ii * padded_k, ad, padded_k);
        for (size_t p = k; p < padded_k; ++p)
            ad[p] = 0.0;
        for (size_t j4 = 0; j4 < nt4; j4 += 4) {
            const double *w0 = wd + (j4 + 0) * padded_k;
            const double *w1 = wd + (j4 + 1) * padded_k;
            const double *w2 = wd + (j4 + 2) * padded_k;
            const double *w3 = wd + (j4 + 3) * padded_k;
            __m256d a00 = _mm256_setzero_pd();
            __m256d a01 = _mm256_setzero_pd();
            __m256d a02 = _mm256_setzero_pd();
            __m256d a03 = _mm256_setzero_pd();
            __m256d a10 = _mm256_setzero_pd();
            __m256d a11 = _mm256_setzero_pd();
            __m256d a12 = _mm256_setzero_pd();
            __m256d a13 = _mm256_setzero_pd();
            // padded_k is a multiple of the group size (32), so the
            // 8-deep step never needs a remainder loop.
            for (size_t p = 0; p < padded_k; p += 8) {
                __m256d v0 = _mm256_loadu_pd(ad + p);
                __m256d v1 = _mm256_loadu_pd(ad + p + 4);
                a00 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(w0 + p),
                                      a00);
                a10 = _mm256_fmadd_pd(v1,
                                      _mm256_loadu_pd(w0 + p + 4),
                                      a10);
                a01 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(w1 + p),
                                      a01);
                a11 = _mm256_fmadd_pd(v1,
                                      _mm256_loadu_pd(w1 + p + 4),
                                      a11);
                a02 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(w2 + p),
                                      a02);
                a12 = _mm256_fmadd_pd(v1,
                                      _mm256_loadu_pd(w2 + p + 4),
                                      a12);
                a03 = _mm256_fmadd_pd(v0, _mm256_loadu_pd(w3 + p),
                                      a03);
                a13 = _mm256_fmadd_pd(v1,
                                      _mm256_loadu_pd(w3 + p + 4),
                                      a13);
            }
            double sums[4] = {hsum(_mm256_add_pd(a00, a10)),
                              hsum(_mm256_add_pd(a01, a11)),
                              hsum(_mm256_add_pd(a02, a12)),
                              hsum(_mm256_add_pd(a03, a13))};
            size_t jlim = std::min(nt - j4, size_t{4});
            for (size_t r = 0; r < jlim; ++r)
                c(i0 + ii, j0 + j4 + r) =
                    static_cast<float>(sums[r]);
        }
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
