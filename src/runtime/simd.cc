#include "runtime/simd.hh"

#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace m2x {
namespace runtime {

namespace {

bool
cpuHasAvx2()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    return __builtin_cpu_supports("avx2") &&
           __builtin_cpu_supports("fma");
#else
    return false;
#endif
}

bool
cpuHasAvx512()
{
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
    // The kernels are compiled -mavx512f -mavx512bw and also lean on
    // the AVX2 tier (shared decode helpers), so demand all of it.
    return __builtin_cpu_supports("avx512f") &&
           __builtin_cpu_supports("avx512bw") && cpuHasAvx2();
#else
    return false;
#endif
}

SimdIsa
bestAvailableIsa()
{
    if (simdIsaAvailable(SimdIsa::Avx512))
        return SimdIsa::Avx512;
    return simdIsaAvailable(SimdIsa::Avx2) ? SimdIsa::Avx2
                                           : SimdIsa::Scalar;
}

} // anonymous namespace

const char *
simdIsaName(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Avx512:
        return "avx512";
      case SimdIsa::Avx2:
        return "avx2";
      case SimdIsa::Scalar:
        return "scalar";
    }
    return "scalar";
}

bool
simdIsaAvailable(SimdIsa isa)
{
    switch (isa) {
      case SimdIsa::Scalar:
        return true;
      case SimdIsa::Avx2:
#ifdef M2X_HAVE_AVX2
        return cpuHasAvx2();
#else
        return false;
#endif
      case SimdIsa::Avx512:
#ifdef M2X_HAVE_AVX512
        return cpuHasAvx512();
#else
        return false;
#endif
    }
    return false;
}

std::vector<SimdIsa>
supportedSimdIsas()
{
    std::vector<SimdIsa> isas{SimdIsa::Scalar};
    if (simdIsaAvailable(SimdIsa::Avx2))
        isas.push_back(SimdIsa::Avx2);
    if (simdIsaAvailable(SimdIsa::Avx512))
        isas.push_back(SimdIsa::Avx512);
    return isas;
}

namespace detail {

SimdIsa
resolveSimdIsa(const char *env)
{
    if (!env || !*env || std::strcmp(env, "auto") == 0)
        return bestAvailableIsa();
    if (std::strcmp(env, "scalar") == 0)
        return SimdIsa::Scalar;
    if (std::strcmp(env, "avx2") == 0) {
        if (simdIsaAvailable(SimdIsa::Avx2))
            return SimdIsa::Avx2;
        m2x_warn("M2X_SIMD=avx2 requested but AVX2 is unavailable "
                 "(not compiled in, or unsupported CPU); using the "
                 "scalar fallback");
        return SimdIsa::Scalar;
    }
    if (std::strcmp(env, "avx512") == 0) {
        if (simdIsaAvailable(SimdIsa::Avx512))
            return SimdIsa::Avx512;
        SimdIsa fb = bestAvailableIsa();
        m2x_warn("M2X_SIMD=avx512 requested but AVX-512 is "
                 "unavailable (not compiled in, or unsupported CPU); "
                 "falling back to the best remaining tier '%s'",
                 simdIsaName(fb));
        return fb;
    }
    m2x_warn("ignoring unknown M2X_SIMD value '%s' "
             "(want scalar|avx2|avx512|auto)", env);
    return bestAvailableIsa();
}

SimdIsa
resolveEncodeSimdIsa(const char *env, SimdIsa isa)
{
    if (env && *env && std::strcmp(env, "auto") != 0)
        return resolveSimdIsa(env);
    // Demotion policy: the AVX-512 activation encoder trails the
    // AVX2 one on the measured hosts (ROADMAP), and the tiers are
    // byte-exact against each other, so swapping tiers under the
    // encode stage is free.
    if (isa == SimdIsa::Avx512 && simdIsaAvailable(SimdIsa::Avx2))
        return SimdIsa::Avx2;
    return isa;
}

} // namespace detail

SimdIsa
encodeSimdIsa(SimdIsa isa)
{
    static const char *env = std::getenv("M2X_SIMD_ENCODE");
    static const bool overridden =
        env && *env && std::strcmp(env, "auto") != 0;
    if (overridden) {
        static const SimdIsa forced = detail::resolveSimdIsa(env);
        return forced;
    }
    return detail::resolveEncodeSimdIsa(nullptr, isa);
}

SimdIsa
activeSimdIsa()
{
    static const SimdIsa isa =
        detail::resolveSimdIsa(std::getenv("M2X_SIMD"));
    return isa;
}

const char *
activeSimdIsaName()
{
    return simdIsaName(activeSimdIsa());
}

} // namespace runtime
} // namespace m2x
