/**
 * @file
 * Fast-path online activation encoder for the packed-domain runtime.
 *
 * PackedLinear::forward must quantize its activations on every call
 * (Elem-EM-top1, Alg. 1 of the paper) before the packed GEMM can
 * start — the "quantization overhead on the critical path" that MX
 * deployments have to amortize. The functional codec
 * (ElemEmQuantizer::encodeGroup) is built for clarity: it allocates
 * two heap vectors per 32-element group and encodes every element
 * through a binary search over the minifloat value table. This
 * subsystem re-implements the same pipeline as allocation-free
 * per-ISA kernels that write the three packed streams directly:
 *
 *   group absmax -> shared E8M0 scale (any ScaleRule)
 *   FP4 E2M1 round-to-nearest-even of every scaled element
 *   per-subgroup top-1 selection in the FP4 code domain
 *   FP6 E2M3 re-round of the top-1 element -> 2-bit metadata
 *
 * The contract is *byte-exactness*, not value closeness: for the
 * paper activation config (g32/sg8, top-1, clamped bias, fixed
 * shared scale) every kernel tier must produce element/scale/meta
 * streams identical to PackedM2xfpTensor::packActivations(m, q) —
 * asserted exhaustively by tests/runtime/packed_quantize_test.cc,
 * including NaN/Inf/denormal inputs and rounding-tie boundaries.
 * Unlike the GEMM tiers (where vector accumulation reassociates the
 * sum), encoding is elementwise, so the AVX2 tier is held to the
 * same bit-exact contract as the scalar oracle.
 *
 * Tier selection goes through the same SimdIsa dispatch as the GEMM
 * microkernels (runtime/simd.hh): M2X_SIMD governs both the encode
 * and the GEMM tier. Rows are independent, so the row loop is
 * distributed over a ThreadPool.
 *
 * The public entry points are the PackedM2xfpTensor::packActivations
 * (pool, isa) overloads declared in core/m2xfp_packed.hh and defined
 * here in the runtime library; this header exposes the kernel table
 * and the per-group encoders for tests and benches.
 */

#ifndef M2X_RUNTIME_PACKED_QUANTIZE_HH__
#define M2X_RUNTIME_PACKED_QUANTIZE_HH__

#include <cmath>
#include <cstdint>

#include "core/m2xfp_packed.hh"
#include "quant/scale_rules.hh"
#include "runtime/simd.hh"
#include "runtime/thread_pool.hh"

namespace m2x {
namespace runtime {
namespace detail {

/**
 * Encode one row of @p cols floats into the packed streams: the
 * row's ceil(cols/32) groups of element bytes (16 per group), E8M0
 * scale codes and metadata bytes. The tail group is zero-padded
 * exactly like the functional packer.
 */
using QuantizeRowFn = void (*)(const float *src, size_t cols,
                               ScaleRule rule, uint8_t *elems,
                               uint8_t *scales, uint8_t *meta);

/** The per-ISA encoder set used by the fast-path packActivations. */
struct QuantizeKernels
{
    QuantizeRowFn quantizeActivationRow;
};

/**
 * Kernel table for @p isa. Asking for a tier that is not compiled in
 * returns the scalar table (callers guard with simdIsaAvailable).
 */
const QuantizeKernels &quantizeKernels(SimdIsa isa);

/** Scalar tier: the allocation-free bit-exact oracle. */
void quantizeActivationRowScalar(const float *src, size_t cols,
                                 ScaleRule rule, uint8_t *elems,
                                 uint8_t *scales, uint8_t *meta);

/**
 * Encode one full (32-element, caller-padded) group. Exposed for the
 * group-granular parity sweeps.
 */
void encodeActivationGroupScalar(const float *in, ScaleRule rule,
                                 uint8_t *elems, uint8_t *scale,
                                 uint8_t *meta);

#ifdef M2X_HAVE_AVX2
/** AVX2 tier: vector absmax / FP4 RNE / top-1 selection. */
void quantizeActivationRowAvx2(const float *src, size_t cols,
                               ScaleRule rule, uint8_t *elems,
                               uint8_t *scales, uint8_t *meta);

void encodeActivationGroupAvx2(const float *in, ScaleRule rule,
                               uint8_t *elems, uint8_t *scale,
                               uint8_t *meta);
#endif // M2X_HAVE_AVX2

#ifdef M2X_HAVE_AVX512
/** AVX-512 tier: 16-lane mask-ladder FP4 RNE, vpmovdb nibble pack.
 *  Held to the same byte-exact contract as every other tier. */
void quantizeActivationRowAvx512(const float *src, size_t cols,
                                 ScaleRule rule, uint8_t *elems,
                                 uint8_t *scales, uint8_t *meta);

void encodeActivationGroupAvx512(const float *in, ScaleRule rule,
                                 uint8_t *elems, uint8_t *scale,
                                 uint8_t *meta);
#endif // M2X_HAVE_AVX512

/**
 * parallelFor grain (rows per chunk) for @p rows distributed over
 * @p lanes. Invariants (property-tested):
 *  - 1 <= grain <= max(rows, 1);
 *  - for lanes >= 2, the chunk count ceil(rows/grain) is at least
 *    min(rows, 2*lanes) — no shape serializes onto a few lanes.
 */
size_t packedQuantizeGrain(size_t rows, size_t lanes);

/**
 * FP4 E2M1 code (sign | 3-bit magnitude) of @p x with
 * round-to-nearest, ties to the even code, saturating at the largest
 * finite magnitude — bit-identical to Minifloat::fp4e2m1().encode()
 * for every float (NaN maps to +6.0, code 7). The branchless
 * threshold ladder replaces the value-table binary search: each
 * magnitude boundary is the exactly-representable midpoint between
 * adjacent FP4 values, compared strictly or inclusively so the tie
 * lands on the even code.
 */
inline uint32_t
fp4CodeRne(float x)
{
    if (std::isnan(x))
        return 7;
    uint32_t sign = std::signbit(x) ? 8u : 0u;
    float a = std::fabs(x);
    uint32_t mag = 0;
    mag += a > 0.25f;  // 0   vs 0.5: tie -> code 0
    mag += a >= 0.75f; // 0.5 vs 1  : tie -> code 2
    mag += a > 1.25f;  // 1   vs 1.5: tie -> code 2
    mag += a >= 1.75f; // 1.5 vs 2  : tie -> code 4
    mag += a > 2.5f;   // 2   vs 3  : tie -> code 4
    mag += a >= 3.5f;  // 3   vs 4  : tie -> code 6
    mag += a > 5.0f;   // 4   vs 6  : tie -> code 6
    return sign | mag;
}

/**
 * FP6 E2M3 magnitude code of @p a >= 0 (or NaN), RNE with ties to
 * the even code, saturating at 7.5 — bit-identical to
 * Minifloat::fp6e2m3().encode(a) & 0x1f. Within each binade the FP6
 * grid is uniform, so the code is the grid multiple rounded with
 * lrintf (RNE under the default rounding mode); the multiplies by
 * 8/4/2 are exact.
 */
inline uint32_t
fp6MagRne(float a)
{
    if (std::isnan(a) || a >= 7.5f)
        return 31;
    if (a < 2.0f) // subnormals + [1, 2): codes 0..16, step 0.125
        return static_cast<uint32_t>(std::lrintf(a * 8.0f));
    if (a < 4.0f) // [2, 4): codes 16..24, step 0.25
        return 8u + static_cast<uint32_t>(std::lrintf(a * 4.0f));
    // [4, 7.5): codes 24..31, step 0.5
    return 16u + static_cast<uint32_t>(std::lrintf(a * 2.0f));
}

} // namespace detail
} // namespace runtime
} // namespace m2x

#endif // M2X_RUNTIME_PACKED_QUANTIZE_HH__
