/**
 * @file
 * AVX2+FMA tier of the KV-cache attention primitives: 4-wide double
 * FMA chains for the per-head score dots and value accumulations.
 *
 * Precision contract: everything accumulates in double. The two
 * dot chains reassociate the sum and the FMAs fuse the
 * multiply-add, so results differ from the scalar oracle only at
 * double ulp level — invisible after the float cast of the score
 * and orders of magnitude inside the model tolerance.
 *
 * This translation unit is compiled with -mavx2 -mfma and must only
 * be entered through the runtime dispatch (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include "runtime/kv_attend_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

/** Horizontal sum of a 4-double vector. */
inline double
hsumPd(__m256d v)
{
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
}

/** Widening load: 4 floats -> 4 doubles. */
inline __m256d
loadPs4(const float *p)
{
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

} // anonymous namespace

void
dotHeadsAvx2(const float *q, const float *row, size_t hd,
             unsigned n_heads, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + h * hd;
        __m256d s0 = _mm256_setzero_pd();
        __m256d s1 = _mm256_setzero_pd();
        size_t c = 0;
        for (; c + 8 <= hd; c += 8) {
            s0 = _mm256_fmadd_pd(loadPs4(a + c), loadPs4(b + c), s0);
            s1 = _mm256_fmadd_pd(loadPs4(a + c + 4),
                                 loadPs4(b + c + 4), s1);
        }
        if (c + 4 <= hd) {
            s0 = _mm256_fmadd_pd(loadPs4(a + c), loadPs4(b + c), s0);
            c += 4;
        }
        double dot = hsumPd(_mm256_add_pd(s0, s1));
        for (; c < hd; ++c)
            dot += static_cast<double>(a[c]) * b[c];
        out[h] = dot;
    }
}

void
accumHeadsAvx2(const double *p, const float *row, size_t hd,
               unsigned n_heads, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        __m256d pv = _mm256_set1_pd(p[h]);
        const float *vr = row + h * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        for (; c + 4 <= hd; c += 4)
            _mm256_storeu_pd(
                ar + c, _mm256_fmadd_pd(pv, loadPs4(vr + c),
                                        _mm256_loadu_pd(ar + c)));
        for (; c < hd; ++c)
            ar[c] += p[h] * vr[c];
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
