/**
 * @file
 * AVX2+FMA tier of the KV-cache attention primitives: 4-wide double
 * FMA chains for the per-head score dots and value accumulations,
 * and an 8-wide polynomial float exp for the online-softmax
 * exponential weights.
 *
 * Precision contract: dots and accumulations run entirely in
 * double. The two dot chains reassociate the sum and the FMAs fuse
 * the multiply-add, so results differ from the scalar oracle only
 * at double ulp level — invisible after the float cast of the score
 * and orders of magnitude inside the model tolerance. expWeights is
 * the exception: the Cephes expf polynomial evaluated in float
 * (~2 float ulp, ~1e-7 relative) before widening back to double —
 * inside the packed 1e-5 contract, never used by the bit-exact fp32
 * path.
 *
 * This translation unit is compiled with -mavx2 -mfma and must only
 * be entered through the runtime dispatch (simdIsaAvailable guards).
 */

#include <cmath>
#include <immintrin.h>
#include <limits>

#include "runtime/kv_attend_kernels.hh"
#include "runtime/packed_gemm_kernels.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

/** Horizontal sum of a 4-double vector. */
inline double
hsumPd(__m256d v)
{
    __m128d s = _mm_add_pd(_mm256_castpd256_pd128(v),
                           _mm256_extractf128_pd(v, 1));
    s = _mm_add_sd(s, _mm_unpackhi_pd(s, s));
    return _mm_cvtsd_f64(s);
}

/** Widening load: 4 floats -> 4 doubles. */
inline __m256d
loadPs4(const float *p)
{
    return _mm256_cvtps_pd(_mm_loadu_ps(p));
}

/**
 * 8-wide float exp (Cephes expf scheme): clamp, split x into
 * n*ln2 + r with n = round(x*log2e), degree-5 polynomial on r,
 * scale by 2^n through the exponent bits.
 */
inline __m256
expPs(__m256 x)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647949f);
    const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
    const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
    const __m256 c1 = _mm256_set1_ps(0.693359375f);
    const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
    const __m256 one = _mm256_set1_ps(1.0f);

    x = _mm256_min_ps(x, hi);
    x = _mm256_max_ps(x, lo);

    __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);
    x = _mm256_fnmadd_ps(fx, c1, x);
    x = _mm256_fnmadd_ps(fx, c2, x);

    __m256 z = _mm256_mul_ps(x, x);
    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
    y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));

    __m256i n = _mm256_cvtps_epi32(fx);
    n = _mm256_add_epi32(n, _mm256_set1_epi32(127));
    n = _mm256_slli_epi32(n, 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

} // anonymous namespace

void
dotHeadsAvx2(const float *q, const float *row, size_t hd,
             unsigned n_heads, unsigned group, double *out)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *b = row + (h / group) * hd;
        __m256d s0 = _mm256_setzero_pd();
        __m256d s1 = _mm256_setzero_pd();
        size_t c = 0;
        for (; c + 8 <= hd; c += 8) {
            s0 = _mm256_fmadd_pd(loadPs4(a + c), loadPs4(b + c), s0);
            s1 = _mm256_fmadd_pd(loadPs4(a + c + 4),
                                 loadPs4(b + c + 4), s1);
        }
        if (c + 4 <= hd) {
            s0 = _mm256_fmadd_pd(loadPs4(a + c), loadPs4(b + c), s0);
            c += 4;
        }
        double dot = hsumPd(_mm256_add_pd(s0, s1));
        for (; c < hd; ++c)
            dot += static_cast<double>(a[c]) * b[c];
        out[h] = dot;
    }
}

void
accumHeadsAvx2(const double *p, const float *row, size_t hd,
               unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        __m256d pv = _mm256_set1_pd(p[h]);
        const float *vr = row + (h / group) * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        for (; c + 4 <= hd; c += 4)
            _mm256_storeu_pd(
                ar + c, _mm256_fmadd_pd(pv, loadPs4(vr + c),
                                        _mm256_loadu_pd(ar + c)));
        for (; c < hd; ++c)
            ar[c] += p[h] * vr[c];
    }
}

void
decodeRowsAvx2(const PackedM2xfpTensor &t, size_t row0,
               size_t n_rows, size_t stride, float *out)
{
    // The AVX2 GEMM row decode is already the tier's best scheme;
    // the page form just amortizes the call per page.
    for (size_t r = 0; r < n_rows; ++r)
        decodeActivationRowAvx2(t, row0 + r, out + r * stride);
}

void
scorePageAvx2(const float *q, const float *rows, size_t stride,
              size_t n_rows, size_t hd, unsigned n_heads,
              unsigned group, double inv_sqrt, double *scores,
              size_t s_stride, double *smax)
{
    // Widen each head's query slice to double once per page — the
    // conversion is exact, so every FMA input (and score bit) is
    // unchanged while the per-row cvt work becomes plain loads.
    constexpr size_t kMaxHd = 1024;
    alignas(32) double qd[kMaxHd];
    for (unsigned h = 0; h < n_heads; ++h) {
        const float *a = q + h * hd;
        const float *base = rows + (h / group) * hd;
        double *sh = scores + h * s_stride;
        double mx = -std::numeric_limits<double>::infinity();
        size_t wide = hd <= kMaxHd ? hd & ~size_t{3} : 0;
        for (size_t c = 0; c < wide; c += 4)
            _mm256_storeu_pd(qd + c, loadPs4(a + c));
        for (size_t r = 0; r < n_rows; ++r) {
            // Same two-chain dot as dotHeadsAvx2 — per-score
            // results bit-identical to the per-row primitive.
            const float *b = base + r * stride;
            __m256d s0 = _mm256_setzero_pd();
            __m256d s1 = _mm256_setzero_pd();
            size_t c = 0;
            for (; c + 8 <= wide; c += 8) {
                s0 = _mm256_fmadd_pd(_mm256_load_pd(qd + c),
                                     loadPs4(b + c), s0);
                s1 = _mm256_fmadd_pd(_mm256_load_pd(qd + c + 4),
                                     loadPs4(b + c + 4), s1);
            }
            for (; c + 8 <= hd; c += 8) {
                s0 = _mm256_fmadd_pd(loadPs4(a + c), loadPs4(b + c),
                                     s0);
                s1 = _mm256_fmadd_pd(loadPs4(a + c + 4),
                                     loadPs4(b + c + 4), s1);
            }
            if (c + 4 <= hd) {
                __m256d qa = c + 4 <= wide ? _mm256_load_pd(qd + c)
                                           : loadPs4(a + c);
                s0 = _mm256_fmadd_pd(qa, loadPs4(b + c), s0);
                c += 4;
            }
            double dot = hsumPd(_mm256_add_pd(s0, s1));
            for (; c < hd; ++c)
                dot += static_cast<double>(a[c]) * b[c];
            double s = dot * inv_sqrt;
            sh[r] = s;
            mx = std::max(mx, s);
        }
        smax[h] = mx;
    }
}

void
accumPageAvx2(const double *w, size_t w_stride, const float *rows,
              size_t stride, size_t n_rows, size_t hd,
              unsigned n_heads, unsigned group, double *acc)
{
    for (unsigned h = 0; h < n_heads; ++h) {
        const double *wh = w + h * w_stride;
        const float *base = rows + (h / group) * hd;
        double *ar = acc + h * hd;
        size_t c = 0;
        // Channel-outer, row-inner with the accumulator held in
        // registers across the page: per channel lane the adds stay
        // in ascending-row order, bit-identical to accumHeadsAvx2
        // per row; two chains cover the FMA latency.
        for (; c + 8 <= hd; c += 8) {
            __m256d a0 = _mm256_loadu_pd(ar + c);
            __m256d a1 = _mm256_loadu_pd(ar + c + 4);
            for (size_t r = 0; r < n_rows; ++r) {
                __m256d pv = _mm256_set1_pd(wh[r]);
                const float *b = base + r * stride + c;
                a0 = _mm256_fmadd_pd(pv, loadPs4(b), a0);
                a1 = _mm256_fmadd_pd(pv, loadPs4(b + 4), a1);
            }
            _mm256_storeu_pd(ar + c, a0);
            _mm256_storeu_pd(ar + c + 4, a1);
        }
        for (; c + 4 <= hd; c += 4) {
            __m256d a0 = _mm256_loadu_pd(ar + c);
            for (size_t r = 0; r < n_rows; ++r)
                a0 = _mm256_fmadd_pd(_mm256_set1_pd(wh[r]),
                                     loadPs4(base + r * stride + c),
                                     a0);
            _mm256_storeu_pd(ar + c, a0);
        }
        for (; c < hd; ++c) {
            double s = ar[c];
            for (size_t r = 0; r < n_rows; ++r)
                s += wh[r] *
                     static_cast<double>(base[r * stride + c]);
            ar[c] = s;
        }
    }
}

void
expWeightsAvx2(const double *s, double m, size_t n, double *p)
{
    __m256d md = _mm256_set1_pd(m);
    size_t r = 0;
    for (; r + 8 <= n; r += 8) {
        // Two 4-double differences narrowed to one 8-float vector,
        // one polynomial exp, widened back to two 4-double stores.
        __m128 x0 = _mm256_cvtpd_ps(
            _mm256_sub_pd(_mm256_loadu_pd(s + r), md));
        __m128 x1 = _mm256_cvtpd_ps(
            _mm256_sub_pd(_mm256_loadu_pd(s + r + 4), md));
        __m256 e = expPs(_mm256_set_m128(x1, x0));
        _mm256_storeu_pd(p + r,
                         _mm256_cvtps_pd(_mm256_castps256_ps128(e)));
        _mm256_storeu_pd(
            p + r + 4,
            _mm256_cvtps_pd(_mm256_extractf128_ps(e, 1)));
    }
    for (; r < n; ++r)
        p[r] = static_cast<double>(
            std::exp(static_cast<float>(s[r] - m)));
}

} // namespace detail
} // namespace runtime
} // namespace m2x
