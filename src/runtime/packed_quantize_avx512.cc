/**
 * @file
 * AVX-512 (F+BW) tier of the fast-path activation encoder.
 *
 * Same byte-exact contract as the AVX2 tier (encoding is
 * elementwise, so every vector step reproduces the scalar oracle
 * exactly), with the group processed as two 16-lane vectors:
 *
 *   absmax   — abs-mask + lanewise max with the same NaN-ignoring
 *              operand order as the scalar fold, reduced with
 *              _mm512_reduce_max_ps (safe: NaNs never enter the
 *              accumulator).
 *   FP4 RNE  — the fp4CodeRne() threshold ladder as seven
 *              _mm512_cmp_ps_mask compares (GT/GE per tie so ties
 *              land on the even code) accumulated with masked adds;
 *              NaN lanes mask-blend to code 7.
 *   top-1    — per subgroup, on the extracted 8-lane halves, the
 *              same (mag << 3) | (7 - lane) horizontal-max key as
 *              the AVX2 tier.
 *   pack     — vpmovdb (_mm512_cvtepi32_epi8) truncates each
 *              16-code vector to ordered bytes in one step — no
 *              packus/permute dance — then nibbles merge in 16-bit
 *              lanes.
 *
 * This translation unit is compiled with -mavx2 -mfma -mavx512f
 * -mavx512bw and must only be entered through the runtime dispatch
 * (simdIsaAvailable guards).
 */

#include <immintrin.h>

#include <algorithm>
#include <cstring>

#include "runtime/packed_quantize.hh"

namespace m2x {
namespace runtime {
namespace detail {

namespace {

constexpr size_t groupSize = PackedM2xfpTensor::groupSize;
constexpr size_t subgroupSize = PackedM2xfpTensor::subgroupSize;
constexpr size_t nSubgroups = groupSize / subgroupSize;

/**
 * FP4 codes of 16 scaled elements, one per 32-bit lane.
 * Bit-identical to fp4CodeRne() lane by lane.
 */
/** |x| lanewise; float-domain and_ps is DQ, so mask in the integer
 *  domain (AVX512F). */
inline __m512
abs16(__m512 x)
{
    return _mm512_castsi512_ps(_mm512_and_epi32(
        _mm512_castps_si512(x), _mm512_set1_epi32(0x7fffffff)));
}

inline __m512i
fp4Codes16(__m512 x)
{
    __m512 a = abs16(x);
    const __m512i one = _mm512_set1_epi32(1);
    __m512i mag = _mm512_setzero_si512();
    auto step = [&](float thr, int op) {
        __mmask16 m = (op == _CMP_GT_OQ)
                          ? _mm512_cmp_ps_mask(
                                a, _mm512_set1_ps(thr), _CMP_GT_OQ)
                          : _mm512_cmp_ps_mask(
                                a, _mm512_set1_ps(thr), _CMP_GE_OQ);
        mag = _mm512_mask_add_epi32(mag, m, mag, one);
    };
    step(0.25f, _CMP_GT_OQ);
    step(0.75f, _CMP_GE_OQ);
    step(1.25f, _CMP_GT_OQ);
    step(1.75f, _CMP_GE_OQ);
    step(2.5f, _CMP_GT_OQ);
    step(3.5f, _CMP_GE_OQ);
    step(5.0f, _CMP_GT_OQ);
    __m512i sign = _mm512_and_si512(
        _mm512_srli_epi32(_mm512_castps_si512(x), 28),
        _mm512_set1_epi32(8));
    __m512i code = _mm512_or_si512(sign, mag);
    // NaN lanes must match the scalar convention: +max, code 7.
    __mmask16 nan = _mm512_cmp_ps_mask(x, x, _CMP_UNORD_Q);
    return _mm512_mask_mov_epi32(code, nan, _mm512_set1_epi32(7));
}

/**
 * Argmax of (code & 7) over one subgroup's 8 dword codes, ties to
 * the lowest index — the decoder's exact rule, found via the same
 * (mag << 3) | (7 - lane) horizontal-max key as the AVX2 tier.
 * Returns (idx << 3) | mag.
 */
inline uint32_t
subgroupTop1(__m256i codes8)
{
    const __m256i revlane = _mm256_set_epi32(0, 1, 2, 3, 4, 5, 6, 7);
    __m256i mag = _mm256_and_si256(codes8, _mm256_set1_epi32(7));
    __m256i key =
        _mm256_or_si256(_mm256_slli_epi32(mag, 3), revlane);
    __m128i k = _mm_max_epi32(_mm256_castsi256_si128(key),
                              _mm256_extracti128_si256(key, 1));
    k = _mm_max_epi32(k,
                      _mm_shuffle_epi32(k, _MM_SHUFFLE(1, 0, 3, 2)));
    k = _mm_max_epi32(k,
                      _mm_shuffle_epi32(k, _MM_SHUFFLE(2, 3, 0, 1)));
    uint32_t best = static_cast<uint32_t>(_mm_cvtsi128_si32(k));
    return ((7u - (best & 0x7u)) << 3) | (best >> 3);
}

} // anonymous namespace

void
encodeActivationGroupAvx512(const float *in, ScaleRule rule,
                            uint8_t *elems, uint8_t *scale,
                            uint8_t *meta)
{
    // Step 1: block absmax. NaN lanes never enter the accumulator
    // (max_ps returns the second operand when the first is NaN), so
    // the fold — and the final reduce — match absMax()'s std::max
    // semantics.
    __m512 v_lo = _mm512_loadu_ps(in);
    __m512 v_hi = _mm512_loadu_ps(in + 16);
    __m512 acc =
        _mm512_max_ps(abs16(v_lo), _mm512_setzero_ps());
    acc = _mm512_max_ps(abs16(v_hi), acc);
    float amax = _mm512_reduce_max_ps(acc);

    ScaleE8m0 s =
        computeSharedScale(amax, Minifloat::fp4e2m1(), rule);
    *scale = s.code();
    float inv = s.inverse();
    __m512 vinv = _mm512_set1_ps(inv);

    // Step 2: FP4 codes, 16 per vector (two subgroups each).
    __m512i codes_lo = fp4Codes16(_mm512_mul_ps(v_lo, vinv));
    __m512i codes_hi = fp4Codes16(_mm512_mul_ps(v_hi, vinv));

    // Steps 3-7: top-1 per subgroup on the 8-lane halves, FP6
    // re-round of the winner stays scalar (4 per group).
    __m256i sgc[nSubgroups] = {
        _mm512_castsi512_si256(codes_lo),
        _mm512_extracti64x4_epi64(codes_lo, 1),
        _mm512_castsi512_si256(codes_hi),
        _mm512_extracti64x4_epi64(codes_hi, 1)};
    uint8_t mb = 0;
    for (size_t sg = 0; sg < nSubgroups; ++sg) {
        uint32_t top = subgroupTop1(sgc[sg]);
        size_t idx = top >> 3;
        uint32_t mag4 = top & 0x7u;
        float a6 = std::fabs(in[sg * subgroupSize + idx]) * inv;
        uint32_t mag6 = fp6MagRne(a6);
        mb = static_cast<uint8_t>(
            mb | ((ElemEmQuantizer::encodeMeta(mag6, mag4) & 0x3u)
                  << (2 * sg)));
    }
    *meta = mb;

    // Nibble pack: vpmovdb gives the 32 byte codes already in
    // element order, then even|odd<<4 merges each byte pair.
    __m256i byte32 = _mm256_set_m128i(
        _mm512_cvtepi32_epi8(codes_hi),
        _mm512_cvtepi32_epi8(codes_lo));
    __m256i even =
        _mm256_and_si256(byte32, _mm256_set1_epi16(0x00ff));
    __m256i odd = _mm256_srli_epi16(byte32, 8);
    __m256i byte16 =
        _mm256_or_si256(even, _mm256_slli_epi16(odd, 4));
    const __m256i take_even = _mm256_setr_epi8(
        0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1,
        0, 2, 4, 6, 8, 10, 12, 14, -1, -1, -1, -1, -1, -1, -1, -1);
    __m256i packed = _mm256_shuffle_epi8(byte16, take_even);
    _mm_storel_epi64(reinterpret_cast<__m128i *>(elems),
                     _mm256_castsi256_si128(packed));
    _mm_storel_epi64(reinterpret_cast<__m128i *>(elems + 8),
                     _mm256_extracti128_si256(packed, 1));
}

void
quantizeActivationRowAvx512(const float *src, size_t cols,
                            ScaleRule rule, uint8_t *elems,
                            uint8_t *scales, uint8_t *meta)
{
    constexpr size_t bpg = PackedM2xfpTensor::bytesPerGroupElems;
    size_t g = 0;
    for (; (g + 1) * groupSize <= cols; ++g)
        encodeActivationGroupAvx512(src + g * groupSize, rule,
                                    elems + g * bpg, scales + g,
                                    meta + g);
    if (g * groupSize < cols) {
        alignas(64) float padded[groupSize] = {};
        std::memcpy(padded, src + g * groupSize,
                    (cols - g * groupSize) * sizeof(float));
        encodeActivationGroupAvx512(padded, rule, elems + g * bpg,
                                    scales + g, meta + g);
    }
}

} // namespace detail
} // namespace runtime
} // namespace m2x
