/**
 * @file
 * The OCP Microscaling (MX) family: a block of k minifloat elements
 * sharing one E8M0 (power-of-two) scale. MXFP4 / MXFP6 / MXFP8 are
 * instances of MxfpQuantizer; MXINT8 uses an integer mantissa grid.
 *
 * Quantization follows §2.2 of the paper: the shared scale is derived
 * from the block maximum via a ScaleRule (OCP floor by default), each
 * element is divided by the scale and rounded (RNE) onto the element
 * grid, and dequantization multiplies back.
 */

#ifndef M2X_MX_MXFP_HH__
#define M2X_MX_MXFP_HH__

#include <string>

#include "formats/intcodec.hh"
#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"
#include "quant/scale_rules.hh"

namespace m2x {

/** MXFP: k minifloat elements + one E8M0 shared scale. */
class MxfpQuantizer : public GroupQuantizer
{
  public:
    /**
     * @param elem  element format (e.g. Minifloat::fp4e2m1())
     * @param group_size block size k (OCP default 32)
     * @param rule  shared-scale rule (OCP floor by default)
     */
    MxfpQuantizer(const Minifloat &elem, unsigned group_size,
                  ScaleRule rule = ScaleRule::Floor);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    const Minifloat &elem() const { return elem_; }
    ScaleRule rule() const { return rule_; }

    /** The shared scale this quantizer would pick for a group. */
    ScaleE8m0 sharedScale(std::span<const float> in) const;

    /** Canonical MXFP4: FP4 E2M1, group 32, floor rule. */
    static MxfpQuantizer mxfp4(ScaleRule rule = ScaleRule::Floor);
    /** MXFP6 (E2M3), group 32. */
    static MxfpQuantizer mxfp6e2m3();
    /** MXFP6 (E3M2), group 32. */
    static MxfpQuantizer mxfp6e3m2();
    /** MXFP8 (E4M3), group 32. */
    static MxfpQuantizer mxfp8e4m3();
    /** MXFP8 (E5M2), group 32. */
    static MxfpQuantizer mxfp8e5m2();

  private:
    const Minifloat &elem_;
    unsigned groupSize_;
    ScaleRule rule_;
};

/**
 * MXINT8: 8-bit signed fixed-point mantissas (6 fraction bits, OCP
 * convention: representable magnitudes < 2) sharing an E8M0 scale.
 */
class MxIntQuantizer : public GroupQuantizer
{
  public:
    MxIntQuantizer(unsigned bits, unsigned group_size);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    static MxIntQuantizer mxint8() { return {8, 32}; }

  private:
    unsigned bits_;
    unsigned groupSize_;
    int32_t maxCode_;
    int fracBits_;
};

} // namespace m2x

#endif // M2X_MX_MXFP_HH__
