/**
 * @file
 * NVFP4: NVIDIA's 4-bit microscaling variant (Blackwell). FP4 E2M1
 * elements in groups of 16, with an FP8 (E4M3) block scale and an
 * FP32 tensor-level scale that re-centres the distribution so block
 * scales stay inside E4M3's limited range (§2.2 of the paper).
 *
 * Recipe (matching the public NVFP4 description):
 *   tensor_scale = tensor_amax / (448 * 6)
 *   block_scale  = cast_fp8_e4m3(block_amax / (6 * tensor_scale))
 *   element      = cast_fp4(x / (block_scale * tensor_scale))
 */

#ifndef M2X_MX_NVFP4_HH__
#define M2X_MX_NVFP4_HH__

#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"

namespace m2x {

/** NVFP4 quantizer (group 16, FP8 block scale, FP32 tensor scale). */
class Nvfp4Quantizer : public GroupQuantizer
{
  public:
    explicit Nvfp4Quantizer(unsigned group_size = 16);

    /** Computes the tensor-level scale from the full tensor. */
    void calibrate(std::span<const float> full) override;

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    float tensorScale() const { return tensorScale_; }

  private:
    unsigned groupSize_;
    float tensorScale_ = 1.0f;
};

} // namespace m2x

#endif // M2X_MX_NVFP4_HH__
