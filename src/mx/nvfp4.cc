#include "mx/nvfp4.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

Nvfp4Quantizer::Nvfp4Quantizer(unsigned group_size)
    : groupSize_(group_size)
{
    m2x_assert(group_size >= 1, "group size must be positive");
}

void
Nvfp4Quantizer::calibrate(std::span<const float> full)
{
    float amax = absMax(full);
    // 448 = E4M3 max, 6 = FP4 max: block scales then use E4M3's full
    // range without overflow.
    tensorScale_ = amax > 0.0f
        ? amax / (448.0f * 6.0f)
        : 1.0f;
}

void
Nvfp4Quantizer::quantizeGroup(std::span<const float> in,
                              std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    const Minifloat &fp4 = Minifloat::fp4e2m1();
    const Minifloat &fp8 = Minifloat::fp8e4m3();

    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }
    float want = amax / (6.0f * tensorScale_);
    float block_scale = fp8.quantize(want);
    if (block_scale <= 0.0f)
        block_scale = fp8.minSubnormal();
    float s = block_scale * tensorScale_;
    float inv = 1.0f / s;
    for (size_t i = 0; i < in.size(); ++i)
        out[i] = fp4.quantize(in[i] * inv) * s;
}

BitBudget
Nvfp4Quantizer::bitBudget() const
{
    // FP32 tensor scale amortizes to ~0 bits per element.
    return {4.0, 8.0, 0.0, groupSize_};
}

std::string
Nvfp4Quantizer::name() const
{
    return "NVFP4-g" + std::to_string(groupSize_);
}

} // namespace m2x
