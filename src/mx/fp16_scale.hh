/**
 * @file
 * Pre-MX "conventional group-wise quantization": an FP16 scale per
 * group instead of E8M0. Covers the paper's "FP4" baseline (Fig. 3),
 * the Fig. 4 granularity sweep, and the INT4 grids used by the
 * QuaRot / DuQuant algorithm baselines (Tbl. 7).
 */

#ifndef M2X_MX_FP16_SCALE_HH__
#define M2X_MX_FP16_SCALE_HH__

#include "formats/minifloat.hh"
#include "quant/group_quantizer.hh"

namespace m2x {

/** Minifloat elements with a per-group FP16 scale (amax -> M). */
class Fp16ScaleQuantizer : public GroupQuantizer
{
  public:
    Fp16ScaleQuantizer(const Minifloat &elem, unsigned group_size);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    /** The paper's "FP4" baseline: E2M1 + FP16 scale, group 32. */
    static Fp16ScaleQuantizer fp4(unsigned group_size = 32);

  private:
    const Minifloat &elem_;
    unsigned groupSize_;
};

/** Symmetric INT elements with a per-group FP16 scale. */
class IntFp16ScaleQuantizer : public GroupQuantizer
{
  public:
    IntFp16ScaleQuantizer(unsigned bits, unsigned group_size);

    void quantizeGroup(std::span<const float> in,
                       std::span<float> out) const override;

    unsigned groupSize() const override { return groupSize_; }
    BitBudget bitBudget() const override;
    std::string name() const override;

    static IntFp16ScaleQuantizer int4(unsigned group_size = 32)
    {
        return {4, group_size};
    }

  private:
    unsigned bits_;
    unsigned groupSize_;
    int32_t maxCode_;
};

} // namespace m2x

#endif // M2X_MX_FP16_SCALE_HH__
