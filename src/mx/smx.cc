#include "mx/smx.hh"

#include <algorithm>
#include <cmath>

#include "formats/intcodec.hh"
#include "quant/scale_rules.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace m2x {

SmxQuantizer::SmxQuantizer(unsigned mant_bits, unsigned k1, unsigned k2)
    : mantBits_(mant_bits), k1_(k1), k2_(k2)
{
    m2x_assert(mant_bits >= 1 && mant_bits <= 8, "bad mantissa width");
    m2x_assert(k2 >= 1 && k1 >= k2, "bad k1/k2 (%u/%u)", k1, k2);
    m2x_assert(k2 <= 64, "micro-exponent subgroup too large (%u)", k2);
}

void
SmxQuantizer::quantizeGroup(std::span<const float> in,
                            std::span<float> out) const
{
    m2x_assert(in.size() == out.size(), "group size mismatch");
    float amax = absMax(in);
    if (amax == 0.0f) {
        std::fill(out.begin(), out.end(), 0.0f);
        return;
    }

    // Block scale: amax / S in [0.5, 1) so the top mantissa code is
    // reachable at micro-exponent 0.
    int e = floorLog2Exact(amax) + 1;
    float scale = std::exp2(static_cast<float>(e));
    float inv = 1.0f / scale;

    float grid = std::exp2(static_cast<float>(mantBits_));
    int32_t max_code = static_cast<int32_t>(grid) - 1;

    for (size_t base = 0; base < in.size(); base += k2_) {
        size_t len = std::min<size_t>(k2_, in.size() - base);
        // Choose the pair micro-exponent d in {0, 1} (value scaled by
        // 2^-d) minimizing the subgroup squared error.
        double best_err = -1.0;
        unsigned best_d = 0;
        float best_vals[64];
        for (unsigned d = 0; d <= 1; ++d) {
            float sub_scale = std::exp2(-static_cast<float>(d));
            double err = 0.0;
            float vals[64];
            for (size_t i = 0; i < len; ++i) {
                float x = in[base + i] * inv / sub_scale;
                int64_t q = roundNearestEven(
                    static_cast<double>(x) * grid);
                q = std::clamp<int64_t>(q, -max_code, max_code);
                float v = static_cast<float>(q) / grid * sub_scale *
                          scale;
                vals[i] = v;
                double delta = static_cast<double>(v) - in[base + i];
                err += delta * delta;
            }
            if (best_err < 0.0 || err < best_err) {
                best_err = err;
                best_d = d;
                std::copy(vals, vals + len, best_vals);
            }
        }
        (void)best_d;
        std::copy(best_vals, best_vals + len, out.begin() + base);
    }
}

BitBudget
SmxQuantizer::bitBudget() const
{
    // sign + mantissa per element, 1-bit micro-exponent per k2, 8-bit
    // scale per k1. Fold the micro-exponents into metaBits.
    double meta = static_cast<double>(k1_) / k2_;
    return {static_cast<double>(1 + mantBits_), 8.0, meta, k1_};
}

std::string
SmxQuantizer::name() const
{
    return "SMX" + std::to_string(1 + mantBits_ + 1) + "-k" +
           std::to_string(k1_) + "/" + std::to_string(k2_);
}

} // namespace m2x
