#include "mx/max_preserve.hh"

#include <cmath>

#include "formats/half.hh"
#include "util/logging.hh"

namespace m2x {

MaxPreserveQuantizer::MaxPreserveQuantizer(
    std::unique_ptr<GroupQuantizer> inner)
    : inner_(std::move(inner))
{
    m2x_assert(inner_ != nullptr, "inner quantizer required");
}

void
MaxPreserveQuantizer::calibrate(std::span<const float> full)
{
    inner_->calibrate(full);
}

void
MaxPreserveQuantizer::quantizeGroup(std::span<const float> in,
                                    std::span<float> out) const
{
    if (in.empty())
        return;
    size_t idx = 0;
    float amax = -1.0f;
    for (size_t i = 0; i < in.size(); ++i) {
        float a = std::fabs(in[i]);
        if (a > amax) {
            amax = a;
            idx = i;
        }
    }
    // The preserved maximum is out-of-band, so it must not determine
    // the inner shared scale either: quantize the group with the max
    // slot neutralized (second-max drives the scale), then restore
    // the max in FP16. This is what lets max-preservation "nearly
    // match FP4" in Fig. 3.
    std::vector<float> rest(in.begin(), in.end());
    rest[idx] = 0.0f;
    inner_->quantizeGroup(rest, out);
    out[idx] = quantizeToHalf(in[idx]);
}

BitBudget
MaxPreserveQuantizer::bitBudget() const
{
    BitBudget b = inner_->bitBudget();
    // One FP16 value plus a log2(k)-bit index per group of extra
    // metadata (the experiment is about accuracy, not bit efficiency,
    // but we account for it honestly).
    b.metaBits += 16.0 + std::ceil(std::log2(
        static_cast<double>(b.groupSize)));
    return b;
}

std::string
MaxPreserveQuantizer::name() const
{
    return inner_->name() + "+maxfp16";
}

} // namespace m2x
